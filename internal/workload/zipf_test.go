package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestGenerateTraceValidation(t *testing.T) {
	bad := []TraceConfig{
		{Files: 0, Requests: 10, S: 1, Sites: []string{"a"}},
		{Files: 10, Requests: 0, S: 1, Sites: []string{"a"}},
		{Files: 10, Requests: 10, S: 0, Sites: []string{"a"}},
		{Files: 10, Requests: 10, S: 1, Sites: nil},
	}
	for i, cfg := range bad {
		if _, err := GenerateTrace(cfg); err == nil {
			t.Errorf("config %d: want error, got none", i)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{
		Files: 64, FileBytes: 4096, S: 1.1, Requests: 500,
		Sites: []string{"anl.gov", "fnal.gov"}, Collections: 4, Seed: 42,
	}
	a, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Accesses, b.Accesses) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed = 43
	c, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Accesses, c.Accesses) {
		t.Fatal("different seeds produced the same trace")
	}
	for i, acc := range a.Accesses {
		if acc.File < 0 || acc.File >= cfg.Files {
			t.Fatalf("access %d: file %d out of range", i, acc.File)
		}
		if acc.Site != "anl.gov" && acc.Site != "fnal.gov" {
			t.Fatalf("access %d: unknown site %q", i, acc.Site)
		}
	}
}

func TestGenerateTraceSkew(t *testing.T) {
	sites := []string{"one"}
	lo, err := GenerateTrace(TraceConfig{Files: 100, S: 0.8, Requests: 5000, Sites: sites, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := GenerateTrace(TraceConfig{Files: 100, S: 1.4, Requests: 5000, Sites: sites, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// More skew concentrates more of the trace on the top files.
	if hi.TopShare(10) <= lo.TopShare(10) {
		t.Fatalf("TopShare(10): s=1.4 gives %v, s=0.8 gives %v; want higher at higher skew",
			hi.TopShare(10), lo.TopShare(10))
	}
	// And in either case the hot set dominates a uniform draw (10%).
	if lo.TopShare(10) < 0.2 {
		t.Fatalf("TopShare(10) = %v at s=0.8; Zipf should beat uniform", lo.TopShare(10))
	}
}

func TestTraceCollections(t *testing.T) {
	tr, err := GenerateTrace(TraceConfig{
		Files: 40, S: 1, Requests: 10, Sites: []string{"x"}, Collections: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous popularity blocks: 10 files per collection, in rank order.
	seen := make(map[string][]int)
	for i := 0; i < 40; i++ {
		c := tr.Collection(i)
		seen[c] = append(seen[c], i)
		if !strings.HasPrefix(tr.FileName(i), c+"/") {
			t.Fatalf("FileName(%d) = %q not under its collection %q", i, tr.FileName(i), c)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("got %d collections, want 4", len(seen))
	}
	if got := tr.Collection(0); got != tr.Collection(9) || got == tr.Collection(10) {
		t.Fatalf("collection blocks not contiguous: c(0)=%s c(9)=%s c(10)=%s",
			tr.Collection(0), tr.Collection(9), tr.Collection(10))
	}
	// Single-collection and no-collection configs behave alike.
	one, err := GenerateTrace(TraceConfig{Files: 5, S: 1, Requests: 1, Sites: []string{"x"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if one.Collection(i) != "zipf/c00" {
			t.Fatalf("Collection(%d) = %q without Collections set", i, one.Collection(i))
		}
	}
}

func TestTracePerSite(t *testing.T) {
	tr, err := GenerateTrace(TraceConfig{
		Files: 10, S: 1, Requests: 200, Sites: []string{"a", "b", "c"}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	per := tr.PerSite()
	total := 0
	for _, accs := range per {
		total += len(accs)
	}
	if total != 200 {
		t.Fatalf("per-site split covers %d accesses, want 200", total)
	}
	// Uniform site choice: no site should get everything.
	for site, accs := range per {
		if len(accs) == 0 || len(accs) == 200 {
			t.Fatalf("site %s got %d of 200 accesses", site, len(accs))
		}
	}
}
