// Package workload generates High Energy Physics datasets and analysis
// selections with the statistics Section 5 of the paper argues from:
//
//   - every collision event has a unique number and a set of persistent
//     objects of increasing size: small tag objects consulted by the first
//     analysis cuts, through reconstructed summaries, up to large raw-data
//     objects (the paper quotes 100 bytes to 10 MB);
//   - objects are clustered many-per-file, because one object per file
//     "would lead to scalability problems" (Section 2.1);
//   - an analysis funnel repeatedly narrows the event set (the paper's
//     10^9 down to 10^4) while touching larger objects at each step;
//   - each fresh analysis selects an essentially random subset of events,
//     which is why "the a priori probability that any existing file happens
//     to contain more than 50% of the selected objects is extremely low".
//
// The package both materializes scaled-down datasets as real object
// database files (for end-to-end experiments) and evaluates the
// sparse-selection model analytically at full paper scale.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"gdmp/internal/objectstore"
)

// ObjectSpec describes one object type in the event model.
type ObjectSpec struct {
	// Type labels the object ("tag", "aod", "esd", "raw").
	Type string

	// Size is the payload size in bytes.
	Size int
}

// StandardTypes is a scaled version of the paper's 100 B .. 10 MB range:
// the ratios between types match; absolute sizes are laptop-friendly.
var StandardTypes = []ObjectSpec{
	{Type: "tag", Size: 100},
	{Type: "aod", Size: 1_000},
	{Type: "esd", Size: 10_000},
	{Type: "raw", Size: 100_000},
}

// Placement controls how objects are clustered into database files.
type Placement int

const (
	// ByType clusters same-type objects of consecutive events into the
	// same file — the "smart initial placement of similar objects
	// together" the paper mentions (it helps, "but not by very much").
	ByType Placement = iota

	// ByEvent keeps all of an event's objects together regardless of type.
	ByEvent
)

// Config parameterizes dataset generation.
type Config struct {
	// Events is the number of collision events.
	Events int

	// Types lists the object types generated per event
	// (StandardTypes if nil).
	Types []ObjectSpec

	// ObjectsPerFile bounds how many objects share one database file.
	ObjectsPerFile int

	// Placement selects the clustering policy.
	Placement Placement

	// Dir is where database files are written.
	Dir string

	// Seed makes payloads and identifiers reproducible.
	Seed int64

	// LinkTypes adds a navigational association from each object to the
	// same event's object of the next-larger type (tag->aod->esd->raw),
	// modelling the reconstruction chain.
	LinkTypes bool
}

// FileMeta describes one generated database file.
type FileMeta struct {
	Path    string
	DBID    uint32
	Objects int
	Bytes   int64
}

// ObjectKey identifies one logical object in the event model.
type ObjectKey struct {
	Event uint64
	Type  string
}

// Dataset is a generated dataset plus its object property catalog: the
// application-level index of Figure 1 mapping (event, type) to an object
// identifier.
type Dataset struct {
	Files []FileMeta
	Types []ObjectSpec

	index map[ObjectKey]objectstore.OID
}

// Generate materializes the dataset under cfg.Dir.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("workload: Events must be positive, got %d", cfg.Events)
	}
	if cfg.ObjectsPerFile <= 0 {
		return nil, fmt.Errorf("workload: ObjectsPerFile must be positive, got %d", cfg.ObjectsPerFile)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("workload: Dir must be set")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	types := cfg.Types
	if types == nil {
		types = StandardTypes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ds := &Dataset{Types: types, index: make(map[ObjectKey]objectstore.OID)}

	// Pre-assign every object an OID based on the placement policy, then
	// write the files.
	type pending struct {
		key  ObjectKey
		spec ObjectSpec
	}
	var order []pending
	switch cfg.Placement {
	case ByType:
		for _, spec := range types {
			for ev := 1; ev <= cfg.Events; ev++ {
				order = append(order, pending{ObjectKey{uint64(ev), spec.Type}, spec})
			}
		}
	case ByEvent:
		for ev := 1; ev <= cfg.Events; ev++ {
			for _, spec := range types {
				order = append(order, pending{ObjectKey{uint64(ev), spec.Type}, spec})
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown placement %d", cfg.Placement)
	}

	// First pass: assign OIDs (file = position / ObjectsPerFile).
	nFiles := (len(order) + cfg.ObjectsPerFile - 1) / cfg.ObjectsPerFile
	for i, p := range order {
		dbid := uint32(i/cfg.ObjectsPerFile) + 1
		slot := uint32(i%cfg.ObjectsPerFile) + 1
		ds.index[p.key] = objectstore.OID{DB: dbid, Slot: slot}
	}

	// typeRank gives the association target (next larger type).
	typeRank := make(map[string]int, len(types))
	for i, spec := range types {
		typeRank[spec.Type] = i
	}

	// Second pass: write the files.
	for f := 0; f < nFiles; f++ {
		dbid := uint32(f) + 1
		path := filepath.Join(cfg.Dir, fmt.Sprintf("events-%04d.odb", dbid))
		w, err := objectstore.Create(path, dbid)
		if err != nil {
			return nil, err
		}
		var bytes int64
		count := 0
		for i := f * cfg.ObjectsPerFile; i < (f+1)*cfg.ObjectsPerFile && i < len(order); i++ {
			p := order[i]
			oid := ds.index[p.key]
			data := make([]byte, p.spec.Size)
			rng.Read(data)
			obj := &objectstore.Object{
				OID:   objectstore.OID{Slot: oid.Slot},
				Type:  p.key.Type,
				Event: p.key.Event,
				Data:  data,
			}
			if cfg.LinkTypes {
				if rank := typeRank[p.key.Type]; rank+1 < len(types) {
					next := ObjectKey{p.key.Event, types[rank+1].Type}
					if target, ok := ds.index[next]; ok {
						obj.Assocs = append(obj.Assocs, target)
					}
				}
			}
			if err := w.Add(obj); err != nil {
				w.Close()
				return nil, err
			}
			bytes += int64(p.spec.Size)
			count++
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		ds.Files = append(ds.Files, FileMeta{Path: path, DBID: dbid, Objects: count, Bytes: bytes})
	}
	return ds, nil
}

// Lookup returns the OID of an (event, type) pair.
func (ds *Dataset) Lookup(event uint64, typ string) (objectstore.OID, bool) {
	oid, ok := ds.index[ObjectKey{event, typ}]
	return oid, ok
}

// ObjectsFor maps a selected event set to the OIDs of one object type —
// the collective lookup a data-intensive HEP application performs up front
// (Section 5.2).
func (ds *Dataset) ObjectsFor(events []uint64, typ string) []objectstore.OID {
	out := make([]objectstore.OID, 0, len(events))
	for _, ev := range events {
		if oid, ok := ds.index[ObjectKey{ev, typ}]; ok {
			out = append(out, oid)
		}
	}
	return out
}

// FilesTouched returns how many distinct database files hold the given
// objects, and the total bytes of those whole files — the cost of serving
// the selection with file-granularity replication.
func (ds *Dataset) FilesTouched(oids []objectstore.OID) (files int, bytes int64) {
	seen := make(map[uint32]bool)
	for _, oid := range oids {
		seen[oid.DB] = true
	}
	for _, fm := range ds.Files {
		if seen[fm.DBID] {
			files++
			bytes += fm.Bytes
		}
	}
	return files, bytes
}

// TotalBytes is the dataset's full size.
func (ds *Dataset) TotalBytes() int64 {
	var n int64
	for _, fm := range ds.Files {
		n += fm.Bytes
	}
	return n
}

// SelectEvents draws a fresh random subset of m events from [1, total] —
// the paper's "completely fresh event set which nobody else has worked on
// yet".
func SelectEvents(total, m int, seed int64) []uint64 {
	if m > total {
		m = total
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(total)[:m]
	out := make([]uint64, m)
	for i, p := range perm {
		out[i] = uint64(p + 1)
	}
	return out
}

// FunnelStep is one stage of the analysis funnel.
type FunnelStep struct {
	Events     int    // events surviving this step
	ObjectType string // object type consulted at this step
}

// Funnel builds the paper's analysis funnel: the event set shrinks by
// roughly a constant factor per step while the object type grows, from the
// full set reading tags down to the final sample reading raw data.
func Funnel(totalEvents int, types []ObjectSpec, steps int) []FunnelStep {
	if steps < 2 {
		steps = 2
	}
	if len(types) == 0 {
		types = StandardTypes
	}
	out := make([]FunnelStep, steps)
	// Geometric shrink from totalEvents down to ~totalEvents/10^(steps-1),
	// floored at 1.
	for i := 0; i < steps; i++ {
		n := int(float64(totalEvents) / math.Pow(10, float64(i)))
		if n < 1 {
			n = 1
		}
		typeIdx := i * (len(types) - 1) / (steps - 1)
		out[i] = FunnelStep{Events: n, ObjectType: types[typeIdx].Type}
	}
	return out
}

// SparseModel evaluates Section 5.1's argument analytically at arbitrary
// scale: selecting m of n events, with k objects of the type per file and
// objSize bytes per object, what do the two replication strategies move?
type SparseModel struct {
	Events         int     // n: total events (the paper's 10^9)
	Selected       int     // m: selected events (the paper's 10^6)
	ObjectsPerFile int     // k: objects of this type per file
	ObjectSize     float64 // bytes per object (the paper's 10 KB example)
}

// ObjectBytes is what object replication ships: exactly the selection.
func (m SparseModel) ObjectBytes() float64 {
	return float64(m.Selected) * m.ObjectSize
}

// ExpectedFileFraction is the probability that a given file of k objects
// contains at least one selected object: 1 - C(n-k, m)/C(n, m), well
// approximated by 1 - (1 - m/n)^k.
func (m SparseModel) ExpectedFileFraction() float64 {
	p := float64(m.Selected) / float64(m.Events)
	return 1 - math.Pow(1-p, float64(m.ObjectsPerFile))
}

// FileBytes is the expected volume file replication must ship: every file
// containing at least one selected object, in full.
func (m SparseModel) FileBytes() float64 {
	nFiles := float64(m.Events) / float64(m.ObjectsPerFile)
	fileSize := float64(m.ObjectsPerFile) * m.ObjectSize
	return nFiles * m.ExpectedFileFraction() * fileSize
}

// Overhead is FileBytes / ObjectBytes: how many times more data file
// replication moves than the selection actually needs.
func (m SparseModel) Overhead() float64 {
	ob := m.ObjectBytes()
	if ob == 0 {
		return 0
	}
	return m.FileBytes() / ob
}

// ProbMajoritySelected returns the probability that a file of k objects has
// more than half of its objects selected — the paper's "extremely low"
// probability that any existing file is mostly useful to a fresh selection.
// Uses the binomial tail with p = m/n.
func (m SparseModel) ProbMajoritySelected() float64 {
	p := float64(m.Selected) / float64(m.Events)
	k := m.ObjectsPerFile
	need := k/2 + 1
	prob := 0.0
	for i := need; i <= k; i++ {
		prob += binomPMF(k, i, p)
	}
	return prob
}

func binomPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	// log-space for numerical stability
	lg := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

func lnChoose(n, k int) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// ZipfRanks returns n file popularity weights following a Zipf-like law
// with exponent s, normalized to sum to 1 — the access skew the paper cites
// from web-caching studies [Bres99] as motivation for replication.
func ZipfRanks(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// SampleZipf draws count indices in [0, n) according to ZipfRanks weights.
func SampleZipf(n int, s float64, count int, seed int64) []int {
	w := ZipfRanks(n, s)
	cdf := make([]float64, n)
	acc := 0.0
	for i, x := range w {
		acc += x
		cdf[i] = acc
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, count)
	for i := range out {
		u := rng.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo
	}
	return out
}
