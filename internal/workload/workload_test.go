package workload

import (
	"math"
	"testing"
	"testing/quick"

	"gdmp/internal/objectstore"
)

func genSmall(t *testing.T, placement Placement) *Dataset {
	t.Helper()
	ds, err := Generate(Config{
		Events:         50,
		Types:          []ObjectSpec{{"tag", 10}, {"esd", 100}},
		ObjectsPerFile: 20,
		Placement:      placement,
		Dir:            t.TempDir(),
		Seed:           1,
		LinkTypes:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{},
		{Events: 10},
		{Events: 10, ObjectsPerFile: 5},
		{Events: -1, ObjectsPerFile: 5, Dir: "x"},
		{Events: 10, ObjectsPerFile: 5, Dir: t.TempDir(), Placement: Placement(99)},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateCountsAndIndex(t *testing.T) {
	ds := genSmall(t, ByType)
	// 50 events x 2 types = 100 objects, 20 per file = 5 files.
	if len(ds.Files) != 5 {
		t.Fatalf("files = %d", len(ds.Files))
	}
	total := 0
	for _, fm := range ds.Files {
		total += fm.Objects
	}
	if total != 100 {
		t.Fatalf("objects = %d", total)
	}
	// Every (event, type) pair resolves.
	for ev := uint64(1); ev <= 50; ev++ {
		for _, typ := range []string{"tag", "esd"} {
			if _, ok := ds.Lookup(ev, typ); !ok {
				t.Fatalf("Lookup(%d, %s) missed", ev, typ)
			}
		}
	}
	if _, ok := ds.Lookup(999, "tag"); ok {
		t.Fatal("Lookup of absent event succeeded")
	}
	// Expected bytes: 50*10 + 50*100.
	if ds.TotalBytes() != 50*10+50*100 {
		t.Fatalf("TotalBytes = %d", ds.TotalBytes())
	}
}

// TestGeneratedFilesAreReadable opens every generated file through the
// object store and verifies contents agree with the index.
func TestGeneratedFilesAreReadable(t *testing.T) {
	ds := genSmall(t, ByEvent)
	fed := objectstore.NewFederation()
	defer fed.Close()
	for _, fm := range ds.Files {
		id, err := fed.Attach(fm.Path)
		if err != nil {
			t.Fatalf("attach %s: %v", fm.Path, err)
		}
		if id != fm.DBID {
			t.Fatalf("dbid %d != %d", id, fm.DBID)
		}
	}
	oid, _ := ds.Lookup(7, "esd")
	obj, err := fed.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Event != 7 || obj.Type != "esd" || len(obj.Data) != 100 {
		t.Fatalf("object = %+v", obj)
	}
	// LinkTypes: the tag object navigates to the esd object.
	tagOID, _ := ds.Lookup(7, "tag")
	target, err := fed.Navigate(tagOID, 0)
	if err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	if target.Type != "esd" || target.Event != 7 {
		t.Fatalf("navigated to %+v", target)
	}
}

func TestPlacementAffectsLocality(t *testing.T) {
	// Under ByType, the tag objects of consecutive events share files, so
	// selecting a contiguous event range touches few files; under ByEvent
	// they are spread across all files.
	mk := func(p Placement) *Dataset {
		ds, err := Generate(Config{
			Events:         100,
			Types:          []ObjectSpec{{"tag", 10}, {"esd", 100}},
			ObjectsPerFile: 20,
			Placement:      p,
			Dir:            t.TempDir(),
			Seed:           2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	events := make([]uint64, 20)
	for i := range events {
		events[i] = uint64(i + 1) // contiguous range
	}
	byType := mk(ByType)
	byEvent := mk(ByEvent)
	filesA, _ := byType.FilesTouched(byType.ObjectsFor(events, "tag"))
	filesB, _ := byEvent.FilesTouched(byEvent.ObjectsFor(events, "tag"))
	if filesA >= filesB {
		t.Fatalf("ByType touched %d files, ByEvent %d; clustering should help", filesA, filesB)
	}
}

func TestSelectEvents(t *testing.T) {
	sel := SelectEvents(1000, 100, 3)
	if len(sel) != 100 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := make(map[uint64]bool)
	for _, ev := range sel {
		if ev < 1 || ev > 1000 {
			t.Fatalf("event %d out of range", ev)
		}
		if seen[ev] {
			t.Fatalf("event %d selected twice", ev)
		}
		seen[ev] = true
	}
	// Requesting more than available clamps.
	if got := SelectEvents(10, 50, 4); len(got) != 10 {
		t.Fatalf("clamped selection = %d", len(got))
	}
	// Different seeds give different (fresh) selections.
	a := SelectEvents(1000, 100, 5)
	b := SelectEvents(1000, 100, 6)
	same := 0
	inA := make(map[uint64]bool)
	for _, ev := range a {
		inA[ev] = true
	}
	for _, ev := range b {
		if inA[ev] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("two fresh selections identical")
	}
}

func TestFunnelShape(t *testing.T) {
	steps := Funnel(1_000_000, StandardTypes, 4)
	if len(steps) != 4 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Events != 1_000_000 || steps[0].ObjectType != "tag" {
		t.Fatalf("first step = %+v", steps[0])
	}
	if steps[3].ObjectType != "raw" {
		t.Fatalf("last step = %+v", steps[3])
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Events >= steps[i-1].Events {
			t.Fatalf("funnel not shrinking at %d: %+v", i, steps)
		}
	}
}

// TestSparseModelPaperNumbers reproduces the Section 5.1 argument at paper
// scale: 10^6 selected of 10^9 events, 10 KB objects. Object replication
// ships 10 GB; file replication ships vastly more, and the probability that
// any file is >50% selected is essentially zero.
func TestSparseModelPaperNumbers(t *testing.T) {
	m := SparseModel{
		Events:         1_000_000_000,
		Selected:       1_000_000,
		ObjectsPerFile: 1000,
		ObjectSize:     10_000,
	}
	if got := m.ObjectBytes(); got != 1e10 { // 10 GB
		t.Fatalf("ObjectBytes = %g", got)
	}
	// With k=1000 and p=10^-3, ~63%% of files contain a selected object.
	frac := m.ExpectedFileFraction()
	if frac < 0.60 || frac > 0.66 {
		t.Fatalf("ExpectedFileFraction = %v", frac)
	}
	// File replication moves hundreds of times more than needed.
	if ov := m.Overhead(); ov < 100 {
		t.Fatalf("Overhead = %v, expected enormous", ov)
	}
	// "The a priori probability that any existing file happens to contain
	// more than 50%% of the selected objects is extremely low."
	if p := m.ProbMajoritySelected(); p > 1e-100 {
		t.Fatalf("ProbMajoritySelected = %g, expected ~0", p)
	}
}

func TestSparseModelDegenerateCases(t *testing.T) {
	// Selecting everything: both strategies move the whole dataset.
	m := SparseModel{Events: 1000, Selected: 1000, ObjectsPerFile: 10, ObjectSize: 100}
	if frac := m.ExpectedFileFraction(); frac != 1 {
		t.Fatalf("full selection fraction = %v", frac)
	}
	if ov := m.Overhead(); math.Abs(ov-1) > 1e-9 {
		t.Fatalf("full selection overhead = %v", ov)
	}
	// Selecting nothing.
	m.Selected = 0
	if m.ObjectBytes() != 0 || m.Overhead() != 0 {
		t.Fatalf("empty selection: %v %v", m.ObjectBytes(), m.Overhead())
	}
}

// TestSparseModelMatchesSimulation cross-checks the analytic file fraction
// against a materialized dataset.
func TestSparseModelMatchesSimulation(t *testing.T) {
	const (
		events  = 2000
		perFile = 50
		m       = 100
	)
	ds, err := Generate(Config{
		Events:         events,
		Types:          []ObjectSpec{{"esd", 64}},
		ObjectsPerFile: perFile,
		Placement:      ByType,
		Dir:            t.TempDir(),
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := SparseModel{Events: events, Selected: m, ObjectsPerFile: perFile, ObjectSize: 64}

	// Average the empirical touched-file fraction over several fresh
	// selections.
	var fracSum float64
	const trials = 20
	for i := 0; i < trials; i++ {
		sel := SelectEvents(events, m, int64(100+i))
		files, _ := ds.FilesTouched(ds.ObjectsFor(sel, "esd"))
		fracSum += float64(files) / float64(len(ds.Files))
	}
	got := fracSum / trials
	want := model.ExpectedFileFraction()
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("empirical fraction %v vs model %v", got, want)
	}
}

func TestZipf(t *testing.T) {
	w := ZipfRanks(100, 1.0)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	sum := 0.0
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Fatal("weights not decreasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Sampling respects the skew: rank 0 drawn far more than rank 50.
	samples := SampleZipf(100, 1.0, 10_000, 1)
	counts := make([]int, 100)
	for _, s := range samples {
		if s < 0 || s >= 100 {
			t.Fatalf("sample %d out of range", s)
		}
		counts[s]++
	}
	if counts[0] < 5*counts[50] {
		t.Fatalf("zipf skew missing: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestZipfProperty(t *testing.T) {
	f := func(n uint8, sTimes10 uint8) bool {
		size := int(n%50) + 2
		s := 0.5 + float64(sTimes10%20)/10
		w := ZipfRanks(size, s)
		sum := 0.0
		for _, x := range w {
			if x <= 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
