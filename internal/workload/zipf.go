// Zipf-popularity access traces: the skewed read traffic that decides
// disk-pool cache behavior. Web-caching studies the paper cites [Bres99]
// and grid operations experience (EU DataGrid, Magda) both report that a
// small hot set draws most accesses; the cache-soak harness replays these
// traces against MSS-backed consumer sites to measure hit rate and stage
// latency under LRU and FIFO eviction at different skews.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"path"
	"sort"
)

// TraceConfig parameterizes one access trace.
type TraceConfig struct {
	// Files is the catalog size: many small LFNs, ranked by popularity
	// (rank 0 is the hottest).
	Files int

	// FileBytes is the payload size of every file.
	FileBytes int

	// S is the Zipf exponent: higher is more skewed (web traffic is
	// commonly fit near 0.8–1.2).
	S float64

	// Requests is the total number of accesses across all sites.
	Requests int

	// Sites are the consumer sites issuing the accesses; each access picks
	// a site uniformly at random.
	Sites []string

	// Collections spreads the files over this many collections
	// (contiguous popularity-rank blocks, so collection 0 is the hottest);
	// 0 or 1 puts everything in one collection.
	Collections int

	// Seed makes the trace deterministic: the same seed always yields the
	// same accesses, which is what lets CACHE_SEED replay a soak run.
	Seed int64
}

// Access is one trace step: a site requesting a file.
type Access struct {
	Site string
	File int // popularity rank in [0, Files)
}

// Trace is a generated access sequence plus its configuration.
type Trace struct {
	Cfg      TraceConfig
	Accesses []Access
}

// GenerateTrace builds a deterministic Zipf access trace. File choices
// follow ZipfRanks(Files, S); site choices are uniform; both are drawn
// from one seeded generator, so a (config, seed) pair fully determines
// the trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) {
	if cfg.Files <= 0 || cfg.Requests <= 0 {
		return nil, errors.New("workload: trace wants Files > 0 and Requests > 0")
	}
	if len(cfg.Sites) == 0 {
		return nil, errors.New("workload: trace wants at least one site")
	}
	if cfg.S <= 0 {
		return nil, errors.New("workload: trace wants a positive Zipf exponent")
	}
	w := ZipfRanks(cfg.Files, cfg.S)
	cdf := make([]float64, cfg.Files)
	acc := 0.0
	for i, x := range w {
		acc += x
		cdf[i] = acc
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Cfg: cfg, Accesses: make([]Access, cfg.Requests)}
	for i := range t.Accesses {
		u := rng.Float64()
		f := sort.SearchFloat64s(cdf, u)
		if f >= cfg.Files { // cdf[last] can round below 1.0
			f = cfg.Files - 1
		}
		t.Accesses[i] = Access{
			Site: cfg.Sites[rng.Intn(len(cfg.Sites))],
			File: f,
		}
	}
	return t, nil
}

// collections returns the effective collection count.
func (t *Trace) collections() int {
	if t.Cfg.Collections <= 1 {
		return 1
	}
	if t.Cfg.Collections > t.Cfg.Files {
		return t.Cfg.Files
	}
	return t.Cfg.Collections
}

// Collection returns the collection name of file i. Files map to
// collections in contiguous popularity blocks, so the members of a hot
// file's collection are themselves hot — the locality a collection
// prefetcher exploits.
func (t *Trace) Collection(i int) string {
	c := i * t.collections() / t.Cfg.Files
	return fmt.Sprintf("zipf/c%02d", c)
}

// FileName returns the canonical site-relative path of file i, grouped
// under its collection directory.
func (t *Trace) FileName(i int) string {
	return path.Join(t.Collection(i), fmt.Sprintf("f%04d.dat", i))
}

// TopShare reports the fraction of accesses that land on the k most
// accessed files of the actual trace — the hit rate an oracle cache
// holding exactly those k files would see, and therefore the natural
// reference point for asserting hit-rate floors.
func (t *Trace) TopShare(k int) float64 {
	if k <= 0 || len(t.Accesses) == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, a := range t.Accesses {
		counts[a.File]++
	}
	freq := make([]int, 0, len(counts))
	for _, n := range counts {
		freq = append(freq, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	if k > len(freq) {
		k = len(freq)
	}
	top := 0
	for _, n := range freq[:k] {
		top += n
	}
	return float64(top) / float64(len(t.Accesses))
}

// PerSite splits the access sequence by site, preserving order.
func (t *Trace) PerSite() map[string][]int {
	out := make(map[string][]int, len(t.Cfg.Sites))
	for _, a := range t.Accesses {
		out[a.Site] = append(out[a.Site], a.File)
	}
	return out
}
