package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gdmp/internal/obs"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return New(cfg)
}

func TestAdmitImmediateAndRelease(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 2})
	rel1, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	rel2, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	if got := c.InFlight(Control); got != 2 {
		t.Fatalf("in flight = %d, want 2", got)
	}
	rel1()
	rel1() // double release must be a no-op
	rel2()
	if got := c.InFlight(Control); got != 0 {
		t.Fatalf("in flight after release = %d, want 0", got)
	}
	st := c.ClassStats(Control)
	if st.Requested != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want 2 requested / 2 admitted", st)
	}
}

func TestAdmitQueuesAndPromotes(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 1, ControlQueue: 4})
	rel, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := c.Admit(context.Background(), Control, Request{})
		if err == nil {
			rel2()
		}
		got <- err
	}()
	waitFor(t, func() bool { return c.Queued(Control) == 1 })
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued admit: %v", err)
	}
	if !c.Settled() {
		t.Fatalf("accounting not settled: %+v", c.ClassStats(Control))
	}
}

func TestDeadOnArrivalShed(t *testing.T) {
	c := newTestController(t, Config{})
	_, err := c.Admit(context.Background(), Control, Request{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var ov *Overloaded
	if !errors.As(err, &ov) || ov.Reason != "expired" {
		t.Fatalf("err = %#v, want expired Overloaded", err)
	}
	if st := c.ClassStats(Control); st.Expired != 1 {
		t.Fatalf("stats = %+v, want 1 expired", st)
	}
}

func TestExpiredWhileQueuedNeverExecutes(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 1, ControlQueue: 4})
	rel, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), Control, Request{Deadline: time.Now().Add(30 * time.Millisecond)})
		got <- err
	}()
	waitFor(t, func() bool { return c.Queued(Control) == 1 })
	time.Sleep(60 * time.Millisecond) // let the queued deadline lapse
	rel()
	err = <-got
	var ov *Overloaded
	if !errors.As(err, &ov) || ov.Reason != "expired" {
		t.Fatalf("err = %v, want expired Overloaded", err)
	}
	st := c.ClassStats(Control)
	if st.Admitted != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want 1 admitted / 1 expired", st)
	}
}

func TestWaitEstimateRejectsHopelessDeadline(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 1, ControlQueue: 8})
	// Teach the service-time EWMA that executions take ~100ms.
	start := time.Now()
	rel, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	for time.Since(start) < 100*time.Millisecond {
		time.Sleep(5 * time.Millisecond)
	}
	rel()
	// Occupy the only slot, then offer a request whose deadline is far
	// shorter than one estimated service wave.
	rel, err = c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("re-admit: %v", err)
	}
	defer rel()
	_, err = c.Admit(context.Background(), Control, Request{Deadline: time.Now().Add(5 * time.Millisecond)})
	var ov *Overloaded
	if !errors.As(err, &ov) || ov.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline Overloaded", err)
	}
	if ov.RetryAfter() <= 0 {
		t.Fatalf("retry-after = %v, want > 0", ov.RetryAfter())
	}
}

func TestQueueFullShedsHighestAttemptFirst(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 1, ControlQueue: 2})
	rel, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	defer rel()

	type result struct {
		attempt uint32
		err     error
	}
	results := make(chan result, 2)
	for _, attempt := range []uint32{1, 5} {
		attempt := attempt
		go func() {
			_, err := c.Admit(context.Background(), Control, Request{Attempt: attempt})
			results <- result{attempt, err}
		}()
		waitFor(t, func() bool { return c.Queued(Control) >= 1 })
	}
	waitFor(t, func() bool { return c.Queued(Control) == 2 })

	// A first-try arrival displaces the attempt-5 waiter, not attempt-1.
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), Control, Request{Attempt: 0})
		done <- err
	}()
	r := <-results
	if r.attempt != 5 {
		t.Fatalf("shed attempt %d, want 5", r.attempt)
	}
	var ov *Overloaded
	if !errors.As(r.err, &ov) || ov.Reason != "shed" {
		t.Fatalf("shed err = %v, want shed Overloaded", r.err)
	}
	// An equal-attempt arrival cannot displace anyone: queue is full again.
	_, err = c.Admit(context.Background(), Control, Request{Attempt: 1})
	if !errors.As(err, &ov) || ov.Reason != "queue_full" {
		t.Fatalf("err = %v, want queue_full Overloaded", err)
	}
	c.Drain() // unblock the remaining waiters
	<-results
	<-done
}

func TestCancelWhileQueued(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 1, ControlQueue: 4})
	rel, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Control, Request{})
		got <- err
	}()
	waitFor(t, func() bool { return c.Queued(Control) == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rel()
	if !c.Settled() {
		t.Fatalf("accounting not settled: %+v", c.ClassStats(Control))
	}
	if st := c.ClassStats(Control); st.Canceled != 1 {
		t.Fatalf("stats = %+v, want 1 canceled", st)
	}
}

func TestDrainRejectsQueuedAndNew(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 1, ControlQueue: 4})
	rel, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	const queued = 3
	got := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			_, err := c.Admit(context.Background(), Control, Request{})
			got <- err
		}()
	}
	waitFor(t, func() bool { return c.Queued(Control) == queued })
	c.Drain()
	for i := 0; i < queued; i++ {
		if err := <-got; !errors.Is(err, ErrDraining) {
			t.Fatalf("queued err = %v, want ErrDraining", err)
		}
	}
	if _, err := c.Admit(context.Background(), Control, Request{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("new err = %v, want ErrDraining", err)
	}
	rel() // in-flight work still finishes cleanly
	if !c.Settled() {
		t.Fatalf("accounting not settled: %+v", c.ClassStats(Control))
	}
	st := c.ClassStats(Control)
	if st.Drained != queued+1 {
		t.Fatalf("stats = %+v, want %d drained", st, queued+1)
	}
}

func TestBrownoutHysteresisAndDecay(t *testing.T) {
	clock := time.Now()
	now := func() time.Time { return clock }
	c := newTestController(t, Config{
		ControlSlots: 1, ControlQueue: 4,
		BrownoutEnter: 0.5, BrownoutExit: 0.2,
		DecayHalfLife: 100 * time.Millisecond,
		Now:           now,
	})
	// Force a high admission-wait EWMA directly through the internals the
	// public API drives: admit, queue a waiter, advance the clock, grant.
	rel, err := c.Admit(context.Background(), Control, Request{})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), Control, Request{})
		got <- err
	}()
	waitFor(t, func() bool { return c.Queued(Control) == 1 })
	clock = clock.Add(300 * time.Millisecond) // the waiter has now waited 300ms
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued admit: %v", err)
	}
	if !c.Browned() {
		t.Fatalf("load %.2f: brownout should be active after a 300ms admission wait", c.Load())
	}
	if c.Allow("scrub") {
		t.Fatalf("Allow during brownout must defer")
	}
	if s := c.Snap(); !s.BrownoutActive || s.BrownoutEntered != 1 || s.BrownoutDeferred != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	// With no further grants the wait component decays; brownout exits.
	clock = clock.Add(2 * time.Second)
	if c.Browned() {
		t.Fatalf("load %.2f: brownout should have decayed away", c.Load())
	}
	if !c.Allow("scrub") {
		t.Fatalf("Allow after brownout exit must pass")
	}
}

func TestExactAccountingUnderConcurrency(t *testing.T) {
	c := newTestController(t, Config{ControlSlots: 4, ControlQueue: 8, RetryAfterMin: time.Millisecond})
	var wg sync.WaitGroup
	const callers = 64
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			req := Request{Attempt: uint32(i % 7)}
			if i%5 == 0 {
				req.Deadline = time.Now().Add(time.Duration(i%3) * 5 * time.Millisecond)
			}
			rel, err := c.Admit(ctx, Control, req)
			if err == nil {
				time.Sleep(time.Millisecond)
				rel()
			}
		}()
	}
	wg.Wait()
	if !c.Settled() {
		t.Fatalf("accounting not settled: %+v", c.ClassStats(Control))
	}
	st := c.ClassStats(Control)
	if st.Requested != callers {
		t.Fatalf("requested = %d, want %d", st.Requested, callers)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
