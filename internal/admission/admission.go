// Package admission is the server-side overload-protection layer of a
// GDMP site. Production replica services on the European DataGrid died
// not from partitions but from self-inflicted load — registration storms,
// retry storms, and background maintenance competing with user traffic —
// so every request entering a site passes through an admission controller
// before it may execute:
//
//   - per-class concurrency limits (control plane, bulk data, background)
//     with a bounded, deadline-aware wait queue: a request whose estimated
//     queue wait exceeds its remaining deadline is rejected immediately
//     with a typed Overloaded error carrying a server-suggested
//     retry-after, so callers back off instead of amplifying the storm;
//   - shed-first ordering: requests that are already past their propagated
//     deadline are never executed, and when the queue is full the waiter
//     with the highest retry attempt is displaced first — the hottest
//     retriers cool first;
//   - a brownout mode driven by a load signal (queue depth blended with an
//     admission-latency EWMA): under pressure, background work (scrub,
//     anti-entropy, digest pushes, prefetch) defers until load subsides.
//
// The controller is deliberately dependency-light (only obs) so the RPC
// and GridFTP layers can both thread through it.
package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"gdmp/internal/obs"
)

// Class partitions requests by the resource profile of their verb.
type Class int

const (
	// Control is the control plane: catalog lookups, subscriptions,
	// notifications, status — small, latency-sensitive requests.
	Control Class = iota
	// Bulk is the data plane: staging requests and GridFTP transfers.
	Bulk
	// Background is site-initiated maintenance traffic.
	Background

	numClasses
)

// String returns the metric label for the class.
func (c Class) String() string {
	switch c {
	case Control:
		return "control"
	case Bulk:
		return "bulk"
	case Background:
		return "background"
	default:
		return fmt.Sprintf("class%d", int(c))
	}
}

// ErrOverloaded matches (errors.Is) every Overloaded rejection.
var ErrOverloaded = errors.New("admission: overloaded")

// ErrDraining matches Overloaded rejections issued while the controller
// drains for shutdown: new and queued work is refused, in-flight work
// finishes.
var ErrDraining = errors.New("admission: draining")

// Overloaded is a typed admission rejection. It carries the
// server-suggested retry-after, which internal/retry honors as a backoff
// floor and internal/health records as a peer cooldown. It round-trips
// the RPC wire, so remote callers see the same type local callers do.
type Overloaded struct {
	Class  string        // admission class label ("control", "bulk", ...)
	Reason string        // "queue_full", "deadline", "expired", "shed", "draining"
	After  time.Duration // server-suggested minimum backoff before retrying
}

// Error implements error.
func (e *Overloaded) Error() string {
	return fmt.Sprintf("admission: %s overloaded (%s): retry after %v", e.Class, e.Reason, e.After)
}

// RetryAfter returns the server-suggested backoff floor.
func (e *Overloaded) RetryAfter() time.Duration { return e.After }

// Is reports ErrOverloaded for every rejection and additionally
// ErrDraining for shutdown rejections.
func (e *Overloaded) Is(target error) bool {
	if target == ErrOverloaded {
		return true
	}
	return target == ErrDraining && e.Reason == "draining"
}

// Request carries the per-call facts admission decides on.
type Request struct {
	// Deadline is the caller's absolute deadline (zero = none). Requests
	// already past it are shed without executing; requests whose estimated
	// queue wait overruns it are rejected immediately.
	Deadline time.Time
	// Attempt is the caller's retry attempt number (0 = first try). When
	// the queue is full, the waiter with the highest attempt is displaced
	// first.
	Attempt uint32
}

// Config tunes a Controller. Zero fields take the stated defaults.
type Config struct {
	ControlSlots    int // concurrent control-plane executions (default 64)
	BulkSlots       int // concurrent bulk executions (default 8)
	BackgroundSlots int // concurrent background executions (default 2)

	ControlQueue    int // waiting control requests before shedding (default 256)
	BulkQueue       int // waiting bulk requests (default 64)
	BackgroundQueue int // waiting background requests (default 16)

	// BrownoutEnter and BrownoutExit bound the hysteresis band of the
	// brownout state machine on the load signal in [0,1] (defaults 0.75
	// and 0.25).
	BrownoutEnter float64
	BrownoutExit  float64

	// Alpha is the EWMA smoothing factor for service-time and
	// admission-wait estimates (default 0.3).
	Alpha float64

	// RetryAfterMin floors every server-suggested retry-after
	// (default 50ms).
	RetryAfterMin time.Duration

	// DecayHalfLife is the half-life of the admission-wait component of
	// the load signal when no new grants arrive, so brownout exits even
	// if the storm ends in silence (default 2s).
	DecayHalfLife time.Duration

	// Registry receives the gdmp_admission_* and gdmp_brownout_* metrics
	// (default obs.Default).
	Registry *obs.Registry

	// Now substitutes the clock (tests).
	Now func() time.Time
}

// waitRef normalizes the admission-wait EWMA into the load signal: a
// sustained 100ms admission wait saturates the latency component.
const waitRef = 100 * time.Millisecond

func (c *Config) withDefaults() Config {
	out := *c
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&out.ControlSlots, 64)
	def(&out.BulkSlots, 8)
	def(&out.BackgroundSlots, 2)
	def(&out.ControlQueue, 256)
	def(&out.BulkQueue, 64)
	def(&out.BackgroundQueue, 16)
	if out.BrownoutEnter <= 0 || out.BrownoutEnter > 1 {
		out.BrownoutEnter = 0.75
	}
	if out.BrownoutExit <= 0 || out.BrownoutExit >= out.BrownoutEnter {
		out.BrownoutExit = out.BrownoutEnter / 3
	}
	if out.Alpha <= 0 || out.Alpha > 1 {
		out.Alpha = 0.3
	}
	if out.RetryAfterMin <= 0 {
		out.RetryAfterMin = 50 * time.Millisecond
	}
	if out.DecayHalfLife <= 0 {
		out.DecayHalfLife = 2 * time.Second
	}
	if out.Registry == nil {
		out.Registry = obs.Default
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	return out
}

// Counters is the exact settlement accounting of one class. Every request
// that enters Admit settles in exactly one bucket, so at quiescence
// Requested == Admitted + Rejected + Expired + Shed + Drained + Canceled.
type Counters struct {
	Requested uint64 // entered Admit
	Admitted  uint64 // granted a slot (immediately or from the queue)
	Rejected  uint64 // refused: queue full, or estimated wait overran the deadline
	Expired   uint64 // shed: dead on arrival or expired while queued
	Shed      uint64 // displaced from a full queue by a lower-attempt arrival
	Drained   uint64 // refused because the controller is draining
	Canceled  uint64 // caller context canceled while queued
}

func (c Counters) settled() uint64 {
	return c.Admitted + c.Rejected + c.Expired + c.Shed + c.Drained + c.Canceled
}

// Snapshot is the aggregate overload-protection state, exported on the
// status wire.
type Snapshot struct {
	BrownoutActive   bool
	Load             float64 // current load signal in [0,1]
	Admitted         int64
	Rejected         int64 // Rejected + Expired + Shed + Drained across classes
	Expired          int64
	Shed             int64
	BrownoutEntered  int64 // brownout activations since start
	BrownoutDeferred int64 // background work units deferred by brownout
}

type waiter struct {
	ready    chan error // buffered 1; nil = admitted
	deadline time.Time
	attempt  uint32
	enq      time.Time
}

type classState struct {
	class    Class
	slots    int
	queueCap int
	inUse    int
	queue    []*waiter
	svcEWMA  float64 // seconds per execution
	waitEWMA float64 // seconds per admission
	lastObs  time.Time
	counts   Counters
}

type metrics struct {
	admitted   *obs.CounterVec   // {class}
	rejected   *obs.CounterVec   // {class, reason}
	wait       *obs.HistogramVec // {class}
	queueDepth *obs.GaugeVec     // {class}
	inFlight   *obs.GaugeVec     // {class}

	brownActive   *obs.Gauge
	brownEntered  *obs.Counter
	brownDeferred *obs.CounterVec // {work}
	brownLoad     *obs.Gauge      // load signal in milli-units
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		admitted: r.CounterVec("gdmp_admission_admitted_total",
			"Requests granted an execution slot, by class.", "class"),
		rejected: r.CounterVec("gdmp_admission_rejected_total",
			"Requests refused before execution, by class and reason.", "class", "reason"),
		wait: r.HistogramVec("gdmp_admission_wait_seconds",
			"Admission wait from arrival to slot grant, by class.", nil, "class"),
		queueDepth: r.GaugeVec("gdmp_admission_queue_depth",
			"Requests currently waiting for a slot, by class.", "class"),
		inFlight: r.GaugeVec("gdmp_admission_in_flight",
			"Requests currently holding a slot, by class.", "class"),
		brownActive: r.Gauge("gdmp_brownout_active",
			"1 while the site is in brownout (background work deferred)."),
		brownEntered: r.Counter("gdmp_brownout_entered_total",
			"Brownout activations since start."),
		brownDeferred: r.CounterVec("gdmp_brownout_deferred_total",
			"Background work units deferred by brownout, by kind.", "work"),
		brownLoad: r.Gauge("gdmp_brownout_load_milli",
			"Current load signal in milli-units (0-1000)."),
	}
}

// Controller is a per-site admission controller. Safe for concurrent use.
type Controller struct {
	cfg Config
	met *metrics
	now func() time.Time

	mu       sync.Mutex
	draining bool
	brown    bool
	load     float64
	entered  int64
	deferred int64
	classes  [numClasses]*classState
}

// New creates a Controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg: cfg,
		met: newMetrics(cfg.Registry),
		now: cfg.Now,
	}
	slots := [numClasses]int{cfg.ControlSlots, cfg.BulkSlots, cfg.BackgroundSlots}
	queues := [numClasses]int{cfg.ControlQueue, cfg.BulkQueue, cfg.BackgroundQueue}
	for i := range c.classes {
		c.classes[i] = &classState{class: Class(i), slots: slots[i], queueCap: queues[i]}
	}
	return c
}

// Admit asks for an execution slot in class. It returns a release function
// (call exactly once, when the work finishes) or a typed rejection:
// *Overloaded (matching ErrOverloaded, and ErrDraining during shutdown)
// when the request cannot be served in time, or ctx.Err() if the caller
// gave up while queued. The request's deadline is the earlier of
// req.Deadline and ctx's deadline; a request past it never executes.
func (c *Controller) Admit(ctx context.Context, class Class, req Request) (func(), error) {
	if class < 0 || class >= numClasses {
		class = Control
	}
	cs := c.classes[class]
	now := c.now()

	c.mu.Lock()
	cs.counts.Requested++
	if c.draining {
		cs.counts.Drained++
		c.met.rejected.WithLabelValues(cs.class.String(), "draining").Inc()
		c.mu.Unlock()
		return nil, c.overloaded(cs, "draining", 0)
	}
	deadline := req.Deadline
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() && !now.Before(deadline) {
		// Dead on arrival: the caller's budget is already spent, so
		// executing would only burn cycles on an answer nobody reads.
		cs.counts.Expired++
		c.met.rejected.WithLabelValues(cs.class.String(), "expired").Inc()
		c.updateLoadLocked(now)
		c.mu.Unlock()
		return nil, c.overloaded(cs, "expired", 0)
	}
	if cs.inUse < cs.slots && len(cs.queue) == 0 {
		cs.inUse++
		cs.counts.Admitted++
		c.met.admitted.WithLabelValues(cs.class.String()).Inc()
		c.met.inFlight.WithLabelValues(cs.class.String()).Set(int64(cs.inUse))
		c.observeWaitLocked(cs, 0, now)
		c.updateLoadLocked(now)
		c.mu.Unlock()
		return c.releaseFunc(cs, now), nil
	}

	// The request must wait. Reject now if it is predictably hopeless:
	// serving it after its deadline helps nobody, and telling the caller
	// immediately (with a retry-after) costs one queue slot less.
	est := c.estimateLocked(cs, len(cs.queue)+1)
	if !deadline.IsZero() && now.Add(est).After(deadline) {
		cs.counts.Rejected++
		c.met.rejected.WithLabelValues(cs.class.String(), "deadline").Inc()
		c.updateLoadLocked(now)
		c.mu.Unlock()
		return nil, c.overloaded(cs, "deadline", est)
	}
	if len(cs.queue) >= cs.queueCap {
		// Full queue: displace the hottest retrier — the waiter with the
		// highest attempt number has burned the most budget already and
		// backs off hardest when told to. Only a strictly cooler arrival
		// may displace it; otherwise the newcomer is refused.
		vi := -1
		for i, w := range cs.queue {
			if vi < 0 || w.attempt > cs.queue[vi].attempt {
				vi = i
			}
		}
		if vi >= 0 && cs.queue[vi].attempt > req.Attempt {
			victim := cs.queue[vi]
			cs.queue = append(cs.queue[:vi], cs.queue[vi+1:]...)
			cs.counts.Shed++
			c.met.rejected.WithLabelValues(cs.class.String(), "shed").Inc()
			victim.ready <- c.overloaded(cs, "shed", est)
		} else {
			cs.counts.Rejected++
			c.met.rejected.WithLabelValues(cs.class.String(), "queue_full").Inc()
			c.updateLoadLocked(now)
			c.mu.Unlock()
			return nil, c.overloaded(cs, "queue_full", est)
		}
	}
	w := &waiter{ready: make(chan error, 1), deadline: deadline, attempt: req.Attempt, enq: now}
	cs.queue = append(cs.queue, w)
	c.met.queueDepth.WithLabelValues(cs.class.String()).Set(int64(len(cs.queue)))
	c.updateLoadLocked(now)
	c.mu.Unlock()

	select {
	case err := <-w.ready:
		if err != nil {
			return nil, err
		}
		return c.releaseFunc(cs, c.now()), nil
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case err := <-w.ready:
			// Settled concurrently with the cancellation.
			if err == nil {
				// Granted to a caller who already left: hand the slot on.
				cs.inUse--
				c.grantLocked(cs)
				c.met.inFlight.WithLabelValues(cs.class.String()).Set(int64(cs.inUse))
				c.mu.Unlock()
				return nil, ctx.Err()
			}
			c.mu.Unlock()
			return nil, err
		default:
		}
		for i, q := range cs.queue {
			if q == w {
				cs.queue = append(cs.queue[:i], cs.queue[i+1:]...)
				break
			}
		}
		cs.counts.Canceled++
		c.met.rejected.WithLabelValues(cs.class.String(), "canceled").Inc()
		c.met.queueDepth.WithLabelValues(cs.class.String()).Set(int64(len(cs.queue)))
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// overloaded builds the typed rejection with its retry-after suggestion.
func (c *Controller) overloaded(cs *classState, reason string, est time.Duration) *Overloaded {
	after := est
	if after < c.cfg.RetryAfterMin {
		after = c.cfg.RetryAfterMin
	}
	return &Overloaded{Class: cs.class.String(), Reason: reason, After: after}
}

// estimateLocked predicts the queue wait at the given queue position from
// the service-time EWMA: position/slots full service waves ahead of us.
func (c *Controller) estimateLocked(cs *classState, position int) time.Duration {
	if cs.svcEWMA <= 0 {
		return 0
	}
	waves := float64(position) / float64(cs.slots)
	return time.Duration(cs.svcEWMA * waves * float64(time.Second))
}

func (c *Controller) observeWaitLocked(cs *classState, wait time.Duration, now time.Time) {
	sec := wait.Seconds()
	if cs.lastObs.IsZero() {
		cs.waitEWMA = sec
	} else {
		cs.waitEWMA = c.cfg.Alpha*sec + (1-c.cfg.Alpha)*cs.waitEWMA
	}
	cs.lastObs = now
	c.met.wait.WithLabelValues(cs.class.String()).Observe(sec)
}

// releaseFunc hands the slot back and promotes queued waiters. Safe to
// call more than once; only the first call releases.
func (c *Controller) releaseFunc(cs *classState, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			end := c.now()
			c.mu.Lock()
			cs.inUse--
			svc := end.Sub(start).Seconds()
			if cs.svcEWMA == 0 {
				cs.svcEWMA = svc
			} else {
				cs.svcEWMA = c.cfg.Alpha*svc + (1-c.cfg.Alpha)*cs.svcEWMA
			}
			c.grantLocked(cs)
			c.met.inFlight.WithLabelValues(cs.class.String()).Set(int64(cs.inUse))
			c.updateLoadLocked(end)
			c.mu.Unlock()
		})
	}
}

// grantLocked promotes queued waiters into free slots, shedding any whose
// deadline expired while they waited — those never execute.
func (c *Controller) grantLocked(cs *classState) {
	now := c.now()
	for cs.inUse < cs.slots && len(cs.queue) > 0 {
		w := cs.queue[0]
		cs.queue = cs.queue[1:]
		if !w.deadline.IsZero() && !now.Before(w.deadline) {
			cs.counts.Expired++
			c.met.rejected.WithLabelValues(cs.class.String(), "expired").Inc()
			w.ready <- c.overloaded(cs, "expired", 0)
			continue
		}
		cs.inUse++
		cs.counts.Admitted++
		c.met.admitted.WithLabelValues(cs.class.String()).Inc()
		c.observeWaitLocked(cs, now.Sub(w.enq), now)
		w.ready <- nil
	}
	c.met.queueDepth.WithLabelValues(cs.class.String()).Set(int64(len(cs.queue)))
}

// updateLoadLocked recomputes the load signal and steps the brownout
// state machine. Load is the worse of two normalized components: queue
// fullness and the admission-wait EWMA (decayed over time so a storm
// that ends in silence still cools).
func (c *Controller) updateLoadLocked(now time.Time) {
	var load float64
	for _, cs := range c.classes {
		if cs.queueCap > 0 {
			if f := float64(len(cs.queue)) / float64(cs.queueCap); f > load {
				load = f
			}
		}
		w := cs.waitEWMA
		if w > 0 && !cs.lastObs.IsZero() {
			if elapsed := now.Sub(cs.lastObs); elapsed > 0 {
				w *= math.Exp2(-float64(elapsed) / float64(c.cfg.DecayHalfLife))
			}
		}
		if f := w / waitRef.Seconds(); f > load {
			load = f
		}
	}
	if load > 1 {
		load = 1
	}
	c.load = load
	c.met.brownLoad.Set(int64(load * 1000))
	if !c.brown && load >= c.cfg.BrownoutEnter {
		c.brown = true
		c.entered++
		c.met.brownEntered.Inc()
		c.met.brownActive.Set(1)
	} else if c.brown && load <= c.cfg.BrownoutExit {
		c.brown = false
		c.met.brownActive.Set(0)
	}
}

// Allow asks whether a unit of background work (named for metrics:
// "scrub", "antientropy", "digest", "prefetch") may run now. During
// brownout or drain it is deferred and counted; the caller should skip
// the round and retry on its next tick.
func (c *Controller) Allow(work string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return false
	}
	c.updateLoadLocked(c.now())
	if c.brown {
		c.deferred++
		c.met.brownDeferred.WithLabelValues(work).Inc()
		return false
	}
	return true
}

// Drain refuses all queued and future work with a draining rejection
// (matching ErrDraining) while in-flight work finishes. Idempotent.
func (c *Controller) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	for _, cs := range c.classes {
		for _, w := range cs.queue {
			cs.counts.Drained++
			c.met.rejected.WithLabelValues(cs.class.String(), "draining").Inc()
			w.ready <- c.overloaded(cs, "draining", 0)
		}
		cs.queue = nil
		c.met.queueDepth.WithLabelValues(cs.class.String()).Set(0)
	}
}

// Draining reports whether Drain has been called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Browned reports whether brownout is active, refreshing the load signal
// first.
func (c *Controller) Browned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updateLoadLocked(c.now())
	return c.brown
}

// Load returns the current load signal in [0,1].
func (c *Controller) Load() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updateLoadLocked(c.now())
	return c.load
}

// ClassStats returns the exact settlement accounting of one class.
func (c *Controller) ClassStats(class Class) Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.classes[class].counts
}

// Queued returns the number of requests waiting in class.
func (c *Controller) Queued(class Class) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.classes[class].queue)
}

// InFlight returns the number of slots held in class.
func (c *Controller) InFlight(class Class) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.classes[class].inUse
}

// Settled reports whether every request that entered Admit has settled
// into exactly one accounting bucket (no waiters pending). Tests assert
// this at quiescence.
func (c *Controller) Settled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cs := range c.classes {
		if cs.counts.Requested != cs.counts.settled() || len(cs.queue) != 0 {
			return false
		}
	}
	return true
}

// Snap returns the aggregate overload-protection state for the status
// wire.
func (c *Controller) Snap() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updateLoadLocked(c.now())
	var s Snapshot
	s.BrownoutActive = c.brown
	s.Load = c.load
	for _, cs := range c.classes {
		s.Admitted += int64(cs.counts.Admitted)
		s.Rejected += int64(cs.counts.Rejected + cs.counts.Expired + cs.counts.Shed + cs.counts.Drained)
		s.Expired += int64(cs.counts.Expired)
		s.Shed += int64(cs.counts.Shed)
	}
	s.BrownoutEntered = c.entered
	s.BrownoutDeferred = c.deferred
	return s
}
