package core_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gdmp/internal/core"
	"gdmp/internal/objectstore"
	"gdmp/internal/testbed"
)

// buildChainedDBs creates object databases db1 -> db2 -> db3 (cross-file
// associations) plus an unrelated db4 at the producer, attaches them, and
// publishes them as objectivity files. Returns the LFNs by database id.
func buildChainedDBs(t *testing.T, g *testbed.Grid, cern *core.Site) map[uint32]string {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(cern.DataDir(), "dbs"), 0o755); err != nil {
		t.Fatal(err)
	}
	mk := func(dbid, crossTo uint32) string {
		rel := fmt.Sprintf("dbs/db%d.odb", dbid)
		full := filepath.Join(cern.DataDir(), "dbs", fmt.Sprintf("db%d.odb", dbid))
		w, err := objectstore.Create(full, dbid)
		if err != nil {
			t.Fatal(err)
		}
		obj := &objectstore.Object{
			OID: objectstore.OID{Slot: 1}, Type: "raw", Event: uint64(dbid),
			Data: testbed.MakeData(500, int64(dbid)),
		}
		if crossTo != 0 {
			obj.Assocs = []objectstore.OID{{DB: crossTo, Slot: 1}}
		}
		if err := w.Add(obj); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return rel
	}
	// Create the targets first so attach order does not matter.
	rels := map[uint32]string{
		3: mk(3, 0),
		2: mk(2, 3),
		1: mk(1, 2),
		4: mk(4, 0),
	}
	lfns := make(map[uint32]string)
	for dbid := uint32(1); dbid <= 4; dbid++ {
		full := filepath.Join(cern.DataDir(), "dbs", fmt.Sprintf("db%d.odb", dbid))
		if _, err := cern.Federation().Attach(full); err != nil {
			t.Fatal(err)
		}
		pf, err := cern.Publish(rels[dbid], core.PublishOptions{FileType: "objectivity"})
		if err != nil {
			t.Fatalf("publish db%d: %v", dbid, err)
		}
		lfns[dbid] = pf.LFN
	}
	return lfns
}

func TestPublishRecordsAssociationAttributes(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{WithFederation: true})
	lfns := buildChainedDBs(t, g, cern)

	entry, err := g.Catalog.Lookup(lfns[1])
	if err != nil {
		t.Fatal(err)
	}
	if entry.Attrs[core.AttrDBID] != "1" {
		t.Fatalf("dbid attr = %q", entry.Attrs[core.AttrDBID])
	}
	if entry.Attrs[core.AttrAssocDBs] != "2" {
		t.Fatalf("assocdbs attr = %q", entry.Attrs[core.AttrAssocDBs])
	}
	// The standalone db has no assocdbs attribute.
	entry4, _ := g.Catalog.Lookup(lfns[4])
	if _, ok := entry4.Attrs[core.AttrAssocDBs]; ok {
		t.Fatalf("db4 should have no assocdbs, got %q", entry4.Attrs[core.AttrAssocDBs])
	}
}

// TestAssociatedClosureAblation is the Section 2.1 ablation: replicating
// only the requested file breaks navigation; replicating the associated
// closure preserves it.
func TestAssociatedClosureAblation(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{WithFederation: true})
	lfns := buildChainedDBs(t, g, cern)

	// Ablation arm 1: plain Get of db1 only.
	plain := addSite(t, g, "plain.org", testbed.SiteOptions{WithFederation: true})
	if err := plain.Get(lfns[1]); err != nil {
		t.Fatal(err)
	}
	_, err := plain.Federation().Navigate(objectstore.OID{DB: 1, Slot: 1}, 0)
	if !errors.Is(err, objectstore.ErrNotAttached) {
		t.Fatalf("navigation without closure: %v (want ErrNotAttached)", err)
	}

	// Ablation arm 2: GetWithAssociated pulls db1, db2, db3 (not db4).
	closure := addSite(t, g, "closure.org", testbed.SiteOptions{WithFederation: true})
	fetched, err := closure.GetWithAssociated(lfns[1])
	if err != nil {
		t.Fatalf("GetWithAssociated: %v", err)
	}
	if len(fetched) != 3 {
		t.Fatalf("fetched %v", fetched)
	}
	if closure.HasFile(lfns[4]) {
		t.Fatal("unrelated db4 was replicated")
	}
	// Navigation now crosses both hops.
	obj, err := closure.Federation().Navigate(objectstore.OID{DB: 1, Slot: 1}, 0)
	if err != nil {
		t.Fatalf("navigate hop 1: %v", err)
	}
	if obj.OID != (objectstore.OID{DB: 2, Slot: 1}) {
		t.Fatalf("hop 1 landed at %v", obj.OID)
	}
	obj, err = closure.Federation().Navigate(obj.OID, 0)
	if err != nil {
		t.Fatalf("navigate hop 2: %v", err)
	}
	if obj.OID != (objectstore.OID{DB: 3, Slot: 1}) {
		t.Fatalf("hop 2 landed at %v", obj.OID)
	}

	// Idempotent: a second closure fetch finds nothing new.
	fetched, err = closure.GetWithAssociated(lfns[1])
	if err != nil || len(fetched) != 0 {
		t.Fatalf("second closure fetch = %v, %v", fetched, err)
	}
}

func TestGetWithAssociatedMissingTarget(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{WithFederation: true})
	// db1 references db2 but db2 is never published.
	full := filepath.Join(cern.DataDir(), "solo.odb")
	w, err := objectstore.Create(full, 10)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(&objectstore.Object{
		OID: objectstore.OID{Slot: 1}, Type: "raw",
		Assocs: []objectstore.OID{{DB: 20, Slot: 1}},
		Data:   []byte("x"),
	})
	w.Close()
	cern.Federation().Attach(full)
	pf, err := cern.Publish("solo.odb", core.PublishOptions{FileType: "objectivity"})
	if err != nil {
		t.Fatal(err)
	}
	dest := addSite(t, g, "dest.org", testbed.SiteOptions{WithFederation: true})
	fetched, err := dest.GetWithAssociated(pf.LFN)
	if err == nil {
		t.Fatal("closure over unpublished database should fail")
	}
	// The primary file itself did arrive before the failure.
	if len(fetched) != 1 {
		t.Fatalf("fetched = %v", fetched)
	}
}

func TestGetCollection(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	var lfns []string
	for i := 0; i < 4; i++ {
		pf := publish(t, g, cern, fmt.Sprintf("set/f%d.db", i),
			testbed.MakeData(20_000+i, int64(40+i)),
			core.PublishOptions{Collection: "dataset-A"})
		lfns = append(lfns, pf.LFN)
	}
	// One unrelated file outside the collection.
	publish(t, g, cern, "other.db", testbed.MakeData(100, 50), core.PublishOptions{})

	dest := addSite(t, g, "dest.org", testbed.SiteOptions{})
	fetched, err := dest.GetCollection("dataset-A")
	if err != nil {
		t.Fatalf("GetCollection: %v", err)
	}
	if len(fetched) != 4 {
		t.Fatalf("fetched %d files", len(fetched))
	}
	for _, lfn := range lfns {
		if !dest.HasFile(lfn) {
			t.Fatalf("%s missing", lfn)
		}
	}
	if dest.HasFile("lfn://cern.ch/other.db") {
		t.Fatal("file outside the collection was fetched")
	}
	// Re-fetch is a no-op; unknown collection errors.
	if again, err := dest.GetCollection("dataset-A"); err != nil || len(again) != 0 {
		t.Fatalf("refetch = %v, %v", again, err)
	}
	if _, err := dest.GetCollection("no-such-collection"); err == nil {
		t.Fatal("unknown collection accepted")
	}
}
