package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"gdmp/internal/gridftp"
	"gdmp/internal/health"
	"gdmp/internal/obs"
	"gdmp/internal/replica"
)

// This file is the pull path's partition armor: replica sources are ranked
// by the per-peer health scoreboard, peers behind open circuit breakers are
// shed, and a transfer whose byte stream stalls past the source's
// p99-derived deadline is hedged — a second replica is warmed up in the
// background and, if the first source stays wedged, takes over the
// CRC-verified .part prefix instead of restarting from zero.

// HedgeMetricsPrefix namespaces the hedged-pull counters.
const HedgeMetricsPrefix = "gdmp_xfer_hedge"

// errStalled marks a pull leg whose byte stream went quiet past the stall
// deadline. It is deliberately a plain (retryable) error: the leg was
// canceled by our own watchdog, and surfacing the underlying
// context.Canceled would stop the outer failover loop dead.
var errStalled = errors.New("core: transfer stalled")

// errBreakerOpen marks a source refused by its circuit breaker. Retryable:
// the next attempt re-ranks and picks a different replica.
var errBreakerOpen = errors.New("core: source circuit breaker open")

type hedgeMetrics struct {
	started *obs.Counter
	wins    *obs.CounterVec
	wasted  *obs.Counter
}

func newHedgeMetrics(reg *obs.Registry) *hedgeMetrics {
	return &hedgeMetrics{
		started: reg.Counter(HedgeMetricsPrefix+"_started_total",
			"Hedged pull legs started after the active source stalled."),
		wins: reg.CounterVec(HedgeMetricsPrefix+"_wins_total",
			"Pulls that had a hedge in flight, by which leg delivered the file.", "winner"),
		wasted: reg.Counter(HedgeMetricsPrefix+"_wasted_bytes_total",
			"Bytes moved by losing legs that the winner could not reuse."),
	}
}

// healthOrder ranks replica sources by scoreboard health (probe-due peers
// first, so live traffic carries reopen probes; then closed breakers by
// descending EWMA bandwidth) and filters out peers whose breakers refuse
// traffic. When every candidate is gated, the full ranked list returns with
// forced=true: a single-replica grid must not deadlock behind its only
// peer, so the attempt is admitted as an early reopen probe instead.
func (s *Site) healthOrder(order []PFN) (avail []PFN, forced bool) {
	ranked := append([]PFN(nil), order...)
	// Snapshot scores once: the comparator must not see a peer change
	// state mid-sort.
	scores := make([]health.Score, len(ranked))
	for i := range ranked {
		scores[i] = s.health.ScoreOf(ranked[i].Addr)
	}
	idx := make([]int, len(ranked))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return health.Healthier(scores[idx[a]], scores[idx[b]])
	})
	out := make([]PFN, 0, len(ranked))
	for _, i := range idx {
		out = append(out, ranked[i])
	}
	avail = out[:0:0]
	for _, p := range out {
		if s.health.Usable(p.Addr) {
			avail = append(avail, p)
		}
	}
	if len(avail) > 0 {
		return avail, false
	}
	return out, true
}

// hedgeDeadline is the stall deadline for a pull from addr: the
// scoreboard's p99-derived value once the peer has history, the configured
// cold-start default before that, 0 when hedging is disabled.
func (s *Site) hedgeDeadline(addr string) time.Duration {
	if s.cfg.HedgeDeadline < 0 {
		return 0
	}
	if d := s.health.StallDeadline(addr); d > 0 {
		return d
	}
	return s.cfg.HedgeDeadline
}

type legResult struct {
	stats gridftp.TransferStats
	err   error
}

// replicateFromHedged runs one replication attempt with breaker admission
// and stall hedging. The primary leg runs under a watchdog armed with the
// source's stall deadline; if the byte stream goes quiet, a backup replica
// is warmed up (stage request + control-channel dial + size probe) while
// the primary gets one grace window to recover. If it does not, the
// primary is canceled, waited out — there is never a second writer on the
// .part file — and the backup resumes the verified prefix cross-source.
func (s *Site) replicateFromHedged(ctx context.Context, entry *replica.LogicalFile, lfn string, primary PFN, backup *PFN, localPath string, forced bool) error {
	begin := s.health.Begin
	if forced {
		begin = s.health.BeginForced
	}
	end, ok := begin(primary.Addr)
	if !ok {
		return fmt.Errorf("%w: %s", errBreakerOpen, primary.Addr)
	}

	legCtx, cancelLeg := context.WithCancel(ctx)
	defer cancelLeg()

	// The stall clock starts at leg start and advances on every byte the
	// transfer lands, so a source that dies mid-stream is caught as surely
	// as one that never answers.
	var lastProgress atomic.Int64
	lastProgress.Store(time.Now().UnixNano())
	progress := func(int64) { lastProgress.Store(time.Now().UnixNano()) }

	resCh := make(chan legResult, 1)
	go func() {
		stats, err := s.replicateFrom(legCtx, entry, lfn, primary, localPath, progress)
		resCh <- legResult{stats, err}
	}()

	deadline := s.hedgeDeadline(primary.Addr)
	var timer *time.Timer
	var timerC <-chan time.Time
	if deadline > 0 {
		timer = time.NewTimer(deadline)
		defer timer.Stop()
		timerC = timer.C
	}

	hedgeCtx, cancelHedge := context.WithCancel(ctx)
	defer cancelHedge()
	var prepCh chan error
	stalled := false

	finishPrimary := func(res legResult) error {
		err := res.err
		if stalled && err != nil && ctx.Err() == nil {
			// The watchdog canceled the leg; report the stall, not the
			// cancellation, so the caller's retry policy keeps going.
			err = fmt.Errorf("%w: %s moved no bytes for %v pulling %s",
				errStalled, primary.Addr, deadline, lfn)
		}
		end(res.stats.Bytes, res.stats.Elapsed, err)
		return err
	}

	for {
		select {
		case res := <-resCh:
			err := finishPrimary(res)
			if prepCh == nil {
				return err
			}
			cancelHedge()
			if err == nil {
				// The primary recovered inside the hedge's warm-up window:
				// it wins, the hedge is abandoned before moving data.
				s.hedgeMet.wins.WithLabelValues("primary").Inc()
				return nil
			}
			// The primary died with a hedge already warming up: wait for
			// the prep verdict and take over if the backup is reachable.
			if perr := <-prepCh; perr != nil {
				return errors.Join(err, perr)
			}
			return s.hedgeTakeover(ctx, entry, lfn, *backup, localPath, res.stats, progress)
		case <-timerC:
			idle := time.Since(time.Unix(0, lastProgress.Load()))
			if idle < deadline {
				timer.Reset(deadline - idle)
				continue
			}
			stalled = true
			s.health.ObserveStall(primary.Addr)
			if backup == nil {
				// No second replica to race: cancel the wedged leg so the
				// outer failover loop retries instead of hanging on a
				// black-holed connection.
				cancelLeg()
				timerC = nil
				continue
			}
			s.hedgeMet.started.Inc()
			b := *backup
			prepCh = make(chan error, 1)
			go func() { prepCh <- s.hedgePrep(hedgeCtx, entry, lfn, b) }()
			timerC = nil
		case perr := <-prepCh:
			// The hedge is ready before the primary recovered: cancel the
			// stalled leg and wait for it to release the .part file.
			prepCh = nil
			cancelLeg()
			res := <-resCh
			err := finishPrimary(res)
			if err == nil {
				// It squeaked in during the cancel race after all.
				s.hedgeMet.wins.WithLabelValues("primary").Inc()
				return nil
			}
			if perr != nil {
				return errors.Join(err, perr)
			}
			return s.hedgeTakeover(ctx, entry, lfn, *backup, localPath, res.stats, progress)
		case <-ctx.Done():
			cancelLeg()
			finishPrimary(<-resCh)
			return ctx.Err()
		}
	}
}

// hedgePrep warms up the hedge source while the stalled primary gets its
// grace window: the stage request and control-channel dial happen now, so
// a takeover starts with the expensive handshakes already paid.
func (s *Site) hedgePrep(ctx context.Context, entry *replica.LogicalFile, lfn string, backup PFN) error {
	if ctl := entry.Attrs[ctlAttrPrefix+backup.Addr]; ctl != "" {
		if err := s.requestStage(ctx, ctl, lfn); err != nil {
			return fmt.Errorf("core: hedge stage %s at %s: %w", lfn, backup.Addr, err)
		}
	}
	cl, err := s.ftpConnect(backup)(ctx)
	if err != nil {
		return err
	}
	defer cl.Close()
	if _, err := cl.Size(backup.Path); err != nil {
		return err
	}
	return nil
}

// hedgeTakeover runs the backup leg after the primary has been canceled
// and drained. ReliableGetFile resumes the primary's CRC-verified .part
// prefix against the new source (re-verifying it via the source's range
// checksum first), so on the happy path zero already-verified bytes cross
// the wire again. The wasted-bytes ledger charges whatever the loser moved
// that the winner could not reuse.
func (s *Site) hedgeTakeover(ctx context.Context, entry *replica.LogicalFile, lfn string, backup PFN, localPath string, primaryStats gridftp.TransferStats, progress func(int64)) error {
	end, ok := s.health.Begin(backup.Addr)
	if !ok {
		return fmt.Errorf("%w: hedge source %s", errBreakerOpen, backup.Addr)
	}
	stats, err := s.replicateFrom(ctx, entry, lfn, backup, localPath, progress)
	end(stats.Bytes, stats.Elapsed, err)
	if err != nil {
		return err
	}
	s.hedgeMet.wins.WithLabelValues("hedge").Inc()
	wasted := primaryStats.Bytes - stats.ResumedBytes
	if stats.DiscardedBytes > wasted {
		// The prefix handshake failed and the staged bytes were thrown
		// away; charge the larger of the two views of the same loss.
		wasted = stats.DiscardedBytes
	}
	if wasted > 0 {
		s.hedgeMet.wasted.Add(wasted)
	}
	return nil
}
