package core

import (
	"context"
	"fmt"
	"strings"
)

// This file implements dataset- and closure-granularity replication on top
// of single-file Get:
//
//   - GetCollection replicates a whole catalog collection, because
//     "datasets are normally manipulated as a whole" (Section 3.1);
//   - GetWithAssociated replicates a file together with the transitive
//     closure of its associated object database files, preserving
//     navigation at the destination (Section 2.1: "the two files have to
//     be treated as associated files and replicated together in order to
//     preserve the navigation").

// GetCollection replicates every logical file of a catalog collection to
// this site, returning the LFNs actually fetched (already-present files
// are skipped).
func (s *Site) GetCollection(collection string) ([]string, error) {
	return s.GetCollectionCtx(s.ctx, collection)
}

// GetCollectionCtx is GetCollection bounded by a caller context. The
// member pulls fan out through the scheduler, so a collection downloads
// with the worker pool's concurrency rather than one file at a time.
func (s *Site) GetCollectionCtx(ctx context.Context, collection string) ([]string, error) {
	members, err := s.rc.client.ListCollection(ctx, collection)
	if err != nil {
		return nil, err
	}
	// Only files missing before the call count as fetched by it.
	missing := make([]FileInfo, 0, len(members))
	for _, lfn := range members {
		if !s.HasFile(lfn) {
			missing = append(missing, FileInfo{LFN: lfn})
		}
	}
	_, failed, err := s.pullAll(ctx, missing, 0, "collection "+collection)
	failedSet := make(map[string]bool, len(failed))
	for _, fi := range failed {
		failedSet[fi.LFN] = true
	}
	var fetched []string
	for _, fi := range missing {
		if !failedSet[fi.LFN] {
			fetched = append(fetched, fi.LFN)
		}
	}
	return fetched, err
}

// GetWithAssociated replicates a logical file and, for object database
// files, the transitive closure of its associated databases, resolved
// through the replica catalog's dbid/assocdbs attributes. It returns every
// LFN fetched, the requested one first.
//
// Without the closure, navigation from the fetched file to objects in an
// unreplicated database fails with objectstore.ErrNotAttached — exactly the
// hazard Section 2.1 describes.
func (s *Site) GetWithAssociated(lfn string) ([]string, error) {
	return s.GetWithAssociatedCtx(s.ctx, lfn)
}

// GetWithAssociatedCtx is GetWithAssociated bounded by a caller context.
func (s *Site) GetWithAssociatedCtx(ctx context.Context, lfn string) ([]string, error) {
	var fetched []string
	visitedLFN := make(map[string]bool)
	visitedDB := make(map[string]bool)

	queue := []string{lfn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if visitedLFN[cur] {
			continue
		}
		visitedLFN[cur] = true

		entry, err := s.rc.lookup(ctx, cur)
		if err != nil {
			return fetched, err
		}
		if !s.HasFile(cur) {
			if err := s.GetCtx(ctx, cur); err != nil {
				return fetched, err
			}
			fetched = append(fetched, cur)
		}
		if dbid := entry.Attrs[AttrDBID]; dbid != "" {
			visitedDB[dbid] = true
		}
		assoc := entry.Attrs[AttrAssocDBs]
		if assoc == "" {
			continue
		}
		for _, dbid := range strings.Split(assoc, ",") {
			dbid = strings.TrimSpace(dbid)
			if dbid == "" || visitedDB[dbid] {
				continue
			}
			visitedDB[dbid] = true
			target, err := s.lfnForDBID(ctx, dbid)
			if err != nil {
				return fetched, fmt.Errorf("core: associated db %s of %s: %w", dbid, cur, err)
			}
			queue = append(queue, target)
		}
	}
	return fetched, nil
}

// lfnForDBID resolves an object database id to its logical file via the
// catalog — the Grid-level half of the object-to-file mapping of Figure 1.
func (s *Site) lfnForDBID(ctx context.Context, dbid string) (string, error) {
	matches, err := s.rc.query(ctx, "("+AttrDBID+"="+dbid+")")
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("core: no published file holds database %s", dbid)
	}
	if len(matches) > 1 {
		return "", fmt.Errorf("core: database id %s is ambiguous (%d files)", dbid, len(matches))
	}
	return matches[0].Name, nil
}
