package core

import (
	"reflect"
	"testing"
	"time"

	"gdmp/internal/rpc"
)

// brownoutBlockLen is the trailing overload-protection generation: one
// Uint8 flag plus seven fixed-width Int64s.
const brownoutBlockLen = 1 + 7*8

func TestSiteStatusWireRoundTrip(t *testing.T) {
	want := SiteStatus{
		Name:             "cern.ch",
		LocalFiles:       12,
		Subscribers:      3,
		TransfersOK:      40,
		TransfersFailed:  2,
		BytesReplicated:  1 << 30,
		PendingTransfers: 1,
		RestoredFiles:    5,
		RequeuedPulls:    2,
		QuarantinedFiles: 1,
		RequeuedNotices:  4,
		Journal:          "ok",
		PoolUsed:         700,
		PoolCapacity:     1000,
		PoolHits:         55,
		PoolMisses:       11,
		PoolEvictions:    7,

		ParitySidecars:      9,
		ParityRebuilds:      3,
		ParityFallbacks:     1,
		RepairBytesLocal:    4096,
		RepairBytesRepulled: 1 << 20,

		DigestGen:          6,
		DigestPushes:       20,
		DigestLFNs:         12,
		RLIQueries:         8,
		RLIFalsePositives:  2,
		RLSLocateP99Micros: 850,

		HealthPeers: []PeerHealthStatus{
			{
				Peer: "127.0.0.1:2811", Breaker: "open", ConsecFails: 3,
				BandwidthKbps: 80000, LatencyMicros: 1500,
				// time.Unix carries no monotonic reading, so the wire
				// round trip is value-exact.
				LastTransition: time.Unix(0, 1723200000000000000),
			},
			{Peer: "127.0.0.1:2812", Breaker: "closed", BandwidthKbps: 912000},
		},

		BrownoutActive:    true,
		BrownoutLoadMilli: 812,
		AdmissionAdmitted: 4000,
		AdmissionRejected: 37,
		AdmissionExpired:  5,
		AdmissionShed:     9,
		BrownoutEntered:   2,
		BrownoutDeferred:  14,
	}
	var e rpc.Encoder
	encodeSiteStatus(&e, want)
	d := rpc.NewDecoder(e.Bytes())
	got := decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// A status payload from an older daemon stops before the trailing field
// generations; the decoder must fill zero values, not fail — the grid
// upgrades one site at a time.
func TestSiteStatusDecodeOlderGenerations(t *testing.T) {
	full := SiteStatus{
		Name: "fnal.gov", LocalFiles: 2, TransfersOK: 9, BytesReplicated: 512,
		Journal: "ok", PoolUsed: 10, PoolCapacity: 100, PoolHits: 1,
	}

	// Generation 2: Journal present, pool block absent.
	var e rpc.Encoder
	e.String(full.Name)
	e.Uint64(uint64(full.LocalFiles))
	e.Uint64(uint64(full.Subscribers))
	e.Uint64(uint64(full.TransfersOK))
	e.Uint64(uint64(full.TransfersFailed))
	e.Int64(full.BytesReplicated)
	e.Uint64(uint64(full.PendingTransfers))
	e.Uint64(uint64(full.RestoredFiles))
	e.Uint64(uint64(full.RequeuedPulls))
	e.Uint64(uint64(full.QuarantinedFiles))
	e.Uint64(uint64(full.RequeuedNotices))
	gen1 := append([]byte(nil), e.Bytes()...) // generation 1 ends here
	e.String(full.Journal)

	d := rpc.NewDecoder(e.Bytes())
	got := decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode generation 2: %v", err)
	}
	if got.Journal != "ok" || got.PoolCapacity != 0 || got.PoolUsed != 0 {
		t.Fatalf("generation 2 decode = %+v", got)
	}

	// Generation 1: neither Journal nor the pool block.
	d = rpc.NewDecoder(gen1)
	got = decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode generation 1: %v", err)
	}
	if got.Name != "fnal.gov" || got.TransfersOK != 9 || got.Journal != "" || got.PoolCapacity != 0 {
		t.Fatalf("generation 1 decode = %+v", got)
	}

	// Generation 3: pool block present, parity block absent.
	e.Int64(full.PoolUsed)
	e.Int64(full.PoolCapacity)
	e.Int64(full.PoolHits)
	e.Int64(0)
	e.Int64(0)
	d = rpc.NewDecoder(e.Bytes())
	got = decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode generation 3: %v", err)
	}
	if got.PoolCapacity != 100 || got.ParitySidecars != 0 || got.RepairBytesRepulled != 0 {
		t.Fatalf("generation 3 decode = %+v", got)
	}
}

// The pool block strictly appends to the payload: everything before it is
// byte-identical whether the block carries zeros or data, which is what
// lets an older peer stop reading early (field order is the wire ABI).
func TestEncodePoolBlockStrictlyAppends(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok"}
	data := zero
	data.PoolUsed, data.PoolCapacity = 1, 2
	data.PoolHits, data.PoolMisses, data.PoolEvictions = 3, 4, 5

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	if len(bd) < len(bz) {
		t.Fatalf("payload with pool data (%d bytes) shorter than zeros (%d)", len(bd), len(bz))
	}
	// The block is five fixed-width Int64s, followed only by the (here
	// all-zero) five-Int64 parity block, six-Int64 RLS block, the empty
	// health block's count word, and the brownout block; everything
	// before it must be byte-identical across the two payloads.
	n := len(bz) - 17*8 - brownoutBlockLen
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("pool block changed bytes before its own position")
	}
	if string(bz[len(bz)-12*8-brownoutBlockLen:]) != string(bd[len(bd)-12*8-brownoutBlockLen:]) {
		t.Fatal("pool block changed bytes after its own position")
	}
}

// Same contract for the parity block: payloads with and without parity
// data are byte-identical up to the block itself (only the six-Int64 RLS
// block follows it).
func TestEncodeParityBlockStrictlyAppends(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok", PoolCapacity: 9}
	data := zero
	data.ParitySidecars, data.ParityRebuilds, data.ParityFallbacks = 1, 2, 3
	data.RepairBytesLocal, data.RepairBytesRepulled = 4, 5

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	if len(bz) != len(bd) {
		t.Fatalf("payload lengths differ: %d vs %d", len(bz), len(bd))
	}
	n := len(bz) - 12*8 - brownoutBlockLen
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("parity block changed bytes before its own position")
	}
	if string(bz[len(bz)-7*8-brownoutBlockLen:]) != string(bd[len(bd)-7*8-brownoutBlockLen:]) {
		t.Fatal("parity block changed bytes after its own position")
	}
}

// Same contract for the RLS block: payloads with and without RLS data are
// byte-identical up to the block itself (only the health block's count
// word follows it).
func TestEncodeRLSBlockStrictlyAppends(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok", PoolCapacity: 9, ParitySidecars: 7}
	data := zero
	data.DigestGen, data.DigestPushes, data.DigestLFNs = 1, 2, 3
	data.RLIQueries, data.RLIFalsePositives, data.RLSLocateP99Micros = 4, 5, 6

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	if len(bz) != len(bd) {
		t.Fatalf("payload lengths differ: %d vs %d", len(bz), len(bd))
	}
	n := len(bz) - 7*8 - brownoutBlockLen
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("RLS block changed bytes before its own position")
	}
}

// Same contract for the health block, the newest trailing generation: it
// strictly appends, and a payload that stops before it (an older daemon)
// decodes with no peer rows rather than failing.
func TestEncodeHealthBlockStrictlyAppendsAndOlderDecodes(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok", PoolCapacity: 9, DigestGen: 4}
	data := zero
	data.HealthPeers = []PeerHealthStatus{
		{Peer: "127.0.0.1:2811", Breaker: "half_open", ConsecFails: 2,
			BandwidthKbps: 300, LatencyMicros: 40,
			LastTransition: time.Unix(0, 1723200000000000000)},
	}

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	// Everything before the count word is byte-identical; the payload with
	// a peer row is strictly longer.
	n := len(bz) - 8 - brownoutBlockLen
	if len(bd) <= len(bz) {
		t.Fatalf("payload with a peer row (%d bytes) not longer than without (%d)", len(bd), len(bz))
	}
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("health block changed bytes before its own position")
	}

	// An older daemon's payload ends at the RLS block: chop the health
	// block off entirely and decode.
	d := rpc.NewDecoder(bz[:n])
	got := decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode pre-health generation: %v", err)
	}
	if got.HealthPeers != nil || got.DigestGen != 4 || got.PoolCapacity != 9 {
		t.Fatalf("pre-health generation decode = %+v", got)
	}

	// And the full payload round-trips the peer row.
	d = rpc.NewDecoder(bd)
	got = decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode health generation: %v", err)
	}
	if !reflect.DeepEqual(got.HealthPeers, data.HealthPeers) {
		t.Fatalf("health row round trip:\n got %+v\nwant %+v", got.HealthPeers, data.HealthPeers)
	}
}

// Same contract for the brownout block, the newest trailing generation:
// it strictly appends, and a payload that stops before it (a daemon
// predating admission control) decodes with zero overload counters.
func TestEncodeBrownoutBlockStrictlyAppendsAndOlderDecodes(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok", PoolCapacity: 9, DigestGen: 4}
	data := zero
	data.BrownoutActive = true
	data.BrownoutLoadMilli = 900
	data.AdmissionAdmitted, data.AdmissionRejected = 100, 7
	data.AdmissionExpired, data.AdmissionShed = 2, 3
	data.BrownoutEntered, data.BrownoutDeferred = 1, 6

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	if len(bz) != len(bd) {
		t.Fatalf("payload lengths differ: %d vs %d", len(bz), len(bd))
	}
	n := len(bz) - brownoutBlockLen
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("brownout block changed bytes before its own position")
	}

	// An older daemon's payload ends before the brownout block.
	d := rpc.NewDecoder(bd[:n])
	got := decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode pre-brownout generation: %v", err)
	}
	if got.BrownoutActive || got.AdmissionAdmitted != 0 || got.BrownoutDeferred != 0 {
		t.Fatalf("pre-brownout generation decode = %+v", got)
	}
	if got.DigestGen != 4 || got.PoolCapacity != 9 {
		t.Fatalf("pre-brownout generation lost earlier fields: %+v", got)
	}

	// And the full payload round-trips every overload counter.
	d = rpc.NewDecoder(bd)
	got = decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode brownout generation: %v", err)
	}
	if !reflect.DeepEqual(got, data) {
		t.Fatalf("brownout round trip:\n got %+v\nwant %+v", got, data)
	}
}
