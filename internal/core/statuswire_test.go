package core

import (
	"testing"

	"gdmp/internal/rpc"
)

func TestSiteStatusWireRoundTrip(t *testing.T) {
	want := SiteStatus{
		Name:             "cern.ch",
		LocalFiles:       12,
		Subscribers:      3,
		TransfersOK:      40,
		TransfersFailed:  2,
		BytesReplicated:  1 << 30,
		PendingTransfers: 1,
		RestoredFiles:    5,
		RequeuedPulls:    2,
		QuarantinedFiles: 1,
		RequeuedNotices:  4,
		Journal:          "ok",
		PoolUsed:         700,
		PoolCapacity:     1000,
		PoolHits:         55,
		PoolMisses:       11,
		PoolEvictions:    7,

		ParitySidecars:      9,
		ParityRebuilds:      3,
		ParityFallbacks:     1,
		RepairBytesLocal:    4096,
		RepairBytesRepulled: 1 << 20,

		DigestGen:          6,
		DigestPushes:       20,
		DigestLFNs:         12,
		RLIQueries:         8,
		RLIFalsePositives:  2,
		RLSLocateP99Micros: 850,
	}
	var e rpc.Encoder
	encodeSiteStatus(&e, want)
	d := rpc.NewDecoder(e.Bytes())
	got := decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// A status payload from an older daemon stops before the trailing field
// generations; the decoder must fill zero values, not fail — the grid
// upgrades one site at a time.
func TestSiteStatusDecodeOlderGenerations(t *testing.T) {
	full := SiteStatus{
		Name: "fnal.gov", LocalFiles: 2, TransfersOK: 9, BytesReplicated: 512,
		Journal: "ok", PoolUsed: 10, PoolCapacity: 100, PoolHits: 1,
	}

	// Generation 2: Journal present, pool block absent.
	var e rpc.Encoder
	e.String(full.Name)
	e.Uint64(uint64(full.LocalFiles))
	e.Uint64(uint64(full.Subscribers))
	e.Uint64(uint64(full.TransfersOK))
	e.Uint64(uint64(full.TransfersFailed))
	e.Int64(full.BytesReplicated)
	e.Uint64(uint64(full.PendingTransfers))
	e.Uint64(uint64(full.RestoredFiles))
	e.Uint64(uint64(full.RequeuedPulls))
	e.Uint64(uint64(full.QuarantinedFiles))
	e.Uint64(uint64(full.RequeuedNotices))
	gen1 := append([]byte(nil), e.Bytes()...) // generation 1 ends here
	e.String(full.Journal)

	d := rpc.NewDecoder(e.Bytes())
	got := decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode generation 2: %v", err)
	}
	if got.Journal != "ok" || got.PoolCapacity != 0 || got.PoolUsed != 0 {
		t.Fatalf("generation 2 decode = %+v", got)
	}

	// Generation 1: neither Journal nor the pool block.
	d = rpc.NewDecoder(gen1)
	got = decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode generation 1: %v", err)
	}
	if got.Name != "fnal.gov" || got.TransfersOK != 9 || got.Journal != "" || got.PoolCapacity != 0 {
		t.Fatalf("generation 1 decode = %+v", got)
	}

	// Generation 3: pool block present, parity block absent.
	e.Int64(full.PoolUsed)
	e.Int64(full.PoolCapacity)
	e.Int64(full.PoolHits)
	e.Int64(0)
	e.Int64(0)
	d = rpc.NewDecoder(e.Bytes())
	got = decodeSiteStatus(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode generation 3: %v", err)
	}
	if got.PoolCapacity != 100 || got.ParitySidecars != 0 || got.RepairBytesRepulled != 0 {
		t.Fatalf("generation 3 decode = %+v", got)
	}
}

// The pool block strictly appends to the payload: everything before it is
// byte-identical whether the block carries zeros or data, which is what
// lets an older peer stop reading early (field order is the wire ABI).
func TestEncodePoolBlockStrictlyAppends(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok"}
	data := zero
	data.PoolUsed, data.PoolCapacity = 1, 2
	data.PoolHits, data.PoolMisses, data.PoolEvictions = 3, 4, 5

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	if len(bd) < len(bz) {
		t.Fatalf("payload with pool data (%d bytes) shorter than zeros (%d)", len(bd), len(bz))
	}
	// The block is five fixed-width Int64s, followed only by the (here
	// all-zero) five-Int64 parity and six-Int64 RLS blocks; everything
	// before it must be byte-identical across the two payloads.
	n := len(bz) - 16*8
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("pool block changed bytes before its own position")
	}
	if string(bz[len(bz)-11*8:]) != string(bd[len(bd)-11*8:]) {
		t.Fatal("pool block changed bytes after its own position")
	}
}

// Same contract for the parity block: payloads with and without parity
// data are byte-identical up to the block itself (only the six-Int64 RLS
// block follows it).
func TestEncodeParityBlockStrictlyAppends(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok", PoolCapacity: 9}
	data := zero
	data.ParitySidecars, data.ParityRebuilds, data.ParityFallbacks = 1, 2, 3
	data.RepairBytesLocal, data.RepairBytesRepulled = 4, 5

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	if len(bz) != len(bd) {
		t.Fatalf("payload lengths differ: %d vs %d", len(bz), len(bd))
	}
	n := len(bz) - 11*8
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("parity block changed bytes before its own position")
	}
	if string(bz[len(bz)-6*8:]) != string(bd[len(bd)-6*8:]) {
		t.Fatal("parity block changed bytes after its own position")
	}
}

// Same contract for the RLS block: it is the newest trailing generation,
// so payloads with and without RLS data are byte-identical up to the
// block itself.
func TestEncodeRLSBlockStrictlyAppends(t *testing.T) {
	zero := SiteStatus{Name: "x", Journal: "ok", PoolCapacity: 9, ParitySidecars: 7}
	data := zero
	data.DigestGen, data.DigestPushes, data.DigestLFNs = 1, 2, 3
	data.RLIQueries, data.RLIFalsePositives, data.RLSLocateP99Micros = 4, 5, 6

	var ez, ed rpc.Encoder
	encodeSiteStatus(&ez, zero)
	encodeSiteStatus(&ed, data)
	bz, bd := ez.Bytes(), ed.Bytes()
	if len(bz) != len(bd) {
		t.Fatalf("payload lengths differ: %d vs %d", len(bz), len(bd))
	}
	n := len(bz) - 6*8
	if string(bz[:n]) != string(bd[:n]) {
		t.Fatal("RLS block changed bytes before its own position")
	}
}
