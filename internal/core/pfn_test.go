package core

import (
	"testing"
	"testing/quick"
)

func TestPFNRoundTrip(t *testing.T) {
	p := PFN{Addr: "cern.ch:2811", Path: "data/run42.db"}
	s := p.String()
	if s != "gridftp://cern.ch:2811/data/run42.db" {
		t.Fatalf("String = %q", s)
	}
	parsed, err := ParsePFN(s)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != p {
		t.Fatalf("round trip = %+v", parsed)
	}
}

func TestParsePFNErrors(t *testing.T) {
	bad := []string{
		"",
		"http://cern.ch/x",
		"gridftp://",
		"gridftp://cern.ch:2811",   // no path
		"gridftp://noport/file.db", // no port
	}
	for _, s := range bad {
		if _, err := ParsePFN(s); err == nil {
			t.Errorf("ParsePFN(%q) accepted", s)
		}
	}
}

func TestPFNPropertyRoundTrip(t *testing.T) {
	f := func(host string, port uint16, pathSeg string) bool {
		clean := func(s string) string {
			out := make([]rune, 0, len(s))
			for _, r := range s {
				if r > 32 && r != '/' && r != ':' && r < 127 {
					out = append(out, r)
				}
			}
			if len(out) == 0 {
				return "x"
			}
			return string(out)
		}
		p := PFN{
			Addr: clean(host) + ":" + itoa(int(port)%65535+1),
			Path: clean(pathSeg),
		}
		parsed, err := ParsePFN(p.String())
		return err == nil && parsed == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestLocalCatalog(t *testing.T) {
	c := newLocalCatalog()
	if c.len() != 0 {
		t.Fatal("new catalog not empty")
	}
	c.put(FileInfo{LFN: "b", Path: "b", Size: 2, State: StateDisk})
	c.put(FileInfo{LFN: "a", Path: "a", Size: 1, State: StateDisk})
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	list := c.list()
	if list[0].LFN != "a" || list[1].LFN != "b" {
		t.Fatalf("list not sorted: %v", list)
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("get(a) missed")
	}
	if err := c.setState("a", StateTape); err != nil {
		t.Fatal(err)
	}
	fi, _ := c.get("a")
	if fi.State != StateTape {
		t.Fatalf("state = %v", fi.State)
	}
	if err := c.setState("zzz", StateDisk); err == nil {
		t.Fatal("setState on missing entry accepted")
	}
	c.remove("a")
	if _, ok := c.get("a"); ok {
		t.Fatal("remove did not remove")
	}
}
