package core

import (
	"context"
	"gdmp/internal/gsi"
	"gdmp/internal/obs"
	"gdmp/internal/rpc"
)

// MethodMetrics returns the site's metrics registry rendered in the
// Prometheus text exposition format; registered alongside the other GDMP
// methods so `gdmp stats` can scrape any site it can authenticate to.
const MethodMetrics = "gdmp.metrics"

// SiteMetricsPrefix prefixes every site-level metric.
const SiteMetricsPrefix = "gdmp_site"

// siteMetrics instruments the publish/subscribe/replicate cycle of
// Section 4: publication latency, notification fan-out, the pull-queue
// depth consumers drain, and replication outcomes.
type siteMetrics struct {
	publishes          *obs.CounterVec // {outcome}
	publishTime        *obs.Histogram
	notifySent         *obs.CounterVec // {outcome}; one increment per delivery attempt
	notifyRecv         *obs.Counter
	notifyRedeliveries *obs.Counter
	notifySkipped      *obs.Counter
	notifyQueueDepth   *obs.Gauge
	suspectSubscribers *obs.Gauge
	pendingDepth       *obs.Gauge
	subscribers        *obs.Gauge
	replications       *obs.CounterVec // {outcome}
	stageRequests      *obs.CounterVec // {outcome}
}

func newSiteMetrics(r *obs.Registry) *siteMetrics {
	return &siteMetrics{
		publishes: r.CounterVec(SiteMetricsPrefix+"_publishes_total",
			"Files published to the Grid, by outcome.", "outcome"),
		publishTime: r.Histogram(SiteMetricsPrefix+"_publish_seconds",
			"Publish latency (checksum, catalog registration, notification).", nil),
		notifySent: r.CounterVec(SiteMetricsPrefix+"_notifications_total",
			"Publication notices sent to subscribers, by outcome.", "outcome"),
		notifyRecv: r.Counter(SiteMetricsPrefix+"_notifications_received_total",
			"Publication notices received from producers."),
		notifyRedeliveries: r.Counter(SiteMetricsPrefix+"_notify_redeliveries_total",
			"Notification deliveries that failed and were queued for retry."),
		notifySkipped: r.Counter(SiteMetricsPrefix+"_notify_skipped_total",
			"Notifications not queued because the subscriber was suspect."),
		notifyQueueDepth: r.Gauge(SiteMetricsPrefix+"_notify_queue_depth",
			"Publication notices queued for redelivery across all subscribers."),
		suspectSubscribers: r.Gauge(SiteMetricsPrefix+"_suspect_subscribers",
			"Subscribers past the consecutive-failure threshold, awaiting re-subscribe."),
		pendingDepth: r.Gauge(SiteMetricsPrefix+"_pending_queue_depth",
			"Notified-but-not-yet-replicated files awaiting a pull."),
		subscribers: r.Gauge(SiteMetricsPrefix+"_subscribers",
			"Consumer sites currently subscribed."),
		replications: r.CounterVec(SiteMetricsPrefix+"_replications_total",
			"Replication (Get) pipeline runs, by outcome.", "outcome"),
		stageRequests: r.CounterVec(SiteMetricsPrefix+"_stage_requests_total",
			"Staging requests served for remote consumers, by outcome.", "outcome"),
	}
}

func outcomeOf(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}

// Metrics returns the registry this site records into (Config.Metrics, or
// obs.Default).
func (s *Site) Metrics() *obs.Registry { return s.metrics }

// RemoteMetrics fetches another site's metrics dump (Prometheus text
// format) over the Request Manager.
func (s *Site) RemoteMetrics(remoteAddr string) (string, error) {
	cl, err := s.dialGDMP(s.ctx, remoteAddr)
	if err != nil {
		return "", err
	}
	defer cl.Close()
	d, err := cl.CallContext(s.ctx, MethodMetrics, nil)
	if err != nil {
		return "", err
	}
	text := d.String()
	return text, d.Finish()
}

// registerMetricsHandler wires MethodMetrics into the Request Manager.
func (s *Site) registerMetricsHandler() {
	s.gdmpSrv.Handle(MethodMetrics, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		resp.String(s.metrics.Text())
		return nil
	})
}
