package core_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/testbed"
)

func TestTransferHistoryAndStatus(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})

	pf1 := publish(t, g, cern, "h1.db", testbed.MakeData(100_000, 90), core.PublishOptions{})
	pf2 := publish(t, g, cern, "h2.db", testbed.MakeData(50_000, 91), core.PublishOptions{})
	if err := anl.Get(pf1.LFN); err != nil {
		t.Fatal(err)
	}
	if err := anl.Get(pf2.LFN); err != nil {
		t.Fatal(err)
	}
	// A failed transfer is recorded too.
	if err := anl.Get("lfn://nowhere/ghost"); err == nil {
		t.Fatal("ghost get should fail")
	}

	hist := anl.TransferHistory()
	if len(hist) != 2 {
		t.Fatalf("history = %d records (catalog-level failures are not transfers)", len(hist))
	}
	var bytes int64
	for _, r := range hist {
		if r.Failed {
			t.Fatalf("unexpected failed record %+v", r)
		}
		if r.RateMbps <= 0 || r.Elapsed <= 0 || r.Attempts < 1 || r.Source == "" {
			t.Fatalf("implausible record %+v", r)
		}
		bytes += r.Bytes
	}
	if bytes != 150_000 {
		t.Fatalf("history bytes = %d", bytes)
	}

	st := anl.Status()
	if st.Name != "anl.gov" || st.LocalFiles != 2 || st.TransfersOK != 2 ||
		st.TransfersFailed != 0 || st.BytesReplicated != 150_000 {
		t.Fatalf("Status = %+v", st)
	}

	// Status is reachable over the Request Manager.
	remote, err := cern.RemoteStatus(anl.Addr())
	if err != nil {
		t.Fatalf("RemoteStatus: %v", err)
	}
	// The status RPC itself passes admission control, so the remote
	// snapshot counts exactly one more admitted request than the local
	// snapshot taken before the call.
	if remote.AdmissionAdmitted != st.AdmissionAdmitted+1 {
		t.Fatalf("remote AdmissionAdmitted = %d, want %d", remote.AdmissionAdmitted, st.AdmissionAdmitted+1)
	}
	remote.AdmissionAdmitted = st.AdmissionAdmitted
	if !reflect.DeepEqual(remote, st) {
		t.Fatalf("remote status %+v != local %+v", remote, st)
	}
}

func TestFailedTransferRecorded(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	pf := publish(t, g, cern, "doomed.db", testbed.MakeData(10_000, 92), core.PublishOptions{})
	// The bytes vanish at the source (no MSS to restore them), so the
	// transfer itself fails after the catalog lookup succeeded.
	if err := os.Remove(filepath.Join(cern.DataDir(), "doomed.db")); err != nil {
		t.Fatal(err)
	}
	if err := anl.Get(pf.LFN); err == nil {
		t.Fatal("transfer of vanished file should fail")
	}
	hist := anl.TransferHistory()
	if len(hist) != 1 || !hist[0].Failed || hist[0].Error == "" {
		t.Fatalf("history = %+v", hist)
	}
	if hist[0].Attempts != 0 && hist[0].Attempts < 1 {
		t.Fatalf("record = %+v", hist[0])
	}
	st := anl.Status()
	if st.TransfersFailed != 1 || st.TransfersOK != 0 {
		t.Fatalf("Status = %+v", st)
	}
}

func TestAutoTunedDataMover(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{AutoTuneBuffers: true})
	pf1 := publish(t, g, cern, "t1.db", testbed.MakeData(700_000, 110), core.PublishOptions{})
	pf2 := publish(t, g, cern, "t2.db", testbed.MakeData(700_000, 111), core.PublishOptions{})
	// First fetch triggers the negotiation; the second uses the cached
	// buffer. Both must land intact.
	if err := anl.Get(pf1.LFN); err != nil {
		t.Fatalf("first auto-tuned get: %v", err)
	}
	if err := anl.Get(pf2.LFN); err != nil {
		t.Fatalf("second auto-tuned get: %v", err)
	}
	if st := anl.Status(); st.TransfersOK != 2 {
		t.Fatalf("Status = %+v", st)
	}
}

func TestWaitForFileTimesOut(t *testing.T) {
	g := newGrid(t)
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	start := time.Now()
	err := anl.WaitForFile("lfn://never/arrives", 50*time.Millisecond)
	if err == nil {
		t.Fatal("WaitForFile returned without the file")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}
