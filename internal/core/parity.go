package core

// Erasure-coded local repair: the site-side half of internal/parity.
// Every published or landed replica gets a checksummed parity sidecar
// next to its bytes, journaled so recovery and quarantine agree with it
// across a crash. When scrub finds corruption, the damaged blocks are
// rebuilt locally from the surviving blocks plus parity — quarantine and
// the PR 5 WAN re-pull remain only for damage that exceeds the parity
// budget or for sidecars that are themselves unusable.

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"gdmp/internal/gridftp"
	"gdmp/internal/parity"
)

// parityParams returns the site's erasure-code geometry (zero = disabled).
func (s *Site) parityParams() parity.Params {
	return parity.Params{K: s.cfg.ParityK, M: s.cfg.ParityM}
}

// writeParitySidecar generates, persists, and journals the parity sidecar
// for a freshly published or landed replica. The ordering is crash-safe:
// sidecar bytes first (atomic .part→rename), journal record second — a
// crash between the two leaves an unjournaled sidecar that recovery
// verifies and re-adopts, never a journaled promise without bytes.
// Failures are logged, not fatal: a replica without a sidecar simply
// falls back to WAN repair, exactly as before this layer existed.
func (s *Site) writeParitySidecar(fi FileInfo) {
	pp := s.parityParams()
	if !pp.Enabled() || fi.Size <= 0 || fi.State != StateDisk {
		return
	}
	localPath, err := s.resolveLocal(fi.Path)
	if err != nil {
		return
	}
	sc, err := parity.CreateFile(localPath, pp.K, pp.M)
	if err != nil {
		s.logger.Printf("gdmp[%s]: parity: encode %s: %v", s.cfg.Name, fi.LFN, err)
		return
	}
	scPath := parity.SidecarPath(localPath)
	crcHex, err := sc.WriteFile(scPath)
	if err != nil {
		s.logger.Printf("gdmp[%s]: parity: write sidecar for %s: %v", s.cfg.Name, fi.LFN, err)
		return
	}
	// Sidecars are pool residents too: they count against capacity and are
	// attached to their data file, so they leave the pool with it and are
	// never eviction victims on their own.
	if s.storage != nil && s.storage.OnDisk(fi.Path) {
		rel := fi.Path + parity.Suffix
		if err := s.storage.AddToPool(rel); err != nil {
			s.logger.Printf("gdmp[%s]: parity: pool registration of %s: %v", s.cfg.Name, rel, err)
			os.Remove(scPath)
			return
		}
		s.storage.Attach(fi.Path, rel)
	}
	s.parityMu.Lock()
	s.paritySC[fi.LFN] = crcHex
	s.parityMu.Unlock()
	if err := s.persist.paritySet(fi.LFN, crcHex); err != nil {
		s.logger.Printf("gdmp[%s]: parity: journal sidecar for %s: %v", s.cfg.Name, fi.LFN, err)
	}
	s.scrubMet.ParitySidecars.Inc()
}

// dropParitySidecar forgets and deletes a replica's sidecar: registry
// entry, journal record, pool accounting, and bytes. Called whenever the
// data replica leaves the local catalog (withdrawal, eviction to tape) or
// the sidecar itself is found invalid — a sidecar must never outlive the
// replica it describes.
func (s *Site) dropParitySidecar(fi FileInfo) {
	s.parityMu.Lock()
	delete(s.paritySC, fi.LFN)
	s.parityMu.Unlock()
	if err := s.persist.parityDrop(fi.LFN); err != nil {
		s.logger.Printf("gdmp[%s]: parity: journal sidecar drop for %s: %v", s.cfg.Name, fi.LFN, err)
	}
	if s.storage != nil {
		s.storage.Drop(fi.Path + parity.Suffix)
	}
	if localPath, err := s.resolveLocal(fi.Path); err == nil {
		if err := os.Remove(parity.SidecarPath(localPath)); err != nil && !os.IsNotExist(err) {
			s.logger.Printf("gdmp[%s]: parity: remove sidecar for %s: %v", s.cfg.Name, fi.LFN, err)
		}
	}
}

// loadSidecar returns fi's parity sidecar iff it is usable for repair:
// the file decodes and self-verifies, its whole-file CRC matches the
// journaled registry entry (when one exists), and its recorded data CRC
// matches the cataloged CRC of the file it claims to describe. Any
// disagreement drops the sidecar — scrub then takes the WAN fallback and
// regenerates parity once the data file is healthy again. A valid,
// matching sidecar with no journal entry (crash between rename and
// commit) is re-adopted.
func (s *Site) loadSidecar(fi FileInfo, localPath string) *parity.Sidecar {
	scPath := parity.SidecarPath(localPath)
	sc, gotCRC, err := parity.Load(scPath)
	s.parityMu.Lock()
	wantCRC, journaled := s.paritySC[fi.LFN]
	s.parityMu.Unlock()
	if err != nil {
		if !os.IsNotExist(err) {
			s.logger.Printf("gdmp[%s]: parity: sidecar of %s unusable: %v", s.cfg.Name, fi.LFN, err)
			s.dropParitySidecar(fi)
		} else if journaled {
			// Journal promises a sidecar the disk lacks: forget the promise.
			s.dropParitySidecar(fi)
		}
		return nil
	}
	if journaled && gotCRC != wantCRC {
		s.logger.Printf("gdmp[%s]: parity: sidecar of %s is stale (crc %s, journal %s)",
			s.cfg.Name, fi.LFN, gotCRC, wantCRC)
		s.dropParitySidecar(fi)
		return nil
	}
	if fi.CRC32 != "" && fmt.Sprintf("%08x", sc.DataCRC) != fi.CRC32 {
		s.logger.Printf("gdmp[%s]: parity: sidecar of %s describes different content (crc %08x, catalog %s)",
			s.cfg.Name, fi.LFN, sc.DataCRC, fi.CRC32)
		s.dropParitySidecar(fi)
		return nil
	}
	if !journaled {
		s.parityMu.Lock()
		s.paritySC[fi.LFN] = gotCRC
		s.parityMu.Unlock()
		if err := s.persist.paritySet(fi.LFN, gotCRC); err != nil {
			s.logger.Printf("gdmp[%s]: parity: journal recovered sidecar for %s: %v", s.cfg.Name, fi.LFN, err)
		}
	}
	return sc
}

// parityRebuild reconstructs a corrupt replica in place from its sidecar.
// Rebuild verifies the result end-to-end against the recorded whole-file
// CRC before anything is written, and the write goes through the same
// atomic .part→rename path transfers use, so a crash mid-rebuild leaves
// the original bytes plus quarantinable .part debris, never a torn file.
func (s *Site) parityRebuild(fi FileInfo, localPath string, sc *parity.Sidecar) error {
	data, err := os.ReadFile(localPath)
	if err != nil {
		return err
	}
	fixed, rebuilt, err := sc.Rebuild(data)
	if err != nil {
		return err
	}
	tmp := localPath + gridftp.PartSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(fixed); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, localPath); err != nil {
		os.Remove(tmp)
		return err
	}
	var repaired int64
	for _, b := range rebuilt {
		bl := sc.BlockSize
		if off := int64(b) * sc.BlockSize; off+bl > sc.DataSize {
			bl = sc.DataSize - off
		}
		repaired += bl
	}
	s.scrubMet.ParityRebuilds.Inc()
	s.scrubMet.RepairBytesLocal.Add(repaired)
	s.logger.Printf("gdmp[%s]: parity: rebuilt %s in place (%d damaged blocks, %d bytes) from its sidecar",
		s.cfg.Name, fi.LFN, len(rebuilt), repaired)
	return nil
}

// reconstructLocal is the Repairer's reconstruct-first hook: before a
// queued repair spends WAN bytes, re-verify the replica under the scrub
// lock — scrubOne rebuilds it in place from parity when it can. It
// reports whether the file is healthy now; false falls through to the
// re-pull. Files already withdrawn (damage beyond the parity budget, or
// missing bytes) have no local catalog entry and fall through immediately.
func (s *Site) reconstructLocal(ctx context.Context, lfn string) (bool, error) {
	if !s.parityParams().Enabled() {
		return false, nil
	}
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	fi, ok := s.local.get(lfn)
	if !ok {
		return false, nil
	}
	verdict, _ := s.scrubOne(ctx, fi)
	return verdict == scrubOK || verdict == scrubRepaired, nil
}

// sweepOrphanSidecars removes parity sidecars whose data file is gone:
// registry entries for LFNs no longer in the local catalog, and on-disk
// sidecar files next to nothing. Runs with the quarantine retention
// sweep at the end of every scrub pass, so a sidecar never outlives its
// replica by more than one pass even when the deletion path that should
// have dropped it was interrupted.
func (s *Site) sweepOrphanSidecars() {
	s.parityMu.Lock()
	var stale []string
	for lfn := range s.paritySC {
		if _, ok := s.local.get(lfn); !ok {
			stale = append(stale, lfn)
		}
	}
	s.parityMu.Unlock()
	for _, lfn := range stale {
		s.dropParitySidecar(FileInfo{LFN: lfn})
	}
	if s.cfg.DataDir == "" {
		return
	}
	err := filepath.WalkDir(s.cfg.DataDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !parity.IsSidecar(d.Name()) {
			return err
		}
		dataPath := strings.TrimSuffix(path, parity.Suffix)
		if _, serr := os.Stat(dataPath); serr == nil {
			return nil
		}
		s.logger.Printf("gdmp[%s]: parity: sweeping orphaned sidecar %s", s.cfg.Name, path)
		if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
			s.logger.Printf("gdmp[%s]: parity: sweep %s: %v", s.cfg.Name, path, rerr)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		s.logger.Printf("gdmp[%s]: parity: orphan sweep: %v", s.cfg.Name, err)
	}
}

// recoverParity reconciles the journaled sidecar registry against the
// disk after restart recovery has settled the catalog: records for
// replicas that no longer exist are dropped, sidecar files that fail
// verification are dropped and removed, and everything that survives
// fills the in-memory registry. Unjournaled-but-valid sidecars (crash
// between rename and commit) are left on disk for the next scrub pass to
// re-adopt via loadSidecar.
func (s *Site) recoverParity() {
	for lfn, crcHex := range s.persist.recoveredParity() {
		fi, ok := s.local.get(lfn)
		if !ok {
			if err := s.persist.parityDrop(lfn); err != nil {
				s.logger.Printf("gdmp[%s]: parity: journal recovery drop of %s: %v", s.cfg.Name, lfn, err)
			}
			continue
		}
		localPath, err := s.resolveLocal(fi.Path)
		if err != nil {
			continue
		}
		sc, gotCRC, err := parity.Load(parity.SidecarPath(localPath))
		if err != nil || gotCRC != crcHex ||
			(fi.CRC32 != "" && fmt.Sprintf("%08x", sc.DataCRC) != fi.CRC32) {
			s.logger.Printf("gdmp[%s]: recovery: dropping unverifiable sidecar of %s", s.cfg.Name, lfn)
			s.dropParitySidecar(fi)
			continue
		}
		s.parityMu.Lock()
		s.paritySC[lfn] = crcHex
		s.parityMu.Unlock()
	}
}
