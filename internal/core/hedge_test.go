package core

import (
	"strings"
	"testing"

	"gdmp/internal/obs"
)

// TestHedgeMetricsGolden pins the full gdmp_xfer_hedge_* exposition for a
// deterministic hedge history: two hedges started, one won by the hedge
// leg and one by a recovering primary, and 128 KiB moved by a losing leg
// that the winner could not reuse.
func TestHedgeMetricsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	m := newHedgeMetrics(reg)
	m.started.Inc()
	m.wins.WithLabelValues("hedge").Inc()
	m.wasted.Add(128 << 10)
	m.started.Inc()
	m.wins.WithLabelValues("primary").Inc()

	want := strings.Join([]string{
		`# HELP gdmp_xfer_hedge_started_total Hedged pull legs started after the active source stalled.`,
		`# TYPE gdmp_xfer_hedge_started_total counter`,
		`gdmp_xfer_hedge_started_total 2`,
		`# HELP gdmp_xfer_hedge_wasted_bytes_total Bytes moved by losing legs that the winner could not reuse.`,
		`# TYPE gdmp_xfer_hedge_wasted_bytes_total counter`,
		`gdmp_xfer_hedge_wasted_bytes_total 131072`,
		`# HELP gdmp_xfer_hedge_wins_total Pulls that had a hedge in flight, by which leg delivered the file.`,
		`# TYPE gdmp_xfer_hedge_wins_total counter`,
		`gdmp_xfer_hedge_wins_total{winner="hedge"} 1`,
		`gdmp_xfer_hedge_wins_total{winner="primary"} 1`,
		``,
	}, "\n")
	if got := reg.Text(); got != want {
		t.Fatalf("hedge exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
