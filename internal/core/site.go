package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdmp/internal/admission"
	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
	"gdmp/internal/health"
	"gdmp/internal/mss"
	"gdmp/internal/objectstore"
	"gdmp/internal/obs"
	"gdmp/internal/parity"
	"gdmp/internal/replica"
	"gdmp/internal/retry"
	"gdmp/internal/rpc"
	"gdmp/internal/scrub"
	"gdmp/internal/xfer"
)

// Attribute names GDMP stores per logical file, beyond the generic ones in
// package replica.
const (
	// attrPath is the site-relative path of the file (shared by every
	// replica, so a destination recreates the same layout).
	attrPath = "path"

	// attrSite is the producing site's name.
	attrSite = "site"

	// ctlAttrPrefix maps a replica's GridFTP endpoint to the GDMP control
	// endpoint of the site holding it, so consumers can issue staging
	// requests before the disk-to-disk transfer (Section 4.4).
	ctlAttrPrefix = "ctl."

	// AttrDBID is the object-database id of an "objectivity" file,
	// recorded at publish time (see ObjectivityType.PublishAttrs).
	AttrDBID = "dbid"

	// AttrAssocDBs is the comma-separated list of foreign database ids an
	// "objectivity" file's objects reference: the Section 2.1 associated
	// files that must travel together to preserve navigation.
	AttrAssocDBs = "assocdbs"

	// attrObjects is the object count of an "objectivity" file.
	attrObjects = "objects"
)

// GDMP RPC methods (doubling as ACL operations).
const (
	MethodPing        = "gdmp.ping"
	MethodSubscribe   = "gdmp.subscribe"
	MethodUnsubscribe = "gdmp.unsubscribe"
	MethodNotify      = "gdmp.notify"
	MethodCatalog     = "gdmp.catalog"
	MethodStage       = "gdmp.stage"
)

// Methods lists the GDMP server's RPC surface.
var Methods = []string{
	MethodPing, MethodSubscribe, MethodUnsubscribe,
	MethodNotify, MethodCatalog, MethodStage, MethodStatus,
	MethodMetrics, MethodDigest, MethodFsck, MethodHasFile,
	MethodLRCQuery,
}

// AllowSiteUseAll grants every authenticated identity the full GDMP and
// GridFTP surface on an ACL (collaboration-internal default).
func AllowSiteUseAll(acl *gsi.ACL) {
	for _, m := range Methods {
		acl.AllowAll(gsi.Operation(m))
	}
	acl.AllowAll(gridftp.OpRead, gridftp.OpWrite)
}

// classifyMethod maps each RPC method onto an admission class: staging
// moves bytes (bulk), integrity and digest work can always wait
// (background), and everything else is cheap control-plane traffic.
func classifyMethod(method string) admission.Class {
	switch method {
	case MethodStage:
		return admission.Bulk
	case MethodFsck, MethodDigest:
		return admission.Background
	default:
		return admission.Control
	}
}

// ReplicaSelector picks which physical replica to fetch. The paper leaves
// "replica selection based on cost functions" as future work [VTF01]; the
// hook is here, with FirstReplica as the default policy.
type ReplicaSelector func(lfn string, candidates []PFN) PFN

// FirstReplica picks the first candidate (catalog order).
func FirstReplica(_ string, candidates []PFN) PFN { return candidates[0] }

// Config assembles one GDMP site.
type Config struct {
	// Name identifies the site (e.g. "cern.ch").
	Name string

	// DataDir is the disk pool served by the site's GridFTP server. When
	// MSS is set this should be the MSS pool directory.
	DataDir string

	// StateDir, when set, makes the site crash-safe: every mutation of the
	// local catalog, the subscriber registry with its undelivered
	// notification queues, and the pending-pull set is journaled (fsync'd
	// write-ahead log + compacting snapshots) under this directory before
	// it is acknowledged, and a restart replays the journal, reconciles
	// the data directory, and requeues unfinished work. Suspect files are
	// moved to <StateDir>/quarantine. Empty disables persistence.
	StateDir string

	// Cred is the site service credential; TrustRoots anchor peer chains.
	Cred       *gsi.Credential
	TrustRoots []*gsi.Certificate

	// ACL authorizes GDMP and GridFTP operations. Required.
	ACL *gsi.ACL

	// ReplicaCatalog is the address of the central replica catalog server.
	ReplicaCatalog string

	// MSS optionally provides tape staging behind the disk pool.
	MSS *mss.MSS

	// PrefetchThreshold makes the disk-pool prefetcher bring in the rest
	// of a collection (directory prefix) once that many cache misses have
	// hit it; 0 disables prefetching. Only meaningful with an MSS.
	PrefetchThreshold int

	// Federation optionally provides the local object database catalog,
	// required to replicate "objectivity" files.
	Federation *objectstore.Federation

	// AutoReplicate pulls files automatically upon notification (the
	// consumer side of the producer-consumer model).
	AutoReplicate bool

	// Parallelism and BufferBytes tune the data mover's GridFTP sessions.
	Parallelism int
	BufferBytes int

	// PullWorkers bounds how many pull replications run concurrently
	// (default 4). A burst of publication notices queues behind the pool
	// instead of opening one GridFTP session per file.
	PullWorkers int

	// PerSourceLimit caps concurrent transfers fetching from any single
	// source site, so one consumer cannot saturate a producer's GridFTP
	// server (0 = no per-source cap).
	PerSourceLimit int

	// AutoTuneBuffers, when set and BufferBytes is zero, makes the data
	// mover negotiate socket buffers per source using the paper's
	// ping+bandwidth-probe+formula method (Section 6, [Tier00]); the
	// learned value is cached per source endpoint.
	AutoTuneBuffers bool

	// TransferAttempts bounds restart attempts per file (default 3).
	TransferAttempts int

	// Retry is the base backoff policy for the site's network paths
	// (Request Manager dials, stage requests, replica pulls, notification
	// redelivery). Zero fields take the retry package defaults; the policy
	// is labeled per operation before use.
	Retry retry.Policy

	// NotifyFailureThreshold is how many consecutive redelivery failures
	// mark a subscriber suspect (default 3). A suspect subscriber's queue
	// is dropped — it reconciles through Recover — and its health resets
	// when it re-subscribes.
	NotifyFailureThreshold int

	// ScrubInterval paces the background local scrubber: every interval,
	// the site re-reads its cataloged replicas and verifies their CRCs,
	// quarantining corrupt bytes and queueing repairs. Zero disables the
	// loop (on-demand Fsck still works).
	ScrubInterval time.Duration

	// ScrubRateBytes caps the scrubber's disk-read rate in bytes/second,
	// so integrity scans never starve live transfers (0 = unlimited).
	ScrubRateBytes int64

	// AntiEntropyInterval paces the digest exchange with producers and
	// subscribers that catches missed notifications and dangling catalog
	// locations. Zero disables the loop.
	AntiEntropyInterval time.Duration

	// DigestInterval paces the RLS digest pusher: every interval the site
	// condenses its Local Replica Catalog into a bloom filter and pushes
	// it to the Replica Location Index co-hosted with the replica catalog
	// server, keeping itself routable for peers' lookups. Zero disables
	// the loop (the site still answers LRC point queries).
	DigestInterval time.Duration

	// DigestTTL is the soft-state lifetime requested for pushed digests
	// (default 3x DigestInterval, so one missed push never ages the site
	// out of the index). The RLI caps it at its own TTL.
	DigestTTL time.Duration

	// DigestFPRate is the bloom digest's target false-positive rate
	// (default 0.01). False positives cost peers one extra LRC point
	// query; they never produce a wrong answer.
	DigestFPRate float64

	// QuarantineMaxAge and QuarantineMaxCount bound the growth of
	// <StateDir>/quarantine: entries older than MaxAge are swept, and the
	// oldest are removed beyond MaxCount. Zero means unlimited.
	QuarantineMaxAge   time.Duration
	QuarantineMaxCount int

	// ParityK and ParityM enable erasure-coded local repair: every
	// published or pool-landed file gets a Reed-Solomon parity sidecar of
	// ParityM parity blocks over ParityK data blocks, written next to the
	// file and journaled. The scrubber then rebuilds up to ParityM damaged
	// blocks locally instead of re-pulling the whole file over the WAN.
	// Both zero (the default) disables parity; parity.DefaultK/DefaultM
	// give the stock 8+2 geometry.
	ParityK int
	ParityM int

	// Health tunes the per-peer health scoreboard and circuit breakers
	// that gate every pull source (zero fields take the health package
	// defaults). The Registry field is managed by the site; set Seed for
	// replayable reopen jitter in tests.
	Health health.Config

	// HedgeDeadline is the stall deadline for pulls from sources the
	// scoreboard has no history for: a transfer moving no bytes for this
	// long starts (or fails over to) a second replica, resuming the
	// verified .part prefix cross-source. Once a source has history its
	// p99-derived deadline wins. Zero takes the default (10s); negative
	// disables stall detection and hedging.
	HedgeDeadline time.Duration

	// Select chooses among replicas (default FirstReplica).
	Select ReplicaSelector

	// DialFunc substitutes the transport dialer (WAN emulation).
	DialFunc func(network, addr string) (net.Conn, error)

	// ListenHost is the host to bind servers on (default 127.0.0.1).
	ListenHost string

	// GDMPListen and FTPListen optionally pin the two servers to fixed
	// "host:port" addresses (daemons); empty picks ephemeral ports under
	// ListenHost (tests and in-process grids).
	GDMPListen string
	FTPListen  string

	// Logger receives diagnostics; nil discards.
	Logger *log.Logger

	// Metrics is the registry the site (and its GridFTP and Request
	// Manager servers) records instrumentation into; nil uses obs.Default.
	Metrics *obs.Registry

	// Admission tunes the site's overload-protection controller: per-class
	// concurrency limits with bounded deadline-aware wait queues for the
	// RPC and GridFTP servers, plus the brownout load signal that defers
	// background work under pressure. Zero fields take the admission
	// package defaults; the Registry field is managed by the site.
	Admission admission.Config

	// RPCMaxConns caps how many GDMP server connections may be open at
	// once; excess connections are closed at accept (0 = unlimited).
	RPCMaxConns int

	// MaxQueuedPulls caps the pull scheduler's queue depth. At the cap a
	// new submission displaces the lowest-priority queued pull only when
	// it strictly outranks it; otherwise the newcomer is rejected with
	// xfer.ErrQueueFull. Zero leaves the queue unbounded.
	MaxQueuedPulls int

	// StageWriter, when non-nil, wraps the staging-file writer of every
	// replica pull (fault-injection harnesses emulate disk-full with it).
	StageWriter func(io.WriterAt) io.WriterAt
}

// PublishedFile reports one file made visible to the Grid.
type PublishedFile struct {
	LFN  string
	PFN  PFN
	Size int64
	CRC  string
}

// Site is a running GDMP node: GDMP server, GridFTP server, local catalog,
// data mover, and storage manager, per Figure 4.
type Site struct {
	cfg    Config
	logger *log.Logger

	gdmpSrv *rpc.Server
	ftpSrv  *gridftp.Server

	gdmpLn net.Listener
	ftpLn  net.Listener

	rc    *rcService
	local *localCatalog

	federation *objectstore.Federation
	storage    *mss.MSS

	types *typeRegistry

	subMu       sync.Mutex
	subscribers map[string]*subscriberState // site name -> delivery state
	notifyWG    sync.WaitGroup

	// ctx is canceled by Close; it gates retry backoffs and redelivery
	// drains so shutdown does not wait out a backoff schedule.
	ctx    context.Context
	cancel context.CancelFunc

	pendMu  sync.Mutex
	pending []FileInfo // notified but not yet replicated

	// sched owns the pull pipeline: bounded workers, FIFO+priority
	// admission, in-flight LFN dedup, and per-source caps.
	sched     *xfer.Scheduler
	closeOnce sync.Once

	xferLog *transferLog

	// persist journals durable state mutations; nil without Config.StateDir.
	persist  *sitePersistence
	recovery RecoveryStats

	metrics *obs.Registry
	met     *siteMetrics

	// Self-healing runtime (internal/scrub): metrics, the scan rate
	// limiter, the repair driver, and the background daemon. scrubMu
	// serializes passes and guards the in-memory cursor mirror.
	scrubMet *scrub.Metrics
	scrubLim *scrub.Limiter
	repairer *scrub.Repairer
	scrubDmn *scrub.Daemon
	scrubMu  sync.Mutex
	scrubCur string

	// producers are the ctl addresses this site has subscribed to — its
	// anti-entropy pull peers (journaled, so they survive restarts).
	prodMu    sync.Mutex
	producers map[string]bool

	// paritySC mirrors the journaled parity-sidecar registry: LFN → hex
	// CRC of the sidecar file last written for it. loadSidecar checks a
	// sidecar against this before trusting it for a rebuild.
	parityMu sync.Mutex
	paritySC map[string]string

	// RLS runtime (rls.go): the digest pusher's generation counter and
	// change-detection hash, plus its loop's join handle.
	rlsMet         *rlsSiteMetrics
	digestGen      atomic.Uint64
	digestMu       sync.Mutex
	lastDigestHash uint64
	rlsWG          sync.WaitGroup

	// health is the per-peer scoreboard and circuit-breaker bank gating
	// the pull path; hedgeMet counts hedged-pull outcomes (hedge.go).
	health   *health.Board
	hedgeMet *hedgeMetrics

	// admit is the overload-protection controller shared by the GDMP RPC
	// server (per-method classes), the GridFTP server (bulk class), and
	// the background loops (brownout gating).
	admit *admission.Controller

	tuneMu   sync.Mutex
	tunedBuf map[string]int // source data addr -> negotiated buffer

	// Disk-pool cache runtime: the gdmp_pool_* family and the
	// per-collection demand counters behind the prefetcher (see pool.go).
	poolMet    *obs.PoolMetrics
	prefMu     sync.Mutex
	poolDemand map[string]int
}

// NewSite builds and starts a site: both servers listen on ephemeral ports.
func NewSite(cfg Config) (*Site, error) {
	if cfg.Name == "" {
		return nil, errors.New("core: site Name must be set")
	}
	if cfg.DataDir == "" {
		return nil, errors.New("core: site DataDir must be set")
	}
	if cfg.Cred == nil {
		return nil, errors.New("core: site Cred must be set")
	}
	if cfg.ACL == nil {
		return nil, errors.New("core: site ACL must be set")
	}
	if cfg.ReplicaCatalog == "" {
		return nil, errors.New("core: site ReplicaCatalog address must be set")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 2
	}
	if cfg.TransferAttempts <= 0 {
		cfg.TransferAttempts = 3
	}
	if cfg.NotifyFailureThreshold <= 0 {
		cfg.NotifyFailureThreshold = 3
	}
	if cfg.Select == nil {
		cfg.Select = FirstReplica
	}
	if cfg.ListenHost == "" {
		cfg.ListenHost = "127.0.0.1"
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default
	}
	if cfg.HedgeDeadline == 0 {
		cfg.HedgeDeadline = 10 * time.Second
	}
	if err := (parity.Params{K: cfg.ParityK, M: cfg.ParityM}).Validate(); err != nil {
		return nil, err
	}

	dialOpts := []rpc.DialOption{rpc.WithTimeout(30 * time.Second)}
	if cfg.DialFunc != nil {
		dialOpts = append(dialOpts, rpc.WithDialer(cfg.DialFunc))
	}
	rcClient, err := replica.Dial(cfg.ReplicaCatalog, cfg.Cred, cfg.TrustRoots, dialOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: connect replica catalog: %w", err)
	}

	s := &Site{
		cfg:    cfg,
		logger: cfg.Logger,
		rc: &rcService{client: rcClient, dial: func() (*replica.Client, error) {
			return replica.Dial(cfg.ReplicaCatalog, cfg.Cred, cfg.TrustRoots, dialOpts...)
		}},
		local:       newLocalCatalog(),
		federation:  cfg.Federation,
		storage:     cfg.MSS,
		types:       newTypeRegistry(),
		subscribers: make(map[string]*subscriberState),
		xferLog:     newTransferLog(0),
		metrics:     cfg.Metrics,
		met:         newSiteMetrics(cfg.Metrics),
		tunedBuf:    make(map[string]int),
		paritySC:    make(map[string]string),
	}
	hcfg := cfg.Health
	hcfg.Registry = cfg.Metrics
	s.health = health.New(hcfg)
	s.hedgeMet = newHedgeMetrics(cfg.Metrics)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	acfg := cfg.Admission
	acfg.Registry = cfg.Metrics
	s.admit = admission.New(acfg)
	s.sched = xfer.New(xfer.Config{
		Workers:   cfg.PullWorkers,
		PerSource: cfg.PerSourceLimit,
		MaxQueue:  cfg.MaxQueuedPulls,
		Registry:  cfg.Metrics,
	})
	if s.federation != nil {
		if err := s.types.register(ObjectivityType{}); err != nil {
			s.sched.Close()
			rcClient.Close()
			return nil, err
		}
	}

	if cfg.StateDir != "" {
		persist, torn, err := openPersistence(cfg.StateDir, cfg.Metrics, cfg.Logger)
		if err != nil {
			s.sched.Close()
			rcClient.Close()
			return nil, err
		}
		s.persist = persist
		if err := s.restoreFromJournal(torn); err != nil {
			persist.close(false)
			s.sched.Close()
			rcClient.Close()
			return nil, fmt.Errorf("core: restart recovery: %w", err)
		}
	}

	// The self-healing runtime comes up before the servers: the digest
	// and fsck handlers use it, and producer tracking restores from the
	// journal replay above.
	s.initScrub()
	s.initRLS()

	ftpSrv, err := gridftp.NewServer(gridftp.ServerConfig{
		Root:       cfg.DataDir,
		Cred:       cfg.Cred,
		TrustRoots: cfg.TrustRoots,
		ACL:        cfg.ACL,
		Logger:     cfg.Logger,
		Metrics:    cfg.Metrics,
		Admit: func(string) (func(), error) {
			// Data-moving verbs share the bulk class with stage RPCs, so
			// one admission budget bounds all disk-to-disk movement.
			return s.admit.Admit(s.ctx, admission.Bulk, admission.Request{})
		},
	})
	if err != nil {
		s.persist.close(false)
		s.sched.Close()
		rcClient.Close()
		return nil, err
	}
	ftpListen := cfg.FTPListen
	if ftpListen == "" {
		ftpListen = net.JoinHostPort(cfg.ListenHost, "0")
	}
	s.ftpSrv = ftpSrv
	s.ftpLn, err = net.Listen("tcp", ftpListen)
	if err != nil {
		s.persist.close(false)
		s.sched.Close()
		rcClient.Close()
		return nil, err
	}
	go ftpSrv.Serve(s.ftpLn)

	gdmpListen := cfg.GDMPListen
	if gdmpListen == "" {
		gdmpListen = net.JoinHostPort(cfg.ListenHost, "0")
	}
	s.gdmpSrv = rpc.NewServer(cfg.Cred, cfg.TrustRoots, cfg.ACL)
	s.gdmpSrv.SetMetrics(cfg.Metrics)
	s.gdmpSrv.SetAdmission(s.admit, classifyMethod)
	s.gdmpSrv.MaxConns = cfg.RPCMaxConns
	s.registerHandlers()
	s.gdmpLn, err = net.Listen("tcp", gdmpListen)
	if err != nil {
		s.persist.close(false)
		s.sched.Close()
		s.ftpSrv.Close()
		rcClient.Close()
		return nil, err
	}
	go s.gdmpSrv.Serve(s.gdmpLn)

	// The pool cache hooks in once both servers are up (evictions build
	// PFNs from the data address) and before recovered pulls resume, so
	// every eviction they trigger is already catalog-consistent.
	s.initPool()

	if s.persist != nil {
		// Only now can recovered work run: delivery drains need the site
		// context, requeued pulls need the servers' addresses.
		s.resumeRecovered()
	}
	// Startup retention sweep, then the background loops — after recovery,
	// so the first pass sees a settled catalog.
	s.sweepQuarantine()
	s.startScrubDaemon()
	s.startDigestLoop()
	return s, nil
}

// Name returns the site name.
func (s *Site) Name() string { return s.cfg.Name }

// Addr returns the GDMP control endpoint.
func (s *Site) Addr() string { return s.gdmpLn.Addr().String() }

// DataAddr returns the GridFTP endpoint.
func (s *Site) DataAddr() string { return s.ftpLn.Addr().String() }

// DataDir returns the disk-pool directory.
func (s *Site) DataDir() string { return s.cfg.DataDir }

// Federation returns the site's object federation (may be nil).
func (s *Site) Federation() *objectstore.Federation { return s.federation }

// RegisterFileType adds a custom replication plug-in.
func (s *Site) RegisterFileType(ft FileType) error { return s.types.register(ft) }

// LocalFiles lists the site's local file catalog.
func (s *Site) LocalFiles() []FileInfo { return s.local.list() }

// HasFile reports whether the LFN is replicated locally.
func (s *Site) HasFile(lfn string) bool {
	_, ok := s.local.get(lfn)
	return ok
}

// Query searches the central replica catalog with an LDAP-style filter.
func (s *Site) Query(filter string) ([]*replica.LogicalFile, error) {
	return s.QueryCtx(s.ctx, filter)
}

// QueryCtx is Query bounded by a caller context.
func (s *Site) QueryCtx(ctx context.Context, filter string) ([]*replica.LogicalFile, error) {
	return s.rc.query(ctx, filter)
}

// Close shuts the site down. With a StateDir, the final state is folded
// into a journal snapshot so the next start replays nothing.
func (s *Site) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.cancel()
		// The self-healing loops first: the daemon's in-flight pass and
		// the repairer's in-flight pull both unblock on the canceled site
		// context, and nothing may queue new work into a closing scheduler.
		if s.scrubDmn != nil {
			s.scrubDmn.Close()
		}
		if s.repairer != nil {
			s.repairer.Close()
		}
		// Stop the pull pipeline: running transfers are canceled, queued
		// jobs fail with context.Canceled, and the workers drain.
		s.sched.Close()
		s.notifyWG.Wait()
		s.rlsWG.Wait()
		e1 := s.gdmpSrv.Close()
		e2 := s.ftpSrv.Close()
		e3 := s.rc.close()
		if s.federation != nil {
			s.federation.Close()
		}
		s.persist.close(true)
		for _, e := range []error{e1, e2, e3} {
			if e != nil && err == nil {
				err = e
			}
		}
	})
	return err
}

// Kill tears the site down abruptly, skipping every graceful step: the
// journal is severed first — no final compaction, no further appends — so
// the disk holds exactly what was fsync'd at the moment of death, the
// same image a SIGKILL or power loss would leave. Crash tests restart a
// site on the same StateDir/DataDir afterwards.
func (s *Site) Kill() {
	s.persist.close(false)
	s.Close()
}

// Drain shuts the site down gracefully: new pull admissions fail with
// xfer.ErrDraining while queued and running transfers get until ctx
// expires to finish; whatever does not make it stays journaled as
// unfinished work and is requeued on the next start. It returns the
// dedup keys (LFNs) of the pulls it had to abandon.
func (s *Site) Drain(ctx context.Context) (abandoned []string, err error) {
	// Admission first: every queued request is rejected with ErrDraining
	// and no new work is admitted, so the scheduler drain below only has
	// to wait out transfers that were already running.
	s.admit.Drain()
	abandoned, derr := s.sched.Drain(ctx)
	if derr != nil {
		s.logger.Printf("gdmp[%s]: drain abandoned %d pulls: %v", s.cfg.Name, len(abandoned), derr)
	}
	cerr := s.Close()
	if derr != nil {
		return abandoned, derr
	}
	return nil, cerr
}

// Recovery reports what the last restart reconstructed (zero value when
// the site has no StateDir or started fresh).
func (s *Site) Recovery() RecoveryStats { return s.recovery }

// resolveLocal maps a site-relative path into the data directory.
func (s *Site) resolveLocal(rel string) (string, error) {
	clean := path.Clean("/" + strings.ReplaceAll(rel, "\\", "/"))
	if clean == "/" {
		return "", errors.New("core: empty path")
	}
	return filepath.Join(s.cfg.DataDir, filepath.FromSlash(clean)), nil
}

// pfnFor builds this site's PFN for a site-relative path.
func (s *Site) pfnFor(rel string) PFN {
	return PFN{Addr: s.DataAddr(), Path: strings.TrimPrefix(path.Clean("/"+rel), "/")}
}

// --- publish ----------------------------------------------------------------

// PublishOptions tunes Publish.
type PublishOptions struct {
	// LFN overrides the generated logical file name.
	LFN string

	// FileType selects the replication plug-in (default "flat").
	FileType string

	// Collection, when set, groups the file in the replica catalog.
	Collection string
}

// Publish makes a locally produced file visible to the Grid (Section 4.2):
// it is added to the replica catalog with its meta-information, and all
// subscribers are notified of its existence.
func (s *Site) Publish(relPath string, opts PublishOptions) (PublishedFile, error) {
	return s.publishCore(s.ctx, relPath, opts, true)
}

// publishCore registers a file and optionally notifies subscribers.
func (s *Site) publishCore(ctx context.Context, relPath string, opts PublishOptions, notify bool) (pf PublishedFile, err error) {
	defer s.met.publishTime.Time()()
	defer func() { s.met.publishes.WithLabelValues(outcomeOf(err)).Inc() }()
	localPath, err := s.resolveLocal(relPath)
	if err != nil {
		return PublishedFile{}, err
	}
	info, err := os.Stat(localPath)
	if err != nil {
		return PublishedFile{}, fmt.Errorf("core: publish %s: %w", relPath, err)
	}
	if info.IsDir() {
		return PublishedFile{}, fmt.Errorf("core: publish %s: is a directory", relPath)
	}
	crc, err := gridftp.CRC32File(localPath)
	if err != nil {
		return PublishedFile{}, err
	}
	crcHex := fmt.Sprintf("%08x", crc)

	ftName := opts.FileType
	if ftName == "" {
		ftName = FlatType{}.Name()
	}
	ft, err := s.types.lookup(ftName)
	if err != nil {
		return PublishedFile{}, err
	}
	var typeAttrs map[string]string
	if ap, ok := ft.(AttrProvider); ok {
		typeAttrs, err = ap.PublishAttrs(localPath)
		if err != nil {
			return PublishedFile{}, err
		}
	}

	lfn := opts.LFN
	if lfn == "" {
		lfn = "lfn://" + s.cfg.Name + "/" + strings.TrimPrefix(path.Clean("/"+relPath), "/")
	}
	pfn := s.pfnFor(relPath)
	attrs := map[string]string{
		replica.AttrSize:         strconv.FormatInt(info.Size(), 10),
		replica.AttrModified:     replica.Timestamp(info.ModTime()),
		replica.AttrCRC:          crcHex,
		replica.AttrFileType:     ftName,
		replica.AttrOwner:        s.cfg.Cred.Identity().String(),
		attrPath:                 pfn.Path,
		attrSite:                 s.cfg.Name,
		ctlAttrPrefix + pfn.Addr: s.Addr(),
	}
	for k, v := range typeAttrs {
		attrs[k] = v
	}
	if err := s.rc.publishFile(ctx, lfn, attrs, pfn, opts.Collection); err != nil {
		return PublishedFile{}, err
	}

	fi := FileInfo{
		LFN: lfn, Path: pfn.Path, Size: info.Size(),
		CRC32: crcHex, FileType: ftName, State: StateDisk,
	}
	s.local.put(fi)
	if err := s.persist.putFile(fi); err != nil {
		// The journal-before-ack contract: a publication that cannot be
		// made durable must fail rather than ack.
		return PublishedFile{}, fmt.Errorf("core: journal publish %s: %w", lfn, err)
	}
	if s.storage != nil {
		if err := s.storage.AddToPool(pfn.Path); err != nil {
			s.logger.Printf("gdmp[%s]: pool registration of %s: %v", s.cfg.Name, pfn.Path, err)
		} else {
			// Producer originals are never evicted: cache pressure from
			// pulled replicas must not push locally produced data out of
			// the pool before it is archived.
			s.storage.Protect(pfn.Path)
		}
	}
	s.writeParitySidecar(fi)

	if notify {
		if err := s.notifySubscribers([]FileInfo{fi}); err != nil {
			return PublishedFile{}, err
		}
	}
	return PublishedFile{LFN: lfn, PFN: pfn, Size: info.Size(), CRC: crcHex}, nil
}

// subscriberState is the per-subscriber delivery queue and health record.
// All fields are guarded by Site.subMu.
type subscriberState struct {
	name     string
	addr     string
	queue    []FileInfo // notices not yet acknowledged
	failures int        // consecutive delivery failures
	suspect  bool       // past the failure threshold; skipped until re-subscribe
	draining bool       // a drain goroutine is running
}

// notifySubscribers queues the publication notice for every healthy
// subscriber and kicks each subscriber's drain goroutine. Delivery is
// asynchronous and retried with backoff; a subscriber that keeps failing
// turns suspect and reconciles later via the catalog transfer (Recover).
// A journal failure keeps the notice out of the in-memory queue too and
// is returned, so Publish fails rather than acks a notice that would not
// survive a crash.
func (s *Site) notifySubscribers(files []FileInfo) error {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	var errs []error
	for _, st := range s.subscribers {
		if st.suspect {
			s.met.notifySkipped.Inc()
			continue
		}
		// Journaled before Publish returns: an acknowledged publication's
		// notices survive a crash and redeliver after restart.
		if err := s.persist.notifyQueue(st.name, files); err != nil {
			errs = append(errs, fmt.Errorf("core: journal notice for %s: %w", st.name, err))
			continue
		}
		st.queue = append(st.queue, files...)
		if !st.draining {
			st.draining = true
			s.notifyWG.Add(1)
			go s.drainSubscriber(st)
		}
	}
	s.updateNotifyGaugesLocked()
	return errors.Join(errs...)
}

// updateNotifyGaugesLocked refreshes the queue-depth and suspect gauges;
// the caller holds subMu.
func (s *Site) updateNotifyGaugesLocked() {
	var depth, suspect int64
	for _, st := range s.subscribers {
		depth += int64(len(st.queue))
		if st.suspect {
			suspect++
		}
	}
	s.met.notifyQueueDepth.Set(depth)
	s.met.suspectSubscribers.Set(suspect)
}

// drainSubscriber delivers one subscriber's queued notices in order,
// backing off between consecutive failures. After NotifyFailureThreshold
// consecutive failures the subscriber is marked suspect and its queue
// dropped: GDMP's recovery path for a site that missed notifications is the
// producer-catalog reconciliation (Recover), not an unbounded queue.
func (s *Site) drainSubscriber(st *subscriberState) {
	defer s.notifyWG.Done()
	pol := s.cfg.Retry
	for {
		s.subMu.Lock()
		if len(st.queue) == 0 || st.suspect || s.ctx.Err() != nil {
			st.draining = false
			s.updateNotifyGaugesLocked()
			s.subMu.Unlock()
			return
		}
		batch := st.queue
		addr := st.addr
		s.subMu.Unlock()

		err := s.sendNotify(s.ctx, addr, batch)
		s.met.notifySent.WithLabelValues(outcomeOf(err)).Inc()

		s.subMu.Lock()
		if err == nil {
			// New notices may have been queued while the send ran; keep them.
			st.queue = st.queue[len(batch):]
			st.failures = 0
			// Best-effort: a failed ack record redelivers the batch after a
			// restart, and consumers dedup by LFN.
			if err := s.persist.notifyAck(st.name, len(batch)); err != nil {
				s.logger.Printf("gdmp[%s]: journal notify-ack for %s: %v", s.cfg.Name, st.name, err)
			}
			s.updateNotifyGaugesLocked()
			s.subMu.Unlock()
			continue
		}
		st.failures++
		failures := st.failures
		if failures >= s.cfg.NotifyFailureThreshold {
			st.suspect = true
			st.draining = false
			st.queue = nil
			if err := s.persist.notifyDrop(st.name); err != nil {
				s.logger.Printf("gdmp[%s]: journal notify-drop for %s: %v", s.cfg.Name, st.name, err)
			}
			s.updateNotifyGaugesLocked()
			s.subMu.Unlock()
			s.logger.Printf("gdmp[%s]: subscriber %s (%s) suspect after %d failures: %v",
				s.cfg.Name, st.name, addr, failures, err)
			return
		}
		s.subMu.Unlock()
		s.met.notifyRedeliveries.Inc()
		s.logger.Printf("gdmp[%s]: notify %s (%s) failed (%d/%d), retrying: %v",
			s.cfg.Name, st.name, addr, failures, s.cfg.NotifyFailureThreshold, err)
		if retry.Sleep(s.ctx, pol.Delay(failures)) != nil {
			s.subMu.Lock()
			st.draining = false
			s.subMu.Unlock()
			return
		}
	}
}

// NotifyQueueDepth reports how many notices are queued for redelivery
// across all subscribers.
func (s *Site) NotifyQueueDepth() int {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	n := 0
	for _, st := range s.subscribers {
		n += len(st.queue)
	}
	return n
}

// SuspectSubscribers lists subscribers currently marked suspect.
func (s *Site) SuspectSubscribers() []string {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	var out []string
	for name, st := range s.subscribers {
		if st.suspect {
			out = append(out, name)
		}
	}
	return out
}

// --- subscribe ----------------------------------------------------------------

// SubscribeTo registers this site as a consumer of another site's
// publications (Section 4.1's first client service).
func (s *Site) SubscribeTo(remoteAddr string) error {
	return s.SubscribeToCtx(s.ctx, remoteAddr)
}

// SubscribeToCtx is SubscribeTo bounded by a caller context.
func (s *Site) SubscribeToCtx(ctx context.Context, remoteAddr string) error {
	cl, err := s.dialGDMP(ctx, remoteAddr)
	if err != nil {
		return err
	}
	defer cl.Close()
	var e rpc.Encoder
	e.String(s.cfg.Name)
	e.String(s.Addr())
	if _, err = cl.CallContext(ctx, MethodSubscribe, &e); err != nil {
		return err
	}
	// The producer is now an anti-entropy peer: its digest tells us about
	// files whose notifications we miss.
	s.addProducer(remoteAddr)
	return nil
}

// UnsubscribeFrom removes this site from a producer's subscriber list.
func (s *Site) UnsubscribeFrom(remoteAddr string) error {
	return s.UnsubscribeFromCtx(s.ctx, remoteAddr)
}

// UnsubscribeFromCtx is UnsubscribeFrom bounded by a caller context.
func (s *Site) UnsubscribeFromCtx(ctx context.Context, remoteAddr string) error {
	cl, err := s.dialGDMP(ctx, remoteAddr)
	if err != nil {
		return err
	}
	defer cl.Close()
	var e rpc.Encoder
	e.String(s.cfg.Name)
	if _, err = cl.CallContext(ctx, MethodUnsubscribe, &e); err != nil {
		return err
	}
	s.removeProducer(remoteAddr)
	return nil
}

// Subscribers lists the currently subscribed consumer sites.
func (s *Site) Subscribers() []string {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	out := make([]string, 0, len(s.subscribers))
	for name := range s.subscribers {
		out = append(out, name)
	}
	return out
}

// retryPolicy labels the site's base policy for one operation and points
// its instrumentation at the site registry.
func (s *Site) retryPolicy(op string) retry.Policy {
	p := s.cfg.Retry
	p.Op = op
	p.Registry = s.metrics
	if p.Retryable == nil {
		p.Retryable = transientRPC
	}
	return p
}

// transientRPC retries transport failures but not application-level
// errors: a *rpc.RemoteError means the exchange worked and the remote
// handler rejected the request, which a redial will not change. A typed
// overload rejection IS retryable — the server is explicitly asking the
// caller to come back later, and retry.Do floors its backoff at the
// server-suggested retry-after.
func transientRPC(err error) bool {
	if errors.Is(err, admission.ErrOverloaded) {
		return true
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return false
	}
	return retry.DefaultRetryable(err)
}

// --- remote catalog / ping -----------------------------------------------------

// RemoteCatalog fetches another site's local file catalog — GDMP's failure
// recovery path: a site that missed notifications reconciles against the
// producer's catalog.
func (s *Site) RemoteCatalog(remoteAddr string) ([]FileInfo, error) {
	return s.RemoteCatalogCtx(s.ctx, remoteAddr)
}

// RemoteCatalogCtx is RemoteCatalog bounded by a caller context.
func (s *Site) RemoteCatalogCtx(ctx context.Context, remoteAddr string) ([]FileInfo, error) {
	cl, err := s.dialGDMP(ctx, remoteAddr)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	d, err := cl.CallContext(ctx, MethodCatalog, nil)
	if err != nil {
		return nil, err
	}
	files := decodeFileInfos(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return files, nil
}

// Ping checks liveness and returns the remote site's name.
func (s *Site) Ping(remoteAddr string) (string, error) {
	cl, err := s.dialGDMP(s.ctx, remoteAddr)
	if err != nil {
		return "", err
	}
	defer cl.Close()
	d, err := cl.CallContext(s.ctx, MethodPing, nil)
	if err != nil {
		return "", err
	}
	name := d.String()
	return name, d.Finish()
}

// Recover pulls every file the remote site has that we lack, using its
// catalog instead of notifications (failure recovery after downtime).
func (s *Site) Recover(remoteAddr string) (fetched int, err error) {
	return s.RecoverCtx(s.ctx, remoteAddr)
}

// RecoverCtx is Recover bounded by a caller context. Every missing file is
// attempted even when some fail — a single dead source must not stop the
// whole reconciliation — and the failures come back joined, alongside the
// true count of files that did arrive.
func (s *Site) RecoverCtx(ctx context.Context, remoteAddr string) (fetched int, err error) {
	files, err := s.RemoteCatalogCtx(ctx, remoteAddr)
	if err != nil {
		return 0, err
	}
	// Recovery is bulk reconciliation; it runs below notification-driven
	// pulls so it cannot starve them.
	fetched, _, err = s.pullAll(ctx, files, -1, "recover")
	return fetched, err
}

// dialGDMP opens a Request Manager session, retrying transient dial
// failures under the site policy.
func (s *Site) dialGDMP(ctx context.Context, addr string) (*rpc.Client, error) {
	var cl *rpc.Client
	pol := s.retryPolicy("core.dial")
	err := pol.Do(ctx, func(int) error {
		var derr error
		start := time.Now()
		cl, derr = rpc.DialContext(ctx, addr, s.cfg.Cred, s.cfg.TrustRoots, s.rpcDialOpts()...)
		// Every control-plane dial feeds the scoreboard: latency on
		// success, a breaker strike on failure. Control endpoints are
		// their own peer keys, separate from data endpoints.
		s.health.Observe(addr, time.Since(start), derr)
		return derr
	})
	return cl, err
}

// --- get (replication) ----------------------------------------------------------

// Get replicates a logical file to this site, running the full pipeline of
// Section 4.1: pre-processing, secure restartable transfer with CRC
// verification, post-processing, and insertion into the replica catalog.
// Concurrent Gets of the same LFN coalesce onto one scheduler job, and
// every waiter receives that job's real error.
func (s *Site) Get(lfn string) error {
	return s.GetCtx(s.ctx, lfn)
}

// GetCtx is Get bounded by a caller context. The pull itself runs as a
// scheduler job under the site's lifetime; ctx only bounds this caller's
// wait. When the last interested caller gives up, the job is canceled
// (dequeued if still pending, interrupted mid-transfer if running).
func (s *Site) GetCtx(ctx context.Context, lfn string) error {
	if s.HasFile(lfn) {
		if s.storage != nil {
			// A Get satisfied by a resident replica is a pool cache hit;
			// the matching miss is counted when a pull lands (replicate).
			// The hit also refreshes the replica's recency, or LRU would
			// never see read traffic and degenerate to FIFO.
			if fi, ok := s.local.get(lfn); ok {
				s.storage.Touch(fi.Path)
			}
			s.storage.NoteAccess(true, 0)
		}
		return nil
	}
	return s.submitGet(lfn, 0).Wait(ctx)
}

// submitGet admits one LFN pull to the scheduler; the LFN is the dedup
// key, so concurrent submissions share a single transfer.
func (s *Site) submitGet(lfn string, priority int) *xfer.Ticket {
	// Admission is durable: a crash between here and replication requeues
	// the pull at restart (no-op when the LFN is already journaled with
	// richer detail from its notification). A journal failure degrades the
	// pull to memory-only — the caller still holds the ticket and no ack
	// has gone to anyone yet, so losing it in a crash is safe.
	if err := s.persist.pullQueued(FileInfo{LFN: lfn}); err != nil {
		s.logger.Printf("gdmp[%s]: journal pull admission %s: %v", s.cfg.Name, lfn, err)
	}
	return s.sched.Submit(lfn, priority, func(jobCtx context.Context) error {
		if s.HasFile(lfn) {
			s.journalPullDone(lfn)
			return nil
		}
		err := s.replicate(jobCtx, lfn)
		s.met.replications.WithLabelValues(outcomeOf(err)).Inc()
		if err == nil {
			s.journalPullDone(lfn)
		}
		return err
	})
}

// journalPullDone retires a pull's journal record. Best-effort: a record
// that outlives its pull merely requeues at the next restart, where the
// already-present file retires it for good.
func (s *Site) journalPullDone(lfn string) {
	if err := s.persist.pullDone(lfn); err != nil {
		s.logger.Printf("gdmp[%s]: journal pull-done %s: %v", s.cfg.Name, lfn, err)
	}
}

func (s *Site) replicate(ctx context.Context, lfn string) error {
	entry, err := s.rc.lookup(ctx, lfn)
	if err != nil {
		return fmt.Errorf("core: lookup %s: %w", lfn, err)
	}
	candidates, err := s.rc.locations(ctx, lfn)
	if err != nil {
		return err
	}
	// Never fetch from ourselves.
	usable := candidates[:0:0]
	for _, p := range candidates {
		if p.Addr != s.DataAddr() {
			usable = append(usable, p)
		}
	}
	if len(usable) == 0 {
		// The central location table came up empty (withdrawal race,
		// partial registration, foreign publisher): fall back to the RLI
		// tier, confirming digest hints with LRC point queries.
		usable = s.rliSources(ctx, entry, lfn)
	}
	if len(usable) == 0 {
		return fmt.Errorf("core: no remote replica of %s", lfn)
	}
	// Failover order: the selector's pick first, then the remaining
	// replicas in catalog order.
	pick := s.cfg.Select(lfn, usable)
	order := make([]PFN, 0, len(usable))
	order = append(order, pick)
	for _, p := range usable {
		if p != pick {
			order = append(order, p)
		}
	}

	ftName := entry.Attrs[replica.AttrFileType]
	if ftName == "" {
		ftName = FlatType{}.Name()
	}
	ft, err := s.types.lookup(ftName)
	if err != nil {
		return err
	}

	// Step 1: pre-processing.
	if err := ft.PreProcess(s, lfn); err != nil {
		return fmt.Errorf("core: pre-process %s: %w", lfn, err)
	}

	// Step 2: the actual file transfer (staged at the source if needed).
	// Attempts rotate through the replica locations, so a dead or corrupt
	// source fails over to the next one under the same backoff policy.
	rel := entry.Attrs[attrPath]
	if rel == "" {
		rel = order[0].Path
	}
	localPath, err := s.resolveLocal(rel)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(localPath), 0o755); err != nil {
		return err
	}
	size, _ := entry.Size()
	var poolReserve func()
	if s.storage != nil {
		release, rerr := s.storage.Reserve(size)
		if rerr != nil {
			return fmt.Errorf("core: reserve %d bytes for %s: %w", size, lfn, rerr)
		}
		// The defer covers the error paths; the success path releases
		// explicitly before AddToPool, because holding the reservation
		// while the pool also counts the landed bytes would double-charge
		// capacity and trigger spurious evictions. Release is once-only,
		// so both firing is safe.
		defer release()
		poolReserve = release
	}
	pol := s.retryPolicy("core.replicate")
	if pol.Attempts < len(order) {
		pol.Attempts = len(order) // visit every replica at least once
	}
	fetchStart := time.Now()
	err = pol.Do(ctx, func(attempt int) error {
		// Each attempt re-ranks the replicas by live health: open-breaker
		// peers are shed (unless every peer is gated, in which case the
		// attempt doubles as a forced reopen probe), probe-due peers go
		// first so traffic closes breakers, and the healthiest remaining
		// usable peer stands by as the hedge target.
		avail, forced := s.healthOrder(order)
		src := avail[(attempt-1)%len(avail)]
		var backup *PFN
		for i := range avail {
			if avail[i].Addr != src.Addr && s.health.Usable(avail[i].Addr) {
				b := avail[i]
				backup = &b
				break
			}
		}
		return s.replicateFromHedged(ctx, entry, lfn, src, backup, localPath, forced)
	})
	if err != nil {
		return fmt.Errorf("core: transfer %s: %w", lfn, err)
	}
	fetchElapsed := time.Since(fetchStart)

	// Step 3: post-processing (e.g. attach to the federation).
	if err := ft.PostProcess(s, lfn, localPath); err != nil {
		return fmt.Errorf("core: post-process %s: %w", lfn, err)
	}

	// Step 4: insert into the local catalog (journaled) first, then
	// register the location with the replica catalog. The local catalog
	// backs gdmp.digest, so this order means a crash or RC failure
	// between the two leaves a local file without an RC entry — which
	// the scrubber's location re-assertion heals — rather than an RC
	// entry whose digest denies the file, which peers' anti-entropy
	// rounds would withdraw as dangling.
	info, err := os.Stat(localPath)
	if err != nil {
		return err
	}
	myPFN := s.pfnFor(rel)
	fi := FileInfo{
		LFN: lfn, Path: myPFN.Path, Size: info.Size(),
		CRC32: entry.Attrs[replica.AttrCRC], FileType: ftName, State: StateDisk,
	}
	s.local.put(fi)
	if err := s.persist.putFile(fi); err != nil {
		return fmt.Errorf("core: journal replica %s: %w", lfn, err)
	}
	if s.storage != nil {
		poolReserve()
		if err := s.storage.AddToPool(myPFN.Path); err != nil {
			s.logger.Printf("gdmp[%s]: pool registration of %s: %v", s.cfg.Name, myPFN.Path, err)
		}
		s.storage.NoteAccess(false, fetchElapsed)
		s.notePoolDemand(rel)
	}
	s.writeParitySidecar(fi)
	if err := s.rc.addReplica(ctx, lfn, myPFN); err != nil {
		return err
	}
	if err := s.rc.setAttrs(ctx, lfn, map[string]string{ctlAttrPrefix + myPFN.Addr: s.Addr()}); err != nil {
		return err
	}
	return nil
}

// replicateFrom runs one replication attempt against one source: stage
// request, restartable transfer, and verification against the catalog's
// published CRC (not only the source's current content, which guards
// against catalog/file drift). A CRC mismatch removes the local file and
// returns a retryable error so the caller fails over to another replica.
// The returned stats are reported even on failure — the hedge driver's
// breaker feed and wasted-bytes ledger need the partial byte counts.
func (s *Site) replicateFrom(ctx context.Context, entry *replica.LogicalFile, lfn string, src PFN, localPath string, progress func(int64)) (gridftp.TransferStats, error) {
	// The source is only known here, after replica selection, so the
	// per-source concurrency cap is enforced at this layer rather than at
	// admission. Blocking counts against the job, not the queue.
	release, err := s.sched.AcquireSource(ctx, src.Addr)
	if err != nil {
		return gridftp.TransferStats{}, err
	}
	defer release()
	if ctl := entry.Attrs[ctlAttrPrefix+src.Addr]; ctl != "" {
		if err := s.requestStage(ctx, ctl, lfn); err != nil {
			err = fmt.Errorf("core: stage %s at source: %w", lfn, err)
			s.xferLog.add(TransferRecord{
				LFN: lfn, Source: src.Addr, When: time.Now(),
				Failed: true, Error: err.Error(),
			})
			return gridftp.TransferStats{}, err
		}
	}
	stats, err := s.fetch(ctx, src, localPath, progress)
	record := TransferRecord{
		LFN: lfn, Source: src.Addr, Bytes: stats.Bytes,
		Elapsed: stats.Elapsed, Attempts: stats.Attempts,
		RateMbps: stats.RateMbps(), When: time.Now(),
	}
	if err != nil {
		record.Failed = true
		record.Error = err.Error()
		s.xferLog.add(record)
		return stats, err
	}
	s.xferLog.add(record)
	s.logger.Printf("gdmp[%s]: replicated %s from %s (%d bytes, %d attempts, %.2f Mbps)",
		s.cfg.Name, lfn, src.Addr, stats.Bytes, stats.Attempts, stats.RateMbps())

	if want := entry.Attrs[replica.AttrCRC]; want != "" {
		got, err := gridftp.CRC32File(localPath)
		if err != nil {
			return stats, retry.Permanent(err)
		}
		if fmt.Sprintf("%08x", got) != want {
			os.Remove(localPath)
			return stats, fmt.Errorf("%w: %s catalog=%s local=%08x", gridftp.ErrChecksum, lfn, want, got)
		}
	}
	return stats, nil
}

// fetch is the Data Mover service: a secure, restartable, CRC-verified
// GridFTP retrieval (Section 4.3), with optional per-source buffer
// auto-tuning. progress, when set, fires with the cumulative byte count as
// data lands — the hedge driver's stall watchdog listens to it.
func (s *Site) fetch(ctx context.Context, src PFN, localPath string, progress func(int64)) (gridftp.TransferStats, error) {
	pol := s.retryPolicy("gridftp.get")
	pol.Attempts = s.cfg.TransferAttempts
	pol.Retryable = nil // transfer failures are all retryable
	return gridftp.ReliableGetFileOpts(ctx, s.ftpConnect(src), src.Path, localPath, pol,
		gridftp.GetFileOptions{Progress: progress, WrapWriter: s.cfg.StageWriter})
}

// ftpConnect builds the dial closure for one source's GridFTP endpoint:
// session options, per-source buffer tuning, and a scoreboard latency
// sample per successful dial. Both the data mover and the hedge warm-up
// path use it, so a hedge probe pays the same handshake a takeover will.
func (s *Site) ftpConnect(src PFN) func(ctx context.Context) (*gridftp.Client, error) {
	return func(ctx context.Context) (*gridftp.Client, error) {
		opts := []gridftp.ClientOption{
			gridftp.WithParallelism(s.cfg.Parallelism),
			gridftp.WithTimeout(30 * time.Second),
			gridftp.WithMetrics(s.metrics),
		}
		if buf := s.bufferFor(src.Addr); buf > 0 {
			opts = append(opts, gridftp.WithBufferSize(buf))
		}
		if s.cfg.DialFunc != nil {
			opts = append(opts, gridftp.WithDialFunc(s.cfg.DialFunc))
		}
		start := time.Now()
		cl, err := gridftp.DialContext(ctx, src.Addr, s.cfg.Cred, s.cfg.TrustRoots, opts...)
		if err != nil {
			return nil, err
		}
		s.health.ObserveLatency(src.Addr, time.Since(start))
		if s.cfg.AutoTuneBuffers && s.cfg.BufferBytes == 0 && s.bufferFor(src.Addr) == 0 {
			// First contact with this source: run the negotiation once
			// and remember the outcome (the paper computes the optimum
			// per link, not per transfer).
			if buf, err := cl.AutoTune(src.Path, 512*1024); err == nil {
				s.tuneMu.Lock()
				s.tunedBuf[src.Addr] = buf
				s.tuneMu.Unlock()
				s.logger.Printf("gdmp[%s]: auto-tuned buffer for %s: %d bytes",
					s.cfg.Name, src.Addr, buf)
			} else {
				s.logger.Printf("gdmp[%s]: auto-tune against %s failed: %v",
					s.cfg.Name, src.Addr, err)
			}
		}
		return cl, nil
	}
}

// bufferFor returns the socket buffer to use against a source: the static
// configuration wins; otherwise a previously negotiated value, if any.
func (s *Site) bufferFor(addr string) int {
	if s.cfg.BufferBytes > 0 {
		return s.cfg.BufferBytes
	}
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	return s.tunedBuf[addr]
}

// requestStage asks the source site's GDMP server to bring the file onto
// disk before the disk-to-disk transfer (Section 4.4). The whole exchange
// retries as a unit: staging is idempotent at the source, and the dial
// already succeeded once so a fresh session is cheap.
func (s *Site) requestStage(ctx context.Context, ctlAddr, lfn string) error {
	pol := s.retryPolicy("core.stage")
	return pol.Do(ctx, func(attempt int) error {
		cl, err := rpc.DialContext(ctx, ctlAddr, s.cfg.Cred, s.cfg.TrustRoots, s.rpcDialOpts()...)
		if err != nil {
			return err
		}
		defer cl.Close()
		var e rpc.Encoder
		e.String(lfn)
		// The wire carries the retry attempt so an overloaded source can
		// shed the hottest retriers first.
		_, err = cl.CallContext(rpc.WithAttempt(ctx, attempt), MethodStage, &e)
		s.observeOverload(ctlAddr, err)
		return err
	})
}

// observeOverload records a typed overload rejection from addr on the
// health scoreboard, cooling the peer for the server-suggested
// retry-after so queued work stops hammering it.
func (s *Site) observeOverload(addr string, err error) {
	if err == nil || !errors.Is(err, admission.ErrOverloaded) {
		return
	}
	s.health.ObserveOverload(addr, retry.RetryAfterOf(err))
}

func (s *Site) rpcDialOpts() []rpc.DialOption {
	opts := []rpc.DialOption{rpc.WithTimeout(30 * time.Second)}
	if s.cfg.DialFunc != nil {
		opts = append(opts, rpc.WithDialer(s.cfg.DialFunc))
	}
	return opts
}

// --- notifications (consumer side) ---------------------------------------------

// Pending lists notifications received but not yet replicated.
func (s *Site) Pending() []FileInfo {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	return append([]FileInfo(nil), s.pending...)
}

// ProcessPending replicates every pending notification through the pull
// scheduler and returns how many files were fetched.
func (s *Site) ProcessPending() (int, error) {
	return s.ProcessPendingCtx(s.ctx)
}

// ProcessPendingCtx drains the pending queue as one concurrent batch:
// every missing file is submitted to the scheduler up front, so the
// workers overlap transfers across sources. Each file is attempted even
// when others fail; the failed ones go back on the pending queue for a
// later pass, and their errors come back joined.
func (s *Site) ProcessPendingCtx(ctx context.Context) (int, error) {
	s.pendMu.Lock()
	work := s.pending
	s.pending = nil
	s.met.pendingDepth.Set(0)
	s.pendMu.Unlock()
	n, failed, err := s.pullAll(ctx, work, 0, "pending")
	if len(failed) > 0 {
		// Requeue only what actually failed; the rest either arrived or
		// was already here.
		s.addPending(failed...)
	}
	return n, err
}

// pullAll fans a batch of files out to the scheduler and waits for all of
// them. It returns how many were fetched, the files whose pulls failed,
// and the failures joined into one error. Already-present files count as
// neither fetched nor failed.
func (s *Site) pullAll(ctx context.Context, files []FileInfo, priority int, op string) (int, []FileInfo, error) {
	type pull struct {
		fi FileInfo
		tk *xfer.Ticket
	}
	// Submit everything before waiting on anything: the batch is a
	// fan-out, and admission order is preserved by the FIFO queue.
	pulls := make([]pull, 0, len(files))
	for _, fi := range files {
		if s.HasFile(fi.LFN) {
			// Already here: any journaled pull intent for it is satisfied.
			s.journalPullDone(fi.LFN)
			continue
		}
		pulls = append(pulls, pull{fi, s.submitGet(fi.LFN, priority)})
	}
	fetched := 0
	var failed []FileInfo
	var errs []error
	for _, p := range pulls {
		if err := p.tk.Wait(ctx); err != nil {
			failed = append(failed, p.fi)
			errs = append(errs, fmt.Errorf("core: %s %s: %w", op, p.fi.LFN, err))
			continue
		}
		fetched++
	}
	return fetched, failed, errors.Join(errs...)
}

// addPending queues a notification for a later pull and tracks the queue
// depth gauge.
func (s *Site) addPending(files ...FileInfo) {
	s.pendMu.Lock()
	s.pending = append(s.pending, files...)
	s.met.pendingDepth.Set(int64(len(s.pending)))
	s.pendMu.Unlock()
}

// WaitForFile blocks until the LFN is replicated locally or the timeout
// expires (used with AutoReplicate). It waits on the local catalog's
// arrival notification rather than polling.
func (s *Site) WaitForFile(lfn string, timeout time.Duration) error {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-s.local.await(lfn):
		return nil
	case <-t.C:
		return fmt.Errorf("core: %s did not arrive within %v", lfn, timeout)
	}
}

// sendNotify delivers a notification to one subscriber.
func (s *Site) sendNotify(ctx context.Context, addr string, files []FileInfo) error {
	cl, err := s.dialGDMP(ctx, addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	var e rpc.Encoder
	e.String(s.cfg.Name)
	encodeFileInfos(&e, files)
	_, err = cl.CallContext(ctx, MethodNotify, &e)
	return err
}

// --- server handlers -------------------------------------------------------------

func encodeFileInfos(e *rpc.Encoder, files []FileInfo) {
	e.Uint32(uint32(len(files)))
	for _, f := range files {
		e.String(f.LFN)
		e.String(f.Path)
		e.Int64(f.Size)
		e.String(f.CRC32)
		e.String(f.FileType)
		e.String(string(f.State))
	}
}

func decodeFileInfos(d *rpc.Decoder) []FileInfo {
	n := d.Uint32()
	out := make([]FileInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		fi := FileInfo{
			LFN:      d.String(),
			Path:     d.String(),
			Size:     d.Int64(),
			CRC32:    d.String(),
			FileType: d.String(),
			State:    FileState(d.String()),
		}
		if d.Err() != nil {
			return nil
		}
		out = append(out, fi)
	}
	return out
}

func (s *Site) registerHandlers() {
	s.gdmpSrv.Handle(MethodPing, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		resp.String(s.cfg.Name)
		return nil
	})
	s.gdmpSrv.Handle(MethodSubscribe, func(ctx context.Context, peer *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		addr := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		if name == "" || addr == "" {
			return errors.New("subscribe wants site name and address")
		}
		s.subMu.Lock()
		if st, ok := s.subscribers[name]; ok {
			// Re-subscribing updates the address and resets delivery
			// health: the site is telling us it is back.
			st.addr = addr
			st.suspect = false
			st.failures = 0
		} else {
			s.subscribers[name] = &subscriberState{name: name, addr: addr}
		}
		// Journaled before the RPC acks: a subscription that the consumer
		// believes registered survives a producer crash. A journal failure
		// fails the RPC so the consumer retries instead of trusting an
		// ack the disk does not back.
		err := s.persist.subscribe(name, addr)
		s.met.subscribers.Set(int64(len(s.subscribers)))
		s.updateNotifyGaugesLocked()
		s.subMu.Unlock()
		if err != nil {
			return fmt.Errorf("core: journal subscribe %s: %w", name, err)
		}
		s.logger.Printf("gdmp[%s]: %s subscribed as %s (%s)", s.cfg.Name, peer.Base, name, addr)
		return nil
	})
	s.gdmpSrv.Handle(MethodUnsubscribe, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		s.subMu.Lock()
		delete(s.subscribers, name)
		err := s.persist.unsubscribe(name)
		s.met.subscribers.Set(int64(len(s.subscribers)))
		s.updateNotifyGaugesLocked()
		s.subMu.Unlock()
		if err != nil {
			return fmt.Errorf("core: journal unsubscribe %s: %w", name, err)
		}
		return nil
	})
	s.gdmpSrv.Handle(MethodNotify, func(ctx context.Context, peer *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		from := args.String()
		files := decodeFileInfos(args)
		if err := args.Finish(); err != nil {
			return err
		}
		s.met.notifyRecv.Inc()
		s.logger.Printf("gdmp[%s]: notified by %s of %d files", s.cfg.Name, from, len(files))
		fresh := files[:0:0]
		for _, fi := range files {
			if !s.HasFile(fi.LFN) {
				fresh = append(fresh, fi)
			}
		}
		if len(fresh) == 0 {
			return nil
		}
		// Journal every accepted notice before this handler returns: once
		// the producer sees the ack and dequeues, this site owns the pull,
		// so it must survive a crash here. A journal failure fails the RPC
		// and the producer keeps the notice queued for redelivery.
		for _, fi := range fresh {
			if err := s.persist.pullQueued(fi); err != nil {
				return fmt.Errorf("core: journal notice %s: %w", fi.LFN, err)
			}
		}
		if s.cfg.AutoReplicate {
			// Submit the batch to the pull scheduler instead of spawning
			// one unbounded goroutine per file: the worker pool bounds
			// concurrency, and duplicate notices coalesce by LFN.
			for _, fi := range fresh {
				fi := fi
				tk := s.submitGet(fi.LFN, 0)
				s.notifyWG.Add(1)
				go func() {
					defer s.notifyWG.Done()
					if err := tk.Wait(s.ctx); err != nil {
						s.logger.Printf("gdmp[%s]: auto-replicate %s: %v", s.cfg.Name, fi.LFN, err)
						s.addPending(fi)
					}
				}()
			}
			return nil
		}
		s.addPending(fresh...)
		return nil
	})
	s.gdmpSrv.Handle(MethodCatalog, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		encodeFileInfos(resp, s.local.list())
		return nil
	})
	s.gdmpSrv.Handle(MethodStage, func(ctx context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		err := s.stageLocal(ctx, lfn)
		s.met.stageRequests.WithLabelValues(outcomeOf(err)).Inc()
		return err
	})
	s.registerScrubHandlers()
	s.registerRLSHandlers()
	s.registerStatusHandler()
	s.registerMetricsHandler()
}

// stageLocal ensures a published file is present in the disk pool, staging
// from the MSS when necessary; ctx interrupts the simulated tape waits.
func (s *Site) stageLocal(ctx context.Context, lfn string) error {
	fi, ok := s.local.get(lfn)
	if !ok {
		return fmt.Errorf("core: %q not published at %s", lfn, s.cfg.Name)
	}
	localPath, err := s.resolveLocal(fi.Path)
	if err != nil {
		return err
	}
	if _, err := os.Stat(localPath); err == nil {
		if err := s.local.setState(lfn, StateDisk); err != nil {
			return err
		}
		return s.persist.setState(lfn, StateDisk)
	}
	if s.storage == nil {
		return fmt.Errorf("core: %q missing on disk and no MSS configured", lfn)
	}
	s.notePoolDemand(fi.Path)
	if _, err := s.storage.StageContext(ctx, fi.Path); err != nil {
		return err
	}
	// The transfer itself re-reads from disk; unpin right away and rely on
	// the pool's recency to keep the file until the transfer completes.
	s.storage.Release(fi.Path)
	if err := s.local.setState(lfn, StateDisk); err != nil {
		return err
	}
	return s.persist.setState(lfn, StateDisk)
}

// ArchiveLocal pushes a published file's bytes to tape and (optionally)
// lets the pool evict the disk copy later; the catalog still lists the disk
// location, and a stage request restores it on demand (Section 4.4's
// default-disk-location convention).
func (s *Site) ArchiveLocal(lfn string) error {
	fi, ok := s.local.get(lfn)
	if !ok {
		return fmt.Errorf("core: %q not published at %s", lfn, s.cfg.Name)
	}
	if s.storage == nil {
		return errors.New("core: no MSS configured")
	}
	return s.storage.Archive(fi.Path)
}
