package core

import (
	"fmt"
	"sort"
	"sync"
)

// FileState describes where a local file currently is.
type FileState string

const (
	// StateDisk means the file is in the disk pool, ready to serve.
	StateDisk FileState = "disk"

	// StateTape means the file was evicted to (or only exists in) the
	// Mass Storage System and needs staging before a transfer.
	StateTape FileState = "tape"
)

// FileInfo is one entry of a site's local file catalog.
type FileInfo struct {
	// LFN is the logical file name registered in the replica catalog.
	LFN string

	// Path is the site-relative path under the data directory; it is also
	// the path component of the site's PFN for this file.
	Path string

	// Size in bytes.
	Size int64

	// CRC32 is the IEEE CRC of the content, hex-encoded.
	CRC32 string

	// FileType names the replication plug-in ("flat", "objectivity", ...).
	FileType string

	// State records disk/tape residency.
	State FileState
}

// localCatalog is the site's own file table — the per-site catalog whose
// transfer to other sites provides GDMP's failure recovery ("obtaining a
// remote site's file catalog for failure recovery").
type localCatalog struct {
	mu      sync.RWMutex
	byLFN   map[string]FileInfo
	byPath  map[string]string        // site-relative path -> LFN
	waiters map[string]chan struct{} // lfn -> closed when the entry appears
}

func newLocalCatalog() *localCatalog {
	return &localCatalog{
		byLFN:   make(map[string]FileInfo),
		byPath:  make(map[string]string),
		waiters: make(map[string]chan struct{}),
	}
}

func (c *localCatalog) put(info FileInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.byLFN[info.LFN]; ok && old.Path != info.Path {
		delete(c.byPath, old.Path)
	}
	c.byLFN[info.LFN] = info
	c.byPath[info.Path] = info.LFN
	if ch, ok := c.waiters[info.LFN]; ok {
		close(ch)
		delete(c.waiters, info.LFN)
	}
}

// await returns a channel that is closed once the LFN is present in the
// catalog (immediately if it already is). All waiters for one LFN share a
// channel, so an LFN that never arrives costs one channel, not one per
// call.
func (c *localCatalog) await(lfn string) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byLFN[lfn]; ok {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	ch, ok := c.waiters[lfn]
	if !ok {
		ch = make(chan struct{})
		c.waiters[lfn] = ch
	}
	return ch
}

func (c *localCatalog) get(lfn string) (FileInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	info, ok := c.byLFN[lfn]
	return info, ok
}

func (c *localCatalog) remove(lfn string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if info, ok := c.byLFN[lfn]; ok && c.byPath[info.Path] == lfn {
		delete(c.byPath, info.Path)
	}
	delete(c.byLFN, lfn)
}

// getByPath resolves a site-relative path back to its catalog entry — the
// reverse lookup the disk-pool eviction callback needs, since the pool
// names files by path, not LFN.
func (c *localCatalog) getByPath(p string) (FileInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lfn, ok := c.byPath[p]
	if !ok {
		return FileInfo{}, false
	}
	info, ok := c.byLFN[lfn]
	return info, ok
}

func (c *localCatalog) setState(lfn string, st FileState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	info, ok := c.byLFN[lfn]
	if !ok {
		return fmt.Errorf("core: %q not in local catalog", lfn)
	}
	info.State = st
	c.byLFN[lfn] = info
	return nil
}

func (c *localCatalog) list() []FileInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]FileInfo, 0, len(c.byLFN))
	for _, info := range c.byLFN {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LFN < out[j].LFN })
	return out
}

func (c *localCatalog) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byLFN)
}
