package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/obs"
	"gdmp/internal/replica"
	"gdmp/internal/rpc"
)

// RLS integration: every site's local catalog doubles as its Local
// Replica Catalog (LRC). A background loop condenses the LRC's LFN set
// into a bloom digest and pushes it to the Replica Location Index
// co-hosted with the replica catalog server (replica.RLI), where it
// lives as soft state until its TTL lapses. Lookups then have three
// tiers — own LRC (read-your-writes), the central catalog's location
// table, and RLI candidates confirmed by LRC point queries — so a
// replica whose central-catalog location was lost (withdrawal race,
// partial registration, foreign site) is still reachable.

// MethodLRCQuery point-queries a site's Local Replica Catalog for one
// LFN: the confirm step after an RLI digest match, turning a
// false-positive-possible hint into a definite answer.
const MethodLRCQuery = "gdmp.lrc"

// rlsSiteMetrics instruments the site-side RLS paths (gdmp_rls_*).
type rlsSiteMetrics struct {
	pushes    *obs.CounterVec // {outcome}: new/refresh/stale/error
	pushesOK  *obs.Counter
	refreshes *obs.Counter
	gen       *obs.Gauge
	lfns      *obs.Gauge
	locates   *obs.CounterVec // {source}: lrc/catalog/rli/miss
	rliWhich  *obs.Counter
	falsePos  *obs.Counter
	locateSec *obs.Histogram
}

func newRLSSiteMetrics(r *obs.Registry) *rlsSiteMetrics {
	const p = replica.RLSMetricsPrefix
	return &rlsSiteMetrics{
		pushes: r.CounterVec(p+"_digest_pushes_total",
			"Digest pushes to the RLI by outcome (new/refresh/stale/error).", "outcome"),
		pushesOK: r.Counter(p+"_digest_pushes_ok_total",
			"Digest pushes the RLI accepted."),
		refreshes: r.Counter(p+"_digest_refreshes_total",
			"Full digest rebuilds (generation bumps) because the LRC contents changed."),
		gen: r.Gauge(p+"_digest_generation",
			"Current digest generation of this site's LRC."),
		lfns: r.Gauge(p+"_digest_lfns",
			"LFNs condensed into the last pushed digest."),
		locates: r.CounterVec(p+"_locate_total",
			"RLS locates by answering tier (lrc/catalog/rli/miss).", "source"),
		rliWhich: r.Counter(p+"_rli_which_total",
			"Which-queries issued to the RLI tier."),
		falsePos: r.Counter(p+"_rli_false_positives_total",
			"RLI candidates whose LRC point query denied the LFN."),
		locateSec: r.Histogram(p+"_locate_seconds",
			"RLS locate latency across all tiers.", nil),
	}
}

func (s *Site) initRLS() {
	s.rlsMet = newRLSSiteMetrics(s.metrics)
}

// isRemoteErr reports whether the catalog answered at all — a
// *rpc.RemoteError means the server processed the call and rejected it,
// so redialing cannot help; anything else is a transport failure.
func isRemoteErr(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re)
}

// digestTTL is the soft-state lifetime pushed with each digest: the
// configured one, else 3x the push interval so one missed push never
// ages the site out of the index.
func (s *Site) digestTTL() time.Duration {
	if s.cfg.DigestTTL > 0 {
		return s.cfg.DigestTTL
	}
	if s.cfg.DigestInterval > 0 {
		return 3 * s.cfg.DigestInterval
	}
	return replica.DefaultRLITTL
}

// startDigestLoop launches the periodic digest pusher (no-op unless
// DigestInterval is set). The first push happens immediately, so a site
// is RLI-routable as soon as it is up.
func (s *Site) startDigestLoop() {
	if s.cfg.DigestInterval <= 0 {
		return
	}
	s.rlsWG.Add(1)
	go func() {
		defer s.rlsWG.Done()
		s.pushDigestLogged()
		t := time.NewTicker(s.cfg.DigestInterval)
		defer t.Stop()
		for {
			select {
			case <-s.ctx.Done():
				return
			case <-t.C:
				s.pushDigestLogged()
			}
		}
	}()
}

func (s *Site) pushDigestLogged() {
	if !s.admit.Allow("digest") {
		// Brownout: skip this round; the soft-state TTL absorbs a missed
		// heartbeat and the next tick retries.
		return
	}
	if _, err := s.PushDigest(s.ctx); err != nil && s.ctx.Err() == nil {
		s.logger.Printf("gdmp[%s]: digest push: %v", s.cfg.Name, err)
	}
}

// PushDigest condenses the local catalog into a bloom digest and pushes
// it to the RLI. The generation bumps only when the LFN set changed
// since the last push (a full-digest refresh, clearing bits left by
// deletions); an unchanged set re-pushes the current generation as a
// TTL-extending heartbeat. Returns the RLI's outcome. Exported so tests
// and operators can force a push outside the loop cadence.
func (s *Site) PushDigest(ctx context.Context) (outcome string, err error) {
	s.digestMu.Lock()
	defer s.digestMu.Unlock()

	files := s.local.list()
	lfns := make([]string, 0, len(files))
	for _, fi := range files {
		lfns = append(lfns, fi.LFN)
	}
	sort.Strings(lfns)
	h := fnv.New64a()
	for _, lfn := range lfns {
		h.Write([]byte(lfn))
		h.Write([]byte{0})
	}
	hash := h.Sum64()

	gen := s.digestGen.Load()
	if gen == 0 || hash != s.lastDigestHash {
		gen = s.digestGen.Add(1)
		s.lastDigestHash = hash
		s.rlsMet.refreshes.Inc()
	}

	fp := s.cfg.DigestFPRate
	if fp <= 0 {
		fp = 0.01
	}
	b := replica.NewBloom(len(lfns), fp)
	for _, lfn := range lfns {
		b.Add(lfn)
	}

	outcome, idxGen, err := s.rc.pushDigest(ctx, s.cfg.Name, s.Addr(), gen, b, s.digestTTL())
	if err != nil && !isRemoteErr(err) && ctx.Err() == nil {
		// Transport failure, not a server answer: the catalog/RLI side
		// likely restarted and the persistent client latched closed. An
		// index restart must be a non-event for soft state — redial and
		// push again so the site re-registers within one interval.
		if rerr := s.rc.reconnect(); rerr == nil {
			outcome, idxGen, err = s.rc.pushDigest(ctx, s.cfg.Name, s.Addr(), gen, b, s.digestTTL())
		}
	}
	if err != nil {
		s.rlsMet.pushes.WithLabelValues("error").Inc()
		return "", err
	}
	s.rlsMet.pushes.WithLabelValues(outcome).Inc()
	if outcome == replica.PushStale && idxGen > gen {
		// The RLI holds a newer generation — this site restarted and its
		// counter started over. Adopt the indexed generation and force a
		// refresh, so the next push supersedes the stale entry instead of
		// being rejected until it ages out.
		s.digestGen.Store(idxGen)
		s.lastDigestHash = 0
		return outcome, nil
	}
	s.rlsMet.pushesOK.Inc()
	s.rlsMet.gen.Set(int64(gen))
	s.rlsMet.lfns.Set(int64(len(lfns)))
	return outcome, nil
}

// DigestGeneration reports the current digest generation (0 before the
// first push).
func (s *Site) DigestGeneration() uint64 { return s.digestGen.Load() }

// LRCAnswer is one site's reply to an LRC point query.
type LRCAnswer struct {
	Has      bool
	Path     string // site-relative replica path
	Size     int64
	CRC      string
	State    string
	DataAddr string // GridFTP endpoint serving the bytes
	// DigestGen is the responder's digest generation, a trailing wire
	// field (zero from older sites): how stale the RLI hint that led
	// here was.
	DigestGen uint64
}

// LRCQuery asks the site at the given control address whether its Local
// Replica Catalog holds the LFN.
func (s *Site) LRCQuery(ctx context.Context, addr, lfn string) (LRCAnswer, error) {
	cl, err := s.dialGDMP(ctx, addr)
	if err != nil {
		return LRCAnswer{}, err
	}
	defer cl.Close()
	var e rpc.Encoder
	e.String(lfn)
	d, err := cl.CallContext(ctx, MethodLRCQuery, &e)
	if err != nil {
		return LRCAnswer{}, err
	}
	var ans LRCAnswer
	ans.Has = d.Bool()
	if ans.Has {
		ans.Path = d.String()
		ans.Size = d.Int64()
		ans.CRC = d.String()
		ans.State = d.String()
		ans.DataAddr = d.String()
	}
	if d.Remaining() > 0 {
		ans.DigestGen = d.Uint64()
	}
	return ans, d.Finish()
}

// registerRLSHandlers wires the LRC point-query verb into the Request
// Manager (called from registerHandlers).
func (s *Site) registerRLSHandlers() {
	s.gdmpSrv.Handle(MethodLRCQuery, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		fi, ok := s.local.get(lfn)
		resp.Bool(ok)
		if ok {
			resp.String(fi.Path)
			resp.Int64(fi.Size)
			resp.String(fi.CRC32)
			resp.String(string(fi.State))
			resp.String(s.DataAddr())
		}
		// Trailing generation field: older callers stop reading before it.
		resp.Uint64(s.digestGen.Load())
		return nil
	})
}

// rliSources resolves an LFN through the RLI tier: ask which LRCs might
// hold it, confirm each candidate with an LRC point query (dropping
// false positives — they cost an extra query, never a wrong answer),
// and record the control address of each confirmed holder in the entry's
// attrs so the transfer path can request staging. The owning site itself
// is skipped; its files come from its LRC directly.
func (s *Site) rliSources(ctx context.Context, entry *replica.LogicalFile, lfn string) []PFN {
	s.rlsMet.rliWhich.Inc()
	cands, err := s.rc.which(ctx, lfn)
	if err != nil {
		s.logger.Printf("gdmp[%s]: rli which %s: %v", s.cfg.Name, lfn, err)
		return nil
	}
	var out []PFN
	for _, c := range cands {
		if c.Name == s.cfg.Name || c.Addr == s.Addr() {
			continue
		}
		ans, err := s.LRCQuery(ctx, c.Addr, lfn)
		if err != nil {
			s.logger.Printf("gdmp[%s]: lrc query %s at %s: %v", s.cfg.Name, lfn, c.Addr, err)
			continue
		}
		if !ans.Has {
			// Bloom false positive (or the site dropped the file since its
			// digest): one wasted point query, no wrong answer.
			s.rlsMet.falsePos.Inc()
			continue
		}
		if entry != nil && entry.Attrs != nil {
			entry.Attrs[ctlAttrPrefix+ans.DataAddr] = c.Addr
		}
		out = append(out, PFN{Addr: ans.DataAddr, Path: ans.Path})
	}
	return out
}

// Locate resolves an LFN RLS-style and reports which tier answered:
// "lrc" — this site's own Local Replica Catalog (the read-your-writes
// tier: a just-published file is visible here no matter how stale every
// digest is); "catalog" — the central replica catalog's location table;
// "rli" — index candidates confirmed by LRC point queries.
func (s *Site) Locate(ctx context.Context, lfn string) (pfns []PFN, source string, err error) {
	defer func(start time.Time) {
		s.rlsMet.locateSec.ObserveDuration(time.Since(start))
	}(time.Now())

	if fi, ok := s.local.get(lfn); ok {
		s.rlsMet.locates.WithLabelValues("lrc").Inc()
		return []PFN{{Addr: s.DataAddr(), Path: fi.Path}}, "lrc", nil
	}
	locs, lerr := s.rc.locations(ctx, lfn)
	if lerr == nil && len(locs) > 0 {
		s.rlsMet.locates.WithLabelValues("catalog").Inc()
		return locs, "catalog", nil
	}
	if pfns = s.rliSources(ctx, nil, lfn); len(pfns) > 0 {
		s.rlsMet.locates.WithLabelValues("rli").Inc()
		return pfns, "rli", nil
	}
	s.rlsMet.locates.WithLabelValues("miss").Inc()
	if lerr != nil {
		return nil, "", fmt.Errorf("core: locate %s: %w", lfn, lerr)
	}
	return nil, "", fmt.Errorf("core: no known replica of %s", lfn)
}

// LocateP99Micros reports the 99th-percentile RLS locate latency in
// microseconds (status surface for the lookup-latency histogram).
func (s *Site) LocateP99Micros() int64 {
	return int64(s.rlsMet.locateSec.Quantile(0.99) * 1e6)
}
