package core

import (
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"

	"gdmp/internal/obs"
)

func testPersist(t *testing.T, dir string) *sitePersistence {
	t.Helper()
	p, torn, err := openPersistence(dir, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatalf("openPersistence: %v", err)
	}
	if torn != 0 {
		t.Fatalf("fresh/clean journal reported %d torn bytes", torn)
	}
	return p
}

// TestPersistCrashRoundTrip commits one of every record kind, severs the
// journal abruptly (no final snapshot — the crash image), and reopens:
// the replayed mirror must equal the pre-crash mirror exactly.
func TestPersistCrashRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := testPersist(t, dir)

	p.putFile(FileInfo{LFN: "a", Path: "x/a.db", Size: 10, CRC32: "aa", State: StateDisk})
	p.putFile(FileInfo{LFN: "b", Path: "x/b.db", Size: 20, State: StateTape})
	p.setState("b", StateDisk)
	p.putFile(FileInfo{LFN: "dead", Path: "x/d.db"})
	p.removeFile("dead")
	p.subscribe("anl.gov", "127.0.0.1:1000")
	p.subscribe("fnal.gov", "127.0.0.1:2000")
	p.notifyQueue("anl.gov", []FileInfo{{LFN: "a", Path: "x/a.db", Size: 10}, {LFN: "b", Path: "x/b.db", Size: 20}})
	p.notifyAck("anl.gov", 1)
	p.unsubscribe("fnal.gov")
	p.pullQueued(FileInfo{LFN: "p1", Path: "y/p1.db", Size: 5})
	p.pullQueued(FileInfo{LFN: "p2"})
	p.pullDone("p1")
	p.close(false) // crash: only fsync'd WAL records survive

	q, torn, err := openPersistence(dir, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q.close(false)
	if torn != 0 {
		t.Fatalf("clean crash reported %d torn bytes", torn)
	}
	if n := len(q.st.files); n != 2 {
		t.Fatalf("files = %d, want 2 (%+v)", n, q.st.files)
	}
	if fi := q.st.files["b"]; fi.State != StateDisk || fi.Size != 20 {
		t.Fatalf("file b replayed wrong: %+v", fi)
	}
	if _, ok := q.st.files["dead"]; ok {
		t.Fatal("removed file survived replay")
	}
	if n := len(q.st.subs); n != 1 {
		t.Fatalf("subs = %d, want 1", n)
	}
	sub := q.st.subs["anl.gov"]
	if sub == nil || len(sub.queue) != 1 || sub.queue[0].LFN != "b" {
		t.Fatalf("undelivered queue replayed wrong: %+v", sub)
	}
	pulls := q.incompletePulls()
	if len(pulls) != 1 || pulls[0].LFN != "p2" {
		t.Fatalf("incomplete pulls = %+v, want just p2", pulls)
	}
}

// TestPersistGracefulCloseSnapshots verifies that a graceful close folds
// the state into a snapshot, so the next open replays zero WAL records.
func TestPersistGracefulCloseSnapshots(t *testing.T) {
	dir := t.TempDir()
	p := testPersist(t, dir)
	p.putFile(FileInfo{LFN: "a", Path: "a.db", Size: 1})
	p.subscribe("anl.gov", "127.0.0.1:1000")
	p.close(true)

	// The graceful close compacted into generation 1: its WAL must exist
	// and be empty.
	wal, err := os.Stat(filepath.Join(dir, "journal", "wal.1"))
	if err != nil {
		t.Fatalf("graceful close left no generation-1 WAL: %v", err)
	}
	if wal.Size() != 0 {
		t.Fatalf("graceful close left %d WAL bytes uncompacted", wal.Size())
	}
	q, _, err := openPersistence(dir, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q.close(false)
	if len(q.st.files) != 1 || len(q.st.subs) != 1 {
		t.Fatalf("snapshot round-trip lost state: %+v", q.st)
	}
}

// TestPersistTornTailRecovered chops the WAL mid-record, as a crash
// during an append would: reopen must keep every whole record, report the
// torn bytes, and keep accepting new appends.
func TestPersistTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	p := testPersist(t, dir)
	p.putFile(FileInfo{LFN: "whole", Path: "w.db", Size: 9})
	p.putFile(FileInfo{LFN: "torn", Path: "t.db", Size: 9})
	p.close(false)

	walPath := filepath.Join(dir, "journal", "wal.0")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	q, torn, err := openPersistence(dir, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if torn == 0 {
		t.Fatal("torn tail not reported")
	}
	if _, ok := q.st.files["whole"]; !ok {
		t.Fatal("whole record lost with the torn tail")
	}
	if _, ok := q.st.files["torn"]; ok {
		t.Fatal("torn record replayed")
	}
	q.putFile(FileInfo{LFN: "after", Path: "a.db", Size: 1})
	q.close(false)

	r, torn2, err := openPersistence(dir, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil || torn2 != 0 {
		t.Fatalf("third open = torn %d, %v", torn2, err)
	}
	defer r.close(false)
	for _, lfn := range []string{"whole", "after"} {
		if _, ok := r.st.files[lfn]; !ok {
			t.Fatalf("%s missing after post-truncation append", lfn)
		}
	}
}

// TestPersistPullQueuedNeverDowngrades pins the idempotence contract: a
// bare-LFN admission must not overwrite an earlier record that carries
// the file's path (the path is what ties a .part file to its pull at
// recovery), while a path-carrying record upgrades a bare one.
func TestPersistPullQueuedNeverDowngrades(t *testing.T) {
	p := testPersist(t, t.TempDir())
	defer p.close(false)

	p.pullQueued(FileInfo{LFN: "f", Path: "d/f.db", Size: 7})
	p.pullQueued(FileInfo{LFN: "f"}) // bare admission must not downgrade
	if fi := p.st.pulls["f"]; fi.Path != "d/f.db" || fi.Size != 7 {
		t.Fatalf("path-carrying pull downgraded: %+v", fi)
	}
	p.pullQueued(FileInfo{LFN: "g"})
	p.pullQueued(FileInfo{LFN: "g", Path: "d/g.db"}) // upgrade is allowed
	if fi := p.st.pulls["g"]; fi.Path != "d/g.db" {
		t.Fatalf("bare pull not upgraded: %+v", fi)
	}
	p.pullDone("f")
	p.pullDone("f") // done on an absent pull is a no-op, not a new record
	if n := p.j.Records(); n != 4 {
		t.Fatalf("journal holds %d records, want 4 (dups and no-ops elided)", n)
	}
}

// TestPersistSubscriberTransitions pins the subscriber delta semantics:
// ack clamps to the queue length, drop marks suspect and clears the
// queue, and re-subscribing heals suspicion without losing the queue.
func TestPersistSubscriberTransitions(t *testing.T) {
	p := testPersist(t, t.TempDir())
	defer p.close(false)

	p.subscribe("anl.gov", "127.0.0.1:1000")
	p.notifyQueue("anl.gov", []FileInfo{{LFN: "a"}, {LFN: "b"}})
	p.notifyAck("anl.gov", 5) // over-ack clamps instead of corrupting
	if q := p.st.subs["anl.gov"].queue; len(q) != 0 {
		t.Fatalf("over-ack left queue %+v", q)
	}

	p.notifyQueue("anl.gov", []FileInfo{{LFN: "c"}})
	p.subscribe("anl.gov", "127.0.0.1:3000") // re-subscribe from a new address
	sub := p.st.subs["anl.gov"]
	if sub.addr != "127.0.0.1:3000" || len(sub.queue) != 1 {
		t.Fatalf("re-subscribe lost queue or address: %+v", sub)
	}

	p.notifyDrop("anl.gov")
	if sub := p.st.subs["anl.gov"]; !sub.suspect || len(sub.queue) != 0 {
		t.Fatalf("drop did not mark suspect and clear: %+v", sub)
	}
	p.subscribe("anl.gov", "127.0.0.1:3000")
	if sub := p.st.subs["anl.gov"]; sub.suspect {
		t.Fatal("re-subscribe did not heal suspicion")
	}
}

// TestPersistAppendFailurePropagates pins the journal-before-ack
// contract's failure half: when the WAL cannot take the record, the hook
// must return the error (so the mutating RPC fails) instead of
// acknowledging a mutation the disk does not hold — and the mirror must
// not apply it, staying consistent with disk.
func TestPersistAppendFailurePropagates(t *testing.T) {
	p := testPersist(t, t.TempDir())
	if err := p.putFile(FileInfo{LFN: "ok", Path: "ok.db"}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	p.j.Close() // sever the WAL underneath: every later append must fail loudly
	if err := p.putFile(FileInfo{LFN: "lost", Path: "lost.db"}); err == nil {
		t.Fatal("putFile on a severed journal acked")
	}
	if err := p.subscribe("anl.gov", "127.0.0.1:1000"); err == nil {
		t.Fatal("subscribe on a severed journal acked")
	}
	if err := p.pullQueued(FileInfo{LFN: "pull"}); err == nil {
		t.Fatal("pullQueued on a severed journal acked")
	}
	if _, ok := p.st.files["lost"]; ok {
		t.Fatal("mirror applied a record the WAL rejected")
	}
	if len(p.st.subs) != 0 || len(p.st.pulls) != 0 {
		t.Fatalf("mirror diverged from disk: %+v", p.st)
	}
}

// TestPersistNilIsNoOp: a site without a StateDir journals nothing and
// never panics.
func TestPersistNilIsNoOp(t *testing.T) {
	var p *sitePersistence
	p.putFile(FileInfo{LFN: "x"})
	p.removeFile("x")
	p.setState("x", StateDisk)
	p.subscribe("s", "a")
	p.unsubscribe("s")
	p.notifyQueue("s", nil)
	p.notifyAck("s", 1)
	p.notifyDrop("s")
	p.pullQueued(FileInfo{LFN: "x"})
	p.pullDone("x")
	p.producerAdd("a")
	p.producerRemove("a")
	p.scrubCursor("x")
	p.close(true)
	if got := p.incompletePulls(); got != nil {
		t.Fatalf("nil persistence returned pulls: %v", got)
	}
	if got := p.producerAddrs(); got != nil {
		t.Fatalf("nil persistence returned producers: %v", got)
	}
	if got := p.recoveredScrubCursor(); got != "" {
		t.Fatalf("nil persistence returned a scrub cursor: %q", got)
	}
}

// TestPersistProducersAndScrubCursor covers the self-healing records: the
// producer set and the mid-pass scrub cursor must survive both a crash
// (WAL replay) and a graceful close (v2 snapshot).
func TestPersistProducersAndScrubCursor(t *testing.T) {
	dir := t.TempDir()
	p := testPersist(t, dir)
	p.producerAdd("127.0.0.1:1000")
	p.producerAdd("127.0.0.1:2000")
	p.producerRemove("127.0.0.1:1000")
	p.scrubCursor("lfn://cern.ch/run1/b.db")
	p.close(false) // crash: replay from the WAL

	q, torn, err := openPersistence(dir, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if torn != 0 {
		t.Fatalf("clean crash reported %d torn bytes", torn)
	}
	if got := q.producerAddrs(); len(got) != 1 || got[0] != "127.0.0.1:2000" {
		t.Fatalf("replayed producers = %v, want [127.0.0.1:2000]", got)
	}
	if got := q.recoveredScrubCursor(); got != "lfn://cern.ch/run1/b.db" {
		t.Fatalf("replayed scrub cursor = %q", got)
	}
	q.close(true) // graceful: fold into a snapshot

	r, _, err := openPersistence(dir, obs.NewRegistry(), log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatalf("reopen after snapshot: %v", err)
	}
	defer r.close(false)
	if got := r.producerAddrs(); len(got) != 1 || got[0] != "127.0.0.1:2000" {
		t.Fatalf("snapshotted producers = %v, want [127.0.0.1:2000]", got)
	}
	if got := r.recoveredScrubCursor(); got != "lfn://cern.ch/run1/b.db" {
		t.Fatalf("snapshotted scrub cursor = %q", got)
	}
	// Clearing the cursor at pass end must stick too.
	r.scrubCursor("")
	if got := r.recoveredScrubCursor(); got != "" {
		t.Fatalf("cleared scrub cursor = %q", got)
	}
}
