package core

// Disk-pool cache semantics over the MSS (Section 4.4: the pool is "a data
// transfer cache for the Grid"). Staged and pulled replicas live in the
// capacity-bounded pool; when the pool evicts one, this file decides what
// the catalogs should say afterwards, and a small prefetcher brings hot
// collections in ahead of demand.

import (
	"context"
	"path"
	"time"

	"gdmp/internal/mss"
	"gdmp/internal/obs"
)

// Pool returns the site's storage manager (nil without an MSS) — the
// handle the soak and crash harnesses use to drive and inspect the pool.
func (s *Site) Pool() *mss.MSS { return s.storage }

// initPool wires the MSS into the replication core: the gdmp_pool_*
// metric family and the eviction callback. Called from NewSite once both
// servers are listening, because the eviction path builds PFNs from the
// data address.
func (s *Site) initPool() {
	if s.storage == nil {
		return
	}
	s.poolMet = obs.NewPoolMetrics(s.metrics)
	s.storage.SetMetrics(s.poolMet)
	s.poolDemand = make(map[string]int)
	s.storage.SetOnEvict(s.onPoolEvict)
}

// onPoolEvict is the pool's eviction callback. The bytes are already gone
// when it runs, so the catalogs must stop promising them. Two cases:
//
//   - A tape-backed file (a producer original staged out earlier) falls
//     back to StateTape: its replica-catalog location stays valid because
//     a stage request restores the bytes on demand — the paper's
//     default-disk-location convention, and the reason the scrubber
//     re-asserts locations for tape-resident entries.
//   - A cache-only replica (pulled over the WAN, no tape copy) is
//     withdrawn outright: the local catalog entry is removed and
//     journaled first, then the replica-catalog location — so recovery
//     and scrub agree with the disk even when the site dies between the
//     two steps, and a peer's anti-entropy round heals the dangling
//     location such a crash can leave.
func (s *Site) onPoolEvict(name string, size int64) {
	fi, ok := s.local.getByPath(name)
	if !ok {
		return // not a cataloged replica (scratch bytes, test files)
	}
	if _, err := s.storage.TapeSize(name); err == nil {
		if err := s.local.setState(fi.LFN, StateTape); err == nil {
			if jerr := s.persist.setState(fi.LFN, StateTape); jerr != nil {
				s.logger.Printf("gdmp[%s]: journal eviction of %s to tape: %v", s.cfg.Name, fi.LFN, jerr)
			}
		}
		// The attached sidecar's bytes left the pool with the file; forget
		// the registry entry too. A re-stage regenerates parity on the next
		// scrub pass.
		s.dropParitySidecar(fi)
		s.logger.Printf("gdmp[%s]: pool evicted %s (%d bytes) to tape residency", s.cfg.Name, fi.LFN, size)
		return
	}
	ctx, cancel := context.WithTimeout(s.ctx, 30*time.Second)
	defer cancel()
	s.withdrawReplica(ctx, fi, false)
	s.logger.Printf("gdmp[%s]: pool evicted %s (%d bytes), location withdrawn", s.cfg.Name, fi.LFN, size)
}

// notePoolDemand counts one cache miss against the file's collection (its
// directory prefix). When a collection crosses the configured threshold
// its remaining members are brought in ahead of demand: tape-resident
// members staged back to disk, catalog-listed members this site lacks
// pulled at background priority. Each collection prefetches once per
// process lifetime — the counter is accumulated demand evidence, not a
// sliding window.
func (s *Site) notePoolDemand(rel string) {
	if s.cfg.PrefetchThreshold <= 0 || s.storage == nil {
		return
	}
	dir := path.Dir(rel)
	if dir == "." || dir == "/" {
		return
	}
	s.prefMu.Lock()
	s.poolDemand[dir]++
	fire := s.poolDemand[dir] == s.cfg.PrefetchThreshold
	s.prefMu.Unlock()
	if fire {
		s.notifyWG.Add(1)
		go func() {
			defer s.notifyWG.Done()
			s.prefetchCollection(dir)
		}()
	}
}

// prefetchCollection warms one collection: local members without disk
// bytes are staged, and members of the matching replica-catalog
// collection that this site lacks are pulled below notification priority
// (a prefetch must never starve demand traffic). Failures are logged and
// skipped — prefetching is an optimization, not a promise.
func (s *Site) prefetchCollection(dir string) {
	if !s.admit.Allow("prefetch") {
		// Brownout: ahead-of-demand warming is the first thing to go.
		// The demand counter stays latched, so the collection is not
		// re-armed — a deliberate trade: prefetch is an optimization.
		return
	}
	ctx := s.ctx
	for _, fi := range s.local.list() {
		if path.Dir(fi.Path) != dir || fi.State == StateDisk {
			continue
		}
		if err := s.stageLocal(ctx, fi.LFN); err != nil {
			s.logger.Printf("gdmp[%s]: prefetch stage %s: %v", s.cfg.Name, fi.LFN, err)
			continue
		}
		s.poolMet.Prefetches.Inc()
	}
	lfns, err := s.rc.listCollection(ctx, dir)
	if err != nil {
		if !isNotFound(err) {
			s.logger.Printf("gdmp[%s]: prefetch list collection %s: %v", s.cfg.Name, dir, err)
		}
		return
	}
	for _, lfn := range lfns {
		if s.HasFile(lfn) {
			continue
		}
		s.submitGet(lfn, -1) // fire and forget; the scheduler dedups by LFN
		s.poolMet.Prefetches.Inc()
	}
}
