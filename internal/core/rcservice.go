package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gdmp/internal/replica"
	"gdmp/internal/rpc"
)

// rcService is GDMP's Replica Catalog service: the paper's "higher-level
// object-oriented wrapper to the underlying Globus Replica Catalog library"
// adding search filters, sanity checks on input parameters, and automatic
// creation of required entries (Section 4.2).
type rcService struct {
	mu     sync.RWMutex
	client *replica.Client
	// dial re-establishes the catalog connection after the server side
	// restarted (the rpc client latches closed on I/O failure). Nil
	// disables reconnection (embedded catalogs that die with the process).
	dial func() (*replica.Client, error)
}

func (rc *rcService) cl() *replica.Client {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return rc.client
}

// reconnect swaps in a freshly dialed client. Callers holding the old
// client fail their in-flight call and retry at their own layer; the
// soft-state digest pusher is the main consumer (an RLI restart must be
// a non-event, not a permanently dark site).
func (rc *rcService) reconnect() error {
	if rc.dial == nil {
		return fmt.Errorf("core: replica catalog reconnect not available")
	}
	cl, err := rc.dial()
	if err != nil {
		return err
	}
	rc.mu.Lock()
	old := rc.client
	rc.client = cl
	rc.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// sanity checks applied to every name that enters the catalog.
func checkCatalogName(kind, name string) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("core: empty %s name", kind)
	}
	if strings.ContainsAny(name, " \t\r\n") {
		return fmt.Errorf("core: %s name %q contains whitespace", kind, name)
	}
	return nil
}

// isExists reports whether a remote error is the catalog's already-exists.
func isExists(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "already exists")
}

// isNotFound reports whether a remote error is the catalog's not-found.
func isNotFound(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "not found")
}

// publishFile registers a logical file (verifying global uniqueness) with
// its metadata and first physical location, creating the collection if
// needed — one GDMP publish step (Section 4.2: files and their
// meta-information are added to the replica catalog).
func (rc *rcService) publishFile(ctx context.Context, lfn string, attrs map[string]string, pfn PFN, collection string) error {
	if err := checkCatalogName("logical file", lfn); err != nil {
		return err
	}
	if err := rc.cl().Register(ctx, lfn, attrs); err != nil {
		if isExists(err) {
			return fmt.Errorf("core: logical file name %q already taken (the catalog enforces a global namespace): %w", lfn, err)
		}
		return err
	}
	if err := rc.cl().AddReplica(ctx, lfn, pfn.String()); err != nil {
		return err
	}
	if collection != "" {
		if err := rc.ensureCollection(ctx, collection); err != nil {
			return err
		}
		if err := rc.cl().AddToCollection(ctx, collection, lfn); err != nil {
			return err
		}
	}
	return nil
}

// addReplica records an additional physical location for an existing file.
func (rc *rcService) addReplica(ctx context.Context, lfn string, pfn PFN) error {
	err := rc.cl().AddReplica(ctx, lfn, pfn.String())
	if err != nil && isExists(err) {
		return nil // idempotent: replica already recorded
	}
	return err
}

// removeReplica drops one physical location.
func (rc *rcService) removeReplica(ctx context.Context, lfn string, pfn PFN) error {
	return rc.cl().RemoveReplica(ctx, lfn, pfn.String())
}

// ensureCollection creates the collection if it does not exist yet —
// "automatic creation of required entries if they do not already exist".
func (rc *rcService) ensureCollection(ctx context.Context, name string) error {
	if err := checkCatalogName("collection", name); err != nil {
		return err
	}
	err := rc.cl().CreateCollection(ctx, name)
	if err != nil && isExists(err) {
		return nil
	}
	return err
}

// locations returns the parsed physical locations of a logical file.
func (rc *rcService) locations(ctx context.Context, lfn string) ([]PFN, error) {
	raw, err := rc.cl().Locations(ctx, lfn)
	if err != nil {
		return nil, err
	}
	pfns := make([]PFN, 0, len(raw))
	for _, s := range raw {
		p, err := ParsePFN(s)
		if err != nil {
			// Tolerate foreign PFN schemes in a shared catalog; skip them.
			continue
		}
		pfns = append(pfns, p)
	}
	return pfns, nil
}

// lookup fetches a file entry's attributes.
func (rc *rcService) lookup(ctx context.Context, lfn string) (*replica.LogicalFile, error) {
	return rc.cl().Lookup(ctx, lfn)
}

// setAttrs merges attributes into an entry.
func (rc *rcService) listCollection(ctx context.Context, name string) ([]string, error) {
	return rc.cl().ListCollection(ctx, name)
}

func (rc *rcService) setAttrs(ctx context.Context, lfn string, attrs map[string]string) error {
	return rc.cl().SetAttrs(ctx, lfn, attrs)
}

// query runs a filter search, "to obtain the exact information that they
// require" (Section 4.2).
func (rc *rcService) query(ctx context.Context, filter string) ([]*replica.LogicalFile, error) {
	return rc.cl().Query(ctx, filter)
}

// pushDigest forwards a site's bloom digest to the RLI tier co-hosted
// with the catalog server.
func (rc *rcService) pushDigest(ctx context.Context, site, addr string, gen uint64, b *replica.Bloom, ttl time.Duration) (string, uint64, error) {
	return rc.cl().PushDigest(ctx, site, addr, gen, b, ttl)
}

// which asks the RLI which sites' LRCs might hold the LFN.
func (rc *rcService) which(ctx context.Context, lfn string) ([]replica.Site, error) {
	return rc.cl().Which(ctx, lfn)
}

func (rc *rcService) close() error { return rc.cl().Close() }
