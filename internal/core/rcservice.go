package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"gdmp/internal/replica"
	"gdmp/internal/rpc"
)

// rcService is GDMP's Replica Catalog service: the paper's "higher-level
// object-oriented wrapper to the underlying Globus Replica Catalog library"
// adding search filters, sanity checks on input parameters, and automatic
// creation of required entries (Section 4.2).
type rcService struct {
	client *replica.Client
}

// sanity checks applied to every name that enters the catalog.
func checkCatalogName(kind, name string) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("core: empty %s name", kind)
	}
	if strings.ContainsAny(name, " \t\r\n") {
		return fmt.Errorf("core: %s name %q contains whitespace", kind, name)
	}
	return nil
}

// isExists reports whether a remote error is the catalog's already-exists.
func isExists(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "already exists")
}

// isNotFound reports whether a remote error is the catalog's not-found.
func isNotFound(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "not found")
}

// publishFile registers a logical file (verifying global uniqueness) with
// its metadata and first physical location, creating the collection if
// needed — one GDMP publish step (Section 4.2: files and their
// meta-information are added to the replica catalog).
func (rc *rcService) publishFile(ctx context.Context, lfn string, attrs map[string]string, pfn PFN, collection string) error {
	if err := checkCatalogName("logical file", lfn); err != nil {
		return err
	}
	if err := rc.client.Register(ctx, lfn, attrs); err != nil {
		if isExists(err) {
			return fmt.Errorf("core: logical file name %q already taken (the catalog enforces a global namespace): %w", lfn, err)
		}
		return err
	}
	if err := rc.client.AddReplica(ctx, lfn, pfn.String()); err != nil {
		return err
	}
	if collection != "" {
		if err := rc.ensureCollection(ctx, collection); err != nil {
			return err
		}
		if err := rc.client.AddToCollection(ctx, collection, lfn); err != nil {
			return err
		}
	}
	return nil
}

// addReplica records an additional physical location for an existing file.
func (rc *rcService) addReplica(ctx context.Context, lfn string, pfn PFN) error {
	err := rc.client.AddReplica(ctx, lfn, pfn.String())
	if err != nil && isExists(err) {
		return nil // idempotent: replica already recorded
	}
	return err
}

// removeReplica drops one physical location.
func (rc *rcService) removeReplica(ctx context.Context, lfn string, pfn PFN) error {
	return rc.client.RemoveReplica(ctx, lfn, pfn.String())
}

// ensureCollection creates the collection if it does not exist yet —
// "automatic creation of required entries if they do not already exist".
func (rc *rcService) ensureCollection(ctx context.Context, name string) error {
	if err := checkCatalogName("collection", name); err != nil {
		return err
	}
	err := rc.client.CreateCollection(ctx, name)
	if err != nil && isExists(err) {
		return nil
	}
	return err
}

// locations returns the parsed physical locations of a logical file.
func (rc *rcService) locations(ctx context.Context, lfn string) ([]PFN, error) {
	raw, err := rc.client.Locations(ctx, lfn)
	if err != nil {
		return nil, err
	}
	pfns := make([]PFN, 0, len(raw))
	for _, s := range raw {
		p, err := ParsePFN(s)
		if err != nil {
			// Tolerate foreign PFN schemes in a shared catalog; skip them.
			continue
		}
		pfns = append(pfns, p)
	}
	return pfns, nil
}

// lookup fetches a file entry's attributes.
func (rc *rcService) lookup(ctx context.Context, lfn string) (*replica.LogicalFile, error) {
	return rc.client.Lookup(ctx, lfn)
}

// setAttrs merges attributes into an entry.
func (rc *rcService) listCollection(ctx context.Context, name string) ([]string, error) {
	return rc.client.ListCollection(ctx, name)
}

func (rc *rcService) setAttrs(ctx context.Context, lfn string, attrs map[string]string) error {
	return rc.client.SetAttrs(ctx, lfn, attrs)
}

// query runs a filter search, "to obtain the exact information that they
// require" (Section 4.2).
func (rc *rcService) query(ctx context.Context, filter string) ([]*replica.LogicalFile, error) {
	return rc.client.Query(ctx, filter)
}

func (rc *rcService) close() error { return rc.client.Close() }
