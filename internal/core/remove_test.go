package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"gdmp/internal/core"
	"gdmp/internal/testbed"
)

func TestRemoveLocal(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	pf := publish(t, g, cern, "rm.db", testbed.MakeData(10_000, 100), core.PublishOptions{})
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatal(err)
	}
	if locs, _ := g.Catalog.Locations(pf.LFN); len(locs) != 2 {
		t.Fatalf("locations = %v", locs)
	}

	// The consumer drops its replica: bytes gone, catalog location gone,
	// the logical file and the producer's replica survive.
	if err := anl.RemoveLocal(pf.LFN); err != nil {
		t.Fatalf("RemoveLocal: %v", err)
	}
	if anl.HasFile(pf.LFN) {
		t.Fatal("local catalog still lists the file")
	}
	if _, err := os.Stat(filepath.Join(anl.DataDir(), "rm.db")); err == nil {
		t.Fatal("bytes still on disk")
	}
	locs, err := g.Catalog.Locations(pf.LFN)
	if err != nil || len(locs) != 1 {
		t.Fatalf("locations after removal = %v, %v", locs, err)
	}
	// Removing twice fails; removing a file we never had fails.
	if err := anl.RemoveLocal(pf.LFN); err == nil {
		t.Fatal("double RemoveLocal accepted")
	}
	// The file can be fetched again afterwards.
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatalf("re-Get after removal: %v", err)
	}
}

func TestDeleteLogical(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	pf := publish(t, g, cern, "gone.db", testbed.MakeData(5_000, 101), core.PublishOptions{})
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatal(err)
	}
	if err := cern.DeleteLogical(pf.LFN); err != nil {
		t.Fatalf("DeleteLogical: %v", err)
	}
	// The logical file is gone from the Grid entirely.
	if _, err := g.Catalog.Lookup(pf.LFN); err == nil {
		t.Fatal("catalog entry survived DeleteLogical")
	}
	if cern.HasFile(pf.LFN) {
		t.Fatal("producer's local catalog still lists the file")
	}
	if _, err := os.Stat(filepath.Join(cern.DataDir(), "gone.db")); err == nil {
		t.Fatal("producer's bytes still on disk")
	}
	// A consumer's Get now fails cleanly.
	if err := anl.RemoveLocal(pf.LFN); err == nil {
		// anl still has stale bytes + local entry, but the catalog entry
		// (and with it the replica record) is gone, so this errors.
		t.Log("RemoveLocal of orphaned replica tolerated")
	}
}
