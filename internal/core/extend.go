package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"gdmp/internal/rpc"
)

// JoinDataDir resolves a site-relative path inside the site's data
// directory, creating parent directories so a service can write there
// before publishing.
func JoinDataDir(s *Site, rel string) (string, error) {
	full, err := s.resolveLocal(rel)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return "", err
	}
	return full, nil
}

// This file exposes the extension surface other services build on. The
// paper positions GDMP as "extensible to meet future needs"; the object
// replication prototype of Section 5 is exactly such an extension: it
// registers additional Request Manager methods on a site and reuses the
// site's security, transfer, and catalog machinery.

// HandleRPC registers an additional Request Manager method on this site.
// The method name doubles as the ACL operation required of callers.
func (s *Site) HandleRPC(method string, h rpc.Handler) {
	s.gdmpSrv.Handle(method, h)
}

// CallRemote invokes a Request Manager method on another site using this
// site's credential and transport settings.
func (s *Site) CallRemote(addr, method string, args *rpc.Encoder) (*rpc.Decoder, error) {
	return s.CallRemoteCtx(s.ctx, addr, method, args)
}

// CallRemoteCtx is CallRemote bounded by a caller context.
func (s *Site) CallRemoteCtx(ctx context.Context, addr, method string, args *rpc.Encoder) (*rpc.Decoder, error) {
	cl, err := s.dialGDMP(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.CallContext(ctx, method, args)
}

// RemoveLocal deletes this site's replica of a logical file: the bytes on
// disk, the replica catalog location, and the local catalog entry. The
// logical file itself (and replicas elsewhere) survive. Object replication
// uses this to delete extraction files at the source after transfer
// (Section 5.2: "after having been transferred, the files are deleted on
// the source site(s)").
func (s *Site) RemoveLocal(lfn string) error {
	fi, ok := s.local.get(lfn)
	if !ok {
		return fmt.Errorf("core: %q is not replicated at %s", lfn, s.cfg.Name)
	}
	localPath, err := s.resolveLocal(fi.Path)
	if err != nil {
		return err
	}
	if err := os.Remove(localPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	if s.storage != nil {
		s.storage.Drop(fi.Path)
	}
	if err := s.rc.removeReplica(s.ctx, fi.LFN, s.pfnFor(fi.Path)); err != nil {
		return err
	}
	s.local.remove(lfn)
	return s.persist.removeFile(lfn)
}

// DeleteLogical removes the logical file entirely from the Grid: local
// replica (if any) plus the catalog entry with all locations. Only the
// producing site should call this.
func (s *Site) DeleteLogical(lfn string) error {
	if fi, ok := s.local.get(lfn); ok {
		localPath, err := s.resolveLocal(fi.Path)
		if err != nil {
			return err
		}
		if err := os.Remove(localPath); err != nil && !os.IsNotExist(err) {
			return err
		}
		if s.storage != nil {
			s.storage.Drop(fi.Path)
		}
		s.local.remove(lfn)
		if err := s.persist.removeFile(lfn); err != nil {
			return err
		}
	}
	return s.rc.client.Delete(s.ctx, lfn)
}
