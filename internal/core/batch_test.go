package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/testbed"
)

func TestPublishAllBatchesNotification(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	if err := anl.SubscribeTo(cern.Addr()); err != nil {
		t.Fatal(err)
	}
	var rels []string
	for i := 0; i < 5; i++ {
		rel := fmt.Sprintf("batch/f%d.db", i)
		if _, err := g.WriteSiteFile("cern.ch", rel, testbed.MakeData(5_000+i, int64(60+i))); err != nil {
			t.Fatal(err)
		}
		rels = append(rels, rel)
	}
	published, err := cern.PublishAll(rels, core.PublishOptions{Collection: "batch-coll"})
	if err != nil {
		t.Fatalf("PublishAll: %v", err)
	}
	if len(published) != 5 {
		t.Fatalf("published %d files", len(published))
	}
	// The consumer received all five in pending (single notification).
	waitFor(t, func() bool { return len(anl.Pending()) == 5 }, "batched notification")
	n, err := anl.ProcessPending()
	if err != nil || n != 5 {
		t.Fatalf("ProcessPending = %d, %v", n, err)
	}
	members, _ := g.Catalog.ListCollection("batch-coll")
	if len(members) != 5 {
		t.Fatalf("collection members = %v", members)
	}
}

func TestPublishAllRejectsExplicitLFN(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	if _, err := cern.PublishAll([]string{"x"}, core.PublishOptions{LFN: "lfn://explicit"}); err == nil {
		t.Fatal("explicit LFN accepted in batch publish")
	}
}

func TestPublishAllPartialFailure(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	if err := anl.SubscribeTo(cern.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteSiteFile("cern.ch", "ok.db", testbed.MakeData(100, 70)); err != nil {
		t.Fatal(err)
	}
	published, err := cern.PublishAll([]string{"ok.db", "missing.db"}, core.PublishOptions{})
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if len(published) != 1 {
		t.Fatalf("published = %v", published)
	}
	// The successfully registered file was still announced.
	waitFor(t, func() bool { return len(anl.Pending()) == 1 }, "partial batch notification")
}

func TestRebuildLocalCatalogAfterRestart(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	var lfns []string
	for i := 0; i < 3; i++ {
		pf := publish(t, g, cern, fmt.Sprintf("persist/f%d.db", i),
			testbed.MakeData(10_000, int64(80+i)), core.PublishOptions{})
		lfns = append(lfns, pf.LFN)
	}
	dataDir := cern.DataDir()

	// "Crash" the site and bring up a fresh instance over the same pool
	// with the same identity.
	if err := cern.Close(); err != nil {
		t.Fatal(err)
	}
	delete(g.Sites, "cern.ch")
	cred, err := g.CA.Issue("gdmp/cern.ch", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	reborn, err := core.NewSite(core.Config{
		Name:           "cern.ch",
		DataDir:        dataDir,
		Cred:           cred,
		TrustRoots:     g.Roots,
		ACL:            g.ACL,
		ReplicaCatalog: g.CatalogAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()

	if len(reborn.LocalFiles()) != 0 {
		t.Fatal("fresh site should start with an empty local catalog")
	}
	restored, err := reborn.RebuildLocalCatalog()
	if err != nil {
		t.Fatalf("RebuildLocalCatalog: %v", err)
	}
	if restored != 3 {
		t.Fatalf("restored %d entries", restored)
	}
	for _, lfn := range lfns {
		if !reborn.HasFile(lfn) {
			t.Fatalf("%s not re-adopted", lfn)
		}
	}
	// Idempotent.
	if again, err := reborn.RebuildLocalCatalog(); err != nil || again != 0 {
		t.Fatalf("second rebuild = %d, %v", again, err)
	}
	// A file whose bytes vanished is not re-adopted.
	if err := os.Remove(filepath.Join(dataDir, "persist", "f0.db")); err != nil {
		t.Fatal(err)
	}
	fresh, err := core.NewSite(core.Config{
		Name:           "cern.ch",
		DataDir:        dataDir,
		Cred:           cred,
		TrustRoots:     g.Roots,
		ACL:            g.ACL,
		ReplicaCatalog: g.CatalogAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	restored, err = fresh.RebuildLocalCatalog()
	if err != nil || restored != 2 {
		t.Fatalf("rebuild after loss = %d, %v", restored, err)
	}
}
