package core

import (
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"gdmp/internal/gridftp"
	"gdmp/internal/journal"
	"gdmp/internal/obs"
	"gdmp/internal/rpc"
)

// RecoveryMetricsPrefix prefixes the restart-recovery metrics.
const RecoveryMetricsPrefix = "gdmp_recovery"

// Journal record tags. Every mutation of durable site state — the local
// file catalog, the subscriber registry with its undelivered notification
// queues, and the set of notified-but-unfinished pulls — is one tagged
// record, appended to the journal and then applied to the persistence
// mirror, and re-applied in order at replay. Records are deltas, so
// their per-key ordering matters; the journal's per-generation WAL
// guarantees a record is only ever replayed against the snapshot it was
// appended after, never double-applied.
const (
	recPutFile uint8 = iota + 1
	recRemoveFile
	recSetState
	recSubscribe
	recUnsubscribe
	recNotifyQueue
	recNotifyAck
	recNotifyDrop
	recPullQueued
	recPullDone
	recProducerAdd
	recProducerRemove
	recScrubCursor
	recParitySet
	recParityDrop
)

// compactThreshold is how many WAL records accumulate before the journal
// is folded into a snapshot.
const compactThreshold = 1024

// persistSub mirrors one subscriber's durable delivery state.
type persistSub struct {
	addr    string
	suspect bool
	queue   []FileInfo
}

// persistState is the durable mirror of a site: exactly the state a
// restart must reconstruct. The mirror is the journal's state machine —
// records are transitions on it — so a snapshot is just its encoding and
// needs no other site locks.
type persistState struct {
	files map[string]FileInfo
	subs  map[string]*persistSub
	pulls map[string]FileInfo // notified or admitted, not yet replicated

	// producers are the ctl addresses of sites this site has subscribed
	// to. Anti-entropy exchanges digests with them after a restart, so the
	// set is durable.
	producers map[string]bool

	// scrubCursor is the last LFN the local scrubber verified in its
	// current pass ("" = no pass in progress), letting a restart resume
	// mid-scan instead of re-reading the files it already verified.
	scrubCursor string

	// parity maps LFN → hex CRC32 of that file's parity sidecar. A
	// sidecar is journaled only after its bytes are durably renamed into
	// place, so after a crash the registry and the disk can disagree in
	// exactly one direction: a sidecar file with no record (crashed before
	// commit — readopted or swept at recovery), never a record with
	// unverifiable bytes.
	parity map[string]string
}

func newPersistState() persistState {
	return persistState{
		files:     make(map[string]FileInfo),
		subs:      make(map[string]*persistSub),
		pulls:     make(map[string]FileInfo),
		producers: make(map[string]bool),
		parity:    make(map[string]string),
	}
}

// sitePersistence couples the journal with its state mirror. All methods
// are safe for concurrent use; a nil *sitePersistence (site without a
// StateDir) turns every method into a no-op.
type sitePersistence struct {
	mu     sync.Mutex
	j      *journal.Journal
	st     persistState
	closed bool
	logger *log.Logger
}

// openPersistence opens the journal under stateDir and replays it into a
// fresh mirror. tornBytes reports WAL bytes quarantined at open.
func openPersistence(stateDir string, reg *obs.Registry, logger *log.Logger) (p *sitePersistence, tornBytes int64, err error) {
	j, rec, err := journal.Open(filepath.Join(stateDir, "journal"), journal.Options{Registry: reg})
	if err != nil {
		return nil, 0, fmt.Errorf("core: open journal: %w", err)
	}
	p = &sitePersistence{j: j, st: newPersistState(), logger: logger}
	if rec.Snapshot != nil {
		if err := p.st.decode(rec.Snapshot); err != nil {
			j.Close()
			return nil, 0, fmt.Errorf("core: decode journal snapshot: %w", err)
		}
	}
	for _, r := range rec.Records {
		if err := p.st.apply(r); err != nil {
			// The record passed its WAL checksum, so a decode failure is a
			// version skew or a bug, not disk corruption; surface it.
			j.Close()
			return nil, 0, fmt.Errorf("core: replay journal record: %w", err)
		}
	}
	return p, rec.TornBytes, nil
}

// commit appends one record to the journal and applies it to the mirror,
// compacting when the WAL has grown past the threshold. It returns only
// after the record is fsync'd, so callers may acknowledge the mutation
// the moment commit returns nil — and must refuse to acknowledge when it
// errors: an append failure (disk full, I/O fault) latches the journal
// failed, the record never reaches the mirror, and the error surfaces so
// the mutating operation fails instead of silently losing durability.
func (p *sitePersistence) commit(rec []byte) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commitLocked(rec)
}

// commitLocked is commit with p.mu already held (pull hooks take the lock
// earlier so their existing-record checks and the append are one atomic
// step).
func (p *sitePersistence) commitLocked(rec []byte) error {
	if p.closed {
		return nil
	}
	if err := p.j.Append(rec); err != nil {
		return err
	}
	if err := p.st.apply(rec); err != nil {
		// The record is our own encoding, already durable; a mirror
		// rejection is a bug, not an I/O condition.
		p.logger.Printf("gdmp: journal record rejected by mirror: %v", err)
	}
	if p.j.Records() >= compactThreshold {
		if err := p.j.Compact(p.st.encode()); err != nil {
			p.logger.Printf("gdmp: journal compaction failed: %v", err)
		}
	}
	return nil
}

// close shuts the journal down. A graceful close folds the final state
// into a snapshot first; an abrupt close (Kill) writes nothing more, so
// only already-fsync'd records survive — exactly a crash's disk image.
func (p *sitePersistence) close(graceful bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if graceful {
		if err := p.j.Compact(p.st.encode()); err != nil {
			p.logger.Printf("gdmp: final journal compaction failed: %v", err)
		}
	}
	p.j.Close()
}

// --- record constructors (the site's journaling hooks) ---------------------

func (p *sitePersistence) putFile(fi FileInfo) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recPutFile)
	encodeFileInfo(&e, fi)
	return p.commit(e.Bytes())
}

func (p *sitePersistence) removeFile(lfn string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recRemoveFile)
	e.String(lfn)
	return p.commit(e.Bytes())
}

func (p *sitePersistence) setState(lfn string, st FileState) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recSetState)
	e.String(lfn)
	e.String(string(st))
	return p.commit(e.Bytes())
}

func (p *sitePersistence) subscribe(name, addr string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recSubscribe)
	e.String(name)
	e.String(addr)
	return p.commit(e.Bytes())
}

func (p *sitePersistence) unsubscribe(name string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recUnsubscribe)
	e.String(name)
	return p.commit(e.Bytes())
}

func (p *sitePersistence) notifyQueue(name string, files []FileInfo) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recNotifyQueue)
	e.String(name)
	encodeFileInfos(&e, files)
	return p.commit(e.Bytes())
}

func (p *sitePersistence) notifyAck(name string, n int) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recNotifyAck)
	e.String(name)
	e.Uint32(uint32(n))
	return p.commit(e.Bytes())
}

func (p *sitePersistence) notifyDrop(name string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recNotifyDrop)
	e.String(name)
	return p.commit(e.Bytes())
}

// pullQueued records an unfinished pull. It is idempotent by LFN and
// never downgrades: a record that already carries the file's path is not
// replaced by a bare-LFN admission for the same file. The check and the
// commit happen under one lock hold, so a concurrent bare admission can
// never slip in after a path-bearing record was checked and overwrite it.
func (p *sitePersistence) pullQueued(fi FileInfo) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recPullQueued)
	encodeFileInfo(&e, fi)
	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.st.pulls[fi.LFN]; ok && (existing.Path != "" || fi.Path == "") {
		return nil
	}
	return p.commitLocked(e.Bytes())
}

func (p *sitePersistence) pullDone(lfn string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recPullDone)
	e.String(lfn)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.st.pulls[lfn]; !ok {
		return nil
	}
	return p.commitLocked(e.Bytes())
}

// producerAdd records that this site subscribed to a producer at addr.
// Idempotent by address.
func (p *sitePersistence) producerAdd(addr string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recProducerAdd)
	e.String(addr)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.producers[addr] {
		return nil
	}
	return p.commitLocked(e.Bytes())
}

// producerRemove records an unsubscription from the producer at addr.
func (p *sitePersistence) producerRemove(addr string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recProducerRemove)
	e.String(addr)
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.st.producers[addr] {
		return nil
	}
	return p.commitLocked(e.Bytes())
}

// producerAddrs returns the recovered producer set (replay hook).
func (p *sitePersistence) producerAddrs() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.st.producers))
	for addr := range p.st.producers {
		out = append(out, addr)
	}
	return out
}

// scrubCursor journals scrub-pass progress: lfn is the last catalog entry
// verified ("" marks the pass complete). Best-effort durability is wrong
// here in the other direction than acks: losing the cursor only costs
// re-verification, but the caller still surfaces the error so a latched
// journal is noticed.
func (p *sitePersistence) scrubCursor(lfn string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recScrubCursor)
	e.String(lfn)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.scrubCursor == lfn {
		return nil
	}
	return p.commitLocked(e.Bytes())
}

// paritySet records that lfn has a parity sidecar whose file bytes hash
// to crcHex. Idempotent on identical (lfn, crc) pairs; a regenerated
// sidecar just overwrites the entry.
func (p *sitePersistence) paritySet(lfn, crcHex string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recParitySet)
	e.String(lfn)
	e.String(crcHex)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.parity[lfn] == crcHex {
		return nil
	}
	return p.commitLocked(e.Bytes())
}

// parityDrop forgets lfn's parity sidecar (file withdrawn, sidecar
// invalid, or sidecar evicted with its file).
func (p *sitePersistence) parityDrop(lfn string) error {
	if p == nil {
		return nil
	}
	var e rpc.Encoder
	e.Uint8(recParityDrop)
	e.String(lfn)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.st.parity[lfn]; !ok {
		return nil
	}
	return p.commitLocked(e.Bytes())
}

// recoveredParity returns a copy of the journaled sidecar registry
// (replay hook).
func (p *sitePersistence) recoveredParity() map[string]string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.st.parity))
	for lfn, crc := range p.st.parity {
		out[lfn] = crc
	}
	return out
}

// recoveredScrubCursor returns the journaled scrub cursor (replay hook).
func (p *sitePersistence) recoveredScrubCursor() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.scrubCursor
}

// incompletePulls returns the recovered unfinished-pull set (replay hook).
func (p *sitePersistence) incompletePulls() []FileInfo {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FileInfo, 0, len(p.st.pulls))
	for _, fi := range p.st.pulls {
		out = append(out, fi)
	}
	return out
}

// --- mirror transitions -----------------------------------------------------

func encodeFileInfo(e *rpc.Encoder, fi FileInfo) {
	e.String(fi.LFN)
	e.String(fi.Path)
	e.Int64(fi.Size)
	e.String(fi.CRC32)
	e.String(fi.FileType)
	e.String(string(fi.State))
}

func decodeFileInfo(d *rpc.Decoder) FileInfo {
	return FileInfo{
		LFN:      d.String(),
		Path:     d.String(),
		Size:     d.Int64(),
		CRC32:    d.String(),
		FileType: d.String(),
		State:    FileState(d.String()),
	}
}

// apply runs one record against the mirror. Replay calls it for every
// recovered record in append order; commit calls it before appending, so
// both paths share one transition function.
func (st *persistState) apply(rec []byte) error {
	d := rpc.NewDecoder(rec)
	switch tag := d.Uint8(); tag {
	case recPutFile:
		fi := decodeFileInfo(d)
		if d.Err() == nil {
			st.files[fi.LFN] = fi
		}
	case recRemoveFile:
		delete(st.files, d.String())
	case recSetState:
		lfn := d.String()
		state := FileState(d.String())
		if fi, ok := st.files[lfn]; ok && d.Err() == nil {
			fi.State = state
			st.files[lfn] = fi
		}
	case recSubscribe:
		name := d.String()
		addr := d.String()
		if d.Err() != nil {
			break
		}
		if sub, ok := st.subs[name]; ok {
			// Re-subscribing updates the address and clears suspicion; the
			// undelivered queue survives.
			sub.addr = addr
			sub.suspect = false
		} else {
			st.subs[name] = &persistSub{addr: addr}
		}
	case recUnsubscribe:
		delete(st.subs, d.String())
	case recNotifyQueue:
		name := d.String()
		files := decodeFileInfos(d)
		if sub, ok := st.subs[name]; ok && d.Err() == nil {
			sub.queue = append(sub.queue, files...)
		}
	case recNotifyAck:
		name := d.String()
		n := int(d.Uint32())
		if sub, ok := st.subs[name]; ok && d.Err() == nil {
			if n > len(sub.queue) {
				n = len(sub.queue)
			}
			sub.queue = append([]FileInfo(nil), sub.queue[n:]...)
		}
	case recNotifyDrop:
		if sub, ok := st.subs[d.String()]; ok && d.Err() == nil {
			sub.suspect = true
			sub.queue = nil
		}
	case recPullQueued:
		fi := decodeFileInfo(d)
		if d.Err() == nil {
			st.pulls[fi.LFN] = fi
		}
	case recPullDone:
		delete(st.pulls, d.String())
	case recProducerAdd:
		if addr := d.String(); d.Err() == nil {
			st.producers[addr] = true
		}
	case recProducerRemove:
		delete(st.producers, d.String())
	case recScrubCursor:
		if lfn := d.String(); d.Err() == nil {
			st.scrubCursor = lfn
		}
	case recParitySet:
		lfn := d.String()
		crc := d.String()
		if d.Err() == nil {
			st.parity[lfn] = crc
		}
	case recParityDrop:
		delete(st.parity, d.String())
	default:
		return fmt.Errorf("unknown record tag %d", tag)
	}
	return d.Err()
}

// snapshotVersion guards the snapshot payload layout. Version 2 appends
// the producer set and the scrub cursor; version 3 appends the parity
// sidecar registry. Older snapshots still decode, with the newer fields
// empty.
const snapshotVersion = 3

// encode serializes the mirror for a journal snapshot.
func (st *persistState) encode() []byte {
	var e rpc.Encoder
	e.Uint8(snapshotVersion)
	e.Uint32(uint32(len(st.files)))
	for _, fi := range st.files {
		encodeFileInfo(&e, fi)
	}
	e.Uint32(uint32(len(st.subs)))
	for name, sub := range st.subs {
		e.String(name)
		e.String(sub.addr)
		e.Bool(sub.suspect)
		encodeFileInfos(&e, sub.queue)
	}
	e.Uint32(uint32(len(st.pulls)))
	for _, fi := range st.pulls {
		encodeFileInfo(&e, fi)
	}
	e.Uint32(uint32(len(st.producers)))
	for addr := range st.producers {
		e.String(addr)
	}
	e.String(st.scrubCursor)
	e.Uint32(uint32(len(st.parity)))
	for lfn, crc := range st.parity {
		e.String(lfn)
		e.String(crc)
	}
	return e.Bytes()
}

// decode loads a snapshot payload into the (empty) mirror.
func (st *persistState) decode(b []byte) error {
	d := rpc.NewDecoder(b)
	v := d.Uint8()
	if (v < 1 || v > snapshotVersion) && d.Err() == nil {
		return fmt.Errorf("unsupported snapshot version %d", v)
	}
	for i, n := uint32(0), d.Uint32(); i < n && d.Err() == nil; i++ {
		fi := decodeFileInfo(d)
		if d.Err() == nil {
			st.files[fi.LFN] = fi
		}
	}
	for i, n := uint32(0), d.Uint32(); i < n && d.Err() == nil; i++ {
		name := d.String()
		sub := &persistSub{addr: d.String(), suspect: d.Bool()}
		sub.queue = decodeFileInfos(d)
		if d.Err() == nil {
			st.subs[name] = sub
		}
	}
	for i, n := uint32(0), d.Uint32(); i < n && d.Err() == nil; i++ {
		fi := decodeFileInfo(d)
		if d.Err() == nil {
			st.pulls[fi.LFN] = fi
		}
	}
	if v >= 2 {
		for i, n := uint32(0), d.Uint32(); i < n && d.Err() == nil; i++ {
			if addr := d.String(); d.Err() == nil {
				st.producers[addr] = true
			}
		}
		st.scrubCursor = d.String()
	}
	if v >= 3 {
		for i, n := uint32(0), d.Uint32(); i < n && d.Err() == nil; i++ {
			lfn := d.String()
			crc := d.String()
			if d.Err() == nil {
				st.parity[lfn] = crc
			}
		}
	}
	return d.Finish()
}

// --- restart recovery --------------------------------------------------------

// RecoveryStats reports what a restart reconstructed and repaired.
type RecoveryStats struct {
	// FilesRestored is how many local-catalog entries replay recovered.
	FilesRestored int

	// SubscribersRestored is how many subscribers replay recovered.
	SubscribersRestored int

	// NoticesRequeued is how many undelivered publication notices went
	// back onto subscriber delivery queues.
	NoticesRequeued int

	// PullsRequeued is how many unfinished pulls were resubmitted (or
	// returned to the pending queue when AutoReplicate is off).
	PullsRequeued int

	// PartsResumed is how many .part staging files matched an unfinished
	// pull and were kept for resumption.
	PartsResumed int

	// Quarantined is how many orphaned .part files and size-mismatched
	// catalog files were moved into the quarantine directory.
	Quarantined int

	// MissingFiles is how many catalog entries had no bytes on disk and
	// were dropped from the local catalog.
	MissingFiles int

	// TornBytes is how many trailing journal bytes a crash left torn
	// (preserved in the journal's wal.torn).
	TornBytes int64
}

// recordRecoveryMetrics publishes the gdmp_recovery_* family.
func recordRecoveryMetrics(reg *obs.Registry, rs RecoveryStats) {
	if reg == nil {
		reg = obs.Default
	}
	set := func(name, help string, v int64) {
		reg.Gauge(RecoveryMetricsPrefix+"_"+name, help).Set(v)
	}
	set("files_restored", "Local catalog entries recovered from the journal at the last restart.", int64(rs.FilesRestored))
	set("subscribers_restored", "Subscribers recovered from the journal at the last restart.", int64(rs.SubscribersRestored))
	set("notices_requeued", "Undelivered publication notices requeued at the last restart.", int64(rs.NoticesRequeued))
	set("pulls_requeued", "Unfinished pulls requeued at the last restart.", int64(rs.PullsRequeued))
	set("parts_resumed", "Partial downloads kept for resumption at the last restart.", int64(rs.PartsResumed))
	set("quarantined", "Orphaned or corrupt files quarantined at the last restart.", int64(rs.Quarantined))
	set("missing_files", "Catalog entries dropped because their bytes were gone at the last restart.", int64(rs.MissingFiles))
	set("torn_bytes", "Torn journal bytes truncated at the last restart.", rs.TornBytes)
}

// restoreFromJournal fills the site's in-memory state from the replayed
// mirror: local catalog, subscriber registry with undelivered queues, and
// the unfinished-pull set. It then reconciles the data directory against
// the recovered catalog. Called from NewSite before the servers start;
// delivery drains and pull requeues are kicked separately once they can
// run (resumeRecovered).
func (s *Site) restoreFromJournal(tornBytes int64) error {
	p := s.persist
	p.mu.Lock()
	files := make([]FileInfo, 0, len(p.st.files))
	for _, fi := range p.st.files {
		files = append(files, fi)
	}
	type subRestore struct {
		name string
		sub  persistSub
	}
	subs := make([]subRestore, 0, len(p.st.subs))
	for name, sub := range p.st.subs {
		subs = append(subs, subRestore{name, persistSub{
			addr:    sub.addr,
			suspect: sub.suspect,
			queue:   append([]FileInfo(nil), sub.queue...),
		}})
	}
	p.mu.Unlock()

	rs := RecoveryStats{TornBytes: tornBytes}
	for _, fi := range files {
		s.local.put(fi)
		rs.FilesRestored++
	}
	s.subMu.Lock()
	for _, sr := range subs {
		s.subscribers[sr.name] = &subscriberState{
			name:    sr.name,
			addr:    sr.sub.addr,
			suspect: sr.sub.suspect,
			queue:   sr.sub.queue,
		}
		rs.SubscribersRestored++
		rs.NoticesRequeued += len(sr.sub.queue)
	}
	s.met.subscribers.Set(int64(len(s.subscribers)))
	s.updateNotifyGaugesLocked()
	s.subMu.Unlock()

	if err := s.reconcileDataDir(&rs); err != nil {
		return err
	}
	// Parity reconciliation runs after the catalog has settled, so sidecar
	// records for replicas the reconciliation just dropped are cleaned too.
	s.recoverParity()
	s.recovery = rs
	return nil
}

// reconcileDataDir checks the recovered catalog against the bytes on disk
// and sweeps staging files: a catalog entry without its file is dropped, a
// size mismatch is quarantined, a .part file is kept only when an
// unfinished pull claims it.
func (s *Site) reconcileDataDir(rs *RecoveryStats) error {
	for _, fi := range s.local.list() {
		if fi.State != StateDisk {
			continue
		}
		localPath, err := s.resolveLocal(fi.Path)
		if err != nil {
			continue
		}
		info, err := os.Stat(localPath)
		if os.IsNotExist(err) {
			s.logger.Printf("gdmp[%s]: recovery: %s has no bytes at %s, dropping catalog entry",
				s.cfg.Name, fi.LFN, fi.Path)
			s.local.remove(fi.LFN)
			if err := s.persist.removeFile(fi.LFN); err != nil {
				return err
			}
			rs.MissingFiles++
			continue
		}
		if err != nil {
			return err
		}
		if fi.Size > 0 && info.Size() != fi.Size {
			s.logger.Printf("gdmp[%s]: recovery: %s is %d bytes, catalog says %d; quarantining",
				s.cfg.Name, fi.LFN, info.Size(), fi.Size)
			if s.quarantine(localPath) {
				rs.Quarantined++
			}
			s.local.remove(fi.LFN)
			if err := s.persist.removeFile(fi.LFN); err != nil {
				return err
			}
		}
	}

	// Staging files an unfinished pull may legitimately resume.
	expected := make(map[string]bool)
	for _, fi := range s.persist.incompletePulls() {
		if fi.Path == "" {
			continue
		}
		if lp, err := s.resolveLocal(fi.Path); err == nil {
			expected[lp+gridftp.PartSuffix] = true
		}
	}
	return filepath.WalkDir(s.cfg.DataDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), gridftp.PartSuffix) {
			return err
		}
		if expected[path] {
			rs.PartsResumed++
			return nil
		}
		s.logger.Printf("gdmp[%s]: recovery: quarantining orphaned staging file %s", s.cfg.Name, path)
		if s.quarantine(path) {
			rs.Quarantined++
		}
		return nil
	})
}

// quarantine moves a suspect file into <StateDir>/quarantine, reporting
// whether the move happened. The file keeps its base name, suffixed on
// collision, so repeated recoveries never overwrite earlier evidence.
func (s *Site) quarantine(path string) bool {
	qdir := s.quarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		s.logger.Printf("gdmp[%s]: quarantine dir: %v", s.cfg.Name, err)
		return false
	}
	dst := filepath.Join(qdir, filepath.Base(path))
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
	}
	if err := os.Rename(path, dst); err != nil {
		s.logger.Printf("gdmp[%s]: quarantine %s: %v", s.cfg.Name, path, err)
		return false
	}
	return true
}

// resumeRecovered kicks the deferred halves of recovery once the site is
// fully up: redelivery drains for restored notification queues, and the
// unfinished pulls back into the scheduler (AutoReplicate) or the pending
// queue.
func (s *Site) resumeRecovered() {
	s.subMu.Lock()
	for _, st := range s.subscribers {
		if len(st.queue) > 0 && !st.suspect && !st.draining {
			st.draining = true
			s.notifyWG.Add(1)
			go s.drainSubscriber(st)
		}
	}
	s.subMu.Unlock()

	pulls := s.persist.incompletePulls()
	s.recovery.PullsRequeued = len(pulls)
	recordRecoveryMetrics(s.metrics, s.recovery)
	if len(pulls) == 0 {
		return
	}
	s.logger.Printf("gdmp[%s]: recovery: requeueing %d unfinished pulls", s.cfg.Name, len(pulls))
	if !s.cfg.AutoReplicate {
		s.addPending(pulls...)
		return
	}
	for _, fi := range pulls {
		fi := fi
		tk := s.submitGet(fi.LFN, 0)
		s.notifyWG.Add(1)
		go func() {
			defer s.notifyWG.Done()
			if err := tk.Wait(s.ctx); err != nil {
				s.logger.Printf("gdmp[%s]: recovered pull %s: %v", s.cfg.Name, fi.LFN, err)
				s.addPending(fi)
			}
		}()
	}
}
