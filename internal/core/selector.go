package core

import (
	"net"
	"sync"
	"time"
)

// LowestLatencySelector returns a ReplicaSelector that probes each
// candidate's GridFTP endpoint with a TCP connect and picks the fastest —
// a first concrete cost function in the spirit of the replica-selection
// future work the paper cites [VTF01]. dial defaults to net.Dial; probes
// run concurrently and an unreachable candidate is ranked last.
func LowestLatencySelector(dial func(network, addr string) (net.Conn, error)) ReplicaSelector {
	if dial == nil {
		dial = net.Dial
	}
	return func(lfn string, candidates []PFN) PFN {
		if len(candidates) == 1 {
			return candidates[0]
		}
		type probe struct {
			idx int
			rtt time.Duration
			ok  bool
		}
		results := make([]probe, len(candidates))
		var wg sync.WaitGroup
		for i, c := range candidates {
			wg.Add(1)
			go func(i int, addr string) {
				defer wg.Done()
				start := time.Now()
				conn, err := dial("tcp", addr)
				rtt := time.Since(start)
				if err != nil {
					results[i] = probe{idx: i}
					return
				}
				conn.Close()
				results[i] = probe{idx: i, rtt: rtt, ok: true}
			}(i, c.Addr)
		}
		wg.Wait()
		best := -1
		for _, p := range results {
			if !p.ok {
				continue
			}
			if best == -1 || p.rtt < results[best].rtt {
				best = p.idx
			}
		}
		if best == -1 {
			return candidates[0] // all probes failed; let the transfer report
		}
		return candidates[best]
	}
}
