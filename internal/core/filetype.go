package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"gdmp/internal/objectstore"
)

// FileType is the plug-in interface that makes GDMP 2.0 "handle file
// replication independent of the file format" (Section 4.1): replication
// runs pre-processing before the transfer and post-processing after it,
// both file-type specific and possibly no-ops.
type FileType interface {
	// Name is the identifier stored in the replica catalog's filetype
	// attribute, e.g. "flat" or "objectivity".
	Name() string

	// PreProcess prepares the destination site before the file arrives
	// (e.g. creating an Objectivity federation, introducing schema).
	PreProcess(site *Site, lfn string) error

	// PostProcess integrates the arrived file into local systems (e.g.
	// attaching a database file to the local federation's file catalog).
	PostProcess(site *Site, lfn, localPath string) error
}

// AttrProvider is an optional FileType extension: a type implementing it
// contributes extra replica-catalog attributes at publish time (e.g. the
// database id and associated databases of an object database file).
type AttrProvider interface {
	PublishAttrs(localPath string) (map[string]string, error)
}

// Errors from the file-type registry.
var (
	ErrUnknownFileType = errors.New("core: unknown file type")
	ErrDuplicateType   = errors.New("core: file type already registered")
)

// typeRegistry holds a site's file-type plug-ins.
type typeRegistry struct {
	mu    sync.RWMutex
	types map[string]FileType
}

func newTypeRegistry() *typeRegistry {
	r := &typeRegistry{types: make(map[string]FileType)}
	// Every site understands flat files out of the box.
	r.types[FlatType{}.Name()] = FlatType{}
	return r
}

func (r *typeRegistry) register(ft FileType) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.types[ft.Name()]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateType, ft.Name())
	}
	r.types[ft.Name()] = ft
	return nil
}

func (r *typeRegistry) lookup(name string) (FileType, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ft, ok := r.types[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFileType, name)
	}
	return ft, nil
}

// FlatType replicates plain files with no format-specific steps — the
// paper's "flat files with particular internal structure" degenerate case.
type FlatType struct{}

// Name implements FileType.
func (FlatType) Name() string { return "flat" }

// PreProcess implements FileType (no-op).
func (FlatType) PreProcess(*Site, string) error { return nil }

// PostProcess implements FileType (no-op).
func (FlatType) PostProcess(*Site, string, string) error { return nil }

// ObjectivityType replicates object database files: post-processing
// attaches the arrived file to the site's local federation, "and thus
// insert[s] it to an internal file catalog" (Section 4.1).
type ObjectivityType struct{}

// Name implements FileType.
func (ObjectivityType) Name() string { return "objectivity" }

// PreProcess verifies the destination site runs a federation, the analogue
// of "creating an Objectivity federation at the destination site".
func (ObjectivityType) PreProcess(site *Site, lfn string) error {
	if site.federation == nil {
		return fmt.Errorf("core: site %s has no object federation for %s", site.Name(), lfn)
	}
	return nil
}

// PostProcess attaches the database file to the local federation.
func (ObjectivityType) PostProcess(site *Site, lfn, localPath string) error {
	if site.federation == nil {
		return fmt.Errorf("core: site %s has no object federation", site.Name())
	}
	_, err := site.federation.Attach(localPath)
	if errors.Is(err, objectstore.ErrAlreadyAttached) {
		return nil // idempotent: re-replication of the same database
	}
	return err
}

// PublishAttrs records the database id and, crucially, the foreign
// databases its objects reference: Section 2.1's "associated files" that
// must be replicated together to keep navigation intact. The attributes
// let any consumer compute the closure from the replica catalog alone.
func (ObjectivityType) PublishAttrs(localPath string) (map[string]string, error) {
	db, err := objectstore.Open(localPath)
	if err != nil {
		return nil, fmt.Errorf("core: inspect object database: %w", err)
	}
	defer db.Close()
	attrs := map[string]string{
		AttrDBID:    fmt.Sprint(db.DBID()),
		attrObjects: fmt.Sprint(db.Len()),
	}
	if foreign := db.ForeignDBs(); len(foreign) > 0 {
		parts := make([]string, len(foreign))
		for i, id := range foreign {
			parts[i] = fmt.Sprint(id)
		}
		attrs[AttrAssocDBs] = strings.Join(parts, ",")
	}
	return attrs, nil
}
