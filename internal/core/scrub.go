package core

// Self-healing: the site-specific verbs behind internal/scrub's three
// loops. The scrubber walks the local catalog re-checksumming bytes, the
// anti-entropy pass swaps digests with producers and subscribers, and
// both feed the repair driver, which re-replicates through the ordinary
// pull pipeline. The split mirrors internal/retry and internal/xfer:
// package scrub owns pacing, diffing, queueing, and metrics; this file
// owns what "verify", "quarantine", and "re-replicate" mean against a
// live catalog and scheduler.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/parity"
	"gdmp/internal/rpc"
	"gdmp/internal/scrub"
)

// Additional GDMP RPC methods for the self-healing layer.
const (
	// MethodDigest returns the site's integrity digest: its name, its
	// GridFTP endpoint, and one (LFN, size, CRC) entry per local replica.
	MethodDigest = "gdmp.digest"

	// MethodFsck runs a full scrub pass on demand and returns its report.
	MethodFsck = "gdmp.fsck"

	// MethodHasFile point-queries whether a site currently holds an LFN
	// in its local catalog. Anti-entropy uses it to re-verify a digest
	// difference against live state before withdrawing a location.
	MethodHasFile = "gdmp.hasfile"
)

// initScrub builds the self-healing runtime: metrics, rate limiter, and
// the repair driver. Called from NewSite before the servers start (the
// digest/fsck handlers need it); the background daemon starts later, once
// recovery has resumed.
func (s *Site) initScrub() {
	s.scrubMet = scrub.NewMetrics(s.metrics)
	s.scrubLim = scrub.NewLimiter(s.cfg.ScrubRateBytes)
	s.producers = make(map[string]bool)
	for _, addr := range s.persist.producerAddrs() {
		s.producers[addr] = true
	}
	s.scrubCur = s.persist.recoveredScrubCursor()
	s.repairer = scrub.NewRepairer(s.ctx, scrub.RepairConfig{
		Do:          s.repairFile,
		Reconstruct: s.reconstructLocal,
		Policy:      s.retryPolicy("scrub.repair"),
		Metrics:     s.scrubMet,
		Logger:      s.logger,
	})
}

// startScrubDaemon launches the background loops per the site config.
// Separate from initScrub so recovered pulls are already queued before
// the first pass can run.
func (s *Site) startScrubDaemon() {
	if s.cfg.ScrubInterval <= 0 && s.cfg.AntiEntropyInterval <= 0 {
		return
	}
	s.scrubDmn = scrub.NewDaemon(s.ctx, scrub.DaemonConfig{
		ScrubEvery:       s.cfg.ScrubInterval,
		AntiEntropyEvery: s.cfg.AntiEntropyInterval,
	}, siteScrubOps{s}, s.logger)
}

// siteScrubOps adapts the Site to scrub.Ops without exporting the passes
// twice.
type siteScrubOps struct{ s *Site }

// The daemon's periodic passes yield to brownout: under overload the
// next interval tries again, so integrity work is deferred, never lost.
// On-demand Fsck is not gated — an operator asking for a scan gets one.

func (o siteScrubOps) ScrubPass(ctx context.Context) (scrub.Report, error) {
	if !o.s.admit.Allow("scrub") {
		return scrub.Report{}, nil
	}
	return o.s.ScrubPass(ctx)
}

func (o siteScrubOps) AntiEntropyPass(ctx context.Context) (scrub.ExchangeReport, error) {
	if !o.s.admit.Allow("antientropy") {
		return scrub.ExchangeReport{}, nil
	}
	return o.s.AntiEntropyPass(ctx)
}

// repairFile is the Repairer's work function: one scheduler-admitted pull
// through the full replication pipeline (selection, failover, CRC
// verification, catalog insertion). Below-normal priority, so repairs
// never starve notification-driven pulls.
func (s *Site) repairFile(ctx context.Context, lfn string) error {
	if s.HasFile(lfn) {
		return nil
	}
	if err := s.submitGet(lfn, -1).Wait(ctx); err != nil {
		return err
	}
	// Degraded-mode accounting: these bytes crossed the WAN again because
	// local reconstruction was impossible (or parity is off).
	if fi, ok := s.local.get(lfn); ok {
		s.scrubMet.RepairBytesRepulled.Add(fi.Size)
	}
	return nil
}

// queueRepair hands one withdrawn or missing replica to the repair driver.
func (s *Site) queueRepair(lfn string) bool {
	if s.repairer == nil {
		return false
	}
	return s.repairer.Add(lfn)
}

// RepairQuiesce blocks until the repair queue is drained and the worker
// idle (test barrier).
func (s *Site) RepairQuiesce(ctx context.Context) error {
	if s.repairer == nil {
		return nil
	}
	return s.repairer.Quiesce(ctx)
}

// --- local scrubber ---------------------------------------------------------

// setScrubCursor advances the journaled pass cursor. Best-effort: losing
// it only costs re-verification after a crash.
func (s *Site) setScrubCursor(lfn string) {
	s.scrubCur = lfn
	if err := s.persist.scrubCursor(lfn); err != nil {
		s.logger.Printf("gdmp[%s]: journal scrub cursor: %v", s.cfg.Name, err)
	}
}

// ScrubPass walks the local catalog once in LFN order, re-reading each
// disk replica at the configured byte rate and comparing its CRC against
// the cataloged value. Corrupt bytes are quarantined and the replica
// withdrawn from both catalogs; missing bytes just withdraw. Every
// withdrawal queues a repair. The cursor is journaled after each file, so
// a crash mid-pass resumes where it stopped instead of re-reading the
// verified prefix. One pass runs at a time.
func (s *Site) ScrubPass(ctx context.Context) (scrub.Report, error) {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	start := time.Now()

	var rep scrub.Report
	cursor := s.scrubCur
	rep.Resumed = cursor != ""

	// The snapshot is taken once; files published mid-pass are covered by
	// the next pass. list() is LFN-sorted, so the cursor is a plain bound.
	for _, fi := range s.local.list() {
		if fi.LFN <= cursor {
			continue
		}
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		verdict, bytes := s.scrubOne(ctx, fi)
		rep.Scanned++
		rep.Bytes += bytes
		s.scrubMet.ScrubScanned.Inc()
		s.scrubMet.ScrubBytes.Add(bytes)
		switch verdict {
		case scrubCorrupt:
			rep.Corrupt++
			s.scrubMet.ScrubCorrupt.Inc()
			if s.parityParams().Enabled() {
				// On a parity site every quarantine+re-pull is a fallback:
				// the damage exceeded the parity budget or the sidecar was
				// unusable.
				rep.Fallbacks++
			}
			if s.queueRepair(fi.LFN) {
				rep.Repairs++
			}
		case scrubMissing:
			rep.Missing++
			s.scrubMet.ScrubMissing.Inc()
			if s.queueRepair(fi.LFN) {
				rep.Repairs++
			}
		case scrubAborted:
			return rep, ctx.Err()
		case scrubRepaired:
			rep.Rebuilt++
			fallthrough
		case scrubOK, scrubSkipped:
			// Healthy (or tape-resident) replica: re-assert its location.
			// addReplica is idempotent, so this is a no-op in the steady
			// state, but it converges back any location a peer's
			// anti-entropy round withdrew on a stale digest.
			if err := s.rc.addReplica(ctx, fi.LFN, s.pfnFor(fi.Path)); err != nil && !isNotFound(err) {
				s.logger.Printf("gdmp[%s]: scrub: re-assert location of %s: %v", s.cfg.Name, fi.LFN, err)
			}
		}
		s.setScrubCursor(fi.LFN)
	}
	s.setScrubCursor("")
	s.scrubMet.ScrubPasses.Inc()
	s.scrubMet.ScrubPassSeconds.Observe(time.Since(start).Seconds())
	s.sweepQuarantine()
	s.sweepOrphanSidecars()
	return rep, nil
}

// Fsck is the on-demand full integrity check behind the gdmp fsck
// subcommand: it abandons any journaled mid-pass cursor and scrubs the
// whole catalog from the start.
func (s *Site) Fsck(ctx context.Context) (scrub.Report, error) {
	s.scrubMu.Lock()
	s.setScrubCursor("")
	s.scrubMu.Unlock()
	rep, err := s.ScrubPass(ctx)
	rep.Resumed = false
	return rep, err
}

type scrubVerdict int

const (
	scrubOK scrubVerdict = iota
	scrubCorrupt
	scrubMissing
	scrubSkipped
	scrubAborted
	scrubRepaired
)

// scrubOne verifies a single catalog entry's bytes. Tape-state files have
// no disk bytes to check and are skipped. On a parity-enabled site the
// verification is block-granular: a usable sidecar's geometry drives a
// per-block digest, and corruption is first rebuilt in place from the
// surviving blocks plus parity (scrubRepaired). Only damage beyond the
// parity budget — or a replica without a usable sidecar — takes the old
// quarantine + WAN re-pull path.
func (s *Site) scrubOne(ctx context.Context, fi FileInfo) (scrubVerdict, int64) {
	if fi.State != StateDisk {
		return scrubSkipped, 0
	}
	localPath, err := s.resolveLocal(fi.Path)
	if err != nil {
		return scrubSkipped, 0
	}
	parityOn := s.parityParams().Enabled()
	var sc *parity.Sidecar
	var blockSize int64
	if parityOn {
		if sc = s.loadSidecar(fi, localPath); sc != nil {
			blockSize = sc.BlockSize
		}
	}
	crc, blocks, n, err := scrub.BlockCRC32File(ctx, localPath, blockSize, s.scrubLim)
	switch {
	case os.IsNotExist(err):
		s.logger.Printf("gdmp[%s]: scrub: %s has no bytes at %s, withdrawing",
			s.cfg.Name, fi.LFN, fi.Path)
		s.withdrawReplica(ctx, fi, false)
		return scrubMissing, 0
	case ctx.Err() != nil:
		return scrubAborted, n
	case err != nil:
		s.logger.Printf("gdmp[%s]: scrub: read %s: %v", s.cfg.Name, fi.LFN, err)
		return scrubSkipped, n
	}
	if fi.CRC32 == "" || fmt.Sprintf("%08x", crc) == fi.CRC32 {
		if parityOn && sc == nil {
			// Healthy bytes without a usable sidecar (pre-parity replica,
			// sidecar rot, or post-fallback re-pull): regenerate now, while
			// the content is known good.
			s.writeParitySidecar(fi)
		}
		return scrubOK, n
	}
	if sc != nil {
		damaged := sc.DamagedBlocks(blocks)
		s.logger.Printf("gdmp[%s]: scrub: %s is corrupt (crc %08x, catalog %s; %d damaged blocks), attempting local rebuild",
			s.cfg.Name, fi.LFN, crc, fi.CRC32, len(damaged))
		if rerr := s.parityRebuild(fi, localPath, sc); rerr == nil {
			return scrubRepaired, n
		} else if ctx.Err() != nil {
			return scrubAborted, n
		} else {
			s.logger.Printf("gdmp[%s]: scrub: local rebuild of %s failed: %v (falling back to re-pull)",
				s.cfg.Name, fi.LFN, rerr)
		}
	}
	if parityOn {
		s.scrubMet.ParityFallbacks.Inc()
	}
	s.logger.Printf("gdmp[%s]: scrub: %s is corrupt (crc %08x, catalog %s), quarantining",
		s.cfg.Name, fi.LFN, crc, fi.CRC32)
	s.withdrawReplica(ctx, fi, true)
	return scrubCorrupt, n
}

// withdrawReplica removes a bad local replica from the world: optionally
// quarantining its bytes, dropping the local catalog entry (journaled),
// and withdrawing this site's location from the replica catalog so no
// consumer is routed to it. Catalog errors are logged, not fatal — the
// next pass retries the withdrawal.
func (s *Site) withdrawReplica(ctx context.Context, fi FileInfo, quarantineBytes bool) {
	if quarantineBytes {
		if localPath, err := s.resolveLocal(fi.Path); err == nil {
			s.quarantine(localPath)
		}
	}
	// The sidecar never outlives its replica: whatever bytes survive are
	// parity for content the catalogs no longer promise.
	s.dropParitySidecar(fi)
	s.local.remove(fi.LFN)
	if err := s.persist.removeFile(fi.LFN); err != nil {
		s.logger.Printf("gdmp[%s]: journal withdraw %s: %v", s.cfg.Name, fi.LFN, err)
	}
	if err := s.rc.removeReplica(ctx, fi.LFN, s.pfnFor(fi.Path)); err != nil && !isNotFound(err) {
		s.logger.Printf("gdmp[%s]: withdraw %s from replica catalog: %v", s.cfg.Name, fi.LFN, err)
	}
}

// --- quarantine retention ---------------------------------------------------

// sweepQuarantine bounds <StateDir>/quarantine by age and count per the
// site config (zero = unlimited). Oldest entries go first when the count
// cap bites, so recent evidence survives.
func (s *Site) sweepQuarantine() {
	if s.cfg.StateDir == "" {
		return
	}
	qdir := s.quarantineDir()
	ents, err := os.ReadDir(qdir)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logger.Printf("gdmp[%s]: quarantine sweep: %v", s.cfg.Name, err)
		}
		s.scrubMet.QuarantineFiles.Set(0)
		return
	}
	type qfile struct {
		name string
		mod  time.Time
	}
	files := make([]qfile, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, qfile{e.Name(), info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })

	doomed := 0
	if maxAge := s.cfg.QuarantineMaxAge; maxAge > 0 {
		cutoff := time.Now().Add(-maxAge)
		for doomed < len(files) && files[doomed].mod.Before(cutoff) {
			doomed++
		}
	}
	if maxCount := s.cfg.QuarantineMaxCount; maxCount > 0 && len(files)-doomed > maxCount {
		doomed = len(files) - maxCount
	}
	for _, f := range files[:doomed] {
		if err := os.Remove(s.quarantinePath(f.name)); err != nil {
			s.logger.Printf("gdmp[%s]: quarantine sweep %s: %v", s.cfg.Name, f.name, err)
			continue
		}
		s.scrubMet.QuarantineSwept.Inc()
	}
	s.scrubMet.QuarantineFiles.Set(int64(len(files) - doomed))
}

// --- anti-entropy exchange ---------------------------------------------------

// addProducer durably records a producer this site subscribed to, making
// it an anti-entropy peer across restarts.
func (s *Site) addProducer(addr string) {
	s.prodMu.Lock()
	s.producers[addr] = true
	s.prodMu.Unlock()
	if err := s.persist.producerAdd(addr); err != nil {
		s.logger.Printf("gdmp[%s]: journal producer %s: %v", s.cfg.Name, addr, err)
	}
}

// removeProducer forgets a producer after unsubscription.
func (s *Site) removeProducer(addr string) {
	s.prodMu.Lock()
	delete(s.producers, addr)
	s.prodMu.Unlock()
	if err := s.persist.producerRemove(addr); err != nil {
		s.logger.Printf("gdmp[%s]: journal producer removal %s: %v", s.cfg.Name, addr, err)
	}
}

// Producers lists the ctl addresses of sites this site subscribes to.
func (s *Site) Producers() []string {
	s.prodMu.Lock()
	defer s.prodMu.Unlock()
	out := make([]string, 0, len(s.producers))
	for addr := range s.producers {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// localDigest snapshots the site's integrity digest.
func (s *Site) localDigest() []scrub.Entry {
	files := s.local.list()
	out := make([]scrub.Entry, 0, len(files))
	for _, fi := range files {
		out = append(out, scrub.Entry{LFN: fi.LFN, Size: fi.Size, CRC32: fi.CRC32})
	}
	return out
}

// digestFrom fetches a peer's digest over the gdmp.digest verb.
func (s *Site) digestFrom(ctx context.Context, addr string) (name, dataAddr string, entries []scrub.Entry, err error) {
	cl, err := s.dialGDMP(ctx, addr)
	if err != nil {
		return "", "", nil, err
	}
	defer cl.Close()
	d, err := cl.CallContext(ctx, MethodDigest, nil)
	if err != nil {
		return "", "", nil, err
	}
	name = d.String()
	dataAddr = d.String()
	n := d.Uint32()
	// n is wire-supplied: cap the preallocation so one malformed reply
	// cannot trigger a multi-GB allocation; append grows past the cap.
	entries = make([]scrub.Entry, 0, min(n, 4096))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		entries = append(entries, scrub.Entry{LFN: d.String(), Size: d.Int64(), CRC32: d.String()})
	}
	if err := d.Finish(); err != nil {
		return "", "", nil, err
	}
	return name, dataAddr, entries, nil
}

// peerHasFile asks a peer whether it holds lfn right now, the live
// point-query behind every anti-entropy withdrawal.
func (s *Site) peerHasFile(ctx context.Context, addr, lfn string) (bool, error) {
	cl, err := s.dialGDMP(ctx, addr)
	if err != nil {
		return false, err
	}
	defer cl.Close()
	var e rpc.Encoder
	e.String(lfn)
	d, err := cl.CallContext(ctx, MethodHasFile, &e)
	if err != nil {
		return false, err
	}
	has := d.Bool()
	return has, d.Finish()
}

// antiEntropyPeer describes one digest-exchange partner.
type antiEntropyPeer struct {
	addr     string
	producer bool // we subscribe to it, so its files are owed to us
}

// antiEntropyPeers is the union of producers (sites we subscribed to) and
// subscribers (sites subscribed to us). A site that is both is a producer
// for pull purposes.
func (s *Site) antiEntropyPeers() []antiEntropyPeer {
	seen := make(map[string]bool)
	var peers []antiEntropyPeer
	s.prodMu.Lock()
	for addr := range s.producers {
		if !seen[addr] {
			seen[addr] = true
			peers = append(peers, antiEntropyPeer{addr: addr, producer: true})
		}
	}
	s.prodMu.Unlock()
	s.subMu.Lock()
	for _, st := range s.subscribers {
		if !seen[st.addr] {
			seen[st.addr] = true
			peers = append(peers, antiEntropyPeer{addr: st.addr})
		}
	}
	s.subMu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].addr < peers[j].addr })
	return peers
}

// AntiEntropyPass exchanges digests with every producer and subscriber
// and converges on the differences:
//
//   - files a producer holds that we lack (lost notification, crash
//     window) are queued as repairs — the subscription contract owes us
//     those bytes;
//   - entries whose size/CRC disagree with a peer make us re-verify our
//     own bytes against our own cataloged CRC; if they fail, the replica
//     is quarantined, withdrawn, and queued for repair (the peer's side
//     heals on its own round);
//   - replica-catalog locations that point at a peer which no longer
//     holds the file — or at us for a file we lost — are withdrawn as
//     dangling.
//
// Peer failures are counted and skipped: one dead site must not stop the
// round.
func (s *Site) AntiEntropyPass(ctx context.Context) (scrub.ExchangeReport, error) {
	var rep scrub.ExchangeReport
	s.scrubMet.AERounds.Inc()
	for _, peer := range s.antiEntropyPeers() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rep.Peers++
		_, peerData, entries, err := s.digestFrom(ctx, peer.addr)
		if err != nil {
			rep.Failed++
			s.scrubMet.AEPeers.WithLabelValues("error").Inc()
			s.logger.Printf("gdmp[%s]: anti-entropy: digest from %s: %v", s.cfg.Name, peer.addr, err)
			continue
		}
		s.scrubMet.AEPeers.WithLabelValues("ok").Inc()
		diff := scrub.Compare(s.localDigest(), entries)

		if peer.producer {
			for _, e := range diff.Missing {
				rep.Missing++
				s.scrubMet.AEDiffs.WithLabelValues(scrub.DiffMissing).Inc()
				// Both digests in the diff are snapshots: a pull of this
				// LFN may have landed since ours was taken. Re-check the
				// live catalog immediately before acting, or a freshly
				// registered location gets withdrawn as dangling and the
				// replica turns invisible to the grid.
				lfn := e.LFN
				if s.HasFile(lfn) {
					continue
				}
				if s.dropDanglingLocation(ctx, lfn, s.DataAddr(), func() bool {
					return !s.HasFile(lfn)
				}) {
					rep.Dangling++
				}
				if s.queueRepair(lfn) {
					rep.Repairs++
				}
			}
		}
		for _, e := range diff.Stale {
			rep.Stale++
			s.scrubMet.AEDiffs.WithLabelValues(scrub.DiffStale).Inc()
			// Serialized with the background scrubber: both paths
			// quarantine and withdraw, and racing them on the same file
			// double-counts corrupt/missing metrics. The entry is re-read
			// under the lock so a replica the scrubber already withdrew
			// is not withdrawn twice.
			s.scrubMu.Lock()
			if fi, ok := s.local.get(e.LFN); ok {
				if verdict, _ := s.scrubOne(ctx, fi); verdict == scrubCorrupt || verdict == scrubMissing {
					if s.queueRepair(fi.LFN) {
						rep.Repairs++
					}
				}
			}
			s.scrubMu.Unlock()
		}
		// A location pointing at the peer for a file its digest lacks is
		// dangling: a consumer routed there would fail its pull. The
		// digest may predate a pull that has since landed there, so the
		// peer is point-queried right before the withdrawal and the
		// location left alone unless it confirms the file is absent — a
		// skipped withdrawal waits one round, a wrong one orphans a valid
		// replica.
		for _, e := range diff.Extra {
			lfn := e.LFN
			if s.dropDanglingLocation(ctx, lfn, peerData, func() bool {
				has, err := s.peerHasFile(ctx, peer.addr, lfn)
				if err != nil {
					s.logger.Printf("gdmp[%s]: anti-entropy: re-verify %s at %s: %v",
						s.cfg.Name, lfn, peer.addr, err)
					return false
				}
				return !has
			}) {
				rep.Dangling++
			}
		}
	}
	return rep, nil
}

// dropDanglingLocation withdraws the replica-catalog location of lfn at
// dataAddr when present, reporting whether a withdrawal happened. The
// confirm hook runs only once a matching location is found, immediately
// before its removal: it re-verifies the "dangling" verdict against live
// state (the digests that produced it are snapshots) and vetoes the
// withdrawal by returning false.
func (s *Site) dropDanglingLocation(ctx context.Context, lfn, dataAddr string, confirm func() bool) bool {
	locs, err := s.rc.locations(ctx, lfn)
	if err != nil {
		if !isNotFound(err) {
			s.logger.Printf("gdmp[%s]: anti-entropy: locations of %s: %v", s.cfg.Name, lfn, err)
		}
		return false
	}
	for _, p := range locs {
		if p.Addr != dataAddr {
			continue
		}
		if confirm != nil && !confirm() {
			return false
		}
		if err := s.rc.removeReplica(ctx, lfn, p); err != nil && !isNotFound(err) {
			s.logger.Printf("gdmp[%s]: anti-entropy: withdraw dangling %s at %s: %v",
				s.cfg.Name, lfn, dataAddr, err)
			return false
		}
		s.scrubMet.AEDiffs.WithLabelValues(scrub.DiffDangling).Inc()
		s.logger.Printf("gdmp[%s]: anti-entropy: withdrew dangling location of %s at %s",
			s.cfg.Name, lfn, dataAddr)
		return true
	}
	return false
}

// --- RPC handlers -----------------------------------------------------------

// registerScrubHandlers wires the digest and fsck verbs into the Request
// Manager (called from registerHandlers).
func (s *Site) registerScrubHandlers() {
	s.gdmpSrv.Handle(MethodDigest, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		entries := s.localDigest()
		resp.String(s.cfg.Name)
		resp.String(s.DataAddr())
		resp.Uint32(uint32(len(entries)))
		for _, e := range entries {
			resp.String(e.LFN)
			resp.Int64(e.Size)
			resp.String(e.CRC32)
		}
		return nil
	})
	s.gdmpSrv.Handle(MethodHasFile, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		resp.Bool(s.HasFile(lfn))
		return nil
	})
	s.gdmpSrv.Handle(MethodFsck, func(ctx context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		rep, err := s.Fsck(ctx)
		if err != nil {
			return err
		}
		resp.Uint64(uint64(rep.Scanned))
		resp.Int64(rep.Bytes)
		resp.Uint64(uint64(rep.Corrupt))
		resp.Uint64(uint64(rep.Missing))
		resp.Uint64(uint64(rep.Repairs))
		// Appended after the parity layer shipped; older clients stop
		// reading before these and still decode the reply.
		resp.Uint64(uint64(rep.Rebuilt))
		resp.Uint64(uint64(rep.Fallbacks))
		return nil
	})
}

// quarantineDir returns <StateDir>/quarantine.
func (s *Site) quarantineDir() string {
	return filepath.Join(s.cfg.StateDir, "quarantine")
}

func (s *Site) quarantinePath(name string) string {
	return filepath.Join(s.quarantineDir(), name)
}
