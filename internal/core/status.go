package core

import (
	"context"
	"sync"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/rpc"
)

// MethodStatus reports a site's transfer history and counters; registered
// alongside the other GDMP methods.
const MethodStatus = "gdmp.status"

// TransferRecord is one completed (or failed) replication, the site-level
// analogue of GridFTP's integrated instrumentation: the paper's production
// deployment lived and died by being able to see what moved where, how
// fast, and with how many restarts.
type TransferRecord struct {
	LFN      string
	Source   string // GridFTP endpoint the replica came from
	Bytes    int64
	Elapsed  time.Duration
	Attempts int
	RateMbps float64
	When     time.Time
	Failed   bool
	Error    string
}

// transferLog keeps a bounded history of replication activity.
type transferLog struct {
	mu      sync.Mutex
	records []TransferRecord
	limit   int

	ok     int
	failed int
	bytes  int64
}

func newTransferLog(limit int) *transferLog {
	if limit <= 0 {
		limit = 256
	}
	return &transferLog{limit: limit}
}

func (l *transferLog) add(r TransferRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Failed {
		l.failed++
	} else {
		l.ok++
		l.bytes += r.Bytes
	}
	l.records = append(l.records, r)
	if len(l.records) > l.limit {
		l.records = l.records[len(l.records)-l.limit:]
	}
}

func (l *transferLog) list() []TransferRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TransferRecord(nil), l.records...)
}

// SiteStatus summarizes a site's replication activity.
type SiteStatus struct {
	Name             string
	LocalFiles       int
	Subscribers      int
	TransfersOK      int
	TransfersFailed  int
	BytesReplicated  int64
	PendingTransfers int

	// Restart-recovery summary (all zero for a site without a StateDir or
	// one that started fresh).
	RestoredFiles    int
	RequeuedPulls    int
	QuarantinedFiles int
	RequeuedNotices  int

	// Journal is the durability health: "" for a site without a StateDir,
	// "ok" while the journal accepts appends, "failed" once an
	// append/fsync failure has latched it read-only — the site keeps
	// serving but mutations no longer survive a crash.
	Journal string
}

// TransferHistory returns the site's recent replication records.
func (s *Site) TransferHistory() []TransferRecord {
	return s.xferLog.list()
}

// Status returns the site's counters.
func (s *Site) Status() SiteStatus {
	s.xferLog.mu.Lock()
	ok, failed, bytes := s.xferLog.ok, s.xferLog.failed, s.xferLog.bytes
	s.xferLog.mu.Unlock()
	s.subMu.Lock()
	subs := len(s.subscribers)
	s.subMu.Unlock()
	s.pendMu.Lock()
	pending := len(s.pending)
	s.pendMu.Unlock()
	return SiteStatus{
		Name:             s.cfg.Name,
		LocalFiles:       s.local.len(),
		Subscribers:      subs,
		TransfersOK:      ok,
		TransfersFailed:  failed,
		BytesReplicated:  bytes,
		PendingTransfers: pending,
		RestoredFiles:    s.recovery.FilesRestored,
		RequeuedPulls:    s.recovery.PullsRequeued,
		QuarantinedFiles: s.recovery.Quarantined,
		RequeuedNotices:  s.recovery.NoticesRequeued,
		Journal:          s.journalHealth(),
	}
}

// journalHealth maps the journal's latch state to the status string.
func (s *Site) journalHealth() string {
	if s.persist == nil {
		return ""
	}
	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	if s.persist.j.Failed() != nil {
		return "failed"
	}
	return "ok"
}

// RemoteStatus fetches another site's status over the Request Manager.
func (s *Site) RemoteStatus(remoteAddr string) (SiteStatus, error) {
	cl, err := s.dialGDMP(s.ctx, remoteAddr)
	if err != nil {
		return SiteStatus{}, err
	}
	defer cl.Close()
	d, err := cl.CallContext(s.ctx, MethodStatus, nil)
	if err != nil {
		return SiteStatus{}, err
	}
	st := SiteStatus{
		Name:             d.String(),
		LocalFiles:       int(d.Uint64()),
		Subscribers:      int(d.Uint64()),
		TransfersOK:      int(d.Uint64()),
		TransfersFailed:  int(d.Uint64()),
		BytesReplicated:  d.Int64(),
		PendingTransfers: int(d.Uint64()),
		RestoredFiles:    int(d.Uint64()),
		RequeuedPulls:    int(d.Uint64()),
		QuarantinedFiles: int(d.Uint64()),
		RequeuedNotices:  int(d.Uint64()),
	}
	// Journal is a trailing addition to the payload: tolerate its absence
	// so status still decodes against a daemon from before the field
	// existed (mixed-version grids during rolling upgrades).
	if d.Remaining() > 0 {
		st.Journal = d.String()
	}
	return st, d.Finish()
}

// registerStatusHandler wires MethodStatus into the Request Manager.
func (s *Site) registerStatusHandler() {
	s.gdmpSrv.Handle(MethodStatus, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		st := s.Status()
		resp.String(st.Name)
		resp.Uint64(uint64(st.LocalFiles))
		resp.Uint64(uint64(st.Subscribers))
		resp.Uint64(uint64(st.TransfersOK))
		resp.Uint64(uint64(st.TransfersFailed))
		resp.Int64(st.BytesReplicated)
		resp.Uint64(uint64(st.PendingTransfers))
		resp.Uint64(uint64(st.RestoredFiles))
		resp.Uint64(uint64(st.RequeuedPulls))
		resp.Uint64(uint64(st.QuarantinedFiles))
		resp.Uint64(uint64(st.RequeuedNotices))
		resp.String(st.Journal)
		return nil
	})
}
