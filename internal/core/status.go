package core

import (
	"context"
	"sync"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/rpc"
)

// MethodStatus reports a site's transfer history and counters; registered
// alongside the other GDMP methods.
const MethodStatus = "gdmp.status"

// TransferRecord is one completed (or failed) replication, the site-level
// analogue of GridFTP's integrated instrumentation: the paper's production
// deployment lived and died by being able to see what moved where, how
// fast, and with how many restarts.
type TransferRecord struct {
	LFN      string
	Source   string // GridFTP endpoint the replica came from
	Bytes    int64
	Elapsed  time.Duration
	Attempts int
	RateMbps float64
	When     time.Time
	Failed   bool
	Error    string
}

// transferLog keeps a bounded history of replication activity.
type transferLog struct {
	mu      sync.Mutex
	records []TransferRecord
	limit   int

	ok     int
	failed int
	bytes  int64
}

func newTransferLog(limit int) *transferLog {
	if limit <= 0 {
		limit = 256
	}
	return &transferLog{limit: limit}
}

func (l *transferLog) add(r TransferRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Failed {
		l.failed++
	} else {
		l.ok++
		l.bytes += r.Bytes
	}
	l.records = append(l.records, r)
	if len(l.records) > l.limit {
		l.records = l.records[len(l.records)-l.limit:]
	}
}

func (l *transferLog) list() []TransferRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TransferRecord(nil), l.records...)
}

// SiteStatus summarizes a site's replication activity.
type SiteStatus struct {
	Name             string
	LocalFiles       int
	Subscribers      int
	TransfersOK      int
	TransfersFailed  int
	BytesReplicated  int64
	PendingTransfers int

	// Restart-recovery summary (all zero for a site without a StateDir or
	// one that started fresh).
	RestoredFiles    int
	RequeuedPulls    int
	QuarantinedFiles int
	RequeuedNotices  int

	// Journal is the durability health: "" for a site without a StateDir,
	// "ok" while the journal accepts appends, "failed" once an
	// append/fsync failure has latched it read-only — the site keeps
	// serving but mutations no longer survive a crash.
	Journal string

	// Disk-pool cache summary (all zero for a site without an MSS).
	// Hit rate is PoolHits / (PoolHits + PoolMisses).
	PoolUsed      int64
	PoolCapacity  int64
	PoolHits      int64
	PoolMisses    int64
	PoolEvictions int64

	// Erasure-coded local repair summary (all zero with parity disabled).
	// The two byte counters are the degraded-mode split: damage healed
	// from local parity versus damage that had to cross the WAN again.
	ParitySidecars      int64
	ParityRebuilds      int64
	ParityFallbacks     int64
	RepairBytesLocal    int64
	RepairBytesRepulled int64

	// RLS summary: the site's digest-push soft state and RLI fallback
	// activity (all zero from a daemon predating the RLS split).
	DigestGen          int64 // current digest generation of this site's LRC
	DigestPushes       int64 // pushes the RLI accepted
	DigestLFNs         int64 // LFNs condensed into the last pushed digest
	RLIQueries         int64 // which-queries issued to the RLI tier
	RLIFalsePositives  int64 // candidates denied by the LRC confirm step
	RLSLocateP99Micros int64 // p99 RLS locate latency, microseconds

	// HealthPeers is the per-peer scoreboard: breaker state and EWMA link
	// quality for every peer this site has pulled from or dialed (empty
	// from a daemon predating circuit breakers).
	HealthPeers []PeerHealthStatus

	// Overload-protection summary (all zero from a daemon predating
	// admission control). The load signal is reported in milli-units
	// (0-1000) so it crosses the wire as an integer.
	BrownoutActive    bool
	BrownoutLoadMilli int64
	AdmissionAdmitted int64
	AdmissionRejected int64 // every rejection, expiry, shed, and drain
	AdmissionExpired  int64
	AdmissionShed     int64
	BrownoutEntered   int64
	BrownoutDeferred  int64
}

// PeerHealthStatus is one scoreboard row in a site's status: a peer's
// circuit-breaker state and EWMA link quality as of the snapshot.
type PeerHealthStatus struct {
	Peer           string
	Breaker        string // "closed", "half_open", or "open"
	ConsecFails    int64
	BandwidthKbps  int64
	LatencyMicros  int64
	LastTransition time.Time // zero until the breaker first changes state
}

// TransferHistory returns the site's recent replication records.
func (s *Site) TransferHistory() []TransferRecord {
	return s.xferLog.list()
}

// Status returns the site's counters.
func (s *Site) Status() SiteStatus {
	s.xferLog.mu.Lock()
	ok, failed, bytes := s.xferLog.ok, s.xferLog.failed, s.xferLog.bytes
	s.xferLog.mu.Unlock()
	s.subMu.Lock()
	subs := len(s.subscribers)
	s.subMu.Unlock()
	s.pendMu.Lock()
	pending := len(s.pending)
	s.pendMu.Unlock()
	st := SiteStatus{
		Name:             s.cfg.Name,
		LocalFiles:       s.local.len(),
		Subscribers:      subs,
		TransfersOK:      ok,
		TransfersFailed:  failed,
		BytesReplicated:  bytes,
		PendingTransfers: pending,
		RestoredFiles:    s.recovery.FilesRestored,
		RequeuedPulls:    s.recovery.PullsRequeued,
		QuarantinedFiles: s.recovery.Quarantined,
		RequeuedNotices:  s.recovery.NoticesRequeued,
		Journal:          s.journalHealth(),
	}
	if s.storage != nil {
		ps := s.storage.Stats()
		st.PoolUsed = s.storage.Used()
		st.PoolCapacity = s.storage.Capacity()
		st.PoolHits = int64(ps.Hits)
		st.PoolMisses = int64(ps.Misses)
		st.PoolEvictions = int64(ps.Evictions)
	}
	if s.scrubMet != nil {
		st.ParitySidecars = s.scrubMet.ParitySidecars.Value()
		st.ParityRebuilds = s.scrubMet.ParityRebuilds.Value()
		st.ParityFallbacks = s.scrubMet.ParityFallbacks.Value()
		st.RepairBytesLocal = s.scrubMet.RepairBytesLocal.Value()
		st.RepairBytesRepulled = s.scrubMet.RepairBytesRepulled.Value()
	}
	if s.rlsMet != nil {
		st.DigestGen = int64(s.digestGen.Load())
		st.DigestPushes = s.rlsMet.pushesOK.Value()
		st.DigestLFNs = s.rlsMet.lfns.Value()
		st.RLIQueries = s.rlsMet.rliWhich.Value()
		st.RLIFalsePositives = s.rlsMet.falsePos.Value()
		st.RLSLocateP99Micros = s.LocateP99Micros()
	}
	if s.admit != nil {
		as := s.admit.Snap()
		st.BrownoutActive = as.BrownoutActive
		st.BrownoutLoadMilli = int64(as.Load * 1000)
		st.AdmissionAdmitted = as.Admitted
		st.AdmissionRejected = as.Rejected
		st.AdmissionExpired = as.Expired
		st.AdmissionShed = as.Shed
		st.BrownoutEntered = as.BrownoutEntered
		st.BrownoutDeferred = as.BrownoutDeferred
	}
	for _, ph := range s.health.Snapshot() {
		st.HealthPeers = append(st.HealthPeers, PeerHealthStatus{
			Peer:           ph.Peer,
			Breaker:        ph.State,
			ConsecFails:    ph.ConsecFails,
			BandwidthKbps:  ph.BandwidthKbps,
			LatencyMicros:  ph.LatencyMicros,
			LastTransition: ph.LastTransition,
		})
	}
	return st
}

// journalHealth maps the journal's latch state to the status string.
func (s *Site) journalHealth() string {
	if s.persist == nil {
		return ""
	}
	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	if s.persist.j.Failed() != nil {
		return "failed"
	}
	return "ok"
}

// RemoteStatus fetches another site's status over the Request Manager.
func (s *Site) RemoteStatus(remoteAddr string) (SiteStatus, error) {
	cl, err := s.dialGDMP(s.ctx, remoteAddr)
	if err != nil {
		return SiteStatus{}, err
	}
	defer cl.Close()
	d, err := cl.CallContext(s.ctx, MethodStatus, nil)
	if err != nil {
		return SiteStatus{}, err
	}
	st := decodeSiteStatus(d)
	return st, d.Finish()
}

// encodeSiteStatus writes the status payload. Field order is the wire
// contract: new fields only ever append, so older peers that stop reading
// early still decode the prefix they know.
func encodeSiteStatus(e *rpc.Encoder, st SiteStatus) {
	e.String(st.Name)
	e.Uint64(uint64(st.LocalFiles))
	e.Uint64(uint64(st.Subscribers))
	e.Uint64(uint64(st.TransfersOK))
	e.Uint64(uint64(st.TransfersFailed))
	e.Int64(st.BytesReplicated)
	e.Uint64(uint64(st.PendingTransfers))
	e.Uint64(uint64(st.RestoredFiles))
	e.Uint64(uint64(st.RequeuedPulls))
	e.Uint64(uint64(st.QuarantinedFiles))
	e.Uint64(uint64(st.RequeuedNotices))
	e.String(st.Journal)
	e.Int64(st.PoolUsed)
	e.Int64(st.PoolCapacity)
	e.Int64(st.PoolHits)
	e.Int64(st.PoolMisses)
	e.Int64(st.PoolEvictions)
	e.Int64(st.ParitySidecars)
	e.Int64(st.ParityRebuilds)
	e.Int64(st.ParityFallbacks)
	e.Int64(st.RepairBytesLocal)
	e.Int64(st.RepairBytesRepulled)
	e.Int64(st.DigestGen)
	e.Int64(st.DigestPushes)
	e.Int64(st.DigestLFNs)
	e.Int64(st.RLIQueries)
	e.Int64(st.RLIFalsePositives)
	e.Int64(st.RLSLocateP99Micros)
	e.Uint64(uint64(len(st.HealthPeers)))
	for _, p := range st.HealthPeers {
		e.String(p.Peer)
		e.String(p.Breaker)
		e.Int64(p.ConsecFails)
		e.Int64(p.BandwidthKbps)
		e.Int64(p.LatencyMicros)
		// The zero time crosses the wire as 0, not its (negative)
		// UnixNano, so it round-trips to a zero value.
		if p.LastTransition.IsZero() {
			e.Int64(0)
		} else {
			e.Int64(p.LastTransition.UnixNano())
		}
	}
	if st.BrownoutActive {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
	e.Int64(st.BrownoutLoadMilli)
	e.Int64(st.AdmissionAdmitted)
	e.Int64(st.AdmissionRejected)
	e.Int64(st.AdmissionExpired)
	e.Int64(st.AdmissionShed)
	e.Int64(st.BrownoutEntered)
	e.Int64(st.BrownoutDeferred)
}

// decodeSiteStatus reads the status payload, tolerating truncation at
// each trailing-field generation: the Journal field and the pool-cache
// block were both appended after the original payload shipped, so a
// status from an older daemon decodes to zero values for what it never
// sent (mixed-version grids during rolling upgrades).
func decodeSiteStatus(d *rpc.Decoder) SiteStatus {
	st := SiteStatus{
		Name:             d.String(),
		LocalFiles:       int(d.Uint64()),
		Subscribers:      int(d.Uint64()),
		TransfersOK:      int(d.Uint64()),
		TransfersFailed:  int(d.Uint64()),
		BytesReplicated:  d.Int64(),
		PendingTransfers: int(d.Uint64()),
		RestoredFiles:    int(d.Uint64()),
		RequeuedPulls:    int(d.Uint64()),
		QuarantinedFiles: int(d.Uint64()),
		RequeuedNotices:  int(d.Uint64()),
	}
	if d.Remaining() > 0 {
		st.Journal = d.String()
	}
	if d.Remaining() > 0 {
		st.PoolUsed = d.Int64()
		st.PoolCapacity = d.Int64()
		st.PoolHits = d.Int64()
		st.PoolMisses = d.Int64()
		st.PoolEvictions = d.Int64()
	}
	if d.Remaining() > 0 {
		st.ParitySidecars = d.Int64()
		st.ParityRebuilds = d.Int64()
		st.ParityFallbacks = d.Int64()
		st.RepairBytesLocal = d.Int64()
		st.RepairBytesRepulled = d.Int64()
	}
	if d.Remaining() > 0 {
		st.DigestGen = d.Int64()
		st.DigestPushes = d.Int64()
		st.DigestLFNs = d.Int64()
		st.RLIQueries = d.Int64()
		st.RLIFalsePositives = d.Int64()
		st.RLSLocateP99Micros = d.Int64()
	}
	if d.Remaining() > 0 {
		n := int(d.Uint64())
		for i := 0; i < n && d.Remaining() > 0; i++ {
			p := PeerHealthStatus{
				Peer:          d.String(),
				Breaker:       d.String(),
				ConsecFails:   d.Int64(),
				BandwidthKbps: d.Int64(),
				LatencyMicros: d.Int64(),
			}
			if ns := d.Int64(); ns != 0 {
				p.LastTransition = time.Unix(0, ns)
			}
			st.HealthPeers = append(st.HealthPeers, p)
		}
	}
	if d.Remaining() > 0 {
		st.BrownoutActive = d.Uint8() != 0
		st.BrownoutLoadMilli = d.Int64()
		st.AdmissionAdmitted = d.Int64()
		st.AdmissionRejected = d.Int64()
		st.AdmissionExpired = d.Int64()
		st.AdmissionShed = d.Int64()
		st.BrownoutEntered = d.Int64()
		st.BrownoutDeferred = d.Int64()
	}
	return st
}

// registerStatusHandler wires MethodStatus into the Request Manager.
func (s *Site) registerStatusHandler() {
	s.gdmpSrv.Handle(MethodStatus, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		encodeSiteStatus(resp, s.Status())
		return nil
	})
}
