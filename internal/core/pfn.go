// Package core implements GDMP, the Grid Data Management Pilot of
// Section 4: the file replication system whose producer-consumer model,
// catalogs, data mover, and storage management the paper describes. A Site
// bundles the paper's architecture of Figure 4 — Request Manager, Security
// layer, Replica Catalog service, Data Mover service, and Storage Manager
// service — behind the four client services of Section 4.1:
//
//   - subscribing to a remote site to be informed when new files appear;
//   - publishing new files, making them visible to the Grid;
//   - obtaining a remote site's file catalog for failure recovery;
//   - transferring files from a remote location to the local site.
//
// Replication of a file runs the four-step pipeline of Section 4.1:
// pre-processing (file-type specific), the actual transfer (GridFTP with
// restart and CRC), post-processing (e.g. attaching an Objectivity database
// to the local federation), and insertion into the replica catalog, which
// makes the replica visible to the Grid.
package core

import (
	"fmt"
	"strings"
)

// PFN is a physical file name: where one replica physically lives and how
// to reach it. The string form stored in the replica catalog is
// "gridftp://host:port/path".
type PFN struct {
	// Addr is the GridFTP endpoint ("host:port").
	Addr string

	// Path is the server-relative file path.
	Path string
}

const pfnScheme = "gridftp://"

// String renders the catalog form.
func (p PFN) String() string {
	return pfnScheme + p.Addr + "/" + strings.TrimPrefix(p.Path, "/")
}

// ParsePFN parses "gridftp://host:port/path".
func ParsePFN(s string) (PFN, error) {
	if !strings.HasPrefix(s, pfnScheme) {
		return PFN{}, fmt.Errorf("core: PFN %q does not start with %s", s, pfnScheme)
	}
	rest := s[len(pfnScheme):]
	addr, path, ok := strings.Cut(rest, "/")
	if !ok || addr == "" || path == "" {
		return PFN{}, fmt.Errorf("core: malformed PFN %q", s)
	}
	if !strings.Contains(addr, ":") {
		return PFN{}, fmt.Errorf("core: PFN %q lacks a port", s)
	}
	return PFN{Addr: addr, Path: path}, nil
}
