package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gsi"
	"gdmp/internal/objectstore"
	"gdmp/internal/testbed"
)

func TestMain(m *testing.M) {
	gsi.KeyBits = 1024
	m.Run()
}

// newGrid builds a grid with cleanup registered.
func newGrid(t *testing.T) *testbed.Grid {
	t.Helper()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func addSite(t *testing.T, g *testbed.Grid, name string, opts testbed.SiteOptions) *core.Site {
	t.Helper()
	s, err := g.AddSite(name, opts)
	if err != nil {
		t.Fatalf("AddSite(%s): %v", name, err)
	}
	return s
}

func publish(t *testing.T, g *testbed.Grid, site *core.Site, rel string, data []byte, opts core.PublishOptions) core.PublishedFile {
	t.Helper()
	if _, err := g.WriteSiteFile(site.Name(), rel, data); err != nil {
		t.Fatal(err)
	}
	pf, err := site.Publish(rel, opts)
	if err != nil {
		t.Fatalf("Publish(%s): %v", rel, err)
	}
	return pf
}

func TestPublishRegistersEverything(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	data := testbed.MakeData(50_000, 1)
	pf := publish(t, g, cern, "runs/run42.db", data, core.PublishOptions{Collection: "run-2001"})

	if pf.LFN != "lfn://cern.ch/runs/run42.db" {
		t.Fatalf("LFN = %q", pf.LFN)
	}
	if pf.Size != 50_000 {
		t.Fatalf("Size = %d", pf.Size)
	}
	// Central catalog has the entry, attrs, replica, and collection.
	entry, err := g.Catalog.Lookup(pf.LFN)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Attrs["size"] != "50000" || entry.Attrs["filetype"] != "flat" || entry.Attrs["site"] != "cern.ch" {
		t.Fatalf("attrs = %v", entry.Attrs)
	}
	locs, err := g.Catalog.Locations(pf.LFN)
	if err != nil || len(locs) != 1 {
		t.Fatalf("Locations = %v, %v", locs, err)
	}
	members, err := g.Catalog.ListCollection("run-2001")
	if err != nil || len(members) != 1 {
		t.Fatalf("collection members = %v, %v", members, err)
	}
	// Local catalog sees it on disk.
	if !cern.HasFile(pf.LFN) {
		t.Fatal("publisher's local catalog missing the file")
	}
}

func TestPublishEnforcesGlobalNamespace(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	data := testbed.MakeData(100, 2)
	publish(t, g, cern, "a.db", data, core.PublishOptions{LFN: "lfn://x/dup"})
	if _, err := g.WriteSiteFile("cern.ch", "b.db", data); err != nil {
		t.Fatal(err)
	}
	_, err := cern.Publish("b.db", core.PublishOptions{LFN: "lfn://x/dup"})
	if err == nil || !strings.Contains(err.Error(), "already taken") {
		t.Fatalf("duplicate LFN: %v", err)
	}
}

func TestPublishValidation(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	if _, err := cern.Publish("missing.db", core.PublishOptions{}); err == nil {
		t.Error("publishing a missing file accepted")
	}
	if _, err := g.WriteSiteFile("cern.ch", "f.db", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := cern.Publish("f.db", core.PublishOptions{FileType: "no-such-type"}); !errors.Is(err, core.ErrUnknownFileType) {
		t.Errorf("unknown file type: %v", err)
	}
	if _, err := cern.Publish("", core.PublishOptions{}); err == nil {
		t.Error("empty path accepted")
	}
}

func TestPullReplication(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{Parallelism: 3})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{Parallelism: 3})
	data := testbed.MakeData(800_000, 3)
	pf := publish(t, g, cern, "runs/big.db", data, core.PublishOptions{})

	if err := anl.Get(pf.LFN); err != nil {
		t.Fatalf("Get: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(anl.DataDir(), "runs", "big.db"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("replicated content mismatch")
	}
	// The new replica is visible to the Grid.
	locs, err := g.Catalog.Locations(pf.LFN)
	if err != nil || len(locs) != 2 {
		t.Fatalf("Locations after replication = %v, %v", locs, err)
	}
	// Idempotent: a second Get is a no-op.
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatalf("second Get: %v", err)
	}
	// Unknown LFN fails.
	if err := anl.Get("lfn://nowhere/ghost"); err == nil {
		t.Fatal("Get of unknown LFN accepted")
	}
}

func TestSubscribeNotifyProcessPending(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})

	if err := anl.SubscribeTo(cern.Addr()); err != nil {
		t.Fatalf("SubscribeTo: %v", err)
	}
	subs := cern.Subscribers()
	if len(subs) != 1 || subs[0] != "anl.gov" {
		t.Fatalf("Subscribers = %v", subs)
	}

	data := testbed.MakeData(200_000, 4)
	pf := publish(t, g, cern, "new.db", data, core.PublishOptions{})

	// The consumer was notified (AutoReplicate off -> pending).
	waitFor(t, func() bool { return len(anl.Pending()) == 1 }, "notification to arrive")
	if anl.HasFile(pf.LFN) {
		t.Fatal("file replicated before ProcessPending")
	}
	n, err := anl.ProcessPending()
	if err != nil {
		t.Fatalf("ProcessPending: %v", err)
	}
	if n != 1 || !anl.HasFile(pf.LFN) {
		t.Fatalf("ProcessPending fetched %d", n)
	}
	// Unsubscribe stops notifications.
	if err := anl.UnsubscribeFrom(cern.Addr()); err != nil {
		t.Fatal(err)
	}
	publish(t, g, cern, "after-unsub.db", testbed.MakeData(100, 5), core.PublishOptions{})
	time.Sleep(50 * time.Millisecond)
	if len(anl.Pending()) != 0 {
		t.Fatalf("pending after unsubscribe = %v", anl.Pending())
	}
}

func TestAutoReplicate(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{AutoReplicate: true})
	if err := anl.SubscribeTo(cern.Addr()); err != nil {
		t.Fatal(err)
	}
	data := testbed.MakeData(300_000, 6)
	pf := publish(t, g, cern, "auto.db", data, core.PublishOptions{})
	if err := anl.WaitForFile(pf.LFN, 5*time.Second); err != nil {
		t.Fatalf("auto replication: %v", err)
	}
	got, _ := os.ReadFile(filepath.Join(anl.DataDir(), "auto.db"))
	if !bytes.Equal(got, data) {
		t.Fatal("auto-replicated content mismatch")
	}
}

func TestFanOutToMultipleSubscribers(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	consumers := make([]*core.Site, 3)
	for i := range consumers {
		consumers[i] = addSite(t, g, fmt.Sprintf("site%d.edu", i), testbed.SiteOptions{AutoReplicate: true})
		if err := consumers[i].SubscribeTo(cern.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	pf := publish(t, g, cern, "fanout.db", testbed.MakeData(150_000, 7), core.PublishOptions{})
	for _, c := range consumers {
		if err := c.WaitForFile(pf.LFN, 5*time.Second); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
	// Local visibility (WaitForFile) now precedes the replica-catalog
	// registration in replicate(), so give the last addReplica a moment.
	var locs []string
	for deadline := time.Now().Add(5 * time.Second); ; {
		locs, _ = g.Catalog.Locations(pf.LFN)
		if len(locs) == 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(locs) != 4 {
		t.Fatalf("Locations = %v", locs)
	}
}

func TestFailureRecoveryViaRemoteCatalog(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	// Files published while the consumer site did not exist.
	var lfns []string
	for i := 0; i < 3; i++ {
		pf := publish(t, g, cern, fmt.Sprintf("batch/f%d.db", i), testbed.MakeData(10_000+i, int64(10+i)), core.PublishOptions{})
		lfns = append(lfns, pf.LFN)
	}
	late := addSite(t, g, "late.org", testbed.SiteOptions{})
	catalog, err := late.RemoteCatalog(cern.Addr())
	if err != nil {
		t.Fatalf("RemoteCatalog: %v", err)
	}
	if len(catalog) != 3 {
		t.Fatalf("remote catalog = %v", catalog)
	}
	n, err := late.Recover(cern.Addr())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != 3 {
		t.Fatalf("Recover fetched %d", n)
	}
	for _, lfn := range lfns {
		if !late.HasFile(lfn) {
			t.Fatalf("%s missing after recovery", lfn)
		}
	}
	// Recover is idempotent.
	if n, err := late.Recover(cern.Addr()); err != nil || n != 0 {
		t.Fatalf("second Recover = %d, %v", n, err)
	}
}

func TestPing(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	name, err := anl.Ping(cern.Addr())
	if err != nil || name != "cern.ch" {
		t.Fatalf("Ping = %q, %v", name, err)
	}
}

func TestObjectivityReplicationAttachesFederation(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{WithFederation: true})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{WithFederation: true})

	// Build a database file at the producer and attach it locally.
	dbPath := filepath.Join(cern.DataDir(), "events1.odb")
	w, err := objectstore.Create(dbPath, 101)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 10; i++ {
		if err := w.Add(&objectstore.Object{
			OID: objectstore.OID{Slot: i}, Type: "raw", Event: uint64(i),
			Data: testbed.MakeData(500, int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cern.Federation().Attach(dbPath); err != nil {
		t.Fatal(err)
	}

	pf, err := cern.Publish("events1.odb", core.PublishOptions{FileType: "objectivity"})
	if err != nil {
		t.Fatalf("Publish(objectivity): %v", err)
	}
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatalf("Get(objectivity): %v", err)
	}
	// Post-processing attached the database to the consumer's federation.
	if !anl.Federation().Attached(101) {
		t.Fatal("database not attached at destination")
	}
	obj, err := anl.Federation().Lookup(objectstore.OID{DB: 101, Slot: 3})
	if err != nil {
		t.Fatalf("Lookup through destination federation: %v", err)
	}
	if obj.Event != 3 {
		t.Fatalf("object = %+v", obj)
	}
}

func TestObjectivityRequiresFederation(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{WithFederation: true})
	plain := addSite(t, g, "plain.org", testbed.SiteOptions{})

	dbPath := filepath.Join(cern.DataDir(), "ev.odb")
	w, _ := objectstore.Create(dbPath, 7)
	w.Add(&objectstore.Object{OID: objectstore.OID{Slot: 1}, Type: "raw", Data: []byte("x")})
	w.Close()
	cern.Federation().Attach(dbPath)
	pf, err := cern.Publish("ev.odb", core.PublishOptions{FileType: "objectivity"})
	if err != nil {
		t.Fatal(err)
	}
	// A site without a federation cannot even pre-process the type.
	if err := plain.Get(pf.LFN); err == nil {
		t.Fatal("objectivity replication without federation accepted")
	}
}

func TestMSSStagingOnDemand(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{WithMSS: true, MountLatency: 10 * time.Millisecond})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})

	data := testbed.MakeData(120_000, 20)
	pf := publish(t, g, cern, "cold.db", data, core.PublishOptions{})

	// Archive to tape and drop the disk copy: the file is now tape-only,
	// but the catalog still records its disk location.
	if err := cern.ArchiveLocal(pf.LFN); err != nil {
		t.Fatalf("ArchiveLocal: %v", err)
	}
	poolPath := filepath.Join(cern.DataDir(), "cold.db")
	if err := os.Remove(poolPath); err != nil {
		t.Fatal(err)
	}

	// The consumer's Get triggers a stage request at the source before the
	// disk-to-disk transfer.
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatalf("Get with staging: %v", err)
	}
	got, _ := os.ReadFile(filepath.Join(anl.DataDir(), "cold.db"))
	if !bytes.Equal(got, data) {
		t.Fatal("staged content mismatch")
	}
	// The source's pool copy is back (stage side effect).
	if _, err := os.Stat(poolPath); err != nil {
		t.Fatal("source pool copy not restored by staging")
	}
}

func TestReplicaSelectorFallsBackFromDeadReplica(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	// The selector probes candidates; the dead one loses.
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{
		Select: core.LowestLatencySelector(nil),
	})
	data := testbed.MakeData(60_000, 21)
	pf := publish(t, g, cern, "pick.db", data, core.PublishOptions{})

	// Register a bogus replica that sorts before the real one.
	if err := g.Catalog.AddReplica(pf.LFN, "gridftp://127.0.0.1:1/pick.db"); err != nil {
		t.Fatal(err)
	}
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatalf("Get with latency selector: %v", err)
	}
}

func TestConcurrentGetsCoalesce(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})
	pf := publish(t, g, cern, "hot.db", testbed.MakeData(500_000, 22), core.PublishOptions{})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := anl.Get(pf.LFN); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Only one extra replica was registered despite 8 concurrent Gets.
	locs, _ := g.Catalog.Locations(pf.LFN)
	if len(locs) != 2 {
		t.Fatalf("Locations = %v", locs)
	}
}

func TestCustomFileTypeHooksRun(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	anl := addSite(t, g, "anl.gov", testbed.SiteOptions{})

	hooks := &recordingType{}
	if err := anl.RegisterFileType(hooks); err != nil {
		t.Fatal(err)
	}
	if err := cern.RegisterFileType(&recordingType{}); err != nil {
		t.Fatal(err)
	}
	if err := cern.RegisterFileType(&recordingType{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	data := testbed.MakeData(10_000, 23)
	pf := publish(t, g, cern, "oracle1.dbf", data, core.PublishOptions{FileType: "oracle"})
	if err := anl.Get(pf.LFN); err != nil {
		t.Fatalf("Get(custom type): %v", err)
	}
	if hooks.pre != 1 || hooks.post != 1 {
		t.Fatalf("hooks ran pre=%d post=%d", hooks.pre, hooks.post)
	}
}

// recordingType counts pipeline hook invocations (an "oracle"-style plug-in).
type recordingType struct {
	mu        sync.Mutex
	pre, post int
}

func (r *recordingType) Name() string { return "oracle" }

func (r *recordingType) PreProcess(*core.Site, string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pre++
	return nil
}

func (r *recordingType) PostProcess(*core.Site, string, string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.post++
	return nil
}

func TestQueryThroughSite(t *testing.T) {
	g := newGrid(t)
	cern := addSite(t, g, "cern.ch", testbed.SiteOptions{})
	publish(t, g, cern, "big.db", testbed.MakeData(500_000, 24), core.PublishOptions{})
	publish(t, g, cern, "small.db", testbed.MakeData(100, 25), core.PublishOptions{})
	got, err := cern.Query("(size>=100000)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0].Name, "big.db") {
		t.Fatalf("Query = %v", got)
	}
}

func TestSiteConfigValidation(t *testing.T) {
	bad := []core.Config{
		{},
		{Name: "x"},
		{Name: "x", DataDir: "y"},
	}
	for i, cfg := range bad {
		if _, err := core.NewSite(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
