package core

import (
	"errors"
	"net"
	"testing"
	"time"
)

// slowDialer simulates per-address connect latency without real sockets.
type slowDialer struct {
	delays map[string]time.Duration // addr -> latency; missing = unreachable
}

func (d *slowDialer) dial(network, addr string) (net.Conn, error) {
	delay, ok := d.delays[addr]
	if !ok {
		return nil, errors.New("unreachable")
	}
	time.Sleep(delay)
	c, s := net.Pipe()
	go func() { s.Close() }()
	return c, nil
}

func TestLowestLatencySelectorPicksFastest(t *testing.T) {
	d := &slowDialer{delays: map[string]time.Duration{
		"slow.example:2811": 60 * time.Millisecond,
		"fast.example:2811": 2 * time.Millisecond,
		"mid.example:2811":  25 * time.Millisecond,
	}}
	sel := LowestLatencySelector(d.dial)
	candidates := []PFN{
		{Addr: "slow.example:2811", Path: "f"},
		{Addr: "fast.example:2811", Path: "f"},
		{Addr: "mid.example:2811", Path: "f"},
	}
	got := sel("lfn://x", candidates)
	if got.Addr != "fast.example:2811" {
		t.Fatalf("selected %s", got.Addr)
	}
}

func TestLowestLatencySelectorSkipsDead(t *testing.T) {
	d := &slowDialer{delays: map[string]time.Duration{
		"alive.example:2811": 10 * time.Millisecond,
	}}
	sel := LowestLatencySelector(d.dial)
	candidates := []PFN{
		{Addr: "dead.example:2811", Path: "f"},
		{Addr: "alive.example:2811", Path: "f"},
	}
	got := sel("lfn://x", candidates)
	if got.Addr != "alive.example:2811" {
		t.Fatalf("selected %s", got.Addr)
	}
}

func TestLowestLatencySelectorAllDeadFallsBack(t *testing.T) {
	d := &slowDialer{delays: map[string]time.Duration{}}
	sel := LowestLatencySelector(d.dial)
	candidates := []PFN{
		{Addr: "a.example:1", Path: "f"},
		{Addr: "b.example:1", Path: "f"},
	}
	got := sel("lfn://x", candidates)
	if got != candidates[0] {
		t.Fatalf("fallback = %+v", got)
	}
}

func TestLowestLatencySelectorSingleCandidate(t *testing.T) {
	probed := false
	dial := func(network, addr string) (net.Conn, error) {
		probed = true
		return nil, errors.New("should not be called")
	}
	sel := LowestLatencySelector(dial)
	only := []PFN{{Addr: "solo.example:1", Path: "f"}}
	if got := sel("lfn://x", only); got != only[0] {
		t.Fatalf("got %+v", got)
	}
	if probed {
		t.Fatal("single candidate should not be probed")
	}
}
