package core

import (
	"fmt"
	"os"
	"strconv"
)

// PublishAll publishes a set of locally produced files and notifies every
// subscriber once, with the whole batch in a single message — the paper's
// "each data production site publishes a set of newly created files to a
// set of one or more consumer sites". All files share the same options
// (collection and file type); per-file LFNs are derived from their paths.
//
// Registration is per file; a failure aborts the batch after the files
// already registered (their notifications are included so consumers stay
// consistent).
func (s *Site) PublishAll(relPaths []string, opts PublishOptions) ([]PublishedFile, error) {
	if opts.LFN != "" {
		return nil, fmt.Errorf("core: PublishAll derives LFNs from paths; the LFN option is not allowed")
	}
	published := make([]PublishedFile, 0, len(relPaths))
	infos := make([]FileInfo, 0, len(relPaths))
	var firstErr error
	for _, rel := range relPaths {
		pf, err := s.publishNoNotify(rel, opts)
		if err != nil {
			firstErr = fmt.Errorf("core: publish %s: %w", rel, err)
			break
		}
		published = append(published, pf)
		if fi, ok := s.local.get(pf.LFN); ok {
			infos = append(infos, fi)
		}
	}
	if len(infos) > 0 {
		if err := s.notifySubscribers(infos); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return published, firstErr
}

// publishNoNotify runs the registration half of Publish without notifying
// subscribers; PublishAll sends one batched notification afterwards.
func (s *Site) publishNoNotify(relPath string, opts PublishOptions) (PublishedFile, error) {
	opts.LFN = ""
	return s.publishCore(s.ctx, relPath, opts, false)
}

// RebuildLocalCatalog reconstructs the site's local file catalog from the
// central replica catalog after a restart: every logical file the catalog
// attributes to this site and whose bytes are present (on disk, or behind
// the MSS) is re-adopted. It returns how many entries were restored.
//
// Together with RemoteCatalog/Recover this completes GDMP's failure
// recovery story: a crashed site loses no published state, because the
// replica catalog is the durable record.
func (s *Site) RebuildLocalCatalog() (int, error) {
	entries, err := s.rc.query(s.ctx, "("+attrSite+"="+s.cfg.Name+")")
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, entry := range entries {
		if s.HasFile(entry.Name) {
			continue
		}
		rel := entry.Attrs[attrPath]
		if rel == "" {
			continue
		}
		localPath, err := s.resolveLocal(rel)
		if err != nil {
			continue
		}
		state := StateDisk
		if _, err := os.Stat(localPath); err != nil {
			// Not on disk: only adoptable when the MSS holds it on tape.
			if s.storage == nil {
				continue
			}
			if _, err := s.storage.TapeSize(rel); err != nil {
				continue
			}
			state = StateTape
		}
		size, _ := strconv.ParseInt(entry.Attrs["size"], 10, 64)
		fi := FileInfo{
			LFN:      entry.Name,
			Path:     rel,
			Size:     size,
			CRC32:    entry.Attrs["crc32"],
			FileType: entry.Attrs["filetype"],
			State:    state,
		}
		s.local.put(fi)
		if err := s.persist.putFile(fi); err != nil {
			return restored, err
		}
		restored++
	}
	return restored, nil
}
