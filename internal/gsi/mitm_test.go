package gsi

import (
	"net"
	"sync"
	"testing"
	"time"
)

// tamperConn flips one byte in the nth message that passes through,
// simulating an active attacker on the wire.
type tamperConn struct {
	net.Conn
	mu      sync.Mutex
	msgSeen int
	target  int // which read to corrupt (0-based)
}

func (c *tamperConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 4 { // payload reads only; 4-byte length headers pass through
		c.mu.Lock()
		if c.msgSeen == c.target {
			p[n-1] ^= 0xFF // corrupt the tail of the payload
		}
		c.msgSeen++
		c.mu.Unlock()
	}
	return n, err
}

// TestHandshakeDetectsTampering runs the handshake through an attacker that
// corrupts successive protocol messages; every position must be detected by
// one side or the other.
func TestHandshakeDetectsTampering(t *testing.T) {
	roots := []*Certificate{testCA(t).Certificate()}
	client := issue(t, "mitm-client")
	server := issue(t, "mitm-server")

	// The client sends three payload-bearing messages (chain, nonce,
	// proof); corrupt each in turn.
	for target := 0; target < 3; target++ {
		c, s := net.Pipe()
		tampered := &tamperConn{Conn: s, target: target}
		done := make(chan error, 1)
		go func() {
			_, err := Handshake(tampered, server, roots, false)
			done <- err
			s.Close()
		}()
		_, cerr := Handshake(c, client, roots, true)
		c.Close()
		var serr error
		select {
		case serr = <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("target %d: handshake deadlocked", target)
		}
		if cerr == nil && serr == nil {
			t.Fatalf("tampering with message %d went undetected", target)
		}
	}
}

// TestHandshakeCleanControl verifies the same pipe setup succeeds without
// the attacker, so the failures above are attributable to tampering.
func TestHandshakeCleanControl(t *testing.T) {
	roots := []*Certificate{testCA(t).Certificate()}
	client := issue(t, "clean-client")
	server := issue(t, "clean-server")
	c, s := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Handshake(s, server, roots, false)
		done <- err
		s.Close()
	}()
	if _, err := Handshake(c, client, roots, true); err != nil {
		t.Fatalf("clean handshake failed: %v", err)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("clean handshake server side: %v", err)
	}
}
