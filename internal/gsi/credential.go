package gsi

import (
	"bytes"
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Credential is a private key together with its certificate and the chain
// of issuing certificates up to (and including) the trust root.
type Credential struct {
	Cert *Certificate
	Key  *rsa.PrivateKey

	// Chain lists the issuing certificates, leaf's issuer first, ending at
	// the root. For a CA-issued identity this is just [root]; for a proxy
	// it is [identity, root].
	Chain []*Certificate
}

// Identity returns the credential's subject.
func (c *Credential) Identity() Identity { return c.Cert.Subject }

// FullChain returns the presented chain: leaf first, root last.
func (c *Credential) FullChain() []*Certificate {
	out := make([]*Certificate, 0, len(c.Chain)+1)
	out = append(out, c.Cert)
	out = append(out, c.Chain...)
	return out
}

// Delegate creates a short-lived proxy credential, the GSI single sign-on
// mechanism: a fresh key pair whose certificate is signed by this
// credential's own key, with the subject extended by "/proxy". Services
// presented with the proxy can verify it back to the CA without ever seeing
// the user's long-lived key.
func (c *Credential) Delegate(validity time.Duration) (*Credential, error) {
	if c.Cert.IsCA {
		return nil, errors.New("gsi: refusing to delegate from a CA credential")
	}
	key, err := rsa.GenerateKey(rand.Reader, KeyBits)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate proxy key: %w", err)
	}
	now := time.Now()
	notAfter := now.Add(validity)
	if notAfter.After(c.Cert.NotAfter) {
		notAfter = c.Cert.NotAfter // a proxy may not outlive its signer
	}
	cert := &Certificate{
		Serial:    c.Cert.Serial,
		Subject:   Identity{Organization: c.Cert.Subject.Organization, CommonName: c.Cert.Subject.CommonName + "/proxy"},
		Issuer:    c.Cert.Subject,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  notAfter,
		IsProxy:   true,
		PublicKey: &key.PublicKey,
	}
	if err := cert.sign(c.Key); err != nil {
		return nil, err
	}
	return &Credential{
		Cert:  cert,
		Key:   key,
		Chain: c.FullChain(),
	}, nil
}

// SignData signs arbitrary bytes with the credential's key (SHA-256 +
// RSASSA-PKCS1v15). Used by the handshake and by catalog update records.
func (c *Credential) SignData(data []byte) ([]byte, error) {
	h := sha256.Sum256(data)
	sig, err := rsa.SignPKCS1v15(rand.Reader, c.Key, crypto.SHA256, h[:])
	if err != nil {
		return nil, fmt.Errorf("gsi: sign data: %w", err)
	}
	return sig, nil
}

// VerifyData verifies a SignData signature against a certificate.
func VerifyData(cert *Certificate, data, sig []byte) error {
	h := sha256.Sum256(data)
	if err := rsa.VerifyPKCS1v15(cert.PublicKey, crypto.SHA256, h[:], sig); err != nil {
		return ErrBadSignature
	}
	return nil
}

// --- wire encoding -------------------------------------------------------

// certWriter/certReader implement the deterministic binary encoding used to
// ship certificates across the network. Lengths are 32-bit big-endian; the
// layout mirrors marshalTBS with the signature appended.

type certWriter struct{ buf bytes.Buffer }

func (w *certWriter) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *certWriter) bytes(v []byte) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(v)))
	w.buf.Write(b[:])
	w.buf.Write(v)
}

func (w *certWriter) str(v string) { w.bytes([]byte(v)) }

func (w *certWriter) bool(v bool) {
	if v {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

type certReader struct {
	b   []byte
	err error
}

func (r *certReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[:8])
	r.b = r.b[8:]
	return v
}

func (r *certReader) bytes() []byte {
	if r.err != nil || len(r.b) < 4 {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	n := binary.BigEndian.Uint32(r.b[:4])
	r.b = r.b[4:]
	if uint32(len(r.b)) < n {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *certReader) str() string { return string(r.bytes()) }

func (r *certReader) bool() bool {
	if r.err != nil || len(r.b) < 1 {
		r.err = io.ErrUnexpectedEOF
		return false
	}
	v := r.b[0] != 0
	r.b = r.b[1:]
	return v
}

// MarshalCertificate encodes a certificate for the wire.
func MarshalCertificate(c *Certificate) ([]byte, error) {
	pub, err := x509.MarshalPKIXPublicKey(c.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("gsi: marshal public key: %w", err)
	}
	var w certWriter
	w.u64(c.Serial)
	w.str(c.Subject.Organization)
	w.str(c.Subject.CommonName)
	w.str(c.Issuer.Organization)
	w.str(c.Issuer.CommonName)
	w.u64(uint64(c.NotBefore.Unix()))
	w.u64(uint64(c.NotAfter.Unix()))
	w.bool(c.IsCA)
	w.bool(c.IsProxy)
	w.bytes(pub)
	w.bytes(c.Signature)
	return w.buf.Bytes(), nil
}

// UnmarshalCertificate decodes a certificate from the wire.
func UnmarshalCertificate(b []byte) (*Certificate, error) {
	r := certReader{b: b}
	c := &Certificate{}
	c.Serial = r.u64()
	c.Subject.Organization = r.str()
	c.Subject.CommonName = r.str()
	c.Issuer.Organization = r.str()
	c.Issuer.CommonName = r.str()
	c.NotBefore = time.Unix(int64(r.u64()), 0)
	c.NotAfter = time.Unix(int64(r.u64()), 0)
	c.IsCA = r.bool()
	c.IsProxy = r.bool()
	pubDER := append([]byte(nil), r.bytes()...)
	c.Signature = append([]byte(nil), r.bytes()...)
	if r.err != nil {
		return nil, fmt.Errorf("gsi: truncated certificate: %w", r.err)
	}
	if len(r.b) != 0 {
		return nil, errors.New("gsi: trailing bytes after certificate")
	}
	pub, err := x509.ParsePKIXPublicKey(pubDER)
	if err != nil {
		return nil, fmt.Errorf("gsi: parse public key: %w", err)
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("gsi: certificate key is not RSA")
	}
	c.PublicKey = rsaPub
	return c, nil
}

// MarshalChain encodes a chain of certificates, leaf first.
func MarshalChain(chain []*Certificate) ([]byte, error) {
	var w certWriter
	w.u64(uint64(len(chain)))
	for _, c := range chain {
		enc, err := MarshalCertificate(c)
		if err != nil {
			return nil, err
		}
		w.bytes(enc)
	}
	return w.buf.Bytes(), nil
}

// UnmarshalChain decodes a chain of certificates, leaf first.
func UnmarshalChain(b []byte) ([]*Certificate, error) {
	r := certReader{b: b}
	n := r.u64()
	if r.err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if n > maxChainLen {
		return nil, ErrChainTooLong
	}
	chain := make([]*Certificate, 0, n)
	for i := uint64(0); i < n; i++ {
		enc := r.bytes()
		if r.err != nil {
			return nil, io.ErrUnexpectedEOF
		}
		c, err := UnmarshalCertificate(enc)
		if err != nil {
			return nil, err
		}
		chain = append(chain, c)
	}
	if len(r.b) != 0 {
		return nil, errors.New("gsi: trailing bytes after chain")
	}
	return chain, nil
}
