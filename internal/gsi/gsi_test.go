package gsi

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMain(m *testing.M) {
	// Smaller keys keep the suite fast; the protocol logic is unchanged.
	KeyBits = 1024
	m.Run()
}

var (
	testCAOnce sync.Once
	testCAInst *CA
)

// testCA returns a shared CA so tests do not each pay for key generation.
func testCA(t *testing.T) *CA {
	t.Helper()
	testCAOnce.Do(func() {
		ca, err := NewCA("DataGrid", 24*time.Hour)
		if err != nil {
			panic(err)
		}
		testCAInst = ca
	})
	return testCAInst
}

func issue(t *testing.T, name string) *Credential {
	t.Helper()
	cred, err := testCA(t).Issue(name, time.Hour)
	if err != nil {
		t.Fatalf("Issue(%q): %v", name, err)
	}
	return cred
}

func TestIdentityString(t *testing.T) {
	id := Identity{Organization: "DataGrid", CommonName: "Heinz"}
	if got, want := id.String(), "/O=DataGrid/CN=Heinz"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestParseIdentity(t *testing.T) {
	cases := []struct {
		in   string
		want Identity
		ok   bool
	}{
		{"/O=DataGrid/CN=Heinz", Identity{"DataGrid", "Heinz"}, true},
		{"/O=DataGrid/CN=gdmp/cern.ch", Identity{"DataGrid", "gdmp/cern.ch"}, true},
		{"/O=DataGrid/CN=Heinz/proxy", Identity{"DataGrid", "Heinz/proxy"}, true},
		{"/CN=OnlyName", Identity{"", "OnlyName"}, true},
		{"no-leading-slash", Identity{}, false},
		{"/X=unknown", Identity{}, false},
		{"/O=NoCN", Identity{"NoCN", ""}, true},
		{"", Identity{}, false},
		{"/O=", Identity{}, false},
	}
	for _, tc := range cases {
		got, err := ParseIdentity(tc.in)
		if tc.ok && err != nil {
			t.Errorf("ParseIdentity(%q): unexpected error %v", tc.in, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("ParseIdentity(%q): expected error, got %+v", tc.in, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("ParseIdentity(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseIdentityRoundTripProperty(t *testing.T) {
	f := func(org, cn string) bool {
		// Restrict to DN-safe strings: no '=' and no "/X=" boundary fakes.
		clean := func(s string) string {
			s = strings.ReplaceAll(s, "=", "")
			s = strings.ReplaceAll(s, "/", "")
			if s == "" {
				s = "x"
			}
			return s
		}
		id := Identity{Organization: clean(org), CommonName: clean(cn)}
		parsed, err := ParseIdentity(id.String())
		return err == nil && parsed == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityBaseAndProxy(t *testing.T) {
	base := Identity{"DataGrid", "Heinz"}
	p1 := Identity{"DataGrid", "Heinz/proxy"}
	p2 := Identity{"DataGrid", "Heinz/proxy/proxy"}
	if p1.Base() != base || p2.Base() != base || base.Base() != base {
		t.Fatalf("Base() did not strip proxy suffixes")
	}
	if !p1.IsProxyFor(base) || !p2.IsProxyFor(base) || !p2.IsProxyFor(p1) {
		t.Fatalf("IsProxyFor should accept proxy chains")
	}
	if base.IsProxyFor(base) {
		t.Fatalf("an identity is not its own proxy")
	}
	other := Identity{"DataGrid", "Heinzel"}
	if other.IsProxyFor(base) {
		t.Fatalf("unrelated identity accepted as proxy")
	}
	foreign := Identity{"OtherOrg", "Heinz/proxy"}
	if foreign.IsProxyFor(base) {
		t.Fatalf("proxy from a different organization accepted")
	}
}

func TestIssueAndVerifyChain(t *testing.T) {
	ca := testCA(t)
	cred := issue(t, "alice")
	id, err := VerifyChain(cred.FullChain(), []*Certificate{ca.Certificate()}, time.Now())
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if id.CommonName != "alice" || id.Organization != "DataGrid" {
		t.Fatalf("verified identity = %v", id)
	}
}

func TestVerifyChainRejectsExpired(t *testing.T) {
	ca := testCA(t)
	cred := issue(t, "expired-user")
	_, err := VerifyChain(cred.FullChain(), []*Certificate{ca.Certificate()}, time.Now().Add(48*time.Hour))
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("expected ErrExpired, got %v", err)
	}
}

func TestVerifyChainRejectsUntrustedRoot(t *testing.T) {
	otherCA, err := NewCA("EvilGrid", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := otherCA.Issue("mallory", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	_, err = VerifyChain(cred.FullChain(), []*Certificate{testCA(t).Certificate()}, time.Now())
	if !errors.Is(err, ErrUntrusted) {
		t.Fatalf("expected ErrUntrusted, got %v", err)
	}
}

func TestVerifyChainRejectsTamperedCert(t *testing.T) {
	ca := testCA(t)
	cred := issue(t, "bob")
	chain := cred.FullChain()
	forged := *chain[0]
	forged.Subject.CommonName = "admin" // privilege escalation attempt
	_, err := VerifyChain([]*Certificate{&forged, chain[1]}, []*Certificate{ca.Certificate()}, time.Now())
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("expected ErrBadSignature, got %v", err)
	}
}

func TestVerifyChainRejectsEmptyAndLong(t *testing.T) {
	ca := testCA(t)
	if _, err := VerifyChain(nil, []*Certificate{ca.Certificate()}, time.Now()); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("expected ErrEmptyChain, got %v", err)
	}
	long := make([]*Certificate, maxChainLen+1)
	for i := range long {
		long[i] = ca.Certificate()
	}
	if _, err := VerifyChain(long, []*Certificate{ca.Certificate()}, time.Now()); !errors.Is(err, ErrChainTooLong) {
		t.Fatalf("expected ErrChainTooLong, got %v", err)
	}
}

func TestDelegateProxy(t *testing.T) {
	ca := testCA(t)
	user := issue(t, "carol")
	proxy, err := user.Delegate(10 * time.Minute)
	if err != nil {
		t.Fatalf("Delegate: %v", err)
	}
	if !proxy.Cert.IsProxy {
		t.Fatalf("proxy certificate not marked as proxy")
	}
	id, err := VerifyChain(proxy.FullChain(), []*Certificate{ca.Certificate()}, time.Now())
	if err != nil {
		t.Fatalf("VerifyChain(proxy): %v", err)
	}
	if id.Base().CommonName != "carol" {
		t.Fatalf("proxy base identity = %v", id.Base())
	}

	// Second-level delegation also verifies.
	proxy2, err := proxy.Delegate(5 * time.Minute)
	if err != nil {
		t.Fatalf("Delegate(level 2): %v", err)
	}
	if _, err := VerifyChain(proxy2.FullChain(), []*Certificate{ca.Certificate()}, time.Now()); err != nil {
		t.Fatalf("VerifyChain(proxy level 2): %v", err)
	}
}

func TestProxyCannotOutliveSigner(t *testing.T) {
	user := issue(t, "dave")
	proxy, err := user.Delegate(1000 * time.Hour) // longer than user cert
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Cert.NotAfter.After(user.Cert.NotAfter) {
		t.Fatalf("proxy NotAfter %v exceeds signer NotAfter %v", proxy.Cert.NotAfter, user.Cert.NotAfter)
	}
}

func TestProxyNamingRuleEnforced(t *testing.T) {
	ca := testCA(t)
	user := issue(t, "erin")
	proxy, err := user.Delegate(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Re-sign a proxy whose subject does not extend the issuer.
	forged := *proxy.Cert
	forged.Subject.CommonName = "root/proxy"
	if err := (&forged).sign(user.Key); err != nil {
		t.Fatal(err)
	}
	chain := append([]*Certificate{&forged}, user.FullChain()...)
	if _, err := VerifyChain(chain, []*Certificate{ca.Certificate()}, time.Now()); !errors.Is(err, ErrBadProxyName) {
		t.Fatalf("expected ErrBadProxyName, got %v", err)
	}
}

func TestNonCALeafCannotIssue(t *testing.T) {
	ca := testCA(t)
	user := issue(t, "frank")
	// frank signs a *non-proxy* certificate for another name.
	impostor := issue(t, "temp")
	forged := *impostor.Cert
	forged.Subject.CommonName = "gdmp/fake-site"
	forged.Issuer = user.Cert.Subject
	forged.IsProxy = false
	if err := (&forged).sign(user.Key); err != nil {
		t.Fatal(err)
	}
	chain := append([]*Certificate{&forged}, user.FullChain()...)
	if _, err := VerifyChain(chain, []*Certificate{ca.Certificate()}, time.Now()); !errors.Is(err, ErrNotCA) {
		t.Fatalf("expected ErrNotCA, got %v", err)
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	cred := issue(t, "grace")
	enc, err := MarshalCertificate(cred.Cert)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := UnmarshalCertificate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Subject != cred.Cert.Subject || dec.Issuer != cred.Cert.Issuer ||
		dec.Serial != cred.Cert.Serial || dec.IsCA != cred.Cert.IsCA ||
		dec.IsProxy != cred.Cert.IsProxy {
		t.Fatalf("round trip mismatch: %+v vs %+v", dec, cred.Cert)
	}
	if dec.PublicKey.N.Cmp(cred.Cert.PublicKey.N) != 0 {
		t.Fatalf("public key mismatch after round trip")
	}
	// A decoded certificate still verifies.
	if err := dec.checkSignature(testCA(t).Certificate().PublicKey); err != nil {
		t.Fatalf("decoded certificate signature invalid: %v", err)
	}
}

func TestCertificateUnmarshalErrors(t *testing.T) {
	cred := issue(t, "henry")
	enc, err := MarshalCertificate(cred.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalCertificate(enc[:len(enc)/2]); err == nil {
		t.Error("truncated certificate accepted")
	}
	if _, err := UnmarshalCertificate(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := UnmarshalCertificate(nil); err == nil {
		t.Error("empty certificate accepted")
	}
}

func TestChainMarshalRoundTrip(t *testing.T) {
	cred := issue(t, "iris")
	proxy, err := cred.Delegate(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := MarshalChain(proxy.FullChain())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := UnmarshalChain(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("chain length = %d, want 3", len(dec))
	}
	if _, err := VerifyChain(dec, []*Certificate{testCA(t).Certificate()}, time.Now()); err != nil {
		t.Fatalf("decoded chain does not verify: %v", err)
	}
}

func TestSignVerifyData(t *testing.T) {
	cred := issue(t, "judy")
	msg := []byte("publish lfn=run42.db size=1048576")
	sig, err := cred.SignData(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyData(cred.Cert, msg, sig); err != nil {
		t.Fatalf("VerifyData: %v", err)
	}
	msg[0] ^= 0xFF
	if err := VerifyData(cred.Cert, msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered data accepted: %v", err)
	}
}

func runHandshake(t *testing.T, client, server *Credential, clientRoots, serverRoots []*Certificate) (cp, sp *Peer, cerr, serr error) {
	t.Helper()
	c, s := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		sp, serr = Handshake(s, server, serverRoots, false)
		if serr != nil {
			// Hanging up unblocks a client that is still mid-protocol,
			// exactly as a dropped TCP connection would.
			s.Close()
		}
	}()
	cp, cerr = Handshake(c, client, clientRoots, true)
	c.Close()
	<-done
	s.Close()
	return
}

func TestHandshakeMutualAuth(t *testing.T) {
	ca := testCA(t)
	roots := []*Certificate{ca.Certificate()}
	client := issue(t, "site1-client")
	server := issue(t, "gdmp/site2")
	cp, sp, cerr, serr := runHandshake(t, client, server, roots, roots)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake failed: client=%v server=%v", cerr, serr)
	}
	if cp.Identity.CommonName != "gdmp/site2" {
		t.Fatalf("client saw server as %v", cp.Identity)
	}
	if sp.Identity.CommonName != "site1-client" {
		t.Fatalf("server saw client as %v", sp.Identity)
	}
}

func TestHandshakeWithProxyCredential(t *testing.T) {
	ca := testCA(t)
	roots := []*Certificate{ca.Certificate()}
	user := issue(t, "kate")
	proxy, err := user.Delegate(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	server := issue(t, "gdmp/site3")
	_, sp, cerr, serr := runHandshake(t, proxy, server, roots, roots)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake failed: client=%v server=%v", cerr, serr)
	}
	if sp.Base.CommonName != "kate" {
		t.Fatalf("server resolved proxy base to %v", sp.Base)
	}
	if sp.Identity.CommonName != "kate/proxy" {
		t.Fatalf("server saw proxy identity %v", sp.Identity)
	}
}

func TestHandshakeRejectsForeignCA(t *testing.T) {
	evil, err := NewCA("EvilGrid", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := evil.Issue("mallory", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ca := testCA(t)
	roots := []*Certificate{ca.Certificate()}
	server := issue(t, "gdmp/site4")
	_, _, cerr, serr := runHandshake(t, mallory, server, []*Certificate{evil.Certificate()}, roots)
	if serr == nil {
		t.Fatalf("server accepted a foreign-CA client")
	}
	// The client may or may not detect a failure depending on ordering;
	// the server error is the security property. cerr is allowed to be a
	// connection error since the server hangs up.
	_ = cerr
}

func TestACL(t *testing.T) {
	acl := NewACL()
	alice := Identity{"DataGrid", "alice"}
	bob := Identity{"DataGrid", "bob"}
	acl.Allow(alice, "publish", "subscribe")
	if !acl.Authorized(alice, "publish") || !acl.Authorized(alice, "subscribe") {
		t.Fatalf("alice should be authorized")
	}
	if acl.Authorized(alice, "delete") {
		t.Fatalf("alice should not be authorized for delete")
	}
	if acl.Authorized(bob, "publish") {
		t.Fatalf("bob should not be authorized")
	}
	// Proxy identities resolve to base.
	proxy := Identity{"DataGrid", "alice/proxy"}
	if !acl.Authorized(proxy, "publish") {
		t.Fatalf("alice's proxy should inherit authorization")
	}
	// Wildcard operation.
	acl.Allow(bob, AnyOperation)
	if !acl.Authorized(bob, "anything-at-all") {
		t.Fatalf("wildcard operation should authorize bob")
	}
	// AllowAll subject wildcard.
	acl2 := NewACL()
	acl2.AllowAll("get")
	if !acl2.Authorized(alice, "get") || acl2.Authorized(alice, "put") {
		t.Fatalf("AllowAll misbehaved")
	}
	// Revocation.
	acl.Revoke(alice, "publish")
	if acl.Authorized(alice, "publish") {
		t.Fatalf("revoked permission still active")
	}
	if err := acl.Check(alice, "publish"); err == nil {
		t.Fatalf("Check should return an error after revocation")
	}
	if err := acl.Check(alice, "subscribe"); err != nil {
		t.Fatalf("Check(subscribe): %v", err)
	}
}

func TestACLEntries(t *testing.T) {
	acl := NewACL()
	acl.Allow(Identity{"DataGrid", "zed"}, "get")
	acl.Allow(Identity{"DataGrid", "amy"}, "publish", "get")
	lines := acl.Entries()
	if len(lines) != 2 {
		t.Fatalf("Entries = %v", lines)
	}
	if !strings.Contains(lines[0], "amy") || !strings.Contains(lines[0], "get,publish") {
		t.Fatalf("Entries not sorted/formatted: %v", lines)
	}
}

func TestCARefusesEmptyNames(t *testing.T) {
	if _, err := NewCA("", time.Hour); err == nil {
		t.Error("NewCA accepted empty organization")
	}
	if _, err := testCA(t).Issue("", time.Hour); err == nil {
		t.Error("Issue accepted empty common name")
	}
}

func TestDelegateFromCARefused(t *testing.T) {
	ca := testCA(t)
	caCred := &Credential{Cert: ca.Certificate(), Key: ca.key}
	if _, err := caCred.Delegate(time.Minute); err == nil {
		t.Fatal("CA credential delegation should be refused")
	}
}
