package gsi

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Operation names an action a client may request from a Grid service. The
// GDMP services define their own operation vocabulary (publish, subscribe,
// get-catalog, transfer, ...); the ACL treats them as opaque strings.
type Operation string

// Wildcards accepted in ACL rules.
const (
	AnyOperation Operation = "*"
	anySubject             = "*"
)

// ACL is a grid-mapfile-style authorization table: it maps distinguished
// names to the set of operations they may perform. Proxy identities are
// normalized to their base identity before lookup, matching GSI semantics.
// ACL is safe for concurrent use.
type ACL struct {
	mu    sync.RWMutex
	rules map[string]map[Operation]bool
}

// NewACL returns an empty ACL; an empty ACL denies everything.
func NewACL() *ACL {
	return &ACL{rules: make(map[string]map[Operation]bool)}
}

// Allow grants an identity permission for the given operations.
// AnyOperation grants everything. Passing the literal subject "*" (via
// AllowAll) grants the operations to every authenticated identity.
func (a *ACL) Allow(id Identity, ops ...Operation) {
	a.allowSubject(id.Base().String(), ops...)
}

// AllowAll grants the operations to every authenticated identity.
func (a *ACL) AllowAll(ops ...Operation) {
	a.allowSubject(anySubject, ops...)
}

func (a *ACL) allowSubject(subject string, ops ...Operation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.rules[subject]
	if set == nil {
		set = make(map[Operation]bool)
		a.rules[subject] = set
	}
	for _, op := range ops {
		set[op] = true
	}
}

// Revoke removes an identity's permission for the given operations.
func (a *ACL) Revoke(id Identity, ops ...Operation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.rules[id.Base().String()]
	for _, op := range ops {
		delete(set, op)
	}
}

// Authorized reports whether the identity may perform the operation. Proxy
// identities are resolved to their base identity first.
func (a *ACL) Authorized(id Identity, op Operation) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, subject := range []string{id.Base().String(), anySubject} {
		if set, ok := a.rules[subject]; ok {
			if set[op] || set[AnyOperation] {
				return true
			}
		}
	}
	return false
}

// Check returns a descriptive error when the identity is not authorized.
func (a *ACL) Check(id Identity, op Operation) error {
	if !a.Authorized(id, op) {
		return fmt.Errorf("gsi: %s is not authorized for %q", id.Base(), op)
	}
	return nil
}

// ParseGridmap reads grid-mapfile-style lines (the format Entries emits):
// a quoted distinguished name (or "*") followed by a comma-separated list
// of operations. Blank lines and #-comments are skipped.
func ParseGridmap(r io.Reader) (*ACL, error) {
	acl := NewACL()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `"`) {
			return nil, fmt.Errorf("gsi: gridmap line %d: subject must be quoted", lineNo)
		}
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("gsi: gridmap line %d: unterminated subject", lineNo)
		}
		subject := line[1 : 1+end]
		rest := strings.TrimSpace(line[2+end:])
		if rest == "" {
			return nil, fmt.Errorf("gsi: gridmap line %d: no operations", lineNo)
		}
		var ops []Operation
		for _, op := range strings.Split(rest, ",") {
			op = strings.TrimSpace(op)
			if op != "" {
				ops = append(ops, Operation(op))
			}
		}
		if subject == anySubject {
			acl.AllowAll(ops...)
			continue
		}
		id, err := ParseIdentity(subject)
		if err != nil {
			return nil, fmt.Errorf("gsi: gridmap line %d: %w", lineNo, err)
		}
		acl.Allow(id, ops...)
	}
	return acl, sc.Err()
}

// Entries renders the ACL as sorted grid-mapfile-style lines, one per
// subject: `"/O=Org/CN=name" op1,op2`.
func (a *ACL) Entries() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	lines := make([]string, 0, len(a.rules))
	for subject, set := range a.rules {
		if len(set) == 0 {
			continue
		}
		ops := make([]string, 0, len(set))
		for op := range set {
			ops = append(ops, string(op))
		}
		sort.Strings(ops)
		lines = append(lines, fmt.Sprintf("%q %s", subject, strings.Join(ops, ",")))
	}
	sort.Strings(lines)
	return lines
}
