// Package gsi is a from-scratch stand-in for the Grid Security
// Infrastructure (GSI) the paper relies on [FKT98]: public-key credentials
// issued by a certificate authority, proxy credentials for single sign-on,
// mutual authentication of every client/server interaction, and simple
// authorization maps. Section 4.1 of the paper: "Every client request to a
// GDMP server is authenticated and authorized by a security service."
//
// The package uses only the Go standard library (crypto/rsa, crypto/sha256)
// and defines its own compact certificate encoding; it is deliberately not
// X.509, but it preserves the GSI control flow: CA-rooted trust, delegation
// via proxy certificates whose subject extends the issuer's subject, and a
// challenge-response handshake binding both parties to the session.
package gsi

import (
	"fmt"
	"strings"
)

// Identity is a distinguished name in the Grid trust domain, printed in the
// familiar "/O=Org/CN=Name" form used by Globus tools.
type Identity struct {
	// Organization is the trust domain, e.g. "DataGrid".
	Organization string

	// CommonName identifies the entity, e.g. "gdmp/cern.ch" for a service
	// or "Heinz" for a user. Proxy credentials append "/proxy" segments.
	CommonName string
}

// String renders the identity as a Globus-style distinguished name.
func (id Identity) String() string {
	return "/O=" + id.Organization + "/CN=" + id.CommonName
}

// IsZero reports whether the identity is empty.
func (id Identity) IsZero() bool {
	return id.Organization == "" && id.CommonName == ""
}

// Base strips any "/proxy" suffixes, returning the identity of the original
// long-lived credential that performed the delegation. Authorization is
// always decided against the base identity, exactly as GSI maps proxy
// certificates back to the end entity.
func (id Identity) Base() Identity {
	cn := id.CommonName
	for strings.HasSuffix(cn, "/proxy") {
		cn = strings.TrimSuffix(cn, "/proxy")
	}
	return Identity{Organization: id.Organization, CommonName: cn}
}

// IsProxyFor reports whether id is a (possibly multi-level) proxy of base.
func (id Identity) IsProxyFor(base Identity) bool {
	if id.Organization != base.Organization {
		return false
	}
	if id.CommonName == base.CommonName {
		return false
	}
	return strings.HasPrefix(id.CommonName, base.CommonName) &&
		strings.HasSuffix(id.CommonName, "/proxy") &&
		id.Base().CommonName == base.Base().CommonName
}

// ParseIdentity parses a "/O=Org/CN=Name" distinguished name.
func ParseIdentity(s string) (Identity, error) {
	var id Identity
	rest := s
	for rest != "" {
		if !strings.HasPrefix(rest, "/") {
			return Identity{}, fmt.Errorf("gsi: malformed DN %q", s)
		}
		rest = rest[1:]
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return Identity{}, fmt.Errorf("gsi: malformed DN component in %q", s)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		// The value runs until the next "/X=" component boundary. CN values
		// may themselves contain '/' (e.g. "gdmp/cern.ch", proxy suffixes),
		// so only a slash followed by "KEY=" terminates the value.
		end := len(rest)
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				if j := strings.IndexByte(rest[i+1:], '='); j >= 0 && !strings.Contains(rest[i+1:i+1+j], "/") {
					end = i
					break
				}
			}
		}
		val := rest[:end]
		rest = rest[end:]
		switch key {
		case "O":
			id.Organization = val
		case "CN":
			id.CommonName = val
		default:
			return Identity{}, fmt.Errorf("gsi: unsupported DN attribute %q in %q", key, s)
		}
	}
	if id.IsZero() {
		return Identity{}, fmt.Errorf("gsi: empty DN %q", s)
	}
	return id, nil
}
