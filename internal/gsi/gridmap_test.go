package gsi

import (
	"strings"
	"testing"
)

func TestParseGridmap(t *testing.T) {
	in := `
# GDMP site authorization
"/O=DataGrid/CN=alice" gdmp.publish,gdmp.subscribe
"/O=DataGrid/CN=gdmp/cern.ch" *
"*" gdmp.ping

`
	acl, err := ParseGridmap(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseGridmap: %v", err)
	}
	alice := Identity{"DataGrid", "alice"}
	service := Identity{"DataGrid", "gdmp/cern.ch"}
	stranger := Identity{"DataGrid", "nobody"}

	if !acl.Authorized(alice, "gdmp.publish") || !acl.Authorized(alice, "gdmp.subscribe") {
		t.Error("alice's grants missing")
	}
	if acl.Authorized(alice, "gdmp.stage") {
		t.Error("alice over-granted")
	}
	if !acl.Authorized(service, "anything") {
		t.Error("service wildcard operation missing")
	}
	if !acl.Authorized(stranger, "gdmp.ping") {
		t.Error("subject wildcard missing")
	}
	if acl.Authorized(stranger, "gdmp.publish") {
		t.Error("stranger over-granted")
	}
	// Proxy identities inherit through the gridmap.
	if !acl.Authorized(Identity{"DataGrid", "alice/proxy"}, "gdmp.publish") {
		t.Error("proxy identity not resolved")
	}
}

func TestParseGridmapErrors(t *testing.T) {
	bad := []string{
		`/O=DataGrid/CN=x op`,  // unquoted subject
		`"/O=DataGrid/CN=x`,    // unterminated quote
		`"/O=DataGrid/CN=x"`,   // no operations
		`"not-a-dn" op`,        // unparseable DN
		`"/X=unknown/CN=y" op`, // bad attribute
	}
	for _, line := range bad {
		if _, err := ParseGridmap(strings.NewReader(line)); err == nil {
			t.Errorf("gridmap line %q accepted", line)
		}
	}
}

func TestGridmapEntriesRoundTrip(t *testing.T) {
	acl := NewACL()
	acl.Allow(Identity{"DataGrid", "heinz"}, "rc.register", "rc.query")
	acl.Allow(Identity{"DataGrid", "gdmp/anl.gov"}, AnyOperation)
	acl.AllowAll("gdmp.ping")

	text := strings.Join(acl.Entries(), "\n")
	parsed, err := ParseGridmap(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	for _, check := range []struct {
		id Identity
		op Operation
	}{
		{Identity{"DataGrid", "heinz"}, "rc.register"},
		{Identity{"DataGrid", "heinz"}, "rc.query"},
		{Identity{"DataGrid", "gdmp/anl.gov"}, "whatever"},
		{Identity{"DataGrid", "anyone"}, "gdmp.ping"},
	} {
		if !parsed.Authorized(check.id, check.op) {
			t.Errorf("round trip lost %v %q", check.id, check.op)
		}
	}
	if parsed.Authorized(Identity{"DataGrid", "heinz"}, "rc.delete") {
		t.Error("round trip invented a grant")
	}
}
