package gsi

import (
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"os"
)

// PEM block types used on disk.
const (
	pemCertType = "GDMP CERTIFICATE"
	pemKeyType  = "RSA PRIVATE KEY"
)

// SaveCertificate writes a certificate to path in PEM form (world-readable:
// certificates are public).
func SaveCertificate(cert *Certificate, path string) error {
	der, err := MarshalCertificate(cert)
	if err != nil {
		return err
	}
	block := pem.EncodeToMemory(&pem.Block{Type: pemCertType, Bytes: der})
	return os.WriteFile(path, block, 0o644)
}

// LoadCertificate reads a PEM certificate written by SaveCertificate.
func LoadCertificate(path string) (*Certificate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(data)
	if block == nil || block.Type != pemCertType {
		return nil, fmt.Errorf("gsi: %s does not contain a %s block", path, pemCertType)
	}
	return UnmarshalCertificate(block.Bytes)
}

// SaveCredential writes a credential's certificate chain and private key to
// path. The file contains the leaf certificate, the issuing chain, and the
// key, and is created owner-readable only, like a Globus key file.
func SaveCredential(cred *Credential, path string) error {
	if cred == nil || cred.Key == nil {
		return errors.New("gsi: nil credential")
	}
	var out []byte
	for _, cert := range cred.FullChain() {
		der, err := MarshalCertificate(cert)
		if err != nil {
			return err
		}
		out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemCertType, Bytes: der})...)
	}
	keyDER := x509.MarshalPKCS1PrivateKey(cred.Key)
	out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemKeyType, Bytes: keyDER})...)
	return os.WriteFile(path, out, 0o600)
}

// LoadCredential reads a credential written by SaveCredential.
func LoadCredential(path string) (*Credential, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var certs []*Certificate
	cred := &Credential{}
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		switch block.Type {
		case pemCertType:
			cert, err := UnmarshalCertificate(block.Bytes)
			if err != nil {
				return nil, err
			}
			certs = append(certs, cert)
		case pemKeyType:
			key, err := x509.ParsePKCS1PrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("gsi: parse private key: %w", err)
			}
			cred.Key = key
		default:
			return nil, fmt.Errorf("gsi: unexpected PEM block %q in %s", block.Type, path)
		}
	}
	if len(certs) == 0 {
		return nil, fmt.Errorf("gsi: no certificates in %s", path)
	}
	if cred.Key == nil {
		return nil, fmt.Errorf("gsi: no private key in %s", path)
	}
	cred.Cert = certs[0]
	cred.Chain = certs[1:]
	// The key must match the leaf certificate.
	if cred.Cert.PublicKey.N.Cmp(cred.Key.PublicKey.N) != 0 {
		return nil, fmt.Errorf("gsi: key in %s does not match leaf certificate", path)
	}
	return cred, nil
}
