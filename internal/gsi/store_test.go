package gsi

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSaveLoadCertificate(t *testing.T) {
	ca := testCA(t)
	path := filepath.Join(t.TempDir(), "ca.pem")
	if err := SaveCertificate(ca.Certificate(), path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCertificate(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Subject != ca.Certificate().Subject || !loaded.IsCA {
		t.Fatalf("loaded cert = %+v", loaded)
	}
	// Loaded root still anchors verification.
	cred := issue(t, "store-user")
	if _, err := VerifyChain(cred.FullChain(), []*Certificate{loaded}, time.Now()); err != nil {
		t.Fatalf("VerifyChain with loaded root: %v", err)
	}
}

func TestSaveLoadCredential(t *testing.T) {
	cred := issue(t, "store-carol")
	proxy, err := cred.Delegate(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "proxy.pem")
	if err := SaveCredential(proxy, path); err != nil {
		t.Fatal(err)
	}
	// Key files must be private.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("credential file mode = %v", info.Mode().Perm())
	}
	loaded, err := LoadCredential(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Identity() != proxy.Identity() {
		t.Fatalf("identity = %v", loaded.Identity())
	}
	if len(loaded.Chain) != 2 {
		t.Fatalf("chain length = %d", len(loaded.Chain))
	}
	// The loaded credential can actually authenticate.
	server := issue(t, "store-server")
	c, s := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Handshake(s, server, []*Certificate{testCA(t).Certificate()}, false)
		done <- err
		s.Close()
	}()
	if _, err := Handshake(c, loaded, []*Certificate{testCA(t).Certificate()}, true); err != nil {
		t.Fatalf("handshake with loaded credential: %v", err)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("server side: %v", err)
	}
}

func TestLoadCredentialErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.pem")
	os.WriteFile(empty, []byte("not pem at all"), 0o600)
	if _, err := LoadCredential(empty); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadCredential(filepath.Join(dir, "missing.pem")); err == nil {
		t.Error("missing file accepted")
	}
	// Certificate without key.
	certOnly := filepath.Join(dir, "certonly.pem")
	if err := SaveCertificate(testCA(t).Certificate(), certOnly); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCredential(certOnly); err == nil {
		t.Error("credential without key accepted")
	}
	// Mismatched key and certificate.
	a := issue(t, "store-a")
	bCred := issue(t, "store-b")
	mixed := &Credential{Cert: a.Cert, Key: bCred.Key, Chain: a.Chain}
	mixedPath := filepath.Join(dir, "mixed.pem")
	if err := SaveCredential(mixed, mixedPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCredential(mixedPath); err == nil {
		t.Error("mismatched key accepted")
	}
}
