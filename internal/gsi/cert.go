package gsi

import (
	"bytes"
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by certificate verification.
var (
	ErrExpired       = errors.New("gsi: certificate expired or not yet valid")
	ErrBadSignature  = errors.New("gsi: bad certificate signature")
	ErrUntrusted     = errors.New("gsi: chain does not end at a trusted root")
	ErrNotCA         = errors.New("gsi: issuer is not a certificate authority")
	ErrBadProxyName  = errors.New("gsi: proxy subject must extend issuer subject with /proxy")
	ErrEmptyChain    = errors.New("gsi: empty certificate chain")
	ErrChainTooLong  = errors.New("gsi: certificate chain too long")
	ErrChainMismatch = errors.New("gsi: chain issuer/subject mismatch")
)

// maxChainLen bounds chain verification work (root + user + proxies).
const maxChainLen = 8

// Certificate binds an identity to an RSA public key, signed by an issuer.
// The encoding is a fixed, deterministic binary layout (see marshalTBS) so
// that signatures are stable across processes.
type Certificate struct {
	Serial    uint64
	Subject   Identity
	Issuer    Identity
	NotBefore time.Time
	NotAfter  time.Time
	IsCA      bool
	IsProxy   bool

	// PublicKey is the subject's RSA public key.
	PublicKey *rsa.PublicKey

	// Signature is an RSASSA-PKCS1v15/SHA-256 signature over marshalTBS,
	// made with the issuer's private key.
	Signature []byte
}

// marshalTBS serializes the to-be-signed portion deterministically.
func (c *Certificate) marshalTBS() ([]byte, error) {
	pub, err := x509.MarshalPKIXPublicKey(c.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("gsi: marshal public key: %w", err)
	}
	var buf bytes.Buffer
	put := func(v interface{}) {
		switch x := v.(type) {
		case uint64:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], x)
			buf.Write(b[:])
		case string:
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], uint32(len(x)))
			buf.Write(b[:])
			buf.WriteString(x)
		case []byte:
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], uint32(len(x)))
			buf.Write(b[:])
			buf.Write(x)
		case bool:
			if x {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		}
	}
	put(c.Serial)
	put(c.Subject.Organization)
	put(c.Subject.CommonName)
	put(c.Issuer.Organization)
	put(c.Issuer.CommonName)
	put(uint64(c.NotBefore.Unix()))
	put(uint64(c.NotAfter.Unix()))
	put(c.IsCA)
	put(c.IsProxy)
	put(pub)
	return buf.Bytes(), nil
}

// digest hashes the to-be-signed bytes.
func (c *Certificate) digest() ([]byte, error) {
	tbs, err := c.marshalTBS()
	if err != nil {
		return nil, err
	}
	h := sha256.Sum256(tbs)
	return h[:], nil
}

// sign attaches a signature made by the issuer key.
func (c *Certificate) sign(issuerKey *rsa.PrivateKey) error {
	d, err := c.digest()
	if err != nil {
		return err
	}
	sig, err := rsa.SignPKCS1v15(rand.Reader, issuerKey, crypto.SHA256, d)
	if err != nil {
		return fmt.Errorf("gsi: sign certificate: %w", err)
	}
	c.Signature = sig
	return nil
}

// checkSignature verifies the certificate against the issuer's public key.
func (c *Certificate) checkSignature(issuerPub *rsa.PublicKey) error {
	d, err := c.digest()
	if err != nil {
		return err
	}
	if err := rsa.VerifyPKCS1v15(issuerPub, crypto.SHA256, d, c.Signature); err != nil {
		return ErrBadSignature
	}
	return nil
}

// ValidAt reports whether the validity window covers the given instant.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// CA is a certificate authority: a self-signed root that can issue identity
// certificates for users and services in its trust domain. CA is safe for
// concurrent use.
type CA struct {
	cert *Certificate
	key  *rsa.PrivateKey

	mu   sync.Mutex
	next uint64
}

// KeyBits is the RSA modulus size for generated keys. It is a variable so
// the test suite can shrink it for speed; production code leaves it alone.
var KeyBits = 2048

// NewCA creates a certificate authority for the given organization.
func NewCA(organization string, validity time.Duration) (*CA, error) {
	if organization == "" {
		return nil, errors.New("gsi: CA organization must be non-empty")
	}
	key, err := rsa.GenerateKey(rand.Reader, KeyBits)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate CA key: %w", err)
	}
	now := time.Now()
	id := Identity{Organization: organization, CommonName: "CA"}
	cert := &Certificate{
		Serial:    1,
		Subject:   id,
		Issuer:    id,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(validity),
		IsCA:      true,
		PublicKey: &key.PublicKey,
	}
	if err := cert.sign(key); err != nil {
		return nil, err
	}
	return &CA{cert: cert, key: key, next: 2}, nil
}

// Certificate returns the CA's self-signed root certificate; distribute it
// to every site as the trust anchor.
func (ca *CA) Certificate() *Certificate { return ca.cert }

// Credential returns the CA's own certificate and key, for persisting the
// authority with SaveCredential.
func (ca *CA) Credential() *Credential {
	return &Credential{Cert: ca.cert, Key: ca.key}
}

// NewCAFromCredential reconstructs a certificate authority from a stored CA
// credential. Issued serial numbers restart from the current time, keeping
// them unique across restarts.
func NewCAFromCredential(cred *Credential) (*CA, error) {
	if cred == nil || cred.Cert == nil || cred.Key == nil {
		return nil, errors.New("gsi: incomplete CA credential")
	}
	if !cred.Cert.IsCA {
		return nil, errors.New("gsi: credential is not a CA certificate")
	}
	return &CA{
		cert: cred.Cert,
		key:  cred.Key,
		next: uint64(time.Now().UnixNano()),
	}, nil
}

// Issue creates a long-lived identity credential for a user or service in
// the CA's organization.
func (ca *CA) Issue(commonName string, validity time.Duration) (*Credential, error) {
	if commonName == "" {
		return nil, errors.New("gsi: common name must be non-empty")
	}
	key, err := rsa.GenerateKey(rand.Reader, KeyBits)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate subject key: %w", err)
	}
	ca.mu.Lock()
	serial := ca.next
	ca.next++
	ca.mu.Unlock()
	now := time.Now()
	cert := &Certificate{
		Serial:    serial,
		Subject:   Identity{Organization: ca.cert.Subject.Organization, CommonName: commonName},
		Issuer:    ca.cert.Subject,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(validity),
		PublicKey: &key.PublicKey,
	}
	if err := cert.sign(ca.key); err != nil {
		return nil, err
	}
	return &Credential{
		Cert:  cert,
		Key:   key,
		Chain: []*Certificate{ca.cert},
	}, nil
}

// VerifyChain validates a certificate chain, leaf first, against a set of
// trusted roots. It returns the leaf's identity on success. Proxy
// certificates must be signed by the preceding entity certificate and their
// subject must extend the issuer's subject with a "/proxy" segment, exactly
// the GSI delegation rule.
func VerifyChain(chain []*Certificate, roots []*Certificate, now time.Time) (Identity, error) {
	if len(chain) == 0 {
		return Identity{}, ErrEmptyChain
	}
	if len(chain) > maxChainLen {
		return Identity{}, ErrChainTooLong
	}
	for i := 0; i < len(chain); i++ {
		cert := chain[i]
		if !cert.ValidAt(now) {
			return Identity{}, fmt.Errorf("%w: %s", ErrExpired, cert.Subject)
		}
		if i == len(chain)-1 {
			// Topmost presented certificate must be anchored in the roots:
			// it is either a root itself or signed by one.
			if err := anchor(cert, roots); err != nil {
				return Identity{}, err
			}
			continue
		}
		issuer := chain[i+1]
		if cert.Issuer != issuer.Subject {
			return Identity{}, fmt.Errorf("%w: %s issued by %s, next in chain is %s",
				ErrChainMismatch, cert.Subject, cert.Issuer, issuer.Subject)
		}
		if cert.IsProxy {
			if !cert.Subject.IsProxyFor(issuer.Subject) {
				return Identity{}, ErrBadProxyName
			}
			// A proxy's validity may not outlive its signer's.
			if cert.NotAfter.After(issuer.NotAfter) {
				return Identity{}, fmt.Errorf("%w: proxy outlives signer", ErrExpired)
			}
		} else if !issuer.IsCA {
			return Identity{}, ErrNotCA
		}
		if err := cert.checkSignature(issuer.PublicKey); err != nil {
			return Identity{}, err
		}
	}
	return chain[0].Subject, nil
}

// anchor checks that cert is one of the trusted roots or directly signed by
// one of them.
func anchor(cert *Certificate, roots []*Certificate) error {
	for _, root := range roots {
		if cert.Subject == root.Subject && bytes.Equal(cert.Signature, root.Signature) {
			return nil
		}
		if cert.Issuer == root.Subject && root.IsCA {
			if err := cert.checkSignature(root.PublicKey); err == nil {
				return nil
			}
		}
	}
	return ErrUntrusted
}
