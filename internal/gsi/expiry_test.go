package gsi

import (
	"net"
	"testing"
	"time"
)

// TestHandshakeRejectsExpiredCredential: a credential that was valid when
// issued but has expired by handshake time is refused at runtime.
func TestHandshakeRejectsExpiredCredential(t *testing.T) {
	ca := testCA(t)
	roots := []*Certificate{ca.Certificate()}
	shortLived, err := ca.Issue("ephemeral", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	server := issue(t, "expiry-server")
	time.Sleep(120 * time.Millisecond) // let it expire

	c, s := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Handshake(s, server, roots, false)
		done <- err
		s.Close()
	}()
	_, cerr := Handshake(c, shortLived, roots, true)
	c.Close()
	serr := <-done
	if serr == nil {
		t.Fatal("server accepted an expired client credential")
	}
	_ = cerr // client may fail with a hangup; the server check is the point
}

// TestHandshakeRejectsExpiredProxy: the proxy expires even though the
// underlying identity is still valid.
func TestHandshakeRejectsExpiredProxy(t *testing.T) {
	ca := testCA(t)
	roots := []*Certificate{ca.Certificate()}
	user := issue(t, "proxy-expiry-user")
	proxy, err := user.Delegate(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	server := issue(t, "proxy-expiry-server")
	time.Sleep(120 * time.Millisecond)

	c, s := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Handshake(s, server, roots, false)
		done <- err
		s.Close()
	}()
	_, _ = Handshake(c, proxy, roots, true)
	c.Close()
	if serr := <-done; serr == nil {
		t.Fatal("server accepted an expired proxy")
	}
	// The long-lived identity itself still works.
	c2, s2 := net.Pipe()
	done2 := make(chan error, 1)
	go func() {
		_, err := Handshake(s2, server, roots, false)
		done2 <- err
		s2.Close()
	}()
	if _, err := Handshake(c2, user, roots, true); err != nil {
		t.Fatalf("base identity rejected: %v", err)
	}
	c2.Close()
	if err := <-done2; err != nil {
		t.Fatalf("server rejected base identity: %v", err)
	}
}
