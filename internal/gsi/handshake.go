package gsi

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Peer describes the authenticated remote party after a handshake.
type Peer struct {
	// Identity is the subject of the peer's leaf certificate (possibly a
	// proxy identity).
	Identity Identity

	// Base is the underlying long-lived identity, with proxy suffixes
	// stripped; authorization decisions use this.
	Base Identity

	// Chain is the verified certificate chain the peer presented.
	Chain []*Certificate
}

const (
	nonceLen     = 32
	roleClient   = byte(0x01)
	roleServer   = byte(0x02)
	maxHandshake = 1 << 20 // sanity cap on handshake message size
)

// ErrHandshake is wrapped around any mutual-authentication failure.
var ErrHandshake = errors.New("gsi: handshake failed")

// writeMsg frames a handshake message as 4-byte big-endian length plus
// payload. The handshake runs before the RPC layer is established, so it
// carries its own minimal framing.
func writeMsg(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readMsg(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxHandshake {
		return nil, fmt.Errorf("%w: oversized message (%d bytes)", ErrHandshake, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// transcript builds the byte string each side signs: both nonces and the
// signer's role, preventing replay and reflection attacks.
func transcript(role byte, clientNonce, serverNonce []byte) []byte {
	out := make([]byte, 0, 1+2*nonceLen)
	out = append(out, role)
	out = append(out, clientNonce...)
	out = append(out, serverNonce...)
	return out
}

// decodeAndVerifyChain parses a peer chain and validates it against roots.
func decodeAndVerifyChain(chainBytes []byte, roots []*Certificate) (*Peer, error) {
	chain, err := UnmarshalChain(chainBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: decode peer chain: %v", ErrHandshake, err)
	}
	id, err := VerifyChain(chain, roots, time.Now())
	if err != nil {
		return nil, fmt.Errorf("%w: verify peer chain: %v", ErrHandshake, err)
	}
	return &Peer{Identity: id, Base: id.Base(), Chain: chain}, nil
}

// Handshake performs mutual authentication over rw. Both sides exchange
// certificate chains and fresh nonces, then prove possession of their
// private keys by signing the joint transcript. asClient selects the
// message order and role byte. On success it returns the verified peer.
//
// The protocol (client view):
//
//	-> chain_c, nonce_c
//	<- chain_s, nonce_s, sign_s(0x02 || nonce_c || nonce_s)
//	-> sign_c(0x01 || nonce_c || nonce_s)
//
// Each side verifies the peer's chain as soon as it arrives and aborts the
// connection on failure, so an unauthenticated peer never advances the
// protocol.
func Handshake(rw io.ReadWriter, cred *Credential, roots []*Certificate, asClient bool) (*Peer, error) {
	if cred == nil {
		return nil, fmt.Errorf("%w: nil credential", ErrHandshake)
	}
	myChain, err := MarshalChain(cred.FullChain())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	myNonce := make([]byte, nonceLen)
	if _, err := rand.Read(myNonce); err != nil {
		return nil, fmt.Errorf("%w: nonce: %v", ErrHandshake, err)
	}

	if asClient {
		return clientHandshake(rw, cred, roots, myChain, myNonce)
	}
	return serverHandshake(rw, cred, roots, myChain, myNonce)
}

func clientHandshake(rw io.ReadWriter, cred *Credential, roots []*Certificate, myChain, clientNonce []byte) (*Peer, error) {
	// -> client hello
	if err := writeMsg(rw, myChain); err != nil {
		return nil, fmt.Errorf("%w: send chain: %v", ErrHandshake, err)
	}
	if err := writeMsg(rw, clientNonce); err != nil {
		return nil, fmt.Errorf("%w: send nonce: %v", ErrHandshake, err)
	}

	// <- server hello + proof
	peerChainBytes, err := readMsg(rw)
	if err != nil {
		return nil, fmt.Errorf("%w: read server chain: %v", ErrHandshake, err)
	}
	serverNonce, err := readMsg(rw)
	if err != nil {
		return nil, fmt.Errorf("%w: read server nonce: %v", ErrHandshake, err)
	}
	if len(serverNonce) != nonceLen {
		return nil, fmt.Errorf("%w: bad server nonce length %d", ErrHandshake, len(serverNonce))
	}
	peerSig, err := readMsg(rw)
	if err != nil {
		return nil, fmt.Errorf("%w: read server proof: %v", ErrHandshake, err)
	}

	peer, err := decodeAndVerifyChain(peerChainBytes, roots)
	if err != nil {
		return nil, err
	}
	if err := VerifyData(peer.Chain[0], transcript(roleServer, clientNonce, serverNonce), peerSig); err != nil {
		return nil, fmt.Errorf("%w: server proof invalid", ErrHandshake)
	}

	// -> client proof
	proof, err := cred.SignData(transcript(roleClient, clientNonce, serverNonce))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := writeMsg(rw, proof); err != nil {
		return nil, fmt.Errorf("%w: send proof: %v", ErrHandshake, err)
	}
	return peer, nil
}

func serverHandshake(rw io.ReadWriter, cred *Credential, roots []*Certificate, myChain, serverNonce []byte) (*Peer, error) {
	// <- client hello
	peerChainBytes, err := readMsg(rw)
	if err != nil {
		return nil, fmt.Errorf("%w: read client chain: %v", ErrHandshake, err)
	}
	clientNonce, err := readMsg(rw)
	if err != nil {
		return nil, fmt.Errorf("%w: read client nonce: %v", ErrHandshake, err)
	}
	if len(clientNonce) != nonceLen {
		return nil, fmt.Errorf("%w: bad client nonce length %d", ErrHandshake, len(clientNonce))
	}

	// Reject untrusted clients before revealing anything further.
	peer, err := decodeAndVerifyChain(peerChainBytes, roots)
	if err != nil {
		return nil, err
	}

	// -> server hello + proof
	proof, err := cred.SignData(transcript(roleServer, clientNonce, serverNonce))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := writeMsg(rw, myChain); err != nil {
		return nil, fmt.Errorf("%w: send chain: %v", ErrHandshake, err)
	}
	if err := writeMsg(rw, serverNonce); err != nil {
		return nil, fmt.Errorf("%w: send nonce: %v", ErrHandshake, err)
	}
	if err := writeMsg(rw, proof); err != nil {
		return nil, fmt.Errorf("%w: send proof: %v", ErrHandshake, err)
	}

	// <- client proof
	peerSig, err := readMsg(rw)
	if err != nil {
		return nil, fmt.Errorf("%w: read client proof: %v", ErrHandshake, err)
	}
	if err := VerifyData(peer.Chain[0], transcript(roleClient, clientNonce, serverNonce), peerSig); err != nil {
		return nil, fmt.Errorf("%w: client proof invalid", ErrHandshake)
	}
	return peer, nil
}
