// Package wan emulates wide-area network conditions over real sockets, so
// that integration tests and examples exercise GDMP's full socket path under
// CERN-to-ANL-like constraints (Section 6's testbed: 45 Mbps, 125 ms RTT)
// while running entirely on loopback.
//
// A Link models one shared bottleneck: every connection wrapped by the same
// Link draws from a single token bucket, so parallel streams and competing
// transfers contend for capacity exactly as the paper's flows contend for
// the production transatlantic link. Connection establishment pays one RTT,
// matching TCP handshake cost over the real path.
//
// The shaping is byte-accurate but coarse-grained (pacing at write
// granularity); precise TCP window dynamics live in internal/netsim. Use
// wan for end-to-end plumbing under realistic rates, netsim for
// figure-grade protocol behavior.
package wan

import (
	"errors"
	"net"
	"sync"
	"time"
)

// Link is a shared emulated bottleneck.
type Link struct {
	rateBytesPerSec float64
	rtt             time.Duration

	mu   sync.Mutex
	next time.Time // virtual clock: when the link is free again
}

// maxBurst is the write granularity for pacing.
const maxBurst = 32 * 1024

// NewLink creates a shaped link. rateMbps <= 0 disables rate shaping;
// rtt <= 0 disables latency emulation.
func NewLink(rateMbps float64, rtt time.Duration) *Link {
	l := &Link{rtt: rtt}
	if rateMbps > 0 {
		l.rateBytesPerSec = rateMbps * 1e6 / 8
	}
	return l
}

// CERNtoANL mirrors netsim.CERNtoANL's available capacity: the 45 Mbps
// production link minus ambient cross traffic, with a 125 ms RTT.
func CERNtoANL() *Link { return NewLink(25, 125*time.Millisecond) }

// acquire reserves transmission time for n bytes and returns how long the
// caller must wait before sending them.
func (l *Link) acquire(n int) time.Duration {
	if l.rateBytesPerSec <= 0 {
		return 0
	}
	cost := time.Duration(float64(n) / l.rateBytesPerSec * float64(time.Second))
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	wait := l.next.Sub(now)
	l.next = l.next.Add(cost)
	return wait
}

// RTT returns the emulated round-trip time.
func (l *Link) RTT() time.Duration { return l.rtt }

// Wrap shapes an existing connection through the link.
func (l *Link) Wrap(c net.Conn) net.Conn {
	return &conn{Conn: c, link: l}
}

// Dialer returns a dial function that establishes connections through the
// link: the dial itself pays one RTT (TCP handshake), and all subsequent
// writes are paced by the shared bucket. base defaults to net.Dial.
func (l *Link) Dialer(base func(network, addr string) (net.Conn, error)) func(network, addr string) (net.Conn, error) {
	if base == nil {
		base = net.Dial
	}
	return func(network, addr string) (net.Conn, error) {
		c, err := base(network, addr)
		if err != nil {
			return nil, err
		}
		if l.rtt > 0 {
			time.Sleep(l.rtt)
		}
		return l.Wrap(c), nil
	}
}

// conn paces both directions through the shared link and adds half an RTT
// of propagation delay to the first transmission of each burst of activity.
// Writes are paced before sending; reads are paced after receiving, so a
// bulk download through a wrapped client connection is shaped even though
// the server side writes at full speed. One-directional bulk flows (the
// GridFTP data channels) therefore see the link rate from either side.
type conn struct {
	net.Conn
	link *Link

	mu       sync.Mutex
	lastSend time.Time
}

var errClosed = errors.New("wan: connection closed")

func (c *conn) Write(p []byte) (int, error) {
	if c.Conn == nil {
		return 0, errClosed
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxBurst {
			n = maxBurst
		}
		if wait := c.link.acquire(n); wait > 0 {
			time.Sleep(wait)
		}
		c.propagationDelay()
		wrote, err := c.Conn.Write(p[:n])
		total += wrote
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

func (c *conn) Read(p []byte) (int, error) {
	if c.Conn == nil {
		return 0, errClosed
	}
	if len(p) > maxBurst {
		p = p[:maxBurst]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		if wait := c.link.acquire(n); wait > 0 {
			time.Sleep(wait)
		}
	}
	return n, err
}

// propagationDelay charges one-way latency when the connection has been
// idle, approximating the first-packet delay of a fresh burst without
// penalizing every segment of a bulk stream.
func (c *conn) propagationDelay() {
	if c.link.rtt <= 0 {
		return
	}
	c.mu.Lock()
	idle := time.Since(c.lastSend) > c.link.rtt
	c.lastSend = time.Now()
	c.mu.Unlock()
	if idle {
		time.Sleep(c.link.rtt / 2)
	}
}
