package wan

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts one connection and echoes everything back.
func sinkServer(t *testing.T) (addr string, received *bytes.Buffer, done chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	received = &bytes.Buffer{}
	done = make(chan struct{})
	var mu sync.Mutex
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		mu.Lock()
		defer mu.Unlock()
		io.Copy(received, c)
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), received, done
}

func TestDataIntegrityThroughLink(t *testing.T) {
	addr, received, done := sinkServer(t)
	link := NewLink(0, 0) // no shaping: pure pass-through
	dial := link.Dialer(nil)
	c, err := dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("grid-data-"), 10000)
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-done
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatal("payload corrupted through wan link")
	}
}

func TestRateShaping(t *testing.T) {
	addr, _, done := sinkServer(t)
	link := NewLink(80, 0) // 80 Mbps = 10 MB/s
	dial := link.Dialer(nil)
	c, err := dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2_000_000) // 2 MB should take ~200 ms at 10 MB/s
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	c.Close()
	<-done
	if elapsed < 150*time.Millisecond {
		t.Fatalf("2 MB at 80 Mbps finished in %v; shaping not applied", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shaping too aggressive: %v", elapsed)
	}
}

func TestSharedBottleneck(t *testing.T) {
	// Two connections through the same link share its capacity; the same
	// bytes through two independent links go roughly twice as fast.
	run := func(shared bool) time.Duration {
		addr1, _, done1 := sinkServer(t)
		addr2, _, done2 := sinkServer(t)
		linkA := NewLink(80, 0)
		linkB := linkA
		if !shared {
			linkB = NewLink(80, 0)
		}
		c1, err := linkA.Dialer(nil)("tcp", addr1)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := linkB.Dialer(nil)("tcp", addr2)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 1_000_000)
		start := time.Now()
		var wg sync.WaitGroup
		for _, c := range []net.Conn{c1, c2} {
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				c.Write(payload)
				c.Close()
			}(c)
		}
		wg.Wait()
		<-done1
		<-done2
		return time.Since(start)
	}
	sharedTime := run(true)
	separateTime := run(false)
	if sharedTime < separateTime*3/2 {
		t.Fatalf("shared bottleneck %v should be much slower than separate links %v",
			sharedTime, separateTime)
	}
}

func TestReadShaping(t *testing.T) {
	// A bulk download through a wrapped client connection is paced even
	// though the (unwrapped) server writes at full speed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	payload := make([]byte, 2_000_000)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write(payload)
		c.Close()
	}()
	link := NewLink(80, 0) // 10 MB/s -> 2 MB takes ~200 ms
	c, err := link.Dialer(nil)("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	n, err := io.Copy(io.Discard, c)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if n != int64(len(payload)) {
		t.Fatalf("read %d bytes", n)
	}
	if elapsed < 150*time.Millisecond {
		t.Fatalf("2 MB read at 80 Mbps finished in %v; read shaping not applied", elapsed)
	}
}

func TestDialLatency(t *testing.T) {
	addr, _, _ := sinkServer(t)
	link := NewLink(0, 100*time.Millisecond)
	start := time.Now()
	c, err := link.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("dial took %v, expected at least one RTT", elapsed)
	}
}

func TestPropagationDelayOnIdleBurst(t *testing.T) {
	addr, _, done := sinkServer(t)
	link := NewLink(0, 60*time.Millisecond)
	c, err := link.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// First write after idle pays ~RTT/2.
	start := time.Now()
	c.Write([]byte("x"))
	first := time.Since(start)
	// Immediate follow-up writes do not.
	start = time.Now()
	for i := 0; i < 10; i++ {
		c.Write([]byte("y"))
	}
	burst := time.Since(start)
	c.Close()
	<-done
	if first < 25*time.Millisecond {
		t.Fatalf("first write took %v, expected ~RTT/2", first)
	}
	if burst > first {
		t.Fatalf("10 back-to-back writes (%v) slower than one cold write (%v)", burst, first)
	}
}

func TestCERNtoANLDefaults(t *testing.T) {
	l := CERNtoANL()
	if l.RTT() != 125*time.Millisecond {
		t.Fatalf("RTT = %v", l.RTT())
	}
	if l.rateBytesPerSec != 25e6/8 {
		t.Fatalf("rate = %v", l.rateBytesPerSec)
	}
}
