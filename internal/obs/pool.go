// Disk-pool cache instrumentation: the gdmp_pool_* family every MSS-backed
// site exports, and the quantile estimator `gdmp status` and the cache-soak
// harness use to report p50/p99 stage latency from histogram buckets.
package obs

import "math"

// PoolStageBuckets are the stage-latency bounds, from half a millisecond
// (pool hit verified on disk) to ~16s (tape mount plus drain, or a slow
// WAN pull).
var PoolStageBuckets = ExponentialBuckets(0.0005, 2, 16)

// PoolMetrics is the gdmp_pool_* metric family for one site's disk pool:
// occupancy against capacity, hit/miss/eviction counts, and the latency
// of bringing bytes into the pool (tape stages and WAN pulls alike).
type PoolMetrics struct {
	Occupancy    *Gauge
	Reserved     *Gauge
	Capacity     *Gauge
	Hits         *Counter
	Misses       *Counter
	Evictions    *Counter
	Prefetches   *Counter
	StageSeconds *Histogram
}

// NewPoolMetrics registers (or finds) the pool family in a registry; nil
// uses Default. Registration is idempotent, so two sites sharing one
// registry share one family — give each site its own registry when the
// numbers must stay apart.
func NewPoolMetrics(r *Registry) *PoolMetrics {
	if r == nil {
		r = Default
	}
	return &PoolMetrics{
		Occupancy:    r.Gauge("gdmp_pool_occupancy_bytes", "Bytes of disk-pool capacity held by resident files."),
		Reserved:     r.Gauge("gdmp_pool_reserved_bytes", "Bytes of disk-pool capacity reserved for in-flight transfers."),
		Capacity:     r.Gauge("gdmp_pool_capacity_bytes", "Configured disk-pool capacity in bytes."),
		Hits:         r.Counter("gdmp_pool_hits_total", "Pool accesses satisfied by a resident replica."),
		Misses:       r.Counter("gdmp_pool_misses_total", "Pool accesses that had to stage from tape or pull over the WAN."),
		Evictions:    r.Counter("gdmp_pool_evictions_total", "Files evicted from the disk pool to make room."),
		Prefetches:   r.Counter("gdmp_pool_prefetches_total", "Collection members staged or pulled ahead of demand."),
		StageSeconds: r.Histogram("gdmp_pool_stage_seconds", "Latency of bringing a file into the disk pool (tape stage or WAN pull).", PoolStageBuckets),
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly inside the
// bucket the rank falls in. An estimate landing in the +Inf bucket
// reports the highest finite bound (the histogram cannot resolve beyond
// it), and an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum, lower := 0.0, 0.0
	for i, upper := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			return lower + (upper-lower)*(rank-cum)/c
		}
		cum += c
		lower = upper
	}
	if math.IsInf(lower, 1) || len(h.bounds) == 0 {
		return 0
	}
	return lower
}
