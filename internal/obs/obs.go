// Package obs is the repository's integrated instrumentation layer: a
// small, dependency-free metrics core in the spirit of GridFTP's
// "integrated instrumentation, for monitoring ongoing transfer
// performance" (paper Section 3.2) and of the per-transfer monitoring
// Allcock et al. describe for replica management at scale.
//
// The package provides four collector kinds — atomic counters, gauges,
// bounded-bucket histograms, and labeled vectors of either — grouped in a
// Registry that renders itself in the Prometheus text exposition format.
// Every hot path in the system (GridFTP transfers, replica catalog
// operations, Request Manager RPCs, site publish/notify) records into a
// Registry; daemons expose the dump over HTTP and RPC, and `gdmp stats`
// renders it for operators.
//
// Collectors are cheap enough to touch on every operation: counters and
// gauges are single atomic adds, histogram observation is one atomic add
// plus a bucket search over a small fixed slice. Vector children are
// cached behind an RWMutex read lock.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are general-purpose latency buckets in seconds, from 100µs
// to ~100s, suitable for both LAN RPCs and WAN transfers.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05,
	.1, .25, .5, 1, 2.5, 5, 10, 25, 50, 100,
}

// LinearBuckets returns count buckets starting at start, width apart.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram counts observations into bounded buckets. The bucket at index
// i counts observations v with v <= bounds[i] (and greater than any lower
// bound); one extra implicit +Inf bucket catches the rest. The sum of all
// bucket counts always equals Count — the invariant the property tests
// hammer on.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Time returns a function that, when called, observes the elapsed time
// since Time was called: `defer h.Time()()`.
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.ObserveDuration(time.Since(start)) }
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the bucket upper bounds and per-bucket (non-cumulative)
// counts, including the trailing +Inf bucket (bound math.Inf(1)).
func (h *Histogram) Snapshot() (bounds []float64, counts []int64) {
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.Inf(1))
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// --- labeled vectors -------------------------------------------------------

const labelSep = "\xff"

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Counter
}

func newCounterVec(labels []string) *CounterVec {
	return &CounterVec{labels: labels, children: make(map[string]*Counter)}
}

// WithLabelValues returns (creating if needed) the counter for the given
// label values, which must match the vector's label names in count.
func (v *CounterVec) WithLabelValues(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Gauge
}

func newGaugeVec(labels []string) *GaugeVec {
	return &GaugeVec{labels: labels, children: make(map[string]*Gauge)}
}

// WithLabelValues returns (creating if needed) the gauge for the given
// label values, which must match the vector's label names in count.
func (v *GaugeVec) WithLabelValues(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	g, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.children[key]; !ok {
		g = &Gauge{}
		v.children[key] = g
	}
	return g
}

// HistogramVec is a family of histograms sharing bucket bounds,
// distinguished by label values.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

func newHistogramVec(labels []string, bounds []float64) *HistogramVec {
	return &HistogramVec{labels: labels, bounds: bounds, children: make(map[string]*Histogram)}
}

// WithLabelValues returns (creating if needed) the histogram for the given
// label values.
func (v *HistogramVec) WithLabelValues(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[key]; !ok {
		h = newHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}
