package obs

import (
	"strings"
	"testing"
)

func TestPoolMetricsFamily(t *testing.T) {
	r := NewRegistry()
	pm := NewPoolMetrics(r)
	pm.Capacity.Set(1000)
	pm.Occupancy.Set(400)
	pm.Hits.Inc()
	pm.Misses.Inc()
	pm.Evictions.Inc()
	pm.Prefetches.Inc()
	pm.StageSeconds.Observe(0.01)

	// Registration is idempotent: a second family over the same registry
	// shares the same metrics.
	again := NewPoolMetrics(r)
	if again.Hits != pm.Hits || again.StageSeconds != pm.StageSeconds {
		t.Fatal("NewPoolMetrics did not reuse the registered family")
	}

	text := r.Text()
	for _, name := range []string{
		"gdmp_pool_occupancy_bytes", "gdmp_pool_reserved_bytes",
		"gdmp_pool_capacity_bytes", "gdmp_pool_hits_total",
		"gdmp_pool_misses_total", "gdmp_pool_evictions_total",
		"gdmp_pool_prefetches_total", "gdmp_pool_stage_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}

	// nil registry falls back to Default without panicking.
	if NewPoolMetrics(nil) == nil {
		t.Fatal("NewPoolMetrics(nil) returned nil")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "test", []float64{1, 2, 4})

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}

	// 10 observations in (0,1], 10 in (1,2].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.25); got != 0.5 {
		t.Fatalf("p25 = %v, want 0.5 (midway through the first bucket)", got)
	}
	if got := h.Quantile(0.5); got != 1.0 {
		t.Fatalf("p50 = %v, want 1.0 (first bucket's upper bound)", got)
	}
	if got := h.Quantile(0.75); got != 1.5 {
		t.Fatalf("p75 = %v, want 1.5 (midway through the second bucket)", got)
	}
	// Out-of-range q clamps instead of extrapolating.
	if got := h.Quantile(2.0); got != h.Quantile(1.0) {
		t.Fatalf("q=2 gave %v, q=1 gave %v", got, h.Quantile(1.0))
	}
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q=-1 gave %v, q=0 gave %v", got, h.Quantile(0))
	}

	// An observation beyond every bound lands in +Inf; the estimate caps
	// at the highest finite bound rather than inventing a number.
	h2 := r.Histogram("q_inf_seconds", "test", []float64{1, 2, 4})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 4 {
		t.Fatalf("p99 of +Inf-bucket-only histogram = %v, want 4", got)
	}
}
