package obs

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestExpositionGolden pins the exact text exposition output for one of
// each collector kind, including label escaping, histogram cumulation,
// and deterministic ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_requests_total", "Total requests.").Add(3)
	r.Gauge("a_depth", "Queue depth.").Set(-2)
	h := r.Histogram("m_latency_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	cv := r.CounterVec("m_ops_total", "Ops.", "op", "status")
	cv.WithLabelValues("lookup", "ok").Add(7)
	cv.WithLabelValues(`we"ird\`, "error").Inc()
	hv := r.HistogramVec("m_vec_seconds", "", []float64{1}, "op")
	hv.WithLabelValues("put").Observe(0.5)

	const want = `# HELP a_depth Queue depth.
# TYPE a_depth gauge
a_depth -2
# HELP m_latency_seconds Latency.
# TYPE m_latency_seconds histogram
m_latency_seconds_bucket{le="0.5"} 1
m_latency_seconds_bucket{le="1"} 2
m_latency_seconds_bucket{le="+Inf"} 3
m_latency_seconds_sum 3
m_latency_seconds_count 3
# HELP m_ops_total Ops.
# TYPE m_ops_total counter
m_ops_total{op="lookup",status="ok"} 7
m_ops_total{op="we\"ird\\",status="error"} 1
# TYPE m_vec_seconds histogram
m_vec_seconds_bucket{op="put",le="1"} 1
m_vec_seconds_bucket{op="put",le="+Inf"} 1
m_vec_seconds_sum{op="put"} 0.5
m_vec_seconds_count{op="put"} 1
# HELP z_requests_total Total requests.
# TYPE z_requests_total counter
z_requests_total 3
`
	got := r.Text()
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramSumInvariant is the property test of the issue: for any
// sequence of observations into any bucket layout, the per-bucket counts
// always sum to the observation count.
func TestHistogramSumInvariant(t *testing.T) {
	prop := func(rawBounds []float64, values []float64) bool {
		// Sanitize bounds: histograms reject nothing, but NaN bounds make
		// bucket search meaningless, so map them to finite values.
		bounds := make([]float64, 0, len(rawBounds))
		for _, b := range rawBounds {
			if b == b { // not NaN
				bounds = append(bounds, b)
			}
		}
		h := newHistogram(bounds)
		n := 0
		for _, v := range values {
			if v != v {
				continue
			}
			h.Observe(v)
			n++
		}
		_, counts := h.Snapshot()
		var sum int64
		for _, c := range counts {
			sum += c
		}
		return sum == int64(n) && h.Count() == int64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTimerObserves checks the Time helper lands one observation.
func TestTimerObserves(t *testing.T) {
	h := newHistogram(DefBuckets)
	stop := h.Time()
	time.Sleep(time.Millisecond)
	stop()
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

// TestExpositionParses sanity-checks that every line is either a comment
// or "name{labels} value" with no stray whitespace — a scrape-ability
// smoke test without importing a parser.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	NewTransferRecorder(r, "x").Record(TransferSample{
		Direction: "get", Bytes: 10, Streams: 2, Attempts: 1, Elapsed: time.Second,
	})
	for _, line := range strings.Split(strings.TrimSuffix(r.Text(), "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Split(line, " ")
		if len(fields) != 2 {
			t.Fatalf("malformed line %q", line)
		}
	}
}
