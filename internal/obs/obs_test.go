package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	// v <= 1: {0.5, 1}; 1 < v <= 2: {1.5, 2}; 2 < v <= 5: {3}; rest: {100}.
	want := []int64{2, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); math.Abs(got-108) > 1e-9 {
		t.Fatalf("sum = %g, want 108", got)
	}
}

// TestConcurrentHammer pounds every collector kind from many goroutines;
// run under -race this is the package's data-race gate, and the final
// values check that no increments were lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_counter", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_hist", "", []float64{0.25, 0.5, 0.75})
	cv := r.CounterVec("hammer_vec", "", "worker")
	hv := r.HistogramVec("hammer_histvec", "", []float64{10, 20}, "worker")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Dec()
				h.Observe(float64(i%100) / 100)
				cv.WithLabelValues(label).Inc()
				hv.WithLabelValues(label).Observe(float64(i % 30))
				// Interleave with exposition reads to catch read/write races.
				if i%1000 == 0 {
					_ = r.Text()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	_, counts := h.Snapshot()
	var sum int64
	for _, n := range counts {
		sum += n
	}
	if sum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", sum, h.Count())
	}
	var vecTotal int64
	for _, l := range []string{"a", "b", "c", "d"} {
		vecTotal += cv.WithLabelValues(l).Value()
	}
	if vecTotal != workers*perWorker {
		t.Fatalf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
}

func TestRegistryGetOrRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "first")
	b := r.Counter("same", "second wins nothing")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("same", "")
}

func TestTransferRecorder(t *testing.T) {
	r := NewRegistry()
	rec := NewTransferRecorder(r, "test_xfer")
	done := rec.Start()
	done(TransferSample{
		Direction: "get", Bytes: 1 << 20, Streams: 4, Attempts: 2,
		Elapsed: time.Second,
	})
	rec.Record(TransferSample{
		Direction: "put", Bytes: 100, Streams: 1, Attempts: 1,
		Elapsed: time.Millisecond, Err: errFake{},
	})
	rec.CRCFailure()

	if got := rec.Transfers("get", "ok"); got != 1 {
		t.Fatalf("get/ok = %d", got)
	}
	if got := rec.Transfers("put", "error"); got != 1 {
		t.Fatalf("put/error = %d", got)
	}
	if got := rec.Bytes("get"); got != 1<<20 {
		t.Fatalf("bytes get = %d", got)
	}
	if got := rec.restarts.Value(); got != 1 {
		t.Fatalf("restarts = %d", got)
	}
	if got := rec.crcFails.Value(); got != 1 {
		t.Fatalf("crc failures = %d", got)
	}
	if got := rec.inFlight.Value(); got != 0 {
		t.Fatalf("in flight = %d", got)
	}
	// A failed transfer must not contaminate the bandwidth histogram.
	if got := rec.bandwidth.Count(); got != 1 {
		t.Fatalf("bandwidth observations = %d", got)
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("linear = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exponential = %v", exp)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("inflight", "In-flight ops by source.", "source")
	v.WithLabelValues("cern.ch").Set(3)
	v.WithLabelValues("anl.gov").Inc()
	v.WithLabelValues("cern.ch").Dec()
	if got := v.WithLabelValues("cern.ch").Value(); got != 2 {
		t.Fatalf("cern.ch gauge = %d, want 2", got)
	}
	// Same registry name returns the same family; children render sorted.
	if r.GaugeVec("inflight", "", "source") != v {
		t.Fatal("get-or-register returned a new GaugeVec")
	}
	text := r.Text()
	want := "# TYPE inflight gauge\ninflight{source=\"anl.gov\"} 1\ninflight{source=\"cern.ch\"} 2\n"
	if !strings.Contains(text, want) {
		t.Fatalf("exposition:\n%s\nwant substring:\n%s", text, want)
	}
}
