package obs

import "time"

// Transfer stream-count buckets: parallelism is bounded by GridFTP's
// MaxParallelism (32), so linear buckets cover the space exactly.
var streamBuckets = LinearBuckets(1, 1, 32)

// Bandwidth buckets in Mbps, from dial-up to multi-gigabit.
var bandwidthBuckets = ExponentialBuckets(0.1, 2, 18)

// TransferSample is the per-transfer record fed to a TransferRecorder:
// the same quantities GridFTP's integrated instrumentation reports per
// transfer (bytes moved, stream and stripe counts, restart attempts,
// elapsed time).
type TransferSample struct {
	// Direction is "get" or "put" (or "3rd-party").
	Direction string

	// Bytes actually moved.
	Bytes int64

	// Streams is the parallel TCP stream count used.
	Streams int

	// Stripes is the number of source hosts for a striped transfer
	// (0 or 1 for a plain transfer).
	Stripes int

	// Attempts is the total attempt count; attempts beyond the first are
	// counted as restarts.
	Attempts int

	// Elapsed is the wall-clock transfer time.
	Elapsed time.Duration

	// Err records failure; a nil Err is a completed transfer.
	Err error
}

// RateMbps returns the sample's effective bandwidth in megabits/second.
func (s TransferSample) RateMbps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / s.Elapsed.Seconds() / 1e6
}

// TransferRecorder aggregates per-transfer statistics into a registry:
// transfer and byte counts by direction and outcome, stream/stripe
// utilization, restart counts, CRC failures, and effective bandwidth.
// All names are prefixed with the owning subsystem, e.g.
// "gdmp_gridftp_client".
type TransferRecorder struct {
	transfers *CounterVec // {direction, outcome}
	bytes     *CounterVec // {direction}
	streams   *Histogram
	stripes   *Histogram
	restarts  *Counter
	crcFails  *Counter
	bandwidth *Histogram
	inFlight  *Gauge

	resumes        *Counter
	resumedBytes   *Counter
	resumeRejected *Counter
}

// NewTransferRecorder creates (or rebinds to) the transfer metric family
// with the given name prefix in a registry. Multiple recorders with the
// same prefix in the same registry share the underlying collectors.
func NewTransferRecorder(r *Registry, prefix string) *TransferRecorder {
	return &TransferRecorder{
		transfers: r.CounterVec(prefix+"_transfers_total",
			"Transfers by direction and outcome.", "direction", "outcome"),
		bytes: r.CounterVec(prefix+"_bytes_total",
			"Payload bytes moved by direction.", "direction"),
		streams: r.Histogram(prefix+"_streams",
			"Parallel TCP streams used per transfer.", streamBuckets),
		stripes: r.Histogram(prefix+"_stripes",
			"Source hosts per striped transfer.", streamBuckets),
		restarts: r.Counter(prefix+"_restarts_total",
			"Transfer attempts beyond the first (reliable-transfer restarts)."),
		crcFails: r.Counter(prefix+"_crc_failures_total",
			"End-to-end CRC-32 verification failures."),
		bandwidth: r.Histogram(prefix+"_bandwidth_mbps",
			"Effective per-transfer bandwidth in Mbps.", bandwidthBuckets),
		inFlight: r.Gauge(prefix+"_in_flight",
			"Transfers currently in progress."),
		resumes: r.Counter(prefix+"_resumes_total",
			"Downloads resumed from a verified partial file."),
		resumedBytes: r.Counter(prefix+"_resumed_bytes_total",
			"Bytes skipped by resuming downloads from a verified prefix."),
		resumeRejected: r.Counter(prefix+"_resume_rejected_total",
			"Partial files whose prefix checksum failed, forcing a full restart."),
	}
}

// Start marks a transfer as in flight and returns a function that records
// the finished sample (and decrements the in-flight gauge).
func (t *TransferRecorder) Start() func(TransferSample) {
	t.inFlight.Inc()
	return func(s TransferSample) {
		t.inFlight.Dec()
		t.Record(s)
	}
}

// Record aggregates one completed (or failed) transfer.
func (t *TransferRecorder) Record(s TransferSample) {
	outcome := "ok"
	if s.Err != nil {
		outcome = "error"
	}
	t.transfers.WithLabelValues(s.Direction, outcome).Inc()
	t.bytes.WithLabelValues(s.Direction).Add(s.Bytes)
	if s.Streams > 0 {
		t.streams.Observe(float64(s.Streams))
	}
	if s.Stripes > 1 {
		t.stripes.Observe(float64(s.Stripes))
	}
	if s.Attempts > 1 {
		t.restarts.Add(int64(s.Attempts - 1))
	}
	if s.Err == nil && s.Bytes > 0 && s.Elapsed > 0 {
		t.bandwidth.Observe(s.RateMbps())
	}
}

// Restart counts one reliable-transfer restart directly (used when the
// restart spans multiple client sessions).
func (t *TransferRecorder) Restart() { t.restarts.Inc() }

// Striped observes the source-host count of one striped transfer whose
// constituent range fetches are recorded individually.
func (t *TransferRecorder) Striped(hosts int) { t.stripes.Observe(float64(hosts)) }

// CRCFailure counts one end-to-end checksum mismatch.
func (t *TransferRecorder) CRCFailure() { t.crcFails.Inc() }

// Resumed records one download resumed from a verified partial file of
// the given length (the bytes the resume did not have to move again).
func (t *TransferRecorder) Resumed(bytes int64) {
	t.resumes.Inc()
	t.resumedBytes.Add(bytes)
}

// ResumeRejected counts a partial file whose prefix checksum did not
// match the source, forcing a restart from byte 0.
func (t *TransferRecorder) ResumeRejected() { t.resumeRejected.Inc() }

// Resumes returns the resumed-download count (test hook).
func (t *TransferRecorder) Resumes() int64 { return t.resumes.Value() }

// ResumedBytes returns the bytes skipped by resumes (test hook).
func (t *TransferRecorder) ResumedBytes() int64 { return t.resumedBytes.Value() }

// Transfers returns the count for a direction/outcome pair (test hook).
func (t *TransferRecorder) Transfers(direction, outcome string) int64 {
	return t.transfers.WithLabelValues(direction, outcome).Value()
}

// Bytes returns the byte count for a direction (test hook).
func (t *TransferRecorder) Bytes(direction string) int64 {
	return t.bytes.WithLabelValues(direction).Value()
}
