package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind tags a registered collector for exposition and for type
// checking on get-or-register lookups.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeVec:
		return "gauge"
	default:
		return "histogram"
	}
}

type entry struct {
	name      string
	help      string
	kind      metricKind
	collector interface{}
}

// Registry holds a set of named collectors and renders them as
// Prometheus-style text. Constructors are get-or-register: asking twice
// for the same name returns the same collector, so independent components
// can share a family without coordination. Requesting an existing name
// with a different kind panics (a programming error, like a duplicate
// registration in Prometheus itself).
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Default is the process-wide registry used when components are not given
// an explicit one; daemons expose it.
var Default = NewRegistry()

func (r *Registry) getOrRegister(name, help string, kind metricKind, mk func() interface{}) interface{} {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: %s already registered as %s", name, e.kind))
		}
		return e.collector
	}
	c := mk()
	r.entries[name] = &entry{name: name, help: help, kind: kind, collector: c}
	return c
}

// Counter returns the registered counter with this name, creating it if
// needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getOrRegister(name, help, kindCounter, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge returns the registered gauge with this name, creating it if
// needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getOrRegister(name, help, kindGauge, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Histogram returns the registered histogram with this name, creating it
// with the given bucket upper bounds if needed (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.getOrRegister(name, help, kindHistogram, func() interface{} { return newHistogram(bounds) }).(*Histogram)
}

// CounterVec returns the registered labeled counter family, creating it
// if needed.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return r.getOrRegister(name, help, kindCounterVec, func() interface{} { return newCounterVec(labels) }).(*CounterVec)
}

// GaugeVec returns the registered labeled gauge family, creating it if
// needed.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return r.getOrRegister(name, help, kindGaugeVec, func() interface{} { return newGaugeVec(labels) }).(*GaugeVec)
}

// HistogramVec returns the registered labeled histogram family, creating
// it with the given bucket bounds if needed (DefBuckets when nil).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.getOrRegister(name, help, kindHistogramVec, func() interface{} { return newHistogramVec(labels, bounds) }).(*HistogramVec)
}

// --- exposition ------------------------------------------------------------

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatFloat renders a float the way Prometheus does (shortest
// round-trip representation, +Inf spelled out).
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// labelString renders {k1="v1",k2="v2"} for a child key, or "" when the
// vector has no labels.
func labelString(names []string, key string) string {
	if len(names) == 0 {
		return ""
	}
	values := strings.Split(key, labelSep)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", n, escapeLabel(values[i]))
	}
	b.WriteByte('}')
	return b.String()
}

// histogramLabelString renders {k1="v1",...,le="bound"}.
func histogramLabelString(names []string, key string, le float64) string {
	var b strings.Builder
	b.WriteByte('{')
	if len(names) > 0 {
		values := strings.Split(key, labelSep)
		for i, n := range names {
			fmt.Fprintf(&b, "%s=\"%s\",", n, escapeLabel(values[i]))
		}
	}
	fmt.Fprintf(&b, "le=\"%s\"}", formatFloat(le))
	return b.String()
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram, names []string, key string) error {
	bounds, counts := h.Snapshot()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, histogramLabelString(names, key, b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// WriteText renders every registered collector in the Prometheus text
// exposition format, sorted by metric name (and label key within a
// family) so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
			return err
		}
		switch c := e.collector.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, c.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, c.Value()); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHistogram(w, e.name, "", c, nil, ""); err != nil {
				return err
			}
		case *CounterVec:
			c.mu.RLock()
			keys := make([]string, 0, len(c.children))
			for k := range c.children {
				keys = append(keys, k)
			}
			children := make(map[string]*Counter, len(c.children))
			for k, v := range c.children {
				children[k] = v
			}
			c.mu.RUnlock()
			sort.Strings(keys)
			for _, k := range keys {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, labelString(c.labels, k), children[k].Value()); err != nil {
					return err
				}
			}
		case *GaugeVec:
			c.mu.RLock()
			keys := make([]string, 0, len(c.children))
			for k := range c.children {
				keys = append(keys, k)
			}
			children := make(map[string]*Gauge, len(c.children))
			for k, v := range c.children {
				children[k] = v
			}
			c.mu.RUnlock()
			sort.Strings(keys)
			for _, k := range keys {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, labelString(c.labels, k), children[k].Value()); err != nil {
					return err
				}
			}
		case *HistogramVec:
			c.mu.RLock()
			keys := make([]string, 0, len(c.children))
			for k := range c.children {
				keys = append(keys, k)
			}
			children := make(map[string]*Histogram, len(c.children))
			for k, v := range c.children {
				children[k] = v
			}
			c.mu.RUnlock()
			sort.Strings(keys)
			for _, k := range keys {
				if err := writeHistogram(w, e.name, labelString(c.labels, k), children[k], c.labels, k); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Text renders WriteText into a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}
