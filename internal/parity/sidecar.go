package parity

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

// Suffix is appended to a data file's path to name its parity sidecar.
const Suffix = ".gdmppar"

// partSuffix stages an in-progress sidecar write; it matches the gridftp
// transfer staging suffix on purpose, so the journal-recovery sweep that
// already quarantines orphaned ".part" debris covers crashed sidecar writes
// too.
const partSuffix = ".part"

// sidecarMagic opens every sidecar file; the trailing byte is the format
// version.
var sidecarMagic = [8]byte{'G', 'D', 'M', 'P', 'P', 'A', 'R', 1}

var (
	// ErrSidecarCorrupt means the sidecar file itself failed validation
	// (bad magic, header checksum, or impossible geometry) and cannot be
	// used for repair.
	ErrSidecarCorrupt = errors.New("parity: sidecar corrupt")

	// ErrTooDamaged means the file cannot be reconstructed locally: more
	// than m blocks are damaged (counting lost parity blocks), or the
	// reconstruction failed its end-to-end CRC check. Callers must fall
	// back to a whole-file re-pull; a partial or unverified rebuild is
	// never returned.
	ErrTooDamaged = errors.New("parity: damage exceeds local repair budget")
)

// Params configures the erasure code: K data blocks protected by M parity
// blocks. The zero value disables parity entirely.
type Params struct {
	K int
	M int
}

// DefaultK and DefaultM are the stock geometry: 8 data blocks + 2 parity
// blocks tolerates any 2-block damage for a 25% space overhead.
const (
	DefaultK = 8
	DefaultM = 2
)

// Enabled reports whether parity sidecars should be generated at all.
func (p Params) Enabled() bool { return p.K > 0 && p.M > 0 }

// Validate rejects geometries the GF(2^8) code cannot express.
func (p Params) Validate() error {
	if !p.Enabled() {
		return nil
	}
	if p.K < 1 || p.M < 1 || p.K+p.M > 255 {
		return fmt.Errorf("parity: invalid geometry k=%d m=%d (need k,m >= 1 and k+m <= 255)", p.K, p.M)
	}
	return nil
}

// SidecarPath names the parity sidecar that lives next to a data file.
func SidecarPath(dataPath string) string { return dataPath + Suffix }

// IsSidecar reports whether a file name is a parity sidecar.
func IsSidecar(name string) bool { return strings.HasSuffix(name, Suffix) }

// Sidecar is the in-memory form of a parity sidecar: the code geometry,
// per-block CRCs for damage localisation, and the parity payload itself.
//
// On disk the layout is little-endian and self-checksummed:
//
//	magic+version  [8]byte  "GDMPPAR\x01"
//	k, m           uint16 each
//	blockSize      uint64
//	dataSize       uint64
//	dataCRC        uint32   IEEE CRC of the whole data file
//	dataCRCs       k × uint32  per-block CRCs over the unpadded byte ranges
//	parityCRCs     m × uint32  per-block CRCs over the parity payload
//	headerCRC      uint32   IEEE CRC of all preceding bytes
//	parity payload m × blockSize bytes
//
// Data block i covers file bytes [i·blockSize, min((i+1)·blockSize, size));
// the last block is zero-padded only for the field arithmetic, never for the
// CRCs, so the per-block CRCs compare directly against a streaming
// block-digest of the raw file.
type Sidecar struct {
	K          int
	M          int
	BlockSize  int64
	DataSize   int64
	DataCRC    uint32
	DataCRCs   []uint32
	ParityCRCs []uint32
	Parity     [][]byte
}

// Create computes the parity sidecar for a file's content. The content must
// be non-empty: zero-byte files have nothing to protect and callers skip
// them.
func Create(data []byte, k, m int) (*Sidecar, error) {
	p := Params{K: k, M: m}
	if !p.Enabled() {
		return nil, errors.New("parity: Create called with parity disabled")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, errors.New("parity: cannot protect an empty file")
	}
	size := int64(len(data))
	bs := (size + int64(k) - 1) / int64(k)
	sc := &Sidecar{
		K:          k,
		M:          m,
		BlockSize:  bs,
		DataSize:   size,
		DataCRC:    crc32.ChecksumIEEE(data),
		DataCRCs:   make([]uint32, k),
		ParityCRCs: make([]uint32, m),
		Parity:     make([][]byte, m),
	}
	shards := dataShards(data, k, bs)
	for i, sh := range shards {
		sc.DataCRCs[i] = crc32.ChecksumIEEE(sh[:blockLen(i, bs, size)])
	}
	mat := codingMatrix(k, m)
	for r := 0; r < m; r++ {
		out := make([]byte, bs)
		for c := 0; c < k; c++ {
			gfMulSlice(mat[k+r][c], shards[c], out)
		}
		sc.Parity[r] = out
		sc.ParityCRCs[r] = crc32.ChecksumIEEE(out)
	}
	return sc, nil
}

// CreateFile is Create over a file on disk.
func CreateFile(dataPath string, k, m int) (*Sidecar, error) {
	data, err := os.ReadFile(dataPath)
	if err != nil {
		return nil, err
	}
	return Create(data, k, m)
}

// dataShards slices data into k shards of bs bytes, zero-padding the tail.
func dataShards(data []byte, k int, bs int64) [][]byte {
	shards := make([][]byte, k)
	for i := 0; i < k; i++ {
		sh := make([]byte, bs)
		off := int64(i) * bs
		if off < int64(len(data)) {
			copy(sh, data[off:])
		}
		shards[i] = sh
	}
	return shards
}

// blockLen is the unpadded length of data block i.
func blockLen(i int, bs, size int64) int64 {
	off := int64(i) * bs
	if off >= size {
		return 0
	}
	if off+bs > size {
		return size - off
	}
	return bs
}

// encode renders the sidecar to its on-disk byte form.
func (sc *Sidecar) encode() []byte {
	var buf bytes.Buffer
	buf.Write(sidecarMagic[:])
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(sc.K))
	buf.Write(tmp[:2])
	binary.LittleEndian.PutUint16(tmp[:2], uint16(sc.M))
	buf.Write(tmp[:2])
	binary.LittleEndian.PutUint64(tmp[:], uint64(sc.BlockSize))
	buf.Write(tmp[:])
	binary.LittleEndian.PutUint64(tmp[:], uint64(sc.DataSize))
	buf.Write(tmp[:])
	binary.LittleEndian.PutUint32(tmp[:4], sc.DataCRC)
	buf.Write(tmp[:4])
	for _, c := range sc.DataCRCs {
		binary.LittleEndian.PutUint32(tmp[:4], c)
		buf.Write(tmp[:4])
	}
	for _, c := range sc.ParityCRCs {
		binary.LittleEndian.PutUint32(tmp[:4], c)
		buf.Write(tmp[:4])
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(tmp[:4])
	for _, sh := range sc.Parity {
		buf.Write(sh)
	}
	return buf.Bytes()
}

// WriteFile persists the sidecar atomically (stage to ".part", fsync,
// rename) and returns the hex CRC of the sidecar file itself, which the
// caller journals so recovery can tell a current sidecar from a stale one.
func (sc *Sidecar) WriteFile(path string) (string, error) {
	enc := sc.encode()
	tmp := path + partSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(enc)), nil
}

// Load reads and validates a sidecar file. It checks the magic, the header
// checksum, the geometry, and the payload length; per-parity-block CRCs are
// deliberately NOT enforced here — Rebuild treats a rotted parity block as
// one more erasure rather than giving up on the whole sidecar. The returned
// hex CRC is of the entire file, for comparison against the journalled
// value.
func Load(path string) (*Sidecar, string, error) {
	enc, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	fileCRC := fmt.Sprintf("%08x", crc32.ChecksumIEEE(enc))
	const fixed = 8 + 2 + 2 + 8 + 8 + 4 // magic..dataCRC
	if len(enc) < fixed+4 || !bytes.Equal(enc[:8], sidecarMagic[:]) {
		return nil, fileCRC, ErrSidecarCorrupt
	}
	k := int(binary.LittleEndian.Uint16(enc[8:10]))
	m := int(binary.LittleEndian.Uint16(enc[10:12]))
	if err := (Params{K: k, M: m}).Validate(); err != nil || k == 0 || m == 0 {
		return nil, fileCRC, ErrSidecarCorrupt
	}
	headerLen := fixed + 4*(k+m) + 4
	if len(enc) < headerLen {
		return nil, fileCRC, ErrSidecarCorrupt
	}
	gotSum := binary.LittleEndian.Uint32(enc[headerLen-4 : headerLen])
	if crc32.ChecksumIEEE(enc[:headerLen-4]) != gotSum {
		return nil, fileCRC, ErrSidecarCorrupt
	}
	sc := &Sidecar{
		K:          k,
		M:          m,
		BlockSize:  int64(binary.LittleEndian.Uint64(enc[12:20])),
		DataSize:   int64(binary.LittleEndian.Uint64(enc[20:28])),
		DataCRC:    binary.LittleEndian.Uint32(enc[28:32]),
		DataCRCs:   make([]uint32, k),
		ParityCRCs: make([]uint32, m),
		Parity:     make([][]byte, m),
	}
	wantBS := (sc.DataSize + int64(k) - 1) / int64(k)
	if sc.DataSize <= 0 || sc.BlockSize != wantBS {
		return nil, fileCRC, ErrSidecarCorrupt
	}
	off := fixed
	for i := 0; i < k; i++ {
		sc.DataCRCs[i] = binary.LittleEndian.Uint32(enc[off : off+4])
		off += 4
	}
	for i := 0; i < m; i++ {
		sc.ParityCRCs[i] = binary.LittleEndian.Uint32(enc[off : off+4])
		off += 4
	}
	payload := enc[headerLen:]
	if int64(len(payload)) != int64(m)*sc.BlockSize {
		return nil, fileCRC, ErrSidecarCorrupt
	}
	for i := 0; i < m; i++ {
		sc.Parity[i] = payload[int64(i)*sc.BlockSize : int64(i+1)*sc.BlockSize]
	}
	return sc, fileCRC, nil
}

// DamagedBlocks compares a streaming per-block digest of the data file (as
// produced by scrub.BlockCRC32File with this sidecar's BlockSize) against
// the recorded per-block CRCs and returns the damaged data-block indices.
// A short digest slice marks every missing tail block damaged.
func (sc *Sidecar) DamagedBlocks(blockCRCs []uint32) []int {
	var bad []int
	for i := 0; i < sc.K; i++ {
		if blockLen(i, sc.BlockSize, sc.DataSize) == 0 {
			// Degenerate geometry (more blocks than bytes): block i
			// holds no data and cannot be damaged.
			continue
		}
		if i >= len(blockCRCs) || blockCRCs[i] != sc.DataCRCs[i] {
			bad = append(bad, i)
		}
	}
	return bad
}

// Rebuild reconstructs the original file content from the (possibly
// damaged) on-disk bytes plus the sidecar's parity blocks. It localises the
// damage itself from the per-block CRCs, counts rotted parity blocks as
// erasures, and refuses (ErrTooDamaged) whenever more than M blocks are
// gone or the reconstruction fails its end-to-end CRC — a wrong "repair" is
// never returned. On success it returns the verified content plus the
// indices of the data blocks it rebuilt.
func (sc *Sidecar) Rebuild(data []byte) ([]byte, []int, error) {
	k, m, bs := sc.K, sc.M, sc.BlockSize
	if int64(len(data)) > sc.DataSize {
		// Grown files are not bit-rot; nothing sane to rebuild.
		return nil, nil, fmt.Errorf("%w: file grew past recorded size", ErrTooDamaged)
	}
	shards := dataShards(data, k, bs)
	var missing []int
	for i := 0; i < k; i++ {
		bl := blockLen(i, bs, sc.DataSize)
		if bl == 0 {
			continue
		}
		ok := int64(len(data)) >= int64(i)*bs+bl &&
			crc32.ChecksumIEEE(shards[i][:bl]) == sc.DataCRCs[i]
		if !ok {
			shards[i] = nil
			missing = append(missing, i)
		}
	}
	erasures := len(missing)
	parityOK := make([]bool, m)
	for r := 0; r < m; r++ {
		parityOK[r] = crc32.ChecksumIEEE(sc.Parity[r]) == sc.ParityCRCs[r]
		if !parityOK[r] {
			erasures++
		}
	}
	if erasures > m {
		return nil, nil, fmt.Errorf("%w: %d damaged blocks > %d parity blocks", ErrTooDamaged, erasures, m)
	}
	if len(missing) > 0 {
		if err := sc.reconstruct(shards, parityOK); err != nil {
			return nil, nil, err
		}
	}
	out := make([]byte, 0, sc.DataSize)
	for i := 0; i < k; i++ {
		bl := blockLen(i, bs, sc.DataSize)
		if bl > 0 {
			out = append(out, shards[i][:bl]...)
		}
	}
	if crc32.ChecksumIEEE(out) != sc.DataCRC {
		return nil, nil, fmt.Errorf("%w: rebuilt content failed end-to-end CRC", ErrTooDamaged)
	}
	return out, missing, nil
}

// reconstruct fills the nil entries of shards in place using the surviving
// data shards plus the healthy parity shards. The decode matrix is the
// inverse of the k surviving rows of the coding matrix.
func (sc *Sidecar) reconstruct(shards [][]byte, parityOK []bool) error {
	k, bs := sc.K, sc.BlockSize
	mat := codingMatrix(k, sc.M)
	rows := make([]int, 0, k)      // coding-matrix row index of each input
	inputs := make([][]byte, 0, k) // the surviving shard for that row
	for i := 0; i < k && len(rows) < k; i++ {
		if shards[i] != nil {
			rows = append(rows, i)
			inputs = append(inputs, shards[i])
		}
	}
	for r := 0; r < sc.M && len(rows) < k; r++ {
		if parityOK[r] {
			rows = append(rows, k+r)
			inputs = append(inputs, sc.Parity[r])
		}
	}
	if len(rows) < k {
		return fmt.Errorf("%w: only %d healthy blocks, need %d", ErrTooDamaged, len(rows), k)
	}
	sub := make(matrix, k)
	for i, r := range rows {
		sub[i] = mat[r]
	}
	dec, singular := sub.invert()
	if singular {
		// Cannot happen with the Vandermonde-derived coding matrix; treat
		// it as damage rather than panicking on corrupt input.
		return fmt.Errorf("%w: singular decode matrix", ErrTooDamaged)
	}
	for i := 0; i < k; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, bs)
		for c := 0; c < k; c++ {
			gfMulSlice(dec[i][c], inputs[c], out)
		}
		shards[i] = out
	}
	return nil
}
