// Package parity implements the erasure-coded local-repair layer: a pure-Go
// systematic Reed-Solomon codec over GF(2^8) plus the checksummed parity
// sidecar written next to every published or pool-landed file. The scrubber
// uses a sidecar to rebuild up to m damaged blocks from the k surviving data
// blocks and m parity blocks without contacting any peer — the par2cron
// pattern from ROADMAP item 4 — and falls back to a WAN re-pull only when
// damage exceeds the parity budget or the sidecar itself is corrupt.
package parity

// GF(2^8) arithmetic with the AES-adjacent primitive polynomial x^8 + x^4 +
// x^3 + x^2 + 1 (0x11d), the polynomial every RS storage codec uses.
// Multiplication goes through exp/log tables; the exp table is doubled so
// gfMul needs no modular reduction of the summed logs.

const gfPoly = 0x11d

var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x >= 256 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("parity: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

func gfInv(a byte) byte {
	return gfDiv(1, a)
}

// gfMulSlice accumulates c*in into out (out[i] ^= c*in[i]) — the inner loop
// of both encoding and reconstruction.
func gfMulSlice(c byte, in, out []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, v := range in {
			out[i] ^= v
		}
		return
	}
	logC := int(gfLog[c])
	for i, v := range in {
		if v != 0 {
			out[i] ^= gfExp[logC+int(gfLog[v])]
		}
	}
}

// matrix is a dense byte matrix over GF(2^8), rows × cols.
type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	for i := range m {
		m[i] = make([]byte, cols)
	}
	return m
}

// identityMatrix returns the n×n identity.
func identityMatrix(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// mul returns a×b.
func (a matrix) mul(b matrix) matrix {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for k := 0; k < inner; k++ {
			c := a[r][k]
			if c == 0 {
				continue
			}
			logC := int(gfLog[c])
			for j := 0; j < cols; j++ {
				if v := b[k][j]; v != 0 {
					out[r][j] ^= gfExp[logC+int(gfLog[v])]
				}
			}
		}
	}
	return out
}

// invert returns the inverse of a square matrix via Gauss-Jordan
// elimination, or singular=true when no inverse exists.
func (a matrix) invert() (matrix, bool) {
	n := len(a)
	work := newMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work[i], a[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, true
		}
		work[col], work[pivot] = work[pivot], work[col]
		if inv := gfInv(work[col][col]); inv != 1 {
			for j := 0; j < 2*n; j++ {
				work[col][j] = gfMul(work[col][j], inv)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			c := work[r][col]
			for j := 0; j < 2*n; j++ {
				work[r][j] ^= gfMul(c, work[col][j])
			}
		}
	}
	out := make(matrix, n)
	for i := 0; i < n; i++ {
		out[i] = work[i][n : 2*n]
	}
	return out, false
}

// codingMatrix builds the systematic (k+m)×k encoding matrix: a Vandermonde
// matrix row-reduced so the top k×k block is the identity. The Vandermonde
// property survives the reduction, so every k×k submatrix formed from any k
// of the k+m rows is invertible — which is exactly what lets reconstruction
// pick an arbitrary set of k surviving blocks.
func codingMatrix(k, m int) matrix {
	vand := newMatrix(k+m, k)
	for r := 0; r < k+m; r++ {
		e := byte(1)
		for c := 0; c < k; c++ {
			vand[r][c] = e
			e = gfMul(e, byte(r+1))
		}
	}
	top := make(matrix, k)
	copy(top, vand[:k])
	inv, singular := top.invert()
	if singular {
		// Cannot happen: a k×k Vandermonde matrix with distinct
		// evaluation points 1..k is always invertible.
		panic("parity: singular Vandermonde top block")
	}
	return vand.mul(inv)
}
