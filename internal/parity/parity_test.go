package parity

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// damage flips one bit somewhere inside each of the chosen data blocks.
func damage(data []byte, sc *Sidecar, blocks []int, rng *rand.Rand) {
	for _, b := range blocks {
		off := int64(b) * sc.BlockSize
		bl := blockLen(b, sc.BlockSize, sc.DataSize)
		data[off+rng.Int63n(bl)] ^= 1 << uint(rng.Intn(8))
	}
}

// pickBlocks chooses n distinct data-block indices that actually hold bytes.
func pickBlocks(sc *Sidecar, n int, rng *rand.Rand) []int {
	var nonEmpty []int
	for i := 0; i < sc.K; i++ {
		if blockLen(i, sc.BlockSize, sc.DataSize) > 0 {
			nonEmpty = append(nonEmpty, i)
		}
	}
	rng.Shuffle(len(nonEmpty), func(i, j int) { nonEmpty[i], nonEmpty[j] = nonEmpty[j], nonEmpty[i] })
	if n > len(nonEmpty) {
		n = len(nonEmpty)
	}
	return nonEmpty[:n]
}

// TestRebuildRoundTripProperty: for random geometry and content, ANY damage
// to at most m data blocks round-trips back to the original bytes.
func TestRebuildRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		size := 1 + rng.Intn(64<<10)
		orig := make([]byte, size)
		rng.Read(orig)
		sc, err := Create(orig, k, m)
		if err != nil {
			t.Logf("seed %d: Create: %v", seed, err)
			return false
		}
		corrupt := append([]byte(nil), orig...)
		n := 1 + rng.Intn(m)
		hit := pickBlocks(sc, n, rng)
		damage(corrupt, sc, hit, rng)
		fixed, rebuilt, err := sc.Rebuild(corrupt)
		if err != nil {
			t.Logf("seed %d (k=%d m=%d size=%d damaged=%v): Rebuild: %v", seed, k, m, size, hit, err)
			return false
		}
		if !bytes.Equal(fixed, orig) {
			t.Logf("seed %d: rebuilt content differs from original", seed)
			return false
		}
		if len(rebuilt) != len(hit) {
			t.Logf("seed %d: rebuilt %d blocks, damaged %d", seed, len(rebuilt), len(hit))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOverBudgetDamageNeverSilentlyRepaired: damage to more than m blocks is
// always detected — Rebuild must error, never hand back wrong bytes.
func TestOverBudgetDamageNeverSilentlyRepaired(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		size := k*512 + rng.Intn(32<<10) // enough bytes that m+1 blocks exist
		orig := make([]byte, size)
		rng.Read(orig)
		sc, err := Create(orig, k, m)
		if err != nil {
			t.Logf("seed %d: Create: %v", seed, err)
			return false
		}
		corrupt := append([]byte(nil), orig...)
		hit := pickBlocks(sc, m+1, rng)
		if len(hit) <= m {
			return true // geometry collapsed below m+1 usable blocks; vacuous
		}
		damage(corrupt, sc, hit, rng)
		fixed, _, err := sc.Rebuild(corrupt)
		if err == nil {
			// Only acceptable if the "repair" is in fact the original —
			// e.g. two bit flips cancelling is impossible here (distinct
			// blocks), so this is a real failure.
			if !bytes.Equal(fixed, orig) {
				t.Logf("seed %d: over-budget damage silently mis-repaired", seed)
				return false
			}
		}
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestParityBlockRotCountsAsErasure: one rotted parity block plus m-1
// damaged data blocks still rebuilds; plus m damaged data blocks must fail.
func TestParityBlockRotCountsAsErasure(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	orig := make([]byte, 40_000)
	rng.Read(orig)
	sc, err := Create(orig, DefaultK, DefaultM)
	if err != nil {
		t.Fatal(err)
	}
	sc.Parity[0][7] ^= 0xff // rot one parity block

	corrupt := append([]byte(nil), orig...)
	damage(corrupt, sc, []int{3}, rng) // m-1 = 1 data block
	fixed, _, err := sc.Rebuild(corrupt)
	if err != nil || !bytes.Equal(fixed, orig) {
		t.Fatalf("1 parity + 1 data erasure should rebuild: %v", err)
	}

	corrupt = append([]byte(nil), orig...)
	damage(corrupt, sc, []int{1, 5}, rng) // m = 2 data blocks + 1 parity = 3 erasures
	if _, _, err := sc.Rebuild(corrupt); err == nil {
		t.Fatal("3 erasures with m=2 must not rebuild")
	}
}

func TestSidecarFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	orig := make([]byte, 12_345)
	rng.Read(orig)
	sc, err := Create(orig, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f.dat"+Suffix)
	crcHex, err := sc.WriteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, gotCRC, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotCRC != crcHex {
		t.Fatalf("file CRC mismatch: wrote %s, loaded %s", crcHex, gotCRC)
	}
	if got.K != sc.K || got.M != sc.M || got.BlockSize != sc.BlockSize ||
		got.DataSize != sc.DataSize || got.DataCRC != sc.DataCRC {
		t.Fatalf("header mismatch: %+v vs %+v", got, sc)
	}
	for i := range sc.Parity {
		if !bytes.Equal(got.Parity[i], sc.Parity[i]) {
			t.Fatalf("parity shard %d mismatch", i)
		}
	}
	if _, err := os.Stat(path + partSuffix); !os.IsNotExist(err) {
		t.Fatalf("staging file left behind: %v", err)
	}
}

// TestLoadRejectsCorruptHeader: a bit flip anywhere in the header makes Load
// fail with ErrSidecarCorrupt rather than yielding a bogus sidecar.
func TestLoadRejectsCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	orig := make([]byte, 9_000)
	rng.Read(orig)
	sc, err := Create(orig, DefaultK, DefaultM)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f"+Suffix)
	if _, err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := 8 + 2 + 2 + 8 + 8 + 4 + 4*(sc.K+sc.M) + 4
	for _, off := range []int{0, 9, 13, 21, 29, headerLen - 2} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path); err == nil {
			t.Fatalf("corrupt header byte %d accepted", off)
		}
	}
	// Truncated payload must also be rejected.
	if err := os.WriteFile(path, enc[:len(enc)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("truncated parity payload accepted")
	}
}

// TestRebuildTruncatedFile: losing the file's tail (a torn write) is block
// damage like any other, repairable while within budget.
func TestRebuildTruncatedFile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	orig := make([]byte, 20_000)
	rng.Read(orig)
	sc, err := Create(orig, DefaultK, DefaultM) // blockSize 2500
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last two blocks: 2 erasures, exactly the budget.
	fixed, rebuilt, err := sc.Rebuild(orig[:16_000])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, orig) {
		t.Fatal("truncated file not restored")
	}
	if len(rebuilt) != 2 {
		t.Fatalf("expected 2 rebuilt blocks, got %v", rebuilt)
	}
	// Cutting three blocks exceeds the budget.
	if _, _, err := sc.Rebuild(orig[:12_000]); err == nil {
		t.Fatal("3-block truncation must not rebuild with m=2")
	}
}

func TestDamagedBlocksMatchesDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := make([]byte, 10_000)
	rng.Read(orig)
	sc, err := Create(orig, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), orig...)
	damage(corrupt, sc, []int{2}, rng)
	crcs := make([]uint32, sc.K)
	for i := 0; i < sc.K; i++ {
		off := int64(i) * sc.BlockSize
		crcs[i] = crc32.ChecksumIEEE(corrupt[off : off+blockLen(i, sc.BlockSize, sc.DataSize)])
	}
	bad := sc.DamagedBlocks(crcs)
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("expected damaged=[2], got %v", bad)
	}
}
