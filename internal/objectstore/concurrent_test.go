package objectstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestFederationConcurrentReaders: lookups, navigation, and scans from many
// goroutines against a shared federation must be safe and consistent.
func TestFederationConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	const dbs = 4
	for i := uint32(1); i <= dbs; i++ {
		cross := i + 1
		if cross > dbs {
			cross = 0
		}
		buildDB(t, filepath.Join(dir, fmt.Sprintf("c%d.odb", i)), i, 20, 64, cross)
	}
	fed := NewFederation()
	defer fed.Close()
	for i := uint32(1); i <= dbs; i++ {
		if _, err := fed.Attach(filepath.Join(dir, fmt.Sprintf("c%d.odb", i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				oid := OID{DB: uint32(g%dbs) + 1, Slot: uint32(i%20) + 1}
				obj, err := fed.Lookup(oid)
				if err != nil {
					errs <- fmt.Errorf("lookup %v: %w", oid, err)
					return
				}
				if obj.Event != uint64(oid.Slot) {
					errs <- fmt.Errorf("object %v has event %d", oid, obj.Event)
					return
				}
				if len(obj.Assocs) > 0 {
					if _, err := fed.Navigate(oid, 0); err != nil {
						errs <- fmt.Errorf("navigate %v: %w", oid, err)
						return
					}
				}
			}
			count := 0
			if err := fed.Scan(func(m Meta) bool { count++; return true }); err != nil {
				errs <- err
				return
			}
			if count != dbs*20 {
				errs <- fmt.Errorf("scan saw %d objects", count)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
