package objectstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Database file layout (all integers big-endian):
//
//	header:  magic[8] | dbid u32 | count u32 | indexOff u64 | indexCRC u32
//	data:    concatenated object payloads
//	index:   per object: slot u32 | event u64 | typeLen u16 | type |
//	         nAssoc u16 | (db u32, slot u32)* | dataOff u64 | dataLen u32
//
// The header is written last (patched in place), so a crashed writer leaves
// a file that fails to open rather than one that reads garbage. The index
// CRC detects on-disk corruption beyond what the filesystem reports.

var dbMagic = [8]byte{'G', 'D', 'M', 'P', 'O', 'D', 'B', '1'}

const dbHeaderLen = 8 + 4 + 4 + 8 + 4

// Errors returned by database file operations.
var (
	ErrNotDatabase  = errors.New("objectstore: not a database file")
	ErrCorrupt      = errors.New("objectstore: corrupt database file")
	ErrNoObject     = errors.New("objectstore: no such object")
	ErrWriterClosed = errors.New("objectstore: writer already closed")
	ErrDuplicate    = errors.New("objectstore: duplicate slot")
)

// Writer creates a new database file. Objects are appended and become
// immutable once Close succeeds (read-only persistency).
type Writer struct {
	f      *os.File
	w      *bufio.Writer
	dbid   uint32
	offset int64
	metas  []Meta
	slots  map[uint32]bool
	closed bool
}

// Create starts a new database file with the given id.
func Create(path string, dbid uint32) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, w: bufio.NewWriter(f), dbid: dbid, slots: make(map[uint32]bool)}
	// Reserve header space; patched on Close.
	if _, err := w.w.Write(make([]byte, dbHeaderLen)); err != nil {
		f.Close()
		return nil, err
	}
	w.offset = dbHeaderLen
	return w, nil
}

// DBID returns the database id being written.
func (w *Writer) DBID() uint32 { return w.dbid }

// Add appends one object. The object's OID.DB must match the writer's id
// (or be zero, in which case it is stamped); slots must be unique.
func (w *Writer) Add(obj *Object) error {
	if w.closed {
		return ErrWriterClosed
	}
	if obj.OID.DB != 0 && obj.OID.DB != w.dbid {
		return fmt.Errorf("objectstore: object %v belongs to db %d, writer is db %d",
			obj.OID, obj.OID.DB, w.dbid)
	}
	if w.slots[obj.OID.Slot] {
		return fmt.Errorf("%w: %d", ErrDuplicate, obj.OID.Slot)
	}
	w.slots[obj.OID.Slot] = true
	if _, err := w.w.Write(obj.Data); err != nil {
		return err
	}
	w.metas = append(w.metas, Meta{
		OID:    OID{DB: w.dbid, Slot: obj.OID.Slot},
		Type:   obj.Type,
		Event:  obj.Event,
		Assocs: append([]OID(nil), obj.Assocs...),
		Size:   int64(len(obj.Data)),
	})
	w.metas[len(w.metas)-1].OID.Slot = obj.OID.Slot
	w.offset += int64(len(obj.Data))
	return nil
}

// Close writes the index and header and syncs the file.
func (w *Writer) Close() error {
	if w.closed {
		return ErrWriterClosed
	}
	w.closed = true

	index := encodeIndex(w.metas, dbHeaderLen)
	if _, err := w.w.Write(index); err != nil {
		w.f.Close()
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}

	var hdr [dbHeaderLen]byte
	copy(hdr[:8], dbMagic[:])
	binary.BigEndian.PutUint32(hdr[8:12], w.dbid)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(w.metas)))
	binary.BigEndian.PutUint64(hdr[16:24], uint64(w.offset))
	binary.BigEndian.PutUint32(hdr[24:28], crc32.ChecksumIEEE(index))
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// encodeIndex serializes the object index. Data offsets are computed from
// the running payload layout starting at base.
func encodeIndex(metas []Meta, base int64) []byte {
	var buf []byte
	u16 := func(v uint16) { buf = binary.BigEndian.AppendUint16(buf, v) }
	u32 := func(v uint32) { buf = binary.BigEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.BigEndian.AppendUint64(buf, v) }
	off := base
	for _, m := range metas {
		u32(m.OID.Slot)
		u64(m.Event)
		u16(uint16(len(m.Type)))
		buf = append(buf, m.Type...)
		u16(uint16(len(m.Assocs)))
		for _, a := range m.Assocs {
			u32(a.DB)
			u32(a.Slot)
		}
		u64(uint64(off))
		u32(uint32(m.Size))
		off += m.Size
	}
	return buf
}

// DB is an open, read-only database file.
type DB struct {
	f      *os.File
	dbid   uint32
	metas  []Meta
	bySlot map[uint32]int
	starts map[uint32]int64 // slot -> payload offset
}

// Open reads and validates a database file's header and index.
func Open(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	db, err := openFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

func openFile(f *os.File) (*DB, error) {
	var hdr [dbHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrNotDatabase)
	}
	if [8]byte(hdr[:8]) != dbMagic {
		return nil, ErrNotDatabase
	}
	dbid := binary.BigEndian.Uint32(hdr[8:12])
	count := binary.BigEndian.Uint32(hdr[12:16])
	indexOff := int64(binary.BigEndian.Uint64(hdr[16:24]))
	indexCRC := binary.BigEndian.Uint32(hdr[24:28])

	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if indexOff < dbHeaderLen || indexOff > info.Size() {
		return nil, fmt.Errorf("%w: bad index offset", ErrCorrupt)
	}
	index := make([]byte, info.Size()-indexOff)
	if _, err := f.ReadAt(index, indexOff); err != nil {
		return nil, fmt.Errorf("%w: read index: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(index) != indexCRC {
		return nil, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}

	db := &DB{
		f:      f,
		dbid:   dbid,
		bySlot: make(map[uint32]int, count),
		starts: make(map[uint32]int64, count),
	}
	pos := 0
	fail := func(what string) (*DB, error) {
		return nil, fmt.Errorf("%w: truncated index (%s)", ErrCorrupt, what)
	}
	need := func(n int) bool { return pos+n <= len(index) }
	for i := uint32(0); i < count; i++ {
		if !need(4 + 8 + 2) {
			return fail("entry header")
		}
		slot := binary.BigEndian.Uint32(index[pos:])
		pos += 4
		event := binary.BigEndian.Uint64(index[pos:])
		pos += 8
		typeLen := int(binary.BigEndian.Uint16(index[pos:]))
		pos += 2
		if !need(typeLen + 2) {
			return fail("type")
		}
		typ := string(index[pos : pos+typeLen])
		pos += typeLen
		nAssoc := int(binary.BigEndian.Uint16(index[pos:]))
		pos += 2
		if !need(nAssoc*8 + 8 + 4) {
			return fail("assocs")
		}
		assocs := make([]OID, nAssoc)
		for j := 0; j < nAssoc; j++ {
			assocs[j] = OID{
				DB:   binary.BigEndian.Uint32(index[pos:]),
				Slot: binary.BigEndian.Uint32(index[pos+4:]),
			}
			pos += 8
		}
		dataOff := int64(binary.BigEndian.Uint64(index[pos:]))
		pos += 8
		dataLen := int64(binary.BigEndian.Uint32(index[pos:]))
		pos += 4
		if dataOff < dbHeaderLen || dataOff+dataLen > indexOff {
			return nil, fmt.Errorf("%w: object %d data out of bounds", ErrCorrupt, slot)
		}
		if _, dup := db.bySlot[slot]; dup {
			return nil, fmt.Errorf("%w: duplicate slot %d", ErrCorrupt, slot)
		}
		db.bySlot[slot] = len(db.metas)
		db.starts[slot] = dataOff
		db.metas = append(db.metas, Meta{
			OID:    OID{DB: dbid, Slot: slot},
			Type:   typ,
			Event:  event,
			Assocs: assocs,
			Size:   dataLen,
		})
	}
	if pos != len(index) {
		return nil, fmt.Errorf("%w: trailing index bytes", ErrCorrupt)
	}
	return db, nil
}

// Close releases the file handle.
func (db *DB) Close() error { return db.f.Close() }

// DBID returns the database id.
func (db *DB) DBID() uint32 { return db.dbid }

// Len returns the number of objects.
func (db *DB) Len() int { return len(db.metas) }

// Metas returns the index entries (shared slice; treat as read-only).
func (db *DB) Metas() []Meta { return db.metas }

// Meta returns one object's index entry.
func (db *DB) Meta(slot uint32) (Meta, error) {
	i, ok := db.bySlot[slot]
	if !ok {
		return Meta{}, fmt.Errorf("%w: %d:%d", ErrNoObject, db.dbid, slot)
	}
	return db.metas[i], nil
}

// Read loads one object, payload included.
func (db *DB) Read(slot uint32) (*Object, error) {
	m, err := db.Meta(slot)
	if err != nil {
		return nil, err
	}
	data := make([]byte, m.Size)
	if _, err := db.f.ReadAt(data, db.starts[slot]); err != nil {
		return nil, fmt.Errorf("objectstore: read %v: %w", m.OID, err)
	}
	return &Object{OID: m.OID, Type: m.Type, Event: m.Event, Assocs: m.Assocs, Data: data}, nil
}

// ForeignDBs returns the set of other database ids referenced by this
// file's associations — the "associated files" that must be co-replicated
// to preserve navigation (Section 2.1).
func (db *DB) ForeignDBs() []uint32 {
	seen := make(map[uint32]bool)
	for _, m := range db.metas {
		for _, a := range m.Assocs {
			if a.DB != db.dbid {
				seen[a.DB] = true
			}
		}
	}
	out := make([]uint32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sortUint32(out)
	return out
}

func sortUint32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TotalBytes returns the sum of payload sizes.
func (db *DB) TotalBytes() int64 {
	var n int64
	for _, m := range db.metas {
		n += m.Size
	}
	return n
}
