// Package objectstore is the object persistency layer of the paper's data
// model (Section 2.1), standing in for Objectivity/DB. It provides:
//
//   - database files that each hold many persistent objects — the paper is
//     explicit that one object per file would not scale, since experiments
//     store 10^7..10^9+ objects;
//   - a federation: the site-local catalog of attached database files, with
//     the attach operation GDMP performs as its Objectivity-specific
//     post-processing step ("attach a database file to a local federation
//     and thus insert it to an internal file catalog");
//   - object identifiers that encode their database, so the object-to-file
//     mapping of Figure 1 is structural, as in Objectivity;
//   - navigational associations between objects, possibly crossing files.
//     If an association's target database is not attached locally,
//     navigation fails — precisely the hazard that forces GDMP to treat
//     such files as "associated files" and replicate them together;
//   - read-only semantics after creation, the property Section 2.1 says
//     most HEP objects can be given via versioning, and which the object
//     replication service requires outright.
package objectstore

import (
	"fmt"
	"strconv"
	"strings"
)

// OID identifies a persistent object: the database file that owns it and
// its slot within that database. Because the database id is part of the
// identifier, the object-to-file catalog of Figure 1 reduces to the
// federation's db-to-file map, exactly as in Objectivity.
type OID struct {
	DB   uint32
	Slot uint32
}

// String renders the OID as "db:slot".
func (o OID) String() string {
	return fmt.Sprintf("%d:%d", o.DB, o.Slot)
}

// IsZero reports whether the OID is the zero value (no object).
func (o OID) IsZero() bool { return o.DB == 0 && o.Slot == 0 }

// ParseOID parses the "db:slot" form.
func ParseOID(s string) (OID, error) {
	dbStr, slotStr, ok := strings.Cut(s, ":")
	if !ok {
		return OID{}, fmt.Errorf("objectstore: bad OID %q", s)
	}
	db, err := strconv.ParseUint(dbStr, 10, 32)
	if err != nil {
		return OID{}, fmt.Errorf("objectstore: bad OID db in %q", s)
	}
	slot, err := strconv.ParseUint(slotStr, 10, 32)
	if err != nil {
		return OID{}, fmt.Errorf("objectstore: bad OID slot in %q", s)
	}
	return OID{DB: uint32(db), Slot: uint32(slot)}, nil
}

// Object is one persistent, read-only-after-creation object.
type Object struct {
	OID OID

	// Type labels the object's role in the event model: the paper's
	// examples range from small tag objects (~100 bytes) used by early
	// analysis cuts to 10 MB raw-data objects read only at the end.
	Type string

	// Event is the physics event number this object belongs to. Every
	// event has a unique number and a set of objects of various types.
	Event uint64

	// Assocs are navigational associations to other objects, possibly in
	// other database files.
	Assocs []OID

	// Data is the payload.
	Data []byte
}

// Meta is the index entry for an object: everything except the payload.
type Meta struct {
	OID    OID
	Type   string
	Event  uint64
	Assocs []OID
	Size   int64
}
