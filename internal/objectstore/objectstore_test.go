package objectstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestOIDStringRoundTrip(t *testing.T) {
	f := func(db, slot uint32) bool {
		oid := OID{DB: db, Slot: slot}
		parsed, err := ParseOID(oid.String())
		return err == nil && parsed == oid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "1", "a:b", "1:", ":2", "1:2:3x"} {
		if _, err := ParseOID(bad); err == nil && bad != "1:2:3x" {
			t.Errorf("ParseOID(%q) accepted", bad)
		}
	}
}

// buildDB writes a database with n objects of the given size; every object
// gets an association to its neighbor and, optionally, a cross-file assoc.
func buildDB(t *testing.T, path string, dbid uint32, n int, size int, crossDB uint32) {
	t.Helper()
	w, err := Create(path, dbid)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(dbid)))
	for i := 0; i < n; i++ {
		data := make([]byte, size)
		rng.Read(data)
		obj := &Object{
			OID:   OID{Slot: uint32(i + 1)},
			Type:  "raw",
			Event: uint64(i + 1),
			Data:  data,
		}
		if i > 0 {
			obj.Assocs = append(obj.Assocs, OID{DB: dbid, Slot: uint32(i)})
		}
		if crossDB != 0 && i == n-1 {
			obj.Assocs = append(obj.Assocs, OID{DB: crossDB, Slot: 1})
		}
		if err := w.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDBWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db1.odb")
	w, err := Create(path, 7)
	if err != nil {
		t.Fatal(err)
	}
	objs := []*Object{
		{OID: OID{Slot: 1}, Type: "raw", Event: 100, Data: []byte("raw-data-payload")},
		{OID: OID{Slot: 2}, Type: "esd", Event: 100, Assocs: []OID{{DB: 7, Slot: 1}}, Data: []byte("esd")},
		{OID: OID{Slot: 3}, Type: "tag", Event: 101, Assocs: []OID{{DB: 9, Slot: 4}}, Data: []byte{}},
	}
	for _, o := range objs {
		if err := w.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.DBID() != 7 || db.Len() != 3 {
		t.Fatalf("dbid=%d len=%d", db.DBID(), db.Len())
	}
	for _, want := range objs {
		got, err := db.Read(want.OID.Slot)
		if err != nil {
			t.Fatalf("Read(%d): %v", want.OID.Slot, err)
		}
		if got.Type != want.Type || got.Event != want.Event || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("object %d mismatch: %+v", want.OID.Slot, got)
		}
		if got.OID.DB != 7 {
			t.Fatalf("OID.DB not stamped: %v", got.OID)
		}
		if len(got.Assocs) != len(want.Assocs) {
			t.Fatalf("assocs = %v, want %v", got.Assocs, want.Assocs)
		}
	}
	if _, err := db.Read(99); !errors.Is(err, ErrNoObject) {
		t.Fatalf("Read(99): %v", err)
	}
	if got := db.ForeignDBs(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("ForeignDBs = %v", got)
	}
	if db.TotalBytes() != int64(len("raw-data-payload")+len("esd")) {
		t.Fatalf("TotalBytes = %d", db.TotalBytes())
	}
}

func TestWriterRejectsBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.odb")
	w, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&Object{OID: OID{DB: 2, Slot: 1}}); err == nil {
		t.Error("foreign dbid accepted")
	}
	if err := w.Add(&Object{OID: OID{Slot: 1}, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&Object{OID: OID{Slot: 1}}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate slot: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, ErrWriterClosed) {
		t.Errorf("double close: %v", err)
	}
	if err := w.Add(&Object{OID: OID{Slot: 5}}); !errors.Is(err, ErrWriterClosed) {
		t.Errorf("add after close: %v", err)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.odb")
	buildDB(t, path, 3, 10, 100, 0)

	// Not a database at all.
	junk := filepath.Join(dir, "junk")
	os.WriteFile(junk, []byte("hello world, definitely not a db"), 0o644)
	if _, err := Open(junk); !errors.Is(err, ErrNotDatabase) {
		t.Errorf("junk open: %v", err)
	}
	// Truncated header.
	short := filepath.Join(dir, "short")
	os.WriteFile(short, []byte("GDMP"), 0o644)
	if _, err := Open(short); !errors.Is(err, ErrNotDatabase) {
		t.Errorf("short open: %v", err)
	}
	// Flipped byte in the index region.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-3] ^= 0xFF
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, corrupt, 0o644)
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt open: %v", err)
	}
	// A crashed writer (header never patched) fails to open.
	unfinished := filepath.Join(dir, "unfinished")
	w, err := Create(unfinished, 5)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(&Object{OID: OID{Slot: 1}, Data: []byte("x")})
	w.f.Close() // simulate crash: no Close(), no header
	if _, err := Open(unfinished); err == nil {
		t.Error("unfinished database opened")
	}
}

func TestDBPropertyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, fmt.Sprintf("p%d.odb", seed))
		w, err := Create(path, 42)
		if err != nil {
			return false
		}
		count := int(n%32) + 1
		type expect struct {
			slot uint32
			data []byte
		}
		var want []expect
		for i := 0; i < count; i++ {
			data := make([]byte, rng.Intn(1000))
			rng.Read(data)
			slot := uint32(i + 1)
			if err := w.Add(&Object{OID: OID{Slot: slot}, Type: "t", Event: uint64(i), Data: data}); err != nil {
				return false
			}
			want = append(want, expect{slot, data})
		}
		if err := w.Close(); err != nil {
			return false
		}
		db, err := Open(path)
		if err != nil {
			return false
		}
		defer db.Close()
		defer os.Remove(path)
		if db.Len() != count {
			return false
		}
		for _, e := range want {
			got, err := db.Read(e.slot)
			if err != nil || !bytes.Equal(got.Data, e.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFederationAttachLookupNavigate(t *testing.T) {
	dir := t.TempDir()
	db1 := filepath.Join(dir, "db1.odb")
	db2 := filepath.Join(dir, "db2.odb")
	buildDB(t, db1, 1, 5, 50, 2) // last object points into db 2
	buildDB(t, db2, 2, 3, 50, 0)

	fed := NewFederation()
	defer fed.Close()
	id, err := fed.Attach(db1)
	if err != nil || id != 1 {
		t.Fatalf("Attach db1: %d, %v", id, err)
	}
	if _, err := fed.Attach(db1); !errors.Is(err, ErrAlreadyAttached) {
		t.Fatalf("duplicate attach: %v", err)
	}

	// Intra-file navigation works.
	obj, err := fed.Navigate(OID{DB: 1, Slot: 2}, 0)
	if err != nil {
		t.Fatalf("Navigate within db1: %v", err)
	}
	if obj.OID != (OID{DB: 1, Slot: 1}) {
		t.Fatalf("navigated to %v", obj.OID)
	}

	// Cross-file navigation fails while db2 is not attached: the paper's
	// broken-navigation hazard.
	_, err = fed.Navigate(OID{DB: 1, Slot: 5}, 1)
	if !errors.Is(err, ErrNotAttached) {
		t.Fatalf("navigation to unattached db: %v", err)
	}

	// After replicating (attaching) db2, navigation succeeds.
	if _, err := fed.Attach(db2); err != nil {
		t.Fatal(err)
	}
	obj, err = fed.Navigate(OID{DB: 1, Slot: 5}, 1)
	if err != nil {
		t.Fatalf("Navigate after attach: %v", err)
	}
	if obj.OID != (OID{DB: 2, Slot: 1}) {
		t.Fatalf("navigated to %v", obj.OID)
	}

	st, err := fed.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Databases != 2 || st.Objects != 8 {
		t.Fatalf("Stats = %+v", st)
	}

	if err := fed.Detach(1); err != nil {
		t.Fatal(err)
	}
	if fed.Attached(1) {
		t.Fatal("db1 still attached after detach")
	}
	if err := fed.Detach(1); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("double detach: %v", err)
	}
}

func TestAssociationClosure(t *testing.T) {
	dir := t.TempDir()
	// db1 -> db2 -> db3 (chain via cross assocs), db4 standalone.
	buildDB(t, filepath.Join(dir, "db2.odb"), 2, 2, 10, 3)
	buildDB(t, filepath.Join(dir, "db1.odb"), 1, 2, 10, 2)
	buildDB(t, filepath.Join(dir, "db3.odb"), 3, 2, 10, 0)
	buildDB(t, filepath.Join(dir, "db4.odb"), 4, 2, 10, 0)

	fed := NewFederation()
	defer fed.Close()
	for _, n := range []string{"db1.odb", "db2.odb", "db3.odb", "db4.odb"} {
		if _, err := fed.Attach(filepath.Join(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	closure, missing, err := fed.AssociationClosure([]uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	if len(closure) != 3 || closure[0] != 1 || closure[1] != 2 || closure[2] != 3 {
		t.Fatalf("closure = %v", closure)
	}

	// With db3 detached the closure reports it as missing.
	fed.Detach(3)
	closure, missing, err = fed.AssociationClosure([]uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(closure) != 2 || len(missing) != 1 || missing[0] != 3 {
		t.Fatalf("closure = %v, missing = %v", closure, missing)
	}
}

func TestFederationScan(t *testing.T) {
	dir := t.TempDir()
	buildDB(t, filepath.Join(dir, "a.odb"), 1, 4, 10, 0)
	buildDB(t, filepath.Join(dir, "b.odb"), 2, 6, 10, 0)
	fed := NewFederation()
	defer fed.Close()
	fed.Attach(filepath.Join(dir, "a.odb"))
	fed.Attach(filepath.Join(dir, "b.odb"))
	count := 0
	if err := fed.Scan(func(m Meta) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("scanned %d objects", count)
	}
	// Early stop.
	count = 0
	fed.Scan(func(m Meta) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestFederationSaveLoad(t *testing.T) {
	dir := t.TempDir()
	buildDB(t, filepath.Join(dir, "a.odb"), 1, 2, 10, 0)
	buildDB(t, filepath.Join(dir, "b.odb"), 2, 2, 10, 0)
	fed := NewFederation()
	fed.Attach(filepath.Join(dir, "a.odb"))
	fed.Attach(filepath.Join(dir, "b.odb"))
	catalog := filepath.Join(dir, "federation.cat")
	if err := fed.Save(catalog); err != nil {
		t.Fatal(err)
	}
	fed.Close()

	restored, err := LoadFederation(catalog)
	if err != nil {
		t.Fatalf("LoadFederation: %v", err)
	}
	defer restored.Close()
	if got := restored.Databases(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("restored databases = %v", got)
	}
	if _, err := restored.Lookup(OID{DB: 2, Slot: 1}); err != nil {
		t.Fatalf("lookup after restore: %v", err)
	}
	// Corrupt catalog rejected.
	os.WriteFile(catalog, []byte("nonsense"), 0o644)
	if _, err := LoadFederation(catalog); err == nil {
		t.Fatal("bad catalog accepted")
	}
}

func TestFindObjects(t *testing.T) {
	dir := t.TempDir()
	// Two databases, events 1..5 in each, one object per event per db.
	buildDB(t, filepath.Join(dir, "a.odb"), 1, 5, 10, 0)
	buildDB(t, filepath.Join(dir, "b.odb"), 2, 5, 10, 0)
	fed := NewFederation()
	defer fed.Close()
	fed.Attach(filepath.Join(dir, "a.odb"))
	fed.Attach(filepath.Join(dir, "b.odb"))

	got, err := fed.FindObjects("raw", []uint64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Each event appears in both databases.
	if len(got) != 4 {
		t.Fatalf("FindObjects returned %d metas", len(got))
	}
	for _, m := range got {
		if m.Event != 2 && m.Event != 4 {
			t.Fatalf("unexpected event %d", m.Event)
		}
	}
	// Unknown type or events yield nothing.
	if got, _ := fed.FindObjects("nope", []uint64{2}); len(got) != 0 {
		t.Fatalf("unknown type matched %d", len(got))
	}
	if got, _ := fed.FindObjects("raw", []uint64{99}); len(got) != 0 {
		t.Fatalf("unknown event matched %d", len(got))
	}
}

func TestNavigateBounds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.odb")
	buildDB(t, path, 1, 2, 10, 0)
	fed := NewFederation()
	defer fed.Close()
	fed.Attach(path)
	if _, err := fed.Navigate(OID{DB: 1, Slot: 1}, 0); err == nil {
		t.Fatal("slot 1 has no associations; Navigate should fail")
	}
	if _, err := fed.Navigate(OID{DB: 1, Slot: 2}, 5); err == nil {
		t.Fatal("out-of-range association index accepted")
	}
}
