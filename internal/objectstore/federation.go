package objectstore

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Federation is the site-local object database catalog, the analogue of an
// Objectivity federation: the set of database files currently attached at
// this site, with object lookup and navigation across them. The federation
// "does not know about other sites" (Section 4.1) — navigation to an object
// whose database is not attached locally fails with ErrNotAttached, the
// exact condition that forces associated files to be replicated together.
type Federation struct {
	mu   sync.RWMutex
	dbs  map[uint32]string // dbid -> path
	open map[uint32]*DB    // lazily opened readers
}

// ErrNotAttached reports navigation to a database that is not local.
var ErrNotAttached = errors.New("objectstore: database not attached to this federation")

// ErrAlreadyAttached reports a duplicate attach.
var ErrAlreadyAttached = errors.New("objectstore: database already attached")

// NewFederation creates an empty federation.
func NewFederation() *Federation {
	return &Federation{
		dbs:  make(map[uint32]string),
		open: make(map[uint32]*DB),
	}
}

// Attach registers a database file with the federation — GDMP's
// Objectivity-specific post-processing step after a replica arrives.
func (fed *Federation) Attach(path string) (uint32, error) {
	db, err := Open(path)
	if err != nil {
		return 0, err
	}
	fed.mu.Lock()
	defer fed.mu.Unlock()
	if _, dup := fed.dbs[db.DBID()]; dup {
		db.Close()
		return db.DBID(), fmt.Errorf("%w: db %d", ErrAlreadyAttached, db.DBID())
	}
	fed.dbs[db.DBID()] = path
	fed.open[db.DBID()] = db
	return db.DBID(), nil
}

// Detach removes a database from the federation.
func (fed *Federation) Detach(dbid uint32) error {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	if _, ok := fed.dbs[dbid]; !ok {
		return fmt.Errorf("%w: db %d", ErrNotAttached, dbid)
	}
	if db := fed.open[dbid]; db != nil {
		db.Close()
	}
	delete(fed.dbs, dbid)
	delete(fed.open, dbid)
	return nil
}

// Attached reports whether a database is attached.
func (fed *Federation) Attached(dbid uint32) bool {
	fed.mu.RLock()
	defer fed.mu.RUnlock()
	_, ok := fed.dbs[dbid]
	return ok
}

// Databases lists the attached database ids, sorted.
func (fed *Federation) Databases() []uint32 {
	fed.mu.RLock()
	defer fed.mu.RUnlock()
	out := make([]uint32, 0, len(fed.dbs))
	for id := range fed.dbs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Path returns the file path of an attached database — the object-to-file
// catalog lookup of Figure 1.
func (fed *Federation) Path(dbid uint32) (string, error) {
	fed.mu.RLock()
	defer fed.mu.RUnlock()
	p, ok := fed.dbs[dbid]
	if !ok {
		return "", fmt.Errorf("%w: db %d", ErrNotAttached, dbid)
	}
	return p, nil
}

// db returns the open reader for an attached database.
func (fed *Federation) db(dbid uint32) (*DB, error) {
	fed.mu.RLock()
	db := fed.open[dbid]
	fed.mu.RUnlock()
	if db != nil {
		return db, nil
	}
	fed.mu.Lock()
	defer fed.mu.Unlock()
	if db := fed.open[dbid]; db != nil {
		return db, nil
	}
	path, ok := fed.dbs[dbid]
	if !ok {
		return nil, fmt.Errorf("%w: db %d", ErrNotAttached, dbid)
	}
	db, err := Open(path)
	if err != nil {
		return nil, err
	}
	fed.open[dbid] = db
	return db, nil
}

// Lookup loads an object by OID.
func (fed *Federation) Lookup(oid OID) (*Object, error) {
	db, err := fed.db(oid.DB)
	if err != nil {
		return nil, err
	}
	return db.Read(oid.Slot)
}

// Meta returns an object's index entry by OID.
func (fed *Federation) Meta(oid OID) (Meta, error) {
	db, err := fed.db(oid.DB)
	if err != nil {
		return Meta{}, err
	}
	return db.Meta(oid.Slot)
}

// Navigate follows the i-th association of the object — the paper's
// "object-oriented navigation mechanism". It fails with ErrNotAttached if
// the target's database file has not been replicated to this site.
func (fed *Federation) Navigate(oid OID, i int) (*Object, error) {
	m, err := fed.Meta(oid)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(m.Assocs) {
		return nil, fmt.Errorf("objectstore: %v has %d associations, want %d", oid, len(m.Assocs), i)
	}
	return fed.Lookup(m.Assocs[i])
}

// AssociationClosure returns the set of databases (including the starting
// ones) reachable through associations from the given databases, restricted
// to those attached. Unattached databases encountered on the way are
// returned in missing. Replicating the closure together preserves
// navigation at the destination (Section 2.1).
func (fed *Federation) AssociationClosure(start []uint32) (closure, missing []uint32, err error) {
	seen := make(map[uint32]bool)
	missingSet := make(map[uint32]bool)
	queue := append([]uint32(nil), start...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] || missingSet[id] {
			continue
		}
		if !fed.Attached(id) {
			missingSet[id] = true
			continue
		}
		seen[id] = true
		db, err := fed.db(id)
		if err != nil {
			return nil, nil, err
		}
		queue = append(queue, db.ForeignDBs()...)
	}
	for id := range seen {
		closure = append(closure, id)
	}
	for id := range missingSet {
		missing = append(missing, id)
	}
	sort.Slice(closure, func(i, j int) bool { return closure[i] < closure[j] })
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return closure, missing, nil
}

// FindObjects resolves the application-level request of Figure 1 at site
// scope: the metas of all attached objects of the given type belonging to
// the given events. Events with no local object of that type are simply
// absent from the result (the caller consults the Grid-level index for
// those).
func (fed *Federation) FindObjects(typ string, events []uint64) ([]Meta, error) {
	want := make(map[uint64]bool, len(events))
	for _, ev := range events {
		want[ev] = true
	}
	var out []Meta
	err := fed.Scan(func(m Meta) bool {
		if m.Type == typ && want[m.Event] {
			out = append(out, m)
		}
		return true
	})
	return out, err
}

// Scan calls fn for every object meta in every attached database, in
// database order. fn returning false stops the scan.
func (fed *Federation) Scan(fn func(Meta) bool) error {
	for _, id := range fed.Databases() {
		db, err := fed.db(id)
		if err != nil {
			return err
		}
		for _, m := range db.Metas() {
			if !fn(m) {
				return nil
			}
		}
	}
	return nil
}

// Stats summarizes the federation.
type FederationStats struct {
	Databases int
	Objects   int
	Bytes     int64
}

// Stats walks the attached databases and counts contents.
func (fed *Federation) Stats() (FederationStats, error) {
	st := FederationStats{}
	for _, id := range fed.Databases() {
		db, err := fed.db(id)
		if err != nil {
			return st, err
		}
		st.Databases++
		st.Objects += db.Len()
		st.Bytes += db.TotalBytes()
	}
	return st, nil
}

// Close closes all open database readers (the attachment list is kept).
func (fed *Federation) Close() error {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	var first error
	for id, db := range fed.open {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
		delete(fed.open, id)
	}
	return first
}

// Save writes the federation catalog (dbid -> path) to a file, relative
// paths resolved against the catalog's directory on load.
func (fed *Federation) Save(path string) error {
	fed.mu.RLock()
	ids := make([]uint32, 0, len(fed.dbs))
	for id := range fed.dbs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteString("gdmp-federation v1\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "%d %s\n", id, strconv.Quote(fed.dbs[id]))
	}
	fed.mu.RUnlock()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFederation reads a federation catalog and attaches every listed
// database file.
func LoadFederation(path string) (*Federation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "gdmp-federation v1" {
		return nil, errors.New("objectstore: bad federation catalog header")
	}
	fed := NewFederation()
	base := filepath.Dir(path)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		idStr, pathQ, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("objectstore: bad federation line %q", line)
		}
		wantID, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("objectstore: bad federation id %q", idStr)
		}
		p, err := strconv.Unquote(pathQ)
		if err != nil {
			return nil, fmt.Errorf("objectstore: bad federation path %q", pathQ)
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(base, p)
		}
		gotID, err := fed.Attach(p)
		if err != nil {
			return nil, fmt.Errorf("objectstore: attach %s: %w", p, err)
		}
		if gotID != uint32(wantID) {
			return nil, fmt.Errorf("objectstore: catalog says db %d, file %s says %d", wantID, p, gotID)
		}
	}
	return fed, sc.Err()
}
