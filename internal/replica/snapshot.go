package replica

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot persistence. The Globus Replica Catalog stores its state in an
// LDAP database; this implementation persists the catalog as plain,
// line-oriented text snapshots, which also serve GDMP's failure-recovery
// path ("obtaining a remote site's file catalog for failure recovery").
//
// Two layouts exist:
//
//   - the single-file v1 format (Save/Load), kept for compatibility and
//     for export/import;
//   - the per-shard layout (SaveShards/LoadShards): one meta file with
//     the serial and collections plus one file per dirty shard, so a
//     large catalog's periodic snapshot rewrites only the partitions
//     that changed. Shard files record which partition of how many they
//     were written as, but loading re-hashes every entry into the
//     current shard layout — changing the shard count is a rebalance,
//     not a migration.
//
// Single-file format (all strings Go-quoted):
//
//	gdmp-replica-catalog v1
//	serial <n>
//	file <lfn>
//	attr <key> <value>          # belongs to the preceding file
//	loc <pfn>                   # belongs to the preceding file
//	coll <name>
//	member <lfn>                # belongs to the preceding coll
const snapshotHeader = "gdmp-replica-catalog v1"

// Per-shard layout headers and names.
const (
	metaHeader    = "gdmp-replica-rls-meta v1"
	shardHeader   = "gdmp-replica-shard v1"
	metaFileName  = "meta"
	shardFileGlob = "shard-*.snap"
)

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.snap", i) }

// loaded is the parse result both Load paths build before installing.
type loaded struct {
	files       map[string]*LogicalFile
	locations   map[string]map[string]bool
	collections map[string]map[string]bool
	serial      uint64
}

func newLoaded() *loaded {
	return &loaded{
		files:       make(map[string]*LogicalFile),
		locations:   make(map[string]map[string]bool),
		collections: make(map[string]map[string]bool),
	}
}

// install replaces the catalog contents, re-hashing every entry into the
// current shard layout.
func (c *Catalog) install(l *loaded) {
	fresh := make([]*catShard, len(c.shards))
	for i := range fresh {
		fresh[i] = newCatShard()
	}
	for name, f := range l.files {
		i := shardIndex(name, len(fresh))
		fresh[i].files[name] = f
		locs := l.locations[name]
		if locs == nil {
			locs = make(map[string]bool)
		}
		fresh[i].locations[name] = locs
	}
	for i, sh := range c.shards {
		sh.mu.Lock()
		sh.files = fresh[i].files
		sh.locations = fresh[i].locations
		sh.dirty = true
		sh.mu.Unlock()
	}
	c.collMu.Lock()
	c.collections = l.collections
	c.collDirty = true
	c.collMu.Unlock()
	c.serial.Store(l.serial)
}

// writeFileEntry emits one file's lines (file/attr/loc) to w.
func writeFileEntry(bw *bufio.Writer, f *LogicalFile, locs map[string]bool) {
	fmt.Fprintf(bw, "file %s\n", strconv.Quote(f.Name))
	keys := make([]string, 0, len(f.Attrs))
	for k := range f.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, "attr %s %s\n", strconv.Quote(k), strconv.Quote(f.Attrs[k]))
	}
	pfns := make([]string, 0, len(locs))
	for p := range locs {
		pfns = append(pfns, p)
	}
	sort.Strings(pfns)
	for _, p := range pfns {
		fmt.Fprintf(bw, "loc %s\n", strconv.Quote(p))
	}
}

// writeCollections emits coll/member lines to w.
func (c *Catalog) writeCollections(bw *bufio.Writer) {
	c.collMu.RLock()
	defer c.collMu.RUnlock()
	colls := make([]string, 0, len(c.collections))
	for n := range c.collections {
		colls = append(colls, n)
	}
	sort.Strings(colls)
	for _, n := range colls {
		fmt.Fprintf(bw, "coll %s\n", strconv.Quote(n))
		members := make([]string, 0, len(c.collections[n]))
		for m := range c.collections[n] {
			members = append(members, m)
		}
		sort.Strings(members)
		for _, m := range members {
			fmt.Fprintf(bw, "member %s\n", strconv.Quote(m))
		}
	}
}

// Save writes a single-file snapshot of the entire catalog. Shards are
// read one at a time, so concurrent mutations may straddle the snapshot;
// crash consistency for live catalogs comes from the journaled Store,
// which compacts through this same writer while holding the WAL.
func (c *Catalog) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, snapshotHeader)
	fmt.Fprintf(bw, "serial %d\n", c.serial.Load())

	names := c.Files()
	for _, n := range names {
		sh, _ := c.shardFor(n)
		sh.mu.RLock()
		if f, ok := sh.files[n]; ok {
			writeFileEntry(bw, f, sh.locations[n])
		}
		sh.mu.RUnlock()
	}
	c.writeCollections(bw)
	return bw.Flush()
}

// snapParser parses snapshot lines into a loaded state. Each layout
// wraps it with its own header check and verb whitelist.
type snapParser struct {
	l      *loaded
	lineNo int
	cur    string // current file (file layout) or collection (coll layout)
	inColl bool
}

func (p *snapParser) fail(format string, args ...interface{}) error {
	return fmt.Errorf("replica: snapshot line %d: %s", p.lineNo, fmt.Sprintf(format, args...))
}

func (p *snapParser) unquote(s string) (string, error) {
	v, err := strconv.Unquote(s)
	if err != nil {
		return "", p.fail("bad quoting in %q", s)
	}
	return v, nil
}

// line consumes one snapshot body line. allowFiles/allowColls gate which
// verbs the calling layout accepts.
func (p *snapParser) line(text string, allowFiles, allowColls bool) error {
	line := strings.TrimSpace(text)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	verb, rest, _ := strings.Cut(line, " ")
	switch verb {
	case "serial":
		n, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return p.fail("bad serial %q", rest)
		}
		p.l.serial = n
	case "file":
		if !allowFiles {
			return p.fail("verb %q not allowed here", verb)
		}
		name, err := p.unquote(rest)
		if err != nil {
			return err
		}
		if _, dup := p.l.files[name]; dup {
			return p.fail("duplicate file %q", name)
		}
		p.l.files[name] = &LogicalFile{Name: name, Attrs: make(map[string]string)}
		p.l.locations[name] = make(map[string]bool)
		p.cur, p.inColl = name, false
	case "attr":
		if p.cur == "" || p.inColl {
			return p.fail("attr before file")
		}
		kq, vq, ok := cutQuoted(rest)
		if !ok {
			return p.fail("malformed attr %q", rest)
		}
		k, err := p.unquote(kq)
		if err != nil {
			return err
		}
		v, err := p.unquote(vq)
		if err != nil {
			return err
		}
		p.l.files[p.cur].Attrs[k] = v
	case "loc":
		if p.cur == "" || p.inColl {
			return p.fail("loc before file")
		}
		pfn, err := p.unquote(rest)
		if err != nil {
			return err
		}
		p.l.locations[p.cur][pfn] = true
	case "coll":
		if !allowColls {
			return p.fail("verb %q not allowed here", verb)
		}
		name, err := p.unquote(rest)
		if err != nil {
			return err
		}
		if _, dup := p.l.collections[name]; dup {
			return p.fail("duplicate collection %q", name)
		}
		p.l.collections[name] = make(map[string]bool)
		p.cur, p.inColl = name, true
	case "member":
		if p.cur == "" || !p.inColl {
			return p.fail("member before coll")
		}
		lfn, err := p.unquote(rest)
		if err != nil {
			return err
		}
		p.l.collections[p.cur][lfn] = true
	default:
		return p.fail("unknown verb %q", verb)
	}
	return nil
}

func scanInto(r io.Reader, header string, p *snapParser, allowFiles, allowColls bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return fmt.Errorf("replica: empty snapshot")
	}
	p.lineNo++
	if strings.TrimSpace(sc.Text()) != header {
		return fmt.Errorf("replica: bad snapshot header %q", sc.Text())
	}
	for sc.Scan() {
		p.lineNo++
		if err := p.line(sc.Text(), allowFiles, allowColls); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("replica: read snapshot: %w", err)
	}
	return nil
}

// checkMembers verifies collection members reference loaded files.
func checkMembers(l *loaded) error {
	for coll, set := range l.collections {
		for lfn := range set {
			if _, ok := l.files[lfn]; !ok {
				return fmt.Errorf("replica: snapshot: collection %q member %q references unknown file", coll, lfn)
			}
		}
	}
	return nil
}

// Load replaces the catalog contents with a snapshot previously written by
// Save.
func (c *Catalog) Load(r io.Reader) error {
	p := &snapParser{l: newLoaded()}
	if err := scanInto(r, snapshotHeader, p, true, true); err != nil {
		return err
	}
	if err := checkMembers(p.l); err != nil {
		return err
	}
	c.install(p.l)
	return nil
}

// cutQuoted splits `"k" "v"` into the two quoted tokens.
func cutQuoted(s string) (a, b string, ok bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, `"`) {
		return "", "", false
	}
	// Find the closing quote of the first token, honoring escapes.
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			return s[:i+1], strings.TrimSpace(s[i+1:]), true
		}
	}
	return "", "", false
}

// writeAtomic writes data produced by fill to path via tmp+rename.
func writeAtomic(path string, fill func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// SaveFile atomically writes a single-file snapshot to path.
func (c *Catalog) SaveFile(path string) error {
	return writeAtomic(path, c.Save)
}

// LoadFile loads a single-file snapshot from path.
func (c *Catalog) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}

// SaveShards writes the per-shard snapshot layout into dir (created if
// needed): the meta file (serial + collections) plus one file per shard.
// Shards whose file already exists and that have not been mutated since
// their last save are skipped, so steady-state periodic snapshots of a
// big catalog rewrite only what changed. Every write is atomic
// (tmp+rename).
func (c *Catalog) SaveShards(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, sh := range c.shards {
		path := filepath.Join(dir, shardFileName(i))
		sh.mu.RLock()
		skip := !sh.dirty
		sh.mu.RUnlock()
		if skip {
			if _, err := os.Stat(path); err == nil {
				continue
			}
		}
		err := writeAtomic(path, func(w io.Writer) error {
			bw := bufio.NewWriter(w)
			fmt.Fprintln(bw, shardHeader)
			fmt.Fprintf(bw, "# shard %d of %d\n", i, len(c.shards))
			sh.mu.RLock()
			names := make([]string, 0, len(sh.files))
			for n := range sh.files {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				writeFileEntry(bw, sh.files[n], sh.locations[n])
			}
			sh.mu.RUnlock()
			return bw.Flush()
		})
		if err != nil {
			return err
		}
		sh.mu.Lock()
		sh.dirty = false
		sh.mu.Unlock()
	}
	return writeAtomic(filepath.Join(dir, metaFileName), func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		fmt.Fprintln(bw, metaHeader)
		fmt.Fprintf(bw, "serial %d\n", c.serial.Load())
		fmt.Fprintf(bw, "# shards %d\n", len(c.shards))
		c.writeCollections(bw)
		return bw.Flush()
	})
}

// LoadShards replaces the catalog contents with a per-shard snapshot set
// previously written by SaveShards. Entries are re-hashed into the
// current shard layout, so the snapshot may have been written under a
// different shard count — the load is a rebalance.
func (c *Catalog) LoadShards(dir string) error {
	p := &snapParser{l: newLoaded()}
	mf, err := os.Open(filepath.Join(dir, metaFileName))
	if err != nil {
		return err
	}
	err = scanInto(mf, metaHeader, p, false, true)
	mf.Close()
	if err != nil {
		return err
	}
	shardFiles, err := filepath.Glob(filepath.Join(dir, shardFileGlob))
	if err != nil {
		return err
	}
	sort.Strings(shardFiles)
	for _, path := range shardFiles {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sp := &snapParser{l: p.l}
		err = scanInto(f, shardHeader, sp, true, false)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
	}
	if err := checkMembers(p.l); err != nil {
		return err
	}
	c.install(p.l)
	return nil
}
