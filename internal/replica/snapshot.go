package replica

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Snapshot persistence. The Globus Replica Catalog stores its state in an
// LDAP database; this implementation persists the catalog as a plain,
// line-oriented text snapshot, which also serves GDMP's failure-recovery
// path ("obtaining a remote site's file catalog for failure recovery").
//
// Format (all strings Go-quoted):
//
//	gdmp-replica-catalog v1
//	serial <n>
//	file <lfn>
//	attr <key> <value>          # belongs to the preceding file
//	loc <pfn>                   # belongs to the preceding file
//	coll <name>
//	member <lfn>                # belongs to the preceding coll

const snapshotHeader = "gdmp-replica-catalog v1"

// Save writes a snapshot of the entire catalog.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, snapshotHeader)
	fmt.Fprintf(bw, "serial %d\n", c.serial)

	names := make([]string, 0, len(c.files))
	for n := range c.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := c.files[n]
		fmt.Fprintf(bw, "file %s\n", strconv.Quote(n))
		keys := make([]string, 0, len(f.Attrs))
		for k := range f.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, "attr %s %s\n", strconv.Quote(k), strconv.Quote(f.Attrs[k]))
		}
		pfns := make([]string, 0, len(c.locations[n]))
		for p := range c.locations[n] {
			pfns = append(pfns, p)
		}
		sort.Strings(pfns)
		for _, p := range pfns {
			fmt.Fprintf(bw, "loc %s\n", strconv.Quote(p))
		}
	}

	colls := make([]string, 0, len(c.collections))
	for n := range c.collections {
		colls = append(colls, n)
	}
	sort.Strings(colls)
	for _, n := range colls {
		fmt.Fprintf(bw, "coll %s\n", strconv.Quote(n))
		members := make([]string, 0, len(c.collections[n]))
		for m := range c.collections[n] {
			members = append(members, m)
		}
		sort.Strings(members)
		for _, m := range members {
			fmt.Fprintf(bw, "member %s\n", strconv.Quote(m))
		}
	}
	return bw.Flush()
}

// Load replaces the catalog contents with a snapshot previously written by
// Save.
func (c *Catalog) Load(r io.Reader) error {
	files := make(map[string]*LogicalFile)
	locations := make(map[string]map[string]bool)
	collections := make(map[string]map[string]bool)
	var serial uint64

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	var curFile string
	var curColl string

	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("replica: snapshot line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	unquote := func(s string) (string, error) {
		v, err := strconv.Unquote(s)
		if err != nil {
			return "", fail("bad quoting in %q", s)
		}
		return v, nil
	}

	if !sc.Scan() {
		return fmt.Errorf("replica: empty snapshot")
	}
	lineNo++
	if strings.TrimSpace(sc.Text()) != snapshotHeader {
		return fmt.Errorf("replica: bad snapshot header %q", sc.Text())
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch verb {
		case "serial":
			n, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return fail("bad serial %q", rest)
			}
			serial = n
		case "file":
			name, err := unquote(rest)
			if err != nil {
				return err
			}
			if _, dup := files[name]; dup {
				return fail("duplicate file %q", name)
			}
			files[name] = &LogicalFile{Name: name, Attrs: make(map[string]string)}
			locations[name] = make(map[string]bool)
			curFile, curColl = name, ""
		case "attr":
			if curFile == "" {
				return fail("attr before file")
			}
			kq, vq, ok := cutQuoted(rest)
			if !ok {
				return fail("malformed attr %q", rest)
			}
			k, err := unquote(kq)
			if err != nil {
				return err
			}
			v, err := unquote(vq)
			if err != nil {
				return err
			}
			files[curFile].Attrs[k] = v
		case "loc":
			if curFile == "" {
				return fail("loc before file")
			}
			pfn, err := unquote(rest)
			if err != nil {
				return err
			}
			locations[curFile][pfn] = true
		case "coll":
			name, err := unquote(rest)
			if err != nil {
				return err
			}
			if _, dup := collections[name]; dup {
				return fail("duplicate collection %q", name)
			}
			collections[name] = make(map[string]bool)
			curColl, curFile = name, ""
		case "member":
			if curColl == "" {
				return fail("member before coll")
			}
			lfn, err := unquote(rest)
			if err != nil {
				return err
			}
			if _, ok := files[lfn]; !ok {
				return fail("member %q references unknown file", lfn)
			}
			collections[curColl][lfn] = true
		default:
			return fail("unknown verb %q", verb)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("replica: read snapshot: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.files = files
	c.locations = locations
	c.collections = collections
	c.serial = serial
	return nil
}

// cutQuoted splits `"k" "v"` into the two quoted tokens.
func cutQuoted(s string) (a, b string, ok bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, `"`) {
		return "", "", false
	}
	// Find the closing quote of the first token, honoring escapes.
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			return s[:i+1], strings.TrimSpace(s[i+1:]), true
		}
	}
	return "", "", false
}

// SaveFile atomically writes a snapshot to path.
func (c *Catalog) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads a snapshot from path.
func (c *Catalog) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}
