package replica

import (
	"strconv"
	"time"

	"gdmp/internal/obs"
)

// CatalogMetricsPrefix prefixes every replica catalog metric.
const CatalogMetricsPrefix = "gdmp_replica_catalog"

// RLSMetricsPrefix prefixes every Replica Location Service metric (shard
// engine, RLI tier, and the site-side digest pusher in internal/core).
const RLSMetricsPrefix = "gdmp_rls"

// Operation labels recorded by catalog instrumentation; one per public
// catalog operation, including the filter-query path whose timings the
// ops histogram captures under opQuery.
const (
	opRegister         = "register"
	opGenerate         = "generate"
	opLookup           = "lookup"
	opSetAttrs         = "set_attrs"
	opDelete           = "delete"
	opFiles            = "files"
	opQuery            = "query"
	opAddReplica       = "add_replica"
	opRemoveReplica    = "remove_replica"
	opLocations        = "locations"
	opCreateCollection = "create_collection"
	opDeleteCollection = "delete_collection"
	opAddToColl        = "add_to_collection"
	opRemoveFromColl   = "remove_from_collection"
	opListCollection   = "list_collection"
	opCollections      = "collections"
	opStats            = "stats"
)

// catalogMetrics counts catalog operations by outcome and times each one.
type catalogMetrics struct {
	ops     *obs.CounterVec   // {op, outcome}
	latency *obs.HistogramVec // {op}
}

func newCatalogMetrics(r *obs.Registry) *catalogMetrics {
	return &catalogMetrics{
		ops: r.CounterVec(CatalogMetricsPrefix+"_ops_total",
			"Replica catalog operations by operation and outcome.", "op", "outcome"),
		latency: r.HistogramVec(CatalogMetricsPrefix+"_op_seconds",
			"Replica catalog operation latency by operation.", nil, "op"),
	}
}

// record finishes one operation: use as
//
//	defer c.met.record(opLookup, time.Now(), &err)
//
// with a named error return (nil errp for operations that cannot fail).
// The deferred call reads *errp at function exit, after the body has
// assigned the result.
func (m *catalogMetrics) record(op string, start time.Time, errp *error) {
	outcome := "ok"
	if errp != nil && *errp != nil {
		outcome = "error"
	}
	m.ops.WithLabelValues(op, outcome).Inc()
	m.latency.WithLabelValues(op).ObserveDuration(time.Since(start))
}

// OpCount returns the count for an operation/outcome pair (test hook).
func (c *Catalog) OpCount(op, outcome string) int64 {
	return c.met.ops.WithLabelValues(op, outcome).Value()
}

// rlsCatalogMetrics instruments the shard engine: per-shard lookup and
// update counters (the counters are resolved once at construction so the
// hot path is a single atomic add, no label-map lookup) plus a
// lookup-latency histogram whose Quantile backs the p99 surfaced in
// gdmp status.
type rlsCatalogMetrics struct {
	shardLookups []*obs.Counter
	shardUpdates []*obs.Counter
	lookupSec    *obs.Histogram
}

func newRLSCatalogMetrics(r *obs.Registry, shards int) *rlsCatalogMetrics {
	m := &rlsCatalogMetrics{
		shardLookups: make([]*obs.Counter, shards),
		shardUpdates: make([]*obs.Counter, shards),
		lookupSec: r.Histogram(RLSMetricsPrefix+"_lookup_seconds",
			"LRC lookup latency (Lookup/ReadEntry/Locations) across all shards.", nil),
	}
	lv := r.CounterVec(RLSMetricsPrefix+"_shard_lookups_total",
		"LRC lookups by shard.", "shard")
	uv := r.CounterVec(RLSMetricsPrefix+"_shard_updates_total",
		"LRC mutations by shard.", "shard")
	for i := 0; i < shards; i++ {
		s := strconv.Itoa(i)
		m.shardLookups[i] = lv.WithLabelValues(s)
		m.shardUpdates[i] = uv.WithLabelValues(s)
	}
	return m
}

func (m *rlsCatalogMetrics) update(shard int) { m.shardUpdates[shard].Inc() }

func (m *rlsCatalogMetrics) lookup(start time.Time) {
	m.lookupSec.ObserveDuration(time.Since(start))
}

// LookupQuantile reports the q-quantile (0..1) of LRC lookup latency in
// seconds, from the gdmp_rls_lookup_seconds histogram.
func (c *Catalog) LookupQuantile(q float64) float64 { return c.rls.lookupSec.Quantile(q) }

// ShardOpCounts returns per-shard (lookups, updates) counters (test and
// status hook).
func (c *Catalog) ShardOpCounts() (lookups, updates []int64) {
	lookups = make([]int64, len(c.rls.shardLookups))
	updates = make([]int64, len(c.rls.shardUpdates))
	for i := range lookups {
		lookups[i] = c.rls.shardLookups[i].Value()
		updates[i] = c.rls.shardUpdates[i].Value()
	}
	return lookups, updates
}
