package replica

import (
	"time"

	"gdmp/internal/obs"
)

// CatalogMetricsPrefix prefixes every replica catalog metric.
const CatalogMetricsPrefix = "gdmp_replica_catalog"

// Operation labels recorded by catalog instrumentation; one per public
// catalog operation, including the filter-query path whose timings the
// ops histogram captures under opQuery.
const (
	opRegister         = "register"
	opGenerate         = "generate"
	opLookup           = "lookup"
	opSetAttrs         = "set_attrs"
	opDelete           = "delete"
	opFiles            = "files"
	opQuery            = "query"
	opAddReplica       = "add_replica"
	opRemoveReplica    = "remove_replica"
	opLocations        = "locations"
	opCreateCollection = "create_collection"
	opDeleteCollection = "delete_collection"
	opAddToColl        = "add_to_collection"
	opRemoveFromColl   = "remove_from_collection"
	opListCollection   = "list_collection"
	opCollections      = "collections"
	opStats            = "stats"
)

// catalogMetrics counts catalog operations by outcome and times each one.
type catalogMetrics struct {
	ops     *obs.CounterVec   // {op, outcome}
	latency *obs.HistogramVec // {op}
}

func newCatalogMetrics(r *obs.Registry) *catalogMetrics {
	return &catalogMetrics{
		ops: r.CounterVec(CatalogMetricsPrefix+"_ops_total",
			"Replica catalog operations by operation and outcome.", "op", "outcome"),
		latency: r.HistogramVec(CatalogMetricsPrefix+"_op_seconds",
			"Replica catalog operation latency by operation.", nil, "op"),
	}
}

// record finishes one operation: use as
//
//	defer c.met.record(opLookup, time.Now(), &err)
//
// with a named error return (nil errp for operations that cannot fail).
// The deferred call reads *errp at function exit, after the body has
// assigned the result.
func (m *catalogMetrics) record(op string, start time.Time, errp *error) {
	outcome := "ok"
	if errp != nil && *errp != nil {
		outcome = "error"
	}
	m.ops.WithLabelValues(op, outcome).Inc()
	m.latency.WithLabelValues(op).ObserveDuration(time.Since(start))
}

// OpCount returns the count for an operation/outcome pair (test hook).
func (c *Catalog) OpCount(op, outcome string) int64 {
	return c.met.ops.WithLabelValues(op, outcome).Value()
}
