package replica

import (
	"fmt"
	"testing"
	"time"

	"gdmp/internal/obs"
)

func digestOf(lfns ...string) *Bloom {
	b := NewBloom(len(lfns), 0.01)
	for _, l := range lfns {
		b.Add(l)
	}
	return b
}

func TestRLIPushAndWhich(t *testing.T) {
	x := NewRLI(time.Minute, obs.NewRegistry())
	if got, _ := x.Update("cern.ch", "cern:38000", 1, digestOf("a", "b"), 0); got != PushNew {
		t.Fatalf("first push = %q, want %q", got, PushNew)
	}
	if got, _ := x.Update("fnal.gov", "fnal:38000", 1, digestOf("b", "c"), 0); got != PushNew {
		t.Fatalf("first push = %q, want %q", got, PushNew)
	}
	sites := x.MightHold("b")
	if len(sites) != 2 || sites[0].Name != "cern.ch" || sites[1].Name != "fnal.gov" {
		t.Fatalf("MightHold(b) = %v", sites)
	}
	if sites[0].Addr != "cern:38000" || sites[0].Gen != 1 {
		t.Fatalf("candidate = %+v", sites[0])
	}
	if got := x.MightHold("only-at-neither"); len(got) != 0 {
		// Possible bloom FP but vanishingly unlikely at these sizes.
		t.Logf("unexpected FP candidates: %v", got)
	}
}

func TestRLIStalePushRejected(t *testing.T) {
	x := NewRLI(time.Minute, obs.NewRegistry())
	x.Update("cern.ch", "cern:38000", 5, digestOf("new"), 0)
	if got, _ := x.Update("cern.ch", "cern:38000", 3, digestOf("old"), 0); got != PushStale {
		t.Fatalf("stale push = %q, want %q", got, PushStale)
	}
	// The newer digest must have survived.
	if got := x.MightHold("new"); len(got) != 1 {
		t.Fatalf("MightHold(new) = %v", got)
	}
	if x.PushCount(PushStale) != 1 {
		t.Fatalf("stale counter = %d", x.PushCount(PushStale))
	}
}

func TestRLIRefreshClearsDeletedLFNs(t *testing.T) {
	x := NewRLI(time.Minute, obs.NewRegistry())
	x.Update("cern.ch", "cern:38000", 1, digestOf("keep", "drop"), 0)
	if got, _ := x.Update("cern.ch", "cern:38000", 2, digestOf("keep"), 0); got != PushRefresh {
		t.Fatalf("refresh push = %q, want %q", got, PushRefresh)
	}
	if got := x.MightHold("drop"); len(got) != 0 {
		t.Fatalf("deleted LFN still indexed after full refresh: %v", got)
	}
	if got := x.MightHold("keep"); len(got) != 1 || got[0].Gen != 2 {
		t.Fatalf("MightHold(keep) = %v", got)
	}
}

func TestRLITTLExpiry(t *testing.T) {
	x := NewRLI(time.Minute, obs.NewRegistry())
	now := time.Unix(1000, 0)
	x.SetClock(func() time.Time { return now })

	x.Update("cern.ch", "cern:38000", 1, digestOf("a"), 0)
	now = now.Add(30 * time.Second)
	if got := x.MightHold("a"); len(got) != 1 {
		t.Fatalf("entry expired early: %v", got)
	}
	// A heartbeat (same gen) extends the lease.
	x.Update("cern.ch", "cern:38000", 1, digestOf("a"), 0)
	now = now.Add(45 * time.Second)
	if got := x.MightHold("a"); len(got) != 1 {
		t.Fatalf("heartbeat did not extend TTL: %v", got)
	}
	now = now.Add(2 * time.Minute)
	if got := x.MightHold("a"); len(got) != 0 {
		t.Fatalf("entry survived past TTL: %v", got)
	}
	if got := x.Sites(); len(got) != 0 {
		t.Fatalf("Sites() after expiry = %v", got)
	}
}

func TestRLITTLCappedAtIndexDefault(t *testing.T) {
	x := NewRLI(time.Minute, obs.NewRegistry())
	now := time.Unix(1000, 0)
	x.SetClock(func() time.Time { return now })
	// A pusher asking for an hour still ages out at the index's minute.
	x.Update("cern.ch", "cern:38000", 1, digestOf("a"), time.Hour)
	now = now.Add(90 * time.Second)
	if got := x.MightHold("a"); len(got) != 0 {
		t.Fatalf("entry outlived the index TTL cap: %v", got)
	}
}

func TestRLISitesStatus(t *testing.T) {
	x := NewRLI(time.Minute, obs.NewRegistry())
	now := time.Unix(1000, 0)
	x.SetClock(func() time.Time { return now })
	x.Update("b-site", "b:1", 2, digestOf("x", "y"), 0)
	x.Update("a-site", "a:1", 7, digestOf("z"), 0)
	got := x.Sites()
	if len(got) != 2 || got[0].Name != "a-site" || got[1].Name != "b-site" {
		t.Fatalf("Sites() = %v", got)
	}
	if got[0].Gen != 7 || got[0].Count != 1 || got[1].Count != 2 {
		t.Fatalf("Sites() = %+v", got)
	}
	if got[0].ExpiresIn != time.Minute {
		t.Fatalf("ExpiresIn = %v", got[0].ExpiresIn)
	}
}

func TestRLIWideFanout(t *testing.T) {
	x := NewRLI(time.Minute, obs.NewRegistry())
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("site-%02d", i)
		x.Update(name, name+":38000", 1, digestOf("shared", fmt.Sprintf("own-%d", i)), 0)
	}
	if got := x.MightHold("shared"); len(got) != 50 {
		t.Fatalf("MightHold(shared) = %d sites, want 50", len(got))
	}
	only := x.MightHold("own-17")
	found := false
	for _, s := range only {
		if s.Name == "site-17" {
			found = true
		}
	}
	if !found {
		t.Fatalf("own-17's holder missing from %v", only)
	}
}
