package replica

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func newTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	return NewCatalog()
}

func mustRegister(t *testing.T, c *Catalog, name string, attrs map[string]string) {
	t.Helper()
	if err := c.Register(name, attrs); err != nil {
		t.Fatalf("Register(%q): %v", name, err)
	}
}

func TestRegisterAndLookup(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "lfn://cern.ch/run42.db", map[string]string{AttrSize: "1024", AttrOwner: "alice"})
	f, err := c.Lookup("lfn://cern.ch/run42.db")
	if err != nil {
		t.Fatal(err)
	}
	if f.Attrs[AttrSize] != "1024" || f.Attrs[AttrOwner] != "alice" {
		t.Fatalf("attrs = %v", f.Attrs)
	}
	if size, ok := f.Size(); !ok || size != 1024 {
		t.Fatalf("Size() = %d, %v", size, ok)
	}
}

func TestGlobalNamespaceUniqueness(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "lfn://cern.ch/a", nil)
	err := c.Register("lfn://cern.ch/a", nil)
	if !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate registration: %v", err)
	}
}

func TestRegisterValidatesNames(t *testing.T) {
	c := newTestCatalog(t)
	for _, bad := range []string{"", "has\nnewline", "has\ttab"} {
		if err := c.Register(bad, nil); !errors.Is(err, ErrBadName) {
			t.Errorf("Register(%q): %v, want ErrBadName", bad, err)
		}
	}
}

func TestLookupCopiesAttrs(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "f", map[string]string{"k": "v"})
	f, _ := c.Lookup("f")
	f.Attrs["k"] = "mutated"
	g, _ := c.Lookup("f")
	if g.Attrs["k"] != "v" {
		t.Fatal("Lookup leaked internal state")
	}
}

func TestGenerateLFNUnique(t *testing.T) {
	c := newTestCatalog(t)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		lfn, err := c.GenerateLFN("cern.ch", "events.db", nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[lfn] {
			t.Fatalf("GenerateLFN repeated %q", lfn)
		}
		seen[lfn] = true
		if _, err := c.Lookup(lfn); err != nil {
			t.Fatalf("generated LFN not registered: %v", err)
		}
	}
}

func TestSetAttrsAndDelete(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "f", map[string]string{"a": "1"})
	if err := c.SetAttrs("f", map[string]string{"b": "2"}); err != nil {
		t.Fatal(err)
	}
	f, _ := c.Lookup("f")
	if f.Attrs["a"] != "1" || f.Attrs["b"] != "2" {
		t.Fatalf("attrs after merge = %v", f.Attrs)
	}
	if err := c.SetAttrs("missing", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetAttrs(missing): %v", err)
	}
	if err := c.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after delete: %v", err)
	}
	if err := c.Delete("f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestReplicaLifecycle(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "lfn://x", nil)
	if err := c.AddReplica("lfn://x", "gridftp://cern.ch:2811/data/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica("lfn://x", "gridftp://anl.gov:2811/data/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica("lfn://x", "gridftp://cern.ch:2811/data/x"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate replica: %v", err)
	}
	locs, err := c.Locations("lfn://x")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 || locs[0] != "gridftp://anl.gov:2811/data/x" {
		t.Fatalf("Locations = %v", locs)
	}
	if err := c.RemoveReplica("lfn://x", "gridftp://anl.gov:2811/data/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica("lfn://x", "gridftp://anl.gov:2811/data/x"); !errors.Is(err, ErrNoSuchReplica) {
		t.Fatalf("remove twice: %v", err)
	}
	locs, _ = c.Locations("lfn://x")
	if len(locs) != 1 {
		t.Fatalf("Locations after removal = %v", locs)
	}
	if _, err := c.Locations("unknown"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Locations(unknown): %v", err)
	}
	if err := c.AddReplica("unknown", "pfn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AddReplica(unknown): %v", err)
	}
}

func TestCollections(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "a", nil)
	mustRegister(t, c, "b", nil)
	if err := c.CreateCollection("run-2001"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateCollection("run-2001"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate collection: %v", err)
	}
	if err := c.AddToCollection("run-2001", "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddToCollection("run-2001", "b"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddToCollection("run-2001", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("adding unregistered lfn: %v", err)
	}
	members, err := c.ListCollection("run-2001")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 || members[0] != "a" || members[1] != "b" {
		t.Fatalf("members = %v", members)
	}
	// Non-empty collections require force to delete.
	if err := c.DeleteCollection("run-2001", false); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty: %v", err)
	}
	if err := c.RemoveFromCollection("run-2001", "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveFromCollection("run-2001", "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove twice: %v", err)
	}
	// Deleting a file cascades out of collections.
	if err := c.Delete("b"); err != nil {
		t.Fatal(err)
	}
	members, _ = c.ListCollection("run-2001")
	if len(members) != 0 {
		t.Fatalf("members after cascade = %v", members)
	}
	if err := c.DeleteCollection("run-2001", false); err != nil {
		t.Fatal(err)
	}
	if got := c.Collections(); len(got) != 0 {
		t.Fatalf("Collections = %v", got)
	}
}

func TestStats(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "a", nil)
	mustRegister(t, c, "b", nil)
	c.AddReplica("a", "p1")
	c.AddReplica("a", "p2")
	c.AddReplica("b", "p3")
	c.CreateCollection("coll")
	st := c.Stats()
	if st.Files != 2 || st.Replicas != 3 || st.Collections != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestConcurrentCatalogAccess(t *testing.T) {
	c := newTestCatalog(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("lfn://site%d/file%d", g, i)
				if err := c.Register(name, map[string]string{AttrSize: "1"}); err != nil {
					t.Errorf("Register: %v", err)
					return
				}
				if err := c.AddReplica(name, "pfn://"+name); err != nil {
					t.Errorf("AddReplica: %v", err)
					return
				}
				if _, err := c.Locations(name); err != nil {
					t.Errorf("Locations: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Files != 400 || st.Replicas != 400 {
		t.Fatalf("Stats after concurrent load = %+v", st)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := newTestCatalog(t)
	mustRegister(t, c, "lfn://cern.ch/run1.db", map[string]string{
		AttrSize: "2048", AttrOwner: "heinz", "weird key": "value with \"quotes\" and\nnewline",
	})
	mustRegister(t, c, "lfn://cern.ch/run2.db", nil)
	c.AddReplica("lfn://cern.ch/run1.db", "gridftp://cern.ch/data/run1.db")
	c.AddReplica("lfn://cern.ch/run1.db", "gridftp://anl.gov/data/run1.db")
	c.CreateCollection("runs")
	c.AddToCollection("runs", "lfn://cern.ch/run1.db")
	if _, err := c.GenerateLFN("cern.ch", "auto", nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewCatalog()
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}

	if st, want := restored.Stats(), c.Stats(); st != want {
		t.Fatalf("restored stats %+v, want %+v", st, want)
	}
	f, err := restored.Lookup("lfn://cern.ch/run1.db")
	if err != nil {
		t.Fatal(err)
	}
	if f.Attrs["weird key"] != "value with \"quotes\" and\nnewline" {
		t.Fatalf("attribute escaping broken: %q", f.Attrs["weird key"])
	}
	locs, _ := restored.Locations("lfn://cern.ch/run1.db")
	if len(locs) != 2 {
		t.Fatalf("restored locations = %v", locs)
	}
	members, _ := restored.ListCollection("runs")
	if len(members) != 1 || members[0] != "lfn://cern.ch/run1.db" {
		t.Fatalf("restored members = %v", members)
	}
	// The serial counter survives, so generated names stay unique.
	lfn, err := restored.GenerateLFN("cern.ch", "auto", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(lfn); err == nil {
		t.Fatalf("restored catalog reused serial: %q", lfn)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Catalog {
		c := NewCatalog()
		for i := 0; i < 20; i++ {
			c.Register(fmt.Sprintf("f%02d", i), map[string]string{"i": fmt.Sprint(i), AttrSize: "10"})
			c.AddReplica(fmt.Sprintf("f%02d", i), fmt.Sprintf("pfn%d", i))
		}
		c.CreateCollection("all")
		for i := 0; i < 20; i++ {
			c.AddToCollection("all", fmt.Sprintf("f%02d", i))
		}
		return c
	}
	var a, b bytes.Buffer
	build().Save(&a)
	build().Save(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot output not deterministic")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "not-a-snapshot\n",
		"attr first":      snapshotHeader + "\nattr \"k\" \"v\"\n",
		"member first":    snapshotHeader + "\nmember \"x\"\n",
		"unknown verb":    snapshotHeader + "\nfrobnicate \"x\"\n",
		"bad quoting":     snapshotHeader + "\nfile notquoted\n",
		"dangling member": snapshotHeader + "\ncoll \"c\"\nmember \"nofile\"\n",
		"duplicate file":  snapshotHeader + "\nfile \"a\"\nfile \"a\"\n",
		"bad serial":      snapshotHeader + "\nserial notanumber\n",
	}
	for name, in := range cases {
		c := NewCatalog()
		if err := c.Load(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.snap")
	c := newTestCatalog(t)
	mustRegister(t, c, "f", map[string]string{"a": "b"})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewCatalog()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Lookup("f"); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPropertyRoundTrip: any catalog built from generated names
// survives a save/load cycle with identical contents.
func TestSnapshotPropertyRoundTrip(t *testing.T) {
	f := func(names []string, attr string) bool {
		c := NewCatalog()
		registered := make(map[string]bool)
		for _, n := range names {
			if validName(n) != nil || registered[n] {
				continue
			}
			registered[n] = true
			c.Register(n, map[string]string{"attr": attr})
			c.AddReplica(n, "pfn://"+n)
		}
		var buf bytes.Buffer
		if c.Save(&buf) != nil {
			return false
		}
		r := NewCatalog()
		if r.Load(bytes.NewReader(buf.Bytes())) != nil {
			return false
		}
		if len(r.Files()) != len(c.Files()) {
			return false
		}
		for _, n := range r.Files() {
			lf, err := r.Lookup(n)
			if err != nil || lf.Attrs["attr"] != attr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
