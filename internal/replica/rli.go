package replica

import (
	"sort"
	"sync"
	"time"

	"gdmp/internal/obs"
)

// RLI is the Replica Location Index tier of the RLS split: it holds one
// soft-state entry per site, each a bloom-filter digest of that site's
// Local Replica Catalog, and answers "which LRCs might hold LFN X" with
// false-positive-only semantics. Entries expire after a TTL unless the
// site pushes a fresh digest, so a dead site silently ages out — the
// classic soft-state design of the EU DataGrid RLS.
type RLI struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[string]*rliEntry
	now     func() time.Time // injectable clock for TTL tests
	met     *rliMetrics
}

type rliEntry struct {
	addr    string // site control address, returned to queriers
	gen     uint64 // digest generation; stale pushes are rejected
	count   uint64 // LFNs in the digest, for status display
	filter  *Bloom
	expires time.Time
}

// DefaultRLITTL is the soft-state lifetime of a pushed digest. Sites
// push every DigestInterval (default 1/3 of this), so one missed push
// does not evict an entry.
const DefaultRLITTL = 5 * time.Minute

// Digest-push outcomes, also the `outcome` label on the push counter.
const (
	PushNew     = "new"     // first digest from this site
	PushRefresh = "refresh" // newer (or re-pushed current) generation
	PushStale   = "stale"   // older generation than already indexed
)

// NewRLI creates an empty index with the given soft-state TTL
// (DefaultRLITTL when zero) recording into r (obs.Default when nil).
func NewRLI(ttl time.Duration, r *obs.Registry) *RLI {
	if ttl <= 0 {
		ttl = DefaultRLITTL
	}
	return &RLI{
		ttl:     ttl,
		entries: make(map[string]*rliEntry),
		now:     time.Now,
		met:     newRLIMetrics(r),
	}
}

// Update applies one digest push from a site. A push whose generation is
// older than the indexed one is rejected as stale (out-of-order delivery
// after a retry, or a restarted site whose generation counter reset);
// pushing the current generation again is a heartbeat that extends the
// TTL; a newer generation replaces the whole filter — the full-digest
// refresh that clears any bits left by since-deleted LFNs. ttl overrides
// the index default when positive (capped at it). The returned generation
// is the one now indexed for the site — on a stale rejection that is the
// NEWER indexed generation, which the pusher adopts so its next push
// supersedes it instead of being rejected until the entry ages out.
func (x *RLI) Update(site, addr string, gen uint64, filter *Bloom, ttl time.Duration) (string, uint64) {
	if ttl <= 0 || ttl > x.ttl {
		ttl = x.ttl
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	now := x.now()
	x.expireLocked(now)
	outcome := PushNew
	if e, ok := x.entries[site]; ok {
		if gen < e.gen {
			x.met.pushes.WithLabelValues(PushStale).Inc()
			return PushStale, e.gen
		}
		outcome = PushRefresh
	}
	x.entries[site] = &rliEntry{
		addr:    addr,
		gen:     gen,
		count:   filter.Count(),
		filter:  filter,
		expires: now.Add(ttl),
	}
	x.met.pushes.WithLabelValues(outcome).Inc()
	x.met.sites.Set(int64(len(x.entries)))
	return outcome, gen
}

// Site is one RLI answer: a site whose digest matched, with the address
// to point-query its LRC and the digest generation that matched (so
// callers can spot how stale the hint was).
type Site struct {
	Name string
	Addr string
	Gen  uint64
}

// MightHold returns the sites whose digests test positive for the LFN,
// sorted by name. False positives are possible — the caller must confirm
// with an LRC point query — but a site whose digest was current when it
// held the file is never omitted.
func (x *RLI) MightHold(lfn string) []Site {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.expireLocked(x.now())
	x.met.queries.Inc()
	var out []Site
	for name, e := range x.entries {
		if e.filter.Test(lfn) {
			out = append(out, Site{Name: name, Addr: e.addr, Gen: e.gen})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	x.met.candidates.Add(int64(len(out)))
	return out
}

// SiteStatus describes one indexed site for status display.
type SiteStatus struct {
	Name      string
	Addr      string
	Gen       uint64
	Count     uint64
	ExpiresIn time.Duration
}

// Sites lists the live index entries, sorted by name.
func (x *RLI) Sites() []SiteStatus {
	x.mu.Lock()
	defer x.mu.Unlock()
	now := x.now()
	x.expireLocked(now)
	out := make([]SiteStatus, 0, len(x.entries))
	for name, e := range x.entries {
		out = append(out, SiteStatus{
			Name:      name,
			Addr:      e.addr,
			Gen:       e.gen,
			Count:     e.count,
			ExpiresIn: e.expires.Sub(now),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// expireLocked drops entries past their TTL. Called with mu held.
func (x *RLI) expireLocked(now time.Time) {
	for name, e := range x.entries {
		if now.After(e.expires) {
			delete(x.entries, name)
			x.met.expirations.Inc()
		}
	}
	x.met.sites.Set(int64(len(x.entries)))
}

// SetClock replaces the TTL clock (test hook).
func (x *RLI) SetClock(now func() time.Time) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.now = now
}

// rliMetrics instruments the index tier.
type rliMetrics struct {
	pushes      *obs.CounterVec // {outcome}
	sites       *obs.Gauge
	expirations *obs.Counter
	queries     *obs.Counter
	candidates  *obs.Counter
}

func newRLIMetrics(r *obs.Registry) *rliMetrics {
	if r == nil {
		r = obs.Default
	}
	return &rliMetrics{
		pushes: r.CounterVec(RLSMetricsPrefix+"_rli_pushes_total",
			"Digest pushes received by the RLI by outcome (new/refresh/stale).", "outcome"),
		sites: r.Gauge(RLSMetricsPrefix+"_rli_sites",
			"Sites with a live (unexpired) digest in the RLI."),
		expirations: r.Counter(RLSMetricsPrefix+"_rli_expirations_total",
			"RLI digests dropped because their soft-state TTL lapsed."),
		queries: r.Counter(RLSMetricsPrefix+"_rli_queries_total",
			"MightHold queries answered by the RLI."),
		candidates: r.Counter(RLSMetricsPrefix+"_rli_candidates_total",
			"Candidate sites returned across all RLI queries."),
	}
}

// PushCount returns the push counter for an outcome (test hook).
func (x *RLI) PushCount(outcome string) int64 {
	return x.met.pushes.WithLabelValues(outcome).Value()
}
