package replica

import (
	"context"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/rpc"
)

// Client is the remote interface to a central Replica Catalog server. GDMP
// wraps it in a higher-level service (internal/core) that adds sanity
// checks, search filters, and automatic creation of required entries,
// exactly as the paper's "higher-level object-oriented wrapper to the
// underlying Globus Replica Catalog library".
type Client struct {
	rc *rpc.Client
}

// Dial connects and authenticates to the catalog server at addr.
func Dial(addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...rpc.DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, cred, roots, opts...)
}

// DialContext is Dial bound to a context governing connection establishment
// and the security handshake.
func DialContext(ctx context.Context, addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...rpc.DialOption) (*Client, error) {
	cl, err := rpc.DialContext(ctx, addr, cred, roots, opts...)
	if err != nil {
		return nil, err
	}
	return &Client{rc: cl}, nil
}

// DialTimeout is Dial with an explicit per-call timeout.
func DialTimeout(addr string, cred *gsi.Credential, roots []*gsi.Certificate, d time.Duration) (*Client, error) {
	return Dial(addr, cred, roots, rpc.WithTimeout(d))
}

// Close releases the connection.
func (c *Client) Close() error { return c.rc.Close() }

// Register creates a logical file entry with attributes.
func (c *Client) Register(ctx context.Context, name string, attrs map[string]string) error {
	var e rpc.Encoder
	e.String(name)
	encodeAttrs(&e, attrs)
	_, err := c.rc.CallContext(ctx, MethodRegister, &e)
	return err
}

// GenerateLFN asks the catalog to mint and register a unique logical name.
func (c *Client) GenerateLFN(ctx context.Context, site, base string, attrs map[string]string) (string, error) {
	var e rpc.Encoder
	e.String(site)
	e.String(base)
	encodeAttrs(&e, attrs)
	d, err := c.rc.CallContext(ctx, MethodGenerate, &e)
	if err != nil {
		return "", err
	}
	lfn := d.String()
	return lfn, d.Finish()
}

// Lookup fetches a logical file entry.
func (c *Client) Lookup(ctx context.Context, name string) (*LogicalFile, error) {
	var e rpc.Encoder
	e.String(name)
	d, err := c.rc.CallContext(ctx, MethodLookup, &e)
	if err != nil {
		return nil, err
	}
	attrs := decodeAttrs(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return &LogicalFile{Name: name, Attrs: attrs}, nil
}

// SetAttrs merges attributes into an entry.
func (c *Client) SetAttrs(ctx context.Context, name string, attrs map[string]string) error {
	var e rpc.Encoder
	e.String(name)
	encodeAttrs(&e, attrs)
	_, err := c.rc.CallContext(ctx, MethodSetAttrs, &e)
	return err
}

// Delete removes a logical file entry and its replica locations.
func (c *Client) Delete(ctx context.Context, name string) error {
	var e rpc.Encoder
	e.String(name)
	_, err := c.rc.CallContext(ctx, MethodDelete, &e)
	return err
}

// Files lists all logical file names.
func (c *Client) Files(ctx context.Context) ([]string, error) {
	d, err := c.rc.CallContext(ctx, MethodFiles, nil)
	if err != nil {
		return nil, err
	}
	files := d.StringList()
	return files, d.Finish()
}

// Query evaluates an LDAP-style filter on the server.
func (c *Client) Query(ctx context.Context, filter string) ([]*LogicalFile, error) {
	var e rpc.Encoder
	e.String(filter)
	d, err := c.rc.CallContext(ctx, MethodQuery, &e)
	if err != nil {
		return nil, err
	}
	n := d.Uint32()
	out := make([]*LogicalFile, 0, n)
	for i := uint32(0); i < n; i++ {
		name := d.String()
		attrs := decodeAttrs(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		out = append(out, &LogicalFile{Name: name, Attrs: attrs})
	}
	return out, d.Finish()
}

// AddReplica records a physical location for a logical file.
func (c *Client) AddReplica(ctx context.Context, lfn, pfn string) error {
	var e rpc.Encoder
	e.String(lfn)
	e.String(pfn)
	_, err := c.rc.CallContext(ctx, MethodAddReplica, &e)
	return err
}

// RemoveReplica deletes a physical location of a logical file.
func (c *Client) RemoveReplica(ctx context.Context, lfn, pfn string) error {
	var e rpc.Encoder
	e.String(lfn)
	e.String(pfn)
	_, err := c.rc.CallContext(ctx, MethodRemoveReplica, &e)
	return err
}

// Locations returns all physical locations of a logical file.
func (c *Client) Locations(ctx context.Context, lfn string) ([]string, error) {
	var e rpc.Encoder
	e.String(lfn)
	d, err := c.rc.CallContext(ctx, MethodLocations, &e)
	if err != nil {
		return nil, err
	}
	locs := d.StringList()
	return locs, d.Finish()
}

// CreateCollection creates an empty collection.
func (c *Client) CreateCollection(ctx context.Context, name string) error {
	var e rpc.Encoder
	e.String(name)
	_, err := c.rc.CallContext(ctx, MethodCreateCollection, &e)
	return err
}

// DeleteCollection removes a collection (force deletes non-empty ones).
func (c *Client) DeleteCollection(ctx context.Context, name string, force bool) error {
	var e rpc.Encoder
	e.String(name)
	e.Bool(force)
	_, err := c.rc.CallContext(ctx, MethodDeleteCollection, &e)
	return err
}

// AddToCollection inserts a logical file into a collection.
func (c *Client) AddToCollection(ctx context.Context, coll, lfn string) error {
	var e rpc.Encoder
	e.String(coll)
	e.String(lfn)
	_, err := c.rc.CallContext(ctx, MethodAddToCollection, &e)
	return err
}

// RemoveFromCollection removes a logical file from a collection.
func (c *Client) RemoveFromCollection(ctx context.Context, coll, lfn string) error {
	var e rpc.Encoder
	e.String(coll)
	e.String(lfn)
	_, err := c.rc.CallContext(ctx, MethodRemoveFromColl, &e)
	return err
}

// ListCollection returns the members of a collection.
func (c *Client) ListCollection(ctx context.Context, name string) ([]string, error) {
	var e rpc.Encoder
	e.String(name)
	d, err := c.rc.CallContext(ctx, MethodListCollection, &e)
	if err != nil {
		return nil, err
	}
	members := d.StringList()
	return members, d.Finish()
}

// Collections lists all collection names.
func (c *Client) Collections(ctx context.Context) ([]string, error) {
	d, err := c.rc.CallContext(ctx, MethodCollections, nil)
	if err != nil {
		return nil, err
	}
	colls := d.StringList()
	return colls, d.Finish()
}

// PushDigest sends a site's bloom digest of its LRC contents to the RLI
// tier: site/addr identify the pusher (addr is the control address
// peers use for LRC point queries), gen is the digest generation, and
// ttl suggests the soft-state lifetime (the server caps it at its own).
// Returns the server's outcome (PushNew/PushRefresh/PushStale) and the
// generation the RLI now indexes for the site — on a stale rejection the
// newer indexed one, which the pusher adopts so its next push supersedes
// it (a restarted site's generation counter starts over at zero). The
// generation rides a trailing wire field older servers omit.
func (c *Client) PushDigest(ctx context.Context, site, addr string, gen uint64, filter *Bloom, ttl time.Duration) (string, uint64, error) {
	var e rpc.Encoder
	e.String(site)
	e.String(addr)
	e.Uint64(gen)
	e.Bytes32(filter.Marshal())
	e.Int64(ttl.Milliseconds())
	d, err := c.rc.CallContext(ctx, MethodRLIPush, &e)
	if err != nil {
		return "", 0, err
	}
	outcome := d.String()
	idxGen := gen
	if d.Remaining() > 0 {
		idxGen = d.Uint64()
	}
	return outcome, idxGen, d.Finish()
}

// Which asks the RLI which sites might hold the LFN (false positives
// possible; confirm with an LRC point query). The per-site digest
// generations ride a trailing block older servers omit, so Gen is zero
// when talking to one.
func (c *Client) Which(ctx context.Context, lfn string) ([]Site, error) {
	var e rpc.Encoder
	e.String(lfn)
	d, err := c.rc.CallContext(ctx, MethodRLIWhich, &e)
	if err != nil {
		return nil, err
	}
	n := d.Uint32()
	capN := n
	if capN > 4096 {
		capN = 4096 // cap wire-supplied preallocation
	}
	out := make([]Site, 0, capN)
	for i := uint32(0); i < n; i++ {
		out = append(out, Site{Name: d.String(), Addr: d.String()})
		if err := d.Err(); err != nil {
			return nil, err
		}
	}
	if d.Remaining() > 0 {
		for i := range out {
			out[i].Gen = d.Uint64()
		}
	}
	return out, d.Finish()
}

// RLISites lists the live RLI entries.
func (c *Client) RLISites(ctx context.Context) ([]SiteStatus, error) {
	d, err := c.rc.CallContext(ctx, MethodRLISites, nil)
	if err != nil {
		return nil, err
	}
	n := d.Uint32()
	capN := n
	if capN > 4096 {
		capN = 4096
	}
	out := make([]SiteStatus, 0, capN)
	for i := uint32(0); i < n; i++ {
		st := SiteStatus{
			Name:  d.String(),
			Addr:  d.String(),
			Gen:   d.Uint64(),
			Count: d.Uint64(),
		}
		st.ExpiresIn = time.Duration(d.Int64()) * time.Millisecond
		if err := d.Err(); err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, d.Finish()
}

// Stats returns catalog entry counts.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	d, err := c.rc.CallContext(ctx, MethodStats, nil)
	if err != nil {
		return Stats{}, err
	}
	st := Stats{
		Files:       int(d.Uint64()),
		Replicas:    int(d.Uint64()),
		Collections: int(d.Uint64()),
	}
	return st, d.Finish()
}
