package replica

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gdmp/internal/obs"
)

func openTestStore(t *testing.T, dir string, shards int) (*Catalog, *Store) {
	t.Helper()
	c := New(Options{Shards: shards, Registry: obs.NewRegistry()})
	st, err := OpenStore(dir, c, StoreOptions{Registry: obs.NewRegistry(), NoSync: true})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return c, st
}

func TestStoreRecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	c, st := openTestStore(t, dir, 8)
	mustRegister(t, c, "lfn://cern.ch/a", map[string]string{AttrSize: "10"})
	mustRegister(t, c, "lfn://cern.ch/b", nil)
	if err := c.AddReplica("lfn://cern.ch/a", "gridftp://cern:2811/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateCollection("runs"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddToCollection("runs", "lfn://cern.ch/a"); err != nil {
		t.Fatal(err)
	}
	// Close the WAL without compacting: recovery must come from records.
	st.mu.Lock()
	st.j.Close()
	st.mu.Unlock()

	c2, st2 := openTestStore(t, dir, 8)
	defer st2.Close()
	f, err := c2.Lookup("lfn://cern.ch/a")
	if err != nil {
		t.Fatalf("recovered Lookup: %v", err)
	}
	if f.Attrs[AttrSize] != "10" {
		t.Fatalf("recovered attrs = %v", f.Attrs)
	}
	locs, err := c2.Locations("lfn://cern.ch/a")
	if err != nil || len(locs) != 1 || locs[0] != "gridftp://cern:2811/a" {
		t.Fatalf("recovered locations = %v, %v", locs, err)
	}
	members, err := c2.ListCollection("runs")
	if err != nil || len(members) != 1 {
		t.Fatalf("recovered collection = %v, %v", members, err)
	}
}

func TestStoreCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	c, st := openTestStore(t, dir, 8)
	for i := 0; i < 100; i++ {
		mustRegister(t, c, fmt.Sprintf("lfn://cern.ch/f%03d", i), nil)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Post-compaction mutations ride the fresh WAL.
	mustRegister(t, c, "lfn://cern.ch/after", nil)
	if err := c.Delete("lfn://cern.ch/f000"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, st2 := openTestStore(t, dir, 8)
	defer st2.Close()
	if got := len(c2.Files()); got != 100 {
		t.Fatalf("recovered %d files, want 100", got)
	}
	if _, err := c2.Lookup("lfn://cern.ch/f000"); err == nil {
		t.Fatal("deleted file resurrected")
	}
	if _, err := c2.Lookup("lfn://cern.ch/after"); err != nil {
		t.Fatalf("post-compact register lost: %v", err)
	}
}

func TestStoreRebalanceAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	c, st := openTestStore(t, dir, 4)
	for i := 0; i < 200; i++ {
		lfn := fmt.Sprintf("lfn://cern.ch/f%03d", i)
		mustRegister(t, c, lfn, map[string]string{AttrSize: fmt.Sprint(i)})
		if err := c.AddReplica(lfn, "gridftp://cern:2811/"+lfn); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with 4x the shards: load re-hashes every entry into the new
	// layout, so a shard-count change is a rebalance, not a migration.
	c2, st2 := openTestStore(t, dir, 16)
	defer st2.Close()
	if c2.ShardCount() != 16 {
		t.Fatalf("ShardCount() = %d", c2.ShardCount())
	}
	for i := 0; i < 200; i++ {
		lfn := fmt.Sprintf("lfn://cern.ch/f%03d", i)
		f, err := c2.Lookup(lfn)
		if err != nil {
			t.Fatalf("rebalanced Lookup(%s): %v", lfn, err)
		}
		if f.Attrs[AttrSize] != fmt.Sprint(i) {
			t.Fatalf("rebalanced attrs = %v", f.Attrs)
		}
		if locs, _ := c2.Locations(lfn); len(locs) != 1 {
			t.Fatalf("rebalanced locations(%s) = %v", lfn, locs)
		}
	}
	// And every entry must live on the shard its hash names.
	for i, sh := range c2.shards {
		sh.mu.RLock()
		for lfn := range sh.files {
			if want := shardIndex(lfn, 16); want != i {
				t.Errorf("%s on shard %d, want %d", lfn, i, want)
			}
		}
		sh.mu.RUnlock()
	}
}

func TestStoreLegacyImportViaCompact(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "rc.snap")
	// Seed a legacy single-file snapshot.
	old := NewCatalog()
	if err := old.Register("lfn://cern.ch/legacy", nil); err != nil {
		t.Fatal(err)
	}
	if err := old.SaveFile(legacy); err != nil {
		t.Fatal(err)
	}

	storeDir := filepath.Join(dir, "store")
	c, st := openTestStore(t, storeDir, 8)
	if got := len(c.Files()); got != 0 {
		t.Fatalf("empty store loaded %d files", got)
	}
	if err := c.LoadFile(legacy); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("adopting Compact: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	c2, st2 := openTestStore(t, storeDir, 8)
	defer st2.Close()
	if _, err := c2.Lookup("lfn://cern.ch/legacy"); err != nil {
		t.Fatalf("imported entry lost: %v", err)
	}
}

func TestStoreSweepsStaleGenerations(t *testing.T) {
	dir := t.TempDir()
	c, st := openTestStore(t, dir, 4)
	mustRegister(t, c, "lfn://cern.ch/a", nil)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// Plant a stale generation dir, as a crash mid-compact would leave.
	stale := filepath.Join(dir, "shards.99")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, st2 := openTestStore(t, dir, 4)
	defer st2.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gens := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "shards.") {
			gens++
		}
	}
	if gens != 1 {
		t.Fatalf("%d generation dirs survive, want 1", gens)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale generation not swept")
	}
}

func TestStoreSerialSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c, st := openTestStore(t, dir, 4)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		lfn, err := c.GenerateLFN("cern.ch", "events.db", nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[lfn] = true
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	c2, st2 := openTestStore(t, dir, 4)
	defer st2.Close()
	for i := 0; i < 10; i++ {
		lfn, err := c2.GenerateLFN("cern.ch", "events.db", nil)
		if err != nil {
			t.Fatalf("GenerateLFN after restart: %v", err)
		}
		if seen[lfn] {
			t.Fatalf("restart reissued LFN %q", lfn)
		}
	}
}
