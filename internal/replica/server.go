package replica

import (
	"context"
	"net"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/rpc"
)

// RPC method names served by the catalog. Each doubles as the ACL operation
// a caller must hold; OpAll grants the full set.
const (
	MethodRegister         = "rc.register"
	MethodGenerate         = "rc.generate"
	MethodLookup           = "rc.lookup"
	MethodSetAttrs         = "rc.setattrs"
	MethodDelete           = "rc.delete"
	MethodFiles            = "rc.files"
	MethodQuery            = "rc.query"
	MethodAddReplica       = "rc.add_replica"
	MethodRemoveReplica    = "rc.remove_replica"
	MethodLocations        = "rc.locations"
	MethodCreateCollection = "rc.create_collection"
	MethodDeleteCollection = "rc.delete_collection"
	MethodAddToCollection  = "rc.add_to_collection"
	MethodRemoveFromColl   = "rc.remove_from_collection"
	MethodListCollection   = "rc.list_collection"
	MethodCollections      = "rc.collections"
	MethodStats            = "rc.stats"

	// RLI tier: sites push bloom digests of their LRC contents and query
	// which sites might hold an LFN (see rli.go).
	MethodRLIPush  = "rli.push"
	MethodRLIWhich = "rli.which"
	MethodRLISites = "rli.sites"
)

// Methods lists every RPC method the catalog server exposes.
var Methods = []string{
	MethodRegister, MethodGenerate, MethodLookup, MethodSetAttrs,
	MethodDelete, MethodFiles, MethodQuery, MethodAddReplica,
	MethodRemoveReplica, MethodLocations, MethodCreateCollection,
	MethodDeleteCollection, MethodAddToCollection, MethodRemoveFromColl,
	MethodListCollection, MethodCollections, MethodStats,
	MethodRLIPush, MethodRLIWhich, MethodRLISites,
}

// AllowCatalogUse grants an identity every catalog operation.
func AllowCatalogUse(acl *gsi.ACL, id gsi.Identity) {
	for _, m := range Methods {
		acl.Allow(id, gsi.Operation(m))
	}
}

// AllowCatalogUseAll grants every authenticated identity every catalog
// operation (typical for a collaboration-internal catalog).
func AllowCatalogUseAll(acl *gsi.ACL) {
	for _, m := range Methods {
		acl.AllowAll(gsi.Operation(m))
	}
}

// encodeAttrs / decodeAttrs move attribute maps across the wire.
func encodeAttrs(e *rpc.Encoder, attrs map[string]string) {
	e.Uint32(uint32(len(attrs)))
	// Deterministic order is unnecessary on the wire but harmless; maps
	// iterate randomly and both sides treat the pairs as a set.
	for k, v := range attrs {
		e.String(k)
		e.String(v)
	}
}

func decodeAttrs(d *rpc.Decoder) map[string]string {
	n := d.Uint32()
	attrs := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		k := d.String()
		v := d.String()
		if d.Err() != nil {
			return nil
		}
		attrs[k] = v
	}
	return attrs
}

// Server exposes a Catalog over the Request Manager RPC layer, together
// with the RLI index tier. The paper's deployment shape — one central
// Replica Catalog service per Grid — still works, but the served catalog
// is now just the central site's LRC, and the co-hosted RLI routes
// lookups to every other site's LRC via pushed digests.
type Server struct {
	catalog *Catalog
	rli     *RLI
	rpc     *rpc.Server
}

// NewServer wraps catalog in an authenticated RPC server, co-hosting an
// RLI with the default soft-state TTL.
func NewServer(catalog *Catalog, cred *gsi.Credential, roots []*gsi.Certificate, acl *gsi.ACL) *Server {
	return NewServerWithRLI(catalog, NewRLI(0, nil), cred, roots, acl)
}

// NewServerWithRLI is NewServer with a caller-configured index tier
// (custom TTL or metrics registry).
func NewServerWithRLI(catalog *Catalog, rli *RLI, cred *gsi.Credential, roots []*gsi.Certificate, acl *gsi.ACL) *Server {
	s := &Server{catalog: catalog, rli: rli, rpc: rpc.NewServer(cred, roots, acl)}
	s.register()
	return s
}

// RLI returns the co-hosted index tier.
func (s *Server) RLI() *RLI { return s.rli }

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error { return s.rpc.Serve(ln) }

// Close shuts the server down.
func (s *Server) Close() error { return s.rpc.Close() }

// Catalog returns the underlying catalog (for snapshotting by the daemon).
func (s *Server) Catalog() *Catalog { return s.catalog }

func (s *Server) register() {
	s.rpc.Handle(MethodRegister, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		attrs := decodeAttrs(args)
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.Register(name, attrs)
	})
	s.rpc.Handle(MethodGenerate, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		site := args.String()
		base := args.String()
		attrs := decodeAttrs(args)
		if err := args.Finish(); err != nil {
			return err
		}
		lfn, err := s.catalog.GenerateLFN(site, base, attrs)
		if err != nil {
			return err
		}
		resp.String(lfn)
		return nil
	})
	s.rpc.Handle(MethodLookup, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		// Copy-free read path: encode straight from the live entry under
		// the shard read lock instead of cloning it first.
		return s.catalog.ReadEntry(name, func(f *LogicalFile) {
			encodeAttrs(resp, f.Attrs)
		})
	})
	s.rpc.Handle(MethodSetAttrs, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		attrs := decodeAttrs(args)
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.SetAttrs(name, attrs)
	})
	s.rpc.Handle(MethodDelete, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.Delete(name)
	})
	s.rpc.Handle(MethodFiles, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		resp.StringList(s.catalog.Files())
		return nil
	})
	s.rpc.Handle(MethodQuery, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		filter := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		files, err := s.catalog.Query(filter)
		if err != nil {
			return err
		}
		resp.Uint32(uint32(len(files)))
		for _, f := range files {
			resp.String(f.Name)
			encodeAttrs(resp, f.Attrs)
		}
		return nil
	})
	s.rpc.Handle(MethodAddReplica, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		pfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.AddReplica(lfn, pfn)
	})
	s.rpc.Handle(MethodRemoveReplica, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		pfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.RemoveReplica(lfn, pfn)
	})
	s.rpc.Handle(MethodLocations, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		locs, err := s.catalog.Locations(lfn)
		if err != nil {
			return err
		}
		resp.StringList(locs)
		return nil
	})
	s.rpc.Handle(MethodCreateCollection, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.CreateCollection(name)
	})
	s.rpc.Handle(MethodDeleteCollection, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		force := args.Bool()
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.DeleteCollection(name, force)
	})
	s.rpc.Handle(MethodAddToCollection, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		coll := args.String()
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.AddToCollection(coll, lfn)
	})
	s.rpc.Handle(MethodRemoveFromColl, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		coll := args.String()
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		return s.catalog.RemoveFromCollection(coll, lfn)
	})
	s.rpc.Handle(MethodListCollection, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		name := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		members, err := s.catalog.ListCollection(name)
		if err != nil {
			return err
		}
		resp.StringList(members)
		return nil
	})
	s.rpc.Handle(MethodCollections, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		resp.StringList(s.catalog.Collections())
		return nil
	})
	s.rpc.Handle(MethodStats, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		st := s.catalog.Stats()
		resp.Uint64(uint64(st.Files))
		resp.Uint64(uint64(st.Replicas))
		resp.Uint64(uint64(st.Collections))
		return nil
	})
	s.rpc.Handle(MethodRLIPush, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		site := args.String()
		addr := args.String()
		gen := args.Uint64()
		blob := args.Bytes32()
		ttlMs := args.Int64()
		if err := args.Finish(); err != nil {
			return err
		}
		filter, err := UnmarshalBloom(blob)
		if err != nil {
			return err
		}
		outcome, idxGen := s.rli.Update(site, addr, gen, filter, time.Duration(ttlMs)*time.Millisecond)
		resp.String(outcome)
		// Trailing indexed generation: a stale-rejected pusher adopts it so
		// its next push supersedes the stale entry (restart convergence).
		resp.Uint64(idxGen)
		return nil
	})
	s.rpc.Handle(MethodRLIWhich, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		sites := s.rli.MightHold(lfn)
		resp.Uint32(uint32(len(sites)))
		for _, st := range sites {
			resp.String(st.Name)
			resp.String(st.Addr)
		}
		// Trailing generation block: appended after the v1 payload so
		// older decoders ignore it and newer ones guard with Remaining().
		for _, st := range sites {
			resp.Uint64(st.Gen)
		}
		return nil
	})
	s.rpc.Handle(MethodRLISites, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		if err := args.Finish(); err != nil {
			return err
		}
		sites := s.rli.Sites()
		resp.Uint32(uint32(len(sites)))
		for _, st := range sites {
			resp.String(st.Name)
			resp.String(st.Addr)
			resp.Uint64(st.Gen)
			resp.Uint64(st.Count)
			resp.Int64(st.ExpiresIn.Milliseconds())
		}
		return nil
	})
}
