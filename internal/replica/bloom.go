package replica

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Bloom is the compressed membership digest a site pushes to the RLI
// tier: a standard bloom filter over its LFN set, so the index can
// answer "which LRCs might hold LFN X" with false positives but no
// false negatives. Uses double hashing (Kirsch–Mitzenmacher) over the
// two halves of one FNV-64a pass, so Add/Test hash the key once.
//
// Not safe for concurrent mutation; build, then treat as read-only.
type Bloom struct {
	k    uint32   // hash functions
	m    uint64   // bits
	n    uint64   // items added
	bits []uint64 // m bits, little-endian within each word
}

// bloomMaxBits caps digest size (128 MiB of bits) against hostile or
// corrupt wire input; a 100M-LFN site at 0.1% FP needs ~1.4G bits, far
// above any deployment this codebase targets.
const bloomMaxBits = 1 << 30

// NewBloom sizes a filter for the expected item count at the target
// false-positive rate (clamped to sane bounds).
func NewBloom(expected int, fpRate float64) *Bloom {
	if expected < 1 {
		expected = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	ln2 := math.Ln2
	m := uint64(math.Ceil(-float64(expected) * math.Log(fpRate) / (ln2 * ln2)))
	if m < 64 {
		m = 64
	}
	if m > bloomMaxBits {
		m = bloomMaxBits
	}
	k := uint32(math.Round(float64(m) / float64(expected) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Bloom{k: k, m: m, bits: make([]uint64, (m+63)/64)}
}

// bloomHash derives the two double-hashing bases from one FNV-64a pass.
func bloomHash(s string) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	sum := h.Sum64()
	h1 = sum
	// Mix the upper half down for the stride; force it odd so the probe
	// sequence cycles through all bit positions.
	h2 = (sum>>32 | sum<<32) | 1
	return h1, h2
}

// Add inserts a key.
func (b *Bloom) Add(s string) {
	h1, h2 := bloomHash(s)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		b.bits[bit>>6] |= 1 << (bit & 63)
	}
	b.n++
}

// Test reports whether the key might be in the set (false positives
// possible, false negatives not).
func (b *Bloom) Test(s string) bool {
	h1, h2 := bloomHash(s)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		if b.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Count reports how many keys were added.
func (b *Bloom) Count() uint64 { return b.n }

// EstimatedFPRate is the theoretical false-positive probability at the
// current fill: (1 - e^(-kn/m))^k.
func (b *Bloom) EstimatedFPRate() float64 {
	if b.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(b.k)*float64(b.n)/float64(b.m)), float64(b.k))
}

// Filter wire format: magic, k, m, n, then the bit words. Carried as an
// opaque byte blob inside the rli.push RPC.
const bloomMagic = "GBF1"

// Marshal serializes the filter for the digest-push wire.
func (b *Bloom) Marshal() []byte {
	out := make([]byte, 4+4+8+8+8*len(b.bits))
	copy(out, bloomMagic)
	binary.BigEndian.PutUint32(out[4:], b.k)
	binary.BigEndian.PutUint64(out[8:], b.m)
	binary.BigEndian.PutUint64(out[16:], b.n)
	for i, w := range b.bits {
		binary.BigEndian.PutUint64(out[24+8*i:], w)
	}
	return out
}

// UnmarshalBloom parses a filter previously produced by Marshal,
// validating geometry against the payload length.
func UnmarshalBloom(p []byte) (*Bloom, error) {
	if len(p) < 24 || string(p[:4]) != bloomMagic {
		return nil, fmt.Errorf("replica: bad bloom digest header")
	}
	k := binary.BigEndian.Uint32(p[4:])
	m := binary.BigEndian.Uint64(p[8:])
	n := binary.BigEndian.Uint64(p[16:])
	if k < 1 || k > 64 || m < 1 || m > bloomMaxBits {
		return nil, fmt.Errorf("replica: bloom digest geometry k=%d m=%d out of range", k, m)
	}
	words := int((m + 63) / 64)
	if len(p) != 24+8*words {
		return nil, fmt.Errorf("replica: bloom digest length %d != %d for m=%d", len(p), 24+8*words, m)
	}
	b := &Bloom{k: k, m: m, n: n, bits: make([]uint64, words)}
	for i := range b.bits {
		b.bits[i] = binary.BigEndian.Uint64(p[24+8*i:])
	}
	return b, nil
}
