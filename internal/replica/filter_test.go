package replica

import (
	"errors"
	"testing"
	"testing/quick"
)

func lf(name string, attrs map[string]string) *LogicalFile {
	return &LogicalFile{Name: name, Attrs: attrs}
}

func matchFilter(t *testing.T, expr string, f *LogicalFile) bool {
	t.Helper()
	flt, err := ParseFilter(expr)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", expr, err)
	}
	return flt.Match(f)
}

func TestFilterEquality(t *testing.T) {
	f := lf("run1", map[string]string{"owner": "alice", "size": "100"})
	if !matchFilter(t, "(owner=alice)", f) {
		t.Error("exact match failed")
	}
	if matchFilter(t, "(owner=bob)", f) {
		t.Error("wrong value matched")
	}
	if matchFilter(t, "(missing=alice)", f) {
		t.Error("missing attribute matched")
	}
}

func TestFilterNameAttribute(t *testing.T) {
	f := lf("lfn://cern.ch/run42.db", nil)
	if !matchFilter(t, "(name=lfn://cern.ch/run42.db)", f) {
		t.Error("name equality failed")
	}
	if !matchFilter(t, "(name=lfn://cern.ch/*)", f) {
		t.Error("name prefix wildcard failed")
	}
	if matchFilter(t, "(name=lfn://anl.gov/*)", f) {
		t.Error("wrong prefix matched")
	}
}

func TestFilterWildcards(t *testing.T) {
	f := lf("x", map[string]string{"type": "objectivity-database"})
	cases := []struct {
		expr string
		want bool
	}{
		{"(type=objectivity-*)", true},
		{"(type=*-database)", true},
		{"(type=*tivity*)", true},
		{"(type=obj*base)", true},
		{"(type=obj*xyz*base)", false},
		{"(type=*)", true}, // presence
		{"(other=*)", false},
		{"(type=objectivity-database)", true},
		{"(type=*objectivity-database*)", true},
	}
	for _, tc := range cases {
		if got := matchFilter(t, tc.expr, f); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestFilterNumericComparison(t *testing.T) {
	f := lf("x", map[string]string{"size": "1500"})
	cases := []struct {
		expr string
		want bool
	}{
		{"(size>=1000)", true},
		{"(size>=1500)", true},
		{"(size>=1501)", false},
		{"(size<=1500)", true},
		{"(size<=200)", false},
		// Numeric, not lexicographic: "1500" >= "200" numerically.
		{"(size>=200)", true},
	}
	for _, tc := range cases {
		if got := matchFilter(t, tc.expr, f); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestFilterLexicographicFallback(t *testing.T) {
	f := lf("x", map[string]string{"owner": "carol"})
	if !matchFilter(t, "(owner>=alice)", f) {
		t.Error("carol >= alice should hold lexicographically")
	}
	if matchFilter(t, "(owner>=dave)", f) {
		t.Error("carol >= dave should not hold")
	}
}

func TestFilterBoolean(t *testing.T) {
	f := lf("x", map[string]string{"owner": "alice", "size": "100", "site": "cern"})
	cases := []struct {
		expr string
		want bool
	}{
		{"(&(owner=alice)(size>=50))", true},
		{"(&(owner=alice)(size>=500))", false},
		{"(|(owner=bob)(site=cern))", true},
		{"(|(owner=bob)(site=anl))", false},
		{"(!(owner=bob))", true},
		{"(!(owner=alice))", false},
		{"(&(|(owner=alice)(owner=bob))(!(site=anl)))", true},
		{"(&(owner=alice)(size>=50)(site=cern))", true},
	}
	for _, tc := range cases {
		if got := matchFilter(t, tc.expr, f); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		"",
		"owner=alice",     // no parens
		"(owner=alice",    // unclosed
		"(owner alice)",   // no operator
		"(&)",             // empty composite
		"(|)",             // empty composite
		"(!)",             // missing operand
		"(owner=alice))",  // trailing
		"((owner=alice))", // bare nesting
		"(=value)",        // missing attribute
	}
	for _, expr := range bad {
		if _, err := ParseFilter(expr); !errors.Is(err, ErrBadFilter) {
			t.Errorf("ParseFilter(%q) = %v, want ErrBadFilter", expr, err)
		}
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	exprs := []string{
		"(owner=alice)",
		"(size>=100)",
		"(size<=100)",
		"(type=*)",
		"(&(a=1)(b=2))",
		"(|(a=1)(b=2)(c=3))",
		"(!(a=1))",
		"(&(|(a=1)(b=2))(!(c=3)))",
	}
	for _, expr := range exprs {
		f1, err := ParseFilter(expr)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", expr, err)
		}
		f2, err := ParseFilter(f1.String())
		if err != nil {
			t.Fatalf("reparse(%q): %v", f1.String(), err)
		}
		if f1.String() != f2.String() {
			t.Errorf("String round trip: %q -> %q", f1.String(), f2.String())
		}
	}
}

func TestFilterWhitespaceTolerated(t *testing.T) {
	f := lf("x", map[string]string{"a": "1"})
	if !matchFilter(t, "( & (a=1) (a=1) )", f) {
		t.Error("whitespace between tokens should be accepted")
	}
}

func TestWildcardMatchProperty(t *testing.T) {
	// A pattern equal to the value, or "*", always matches.
	f := func(s string) bool {
		return wildcardMatch(s, s) && wildcardMatch("*", s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchAll(t *testing.T) {
	if !MatchAll().Match(lf("anything", nil)) {
		t.Fatal("MatchAll should match any entry")
	}
}

func TestCatalogQuery(t *testing.T) {
	c := NewCatalog()
	c.Register("lfn://cern.ch/big.db", map[string]string{AttrSize: "1000000", AttrFileType: "objectivity"})
	c.Register("lfn://cern.ch/small.db", map[string]string{AttrSize: "10", AttrFileType: "objectivity"})
	c.Register("lfn://cern.ch/notes.txt", map[string]string{AttrSize: "10", AttrFileType: "flat"})

	got, err := c.Query("(&(filetype=objectivity)(size>=100))")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "lfn://cern.ch/big.db" {
		t.Fatalf("Query = %v", got)
	}

	got, err = c.Query("(name=lfn://cern.ch/*)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("wildcard query returned %d entries", len(got))
	}
	if _, err := c.Query("not a filter"); err == nil {
		t.Fatal("bad filter accepted")
	}
}
