package replica

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gdmp/internal/journal"
	"gdmp/internal/obs"
	"gdmp/internal/rpc"
)

// Store makes a Catalog durable: every committed mutation (shard op) is
// appended to a write-ahead log via the catalog's mutation hook, and
// Compact freezes the state into a per-shard snapshot generation
// (shards.<gen>/ written by SaveShards) before truncating the WAL. Open
// recovers by loading the generation the journal's snapshot marker names
// and replaying the WAL records on top — the same journal-before-ack
// durability contract internal/core uses for site state.
type Store struct {
	c   *Catalog
	dir string

	// mu guards the journal (whose methods are not concurrency-safe) and
	// the generation counter. Lock order: shard locks / collMu first,
	// then mu — append runs under the mutating shard's lock, and Compact
	// takes every shard lock before mu.
	mu  sync.Mutex
	j   *journal.Journal
	gen uint64

	compactRecs int
}

// StoreOptions tunes a Store.
type StoreOptions struct {
	// Registry receives the journal's gdmp_journal_* metrics.
	Registry *obs.Registry
	// CompactRecords is the WAL record count past which MaybeCompact
	// compacts (default 8192).
	CompactRecords int
	// NoSync skips the per-append fsync (benchmarks only).
	NoSync bool
}

const storeWALDir = "wal"

func shardsDirName(gen uint64) string { return fmt.Sprintf("shards.%d", gen) }

// OpenStore opens (creating if needed) the journaled store in dir and
// recovers the catalog from it: the per-shard snapshot generation named
// by the journal marker, plus a replay of every WAL record after it.
// When the store is empty the catalog is left untouched, so a caller may
// import legacy state first and Compact to adopt it. On return the
// catalog's mutation hook is installed; the caller must not replace it.
func OpenStore(dir string, c *Catalog, opts StoreOptions) (*Store, error) {
	if opts.CompactRecords <= 0 {
		opts.CompactRecords = 8192
	}
	j, rec, err := journal.Open(filepath.Join(dir, storeWALDir), journal.Options{
		NoSync:   opts.NoSync,
		Registry: opts.Registry,
	})
	if err != nil {
		return nil, err
	}
	st := &Store{c: c, dir: dir, j: j, compactRecs: opts.CompactRecords}
	if rec.Snapshot != nil {
		gen, err := parseShardsMarker(rec.Snapshot)
		if err != nil {
			j.Close()
			return nil, err
		}
		if err := c.LoadShards(filepath.Join(dir, shardsDirName(gen))); err != nil {
			j.Close()
			return nil, fmt.Errorf("replica: load shard snapshots gen %d: %w", gen, err)
		}
		st.gen = gen
	}
	for i, p := range rec.Records {
		m, err := decodeMutation(p)
		if err != nil {
			j.Close()
			return nil, fmt.Errorf("replica: store WAL record %d: %w", i, err)
		}
		st.replay(m)
	}
	st.sweepStale()
	c.OnMutate(st.append)
	return st, nil
}

func parseShardsMarker(p []byte) (uint64, error) {
	s := strings.TrimSpace(string(p))
	rest, ok := strings.CutPrefix(s, "rls-shards ")
	if !ok {
		return 0, fmt.Errorf("replica: bad store snapshot marker %q", s)
	}
	return strconv.ParseUint(rest, 10, 64)
}

// sweepStale removes shard-snapshot generations other than the live one
// (left behind by a crash inside Compact, before or after the marker
// moved).
func (s *Store) sweepStale() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	live := shardsDirName(s.gen)
	for _, e := range ents {
		name := e.Name()
		if name == live || !strings.HasPrefix(name, "shards.") {
			continue
		}
		os.RemoveAll(filepath.Join(s.dir, name))
	}
}

// append is the catalog mutation hook: called with the mutated shard's
// lock (or collMu) held, so WAL order matches apply order per shard.
func (s *Store) append(m Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Append(encodeMutation(m))
}

// Records reports WAL records since the last compaction.
func (s *Store) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Records()
}

// Failed reports the journal's latched failure, if any.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Failed()
}

// Compact freezes the catalog into a fresh per-shard snapshot generation
// and truncates the WAL. It quiesces the catalog (every shard lock plus
// the collection lock) for the duration of the snapshot write, so no
// mutation can land in the WAL being truncated without also being in the
// snapshot; callers run it from a maintenance loop, not the hot path.
func (s *Store) Compact() error {
	for _, sh := range s.c.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	s.c.collMu.Lock()
	defer s.c.collMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()

	gen := s.gen + 1
	dir := filepath.Join(s.dir, shardsDirName(gen))
	if err := s.saveShardsLocked(dir); err != nil {
		os.RemoveAll(dir)
		return err
	}
	if err := s.j.Compact([]byte(fmt.Sprintf("rls-shards %d", gen))); err != nil {
		os.RemoveAll(dir)
		return err
	}
	old := s.gen
	s.gen = gen
	os.RemoveAll(filepath.Join(s.dir, shardsDirName(old)))
	for _, sh := range s.c.shards {
		sh.dirty = false
	}
	s.c.collDirty = false
	return nil
}

// MaybeCompact compacts when the WAL has grown past the configured
// record count; reports whether it did.
func (s *Store) MaybeCompact() (bool, error) {
	s.mu.Lock()
	n := s.j.Records()
	s.mu.Unlock()
	if n < s.compactRecs {
		return false, nil
	}
	return true, s.Compact()
}

// Close compacts once more (so restart replays nothing) and closes the
// WAL. A failed journal skips the final compact but still closes.
func (s *Store) Close() error {
	var cerr error
	if s.Failed() == nil {
		cerr = s.Compact()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.j.Close(); err != nil {
		return err
	}
	return cerr
}

// saveShardsLocked is SaveShards for a quiesced catalog: every shard
// lock and collMu are already held by Compact, so it reads the maps
// directly.
func (s *Store) saveShardsLocked(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c := s.c
	for i, sh := range c.shards {
		err := writeAtomic(filepath.Join(dir, shardFileName(i)), func(w io.Writer) error {
			bw := bufio.NewWriter(w)
			fmt.Fprintln(bw, shardHeader)
			fmt.Fprintf(bw, "# shard %d of %d\n", i, len(c.shards))
			names := make([]string, 0, len(sh.files))
			for n := range sh.files {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				writeFileEntry(bw, sh.files[n], sh.locations[n])
			}
			return bw.Flush()
		})
		if err != nil {
			return err
		}
	}
	return writeAtomic(filepath.Join(dir, metaFileName), func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		fmt.Fprintln(bw, metaHeader)
		fmt.Fprintf(bw, "serial %d\n", c.serial.Load())
		fmt.Fprintf(bw, "# shards %d\n", len(c.shards))
		colls := make([]string, 0, len(c.collections))
		for n := range c.collections {
			colls = append(colls, n)
		}
		sort.Strings(colls)
		for _, n := range colls {
			fmt.Fprintf(bw, "coll %s\n", strconv.Quote(n))
			members := make([]string, 0, len(c.collections[n]))
			for m := range c.collections[n] {
				members = append(members, m)
			}
			sort.Strings(members)
			for _, m := range members {
				fmt.Fprintf(bw, "member %s\n", strconv.Quote(m))
			}
		}
		return bw.Flush()
	})
}

// replay applies a recovered WAL record. Replay is tolerant: records are
// facts about mutations that already succeeded, so "already exists" /
// "not found" conditions (snapshot written after the record's shard was
// mutated further) are absorbed rather than failed.
func (s *Store) replay(m Mutation) {
	c := s.c
	switch m.Op {
	case MutRegister:
		if m.Serial > c.serial.Load() {
			c.serial.Store(m.Serial)
		}
		sh := c.shards[shardIndex(m.LFN, len(c.shards))]
		if _, ok := sh.files[m.LFN]; !ok {
			attrs := m.Attrs
			if attrs == nil {
				attrs = make(map[string]string)
			}
			sh.files[m.LFN] = &LogicalFile{Name: m.LFN, Attrs: attrs}
			sh.locations[m.LFN] = make(map[string]bool)
		}
		sh.dirty = true
	case MutSetAttrs:
		sh := c.shards[shardIndex(m.LFN, len(c.shards))]
		if f, ok := sh.files[m.LFN]; ok {
			for k, v := range m.Attrs {
				f.Attrs[k] = v
			}
			sh.dirty = true
		}
	case MutDelete:
		sh := c.shards[shardIndex(m.LFN, len(c.shards))]
		delete(sh.files, m.LFN)
		delete(sh.locations, m.LFN)
		sh.dirty = true
		for _, set := range c.collections {
			delete(set, m.LFN)
		}
		c.collDirty = true
	case MutAddReplica:
		sh := c.shards[shardIndex(m.LFN, len(c.shards))]
		if locs, ok := sh.locations[m.LFN]; ok {
			locs[m.PFN] = true
			sh.dirty = true
		}
	case MutRemoveReplica:
		sh := c.shards[shardIndex(m.LFN, len(c.shards))]
		if locs, ok := sh.locations[m.LFN]; ok {
			delete(locs, m.PFN)
			sh.dirty = true
		}
	case MutCreateColl:
		if _, ok := c.collections[m.Coll]; !ok {
			c.collections[m.Coll] = make(map[string]bool)
		}
		c.collDirty = true
	case MutDeleteColl:
		delete(c.collections, m.Coll)
		c.collDirty = true
	case MutAddToColl:
		if set, ok := c.collections[m.Coll]; ok {
			set[m.LFN] = true
			c.collDirty = true
		}
	case MutRemoveFromColl:
		if set, ok := c.collections[m.Coll]; ok {
			delete(set, m.LFN)
			c.collDirty = true
		}
	}
}

// Mutation records ride the WAL in the RPC wire encoding.
const mutationRecordV1 = 1

func encodeMutation(m Mutation) []byte {
	var e rpc.Encoder
	e.Uint8(mutationRecordV1)
	e.String(m.Op)
	e.String(m.LFN)
	e.String(m.PFN)
	e.String(m.Coll)
	e.Bool(m.Force)
	e.Uint64(m.Serial)
	encodeAttrs(&e, m.Attrs)
	return e.Bytes()
}

func decodeMutation(p []byte) (Mutation, error) {
	d := rpc.NewDecoder(p)
	if v := d.Uint8(); v != mutationRecordV1 {
		return Mutation{}, fmt.Errorf("unknown mutation record version %d", v)
	}
	m := Mutation{
		Op:     d.String(),
		LFN:    d.String(),
		PFN:    d.String(),
		Coll:   d.String(),
		Force:  d.Bool(),
		Serial: d.Uint64(),
		Attrs:  decodeAttrs(d),
	}
	return m, d.Finish()
}
