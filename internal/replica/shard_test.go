package replica

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"gdmp/internal/obs"
)

// seedFromEnv returns the run's property-test seed (overridable with the
// named env var) and logs it so a failure replays exactly.
func seedFromEnv(t *testing.T, env string) int64 {
	t.Helper()
	seed := int64(20260809)
	if s := os.Getenv(env); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("%s %q: %v", env, s, err)
		}
		seed = v
	}
	t.Logf("seed: %d (set %s to replay)", seed, env)
	return seed
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 128},
	} {
		c := New(Options{Shards: tc.in})
		if got := c.ShardCount(); got != tc.want {
			t.Errorf("Shards=%d -> ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardIndexStable(t *testing.T) {
	// The same LFN must always hash to the same shard, and all shards
	// must actually receive traffic under a realistic name distribution.
	hit := make([]bool, 16)
	for i := 0; i < 2000; i++ {
		lfn := fmt.Sprintf("lfn://site-%d.ch/run%d.db", i%7, i)
		idx := shardIndex(lfn, 16)
		if idx < 0 || idx >= 16 {
			t.Fatalf("shardIndex out of range: %d", idx)
		}
		if again := shardIndex(lfn, 16); again != idx {
			t.Fatalf("shardIndex unstable for %q: %d then %d", lfn, idx, again)
		}
		hit[idx] = true
	}
	for i, h := range hit {
		if !h {
			t.Errorf("shard %d never hit by 2000 LFNs", i)
		}
	}
}

// TestShardRebalanceProperty is the seeded rebalance property test: any
// catalog saved under one shard count and loaded under another must hold
// exactly the same files, attrs, locations, and collections, with every
// entry living on the shard its hash names under the NEW layout.
func TestShardRebalanceProperty(t *testing.T) {
	seed := seedFromEnv(t, "RLS_SEED")
	rng := rand.New(rand.NewSource(seed))

	for round := 0; round < 5; round++ {
		fromShards := 1 << rng.Intn(6) // 1..32
		toShards := 1 << rng.Intn(6)
		n := 50 + rng.Intn(200)

		src := New(Options{Shards: fromShards, Registry: obs.NewRegistry()})
		type entry struct {
			attrs map[string]string
			locs  []string
		}
		want := make(map[string]entry, n)
		for i := 0; i < n; i++ {
			lfn := fmt.Sprintf("lfn://site-%d.ch/round%d/f%04d", rng.Intn(5), round, i)
			attrs := map[string]string{AttrSize: fmt.Sprint(rng.Intn(1 << 20))}
			if err := src.Register(lfn, attrs); err != nil {
				t.Fatal(err)
			}
			e := entry{attrs: attrs}
			for r := 0; r < rng.Intn(3); r++ {
				pfn := fmt.Sprintf("gridftp://host%d:2811/%s", r, lfn)
				if err := src.AddReplica(lfn, pfn); err != nil {
					t.Fatal(err)
				}
				e.locs = append(e.locs, pfn)
			}
			want[lfn] = e
		}
		if err := src.CreateCollection("round"); err != nil {
			t.Fatal(err)
		}
		var members []string
		for lfn := range want {
			if rng.Intn(2) == 0 {
				if err := src.AddToCollection("round", lfn); err != nil {
					t.Fatal(err)
				}
				members = append(members, lfn)
			}
		}

		dir := t.TempDir()
		if err := src.SaveShards(dir); err != nil {
			t.Fatalf("seed=%d round=%d SaveShards: %v", seed, round, err)
		}
		dst := New(Options{Shards: toShards, Registry: obs.NewRegistry()})
		if err := dst.LoadShards(dir); err != nil {
			t.Fatalf("seed=%d round=%d LoadShards(%d->%d): %v", seed, round, fromShards, toShards, err)
		}

		if got := len(dst.Files()); got != n {
			t.Fatalf("seed=%d round=%d: %d files after %d->%d rebalance, want %d",
				seed, round, got, fromShards, toShards, n)
		}
		for lfn, e := range want {
			f, err := dst.Lookup(lfn)
			if err != nil {
				t.Fatalf("seed=%d: Lookup(%s): %v", seed, lfn, err)
			}
			if f.Attrs[AttrSize] != e.attrs[AttrSize] {
				t.Fatalf("seed=%d: attrs differ for %s", seed, lfn)
			}
			locs, _ := dst.Locations(lfn)
			if len(locs) != len(e.locs) {
				t.Fatalf("seed=%d: locations differ for %s: %v vs %v", seed, lfn, locs, e.locs)
			}
		}
		got, err := dst.ListCollection("round")
		if err != nil || len(got) != len(members) {
			t.Fatalf("seed=%d: collection differs: %d vs %d (%v)", seed, len(got), len(members), err)
		}
		for i, sh := range dst.shards {
			sh.mu.RLock()
			for lfn := range sh.files {
				if w := shardIndex(lfn, dst.ShardCount()); w != i {
					t.Errorf("seed=%d: %s on shard %d, want %d", seed, lfn, i, w)
				}
			}
			sh.mu.RUnlock()
		}
	}
}

func TestConcurrentShardedMutation(t *testing.T) {
	c := New(Options{Shards: 8, Registry: obs.NewRegistry()})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lfn := fmt.Sprintf("lfn://w%d.ch/f%04d", w, i)
				if err := c.Register(lfn, nil); err != nil {
					t.Errorf("Register: %v", err)
					return
				}
				if err := c.AddReplica(lfn, "gridftp://h:1/"+lfn); err != nil {
					t.Errorf("AddReplica: %v", err)
					return
				}
				if _, err := c.Lookup(lfn); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(c.Files()); got != workers*per {
		t.Fatalf("%d files, want %d", got, workers*per)
	}
	st := c.Stats()
	if st.Files != workers*per || st.Replicas != workers*per {
		t.Fatalf("Stats() = %+v", st)
	}
	lookups, updates := c.ShardOpCounts()
	var l, u int64
	for i := range lookups {
		l += lookups[i]
		u += updates[i]
	}
	if l < workers*per || u < 2*workers*per {
		t.Fatalf("shard op counts: %d lookups, %d updates", l, u)
	}
}

// BenchmarkLookupAllocs pins the satellite claim: the copy-free ReadEntry
// path must not allocate per read, while the cloning Lookup does.
func BenchmarkLookupAllocs(b *testing.B) {
	c := New(Options{Shards: 64, Registry: obs.NewRegistry()})
	for i := 0; i < 1024; i++ {
		lfn := fmt.Sprintf("lfn://cern.ch/f%04d", i)
		if err := c.Register(lfn, map[string]string{AttrSize: "1", AttrOwner: "x", AttrCRC: "y"}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Lookup(fmt.Sprintf("lfn://cern.ch/f%04d", i%1024)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ReadEntry", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			err := c.ReadEntry(fmt.Sprintf("lfn://cern.ch/f%04d", i%1024), func(f *LogicalFile) {
				sink += len(f.Attrs)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		_ = sink
	})
}

func TestReadEntryDoesNotAllocatePerAttrs(t *testing.T) {
	c := New(Options{Shards: 4, Registry: obs.NewRegistry()})
	mustRegister(t, c, "f", map[string]string{"a": "1", "b": "2"})
	allocs := testing.AllocsPerRun(200, func() {
		c.ReadEntry("f", func(f *LogicalFile) {
			if f.Attrs["a"] != "1" {
				t.Error("wrong attrs")
			}
		})
	})
	// Lookup clones the attr map (3+ allocs); ReadEntry must stay under
	// the metrics-path noise floor.
	if allocs > 2 {
		t.Fatalf("ReadEntry allocates %.1f per op", allocs)
	}
	lookupAllocs := testing.AllocsPerRun(200, func() {
		c.Lookup("f")
	})
	if lookupAllocs <= allocs {
		t.Logf("Lookup %.1f allocs vs ReadEntry %.1f (expected Lookup to allocate more)", lookupAllocs, allocs)
	}
}
