package replica

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// The catalog's query language is a subset of RFC 2254 LDAP search filters,
// the language the Globus Replica Catalog inherits from its LDAP backend:
//
//	filter     = "(" ( and / or / not / item ) ")"
//	and        = "&" filter *filter
//	or         = "|" filter *filter
//	not        = "!" filter
//	item       = attr ( "=" / ">=" / "<=" ) value
//	value      = any characters except ")" ; "*" is a wildcard in "="
//
// Comparisons with ">=" and "<=" are numeric when both sides parse as
// integers, otherwise lexicographic. "=" supports "*" wildcards
// (substring/prefix/suffix matching) and "(attr=*)" presence tests.

// ErrBadFilter reports a syntactically invalid filter expression.
var ErrBadFilter = errors.New("replica: bad filter")

// Filter is a compiled query over logical-file attributes.
type Filter interface {
	// Match reports whether the logical file satisfies the filter.
	Match(f *LogicalFile) bool
	// String renders the filter back to its canonical text form.
	String() string
}

type andFilter struct{ subs []Filter }

func (a *andFilter) Match(f *LogicalFile) bool {
	for _, s := range a.subs {
		if !s.Match(f) {
			return false
		}
	}
	return true
}

func (a *andFilter) String() string { return composite("&", a.subs) }

type orFilter struct{ subs []Filter }

func (o *orFilter) Match(f *LogicalFile) bool {
	for _, s := range o.subs {
		if s.Match(f) {
			return true
		}
	}
	return false
}

func (o *orFilter) String() string { return composite("|", o.subs) }

type notFilter struct{ sub Filter }

func (n *notFilter) Match(f *LogicalFile) bool { return !n.sub.Match(f) }
func (n *notFilter) String() string            { return "(!" + n.sub.String() + ")" }

func composite(op string, subs []Filter) string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(op)
	for _, s := range subs {
		b.WriteString(s.String())
	}
	b.WriteString(")")
	return b.String()
}

type cmpOp int

const (
	opEq cmpOp = iota
	opGE
	opLE
)

type itemFilter struct {
	attr  string
	op    cmpOp
	value string
}

// attrValue resolves an attribute, treating "name" as the logical file name
// so filters can select on it directly.
func attrValue(f *LogicalFile, attr string) (string, bool) {
	if attr == "name" {
		return f.Name, true
	}
	v, ok := f.Attrs[attr]
	return v, ok
}

func (i *itemFilter) Match(f *LogicalFile) bool {
	got, ok := attrValue(f, i.attr)
	if !ok {
		return false
	}
	switch i.op {
	case opEq:
		return wildcardMatch(i.value, got)
	case opGE:
		return compare(got, i.value) >= 0
	case opLE:
		return compare(got, i.value) <= 0
	}
	return false
}

func (i *itemFilter) String() string {
	op := "="
	switch i.op {
	case opGE:
		op = ">="
	case opLE:
		op = "<="
	}
	return "(" + i.attr + op + i.value + ")"
}

// compare orders two attribute values: numerically when both are integers,
// lexicographically otherwise.
func compare(a, b string) int {
	na, ea := strconv.ParseInt(a, 10, 64)
	nb, eb := strconv.ParseInt(b, 10, 64)
	if ea == nil && eb == nil {
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// wildcardMatch matches a pattern containing "*" wildcards against a value.
func wildcardMatch(pattern, value string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == value
	}
	// Leading segment anchors at the start.
	if !strings.HasPrefix(value, parts[0]) {
		return false
	}
	value = value[len(parts[0]):]
	// Trailing segment anchors at the end.
	last := parts[len(parts)-1]
	if !strings.HasSuffix(value, last) {
		return false
	}
	value = value[:len(value)-len(last)]
	// Middle segments must appear in order.
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(value, mid)
		if idx < 0 {
			return false
		}
		value = value[idx+len(mid):]
	}
	return true
}

// ParseFilter compiles a filter expression.
func ParseFilter(s string) (Filter, error) {
	p := &filterParser{in: s}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input at %d in %q", ErrBadFilter, p.pos, s)
	}
	return f, nil
}

type filterParser struct {
	in  string
	pos int
}

func (p *filterParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *filterParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("%w: expected %q at %d in %q", ErrBadFilter, string(c), p.pos, p.in)
	}
	p.pos++
	return nil
}

func (p *filterParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *filterParser) parse() (Filter, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var f Filter
	var err error
	switch p.peek() {
	case '&':
		p.pos++
		f, err = p.parseList(func(subs []Filter) Filter { return &andFilter{subs} })
	case '|':
		p.pos++
		f, err = p.parseList(func(subs []Filter) Filter { return &orFilter{subs} })
	case '!':
		p.pos++
		var sub Filter
		sub, err = p.parse()
		if err == nil {
			f = &notFilter{sub}
		}
	default:
		f, err = p.parseItem()
	}
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *filterParser) parseList(build func([]Filter) Filter) (Filter, error) {
	var subs []Filter
	for p.peek() == '(' {
		sub, err := p.parse()
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("%w: empty composite at %d in %q", ErrBadFilter, p.pos, p.in)
	}
	return build(subs), nil
}

func (p *filterParser) parseItem() (Filter, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '=' && p.in[p.pos] != '>' && p.in[p.pos] != '<' && p.in[p.pos] != ')' && p.in[p.pos] != '(' {
		p.pos++
	}
	attr := strings.TrimSpace(p.in[start:p.pos])
	if attr == "" {
		return nil, fmt.Errorf("%w: missing attribute at %d in %q", ErrBadFilter, start, p.in)
	}
	var op cmpOp
	switch {
	case strings.HasPrefix(p.in[p.pos:], ">="):
		op = opGE
		p.pos += 2
	case strings.HasPrefix(p.in[p.pos:], "<="):
		op = opLE
		p.pos += 2
	case p.pos < len(p.in) && p.in[p.pos] == '=':
		op = opEq
		p.pos++
	default:
		return nil, fmt.Errorf("%w: missing operator at %d in %q", ErrBadFilter, p.pos, p.in)
	}
	vstart := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != ')' && p.in[p.pos] != '(' {
		p.pos++
	}
	value := p.in[vstart:p.pos]
	if op == opEq && value == "*" {
		return &presentFilter{attr: attr}, nil
	}
	return &itemFilter{attr: attr, op: op, value: value}, nil
}

// presentFilter implements "(attr=*)" presence tests.
type presentFilter struct{ attr string }

func (pf *presentFilter) Match(f *LogicalFile) bool {
	_, ok := attrValue(f, pf.attr)
	return ok
}

func (pf *presentFilter) String() string { return "(" + pf.attr + "=*)" }

// MatchAll is the filter that matches every entry: "(name=*)".
func MatchAll() Filter { return &presentFilter{attr: "name"} }
