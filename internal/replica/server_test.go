package replica

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/rpc"
)

func TestMain(m *testing.M) {
	gsi.KeyBits = 1024
	m.Run()
}

var (
	srvCAOnce sync.Once
	srvCA     *gsi.CA
)

func testCA(t *testing.T) *gsi.CA {
	t.Helper()
	srvCAOnce.Do(func() {
		ca, err := gsi.NewCA("DataGrid", time.Hour)
		if err != nil {
			panic(err)
		}
		srvCA = ca
	})
	return srvCA
}

// startCatalog runs a catalog server on loopback and returns a connected
// client plus the underlying catalog.
func startCatalog(t *testing.T) (*Client, *Catalog) {
	t.Helper()
	ca := testCA(t)
	roots := []*gsi.Certificate{ca.Certificate()}
	serverCred, err := ca.Issue("replicad/central", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	acl := gsi.NewACL()
	AllowCatalogUseAll(acl)

	cat := NewCatalog()
	srv := NewServer(cat, serverCred, roots, acl)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	clientCred, err := ca.Issue("site-client", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialTimeout(ln.Addr().String(), clientCred, roots, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, cat
}

func TestClientRegisterLookupLocations(t *testing.T) {
	cl, _ := startCatalog(t)
	attrs := map[string]string{AttrSize: "4096", AttrOwner: "heinz"}
	if err := cl.Register(context.Background(), "lfn://cern.ch/events.db", attrs); err != nil {
		t.Fatal(err)
	}
	f, err := cl.Lookup(context.Background(), "lfn://cern.ch/events.db")
	if err != nil {
		t.Fatal(err)
	}
	if f.Attrs[AttrSize] != "4096" || f.Attrs[AttrOwner] != "heinz" {
		t.Fatalf("attrs over the wire = %v", f.Attrs)
	}
	if err := cl.AddReplica(context.Background(), "lfn://cern.ch/events.db", "gridftp://cern.ch/data/events.db"); err != nil {
		t.Fatal(err)
	}
	locs, err := cl.Locations(context.Background(), "lfn://cern.ch/events.db")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 1 || locs[0] != "gridftp://cern.ch/data/events.db" {
		t.Fatalf("Locations = %v", locs)
	}
}

func TestClientErrorsAreRemoteErrors(t *testing.T) {
	cl, _ := startCatalog(t)
	err := cl.AddReplica(context.Background(), "lfn://missing", "pfn")
	if err == nil {
		t.Fatal("expected error for missing lfn")
	}
	var re *rpc.RemoteError
	if !asRemote(err, &re) {
		t.Fatalf("expected RemoteError, got %T: %v", err, err)
	}
	if !strings.Contains(re.Msg, "not found") {
		t.Fatalf("remote message = %q", re.Msg)
	}
}

func asRemote(err error, target **rpc.RemoteError) bool {
	for err != nil {
		if re, ok := err.(*rpc.RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestClientGenerateLFN(t *testing.T) {
	cl, _ := startCatalog(t)
	a, err := cl.GenerateLFN(context.Background(), "cern.ch", "run.db", map[string]string{AttrSize: "1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.GenerateLFN(context.Background(), "cern.ch", "run.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("generated LFNs collide: %q", a)
	}
	if !strings.HasPrefix(a, "lfn://cern.ch/run.db.") {
		t.Fatalf("generated LFN format: %q", a)
	}
}

func TestClientQueryAndCollections(t *testing.T) {
	cl, _ := startCatalog(t)
	for i, size := range []string{"10", "2000", "300000"} {
		name := "lfn://site/f" + string(rune('a'+i))
		if err := cl.Register(context.Background(), name, map[string]string{AttrSize: size}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.Query(context.Background(), "(size>=2000)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Query returned %d entries, want 2", len(got))
	}

	if err := cl.CreateCollection(context.Background(), "dataset1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddToCollection(context.Background(), "dataset1", "lfn://site/fa"); err != nil {
		t.Fatal(err)
	}
	members, err := cl.ListCollection(context.Background(), "dataset1")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0] != "lfn://site/fa" {
		t.Fatalf("members = %v", members)
	}
	colls, err := cl.Collections(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(colls) != 1 || colls[0] != "dataset1" {
		t.Fatalf("collections = %v", colls)
	}
	if err := cl.RemoveFromCollection(context.Background(), "dataset1", "lfn://site/fa"); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteCollection(context.Background(), "dataset1", false); err != nil {
		t.Fatal(err)
	}
}

func TestClientSetAttrsDeleteFilesStats(t *testing.T) {
	cl, _ := startCatalog(t)
	if err := cl.Register(context.Background(), "f1", nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetAttrs(context.Background(), "f1", map[string]string{"crc32": "deadbeef"}); err != nil {
		t.Fatal(err)
	}
	f, _ := cl.Lookup(context.Background(), "f1")
	if f.Attrs["crc32"] != "deadbeef" {
		t.Fatalf("SetAttrs not applied: %v", f.Attrs)
	}
	files, err := cl.Files(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0] != "f1" {
		t.Fatalf("Files = %v", files)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := cl.AddReplica(context.Background(), "f1", "pfn1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveReplica(context.Background(), "f1", "pfn1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(context.Background(), "f1"); err != nil {
		t.Fatal(err)
	}
	if files, _ := cl.Files(context.Background()); len(files) != 0 {
		t.Fatalf("Files after delete = %v", files)
	}
}

func TestUnauthorizedCatalogAccess(t *testing.T) {
	ca := testCA(t)
	roots := []*gsi.Certificate{ca.Certificate()}
	serverCred, err := ca.Issue("replicad/secure", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	acl := gsi.NewACL() // nobody is allowed anything
	srv := NewServer(NewCatalog(), serverCred, roots, acl)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cred, err := ca.Issue("outsider", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialTimeout(ln.Addr().String(), cred, roots, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(context.Background(), "f", nil); err == nil || !strings.Contains(err.Error(), "unauthorized") {
		t.Fatalf("unauthorized register: %v", err)
	}
}
