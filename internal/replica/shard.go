package replica

import (
	"hash/fnv"
	"sync"
)

// The catalog's file table is hash-partitioned into shards, each with
// its own lock, so lookups and replica updates for different LFNs never
// serialize on one mutex. This is the LRC half of the RLS split: every
// site's Local Replica Catalog is a sharded Catalog, and the historical
// central catalog becomes just one LRC among peers (see rli.go for the
// index tier).

// DefaultShards is the shard count used by NewCatalog. It must be a
// power of two so the shard pick is a mask, not a modulo.
const DefaultShards = 64

// catShard is one hash partition of the file table: the logical-file
// entries whose names hash here plus their replica locations, guarded by
// a partition-private lock.
type catShard struct {
	mu        sync.RWMutex
	files     map[string]*LogicalFile
	locations map[string]map[string]bool // lfn -> set of PFNs
	dirty     bool                       // mutated since the last per-shard snapshot
}

func newCatShard() *catShard {
	return &catShard{
		files:     make(map[string]*LogicalFile),
		locations: make(map[string]map[string]bool),
	}
}

// shardIndex hashes an LFN onto a shard (FNV-1a; nShards is a power of
// two). The same function redistributes entries when per-shard snapshots
// are reloaded under a different shard count (see LoadShards), so a
// shard-count change is a rebalance, not a migration.
func shardIndex(lfn string, nShards int) int {
	h := fnv.New64a()
	h.Write([]byte(lfn))
	return int(h.Sum64() & uint64(nShards-1))
}

func (c *Catalog) shardFor(lfn string) (*catShard, int) {
	i := shardIndex(lfn, len(c.shards))
	return c.shards[i], i
}

// Mutation ops journaled through the catalog's mutation hook.
const (
	MutRegister       = "register"
	MutSetAttrs       = "setattrs"
	MutDelete         = "delete"
	MutAddReplica     = "add_replica"
	MutRemoveReplica  = "remove_replica"
	MutCreateColl     = "create_collection"
	MutDeleteColl     = "delete_collection"
	MutAddToColl      = "add_to_collection"
	MutRemoveFromColl = "remove_from_collection"
)

// Mutation describes one committed catalog state change, in the order it
// took effect on its shard. The mutation hook (Catalog.OnMutate) sees
// every one; the journaled Store appends them to a WAL so a crash
// replays the shard ops on top of the last per-shard snapshot set.
type Mutation struct {
	Op    string
	Shard int // shard the LFN hashed to; -1 for collection ops
	LFN   string
	PFN   string
	Coll  string
	Force bool
	// Serial carries the generator counter for MutRegister records minted
	// by GenerateLFN, so replay restores name-generation monotonicity.
	Serial uint64
	Attrs  map[string]string
}

// OnMutate installs the mutation hook, called after each state change
// commits to its shard (while the shard or collection lock is still
// held, so hook invocations for one shard are ordered exactly as the
// mutations were applied). A non-nil error from the hook propagates to
// the caller of the mutating operation: the mutation is in memory but
// was not acknowledged as durable, the same journal-before-ack contract
// internal/core uses for site state. A nil hook (the default) disables
// journaling.
func (c *Catalog) OnMutate(fn func(Mutation) error) {
	c.onMutate = fn
}

// mutated marks the shard dirty and runs the hook. Call with the
// relevant shard lock (or collMu for shard -1) held.
func (c *Catalog) mutated(sh *catShard, m Mutation) error {
	if sh != nil {
		sh.dirty = true
	} else {
		c.collDirty = true
	}
	if c.onMutate == nil {
		return nil
	}
	return c.onMutate(m)
}
