// Package replica implements the Replica Catalog of Section 3.1: the
// "fundamental building block in Data Grid systems" that keeps track of
// multiple physical copies of a single logical file by maintaining a
// mapping from logical file names to physical locations.
//
// The catalog contains the paper's three object types:
//
//   - collection: a named group of logical file names, because "datasets are
//     normally manipulated as a whole";
//   - logical file entry: an optional record holding attribute-value pairs
//     (size, modify timestamp, checksum, ...) for one logical file;
//   - location: the mapping from a logical file name (a globally unique
//     identifier, not a physical location) to the possibly multiple physical
//     locations of its replicas.
//
// Operations mirror the paper's list: creation and deletion of collection,
// location, and logical file entries; insertion and removal of logical file
// names into collections and locations; listing; and "the heart of the
// system, a function to return all physical locations of a logical file".
// Queries accept LDAP-style search filters (see filter.go), standing in for
// the LDAP backend of the Globus implementation. The GDMP paper deploys a
// single central catalog per Grid; so does this package (see server.go).
package replica

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gdmp/internal/obs"
)

// Well-known attribute names used by GDMP when publishing files
// (Section 4.2: "meta-information about the file (such as file size and
// modify time-stamps)").
const (
	AttrSize     = "size"
	AttrModified = "mtime"
	AttrCRC      = "crc32"
	AttrOwner    = "owner"
	AttrFileType = "filetype"
)

// Errors returned by catalog operations.
var (
	ErrExists        = errors.New("replica: entry already exists")
	ErrNotFound      = errors.New("replica: entry not found")
	ErrBadName       = errors.New("replica: invalid name")
	ErrNotEmpty      = errors.New("replica: collection not empty")
	ErrNoSuchReplica = errors.New("replica: no such replica")
)

// LogicalFile is one logical file entry: a globally unique name plus
// attribute-value metadata.
type LogicalFile struct {
	Name  string
	Attrs map[string]string
}

// clone returns a deep copy so callers cannot mutate catalog state.
func (f *LogicalFile) clone() *LogicalFile {
	attrs := make(map[string]string, len(f.Attrs))
	for k, v := range f.Attrs {
		attrs[k] = v
	}
	return &LogicalFile{Name: f.Name, Attrs: attrs}
}

// Size returns the size attribute, if present and numeric.
func (f *LogicalFile) Size() (int64, bool) {
	v, ok := f.Attrs[AttrSize]
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Catalog is the in-memory replica catalog. It is safe for concurrent use;
// the RPC server in this package serializes remote access to a single
// central instance, exactly as the paper's single-LDAP-server deployment.
type Catalog struct {
	mu          sync.RWMutex
	files       map[string]*LogicalFile
	locations   map[string]map[string]bool // lfn -> set of PFNs
	collections map[string]map[string]bool // collection -> set of LFNs
	serial      uint64                     // for LFN auto-generation
	met         *catalogMetrics
}

// NewCatalog creates an empty catalog recording into obs.Default.
func NewCatalog() *Catalog {
	return NewCatalogWithMetrics(nil)
}

// NewCatalogWithMetrics creates an empty catalog recording operation
// counts and latencies into the given registry (obs.Default when nil).
func NewCatalogWithMetrics(r *obs.Registry) *Catalog {
	if r == nil {
		r = obs.Default
	}
	return &Catalog{
		files:       make(map[string]*LogicalFile),
		locations:   make(map[string]map[string]bool),
		collections: make(map[string]map[string]bool),
		met:         newCatalogMetrics(r),
	}
}

func validName(n string) error {
	if n == "" || strings.ContainsAny(n, "\n\r\t") {
		return fmt.Errorf("%w: %q", ErrBadName, n)
	}
	return nil
}

// --- logical files -------------------------------------------------------

// Register creates a logical file entry. The name must be globally unique:
// registering an existing name fails, which is how GDMP "ensures a global
// name space" and verifies user-selected logical file names.
func (c *Catalog) Register(name string, attrs map[string]string) (err error) {
	defer c.met.record(opRegister, time.Now(), &err)
	if err := validName(name); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[name]; ok {
		return fmt.Errorf("%w: logical file %q", ErrExists, name)
	}
	cp := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	c.files[name] = &LogicalFile{Name: name, Attrs: cp}
	c.locations[name] = make(map[string]bool)
	return nil
}

// GenerateLFN reserves and registers an automatically generated unique
// logical file name incorporating the site name and base name, GDMP's
// "automatic generation ... of new logical file names".
func (c *Catalog) GenerateLFN(site, base string, attrs map[string]string) (lfn string, err error) {
	defer c.met.record(opGenerate, time.Now(), &err)
	if err := validName(site); err != nil {
		return "", err
	}
	if err := validName(base); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		c.serial++
		name := fmt.Sprintf("lfn://%s/%s.%06d", site, base, c.serial)
		if _, ok := c.files[name]; ok {
			continue
		}
		cp := make(map[string]string, len(attrs))
		for k, v := range attrs {
			cp[k] = v
		}
		c.files[name] = &LogicalFile{Name: name, Attrs: cp}
		c.locations[name] = make(map[string]bool)
		return name, nil
	}
}

// Lookup returns a copy of the logical file entry.
func (c *Catalog) Lookup(name string) (f *LogicalFile, err error) {
	defer c.met.record(opLookup, time.Now(), &err)
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: logical file %q", ErrNotFound, name)
	}
	return f.clone(), nil
}

// SetAttrs merges attribute updates into an existing entry.
func (c *Catalog) SetAttrs(name string, attrs map[string]string) (err error) {
	defer c.met.record(opSetAttrs, time.Now(), &err)
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[name]
	if !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, name)
	}
	for k, v := range attrs {
		f.Attrs[k] = v
	}
	return nil
}

// Delete removes a logical file entry, its replica locations, and its
// membership in any collections.
func (c *Catalog) Delete(name string) (err error) {
	defer c.met.record(opDelete, time.Now(), &err)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[name]; !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, name)
	}
	delete(c.files, name)
	delete(c.locations, name)
	for _, set := range c.collections {
		delete(set, name)
	}
	return nil
}

// Files returns all logical file names, sorted.
func (c *Catalog) Files() []string {
	defer c.met.record(opFiles, time.Now(), nil)
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.files))
	for n := range c.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query returns copies of the logical files whose attributes satisfy the
// filter expression (see ParseFilter). Clients "can specify filters to
// obtain the exact information that they require".
func (c *Catalog) Query(filter string) (out []*LogicalFile, err error) {
	defer c.met.record(opQuery, time.Now(), &err)
	f, err := ParseFilter(filter)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, lf := range c.files {
		if f.Match(lf) {
			out = append(out, lf.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// --- locations -----------------------------------------------------------

// AddReplica records a physical location (PFN) for a logical file.
func (c *Catalog) AddReplica(lfn, pfn string) (err error) {
	defer c.met.record(opAddReplica, time.Now(), &err)
	if err := validName(pfn); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	locs, ok := c.locations[lfn]
	if !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	if locs[pfn] {
		return fmt.Errorf("%w: replica %q of %q", ErrExists, pfn, lfn)
	}
	locs[pfn] = true
	return nil
}

// RemoveReplica deletes one physical location of a logical file.
func (c *Catalog) RemoveReplica(lfn, pfn string) (err error) {
	defer c.met.record(opRemoveReplica, time.Now(), &err)
	c.mu.Lock()
	defer c.mu.Unlock()
	locs, ok := c.locations[lfn]
	if !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	if !locs[pfn] {
		return fmt.Errorf("%w: %q of %q", ErrNoSuchReplica, pfn, lfn)
	}
	delete(locs, pfn)
	return nil
}

// Locations returns all physical locations of a logical file, sorted — the
// paper's "heart of the system".
func (c *Catalog) Locations(lfn string) (out []string, err error) {
	defer c.met.record(opLocations, time.Now(), &err)
	c.mu.RLock()
	defer c.mu.RUnlock()
	locs, ok := c.locations[lfn]
	if !ok {
		return nil, fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	out = make([]string, 0, len(locs))
	for pfn := range locs {
		out = append(out, pfn)
	}
	sort.Strings(out)
	return out, nil
}

// --- collections ---------------------------------------------------------

// CreateCollection creates an empty collection.
func (c *Catalog) CreateCollection(name string) (err error) {
	defer c.met.record(opCreateCollection, time.Now(), &err)
	if err := validName(name); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.collections[name]; ok {
		return fmt.Errorf("%w: collection %q", ErrExists, name)
	}
	c.collections[name] = make(map[string]bool)
	return nil
}

// DeleteCollection removes a collection. It must be empty unless force is
// set, protecting against accidental loss of dataset groupings.
func (c *Catalog) DeleteCollection(name string, force bool) (err error) {
	defer c.met.record(opDeleteCollection, time.Now(), &err)
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.collections[name]
	if !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	if len(set) > 0 && !force {
		return fmt.Errorf("%w: %q has %d members", ErrNotEmpty, name, len(set))
	}
	delete(c.collections, name)
	return nil
}

// AddToCollection inserts a registered logical file into a collection.
func (c *Catalog) AddToCollection(coll, lfn string) (err error) {
	defer c.met.record(opAddToColl, time.Now(), &err)
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.collections[coll]
	if !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, coll)
	}
	if _, ok := c.files[lfn]; !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	set[lfn] = true
	return nil
}

// RemoveFromCollection removes a logical file from a collection.
func (c *Catalog) RemoveFromCollection(coll, lfn string) (err error) {
	defer c.met.record(opRemoveFromColl, time.Now(), &err)
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.collections[coll]
	if !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, coll)
	}
	if !set[lfn] {
		return fmt.Errorf("%w: %q not in collection %q", ErrNotFound, lfn, coll)
	}
	delete(set, lfn)
	return nil
}

// ListCollection returns the sorted members of a collection.
func (c *Catalog) ListCollection(name string) (out []string, err error) {
	defer c.met.record(opListCollection, time.Now(), &err)
	c.mu.RLock()
	defer c.mu.RUnlock()
	set, ok := c.collections[name]
	if !ok {
		return nil, fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	out = make([]string, 0, len(set))
	for lfn := range set {
		out = append(out, lfn)
	}
	sort.Strings(out)
	return out, nil
}

// Collections returns all collection names, sorted.
func (c *Catalog) Collections() []string {
	defer c.met.record(opCollections, time.Now(), nil)
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.collections))
	for n := range c.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes catalog contents.
type Stats struct {
	Files       int
	Replicas    int
	Collections int
}

// Stats returns entry counts.
func (c *Catalog) Stats() Stats {
	defer c.met.record(opStats, time.Now(), nil)
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Stats{Files: len(c.files), Collections: len(c.collections)}
	for _, locs := range c.locations {
		s.Replicas += len(locs)
	}
	return s
}

// Timestamp formats a time the way catalog attributes store it (RFC3339).
func Timestamp(t time.Time) string { return t.UTC().Format(time.RFC3339) }
