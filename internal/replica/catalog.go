// Package replica implements the Replica Catalog of Section 3.1: the
// "fundamental building block in Data Grid systems" that keeps track of
// multiple physical copies of a single logical file by maintaining a
// mapping from logical file names to physical locations.
//
// The catalog contains the paper's three object types:
//
//   - collection: a named group of logical file names, because "datasets are
//     normally manipulated as a whole";
//   - logical file entry: an optional record holding attribute-value pairs
//     (size, modify timestamp, checksum, ...) for one logical file;
//   - location: the mapping from a logical file name (a globally unique
//     identifier, not a physical location) to the possibly multiple physical
//     locations of its replicas.
//
// Operations mirror the paper's list: creation and deletion of collection,
// location, and logical file entries; insertion and removal of logical file
// names into collections and locations; listing; and "the heart of the
// system, a function to return all physical locations of a logical file".
// Queries accept LDAP-style search filters (see filter.go), standing in for
// the LDAP backend of the Globus implementation.
//
// The GDMP paper deploys a single central catalog per Grid. That shape
// remains available (see server.go), but the package has since been split
// RLS-style after the EU DataGrid retrospectives: the Catalog is an
// LFN-sharded Local Replica Catalog (LRC) — hash-partitioned shards, each
// with its own lock and journal hook — and rli.go adds the Replica
// Location Index (RLI) tier that aggregates soft-state site membership
// from periodically pushed bloom-filter digests (bloom.go).
package replica

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdmp/internal/obs"
)

// Well-known attribute names used by GDMP when publishing files
// (Section 4.2: "meta-information about the file (such as file size and
// modify time-stamps)").
const (
	AttrSize     = "size"
	AttrModified = "mtime"
	AttrCRC      = "crc32"
	AttrOwner    = "owner"
	AttrFileType = "filetype"
)

// Errors returned by catalog operations.
var (
	ErrExists        = errors.New("replica: entry already exists")
	ErrNotFound      = errors.New("replica: entry not found")
	ErrBadName       = errors.New("replica: invalid name")
	ErrNotEmpty      = errors.New("replica: collection not empty")
	ErrNoSuchReplica = errors.New("replica: no such replica")
)

// LogicalFile is one logical file entry: a globally unique name plus
// attribute-value metadata.
type LogicalFile struct {
	Name  string
	Attrs map[string]string
}

// clone returns a deep copy so callers cannot mutate catalog state.
func (f *LogicalFile) clone() *LogicalFile {
	attrs := make(map[string]string, len(f.Attrs))
	for k, v := range f.Attrs {
		attrs[k] = v
	}
	return &LogicalFile{Name: f.Name, Attrs: attrs}
}

// Size returns the size attribute, if present and numeric.
func (f *LogicalFile) Size() (int64, bool) {
	v, ok := f.Attrs[AttrSize]
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Catalog is an in-memory Local Replica Catalog: the file table is
// hash-partitioned across shards (see shard.go), each guarded by its own
// RWMutex, so operations on different LFNs proceed in parallel.
// Collections group LFNs across shards and keep a separate lock. Safe
// for concurrent use.
type Catalog struct {
	shards      []*catShard
	collMu      sync.RWMutex
	collections map[string]map[string]bool // collection -> set of LFNs
	collDirty   bool
	serial      atomic.Uint64 // for LFN auto-generation
	onMutate    func(Mutation) error
	met         *catalogMetrics
	rls         *rlsCatalogMetrics
}

// Options tunes a Catalog.
type Options struct {
	// Shards is the number of hash partitions; rounded up to a power of
	// two, DefaultShards when zero. 1 degenerates to the historical
	// single-mutex catalog (the bench baseline).
	Shards int
	// Registry receives catalog metrics (obs.Default when nil).
	Registry *obs.Registry
}

// New creates an empty catalog with the given options.
func New(opts Options) *Catalog {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard picks mask instead of mod.
	p := 1
	for p < n {
		p <<= 1
	}
	r := opts.Registry
	if r == nil {
		r = obs.Default
	}
	c := &Catalog{
		shards:      make([]*catShard, p),
		collections: make(map[string]map[string]bool),
		met:         newCatalogMetrics(r),
		rls:         newRLSCatalogMetrics(r, p),
	}
	for i := range c.shards {
		c.shards[i] = newCatShard()
	}
	return c
}

// NewCatalog creates an empty catalog recording into obs.Default.
func NewCatalog() *Catalog {
	return New(Options{})
}

// NewCatalogWithMetrics creates an empty catalog recording operation
// counts and latencies into the given registry (obs.Default when nil).
func NewCatalogWithMetrics(r *obs.Registry) *Catalog {
	return New(Options{Registry: r})
}

// ShardCount reports the number of hash partitions.
func (c *Catalog) ShardCount() int { return len(c.shards) }

func validName(n string) error {
	if n == "" || strings.ContainsAny(n, "\n\r\t") {
		return fmt.Errorf("%w: %q", ErrBadName, n)
	}
	return nil
}

// --- logical files -------------------------------------------------------

// Register creates a logical file entry. The name must be globally unique:
// registering an existing name fails, which is how GDMP "ensures a global
// name space" and verifies user-selected logical file names.
func (c *Catalog) Register(name string, attrs map[string]string) (err error) {
	defer c.met.record(opRegister, time.Now(), &err)
	if err := validName(name); err != nil {
		return err
	}
	return c.register(name, attrs, 0)
}

func (c *Catalog) register(name string, attrs map[string]string, serial uint64) error {
	sh, i := c.shardFor(name)
	c.rls.update(i)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.files[name]; ok {
		return fmt.Errorf("%w: logical file %q", ErrExists, name)
	}
	cp := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	sh.files[name] = &LogicalFile{Name: name, Attrs: cp}
	sh.locations[name] = make(map[string]bool)
	return c.mutated(sh, Mutation{Op: MutRegister, Shard: i, LFN: name, Attrs: cp, Serial: serial})
}

// GenerateLFN reserves and registers an automatically generated unique
// logical file name incorporating the site name and base name, GDMP's
// "automatic generation ... of new logical file names".
func (c *Catalog) GenerateLFN(site, base string, attrs map[string]string) (lfn string, err error) {
	defer c.met.record(opGenerate, time.Now(), &err)
	if err := validName(site); err != nil {
		return "", err
	}
	if err := validName(base); err != nil {
		return "", err
	}
	for {
		serial := c.serial.Add(1)
		name := fmt.Sprintf("lfn://%s/%s.%06d", site, base, serial)
		err := c.register(name, attrs, serial)
		if errors.Is(err, ErrExists) {
			continue // serial restored below an already-used value; advance past it
		}
		if err != nil {
			return "", err
		}
		return name, nil
	}
}

// Lookup returns a copy of the logical file entry. Internal hot paths
// that only need to read should prefer ReadEntry, which skips the deep
// copy.
func (c *Catalog) Lookup(name string) (f *LogicalFile, err error) {
	defer c.met.record(opLookup, time.Now(), &err)
	defer c.rls.lookup(time.Now())
	sh, i := c.shardFor(name)
	c.rls.shardLookups[i].Inc()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	lf, ok := sh.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: logical file %q", ErrNotFound, name)
	}
	return lf.clone(), nil
}

// ReadEntry runs fn on the live logical-file entry under the shard read
// lock, without cloning — the copy-free read path for internal callers
// on the lookup hot path. The entry is only valid for the duration of
// fn and must not be mutated or retained.
func (c *Catalog) ReadEntry(name string, fn func(f *LogicalFile)) (err error) {
	defer c.rls.lookup(time.Now())
	sh, i := c.shardFor(name)
	c.rls.shardLookups[i].Inc()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	lf, ok := sh.files[name]
	if !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, name)
	}
	fn(lf)
	return nil
}

// SetAttrs merges attribute updates into an existing entry.
func (c *Catalog) SetAttrs(name string, attrs map[string]string) (err error) {
	defer c.met.record(opSetAttrs, time.Now(), &err)
	sh, i := c.shardFor(name)
	c.rls.update(i)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.files[name]
	if !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, name)
	}
	for k, v := range attrs {
		f.Attrs[k] = v
	}
	return c.mutated(sh, Mutation{Op: MutSetAttrs, Shard: i, LFN: name, Attrs: attrs})
}

// Delete removes a logical file entry, its replica locations, and its
// membership in any collections.
func (c *Catalog) Delete(name string) (err error) {
	defer c.met.record(opDelete, time.Now(), &err)
	sh, i := c.shardFor(name)
	c.rls.update(i)
	sh.mu.Lock()
	if _, ok := sh.files[name]; !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: logical file %q", ErrNotFound, name)
	}
	delete(sh.files, name)
	delete(sh.locations, name)
	err = c.mutated(sh, Mutation{Op: MutDelete, Shard: i, LFN: name})
	sh.mu.Unlock()
	// Collection membership cleanup happens outside the shard lock (shard
	// locks and collMu are never held together; see AddToCollection). The
	// delete mutation record implies it on replay.
	c.collMu.Lock()
	for _, set := range c.collections {
		delete(set, name)
	}
	c.collMu.Unlock()
	return err
}

// Files returns all logical file names, sorted.
func (c *Catalog) Files() []string {
	defer c.met.record(opFiles, time.Now(), nil)
	var out []string
	for _, sh := range c.shards {
		sh.mu.RLock()
		for n := range sh.files {
			out = append(out, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Query returns copies of the logical files whose attributes satisfy the
// filter expression (see ParseFilter). Clients "can specify filters to
// obtain the exact information that they require".
func (c *Catalog) Query(filter string) (out []*LogicalFile, err error) {
	defer c.met.record(opQuery, time.Now(), &err)
	f, err := ParseFilter(filter)
	if err != nil {
		return nil, err
	}
	return c.queryFilter(f), nil
}

// QueryFilter evaluates an already-parsed filter: the matcher is
// compiled once and reused across the shard fan-out (and across calls,
// if the caller caches it), instead of re-parsing the expression per
// query.
func (c *Catalog) QueryFilter(f Filter) []*LogicalFile {
	defer c.met.record(opQuery, time.Now(), nil)
	return c.queryFilter(f)
}

func (c *Catalog) queryFilter(f Filter) []*LogicalFile {
	var out []*LogicalFile
	for _, sh := range c.shards {
		sh.mu.RLock()
		for _, lf := range sh.files {
			if f.Match(lf) {
				out = append(out, lf.clone())
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- locations -----------------------------------------------------------

// AddReplica records a physical location (PFN) for a logical file.
func (c *Catalog) AddReplica(lfn, pfn string) (err error) {
	defer c.met.record(opAddReplica, time.Now(), &err)
	if err := validName(pfn); err != nil {
		return err
	}
	sh, i := c.shardFor(lfn)
	c.rls.update(i)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	locs, ok := sh.locations[lfn]
	if !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	if locs[pfn] {
		return fmt.Errorf("%w: replica %q of %q", ErrExists, pfn, lfn)
	}
	locs[pfn] = true
	return c.mutated(sh, Mutation{Op: MutAddReplica, Shard: i, LFN: lfn, PFN: pfn})
}

// RemoveReplica deletes one physical location of a logical file.
func (c *Catalog) RemoveReplica(lfn, pfn string) (err error) {
	defer c.met.record(opRemoveReplica, time.Now(), &err)
	sh, i := c.shardFor(lfn)
	c.rls.update(i)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	locs, ok := sh.locations[lfn]
	if !ok {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	if !locs[pfn] {
		return fmt.Errorf("%w: %q of %q", ErrNoSuchReplica, pfn, lfn)
	}
	delete(locs, pfn)
	return c.mutated(sh, Mutation{Op: MutRemoveReplica, Shard: i, LFN: lfn, PFN: pfn})
}

// Locations returns all physical locations of a logical file, sorted — the
// paper's "heart of the system".
func (c *Catalog) Locations(lfn string) (out []string, err error) {
	defer c.met.record(opLocations, time.Now(), &err)
	defer c.rls.lookup(time.Now())
	sh, i := c.shardFor(lfn)
	c.rls.shardLookups[i].Inc()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	locs, ok := sh.locations[lfn]
	if !ok {
		return nil, fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	out = make([]string, 0, len(locs))
	for pfn := range locs {
		out = append(out, pfn)
	}
	sort.Strings(out)
	return out, nil
}

// --- collections ---------------------------------------------------------

// CreateCollection creates an empty collection.
func (c *Catalog) CreateCollection(name string) (err error) {
	defer c.met.record(opCreateCollection, time.Now(), &err)
	if err := validName(name); err != nil {
		return err
	}
	c.collMu.Lock()
	defer c.collMu.Unlock()
	if _, ok := c.collections[name]; ok {
		return fmt.Errorf("%w: collection %q", ErrExists, name)
	}
	c.collections[name] = make(map[string]bool)
	return c.mutated(nil, Mutation{Op: MutCreateColl, Shard: -1, Coll: name})
}

// DeleteCollection removes a collection. It must be empty unless force is
// set, protecting against accidental loss of dataset groupings.
func (c *Catalog) DeleteCollection(name string, force bool) (err error) {
	defer c.met.record(opDeleteCollection, time.Now(), &err)
	c.collMu.Lock()
	defer c.collMu.Unlock()
	set, ok := c.collections[name]
	if !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	if len(set) > 0 && !force {
		return fmt.Errorf("%w: %q has %d members", ErrNotEmpty, name, len(set))
	}
	delete(c.collections, name)
	return c.mutated(nil, Mutation{Op: MutDeleteColl, Shard: -1, Coll: name, Force: force})
}

// AddToCollection inserts a registered logical file into a collection.
func (c *Catalog) AddToCollection(coll, lfn string) (err error) {
	defer c.met.record(opAddToColl, time.Now(), &err)
	// Existence check takes the shard read lock only, before collMu; shard
	// locks and collMu are never held together (see Delete).
	if !c.exists(lfn) {
		return fmt.Errorf("%w: logical file %q", ErrNotFound, lfn)
	}
	c.collMu.Lock()
	defer c.collMu.Unlock()
	set, ok := c.collections[coll]
	if !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, coll)
	}
	set[lfn] = true
	return c.mutated(nil, Mutation{Op: MutAddToColl, Shard: -1, Coll: coll, LFN: lfn})
}

func (c *Catalog) exists(lfn string) bool {
	sh, _ := c.shardFor(lfn)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.files[lfn]
	return ok
}

// RemoveFromCollection removes a logical file from a collection.
func (c *Catalog) RemoveFromCollection(coll, lfn string) (err error) {
	defer c.met.record(opRemoveFromColl, time.Now(), &err)
	c.collMu.Lock()
	defer c.collMu.Unlock()
	set, ok := c.collections[coll]
	if !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, coll)
	}
	if !set[lfn] {
		return fmt.Errorf("%w: %q not in collection %q", ErrNotFound, lfn, coll)
	}
	delete(set, lfn)
	return c.mutated(nil, Mutation{Op: MutRemoveFromColl, Shard: -1, Coll: coll, LFN: lfn})
}

// ListCollection returns the sorted members of a collection.
func (c *Catalog) ListCollection(name string) (out []string, err error) {
	defer c.met.record(opListCollection, time.Now(), &err)
	c.collMu.RLock()
	defer c.collMu.RUnlock()
	set, ok := c.collections[name]
	if !ok {
		return nil, fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	out = make([]string, 0, len(set))
	for lfn := range set {
		out = append(out, lfn)
	}
	sort.Strings(out)
	return out, nil
}

// Collections returns all collection names, sorted.
func (c *Catalog) Collections() []string {
	defer c.met.record(opCollections, time.Now(), nil)
	c.collMu.RLock()
	defer c.collMu.RUnlock()
	out := make([]string, 0, len(c.collections))
	for n := range c.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes catalog contents.
type Stats struct {
	Files       int
	Replicas    int
	Collections int
}

// Stats returns entry counts.
func (c *Catalog) Stats() Stats {
	defer c.met.record(opStats, time.Now(), nil)
	var s Stats
	for _, sh := range c.shards {
		sh.mu.RLock()
		s.Files += len(sh.files)
		for _, locs := range sh.locations {
			s.Replicas += len(locs)
		}
		sh.mu.RUnlock()
	}
	c.collMu.RLock()
	s.Collections = len(c.collections)
	c.collMu.RUnlock()
	return s
}

// Digest builds a bloom filter over every LFN currently in the catalog,
// sized for the given false-positive rate. Sites push these to the RLI
// tier as their soft-state membership digest.
func (c *Catalog) Digest(fpRate float64) *Bloom {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.files)
		sh.mu.RUnlock()
	}
	b := NewBloom(n, fpRate)
	for _, sh := range c.shards {
		sh.mu.RLock()
		for name := range sh.files {
			b.Add(name)
		}
		sh.mu.RUnlock()
	}
	return b
}

// Timestamp formats a time the way catalog attributes store it (RFC3339).
func Timestamp(t time.Time) string { return t.UTC().Format(time.RFC3339) }
