package replica

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("lfn://cern.ch/run%d.db", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.Test(fmt.Sprintf("lfn://cern.ch/run%d.db", i)) {
			t.Fatalf("false negative for run%d", i)
		}
	}
	if got := b.Count(); got != 1000 {
		t.Fatalf("Count() = %d, want 1000", got)
	}
}

func TestBloomFPRateNearTarget(t *testing.T) {
	const n, target = 10000, 0.01
	b := NewBloom(n, target)
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("member-%d", i))
	}
	rng := rand.New(rand.NewSource(42))
	fps := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if b.Test(fmt.Sprintf("absent-%d", rng.Int63())) {
			fps++
		}
	}
	rate := float64(fps) / probes
	// The sizing formula targets 1%; allow 3x slack for hash clustering.
	if rate > 3*target {
		t.Fatalf("observed FP rate %.4f, want <= %.4f", rate, 3*target)
	}
	if est := b.EstimatedFPRate(); est > 3*target {
		t.Fatalf("EstimatedFPRate() = %.4f, want <= %.4f", est, 3*target)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	b := NewBloom(500, 0.02)
	for i := 0; i < 500; i++ {
		b.Add(fmt.Sprintf("item-%d", i))
	}
	got, err := UnmarshalBloom(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.k != b.k || got.m != b.m || got.n != b.n {
		t.Fatalf("params differ: got (%d,%d,%d) want (%d,%d,%d)",
			got.k, got.m, got.n, b.k, b.m, b.n)
	}
	for i := 0; i < 500; i++ {
		if !got.Test(fmt.Sprintf("item-%d", i)) {
			t.Fatalf("round-tripped filter lost item-%d", i)
		}
	}
}

func TestBloomUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE1234567890123456789012345678"),
		NewBloom(10, 0.01).Marshal()[:10], // truncated
	}
	for i, p := range cases {
		if _, err := UnmarshalBloom(p); err == nil {
			t.Errorf("case %d: UnmarshalBloom accepted garbage", i)
		}
	}
}

func TestBloomEmpty(t *testing.T) {
	b := NewBloom(0, 0.01)
	if b.Test("anything") {
		t.Fatal("empty filter matched")
	}
	got, err := UnmarshalBloom(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Test("anything") {
		t.Fatal("round-tripped empty filter matched")
	}
}
