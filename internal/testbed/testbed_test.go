package testbed

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gsi"
)

func TestMain(m *testing.M) {
	gsi.KeyBits = 1024
	m.Run()
}

func TestGridLifecycle(t *testing.T) {
	g, err := NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.CatalogAddr == "" {
		t.Fatal("catalog address empty")
	}
	s1, err := g.AddSite("one.org", SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddSite("one.org", SiteOptions{}); err == nil {
		t.Fatal("duplicate site accepted")
	}
	if g.Site("one.org") != s1 {
		t.Fatal("Site lookup broken")
	}
	if g.Site("missing") != nil {
		t.Fatal("missing site should be nil")
	}
	// Sites with MSS and federation come up too.
	s2, err := g.AddSite("two.org", SiteOptions{
		WithMSS: true, MSSCapacity: 1 << 20,
		WithFederation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Federation() == nil {
		t.Fatal("federation missing")
	}
	// Cross-site liveness.
	name, err := s1.Ping(s2.Addr())
	if err != nil || name != "two.org" {
		t.Fatalf("Ping = %q, %v", name, err)
	}
}

func TestWriteSiteFile(t *testing.T) {
	g, err := NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	s, err := g.AddSite("one.org", SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := MakeData(1000, 5)
	full, err := g.WriteSiteFile("one.org", "deep/dir/x.db", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(full)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("file content wrong: %v", err)
	}
	if filepath.Dir(full) != filepath.Join(s.DataDir(), "deep", "dir") {
		t.Fatalf("file placed at %s", full)
	}
	if _, err := g.WriteSiteFile("nope.org", "x", nil); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestMakeDataDeterministic(t *testing.T) {
	a := MakeData(4096, 7)
	b := MakeData(4096, 7)
	c := MakeData(4096, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different data")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSiteOptionsApplied(t *testing.T) {
	g, err := NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	s, err := g.AddSite("tape.org", SiteOptions{
		WithMSS:      true,
		MSSCapacity:  2 << 20,
		MountLatency: time.Millisecond,
		TapeRateMBps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Publishing through the MSS-backed pool works end to end.
	if _, err := g.WriteSiteFile("tape.org", "f.db", MakeData(1024, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("f.db", core.PublishOptions{}); err != nil {
		t.Fatal(err)
	}
}
