// Package testbed assembles complete in-process Data Grids: a certificate
// authority, a central replica catalog server, and any number of GDMP sites
// with their GridFTP servers, optional Mass Storage Systems, and optional
// object federations. Integration tests, examples, and the benchmark
// harness all build their multi-site topologies (Figure 3 of the paper)
// through this package.
package testbed

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	"gdmp/internal/admission"
	"gdmp/internal/core"
	"gdmp/internal/faults"
	"gdmp/internal/gsi"
	"gdmp/internal/health"
	"gdmp/internal/mss"
	"gdmp/internal/objectstore"
	"gdmp/internal/obs"
	"gdmp/internal/replica"
	"gdmp/internal/retry"
)

// Grid is a running in-process Data Grid.
type Grid struct {
	CA    *gsi.CA
	Roots []*gsi.Certificate
	ACL   *gsi.ACL

	Catalog     *replica.Catalog
	CatalogSrv  *replica.Server
	CatalogAddr string

	Sites map[string]*core.Site

	baseDir  string
	siteOpts map[string]SiteOptions
}

// SiteOptions configures one site added to the grid.
type SiteOptions struct {
	// AutoReplicate pulls notified files automatically.
	AutoReplicate bool

	// Parallelism and BufferBytes tune the site's data mover.
	Parallelism int
	BufferBytes int

	// AutoTuneBuffers negotiates socket buffers per source (Section 6).
	AutoTuneBuffers bool

	// WithMSS gives the site a simulated tape library behind its pool.
	WithMSS bool

	// MSSCapacity is the disk-pool size when WithMSS is set (default 1 GiB).
	MSSCapacity int64

	// MountLatency and TapeRateMBps configure the tape model.
	MountLatency time.Duration
	TapeRateMBps float64

	// MSSPolicy selects the disk-pool eviction policy when WithMSS is set
	// (default LRU).
	MSSPolicy mss.EvictionPolicy

	// Prefetch enables the site's collection prefetcher: after this many
	// pool misses in one collection the rest is brought in ahead of
	// demand (0 disables). Only meaningful with WithMSS.
	Prefetch int

	// WithFederation gives the site an object database federation, making
	// it able to replicate "objectivity" files.
	WithFederation bool

	// DialFunc substitutes the transport dialer (WAN emulation).
	DialFunc func(network, addr string) (net.Conn, error)

	// Faults routes every outbound connection of the site (RPC and
	// GridFTP alike) through a fault injector; composes with DialFunc
	// (the injector wraps it).
	Faults *faults.Injector

	// Retry overrides the site's base backoff policy; zero fields take
	// the retry package defaults.
	Retry retry.Policy

	// NotifyFailureThreshold sets how many consecutive notification
	// failures mark a subscriber suspect (default 3).
	NotifyFailureThreshold int

	// TransferAttempts bounds restart attempts per file transfer.
	TransferAttempts int

	// PullWorkers bounds the site's concurrent pull replications
	// (default 4).
	PullWorkers int

	// PerSourceLimit caps concurrent transfers per source site (0 = no
	// per-source cap).
	PerSourceLimit int

	// Select overrides the replica selection policy.
	Select core.ReplicaSelector

	// Metrics gives the site a private instrumentation registry, keeping
	// test assertions isolated from obs.Default.
	Metrics *obs.Registry

	// Durable gives the site a state directory (under the grid's base
	// dir), enabling the crash-safe journal. Combined with Kill and
	// RestartSite this is the crash/restart test surface.
	Durable bool

	// ScrubInterval and AntiEntropyInterval enable the site's background
	// self-healing loops (zero disables each); ScrubRateBytes paces the
	// scrubber's disk reads.
	ScrubInterval       time.Duration
	AntiEntropyInterval time.Duration
	ScrubRateBytes      int64

	// QuarantineMaxAge and QuarantineMaxCount bound the quarantine
	// directory's retention (zero = unlimited).
	QuarantineMaxAge   time.Duration
	QuarantineMaxCount int

	// ParityK and ParityM enable erasure-coded local repair (zero
	// disables): every published or landed replica gets a K+M parity
	// sidecar, and scrub rebuilds ≤M damaged blocks locally instead of
	// re-pulling over the WAN.
	ParityK int
	ParityM int

	// DigestInterval enables the site's RLS digest pusher: every interval
	// the site condenses its Local Replica Catalog into a bloom digest and
	// pushes it to the catalog server's Replica Location Index (zero
	// disables the loop). DigestTTL and DigestFPRate tune the soft-state
	// lifetime and bloom false-positive rate.
	DigestInterval time.Duration
	DigestTTL      time.Duration
	DigestFPRate   float64

	// GDMPListen and FTPListen pin the site's two servers to fixed
	// addresses; empty picks ephemeral ports. RestartSite pins them
	// automatically so a reborn site keeps its identity (PFNs in the
	// replica catalog and subscriber registrations embed the addresses).
	GDMPListen string
	FTPListen  string

	// Health tunes the site's per-peer scoreboard and circuit breakers;
	// zero fields take the health package defaults. Set Seed for
	// replayable reopen jitter.
	Health health.Config

	// HedgeDeadline sets the cold-start stall deadline for hedged pulls
	// (0 = the core default, negative disables hedging).
	HedgeDeadline time.Duration

	// Admission tunes the site's overload-protection controller; zero
	// fields take the admission package defaults.
	Admission admission.Config

	// RPCMaxConns caps concurrent GDMP server connections (0 = unlimited).
	RPCMaxConns int

	// MaxQueuedPulls caps the pull scheduler's queue depth with
	// priority-aware rejection at the cap (0 = unbounded).
	MaxQueuedPulls int

	// StageWriter wraps the staging-file writer of every replica pull
	// (fault injection: disk-full emulation).
	StageWriter func(io.WriterAt) io.WriterAt
}

// NewGrid creates the trust domain and the central replica catalog.
// baseDir hosts all site data directories (use a temp dir).
func NewGrid(baseDir string) (*Grid, error) {
	ca, err := gsi.NewCA("DataGrid", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	roots := []*gsi.Certificate{ca.Certificate()}
	acl := gsi.NewACL()
	replica.AllowCatalogUseAll(acl)
	core.AllowSiteUseAll(acl)

	catalogCred, err := ca.Issue("replicad/central", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	catalog := replica.NewCatalog()
	catalogSrv := replica.NewServer(catalog, catalogCred, roots, acl)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go catalogSrv.Serve(ln)

	return &Grid{
		CA:          ca,
		Roots:       roots,
		ACL:         acl,
		Catalog:     catalog,
		CatalogSrv:  catalogSrv,
		CatalogAddr: ln.Addr().String(),
		Sites:       make(map[string]*core.Site),
		baseDir:     baseDir,
		siteOpts:    make(map[string]SiteOptions),
	}, nil
}

// AddSite creates, starts, and registers a GDMP site.
func (g *Grid) AddSite(name string, opts SiteOptions) (*core.Site, error) {
	if _, dup := g.Sites[name]; dup {
		return nil, fmt.Errorf("testbed: site %q already exists", name)
	}
	cred, err := g.CA.Issue("gdmp/"+name, 24*time.Hour)
	if err != nil {
		return nil, err
	}
	siteDir := filepath.Join(g.baseDir, name)
	dataDir := filepath.Join(siteDir, "pool")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}

	dialFunc := opts.DialFunc
	if opts.Faults != nil {
		dialFunc = opts.Faults.Dialer(dialFunc)
	}
	cfg := core.Config{
		Name:                   name,
		DataDir:                dataDir,
		GDMPListen:             opts.GDMPListen,
		FTPListen:              opts.FTPListen,
		Cred:                   cred,
		TrustRoots:             g.Roots,
		ACL:                    g.ACL,
		ReplicaCatalog:         g.CatalogAddr,
		AutoReplicate:          opts.AutoReplicate,
		Parallelism:            opts.Parallelism,
		BufferBytes:            opts.BufferBytes,
		AutoTuneBuffers:        opts.AutoTuneBuffers,
		DialFunc:               dialFunc,
		Retry:                  opts.Retry,
		NotifyFailureThreshold: opts.NotifyFailureThreshold,
		TransferAttempts:       opts.TransferAttempts,
		PullWorkers:            opts.PullWorkers,
		PerSourceLimit:         opts.PerSourceLimit,
		Select:                 opts.Select,
		Metrics:                opts.Metrics,
		ScrubInterval:          opts.ScrubInterval,
		AntiEntropyInterval:    opts.AntiEntropyInterval,
		ScrubRateBytes:         opts.ScrubRateBytes,
		QuarantineMaxAge:       opts.QuarantineMaxAge,
		QuarantineMaxCount:     opts.QuarantineMaxCount,
		ParityK:                opts.ParityK,
		ParityM:                opts.ParityM,
		PrefetchThreshold:      opts.Prefetch,
		DigestInterval:         opts.DigestInterval,
		DigestTTL:              opts.DigestTTL,
		DigestFPRate:           opts.DigestFPRate,
		Health:                 opts.Health,
		HedgeDeadline:          opts.HedgeDeadline,
		Admission:              opts.Admission,
		RPCMaxConns:            opts.RPCMaxConns,
		MaxQueuedPulls:         opts.MaxQueuedPulls,
		StageWriter:            opts.StageWriter,
	}
	if opts.Durable {
		cfg.StateDir = filepath.Join(siteDir, "state")
	}
	if opts.WithMSS {
		capacity := opts.MSSCapacity
		if capacity <= 0 {
			capacity = 1 << 30
		}
		m, err := mss.New(mss.Config{
			TapeDir:      filepath.Join(siteDir, "tape"),
			PoolDir:      dataDir,
			PoolCapacity: capacity,
			MountLatency: opts.MountLatency,
			TapeRateMBps: opts.TapeRateMBps,
			Policy:       opts.MSSPolicy,
		})
		if err != nil {
			return nil, err
		}
		cfg.MSS = m
	}
	if opts.WithFederation {
		cfg.Federation = objectstore.NewFederation()
	}

	site, err := core.NewSite(cfg)
	if err != nil {
		return nil, err
	}
	g.Sites[name] = site
	g.siteOpts[name] = opts
	return site, nil
}

// Site returns a site by name.
func (g *Grid) Site(name string) *core.Site { return g.Sites[name] }

// RestartSite simulates a crash-and-reboot of a site: the running
// instance is killed abruptly (no graceful drain, no final journal
// snapshot), and a new instance starts over the same data and state
// directories, pinned to the same control and data addresses so its
// catalog PFNs and subscriber registrations stay valid. The caller may
// also have killed the site already; Kill is idempotent.
func (g *Grid) RestartSite(name string) (*core.Site, error) {
	old, ok := g.Sites[name]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown site %q", name)
	}
	opts := g.siteOpts[name]
	opts.GDMPListen = old.Addr()
	opts.FTPListen = old.DataAddr()
	old.Kill()
	delete(g.Sites, name)
	return g.AddSite(name, opts)
}

// Close shuts down every site and the catalog server.
func (g *Grid) Close() {
	for _, s := range g.Sites {
		s.Close()
	}
	g.CatalogSrv.Close()
}

// WriteSiteFile drops bytes into a site's data directory so they can be
// published (simulating detector output landing at a production site).
func (g *Grid) WriteSiteFile(siteName, relPath string, data []byte) (string, error) {
	site, ok := g.Sites[siteName]
	if !ok {
		return "", fmt.Errorf("testbed: unknown site %q", siteName)
	}
	full := filepath.Join(site.DataDir(), filepath.FromSlash(relPath))
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return "", err
	}
	if err := os.WriteFile(full, data, 0o644); err != nil {
		return "", err
	}
	return full, nil
}

// MakeData builds deterministic pseudo-random content.
func MakeData(size int, seed int64) []byte {
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}
