// Package journal is the crash-safe durability core of a GDMP site: an
// append-only, fsync'd, record-checksummed write-ahead log paired with
// compacting snapshots. The paper's recovery story (Section 4.1's
// catalog-based failure recovery, Section 3.2's restartable transfers)
// assumes a site can die at an arbitrary instruction and come back; this
// package supplies the on-disk contract that makes the in-memory state
// reconstructible after exactly such a death.
//
// Layout under the journal directory:
//
//	snapshot    — the latest compacted snapshot (replaced atomically),
//	              stamped with its generation number
//	wal.<gen>   — records appended since the generation-<gen> snapshot
//	wal.torn    — quarantined bytes from the last torn tail, for forensics
//
// Every record is framed as
//
//	u32 payload length | u32 IEEE CRC-32 of payload | payload
//
// and Append only returns after the bytes are written and fsync'd, so a
// caller that journals a mutation before acknowledging it can never ack
// state the disk does not hold. On Open the write-ahead log is replayed;
// a torn or corrupt tail record — the signature of a crash mid-append —
// is cut off at the last intact record, preserved in wal.torn, and the
// log truncated so subsequent appends continue from a clean boundary.
//
// Snapshots use the same length+CRC framing behind a header line, are
// written to a temporary file, fsync'd, and renamed into place, so a
// crash during compaction leaves either the old snapshot or the new one,
// never a hybrid. Each compaction advances the generation and starts a
// fresh wal.<gen>; Open replays only the WAL whose generation matches the
// snapshot it loaded and deletes the rest, so a crash between the
// snapshot rename and the old log's removal can never double-apply
// records the snapshot already contains (records may therefore be deltas,
// not just state replacements).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gdmp/internal/obs"
)

// MetricsPrefix prefixes every journal metric.
const MetricsPrefix = "gdmp_journal"

// Names of the files managed inside the journal directory.
const (
	snapshotName = "snapshot"
	walPrefix    = "wal."
	tornName     = "wal.torn"
)

// walFileName is the write-ahead log of one snapshot generation.
func walFileName(gen uint64) string {
	return fmt.Sprintf("%s%d", walPrefix, gen)
}

// snapshotHeader guards against loading a foreign file as a snapshot.
// v2 added the generation stamp that ties a snapshot to its WAL.
const snapshotHeader = "gdmp-journal-snapshot v2\n"

// MaxRecord bounds a single record (and the snapshot payload is bounded
// by the same framing arithmetic); anything larger is rejected at Append
// and treated as corruption at replay.
const MaxRecord = 64 << 20

// ErrCorruptSnapshot reports a snapshot that fails its checksum or
// framing. Unlike a torn WAL tail — which is expected after a crash and
// recovered from silently — a broken snapshot means the atomic-rename
// contract was violated (disk fault, manual edit) and needs an operator.
var ErrCorruptSnapshot = errors.New("journal: corrupt snapshot")

// Options tunes a Journal.
type Options struct {
	// NoSync skips the fsync after every append. Throughput harnesses
	// may set it; durable deployments must not.
	NoSync bool

	// Registry receives the gdmp_journal_* metrics (obs.Default when nil).
	Registry *obs.Registry
}

// Recovery is what Open reconstructed from disk.
type Recovery struct {
	// Snapshot is the latest compacted snapshot payload, nil when the
	// journal had none.
	Snapshot []byte

	// Records are the intact WAL records appended after the snapshot, in
	// append order.
	Records [][]byte

	// TornBytes is how many trailing bytes were cut from the WAL because
	// they did not form an intact record (crash mid-append). They are
	// preserved in wal.torn.
	TornBytes int64
}

// metrics bundles the journal's collectors.
type metrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	compactions *obs.Counter
	walBytes    *obs.Gauge
	walRecords  *obs.Gauge
	tornTails   *obs.Counter
	failed      *obs.Gauge
}

func metricsFor(r *obs.Registry) *metrics {
	if r == nil {
		r = obs.Default
	}
	return &metrics{
		appends: r.Counter(MetricsPrefix+"_appends_total",
			"Records appended (and fsync'd) to the write-ahead log."),
		appendBytes: r.Counter(MetricsPrefix+"_append_bytes_total",
			"Payload bytes appended to the write-ahead log."),
		compactions: r.Counter(MetricsPrefix+"_compactions_total",
			"Snapshot compactions that truncated the write-ahead log."),
		walBytes: r.Gauge(MetricsPrefix+"_wal_bytes",
			"Current size of the write-ahead log in bytes."),
		walRecords: r.Gauge(MetricsPrefix+"_wal_records",
			"Records in the write-ahead log since the last compaction."),
		tornTails: r.Counter(MetricsPrefix+"_torn_tails_total",
			"Torn or corrupt WAL tails truncated and quarantined at open."),
		failed: r.Gauge(MetricsPrefix+"_failed",
			"1 when the journal has latched an append/fsync failure and refuses writes."),
	}
}

// Journal is an open write-ahead log plus its snapshot. Methods are not
// safe for concurrent use; callers serialize (a site journals under the
// same lock that guards the state being journaled).
type Journal struct {
	dir  string
	opts Options
	wal  *os.File
	gen  uint64 // snapshot generation the open WAL belongs to
	size int64  // current WAL size in bytes
	recs int    // records since last compaction
	fail error  // sticky append failure: a partial frame may be on disk
	met  *metrics
}

// Open opens (creating if needed) the journal in dir and replays it.
func Open(dir string, opts Options) (*Journal, Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	j := &Journal{dir: dir, opts: opts, met: metricsFor(opts.Registry)}

	var rec Recovery
	snap, gen, err := readSnapshot(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, Recovery{}, err
	}
	rec.Snapshot = snap
	j.gen = gen

	// Sweep leftovers of an interrupted compaction: a stale previous-
	// generation WAL (crash after the snapshot rename but before the old
	// log's removal) or an orphaned next-generation WAL and snapshot temp
	// (crash before the rename). Replaying a foreign-generation WAL onto
	// this snapshot would re-apply records the snapshot already contains.
	removeForeignWALs(dir, gen)
	os.Remove(filepath.Join(dir, snapshotName+".tmp"))

	walPath := filepath.Join(dir, walFileName(gen))
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, err
	}
	records, good, torn, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, Recovery{}, err
	}
	if len(torn) > 0 {
		// Preserve the tail for forensics, then cut the log back to the
		// last intact record so appends resume from a clean boundary.
		if err := os.WriteFile(filepath.Join(dir, tornName), torn, 0o644); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		rec.TornBytes = int64(len(torn))
		j.met.tornTails.Inc()
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, Recovery{}, err
	}
	rec.Records = records
	j.wal = f
	j.size = good
	j.recs = len(records)
	j.met.walBytes.Set(j.size)
	j.met.walRecords.Set(int64(j.recs))
	return j, rec, nil
}

// readSnapshot loads and verifies the snapshot file, returning its
// payload and generation; a missing snapshot returns (nil, 0, nil).
func readSnapshot(path string) ([]byte, uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	h := []byte(snapshotHeader)
	if len(b) < len(h)+16 || string(b[:len(h)]) != snapshotHeader {
		return nil, 0, fmt.Errorf("%w: bad header in %s", ErrCorruptSnapshot, path)
	}
	b = b[len(h):]
	gen := binary.BigEndian.Uint64(b[0:8])
	n := binary.BigEndian.Uint32(b[8:12])
	sum := binary.BigEndian.Uint32(b[12:16])
	if uint64(n) != uint64(len(b)-16) {
		return nil, 0, fmt.Errorf("%w: length %d of %d payload bytes in %s",
			ErrCorruptSnapshot, n, len(b)-16, path)
	}
	payload := b[16:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch in %s", ErrCorruptSnapshot, path)
	}
	return payload, gen, nil
}

// removeForeignWALs deletes every wal.<n> whose generation differs from
// gen; best-effort (a file that survives is removed at the next open).
func removeForeignWALs(dir string, gen uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == walFileName(gen) || !strings.HasPrefix(name, walPrefix) {
			continue
		}
		if _, err := strconv.ParseUint(name[len(walPrefix):], 10, 64); err != nil {
			continue // wal.torn and friends
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// scanWAL reads intact records and returns them, the offset of the first
// byte past the last intact record, and any torn tail bytes after it.
func scanWAL(f *os.File) (records [][]byte, good int64, torn []byte, err error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, nil, err
	}
	off := 0
	for {
		if len(b)-off < 8 {
			break // short header: torn
		}
		n := binary.BigEndian.Uint32(b[off : off+4])
		sum := binary.BigEndian.Uint32(b[off+4 : off+8])
		if n > MaxRecord || len(b)-off-8 < int(n) {
			break // impossible or short payload: torn
		}
		payload := b[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: everything from here is suspect
		}
		records = append(records, append([]byte(nil), payload...))
		off += 8 + int(n)
	}
	if off < len(b) {
		torn = append([]byte(nil), b[off:]...)
	}
	return records, int64(off), torn, nil
}

// Append frames, writes, and fsyncs one record. It returns only after the
// bytes are durable (unless Options.NoSync), so callers may acknowledge
// the journaled mutation the moment Append returns — and must refuse to
// acknowledge when it errors. A write or fsync failure latches the
// journal failed: a partial frame may already be on disk, and appending
// past it would bury every later record behind a corrupt one at replay.
func (j *Journal) Append(payload []byte) error {
	if j.fail != nil {
		return j.fail
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds %d", len(payload), MaxRecord)
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := j.wal.Write(buf); err != nil {
		j.fail = fmt.Errorf("journal: append: %w", err)
		j.met.failed.Set(1)
		return j.fail
	}
	if !j.opts.NoSync {
		if err := j.wal.Sync(); err != nil {
			j.fail = fmt.Errorf("journal: fsync: %w", err)
			j.met.failed.Set(1)
			return j.fail
		}
	}
	j.size += int64(len(buf))
	j.recs++
	j.met.appends.Inc()
	j.met.appendBytes.Add(int64(len(payload)))
	j.met.walBytes.Set(j.size)
	j.met.walRecords.Set(int64(j.recs))
	return nil
}

// Records reports how many records the WAL holds since the last
// compaction (replayed ones included); sites use it to decide when to
// compact.
func (j *Journal) Records() int { return j.recs }

// Failed reports the latched append/fsync failure, if any. Once latched
// the journal refuses every further write; callers surface this through
// status RPCs so operators learn a site is running without durability.
func (j *Journal) Failed() error { return j.fail }

// Compact atomically replaces the snapshot with the given payload,
// advances the generation, and retires the old write-ahead log for a
// fresh empty one. A crash at any point leaves either the old snapshot
// with its own WAL intact, or the new snapshot with an empty (or absent)
// wal.<gen+1>; Open never replays a WAL from a different generation than
// the snapshot it loaded, so records are free to be deltas.
func (j *Journal) Compact(snapshot []byte) error {
	if j.fail != nil {
		return j.fail
	}
	newGen := j.gen + 1
	path := filepath.Join(j.dir, snapshotName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	buf := make([]byte, len(snapshotHeader)+16+len(snapshot))
	copy(buf, snapshotHeader)
	binary.BigEndian.PutUint64(buf[len(snapshotHeader):], newGen)
	binary.BigEndian.PutUint32(buf[len(snapshotHeader)+8:], uint32(len(snapshot)))
	binary.BigEndian.PutUint32(buf[len(snapshotHeader)+12:], crc32.ChecksumIEEE(snapshot))
	copy(buf[len(snapshotHeader)+16:], snapshot)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// The new generation's (empty) WAL exists durably before the rename:
	// whichever side of the rename a crash lands on, the WAL matching the
	// surviving snapshot holds no foreign records.
	newWALPath := filepath.Join(j.dir, walFileName(newGen))
	nw, err := os.OpenFile(newWALPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := nw.Sync(); err != nil {
		nw.Close()
		os.Remove(newWALPath)
		os.Remove(tmp)
		return err
	}
	syncDir(j.dir)
	if err := os.Rename(tmp, path); err != nil {
		nw.Close()
		os.Remove(newWALPath)
		os.Remove(tmp)
		return err
	}
	syncDir(j.dir)
	// The new snapshot is durable; retire the old generation's log.
	oldWAL, oldGen := j.wal, j.gen
	j.wal = nw
	j.gen = newGen
	j.size = 0
	j.recs = 0
	oldWAL.Close()
	os.Remove(filepath.Join(j.dir, walFileName(oldGen)))
	syncDir(j.dir)
	j.met.compactions.Inc()
	j.met.walBytes.Set(0)
	j.met.walRecords.Set(0)
	return nil
}

// Close closes the write-ahead log file.
func (j *Journal) Close() error {
	if j.wal == nil {
		return nil
	}
	err := j.wal.Close()
	j.wal = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
