package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gdmp/internal/obs"
)

func openT(t *testing.T, dir string) (*Journal, Recovery) {
	t.Helper()
	j, rec, err := Open(dir, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	var want [][]byte
	for i := 0; i < 25; i++ {
		r := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Empty records must survive too.
	want = append(want, []byte{})
	if err := j.Append(nil); err != nil {
		t.Fatalf("Append empty: %v", err)
	}
	j.Close()

	j2, rec := openT(t, dir)
	defer j2.Close()
	if rec.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rec.TornBytes)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r, want[i])
		}
	}
	// Appends after a replay continue the same log.
	if err := j2.Append([]byte("after-reopen")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	j2.Close()
	_, rec = openT(t, dir)
	if got := len(rec.Records); got != len(want)+1 {
		t.Fatalf("after reopen append: %d records, want %d", got, len(want)+1)
	}
}

func TestCompactReplacesSnapshotAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([]byte("state-at-10")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if j.Records() != 0 {
		t.Fatalf("Records() = %d after compaction", j.Records())
	}
	if err := j.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rec := openT(t, dir)
	defer j2.Close()
	if string(rec.Snapshot) != "state-at-10" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "post-compact" {
		t.Fatalf("records after compaction = %q", rec.Records)
	}
}

// tornCase appends good records, then mangles the tail; replay must
// recover every intact record, quarantine the rest, and leave the log
// appendable.
func tornCase(t *testing.T, mangle func(t *testing.T, walPath string)) {
	t.Helper()
	dir := t.TempDir()
	j, _ := openT(t, dir)
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	mangle(t, filepath.Join(dir, walFileName(0)))

	j2, rec := openT(t, dir)
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want the 5 intact ones", len(rec.Records))
	}
	for i, r := range rec.Records {
		if string(r) != fmt.Sprintf("good-%d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
	if rec.TornBytes == 0 {
		t.Fatalf("torn tail not reported")
	}
	if _, err := os.Stat(filepath.Join(dir, tornName)); err != nil {
		t.Fatalf("torn tail not quarantined: %v", err)
	}
	// The truncated log must accept appends and replay cleanly again.
	if err := j2.Append([]byte("after-torn")); err != nil {
		t.Fatalf("Append after torn recovery: %v", err)
	}
	j2.Close()
	_, rec = openT(t, dir)
	if rec.TornBytes != 0 {
		t.Fatalf("second open still torn: %d bytes", rec.TornBytes)
	}
	if len(rec.Records) != 6 || string(rec.Records[5]) != "after-torn" {
		t.Fatalf("post-recovery log replayed %q", rec.Records)
	}
}

func TestTornTailTruncatedMidPayload(t *testing.T) {
	tornCase(t, func(t *testing.T, wal string) {
		// A crash mid-append: a full header plus half a payload.
		f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0, 0, 0, 200, 0xde, 0xad, 0xbe, 0xef, 'h', 'a', 'l', 'f'})
		f.Close()
	})
}

func TestTornTailShortHeader(t *testing.T) {
	tornCase(t, func(t *testing.T, wal string) {
		f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0, 0, 0}) // 3 of 8 header bytes
		f.Close()
	})
}

func TestTornTailCorruptChecksum(t *testing.T) {
	tornCase(t, func(t *testing.T, wal string) {
		// Append one fully-framed record, then flip a payload bit: a
		// checksum mismatch must quarantine it and everything after.
		f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0, 0, 0, 4, 0x11, 0x22, 0x33, 0x44, 'j', 'u', 'n', 'k'})
		f.Close()
	})
}

func TestCorruptMiddleRecordQuarantinesSuffix(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	wal := filepath.Join(dir, walFileName(0))
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the third record (records are 8+5 bytes).
	b[2*13+8] ^= 0xff
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir)
	defer j2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want the 2 before the corruption", len(rec.Records))
	}
	if rec.TornBytes != int64(3*13) {
		t.Fatalf("torn bytes = %d, want %d", rec.TornBytes, 3*13)
	}
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, snapshotName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Registry: obs.NewRegistry()}); err == nil {
		t.Fatal("corrupt snapshot opened without error")
	}
}

// TestStaleWALNotReplayedAcrossGenerations reconstructs the disk image of
// a crash between the snapshot rename and the old WAL's removal: the
// pre-compaction log, whose records the new snapshot already subsumes,
// reappears next to it. Open must replay none of those records — deltas
// double-applied onto the snapshot would corrupt the state — and sweep
// the stale file.
func TestStaleWALNotReplayedAcrossGenerations(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("delta-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	preCompaction, err := os.ReadFile(filepath.Join(dir, walFileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact([]byte("state-with-deltas-applied")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	j.Close()
	// Resurrect the generation-0 log, as the crash would have left it.
	if err := os.WriteFile(filepath.Join(dir, walFileName(0)), preCompaction, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir)
	defer j2.Close()
	if string(rec.Snapshot) != "state-with-deltas-applied" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("stale prior-generation WAL replayed %d records: %q", len(rec.Records), rec.Records)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName(0))); !os.IsNotExist(err) {
		t.Fatalf("stale wal.0 not swept: %v", err)
	}
}

// TestOrphanNextGenWALIgnored covers the other crash window: compaction
// died after creating wal.<gen+1> but before the snapshot rename. The old
// snapshot and WAL are still the truth; the orphan must not shadow them.
func TestOrphanNextGenWALIgnored(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.WriteFile(filepath.Join(dir, walFileName(1)), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir)
	defer j2.Close()
	if len(rec.Records) != 1 || string(rec.Records[0]) != "kept" {
		t.Fatalf("records = %q, want the generation-0 record", rec.Records)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName(1))); !os.IsNotExist(err) {
		t.Fatalf("orphan wal.1 not swept: %v", err)
	}
}

// TestAppendFailureLatches pins the sticky-failure contract: once a write
// to the WAL errors, every later Append and Compact must keep failing
// rather than append past a possible partial frame.
func TestAppendFailureLatches(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	j.wal.Close() // sever the log underneath the journal
	if err := j.Append([]byte("lost")); err == nil {
		t.Fatal("append to a severed WAL succeeded")
	}
	if err := j.Append([]byte("still-lost")); err == nil {
		t.Fatal("append after a failed append succeeded")
	}
	if err := j.Compact([]byte("snap")); err == nil {
		t.Fatal("compaction on a failed journal succeeded")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	defer j.Close()
	if err := j.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}
