// Package gridftp implements the data transfer protocol of Section 3.2: an
// FTP-derived control channel plus extended-block-mode data channels, with
// the feature list the paper enumerates:
//
//   - GSI public-key security on the control channel (every session is
//     mutually authenticated before any command runs);
//   - parallel data transfer: one host pair, multiple TCP streams;
//   - striped data transfer: the client fetches disjoint ranges of a
//     replicated file from several servers at once (see Client.StripedGet);
//   - third-party control of data transfer (server-to-server moves driven
//     by a client that owns both control channels);
//   - partial file transfer (ERET/ESTO commands over byte ranges);
//   - automatic negotiation of TCP buffer/window sizes (SBUF);
//   - reliable and restartable transfers: extended-block offsets double as
//     restart markers, so an interrupted transfer resumes with exactly the
//     missing byte ranges (see Client.ReliableGet and RangeSet);
//   - integrated instrumentation: the server emits 112 performance markers
//     on the control channel during transfers, and the client aggregates
//     per-stream statistics.
//
// Data integrity follows Section 4.3: TCP's 16-bit checksum is considered
// insufficient for very large transfers, so the Data Mover layers a CRC-32
// end-to-end verification (CKSM command) over every file moved.
//
// The wire protocol is self-contained rather than wuftpd-compatible: the
// control channel is CRLF-delimited "VERB args" lines with "NNN text"
// replies, and data channels carry 13-byte block headers (flags, 64-bit
// offset, 32-bit length) so every block is self-describing, exactly the
// property extended block mode provides in GridFTP.
package gridftp

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Default transfer parameters.
const (
	// DefaultBlockSize is the payload carried per extended block.
	DefaultBlockSize = 64 * 1024

	// DefaultParallelism is the number of TCP streams when unspecified.
	DefaultParallelism = 1

	// MaxParallelism bounds the stream count a client may request.
	MaxParallelism = 64

	// tokenLen is the size of the random data-channel pairing token.
	tokenLen = 16
)

// Reply codes (FTP-flavored).
const (
	codeMarker    = 112 // in-transfer performance marker
	codeOpening   = 150 // about to open data connections
	codeOK        = 200
	codeStat      = 213 // SIZE / CKSM style single-value replies
	codeClosing   = 221
	codeComplete  = 226
	codePassive   = 229 // extended passive reply with endpoints
	codeFileOK    = 250
	codeBadCmd    = 500
	codeBadArgs   = 501
	codeDenied    = 530
	codeNoFile    = 550
	codeBusy      = 450 // transient overload: retry later
	codeProtoErr  = 425 // cannot open data connection
	codeLocalErr  = 451 // local processing error
	codeInterrupt = 426 // transfer aborted
)

// Errors surfaced by the client.
var (
	ErrTransferFailed = errors.New("gridftp: transfer failed")
	ErrChecksum       = errors.New("gridftp: checksum mismatch")
	ErrProtocol       = errors.New("gridftp: protocol error")
)

// ReplyError is a completed control-channel exchange that drew a failure
// reply: the server received the command and answered it. It unwraps to
// ErrProtocol, and carries the reply code so the retry layer can tell a
// permanent refusal (5yz: no such file, denied, bad command) from a
// transient one (4yz: data-connection trouble, local error) — re-dialing
// a server that has already said "no" deterministically cannot help.
type ReplyError struct {
	Verb string // command that drew the reply ("" for a generic exchange)
	Code int
	Text string
}

func (e *ReplyError) Error() string {
	if e.Verb == "" {
		return fmt.Sprintf("%v: %d %s", ErrProtocol, e.Code, e.Text)
	}
	return fmt.Sprintf("%v: %s: %d %s", ErrProtocol, e.Verb, e.Code, e.Text)
}

func (e *ReplyError) Unwrap() error { return ErrProtocol }

// permanentReply reports whether err is a server reply in the permanent
// negative (5yz) class.
func permanentReply(err error) bool {
	var re *ReplyError
	return errors.As(err, &re) && re.Code >= 500
}

// block header layout: 1 flag byte, 8 byte offset, 4 byte length.
const blockHeaderLen = 13

// Block flags.
const (
	flagEOD = 0x01 // no more blocks on this data connection
)

// writeBlock sends one extended block (possibly empty, e.g. a bare EOD).
func writeBlock(w io.Writer, flags byte, offset int64, payload []byte) error {
	var hdr [blockHeaderLen]byte
	hdr[0] = flags
	binary.BigEndian.PutUint64(hdr[1:9], uint64(offset))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readBlock reads one extended block into buf (grown as needed) and returns
// the flags, offset, and payload.
func readBlock(r io.Reader, buf []byte) (flags byte, offset int64, payload []byte, err error) {
	var hdr [blockHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	flags = hdr[0]
	offset = int64(binary.BigEndian.Uint64(hdr[1:9]))
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > 16*1024*1024 {
		return 0, 0, nil, fmt.Errorf("%w: oversized block (%d bytes)", ErrProtocol, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return flags, offset, payload, nil
}

// newToken mints a random pairing token binding data connections to their
// control session.
func newToken() (string, error) {
	b := make([]byte, tokenLen)
	if _, err := rand.Read(b); err != nil {
		return "", err
	}
	return hex.EncodeToString(b), nil
}

// control-channel line helpers ---------------------------------------------

type controlConn struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newControlConn(rw io.ReadWriter) *controlConn {
	return &controlConn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

// sendLine writes one CRLF-terminated line and flushes.
func (c *controlConn) sendLine(format string, args ...interface{}) error {
	if _, err := fmt.Fprintf(c.w, format, args...); err != nil {
		return err
	}
	if _, err := c.w.WriteString("\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

// reply writes a "NNN text" response line.
func (c *controlConn) reply(code int, format string, args ...interface{}) error {
	return c.sendLine("%03d %s", code, fmt.Sprintf(format, args...))
}

// readLine reads one line, stripping the terminator.
func (c *controlConn) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readReply parses a "NNN text" response.
func (c *controlConn) readReply() (code int, text string, err error) {
	line, err := c.readLine()
	if err != nil {
		return 0, "", err
	}
	if len(line) < 4 || line[3] != ' ' {
		return 0, "", fmt.Errorf("%w: malformed reply %q", ErrProtocol, line)
	}
	for i := 0; i < 3; i++ {
		if line[i] < '0' || line[i] > '9' {
			return 0, "", fmt.Errorf("%w: malformed reply %q", ErrProtocol, line)
		}
		code = code*10 + int(line[i]-'0')
	}
	return code, line[4:], nil
}
