package gridftp

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestReliablePutCleanPath(t *testing.T) {
	addr, root := startServer(t, nil)
	data := make([]byte, 600_000)
	rand.New(rand.NewSource(30)).Read(data)

	connect := func(ctx context.Context) (*Client, error) {
		return Dial(addr, cred(t, "user/"+t.Name()), roots(t), WithParallelism(3))
	}
	stats, err := ReliablePut(context.Background(), connect, bytes.NewReader(data), int64(len(data)), "up/clean.db", fastPolicy(3))
	if err != nil {
		t.Fatalf("ReliablePut: %v", err)
	}
	if stats.Attempts != 1 || stats.Bytes != int64(len(data)) {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := os.ReadFile(filepath.Join(root, "up", "clean.db"))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("uploaded content mismatch: %v", err)
	}
}

// writeLimitedConn cuts the connection after writing a byte budget,
// simulating a WAN failure mid-upload. The budget only applies to data
// connections; the small control-channel traffic stays under it.
type writeLimitedConn struct {
	net.Conn
	mu     sync.Mutex
	budget int64
}

func (w *writeLimitedConn) Write(p []byte) (int, error) {
	w.mu.Lock()
	if w.budget <= 0 {
		w.mu.Unlock()
		w.Conn.Close()
		return 0, errors.New("connection torn down (injected write fault)")
	}
	if int64(len(p)) > w.budget {
		p = p[:w.budget]
	}
	w.mu.Unlock()
	n, err := w.Conn.Write(p)
	w.mu.Lock()
	w.budget -= int64(n)
	w.mu.Unlock()
	return n, err
}

type writeLimitedDialer struct {
	mu       sync.Mutex
	failures int
	budget   int64
	attempts int
}

func (d *writeLimitedDialer) connect(t *testing.T, addr string) func(context.Context) (*Client, error) {
	return func(_ context.Context) (*Client, error) {
		d.mu.Lock()
		d.attempts++
		inject := d.attempts <= d.failures
		d.mu.Unlock()
		dial := func(network, a string) (net.Conn, error) {
			c, err := net.Dial(network, a)
			if err != nil {
				return nil, err
			}
			if inject {
				return &writeLimitedConn{Conn: c, budget: d.budget}, nil
			}
			return c, nil
		}
		return Dial(addr, cred(t, "user/TestReliablePut"), roots(t),
			WithParallelism(2), WithDialFunc(dial))
	}
}

func TestReliablePutRestartsAfterFailure(t *testing.T) {
	addr, root := startServer(t, nil)
	data := make([]byte, 1_500_000)
	rand.New(rand.NewSource(31)).Read(data)

	d := &writeLimitedDialer{failures: 1, budget: 300_000}
	stats, err := ReliablePut(context.Background(), d.connect(t, addr), bytes.NewReader(data), int64(len(data)), "up/retry.db", fastPolicy(4))
	if err != nil {
		t.Fatalf("ReliablePut with injected failure: %v", err)
	}
	if stats.Attempts < 2 {
		t.Fatalf("expected a restart, attempts = %d", stats.Attempts)
	}
	got, err := os.ReadFile(filepath.Join(root, "up", "retry.db"))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("content after restart mismatch: %v", err)
	}
}

func TestReliablePutExhaustsAttempts(t *testing.T) {
	addr, _ := startServer(t, nil)
	data := make([]byte, 1_000_000)
	d := &writeLimitedDialer{failures: 1 << 30, budget: 100_000}
	_, err := ReliablePut(context.Background(), d.connect(t, addr), bytes.NewReader(data), int64(len(data)), "up/never.db", fastPolicy(2))
	if err == nil {
		t.Fatal("expected failure after exhausting attempts")
	}
}
