package gridftp

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/retry"
	"gdmp/internal/wan"
)

// fastPolicy bounds a reliable transfer at n attempts with millisecond
// backoff so failure tests stay quick.
func fastPolicy(n int) retry.Policy {
	return retry.Policy{Attempts: n, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
}

func TestMain(m *testing.M) {
	gsi.KeyBits = 1024
	m.Run()
}

var (
	ftpCAOnce sync.Once
	ftpCA     *gsi.CA
	ftpCreds  sync.Map // name -> *gsi.Credential
)

func ca(t *testing.T) *gsi.CA {
	t.Helper()
	ftpCAOnce.Do(func() {
		c, err := gsi.NewCA("DataGrid", time.Hour)
		if err != nil {
			panic(err)
		}
		ftpCA = c
	})
	return ftpCA
}

func cred(t *testing.T, name string) *gsi.Credential {
	t.Helper()
	if c, ok := ftpCreds.Load(name); ok {
		return c.(*gsi.Credential)
	}
	c, err := ca(t).Issue(name, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ftpCreds.Store(name, c)
	return c
}

func roots(t *testing.T) []*gsi.Certificate {
	return []*gsi.Certificate{ca(t).Certificate()}
}

// startServer brings up a GridFTP server over a temp root and returns its
// address and root path.
func startServer(t *testing.T, mutate func(*ServerConfig)) (addr, root string) {
	t.Helper()
	root = t.TempDir()
	acl := gsi.NewACL()
	acl.AllowAll(OpRead, OpWrite)
	cfg := ServerConfig{
		Root:       root,
		Cred:       cred(t, "gridftpd/"+t.Name()),
		TrustRoots: roots(t),
		ACL:        acl,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), root
}

func dial(t *testing.T, addr string, opts ...ClientOption) *Client {
	t.Helper()
	cl, err := Dial(addr, cred(t, "user/"+t.Name()), roots(t), opts...)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// makeFile writes deterministic pseudo-random content.
func makeFile(t *testing.T, dir, name string, size int64, seed int64) (string, []byte) {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestGetFileSingleStream(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "events.db", 300_000, 1)
	cl := dial(t, addr)
	local := filepath.Join(t.TempDir(), "out.db")
	stats, err := cl.GetFile("events.db", local)
	if err != nil {
		t.Fatalf("GetFile: %v", err)
	}
	got, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after transfer")
	}
	if stats.Bytes != 300_000 || stats.Streams != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.RateMbps() <= 0 {
		t.Fatalf("rate = %v", stats.RateMbps())
	}
}

func TestGetFileParallelStreams(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "big.db", 1_200_000, 2)
	cl := dial(t, addr, WithParallelism(4), WithBlockSize(32*1024))
	local := filepath.Join(t.TempDir(), "out.db")
	stats, err := cl.GetFile("big.db", local)
	if err != nil {
		t.Fatalf("GetFile: %v", err)
	}
	got, _ := os.ReadFile(local)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch with 4 streams")
	}
	if stats.Streams != 4 || len(stats.PerStream) != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	var sum int64
	active := 0
	for _, b := range stats.PerStream {
		sum += b
		if b > 0 {
			active++
		}
	}
	if sum != 1_200_000 {
		t.Fatalf("per-stream sum %d != total", sum)
	}
	if active != 4 {
		t.Fatalf("only %d of 4 streams carried data", active)
	}
}

func TestPutFileRoundTrip(t *testing.T) {
	addr, root := startServer(t, nil)
	srcDir := t.TempDir()
	local, want := makeFile(t, srcDir, "upload.db", 700_000, 3)
	cl := dial(t, addr, WithParallelism(3))
	stats, err := cl.PutFile(local, "incoming/upload.db")
	if err != nil {
		t.Fatalf("PutFile: %v", err)
	}
	if stats.Bytes != 700_000 {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := os.ReadFile(filepath.Join(root, "incoming", "upload.db"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("uploaded content mismatch")
	}
	// Server-side checksum agrees with local computation.
	sum, err := cl.Checksum("incoming/upload.db")
	if err != nil {
		t.Fatal(err)
	}
	if sum != crc32.ChecksumIEEE(want) {
		t.Fatalf("CKSM = %08x, want %08x", sum, crc32.ChecksumIEEE(want))
	}
}

func TestPartialTransfer(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "f.db", 100_000, 4)
	cl := dial(t, addr, WithParallelism(2))
	dst := newSparseBuffer(100_000)
	r := Range{Start: 30_000, End: 70_000}
	stats, err := cl.GetRange("f.db", r, dst)
	if err != nil {
		t.Fatalf("GetRange: %v", err)
	}
	if stats.Bytes != r.Len() {
		t.Fatalf("transferred %d, want %d", stats.Bytes, r.Len())
	}
	if !bytes.Equal(dst.data[30_000:70_000], want[30_000:70_000]) {
		t.Fatal("partial content mismatch")
	}
	// Range checksum agrees too.
	sum, err := cl.ChecksumRange("f.db", r.Start, r.Len())
	if err != nil {
		t.Fatal(err)
	}
	if sum != crc32.ChecksumIEEE(want[30_000:70_000]) {
		t.Fatal("range checksum mismatch")
	}
}

func TestRangeBeyondEOFRejected(t *testing.T) {
	addr, root := startServer(t, nil)
	makeFile(t, root, "f.db", 1000, 5)
	cl := dial(t, addr)
	dst := newSparseBuffer(5000)
	_, err := cl.GetRange("f.db", Range{0, 5000}, dst)
	if !errors.Is(err, ErrTransferFailed) {
		t.Fatalf("expected ErrTransferFailed, got %v", err)
	}
}

func TestZeroByteFile(t *testing.T) {
	addr, root := startServer(t, nil)
	makeFile(t, root, "empty", 0, 6)
	cl := dial(t, addr, WithParallelism(3))
	local := filepath.Join(t.TempDir(), "empty-out")
	stats, err := cl.GetFile("empty", local)
	if err != nil {
		t.Fatalf("GetFile(empty): %v", err)
	}
	if stats.Bytes != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	info, err := os.Stat(local)
	if err != nil || info.Size() != 0 {
		t.Fatalf("local empty file: %v %v", info, err)
	}
	// Upload a zero-byte file too.
	if _, err := cl.Put("empty-up", bytes.NewReader(nil), 0); err != nil {
		t.Fatalf("Put(empty): %v", err)
	}
	size, err := cl.Size("empty-up")
	if err != nil || size != 0 {
		t.Fatalf("Size(empty-up) = %d, %v", size, err)
	}
}

func TestListDeleteMkdir(t *testing.T) {
	addr, root := startServer(t, nil)
	makeFile(t, root, "a/x.db", 100, 7)
	makeFile(t, root, "a/y.db", 200, 8)
	makeFile(t, root, "z.db", 300, 9)
	cl := dial(t, addr)

	entries, err := cl.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("List = %v", entries)
	}
	if entries[0].Name != "a/x.db" || entries[0].Size != 100 {
		t.Fatalf("first entry = %+v", entries[0])
	}
	sub, err := cl.List("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 {
		t.Fatalf("List(a) = %v", sub)
	}
	if err := cl.Delete("z.db"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Size("z.db"); err == nil {
		t.Fatal("deleted file still has a size")
	}
	if err := cl.Delete("z.db"); err == nil {
		t.Fatal("double delete should fail")
	}
	if err := cl.Mkdir("new/deep/dir"); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(filepath.Join(root, "new", "deep", "dir")); err != nil || !info.IsDir() {
		t.Fatalf("Mkdir did not create directory: %v", err)
	}
	if err := cl.Noop(); err != nil {
		t.Fatal(err)
	}
}

func TestPathTraversalRejected(t *testing.T) {
	addr, root := startServer(t, nil)
	// Plant a file *outside* the root.
	outside := filepath.Join(filepath.Dir(root), "secret.txt")
	if err := os.WriteFile(outside, []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(outside)
	cl := dial(t, addr)
	for _, p := range []string{"../secret.txt", "a/../../secret.txt", "/../secret.txt"} {
		if _, err := cl.Size(p); err == nil {
			t.Errorf("path traversal %q allowed", p)
		}
	}
}

func TestUnauthorizedOperations(t *testing.T) {
	readOnly := gsi.NewACL()
	readOnly.AllowAll(OpRead)
	addr, root := startServer(t, func(cfg *ServerConfig) { cfg.ACL = readOnly })
	makeFile(t, root, "f.db", 1000, 10)
	cl := dial(t, addr)
	// Read works.
	if _, err := cl.Size("f.db"); err != nil {
		t.Fatalf("read should be allowed: %v", err)
	}
	// Writes are denied.
	if err := cl.Delete("f.db"); err == nil {
		t.Fatal("delete should be denied")
	}
	if _, err := cl.Put("up.db", bytes.NewReader([]byte("hi")), 2); err == nil {
		t.Fatal("put should be denied")
	}
	// A server with an empty ACL denies reads too.
	addr2, root2 := startServer(t, func(cfg *ServerConfig) { cfg.ACL = gsi.NewACL() })
	makeFile(t, root2, "f.db", 10, 11)
	cl2 := dial(t, addr2)
	if _, err := cl2.Size("f.db"); err == nil {
		t.Fatal("read should be denied with empty ACL")
	}
}

func TestPerformanceMarkers(t *testing.T) {
	addr, root := startServer(t, func(cfg *ServerConfig) { cfg.MarkerBytes = 100_000 })
	makeFile(t, root, "big.db", 1_000_000, 12)
	cl := dial(t, addr, WithParallelism(2))
	local := filepath.Join(t.TempDir(), "out")
	stats, err := cl.GetFile("big.db", local)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Markers) == 0 {
		t.Fatal("no performance markers received")
	}
	for _, m := range stats.Markers {
		if m.Total != 1_000_000 || m.Bytes <= 0 || m.Bytes > m.Total {
			t.Fatalf("implausible marker %+v", m)
		}
	}
}

func TestPutRegion(t *testing.T) {
	addr, root := startServer(t, nil)
	// Seed the remote file, then overwrite two regions via ESTO.
	_, orig := makeFile(t, root, "f.db", 10_000, 13)
	patch := make([]byte, 10_000)
	rand.New(rand.NewSource(99)).Read(patch)
	cl := dial(t, addr)
	ranges := []Range{{1000, 2000}, {5000, 7500}}
	if _, err := cl.PutRegion("f.db", bytes.NewReader(patch), ranges); err != nil {
		t.Fatalf("PutRegion: %v", err)
	}
	got, _ := os.ReadFile(filepath.Join(root, "f.db"))
	want := append([]byte(nil), orig...)
	copy(want[1000:2000], patch[1000:2000])
	copy(want[5000:7500], patch[5000:7500])
	if !bytes.Equal(got, want) {
		t.Fatal("PutRegion result mismatch")
	}
}

func TestSBUFAndOPTSValidation(t *testing.T) {
	addr, root := startServer(t, nil)
	makeFile(t, root, "f", 10, 14)
	cl := dial(t, addr)
	if err := cl.SetBufferSize(256 * 1024); err != nil {
		t.Fatalf("SetBufferSize: %v", err)
	}
	if err := cl.SetBufferSize(10); err == nil {
		t.Fatal("absurd SBUF accepted")
	}
	if err := cl.SetParallelism(8); err != nil {
		t.Fatalf("SetParallelism: %v", err)
	}
	if err := cl.SetParallelism(0); err == nil {
		t.Fatal("parallelism 0 accepted")
	}
	if err := cl.SetParallelism(MaxParallelism + 1); err == nil {
		t.Fatal("excessive parallelism accepted")
	}
}

// flakyDialer fails data transfers by cutting connections after a byte
// budget, but only for the first k attempts.
type flakyDialer struct {
	mu       sync.Mutex
	attempts int
	failures int
	budget   int64
}

func (f *flakyDialer) dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.attempts <= f.failures {
		return &limitedConn{Conn: c, budget: f.budget}, nil
	}
	return c, nil
}

// limitedConn closes itself after reading budget bytes.
type limitedConn struct {
	net.Conn
	mu     sync.Mutex
	budget int64
}

func (l *limitedConn) Read(p []byte) (int, error) {
	l.mu.Lock()
	if l.budget <= 0 {
		l.mu.Unlock()
		l.Conn.Close()
		return 0, errors.New("connection torn down (injected fault)")
	}
	if int64(len(p)) > l.budget {
		p = p[:l.budget]
	}
	l.mu.Unlock()
	n, err := l.Conn.Read(p)
	l.mu.Lock()
	l.budget -= int64(n)
	l.mu.Unlock()
	return n, err
}

func TestReliableGetRestartsAfterFailure(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "big.db", 2_000_000, 15)
	fd := &flakyDialer{failures: 1, budget: 500_000}

	connect := func(ctx context.Context) (*Client, error) {
		fd.mu.Lock()
		fd.attempts++
		fd.mu.Unlock()
		return Dial(addr, cred(t, "user/"+t.Name()), roots(t),
			WithDialFunc(fd.dial), WithParallelism(2))
	}
	local := filepath.Join(t.TempDir(), "out.db")
	stats, err := ReliableGetFile(context.Background(), connect, "big.db", local, fastPolicy(5))
	if err != nil {
		t.Fatalf("ReliableGetFile: %v", err)
	}
	if stats.Attempts < 2 {
		t.Fatalf("expected a restart, attempts = %d", stats.Attempts)
	}
	got, _ := os.ReadFile(local)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after restart")
	}
	// The restart moved less data than two full transfers would have.
	if stats.Bytes >= 2*2_000_000 {
		t.Fatalf("restart re-fetched everything: moved %d bytes", stats.Bytes)
	}
}

func TestReliableGetExhaustsAttempts(t *testing.T) {
	addr, root := startServer(t, nil)
	makeFile(t, root, "big.db", 2_000_000, 16)
	fd := &flakyDialer{failures: 1 << 30, budget: 100_000} // always fails
	connect := func(ctx context.Context) (*Client, error) {
		return Dial(addr, cred(t, "user/"+t.Name()), roots(t),
			WithDialFunc(fd.dial), WithParallelism(1))
	}
	dst := newSparseBuffer(2_000_000)
	_, err := ReliableGet(context.Background(), connect, "big.db", dst, fastPolicy(2))
	if err == nil {
		t.Fatal("expected failure after exhausting attempts")
	}
}

// TestControlDeadlineOnHungServer pins the regression where the control
// deadline was cleared after the handshake: a server that authenticates,
// banners, and then goes silent must not wedge subsequent control
// operations forever — each exchange is bounded by the client timeout.
func TestControlDeadlineOnHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvCred := cred(t, "gridftpd/"+t.Name())
	rts := roots(t)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, err := gsi.Handshake(c, srvCred, rts, false); err != nil {
			return
		}
		io.WriteString(c, "220 ready\r\n")
		br := bufio.NewReader(c)
		// Answer the OPTS PARALLEL session setup, then go silent: keep
		// reading so the TCP window stays open but never reply again.
		if _, err := br.ReadString('\n'); err != nil {
			return
		}
		io.WriteString(c, "200 ok\r\n")
		io.Copy(io.Discard, br)
	}()

	cl, err := Dial(ln.Addr().String(), cred(t, "user/"+t.Name()), rts,
		WithTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Size("anything.db")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("SIZE against a hung server succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("control operation hung for %v despite the timeout", elapsed)
	}
}

func TestStripedGet(t *testing.T) {
	// Two servers each hold a replica of the same file.
	addr1, root1 := startServer(t, nil)
	addr2, root2 := startServer(t, nil)
	_, want := makeFile(t, root1, "f.db", 900_000, 17)
	if err := os.WriteFile(filepath.Join(root2, "f.db"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	cl1 := dial(t, addr1, WithParallelism(2))
	cl2 := dial(t, addr2, WithParallelism(2))
	dst := newSparseBuffer(900_000)
	stats, err := StripedGet([]*Client{cl1, cl2}, "f.db", dst)
	if err != nil {
		t.Fatalf("StripedGet: %v", err)
	}
	if !bytes.Equal(dst.data, want) {
		t.Fatal("striped content mismatch")
	}
	if stats.Bytes != 900_000 || stats.Streams != 4 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	addrSrc, rootSrc := startServer(t, nil)
	addrDst, rootDst := startServer(t, nil)
	_, want := makeFile(t, rootSrc, "src.db", 600_000, 18)

	src := dial(t, addrSrc, WithParallelism(3))
	dst := dial(t, addrDst, WithParallelism(3))
	stats, err := ThirdParty(src, dst, "src.db", "moved/dst.db")
	if err != nil {
		t.Fatalf("ThirdParty: %v", err)
	}
	if stats.Bytes != 600_000 {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := os.ReadFile(filepath.Join(rootDst, "moved", "dst.db"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("third-party content mismatch")
	}
}

func TestThirdPartyParallelismMismatch(t *testing.T) {
	addr1, _ := startServer(t, nil)
	addr2, _ := startServer(t, nil)
	a := dial(t, addr1, WithParallelism(2))
	b := dial(t, addr2, WithParallelism(3))
	if _, err := ThirdParty(a, b, "x", "y"); err == nil {
		t.Fatal("mismatched parallelism accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "f.db", 400_000, 19)
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(addr, cred(t, "user/"+t.Name()), roots(t), WithParallelism(2))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			dst := newSparseBuffer(400_000)
			if _, err := cl.Get("f.db", dst); err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if !bytes.Equal(dst.data, want) {
				errs <- fmt.Errorf("client %d: content mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDialRejectsBadParallelism(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil, nil, WithParallelism(0)); err == nil {
		t.Fatal("parallelism 0 accepted at dial")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewServer(ServerConfig{Root: "/definitely/not/here"}); err == nil {
		t.Error("missing root accepted")
	}
	file := filepath.Join(t.TempDir(), "plain")
	os.WriteFile(file, nil, 0o644)
	if _, err := NewServer(ServerConfig{Root: file}); err == nil {
		t.Error("non-directory root accepted")
	}
	if _, err := NewServer(ServerConfig{Root: t.TempDir()}); err == nil {
		t.Error("missing credential accepted")
	}
}

// sparseBuffer is an in-memory io.WriterAt for tests.
type sparseBuffer struct {
	mu   sync.Mutex
	data []byte
}

func newSparseBuffer(size int64) *sparseBuffer {
	return &sparseBuffer{data: make([]byte, size)}
}

func (b *sparseBuffer) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(b.data)) {
		return 0, fmt.Errorf("write [%d,%d) outside buffer of %d", off, off+int64(len(p)), len(b.data))
	}
	copy(b.data[off:], p)
	return len(p), nil
}

// TestReliableGetAbortsOnContextCancel proves the acceptance contract of
// the context threading: canceling the context mid-transfer severs the
// session's data connections, so ReliableGet returns within one retry
// interval instead of finishing the download or sleeping out the backoff
// schedule.
func TestReliableGetAbortsOnContextCancel(t *testing.T) {
	addr, root := startServer(t, nil)
	makeFile(t, root, "big.db", 4_000_000, 21)

	// Pace the link so the transfer takes several seconds untouched.
	link := wan.NewLink(4, 0) // 4 Mbps -> ~8 s for 4 MB
	ctx, cancel := context.WithCancel(context.Background())
	connect := func(ctx context.Context) (*Client, error) {
		return DialContext(ctx, addr, cred(t, "user/"+t.Name()), roots(t),
			WithDialFunc(link.Dialer(net.Dial)), WithParallelism(2))
	}
	pol := fastPolicy(5)
	pol.BaseDelay = 200 * time.Millisecond
	pol.MaxDelay = 200 * time.Millisecond

	done := make(chan error, 1)
	dst := newSparseBuffer(4_000_000)
	go func() {
		_, err := ReliableGet(ctx, connect, "big.db", dst, pol)
		done <- err
	}()
	time.Sleep(300 * time.Millisecond) // well into the data transfer
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error from canceled transfer")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		// One retry interval (200 ms) plus scheduling slack.
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("abort took %v, want within one retry interval", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled transfer did not abort")
	}
}
