package gridftp

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/netprobe"
	"gdmp/internal/obs"
	"gdmp/internal/retry"
)

// ClientMetricsPrefix names the client-side transfer metric family; see
// package obs for the collector suffixes.
const ClientMetricsPrefix = "gdmp_gridftp_client"

// Marker is one 112 performance marker received during a transfer, the
// paper's "integrated instrumentation, for monitoring ongoing transfer
// performance".
type Marker struct {
	Bytes int64 // bytes moved so far
	Total int64 // expected total
}

// TransferStats aggregates instrumentation for one transfer.
type TransferStats struct {
	Bytes     int64
	Elapsed   time.Duration
	Streams   int
	PerStream []int64 // bytes moved by each stream
	Markers   []Marker
	Attempts  int // >1 when a reliable transfer had to restart

	// ResumedBytes counts staged-prefix bytes reused instead of
	// re-downloaded after the source confirmed their CKSM range;
	// DiscardedBytes counts staged bytes thrown away because the source
	// disagreed (or could not be asked) — the wasted-work ledger hedged
	// pulls report.
	ResumedBytes   int64
	DiscardedBytes int64
}

// RateMbps returns the achieved rate in megabits per second.
func (s TransferStats) RateMbps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / s.Elapsed.Seconds() / 1e6
}

func (s *TransferStats) merge(o TransferStats) {
	s.Bytes += o.Bytes
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
	s.Streams += o.Streams
	s.PerStream = append(s.PerStream, o.PerStream...)
	s.Markers = append(s.Markers, o.Markers...)
}

// ClientOption customizes Dial.
type ClientOption func(*Client)

// WithParallelism sets the number of parallel TCP streams per transfer.
func WithParallelism(n int) ClientOption {
	return func(c *Client) { c.parallelism = n }
}

// WithBufferSize sets the TCP socket buffer size negotiated with SBUF.
func WithBufferSize(n int) ClientOption {
	return func(c *Client) { c.bufferSize = n }
}

// WithBlockSize sets the extended-block payload size used for puts.
func WithBlockSize(n int) ClientOption {
	return func(c *Client) { c.blockSize = n }
}

// WithDialFunc substitutes the transport dialer for control and data
// connections; the WAN emulation package uses this.
func WithDialFunc(d func(network, addr string) (net.Conn, error)) ClientOption {
	return func(c *Client) { c.dial = d }
}

// WithTimeout bounds dial and control-channel operations.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithMetrics directs the client's integrated instrumentation into a
// specific registry (default obs.Default).
func WithMetrics(r *obs.Registry) ClientOption {
	return func(c *Client) { c.metrics = r }
}

// Client is a GridFTP control-channel session, the programmatic equivalent
// of globus_ftp_client / globus_url_copy.
type Client struct {
	conn net.Conn
	ctl  *controlConn
	addr string

	parallelism int
	bufferSize  int
	blockSize   int
	timeout     time.Duration
	dial        func(network, addr string) (net.Conn, error)

	metrics *obs.Registry
	rec     *obs.TransferRecorder

	mu     sync.Mutex // serializes commands
	closed bool

	// Every connection the session opens — control plus data — is tracked
	// so a canceled context can sever them all at once, aborting a transfer
	// already streaming on the data channels.
	trackMu   sync.Mutex
	tracked   map[net.Conn]struct{}
	stopAbort func() bool // detaches the context watcher; set by DialContext
}

func (c *Client) track(conn net.Conn) {
	c.trackMu.Lock()
	if c.tracked == nil {
		c.tracked = make(map[net.Conn]struct{})
	}
	c.tracked[conn] = struct{}{}
	c.trackMu.Unlock()
}

func (c *Client) untrack(conn net.Conn) {
	c.trackMu.Lock()
	delete(c.tracked, conn)
	c.trackMu.Unlock()
}

// abort severs every tracked connection; blocked reads and writes on the
// control and data channels fail immediately.
func (c *Client) abort() {
	c.trackMu.Lock()
	for conn := range c.tracked {
		conn.Close()
	}
	c.trackMu.Unlock()
}

// Dial connects, authenticates with a GSI handshake, and reads the banner.
func Dial(addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...ClientOption) (*Client, error) {
	return DialContext(context.Background(), addr, cred, roots, opts...)
}

// DialContext is Dial with the whole session bound to ctx: cancellation
// closes the control channel and any data channels opened later, so an
// in-flight transfer aborts promptly rather than running to completion.
func DialContext(ctx context.Context, addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...ClientOption) (*Client, error) {
	c := &Client{
		parallelism: DefaultParallelism,
		blockSize:   DefaultBlockSize,
		timeout:     30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	if c.metrics == nil {
		c.metrics = obs.Default
	}
	c.rec = obs.NewTransferRecorder(c.metrics, ClientMetricsPrefix)
	if c.parallelism < 1 || c.parallelism > MaxParallelism {
		return nil, fmt.Errorf("gridftp: parallelism %d out of range", c.parallelism)
	}
	base := c.dial
	if base == nil {
		var d net.Dialer
		base = func(network, addr string) (net.Conn, error) {
			return d.DialContext(ctx, network, addr)
		}
	}
	c.dial = func(network, addr string) (net.Conn, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conn, err := base(network, addr)
		if err == nil {
			c.track(conn)
		}
		return conn, err
	}
	c.addr = addr
	conn, err := c.dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gridftp: dial %s: %w", addr, err)
	}
	c.stopAbort = context.AfterFunc(ctx, c.abort)
	fail := func(err error) (*Client, error) {
		c.stopAbort()
		conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("gridftp: dial %s: %w", addr, cerr)
		}
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := gsi.Handshake(conn, cred, roots, true); err != nil {
		return fail(err)
	}
	conn.SetDeadline(time.Time{})
	c.conn = conn
	c.ctl = newControlConn(conn)
	c.armDeadline()
	code, text, err := c.ctl.readReply()
	c.clearDeadline()
	if err != nil {
		return fail(err)
	}
	if code != 220 {
		return fail(fmt.Errorf("%w: banner %d %s", ErrProtocol, code, text))
	}
	// Negotiate session parameters up front.
	if c.bufferSize > 0 {
		if err := c.simpleCmd(codeOK, "SBUF %d", c.bufferSize); err != nil {
			return fail(err)
		}
	}
	if err := c.simpleCmd(codeOK, "OPTS PARALLEL %d", c.parallelism); err != nil {
		return fail(err)
	}
	return c, nil
}

// Close sends QUIT and closes the control connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.stopAbort != nil {
		c.stopAbort()
	}
	c.armDeadline() // a hung server must not wedge Close
	c.ctl.sendLine("QUIT")
	c.ctl.readReply() // best-effort 221
	c.untrack(c.conn)
	return c.conn.Close()
}

// armDeadline bounds the next control-channel exchange with the client's
// timeout; without it, a server that hangs after the handshake stalls
// every subsequent control operation forever.
func (c *Client) armDeadline() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

// clearDeadline removes the per-operation deadline so idle sessions and
// long data transfers are not killed between exchanges.
func (c *Client) clearDeadline() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
}

// simpleCmd sends a command and expects a specific reply code.
func (c *Client) simpleCmd(want int, format string, args ...interface{}) error {
	code, text, err := c.roundTrip(format, args...)
	if err != nil {
		return err
	}
	if code != want {
		return &ReplyError{Code: code, Text: text}
	}
	return nil
}

func (c *Client) roundTrip(format string, args ...interface{}) (int, string, error) {
	c.armDeadline()
	defer c.clearDeadline()
	if err := c.ctl.sendLine(format, args...); err != nil {
		return 0, "", err
	}
	return c.ctl.readReply()
}

// SetParallelism renegotiates the stream count for subsequent transfers.
func (c *Client) SetParallelism(n int) error {
	if n < 1 || n > MaxParallelism {
		return fmt.Errorf("gridftp: parallelism %d out of range", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.simpleCmd(codeOK, "OPTS PARALLEL %d", n); err != nil {
		return err
	}
	c.parallelism = n
	return nil
}

// SetBufferSize renegotiates the TCP buffer size (SBUF).
func (c *Client) SetBufferSize(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.simpleCmd(codeOK, "SBUF %d", n); err != nil {
		return err
	}
	c.bufferSize = n
	return nil
}

// Size returns the size of a remote file.
func (c *Client) Size(path string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sizeLocked(path)
}

func (c *Client) sizeLocked(path string) (int64, error) {
	code, text, err := c.roundTrip("SIZE %s", path)
	if err != nil {
		return 0, err
	}
	if code != codeStat {
		return 0, &ReplyError{Verb: "SIZE", Code: code, Text: text}
	}
	return strconv.ParseInt(strings.TrimSpace(text), 10, 64)
}

// Checksum returns the server-side CRC-32 of a whole remote file.
func (c *Client) Checksum(path string) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checksumCmd("CKSM %s", path)
}

// ChecksumRange returns the CRC-32 of a byte range of a remote file.
func (c *Client) ChecksumRange(path string, off, length int64) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checksumCmd("CKSM %d %d %s", off, length, path)
}

func (c *Client) checksumCmd(format string, args ...interface{}) (uint32, error) {
	code, text, err := c.roundTrip(format, args...)
	if err != nil {
		return 0, err
	}
	if code != codeStat {
		return 0, &ReplyError{Verb: "CKSM", Code: code, Text: text}
	}
	v, err := strconv.ParseUint(strings.TrimSpace(text), 16, 32)
	return uint32(v), err
}

// ListEntry is one remote file in a listing.
type ListEntry struct {
	Name string
	Size int64
}

// List returns the files under an optional prefix directory.
func (c *Client) List(prefix string) ([]ListEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	code, text, err := c.roundTrip("NLST %s", prefix)
	if err != nil {
		return nil, err
	}
	if code != codeOpening {
		return nil, &ReplyError{Verb: "NLST", Code: code, Text: text}
	}
	n, err := strconv.Atoi(strings.TrimSpace(text))
	if err != nil {
		return nil, fmt.Errorf("%w: NLST count %q", ErrProtocol, text)
	}
	entries := make([]ListEntry, 0, n)
	defer c.clearDeadline()
	for i := 0; i < n; i++ {
		c.armDeadline()
		line, err := c.ctl.readLine()
		if err != nil {
			return nil, err
		}
		name, sizeStr, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("%w: NLST line %q", ErrProtocol, line)
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: NLST size %q", ErrProtocol, sizeStr)
		}
		entries = append(entries, ListEntry{Name: name, Size: size})
	}
	c.armDeadline()
	code, text, err = c.ctl.readReply()
	if err != nil {
		return nil, err
	}
	if code != codeComplete {
		return nil, fmt.Errorf("%w: NLST end: %d %s", ErrProtocol, code, text)
	}
	return entries, nil
}

// Delete removes a remote file.
func (c *Client) Delete(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simpleCmd(codeFileOK, "DELE %s", path)
}

// Mkdir creates a remote directory tree.
func (c *Client) Mkdir(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simpleCmd(257, "MKD %s", path)
}

// Noop pings the server.
func (c *Client) Noop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simpleCmd(codeOK, "NOOP")
}

// --- data transfer ---------------------------------------------------------

// passiveInfo is the parsed 229 reply.
type passiveInfo struct {
	token string
	addr  string
}

func (c *Client) enterPassive() (passiveInfo, error) {
	code, text, err := c.roundTrip("PASV")
	if err != nil {
		return passiveInfo{}, err
	}
	if code != codePassive {
		return passiveInfo{}, &ReplyError{Verb: "PASV", Code: code, Text: text}
	}
	fields := strings.Fields(text)
	if len(fields) != 2 {
		return passiveInfo{}, fmt.Errorf("%w: PASV reply %q", ErrProtocol, text)
	}
	return passiveInfo{token: fields[0], addr: fields[1]}, nil
}

// openDataConns dials n data connections to a passive endpoint and pairs
// them with the session token.
func (c *Client) openDataConns(pi passiveInfo, n int) ([]net.Conn, error) {
	conns := make([]net.Conn, 0, n)
	for i := 0; i < n; i++ {
		dc, err := c.dial("tcp", pi.addr)
		if err != nil {
			for _, dc2 := range conns {
				dc2.Close()
			}
			return nil, fmt.Errorf("gridftp: dial data %s: %w", pi.addr, err)
		}
		if _, err := io.WriteString(dc, pi.token+"\n"); err != nil {
			dc.Close()
			for _, dc2 := range conns {
				dc2.Close()
			}
			return nil, fmt.Errorf("gridftp: pair data conn: %w", err)
		}
		if tc, ok := dc.(*net.TCPConn); ok && c.bufferSize > 0 {
			tc.SetReadBuffer(c.bufferSize)
			tc.SetWriteBuffer(c.bufferSize)
		}
		conns = append(conns, dc)
	}
	return conns, nil
}

// parse150 extracts the stream count and size from a 150 reply of the form
// "opening N streams size=M".
func parse150(text string) (streams int, size int64, err error) {
	fields := strings.Fields(text)
	for i, f := range fields {
		if f == "opening" && i+1 < len(fields) {
			streams, _ = strconv.Atoi(fields[i+1])
		}
		if strings.HasPrefix(f, "size=") {
			size, err = strconv.ParseInt(f[len("size="):], 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("%w: 150 size %q", ErrProtocol, f)
			}
		}
	}
	if streams < 1 {
		return 0, 0, fmt.Errorf("%w: 150 reply %q", ErrProtocol, text)
	}
	return streams, size, nil
}

// Get retrieves a whole remote file, writing payload at absolute file
// offsets into dst.
func (c *Client) Get(path string, dst io.WriterAt) (TransferStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size, err := c.sizeLocked(path)
	if err != nil {
		return TransferStats{}, err
	}
	return c.getRangeLocked(path, Range{0, size}, dst, nil)
}

// GetRange retrieves [r.Start, r.End) of a remote file (partial file
// transfer). Payload is written at absolute file offsets into dst.
func (c *Client) GetRange(path string, r Range, dst io.WriterAt) (TransferStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getRangeLocked(path, r, dst, nil)
}

// getRangeLocked performs one ERET transfer, recording it in the client's
// transfer instrumentation. Received ranges are recorded into track (when
// non-nil) as blocks land, so an interrupted transfer leaves an accurate
// restart map behind.
func (c *Client) getRangeLocked(path string, r Range, dst io.WriterAt, track *RangeSet) (TransferStats, error) {
	finish := c.rec.Start()
	stats, err := c.getRangeBody(path, r, dst, track)
	finish(obs.TransferSample{
		Direction: "get", Bytes: stats.Bytes, Streams: stats.Streams,
		Elapsed: stats.Elapsed, Err: err,
	})
	return stats, err
}

func (c *Client) getRangeBody(path string, r Range, dst io.WriterAt, track *RangeSet) (TransferStats, error) {
	if r.Len() < 0 {
		return TransferStats{}, fmt.Errorf("gridftp: negative range %+v", r)
	}
	start := time.Now()
	pi, err := c.enterPassive()
	if err != nil {
		return TransferStats{}, err
	}
	code, text, err := c.roundTrip("ERET %d %d %s", r.Start, r.Len(), path)
	if err != nil {
		return TransferStats{}, err
	}
	if code != codeOpening {
		return TransferStats{}, fmt.Errorf("%w: ERET: %d %s", ErrTransferFailed, code, text)
	}
	streams, _, err := parse150(text)
	if err != nil {
		return TransferStats{}, err
	}
	conns, err := c.openDataConns(pi, streams)
	if err != nil {
		return TransferStats{}, err
	}
	defer func() {
		for _, dc := range conns {
			dc.Close()
			c.untrack(dc)
		}
	}()

	stats := TransferStats{Streams: streams, PerStream: make([]int64, streams), Attempts: 1}
	var trackMu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i, dc := range conns {
		wg.Add(1)
		go func(i int, dc net.Conn) {
			defer wg.Done()
			var buf []byte
			for {
				flags, offset, payload, err := readBlock(dc, buf)
				if err != nil {
					errs <- fmt.Errorf("stream %d: %w", i, err)
					return
				}
				buf = payload[:cap(payload)]
				if len(payload) > 0 {
					if _, err := dst.WriteAt(payload, offset); err != nil {
						errs <- fmt.Errorf("stream %d write: %w", i, err)
						return
					}
					atomic.AddInt64(&stats.PerStream[i], int64(len(payload)))
					atomic.AddInt64(&stats.Bytes, int64(len(payload)))
					if track != nil {
						trackMu.Lock()
						track.Add(offset, offset+int64(len(payload)))
						trackMu.Unlock()
					}
				}
				if flags&flagEOD != 0 {
					return
				}
			}
		}(i, dc)
	}
	wg.Wait()
	close(errs)
	dataErr := <-errs

	// Drain control replies: 112 markers, then the final verdict.
	finalCode, finalText, err := c.drainTransferReplies(&stats)
	if err != nil {
		return stats, err
	}
	stats.Elapsed = time.Since(start)
	if dataErr != nil {
		return stats, fmt.Errorf("%w: %w", ErrTransferFailed, dataErr)
	}
	if finalCode != codeComplete {
		return stats, fmt.Errorf("%w: %d %s", ErrTransferFailed, finalCode, finalText)
	}
	if stats.Bytes != r.Len() {
		return stats, fmt.Errorf("%w: received %d of %d bytes", ErrTransferFailed, stats.Bytes, r.Len())
	}
	return stats, nil
}

// drainTransferReplies reads control lines until a non-marker reply. The
// per-operation deadline is re-armed for every line, so a transfer may
// run longer than the timeout as long as the control channel stays alive
// (performance markers refresh it), while a wedged server still times out.
func (c *Client) drainTransferReplies(stats *TransferStats) (int, string, error) {
	defer c.clearDeadline()
	for {
		c.armDeadline()
		code, text, err := c.ctl.readReply()
		if err != nil {
			return 0, "", err
		}
		if code == codeMarker {
			var m Marker
			fmt.Sscanf(text, "%d %d", &m.Bytes, &m.Total)
			stats.Markers = append(stats.Markers, m)
			continue
		}
		return code, text, nil
	}
}

// Put stores size bytes read from src (at absolute offsets) as the remote
// file at path, using the negotiated parallelism.
func (c *Client) Put(path string, src io.ReaderAt, size int64) (TransferStats, error) {
	return c.put("STOR", path, src, size)
}

// PutRegion writes bytes into an existing remote file without truncating it
// (the ESTO partial-store extension). src must cover the given ranges at
// absolute offsets; total is the number of bytes that will be sent.
func (c *Client) PutRegion(path string, src io.ReaderAt, ranges []Range) (TransferStats, error) {
	var total int64
	for _, r := range ranges {
		total += r.Len()
	}
	return c.putRanges("ESTO", path, src, ranges, total)
}

func (c *Client) put(verb, path string, src io.ReaderAt, size int64) (TransferStats, error) {
	// Split the file into one contiguous sub-range per stream.
	n := c.parallelism
	per := size / int64(n)
	ranges := make([]Range, 0, n)
	for i := 0; i < n; i++ {
		start := int64(i) * per
		end := start + per
		if i == n-1 {
			end = size
		}
		ranges = append(ranges, Range{start, end})
	}
	return c.putRanges(verb, path, src, ranges, size)
}

func (c *Client) putRanges(verb, path string, src io.ReaderAt, ranges []Range, total int64) (TransferStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	finish := c.rec.Start()
	stats, err := c.putRangesLocked(verb, path, src, ranges, total)
	finish(obs.TransferSample{
		Direction: "put", Bytes: stats.Bytes, Streams: stats.Streams,
		Elapsed: stats.Elapsed, Err: err,
	})
	return stats, err
}

func (c *Client) putRangesLocked(verb, path string, src io.ReaderAt, ranges []Range, total int64) (TransferStats, error) {
	start := time.Now()
	pi, err := c.enterPassive()
	if err != nil {
		return TransferStats{}, err
	}
	code, text, err := c.roundTrip("%s %d %s", verb, total, path)
	if err != nil {
		return TransferStats{}, err
	}
	if code != codeOpening {
		return TransferStats{}, fmt.Errorf("%w: %s: %d %s", ErrTransferFailed, verb, code, text)
	}
	streams, _, err := parse150(text)
	if err != nil {
		return TransferStats{}, err
	}
	conns, err := c.openDataConns(pi, streams)
	if err != nil {
		return TransferStats{}, err
	}
	defer func() {
		for _, dc := range conns {
			dc.Close()
			c.untrack(dc)
		}
	}()

	// Assign ranges to connections round-robin.
	assign := make([][]Range, streams)
	for i, r := range ranges {
		assign[i%streams] = append(assign[i%streams], r)
	}

	stats := TransferStats{Streams: streams, PerStream: make([]int64, streams), Attempts: 1}
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i, dc := range conns {
		wg.Add(1)
		go func(i int, dc net.Conn, work []Range) {
			defer wg.Done()
			buf := make([]byte, c.blockSize)
			for _, r := range work {
				pos := r.Start
				for pos < r.End {
					chunk := int64(len(buf))
					if pos+chunk > r.End {
						chunk = r.End - pos
					}
					if _, err := src.ReadAt(buf[:chunk], pos); err != nil {
						errs <- fmt.Errorf("stream %d read at %d: %w", i, pos, err)
						return
					}
					if err := writeBlock(dc, 0, pos, buf[:chunk]); err != nil {
						errs <- fmt.Errorf("stream %d send at %d: %w", i, pos, err)
						return
					}
					atomic.AddInt64(&stats.PerStream[i], chunk)
					atomic.AddInt64(&stats.Bytes, chunk)
					pos += chunk
				}
			}
			// Every stream terminates with a bare end-of-data block.
			if err := writeBlock(dc, flagEOD, 0, nil); err != nil {
				errs <- err
			}
		}(i, dc, assign[i])
	}
	wg.Wait()
	close(errs)
	dataErr := <-errs

	finalCode, finalText, err := c.drainTransferReplies(&stats)
	if err != nil {
		return stats, err
	}
	stats.Elapsed = time.Since(start)
	if dataErr != nil {
		return stats, fmt.Errorf("%w: %w", ErrTransferFailed, dataErr)
	}
	if finalCode != codeComplete {
		return stats, fmt.Errorf("%w: %d %s", ErrTransferFailed, finalCode, finalText)
	}
	return stats, nil
}

// PutFile uploads a local file.
func (c *Client) PutFile(localPath, remotePath string) (TransferStats, error) {
	f, err := os.Open(localPath)
	if err != nil {
		return TransferStats{}, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return TransferStats{}, err
	}
	return c.Put(remotePath, f, info.Size())
}

// PartSuffix marks an in-progress download staged next to its final
// path. A transfer only renames the staging file into place after the
// end-to-end CRC passes, so the final path never holds a truncated or
// unverified file; site recovery quarantines orphaned *.part files.
const PartSuffix = ".part"

// GetFile downloads a remote file to a local path, verifying the CRC-32
// end to end (Section 4.3's integrity check beyond TCP checksums). The
// payload is staged at localPath+PartSuffix and renamed into place only
// after verification; a failed transfer removes the staging file and
// never touches the destination.
func (c *Client) GetFile(remotePath, localPath string) (TransferStats, error) {
	part := localPath + PartSuffix
	f, err := os.Create(part)
	if err != nil {
		return TransferStats{}, err
	}
	stats, err := c.Get(remotePath, f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = c.verifyLocal(remotePath, part)
	}
	if err != nil {
		os.Remove(part)
		return stats, err
	}
	if err := os.Rename(part, localPath); err != nil {
		os.Remove(part)
		return stats, err
	}
	syncDir(filepath.Dir(localPath))
	return stats, nil
}

// syncDir makes a rename within dir durable; best-effort (some
// filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// verifyLocal compares the server CRC with a locally computed one.
func (c *Client) verifyLocal(remotePath, localPath string) error {
	want, err := c.Checksum(remotePath)
	if err != nil {
		return err
	}
	got, err := CRC32File(localPath)
	if err != nil {
		return err
	}
	if got != want {
		c.rec.CRCFailure()
		return fmt.Errorf("%w: local %08x, remote %08x", ErrChecksum, got, want)
	}
	return nil
}

// CRC32File computes the IEEE CRC-32 of a local file.
func CRC32File(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// --- reliable restartable transfer ------------------------------------------

// Attempts converts a bare attempt cap into a retry policy with the
// transfer layer's default backoff, for callers that only care about the
// bound.
func Attempts(n int) retry.Policy {
	p := retry.DefaultPolicy()
	if n > 0 {
		p.Attempts = n
	}
	return p
}

// transferRetryable is the transfer layer's default classification: every
// failure earns a fresh session except a permanent (5yz) server reply.
func transferRetryable(err error) bool {
	return !permanentReply(err) && retry.DefaultRetryable(err)
}

// ReliableGet retrieves a file with restart-on-failure semantics: after an
// interrupted attempt, only the missing byte ranges are re-requested from a
// fresh session after the policy's backoff. connect must return a new
// authenticated client bound to the context it is given; path and dst are
// as in Get. Canceling ctx severs the active session's connections and
// stops further attempts, so an in-flight transfer aborts within one retry
// interval. The returned stats aggregate all attempts.
func ReliableGet(ctx context.Context, connect func(context.Context) (*Client, error), path string, dst io.WriterAt, pol retry.Policy) (TransferStats, error) {
	var rs RangeSet
	return reliableGet(ctx, connect, path, dst, &rs, pol)
}

// reliableGet is ReliableGet with a caller-seeded restart map: ranges
// already in rs are treated as on disk and never re-requested, which is
// how a resumed download continues from a verified partial file instead
// of byte 0.
func reliableGet(ctx context.Context, connect func(context.Context) (*Client, error), path string, dst io.WriterAt, rs *RangeSet, pol retry.Policy) (TransferStats, error) {
	var agg TransferStats
	var size int64 = -1
	if pol.Op == "" {
		pol.Op = "gridftp.get"
	}
	if pol.Retryable == nil {
		pol.Retryable = transferRetryable
	}
	err := pol.Do(ctx, func(attempt int) error {
		agg.Attempts = attempt
		cl, err := connect(ctx)
		if err != nil {
			return err
		}
		defer cl.Close()
		if attempt > 1 {
			cl.rec.Restart()
		}
		if size < 0 {
			sz, err := cl.Size(path)
			if err != nil {
				return err
			}
			size = sz
		}
		for _, missing := range rs.Missing(size) {
			cl.mu.Lock()
			st, err := cl.getRangeLocked(path, missing, dst, rs)
			cl.mu.Unlock()
			agg.merge(st)
			if err != nil {
				return err
			}
		}
		if !rs.Complete(size) {
			return fmt.Errorf("%w: incomplete (%s)", ErrTransferFailed, rs.String())
		}
		return nil
	})
	if err != nil {
		return agg, fmt.Errorf("gridftp: reliable get of %s: %w", path, err)
	}
	return agg, nil
}

// ReliableGetFile is ReliableGet into a local file plus end-to-end CRC
// verification, the full Data Mover contract of Section 4.3 — made
// crash-safe and resumable:
//
//   - the payload lands at localPath+PartSuffix and is renamed into
//     place only after the end-to-end CRC passes, so the destination
//     never holds a truncated or unverified file;
//   - a failed or interrupted transfer leaves the staging file behind,
//     and a later call resumes from its length after verifying the
//     prefix CRC against the server (CKSM of [0, len)); a mismatched or
//     oversized prefix falls back to a full restart from byte 0.
func ReliableGetFile(ctx context.Context, connect func(context.Context) (*Client, error), remotePath, localPath string, pol retry.Policy) (TransferStats, error) {
	return ReliableGetFileOpts(ctx, connect, remotePath, localPath, pol, GetFileOptions{})
}

// GetFileOptions tunes ReliableGetFileOpts beyond the policy.
type GetFileOptions struct {
	// Progress, when non-nil, is called as payload lands with the
	// cumulative number of bytes present in the staging file (a verified
	// resumed prefix counts). Calls arrive from transfer goroutines; the
	// callback must be cheap and safe for concurrent use. Hedged pulls
	// use it as the liveness signal their stall watchdog watches.
	Progress func(total int64)

	// WrapWriter, when non-nil, wraps the staging-file writer before any
	// payload lands. Fault-injection harnesses use it to emulate storage
	// failures (e.g. faults.Injector.NoSpaceWriter) without touching the
	// real filesystem behavior.
	WrapWriter func(io.WriterAt) io.WriterAt
}

// progressWriterAt reports cumulative bytes written through it.
type progressWriterAt struct {
	dst   io.WriterAt
	total atomic.Int64
	fn    func(int64)
}

func (p *progressWriterAt) WriteAt(b []byte, off int64) (int, error) {
	n, err := p.dst.WriteAt(b, off)
	if n > 0 {
		p.fn(p.total.Add(int64(n)))
	}
	return n, err
}

// ReliableGetFileOpts is ReliableGetFile with options.
func ReliableGetFileOpts(ctx context.Context, connect func(context.Context) (*Client, error), remotePath, localPath string, pol retry.Policy, opt GetFileOptions) (TransferStats, error) {
	part := localPath + PartSuffix
	f, err := os.OpenFile(part, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return TransferStats{}, err
	}
	var rs RangeSet
	var resumed, discarded int64
	if info, serr := f.Stat(); serr == nil && info.Size() > 0 {
		resumed, discarded = resumePartial(ctx, connect, remotePath, f, info.Size(), &rs)
	}
	dst := io.WriterAt(f)
	if opt.WrapWriter != nil {
		dst = opt.WrapWriter(dst)
	}
	if opt.Progress != nil {
		pw := &progressWriterAt{dst: dst, fn: opt.Progress}
		pw.total.Store(resumed)
		if resumed > 0 {
			opt.Progress(resumed)
		}
		dst = pw
	}
	stats, err := reliableGet(ctx, connect, remotePath, dst, &rs, pol)
	stats.ResumedBytes = resumed
	stats.DiscardedBytes = discarded
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(err, syscall.ENOSPC) {
			// The disk is full: the partial file is worthless as a restart
			// marker (resuming onto a full disk fails the same way) and
			// holding it only deepens the space crisis and leaves a .part
			// orphan for the sweep. Give the bytes back.
			os.Remove(part)
			return stats, err
		}
		// Keep the partial file: it is the restart marker a future
		// attempt resumes from (and recovery quarantines if orphaned).
		return stats, err
	}
	cl, err := connect(ctx)
	if err != nil {
		return stats, err
	}
	defer cl.Close()
	if err := cl.verifyLocal(remotePath, part); err != nil {
		// The staged bytes failed end-to-end verification; drop them so
		// the next attempt starts clean instead of resuming corruption.
		os.Remove(part)
		return stats, err
	}
	if err := os.Rename(part, localPath); err != nil {
		return stats, err
	}
	syncDir(filepath.Dir(localPath))
	return stats, nil
}

// resumePartial decides whether an existing staging file can seed a
// resumed download. The prefix is trusted only when the server's range
// checksum of [0, have) matches the local bytes; any doubt — remote
// shrank, CKSM unsupported, checksum mismatch, read error — truncates
// back to a full restart. Because connect targets whatever source the
// caller is currently using, this is also the cross-source handshake: a
// prefix downloaded from one replica is re-verified against the new
// source before a single byte is appended, and a disagreeing source
// costs the prefix (never the transfer, and never a quarantine — the
// staging file is simply restarted from zero). Best-effort: a failure
// here never fails the transfer, it only costs the resume. Returns how
// many prefix bytes were kept and how many were thrown away.
func resumePartial(ctx context.Context, connect func(context.Context) (*Client, error), remotePath string, f *os.File, have int64, rs *RangeSet) (resumed, discarded int64) {
	restart := func() {
		f.Truncate(0)
	}
	cl, err := connect(ctx)
	if err != nil {
		restart()
		return 0, have
	}
	defer cl.Close()
	size, err := cl.Size(remotePath)
	if err != nil || have > size {
		restart()
		return 0, have
	}
	want, err := cl.ChecksumRange(remotePath, 0, have)
	if err != nil {
		restart()
		return 0, have
	}
	got, err := crcOfReader(f, have)
	if err != nil || got != want {
		cl.rec.ResumeRejected()
		restart()
		return 0, have
	}
	rs.Add(0, have)
	cl.rec.Resumed(have)
	return have, 0
}

// AutoTune performs the paper's "automatic negotiation of TCP buffer/window
// sizes": it measures the application-level round trip with NOOP probes,
// estimates the path bandwidth by timing a partial retrieval of probePath
// (which must exist on the server and be at least probeBytes long), applies
// the RTT x bandwidth formula, and negotiates the result with SBUF. The
// chosen buffer size is returned.
func (c *Client) AutoTune(probePath string, probeBytes int64) (int, error) {
	// Two RTT estimates, take the larger: fresh TCP connects capture
	// path latency charged at connection setup (the ping analogue), NOOP
	// round trips capture per-message latency on the live session.
	rtt, err := netprobe.MeasureRTTFunc(c.Noop, 3)
	if err != nil {
		return 0, err
	}
	if dialRTT, err := netprobe.MeasureRTT(c.dial, c.addr, 2); err == nil && dialRTT > rtt {
		rtt = dialRTT
	}
	size, err := c.Size(probePath)
	if err != nil {
		return 0, err
	}
	if probeBytes > size {
		probeBytes = size
	}
	if probeBytes <= 0 {
		return 0, fmt.Errorf("gridftp: probe file %s is empty", probePath)
	}
	bw, err := netprobe.EstimateBandwidth(func(n int64) (time.Duration, error) {
		dst := discardWriterAt{}
		stats, err := c.GetRange(probePath, Range{0, n}, dst)
		if err != nil {
			return 0, err
		}
		return stats.Elapsed, nil
	}, probeBytes)
	if err != nil {
		return 0, err
	}
	buf := netprobe.OptimalBuffer(rtt, bw)
	if err := c.SetBufferSize(buf); err != nil {
		return 0, err
	}
	return buf, nil
}

// discardWriterAt throws away probe payload.
type discardWriterAt struct{}

func (discardWriterAt) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }

// ReliablePut stores a file with restart-on-failure semantics, the upload
// mirror of ReliableGet: after an interrupted attempt, only the byte ranges
// the server has not confirmed are re-sent with ESTO from a fresh session.
// Because the receiving server only acknowledges a transfer once every
// expected byte arrived, confirmation is tracked per successful command.
func ReliablePut(ctx context.Context, connect func(context.Context) (*Client, error), src io.ReaderAt, size int64, remotePath string, pol retry.Policy) (TransferStats, error) {
	var agg TransferStats
	var created bool
	var done RangeSet
	if pol.Op == "" {
		pol.Op = "gridftp.put"
	}
	if pol.Retryable == nil {
		pol.Retryable = transferRetryable
	}
	err := pol.Do(ctx, func(attempt int) error {
		agg.Attempts = attempt
		cl, err := connect(ctx)
		if err != nil {
			return err
		}
		if attempt > 1 {
			cl.rec.Restart()
		}
		err = func() error {
			defer cl.Close()
			if !created {
				// First pass: a plain STOR of the whole file.
				st, err := cl.Put(remotePath, src, size)
				agg.merge(st)
				if err != nil {
					return err
				}
				created = true
				done.Add(0, size)
				return nil
			}
			// Retry passes: probe what landed, resend the remainder.
			// The server only reports full-file success, so compare sizes
			// and checksums; a short or mismatched file is resent in
			// halves via ESTO to exercise partial restore.
			remoteSize, err := cl.Size(remotePath)
			if err != nil || remoteSize != size {
				st, err2 := cl.Put(remotePath, src, size)
				agg.merge(st)
				if err2 != nil {
					return err2
				}
				done.Add(0, size)
				return err
			}
			for _, missing := range done.Missing(size) {
				st, err := cl.PutRegion(remotePath, src, []Range{missing})
				agg.merge(st)
				if err != nil {
					return err
				}
				done.Add(missing.Start, missing.End)
			}
			return nil
		}()
		if err != nil {
			return err
		}
		// Verify end to end before declaring success.
		cl2, err := connect(ctx)
		if err != nil {
			return err
		}
		want, err := cl2.Checksum(remotePath)
		cl2.Close()
		if err != nil {
			return err
		}
		got, err := crcOfReader(src, size)
		if err != nil {
			// A local read failure will not heal on retry.
			return retry.Permanent(err)
		}
		if got != want {
			cl2.rec.CRCFailure()
			created = false // resend everything
			done = RangeSet{}
			return fmt.Errorf("%w: local %08x, remote %08x", ErrChecksum, got, want)
		}
		return nil
	})
	if err != nil {
		return agg, fmt.Errorf("gridftp: reliable put of %s: %w", remotePath, err)
	}
	return agg, nil
}

// crcOfReader computes the CRC-32 of size bytes from an io.ReaderAt.
func crcOfReader(src io.ReaderAt, size int64) (uint32, error) {
	h := crc32.NewIEEE()
	buf := make([]byte, 256*1024)
	for pos := int64(0); pos < size; {
		chunk := int64(len(buf))
		if pos+chunk > size {
			chunk = size - pos
		}
		if _, err := src.ReadAt(buf[:chunk], pos); err != nil {
			return 0, err
		}
		h.Write(buf[:chunk])
		pos += chunk
	}
	return h.Sum32(), nil
}

// --- striped transfer --------------------------------------------------------

// StripedGet fetches one file from several servers that each hold a replica,
// assigning a disjoint byte range to each server (m-hosts-to-one striping).
// clients must all be connected and remain owned by the caller.
func StripedGet(clients []*Client, path string, dst io.WriterAt) (TransferStats, error) {
	if len(clients) == 0 {
		return TransferStats{}, errors.New("gridftp: striped get needs at least one client")
	}
	clients[0].rec.Striped(len(clients))
	size, err := clients[0].Size(path)
	if err != nil {
		return TransferStats{}, err
	}
	m := len(clients)
	per := size / int64(m)
	start := time.Now()
	var mu sync.Mutex
	var agg TransferStats
	var wg sync.WaitGroup
	errs := make(chan error, m)
	for i, cl := range clients {
		lo := int64(i) * per
		hi := lo + per
		if i == m-1 {
			hi = size
		}
		wg.Add(1)
		go func(cl *Client, r Range) {
			defer wg.Done()
			st, err := cl.GetRange(path, r, dst)
			mu.Lock()
			agg.merge(st)
			mu.Unlock()
			if err != nil {
				errs <- err
			}
		}(cl, Range{lo, hi})
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return agg, err
	}
	agg.Elapsed = time.Since(start)
	agg.Attempts = 1
	return agg, nil
}

// --- third-party transfer ----------------------------------------------------

// ThirdParty moves a file directly between two servers: the client owns both
// control channels but the data flows server-to-server, the paper's
// "third-party control of data transfer". Both clients must share the same
// parallelism setting.
func ThirdParty(src, dst *Client, srcPath, dstPath string) (TransferStats, error) {
	if src.parallelism != dst.parallelism {
		return TransferStats{}, fmt.Errorf("gridftp: parallelism mismatch %d vs %d", src.parallelism, dst.parallelism)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	dst.mu.Lock()
	defer dst.mu.Unlock()

	finish := src.rec.Start()
	stats, err := thirdPartyLocked(src, dst, srcPath, dstPath)
	finish(obs.TransferSample{
		Direction: "3rd-party", Bytes: stats.Bytes, Streams: stats.Streams,
		Elapsed: stats.Elapsed, Err: err,
	})
	return stats, err
}

func thirdPartyLocked(src, dst *Client, srcPath, dstPath string) (TransferStats, error) {
	start := time.Now()
	size, err := src.sizeLocked(srcPath)
	if err != nil {
		return TransferStats{}, err
	}
	// Source listens; destination will dial it.
	pi, err := src.enterPassive()
	if err != nil {
		return TransferStats{}, err
	}
	if err := dst.simpleCmd(codeOK, "PORT %s %s", pi.token, pi.addr); err != nil {
		return TransferStats{}, err
	}
	// Start the retrieve: the source now waits for data connections.
	code, text, err := src.roundTrip("RETR %s", srcPath)
	if err != nil {
		return TransferStats{}, err
	}
	if code != codeOpening {
		return TransferStats{}, fmt.Errorf("%w: RETR: %d %s", ErrTransferFailed, code, text)
	}
	// Kick off the store: the destination dials the source and receives.
	code, text, err = dst.roundTrip("STOR %d %s", size, dstPath)
	if err != nil {
		return TransferStats{}, err
	}
	if code != codeOpening {
		return TransferStats{}, fmt.Errorf("%w: ESTO: %d %s", ErrTransferFailed, code, text)
	}

	stats := TransferStats{Attempts: 1}
	srcCode, srcText, err := src.drainTransferReplies(&stats)
	if err != nil {
		return stats, err
	}
	dstCode, dstText, err := dst.drainTransferReplies(&stats)
	if err != nil {
		return stats, err
	}
	stats.Elapsed = time.Since(start)
	stats.Bytes = size
	stats.Streams = src.parallelism
	if srcCode != codeComplete {
		return stats, fmt.Errorf("%w: source: %d %s", ErrTransferFailed, srcCode, srcText)
	}
	if dstCode != codeComplete {
		return stats, fmt.Errorf("%w: destination: %d %s", ErrTransferFailed, dstCode, dstText)
	}
	// End-to-end integrity: both sides must agree on the CRC.
	srcCRC, err := src.checksumCmd("CKSM %s", srcPath)
	if err != nil {
		return stats, err
	}
	dstCRC, err := dst.checksumCmd("CKSM %s", dstPath)
	if err != nil {
		return stats, err
	}
	if srcCRC != dstCRC {
		src.rec.CRCFailure()
		return stats, fmt.Errorf("%w: source %08x, destination %08x", ErrChecksum, srcCRC, dstCRC)
	}
	return stats, nil
}
