package gridftp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeSetBasics(t *testing.T) {
	var rs RangeSet
	if !rs.Complete(0) {
		t.Error("empty set should be complete for total=0")
	}
	if rs.Complete(1) {
		t.Error("empty set should not be complete for total=1")
	}
	rs.Add(0, 10)
	if rs.Covered() != 10 {
		t.Fatalf("Covered = %d", rs.Covered())
	}
	rs.Add(20, 30)
	if got := rs.String(); got != "0-10,20-30" {
		t.Fatalf("String = %q", got)
	}
	missing := rs.Missing(40)
	if len(missing) != 2 || missing[0] != (Range{10, 20}) || missing[1] != (Range{30, 40}) {
		t.Fatalf("Missing = %v", missing)
	}
	rs.Add(10, 20)
	rs.Add(30, 40)
	if !rs.Complete(40) {
		t.Fatalf("set should be complete: %s", rs.String())
	}
	if len(rs.Missing(40)) != 0 {
		t.Fatalf("Missing on complete set = %v", rs.Missing(40))
	}
}

func TestRangeSetMerging(t *testing.T) {
	var rs RangeSet
	rs.Add(10, 20)
	rs.Add(15, 25) // overlap
	if got := rs.String(); got != "10-25" {
		t.Fatalf("overlap merge = %q", got)
	}
	rs.Add(25, 30) // adjacent
	if got := rs.String(); got != "10-30" {
		t.Fatalf("adjacent merge = %q", got)
	}
	rs.Add(0, 5)
	rs.Add(40, 50)
	rs.Add(3, 45) // spans everything
	if got := rs.String(); got != "0-50" {
		t.Fatalf("spanning merge = %q", got)
	}
}

func TestRangeSetIgnoresDegenerate(t *testing.T) {
	var rs RangeSet
	rs.Add(5, 5)
	rs.Add(10, 3)
	rs.Add(-4, 2) // negative start
	if rs.Covered() != 0 {
		t.Fatalf("degenerate ranges accepted: %s", rs.String())
	}
}

func TestRangeSetStringRoundTrip(t *testing.T) {
	var rs RangeSet
	rs.Add(0, 100)
	rs.Add(200, 300)
	rs.Add(1000, 1001)
	parsed, err := ParseRangeSet(rs.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != rs.String() {
		t.Fatalf("round trip: %q -> %q", rs.String(), parsed.String())
	}
	empty, err := ParseRangeSet("")
	if err != nil || empty.Covered() != 0 {
		t.Fatalf("empty parse: %v %v", empty, err)
	}
	if _, err := ParseRangeSet("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseRangeSet("5-2"); err == nil {
		t.Fatal("inverted range accepted")
	}
}

// TestRangeSetPropertyCoverage: adding random ranges always yields a set
// whose covered bytes plus missing bytes equals the total, with disjoint
// sorted ranges.
func TestRangeSetPropertyCoverage(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const total = 1000
		var rs RangeSet
		for i := 0; i < int(n%20)+1; i++ {
			a := rng.Int63n(total)
			b := a + rng.Int63n(total-a) + 1
			rs.Add(a, b)
		}
		// Invariant: ranges sorted, disjoint, non-adjacent.
		prev := Range{-1, -1}
		for _, r := range rs.Ranges() {
			if r.Start >= r.End {
				return false
			}
			if prev.End >= r.Start && prev.End != -1 {
				return false
			}
			prev = r
		}
		// Covered + missing = total within [0, total).
		var missing int64
		for _, m := range rs.Missing(total) {
			missing += m.Len()
		}
		covered := int64(0)
		for _, r := range rs.Ranges() {
			lo, hi := r.Start, r.End
			if hi > total {
				hi = total
			}
			if lo < total {
				covered += hi - lo
			}
		}
		return covered+missing == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeSetPropertyCompleteness: covering [0,total) in random chunk
// order always completes.
func TestRangeSetPropertyCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const total = 512
		chunks := make([]Range, 0)
		for pos := int64(0); pos < total; {
			n := rng.Int63n(64) + 1
			if pos+n > total {
				n = total - pos
			}
			chunks = append(chunks, Range{pos, pos + n})
			pos += n
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		var rs RangeSet
		for _, ch := range chunks {
			rs.Add(ch.Start, ch.End)
		}
		return rs.Complete(total) && rs.Covered() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
