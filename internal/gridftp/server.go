package gridftp

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/obs"
)

// ServerMetricsPrefix names the server-side metric family.
const ServerMetricsPrefix = "gdmp_gridftp_server"

// serverMetrics holds the server's instrumentation handles.
type serverMetrics struct {
	sessions       *obs.Gauge      // authenticated control sessions
	handshakeFails *obs.Counter    // failed GSI handshakes
	transfers      *obs.CounterVec // {verb, outcome}
	bytes          *obs.CounterVec // {direction}: sent / received
	markers        *obs.Counter    // 112 performance markers emitted
	streams        *obs.Histogram  // data streams per transfer
	transferTime   *obs.Histogram  // seconds per transfer
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		sessions: r.Gauge(ServerMetricsPrefix+"_sessions",
			"Authenticated control sessions currently open."),
		handshakeFails: r.Counter(ServerMetricsPrefix+"_handshake_failures_total",
			"GSI handshakes that failed."),
		transfers: r.CounterVec(ServerMetricsPrefix+"_transfers_total",
			"Data transfers served by verb and outcome.", "verb", "outcome"),
		bytes: r.CounterVec(ServerMetricsPrefix+"_bytes_total",
			"Payload bytes served by direction.", "direction"),
		markers: r.Counter(ServerMetricsPrefix+"_markers_total",
			"112 performance markers emitted on control channels."),
		streams: r.Histogram(ServerMetricsPrefix+"_streams",
			"Parallel data streams per served transfer.", obs.LinearBuckets(1, 1, MaxParallelism)),
		transferTime: r.Histogram(ServerMetricsPrefix+"_transfer_seconds",
			"Wall-clock seconds per served transfer.", nil),
	}
}

// ACL operations checked by the server. Read covers RETR/ERET/SIZE/CKSM/
// NLST; write covers STOR/ESTO/DELE/MKD.
const (
	OpRead  gsi.Operation = "gridftp.read"
	OpWrite gsi.Operation = "gridftp.write"
)

// ServerConfig configures a GridFTP server.
type ServerConfig struct {
	// Root is the directory served; all paths are resolved inside it.
	Root string

	// Cred authenticates the server to clients.
	Cred *gsi.Credential

	// TrustRoots verify client certificate chains.
	TrustRoots []*gsi.Certificate

	// ACL authorizes OpRead/OpWrite per identity; nil denies everything.
	ACL *gsi.ACL

	// BlockSize is the extended-block payload size (DefaultBlockSize if 0).
	BlockSize int

	// MarkerBytes emits a 112 performance marker on the control channel
	// after every MarkerBytes transferred (0 disables markers).
	MarkerBytes int64

	// DataTimeout bounds how long the server waits for data connections to
	// arrive after announcing a transfer (default 10s).
	DataTimeout time.Duration

	// Logger receives diagnostics; nil discards them.
	Logger *log.Logger

	// Metrics receives the server's integrated instrumentation; nil uses
	// obs.Default.
	Metrics *obs.Registry

	// Admit, when non-nil, gates the data-moving verbs (RETR, ERET, STOR,
	// ESTO) through an admission controller: it returns a release func to
	// call when the transfer finishes, or an error if the server is too
	// loaded to take the transfer now. Rejections get a transient 450
	// reply, so clients back off and retry rather than failing the pull.
	Admit func(verb string) (release func(), err error)
}

// Server is a GridFTP server instance.
type Server struct {
	cfg ServerConfig
	met *serverMetrics

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer validates the configuration and creates a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Root == "" {
		return nil, errors.New("gridftp: Root must be set")
	}
	info, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("gridftp: root: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("gridftp: root %q is not a directory", cfg.Root)
	}
	if cfg.Cred == nil {
		return nil, errors.New("gridftp: Cred must be set")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.DataTimeout <= 0 {
		cfg.DataTimeout = 10 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default
	}
	return &Server{
		cfg:   cfg,
		met:   newServerMetrics(cfg.Metrics),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts control connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("gridftp: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveControl(conn)
		}()
	}
}

// Close stops the server and terminates open sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// session holds per-control-connection state.
type session struct {
	srv  *Server
	ctl  *controlConn
	conn net.Conn
	peer *gsi.Peer

	parallelism int
	bufferSize  int

	// passive rendezvous for the next transfer
	passive *passiveListener

	// active (PORT) target for the next transfer
	portToken string
	portAddr  string

	ctlMu sync.Mutex // serializes control-channel writes (markers vs replies)
}

// passiveListener is a data-connection rendezvous created by PASV.
type passiveListener struct {
	token string
	ln    net.Listener
}

func (p *passiveListener) close() {
	if p != nil && p.ln != nil {
		p.ln.Close()
	}
}

func (s *Server) serveControl(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	conn.SetDeadline(time.Now().Add(30 * time.Second))
	peer, err := gsi.Handshake(conn, s.cfg.Cred, s.cfg.TrustRoots, false)
	if err != nil {
		s.met.handshakeFails.Inc()
		s.cfg.Logger.Printf("gridftp: handshake from %v failed: %v", conn.RemoteAddr(), err)
		return
	}
	conn.SetDeadline(time.Time{})
	s.met.sessions.Inc()
	defer s.met.sessions.Dec()

	sess := &session{
		srv:         s,
		ctl:         newControlConn(conn),
		conn:        conn,
		peer:        peer,
		parallelism: DefaultParallelism,
	}
	defer func() { sess.passive.close() }()

	if err := sess.reply(220, "gdmp-gridftp ready, authenticated as %s", peer.Identity); err != nil {
		return
	}
	for {
		line, err := sess.ctl.readLine()
		if err != nil {
			return
		}
		verb, args, _ := strings.Cut(line, " ")
		verb = strings.ToUpper(strings.TrimSpace(verb))
		if verb == "QUIT" {
			sess.reply(codeClosing, "goodbye")
			return
		}
		if err := sess.dispatch(verb, strings.TrimSpace(args)); err != nil {
			s.cfg.Logger.Printf("gridftp: session %s: %v", peer.Base, err)
			return
		}
	}
}

// reply sends a response line, serialized against marker emission.
func (se *session) reply(code int, format string, args ...interface{}) error {
	se.ctlMu.Lock()
	defer se.ctlMu.Unlock()
	return se.ctl.reply(code, format, args...)
}

// authorize checks the session's identity for an operation.
func (se *session) authorize(op gsi.Operation) bool {
	return se.srv.cfg.ACL != nil && se.srv.cfg.ACL.Authorized(se.peer.Base, op)
}

// resolve maps a client path into the served root, rejecting escapes.
func (se *session) resolve(p string) (string, error) {
	clean := path.Clean("/" + strings.TrimSpace(p))
	if clean == "/" {
		return "", errors.New("empty path")
	}
	return filepath.Join(se.srv.cfg.Root, filepath.FromSlash(clean)), nil
}

func (se *session) dispatch(verb, args string) error {
	switch verb {
	case "RETR", "ERET", "STOR", "ESTO":
		if se.srv.cfg.Admit != nil {
			release, err := se.srv.cfg.Admit(verb)
			if err != nil {
				return se.reply(codeBusy, "server overloaded, retry later: %v", err)
			}
			defer release()
		}
	}
	switch verb {
	case "NOOP":
		return se.reply(codeOK, "ok")
	case "SBUF":
		return se.cmdSBUF(args)
	case "OPTS":
		return se.cmdOPTS(args)
	case "PASV":
		return se.cmdPASV()
	case "PORT":
		return se.cmdPORT(args)
	case "SIZE":
		return se.cmdSIZE(args)
	case "CKSM":
		return se.cmdCKSM(args)
	case "NLST":
		return se.cmdNLST(args)
	case "RETR":
		return se.cmdRETR(args)
	case "ERET":
		return se.cmdERET(args)
	case "STOR":
		return se.cmdSTOR(args, false)
	case "ESTO":
		return se.cmdSTOR(args, true)
	case "DELE":
		return se.cmdDELE(args)
	case "MKD":
		return se.cmdMKD(args)
	default:
		return se.reply(codeBadCmd, "unknown command %q", verb)
	}
}

func (se *session) cmdSBUF(args string) error {
	n, err := strconv.Atoi(args)
	if err != nil || n < 1024 || n > 64<<20 {
		return se.reply(codeBadArgs, "SBUF wants a size in [1024, 64MiB]")
	}
	se.bufferSize = n
	return se.reply(codeOK, "buffer size %d", n)
}

func (se *session) cmdOPTS(args string) error {
	name, val, _ := strings.Cut(args, " ")
	if !strings.EqualFold(name, "PARALLEL") {
		return se.reply(codeBadArgs, "unknown option %q", name)
	}
	n, err := strconv.Atoi(strings.TrimSpace(val))
	if err != nil || n < 1 || n > MaxParallelism {
		return se.reply(codeBadArgs, "parallelism must be in [1, %d]", MaxParallelism)
	}
	se.parallelism = n
	return se.reply(codeOK, "parallelism %d", n)
}

func (se *session) cmdPASV() error {
	se.passive.close()
	se.passive = nil
	host, _, err := net.SplitHostPort(se.conn.LocalAddr().String())
	if err != nil {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return se.reply(codeProtoErr, "cannot open data listener: %v", err)
	}
	token, err := newToken()
	if err != nil {
		ln.Close()
		return se.reply(codeLocalErr, "token: %v", err)
	}
	se.passive = &passiveListener{token: token, ln: ln}
	se.portToken, se.portAddr = "", ""
	return se.reply(codePassive, "%s %s", token, ln.Addr().String())
}

func (se *session) cmdPORT(args string) error {
	fields := strings.Fields(args)
	if len(fields) != 2 {
		return se.reply(codeBadArgs, "PORT wants <token> <host:port>")
	}
	if _, _, err := net.SplitHostPort(fields[1]); err != nil {
		return se.reply(codeBadArgs, "bad address %q", fields[1])
	}
	se.portToken, se.portAddr = fields[0], fields[1]
	se.passive.close()
	se.passive = nil
	return se.reply(codeOK, "active mode to %s", fields[1])
}

func (se *session) cmdSIZE(args string) error {
	if !se.authorize(OpRead) {
		return se.reply(codeDenied, "not authorized for read")
	}
	p, err := se.resolve(args)
	if err != nil {
		return se.reply(codeBadArgs, "bad path: %v", err)
	}
	info, err := os.Stat(p)
	if err != nil || info.IsDir() {
		return se.reply(codeNoFile, "no such file")
	}
	return se.reply(codeStat, "%d", info.Size())
}

func (se *session) cmdCKSM(args string) error {
	if !se.authorize(OpRead) {
		return se.reply(codeDenied, "not authorized for read")
	}
	fields := strings.Fields(args)
	if len(fields) != 1 && len(fields) != 3 {
		return se.reply(codeBadArgs, "CKSM wants <path> or <off> <len> <path>")
	}
	var off, length int64 = 0, -1
	pathArg := fields[0]
	if len(fields) == 3 {
		var err1, err2 error
		off, err1 = strconv.ParseInt(fields[0], 10, 64)
		length, err2 = strconv.ParseInt(fields[1], 10, 64)
		pathArg = fields[2]
		if err1 != nil || err2 != nil || off < 0 || length < 0 {
			return se.reply(codeBadArgs, "bad range")
		}
	}
	p, err := se.resolve(pathArg)
	if err != nil {
		return se.reply(codeBadArgs, "bad path: %v", err)
	}
	f, err := os.Open(p)
	if err != nil {
		return se.reply(codeNoFile, "no such file")
	}
	defer f.Close()
	var r io.Reader = f
	if length >= 0 {
		r = io.NewSectionReader(f, off, length)
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, r); err != nil {
		return se.reply(codeLocalErr, "read: %v", err)
	}
	return se.reply(codeStat, "%08x", h.Sum32())
}

func (se *session) cmdNLST(args string) error {
	if !se.authorize(OpRead) {
		return se.reply(codeDenied, "not authorized for read")
	}
	dir := se.srv.cfg.Root
	if strings.TrimSpace(args) != "" {
		p, err := se.resolve(args)
		if err != nil {
			return se.reply(codeBadArgs, "bad path: %v", err)
		}
		dir = p
	}
	var entries []string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(se.srv.cfg.Root, p)
		if err != nil {
			return nil
		}
		entries = append(entries, fmt.Sprintf("%s\t%d", filepath.ToSlash(rel), info.Size()))
		return nil
	})
	if err != nil {
		return se.reply(codeLocalErr, "list: %v", err)
	}
	sort.Strings(entries)
	se.ctlMu.Lock()
	defer se.ctlMu.Unlock()
	if err := se.ctl.reply(codeOpening, "%d", len(entries)); err != nil {
		return err
	}
	for _, e := range entries {
		if err := se.ctl.sendLine("%s", e); err != nil {
			return err
		}
	}
	return se.ctl.reply(codeComplete, "listing complete")
}

func (se *session) cmdDELE(args string) error {
	if !se.authorize(OpWrite) {
		return se.reply(codeDenied, "not authorized for write")
	}
	p, err := se.resolve(args)
	if err != nil {
		return se.reply(codeBadArgs, "bad path: %v", err)
	}
	if err := os.Remove(p); err != nil {
		return se.reply(codeNoFile, "delete: %v", err)
	}
	return se.reply(codeFileOK, "deleted")
}

func (se *session) cmdMKD(args string) error {
	if !se.authorize(OpWrite) {
		return se.reply(codeDenied, "not authorized for write")
	}
	p, err := se.resolve(args)
	if err != nil {
		return se.reply(codeBadArgs, "bad path: %v", err)
	}
	if err := os.MkdirAll(p, 0o755); err != nil {
		return se.reply(codeLocalErr, "mkdir: %v", err)
	}
	return se.reply(257, "created")
}

// --- data transfers --------------------------------------------------------

func (se *session) cmdRETR(args string) error {
	p, err := se.resolve(args)
	if err != nil {
		return se.reply(codeBadArgs, "bad path: %v", err)
	}
	info, err := os.Stat(p)
	if err != nil || info.IsDir() {
		return se.reply(codeNoFile, "no such file")
	}
	return se.sendFile("RETR", p, 0, info.Size())
}

func (se *session) cmdERET(args string) error {
	fields := strings.Fields(args)
	if len(fields) != 3 {
		return se.reply(codeBadArgs, "ERET wants <off> <len> <path>")
	}
	off, err1 := strconv.ParseInt(fields[0], 10, 64)
	length, err2 := strconv.ParseInt(fields[1], 10, 64)
	if err1 != nil || err2 != nil || off < 0 || length < 0 {
		return se.reply(codeBadArgs, "bad range")
	}
	p, err := se.resolve(fields[2])
	if err != nil {
		return se.reply(codeBadArgs, "bad path: %v", err)
	}
	info, err := os.Stat(p)
	if err != nil || info.IsDir() {
		return se.reply(codeNoFile, "no such file")
	}
	if off+length > info.Size() {
		return se.reply(codeBadArgs, "range [%d,%d) beyond EOF %d", off, off+length, info.Size())
	}
	return se.sendFile("ERET", p, off, length)
}

// openDataConns establishes the session's data connections for one
// transfer: accepting on the passive listener or dialing the PORT target.
func (se *session) openDataConns(n int) ([]net.Conn, error) {
	deadline := time.Now().Add(se.srv.cfg.DataTimeout)
	conns := make([]net.Conn, 0, n)
	fail := func(err error) ([]net.Conn, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}

	if se.passive != nil {
		if tl, ok := se.passive.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		for len(conns) < n {
			c, err := se.passive.ln.Accept()
			if err != nil {
				return fail(fmt.Errorf("accept data conn: %w", err))
			}
			c.SetDeadline(deadline)
			// The dialer authenticates the pairing with the token line.
			tok := make([]byte, len(se.passive.token)+1)
			if _, err := io.ReadFull(c, tok); err != nil {
				c.Close()
				continue
			}
			if string(tok) != se.passive.token+"\n" {
				c.Close()
				continue
			}
			c.SetDeadline(time.Time{})
			se.tuneConn(c)
			conns = append(conns, c)
		}
		return conns, nil
	}

	if se.portAddr != "" {
		for len(conns) < n {
			c, err := net.DialTimeout("tcp", se.portAddr, se.srv.cfg.DataTimeout)
			if err != nil {
				return fail(fmt.Errorf("dial data conn: %w", err))
			}
			if _, err := io.WriteString(c, se.portToken+"\n"); err != nil {
				c.Close()
				return fail(fmt.Errorf("send token: %w", err))
			}
			se.tuneConn(c)
			conns = append(conns, c)
		}
		return conns, nil
	}
	return nil, errors.New("no data channel arranged (use PASV or PORT)")
}

// tuneConn applies the negotiated socket buffer size (SBUF).
func (se *session) tuneConn(c net.Conn) {
	if se.bufferSize <= 0 {
		return
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetReadBuffer(se.bufferSize)
		tc.SetWriteBuffer(se.bufferSize)
	}
}

// sendFile streams [off, off+length) of the file over the arranged data
// connections: the range is split into one contiguous sub-range per stream,
// sent as self-describing extended blocks.
func (se *session) sendFile(verb, p string, off, length int64) error {
	met := se.srv.met
	if !se.authorize(OpRead) {
		return se.reply(codeDenied, "not authorized for read")
	}
	f, err := os.Open(p)
	if err != nil {
		return se.reply(codeNoFile, "open: %v", err)
	}
	defer f.Close()

	start := time.Now()
	n := se.parallelism
	if err := se.reply(codeOpening, "opening %d streams size=%d", n, length); err != nil {
		return err
	}
	conns, err := se.openDataConns(n)
	if err != nil {
		met.transfers.WithLabelValues(verb, "error").Inc()
		return se.reply(codeProtoErr, "%v", err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var sent int64
	var lastMark int64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	per := length / int64(n)
	for i := 0; i < n; i++ {
		start := off + int64(i)*per
		end := start + per
		if i == n-1 {
			end = off + length
		}
		wg.Add(1)
		go func(c net.Conn, start, end int64) {
			defer wg.Done()
			buf := make([]byte, se.srv.cfg.BlockSize)
			pos := start
			for pos < end {
				chunk := int64(len(buf))
				if pos+chunk > end {
					chunk = end - pos
				}
				if _, err := f.ReadAt(buf[:chunk], pos); err != nil {
					errs <- fmt.Errorf("read at %d: %w", pos, err)
					return
				}
				if err := writeBlock(c, 0, pos, buf[:chunk]); err != nil {
					errs <- fmt.Errorf("send block at %d: %w", pos, err)
					return
				}
				pos += chunk
				total := atomic.AddInt64(&sent, chunk)
				if mb := se.srv.cfg.MarkerBytes; mb > 0 {
					if last := atomic.LoadInt64(&lastMark); total-last >= mb &&
						atomic.CompareAndSwapInt64(&lastMark, last, total) {
						met.markers.Inc()
						se.reply(codeMarker, "%d %d", total, length)
					}
				}
			}
			// Every stream terminates with a bare end-of-data block.
			if err := writeBlock(c, flagEOD, end, nil); err != nil {
				errs <- err
			}
		}(conns[i], start, end)
	}
	wg.Wait()
	close(errs)
	met.bytes.WithLabelValues("sent").Add(atomic.LoadInt64(&sent))
	if err := <-errs; err != nil {
		met.transfers.WithLabelValues(verb, "error").Inc()
		return se.reply(codeInterrupt, "transfer aborted: %v", err)
	}
	met.transfers.WithLabelValues(verb, "ok").Inc()
	met.streams.Observe(float64(n))
	met.transferTime.ObserveDuration(time.Since(start))
	return se.reply(codeComplete, "transfer complete %d bytes", length)
}

// cmdSTOR receives a file. STOR truncates/creates; ESTO writes into an
// existing (or new) file at the block offsets, enabling partial restores
// and restartable puts.
func (se *session) cmdSTOR(args string, extended bool) error {
	if !se.authorize(OpWrite) {
		return se.reply(codeDenied, "not authorized for write")
	}
	fields := strings.Fields(args)
	if len(fields) != 2 {
		return se.reply(codeBadArgs, "wants <len> <path>")
	}
	length, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || length < 0 {
		return se.reply(codeBadArgs, "bad length")
	}
	p, err := se.resolve(fields[1])
	if err != nil {
		return se.reply(codeBadArgs, "bad path: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return se.reply(codeLocalErr, "mkdir: %v", err)
	}
	flags := os.O_WRONLY | os.O_CREATE
	if !extended {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(p, flags, 0o644)
	if err != nil {
		return se.reply(codeLocalErr, "open: %v", err)
	}
	defer f.Close()

	met := se.srv.met
	verb := "STOR"
	if extended {
		verb = "ESTO"
	}
	start := time.Now()
	n := se.parallelism
	if err := se.reply(codeOpening, "opening %d streams size=%d", n, length); err != nil {
		return err
	}
	conns, err := se.openDataConns(n)
	if err != nil {
		met.transfers.WithLabelValues(verb, "error").Inc()
		return se.reply(codeProtoErr, "%v", err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var received int64
	var lastMark int64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, c := range conns {
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			var buf []byte
			for {
				flags, offset, payload, err := readBlock(c, buf)
				if err != nil {
					errs <- fmt.Errorf("read block: %w", err)
					return
				}
				buf = payload[:cap(payload)]
				if len(payload) > 0 {
					if _, err := f.WriteAt(payload, offset); err != nil {
						errs <- fmt.Errorf("write at %d: %w", offset, err)
						return
					}
					total := atomic.AddInt64(&received, int64(len(payload)))
					if mb := se.srv.cfg.MarkerBytes; mb > 0 {
						if last := atomic.LoadInt64(&lastMark); total-last >= mb &&
							atomic.CompareAndSwapInt64(&lastMark, last, total) {
							met.markers.Inc()
							se.reply(codeMarker, "%d %d", total, length)
						}
					}
				}
				if flags&flagEOD != 0 {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	met.bytes.WithLabelValues("received").Add(atomic.LoadInt64(&received))
	if err := <-errs; err != nil {
		met.transfers.WithLabelValues(verb, "error").Inc()
		return se.reply(codeInterrupt, "transfer aborted: %v", err)
	}
	if got := atomic.LoadInt64(&received); got != length {
		met.transfers.WithLabelValues(verb, "error").Inc()
		return se.reply(codeInterrupt, "expected %d bytes, received %d", length, got)
	}
	if err := f.Sync(); err != nil {
		met.transfers.WithLabelValues(verb, "error").Inc()
		return se.reply(codeLocalErr, "sync: %v", err)
	}
	met.transfers.WithLabelValues(verb, "ok").Inc()
	met.streams.Observe(float64(n))
	met.transferTime.ObserveDuration(time.Since(start))
	return se.reply(codeComplete, "stored %d bytes", length)
}
