package gridftp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gdmp/internal/faults"
	"gdmp/internal/obs"
)

// connector builds a ReliableGetFile connect func against addr, recording
// into reg and optionally routing through a fault injector.
func connector(t *testing.T, addr string, reg *obs.Registry, inj *faults.Injector) func(context.Context) (*Client, error) {
	t.Helper()
	return func(ctx context.Context) (*Client, error) {
		// Single-stream so an interrupted transfer leaves a contiguous
		// prefix (a multi-stream kill can leave holes, which the prefix
		// check would — correctly — refuse to resume).
		opts := []ClientOption{WithMetrics(reg), WithParallelism(1)}
		if inj != nil {
			opts = append(opts, WithDialFunc(inj.Dialer(nil)))
		}
		return DialContext(ctx, addr, cred(t, "user/"+t.Name()), roots(t), opts...)
	}
}

func TestGetFileFailureNeverTouchesDestination(t *testing.T) {
	addr, _ := startServer(t, nil)
	cl := dial(t, addr)
	dest := filepath.Join(t.TempDir(), "out.db")
	// A destination from a previous successful run must survive a failed
	// re-transfer untouched.
	if err := os.WriteFile(dest, []byte("precious old bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetFile("no/such/file.db", dest); err == nil {
		t.Fatal("GetFile of a missing remote file succeeded")
	}
	got, err := os.ReadFile(dest)
	if err != nil || string(got) != "precious old bytes" {
		t.Fatalf("destination disturbed by failed transfer: %q, %v", got, err)
	}
	if _, err := os.Stat(dest + PartSuffix); !os.IsNotExist(err) {
		t.Fatalf("staging file left behind: %v", err)
	}
}

func TestGetFileStagesAndRenames(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "a.db", 200_000, 11)
	cl := dial(t, addr)
	dest := filepath.Join(t.TempDir(), "a.db")
	if _, err := cl.GetFile("a.db", dest); err != nil {
		t.Fatalf("GetFile: %v", err)
	}
	got, _ := os.ReadFile(dest)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch")
	}
	if _, err := os.Stat(dest + PartSuffix); !os.IsNotExist(err) {
		t.Fatalf("staging file survived success: %v", err)
	}
}

func TestReliableGetFileResumesVerifiedPrefix(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "big.db", 400_000, 12)
	reg := obs.NewRegistry()
	dest := filepath.Join(t.TempDir(), "big.db")
	// A previous interrupted attempt left a correct 150k prefix staged.
	if err := os.WriteFile(dest+PartSuffix, want[:150_000], 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := ReliableGetFile(context.Background(), connector(t, addr, reg, nil),
		"big.db", dest, fastPolicy(3))
	if err != nil {
		t.Fatalf("ReliableGetFile: %v", err)
	}
	got, _ := os.ReadFile(dest)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after resumed transfer")
	}
	rec := obs.NewTransferRecorder(reg, ClientMetricsPrefix)
	if rec.Resumes() != 1 {
		t.Fatalf("resumes = %d, want 1", rec.Resumes())
	}
	if rec.ResumedBytes() != 150_000 {
		t.Fatalf("resumed bytes = %d, want 150000", rec.ResumedBytes())
	}
	// Only the missing suffix crossed the wire.
	if stats.Bytes != 250_000 {
		t.Fatalf("transferred %d bytes, want 250000", stats.Bytes)
	}
}

func TestReliableGetFileRejectsCorruptPrefix(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "b.db", 300_000, 13)
	reg := obs.NewRegistry()
	dest := filepath.Join(t.TempDir(), "b.db")
	bad := append([]byte(nil), want[:100_000]...)
	bad[12_345] ^= 0xff
	if err := os.WriteFile(dest+PartSuffix, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := ReliableGetFile(context.Background(), connector(t, addr, reg, nil),
		"b.db", dest, fastPolicy(3))
	if err != nil {
		t.Fatalf("ReliableGetFile: %v", err)
	}
	got, _ := os.ReadFile(dest)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after prefix rejection")
	}
	rec := obs.NewTransferRecorder(reg, ClientMetricsPrefix)
	if rec.Resumes() != 0 {
		t.Fatalf("corrupt prefix was resumed (%d resumes)", rec.Resumes())
	}
	if stats.Bytes != 300_000 {
		t.Fatalf("transferred %d bytes, want the full 300000 after restart", stats.Bytes)
	}
}

func TestReliableGetFileRestartsWhenPartialExceedsRemote(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "c.db", 50_000, 14)
	dest := filepath.Join(t.TempDir(), "c.db")
	if err := os.WriteFile(dest+PartSuffix, make([]byte, 80_000), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReliableGetFile(context.Background(), connector(t, addr, obs.NewRegistry(), nil),
		"c.db", dest, fastPolicy(3)); err != nil {
		t.Fatalf("ReliableGetFile: %v", err)
	}
	got, _ := os.ReadFile(dest)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after oversized-partial restart")
	}
}

// TestReliableGetFileInterruptThenResume is the full restart-marker
// lifecycle: a mid-stream connection reset leaves a staging file and no
// destination; a second call verifies the prefix and finishes from a
// non-zero offset.
func TestReliableGetFileInterruptThenResume(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "d.db", 600_000, 15)
	reg := obs.NewRegistry()
	dest := filepath.Join(t.TempDir(), "d.db")

	// Every data connection dies after 200k bytes; with one attempt the
	// transfer must fail.
	inj := faults.New(1, func(c faults.ConnInfo) faults.Plan {
		return faults.Plan{ResetAfterBytes: 200_000}
	}, faults.WithMetrics(reg))
	if _, err := ReliableGetFile(context.Background(), connector(t, addr, reg, inj),
		"d.db", dest, fastPolicy(1)); err == nil {
		t.Fatal("interrupted transfer reported success")
	}
	if _, err := os.Stat(dest); !os.IsNotExist(err) {
		t.Fatalf("destination exists after failed transfer: %v", err)
	}
	info, err := os.Stat(dest + PartSuffix)
	if err != nil {
		t.Fatalf("no staging file after interruption: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("staging file is empty; nothing to resume from")
	}

	// Second run, no faults: must resume from the staged prefix.
	if _, err := ReliableGetFile(context.Background(), connector(t, addr, reg, nil),
		"d.db", dest, fastPolicy(3)); err != nil {
		t.Fatalf("resumed ReliableGetFile: %v", err)
	}
	got, _ := os.ReadFile(dest)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after interrupt + resume")
	}
	rec := obs.NewTransferRecorder(reg, ClientMetricsPrefix)
	if rec.Resumes() == 0 || rec.ResumedBytes() == 0 {
		t.Fatalf("resume not recorded: resumes=%d bytes=%d", rec.Resumes(), rec.ResumedBytes())
	}
	t.Logf("resumed from offset %d of %d", rec.ResumedBytes(), len(want))
}

// TestReliableGetFileCrossSourceResumeAgreement is the hedged-pull
// takeover happy path: a prefix downloaded from source A is resumed
// against source B holding identical content. B's CKSM range vouches for
// the prefix, so zero already-verified bytes are re-downloaded.
func TestReliableGetFileCrossSourceResumeAgreement(t *testing.T) {
	addrA, rootA := startServer(t, nil)
	addrB, rootB := startServer(t, nil)
	// Same seed: both replicas hold the same bytes, as catalog replicas do.
	makeFile(t, rootA, "x.db", 500_000, 21)
	_, want := makeFile(t, rootB, "x.db", 500_000, 21)
	reg := obs.NewRegistry()
	dest := filepath.Join(t.TempDir(), "x.db")

	// Source A dies mid-stream after 200k bytes: staged prefix, no dest.
	inj := faults.New(1, func(c faults.ConnInfo) faults.Plan {
		return faults.Plan{ResetAfterBytes: 200_000}
	}, faults.WithMetrics(reg))
	if _, err := ReliableGetFile(context.Background(), connector(t, addrA, reg, inj),
		"x.db", dest, fastPolicy(1)); err == nil {
		t.Fatal("interrupted transfer reported success")
	}
	info, err := os.Stat(dest + PartSuffix)
	if err != nil || info.Size() == 0 {
		t.Fatalf("no staged prefix to take over: %v", err)
	}
	prefix := info.Size()

	// Take over from source B: the prefix must be verified via B's CKSM
	// and reused, not re-downloaded.
	stats, err := ReliableGetFile(context.Background(), connector(t, addrB, reg, nil),
		"x.db", dest, fastPolicy(3))
	if err != nil {
		t.Fatalf("cross-source ReliableGetFile: %v", err)
	}
	got, _ := os.ReadFile(dest)
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after cross-source resume")
	}
	if stats.ResumedBytes != prefix || stats.DiscardedBytes != 0 {
		t.Fatalf("resumed/discarded = %d/%d, want %d/0",
			stats.ResumedBytes, stats.DiscardedBytes, prefix)
	}
	if stats.Bytes != 500_000-prefix {
		t.Fatalf("re-downloaded %d bytes, want only the missing %d",
			stats.Bytes, 500_000-prefix)
	}
}

// TestReliableGetFileCrossSourcePrefixDisagreement covers the takeover
// unhappy path: the new source holds *different* content under the same
// name, so its CKSM range disagrees with the staged prefix. The transfer
// must restart from zero against that source — counting the discarded
// prefix as wasted — and must never quarantine or strand the local
// .part (the staging file is reused in place and consumed by the rename).
func TestReliableGetFileCrossSourcePrefixDisagreement(t *testing.T) {
	addrA, rootA := startServer(t, nil)
	addrB, rootB := startServer(t, nil)
	makeFile(t, rootA, "y.db", 400_000, 31)
	_, want := makeFile(t, rootB, "y.db", 400_000, 32) // different bytes
	reg := obs.NewRegistry()
	destDir := t.TempDir()
	dest := filepath.Join(destDir, "y.db")

	inj := faults.New(1, func(c faults.ConnInfo) faults.Plan {
		return faults.Plan{ResetAfterBytes: 150_000}
	}, faults.WithMetrics(reg))
	if _, err := ReliableGetFile(context.Background(), connector(t, addrA, reg, inj),
		"y.db", dest, fastPolicy(1)); err == nil {
		t.Fatal("interrupted transfer reported success")
	}
	info, err := os.Stat(dest + PartSuffix)
	if err != nil || info.Size() == 0 {
		t.Fatalf("no staged prefix: %v", err)
	}
	prefix := info.Size()

	stats, err := ReliableGetFile(context.Background(), connector(t, addrB, reg, nil),
		"y.db", dest, fastPolicy(3))
	if err != nil {
		t.Fatalf("cross-source ReliableGetFile after disagreement: %v", err)
	}
	got, _ := os.ReadFile(dest)
	if !bytes.Equal(got, want) {
		t.Fatal("destination does not match the source that completed the pull")
	}
	// The disagreeing prefix was discarded, never resumed.
	if stats.ResumedBytes != 0 || stats.DiscardedBytes != prefix {
		t.Fatalf("resumed/discarded = %d/%d, want 0/%d",
			stats.ResumedBytes, stats.DiscardedBytes, prefix)
	}
	if stats.Bytes != 400_000 {
		t.Fatalf("transferred %d bytes, want the full 400000 after restart", stats.Bytes)
	}
	rec := obs.NewTransferRecorder(reg, ClientMetricsPrefix)
	if rec.Resumes() != 0 {
		t.Fatalf("disagreeing prefix was resumed (%d resumes)", rec.Resumes())
	}
	if !strings.Contains(reg.Text(), ClientMetricsPrefix+"_resume_rejected_total 1") {
		t.Fatalf("prefix rejection not recorded:\n%s", reg.Text())
	}
	// No quarantine, no stray staging file: exactly the destination left.
	entries, err := os.ReadDir(destDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "y.db" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("unexpected files alongside destination: %v", names)
	}
}

// TestReliableGetFileProgressCallback checks the liveness signal hedged
// pulls watch: cumulative byte progress, monotonic, seeded with the
// resumed prefix, ending at the full file size.
func TestReliableGetFileProgressCallback(t *testing.T) {
	addr, root := startServer(t, nil)
	_, want := makeFile(t, root, "p.db", 300_000, 41)
	dest := filepath.Join(t.TempDir(), "p.db")
	// A verified prefix is already staged: progress must start from it.
	if err := os.WriteFile(dest+PartSuffix, want[:100_000], 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []int64
	opt := GetFileOptions{Progress: func(total int64) {
		mu.Lock()
		seen = append(seen, total)
		mu.Unlock()
	}}
	if _, err := ReliableGetFileOpts(context.Background(), connector(t, addr, obs.NewRegistry(), nil),
		"p.db", dest, fastPolicy(3), opt); err != nil {
		t.Fatalf("ReliableGetFileOpts: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("progress callback never fired")
	}
	if seen[0] != 100_000 {
		t.Fatalf("first progress report = %d, want the resumed prefix 100000", seen[0])
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("progress went backwards: %d after %d", seen[i], seen[i-1])
		}
	}
	if last := seen[len(seen)-1]; last != 300_000 {
		t.Fatalf("final progress = %d, want 300000", last)
	}
}
