package gridftp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"gdmp/internal/gsi"
)

// rawSession opens an authenticated control connection and returns reader/
// writer for speaking the protocol by hand.
func rawSession(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := gsi.Handshake(conn, cred(t, "raw/"+t.Name()), roots(t), true); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "220") {
		t.Fatalf("banner = %q, %v", line, err)
	}
	return conn, r
}

func sendLine(t *testing.T, conn net.Conn, line string) {
	t.Helper()
	if _, err := io.WriteString(conn, line+"\r\n"); err != nil {
		t.Fatal(err)
	}
}

func expectCode(t *testing.T, r *bufio.Reader, code string) string {
	t.Helper()
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if !strings.HasPrefix(line, code) {
		t.Fatalf("reply = %q, want %s...", strings.TrimSpace(line), code)
	}
	return line
}

func TestServerRejectsGarbageCommands(t *testing.T) {
	addr, _ := startServer(t, nil)
	conn, r := rawSession(t, addr)
	cases := []struct {
		send string
		code string
	}{
		{"FROBNICATE now", "500"},
		{"SBUF notanumber", "501"},
		{"SBUF 1", "501"},
		{"OPTS PARALLEL 0", "501"},
		{"OPTS PARALLEL 9999", "501"},
		{"OPTS NOSUCH 1", "501"},
		{"ERET x y z", "501"},
		{"ERET 0 10", "501"},
		{"STOR 10", "501"},
		{"STOR -5 path", "501"},
		{"PORT onlyone", "501"},
		{"PORT tok not-an-addr", "501"},
		{"SIZE", "530"}, // empty path fails authorization... or read denied
		{"NOOP", "200"}, // the session survives all of the above
	}
	for _, tc := range cases {
		sendLine(t, conn, tc.send)
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("after %q: %v", tc.send, err)
		}
		if !strings.HasPrefix(line, tc.code[:1]) {
			t.Errorf("%q -> %q, want %sxx", tc.send, strings.TrimSpace(line), tc.code[:1])
		}
	}
	sendLine(t, conn, "QUIT")
	expectCode(t, r, "221")
}

// TestDataChannelTokenRequired: a data connection without the right pairing
// token never receives file data.
func TestDataChannelTokenRequired(t *testing.T) {
	addr, root := startServer(t, func(cfg *ServerConfig) { cfg.DataTimeout = time.Second })
	makeFile(t, root, "secret.db", 10_000, 50)
	conn, r := rawSession(t, addr)

	sendLine(t, conn, "PASV")
	reply := expectCode(t, r, "229")
	fields := strings.Fields(strings.TrimSpace(reply))
	if len(fields) != 3 {
		t.Fatalf("PASV reply %q", reply)
	}
	dataAddr := fields[2]

	sendLine(t, conn, "RETR secret.db")
	expectCode(t, r, "150")

	// Attacker connects with a wrong token: no data must arrive, and the
	// transfer must abort (the real client never shows up).
	thief, err := net.Dial("tcp", dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer thief.Close()
	fmt.Fprintf(thief, "%s\n", strings.Repeat("f", 32))
	thief.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	if n, err := thief.Read(buf); err == nil && n > 0 {
		t.Fatalf("server leaked %d bytes to an unpaired data connection", n)
	}
	// The control channel reports the aborted transfer (425/426).
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read abort reply: %v", err)
	}
	if !strings.HasPrefix(line, "42") {
		t.Fatalf("transfer verdict = %q, want 42x abort", strings.TrimSpace(line))
	}
}

// TestAutoTune exercises the paper's ping+pipechar+formula negotiation over
// a WAN-shaped link: the measured RTT and bandwidth must reflect the link,
// and the negotiated buffer must be their product.
func TestAutoTune(t *testing.T) {
	addr, root := startServer(t, nil)
	makeFile(t, root, "probe.db", 2_000_000, 60)

	link := wanLikeDialer(40*time.Millisecond, 80) // 40 ms RTT, 80 Mbps
	cl, err := Dial(addr, cred(t, "tuner"), roots(t), WithDialFunc(link))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	buf, err := cl.AutoTune("probe.db", 1_000_000)
	if err != nil {
		t.Fatalf("AutoTune: %v", err)
	}
	// RTT >= 40ms (app-level NOOP costs a round trip through the shaped
	// conn), bandwidth <= 80 Mbps, so the buffer should land between
	// roughly rtt*bw/2 and a loose upper bound.
	if buf < 64*1024 || buf > 4*1024*1024 {
		t.Fatalf("negotiated buffer %d outside plausible range", buf)
	}
	// The negotiation stuck: a subsequent SBUF probe shows the setting.
	if err := cl.SetBufferSize(buf); err != nil {
		t.Fatalf("negotiated buffer rejected by server: %v", err)
	}
	// Errors: missing probe file.
	if _, err := cl.AutoTune("no-such-file", 1000); err == nil {
		t.Fatal("AutoTune with missing probe accepted")
	}
}

// wanLikeDialer returns a dial function adding latency per round trip and
// pacing reads to the given rate (a tiny, self-contained shaper so this
// package does not import internal/wan).
func wanLikeDialer(rtt time.Duration, mbps float64) func(network, addr string) (net.Conn, error) {
	bytesPerSec := mbps * 1e6 / 8
	return func(network, addr string) (net.Conn, error) {
		c, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return &shapedConn{Conn: c, rtt: rtt, rate: bytesPerSec}, nil
	}
}

type shapedConn struct {
	net.Conn
	rtt  time.Duration
	rate float64
}

func (s *shapedConn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	if n > 0 {
		if n < 1024 {
			// Small control messages pay propagation delay.
			time.Sleep(s.rtt / 2)
		} else {
			// Bulk payload pays the rate limit.
			time.Sleep(time.Duration(float64(n) / s.rate * float64(time.Second)))
		}
	}
	return n, err
}

func (s *shapedConn) Write(p []byte) (int, error) {
	if len(p) < 1024 {
		time.Sleep(s.rtt / 2)
	}
	return s.Conn.Write(p)
}

// TestUnauthenticatedControlRejected: a client that skips the GSI handshake
// gets nothing.
func TestUnauthenticatedControlRejected(t *testing.T) {
	addr, _ := startServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Speak FTP straight away; the server is still expecting a handshake
	// and must drop the connection rather than serve commands.
	io.WriteString(conn, "NOOP\r\n")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err == nil && strings.HasPrefix(line, "2") {
		t.Fatalf("unauthenticated client got %q", strings.TrimSpace(line))
	}
}
