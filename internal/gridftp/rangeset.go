package gridftp

import (
	"fmt"
	"sort"
	"strings"
)

// Range is a half-open byte interval [Start, End).
type Range struct {
	Start, End int64
}

// Len returns the number of bytes covered.
func (r Range) Len() int64 { return r.End - r.Start }

// RangeSet tracks which byte ranges of a file have been received. It backs
// GridFTP's "reliable and restartable data transfer": after an interrupted
// transfer the client re-requests exactly the missing ranges (the protocol's
// restart markers are byte ranges in extended block mode). The zero value
// is an empty set. RangeSet is not safe for concurrent use; callers
// synchronize.
type RangeSet struct {
	ranges []Range // sorted, disjoint, non-adjacent
}

// Add marks [start, end) as received, merging with existing ranges.
func (s *RangeSet) Add(start, end int64) {
	if start < 0 || end <= start {
		return
	}
	// Find insertion window of overlapping or adjacent ranges.
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End >= start })
	j := i
	for j < len(s.ranges) && s.ranges[j].Start <= end {
		j++
	}
	if i < j {
		if s.ranges[i].Start < start {
			start = s.ranges[i].Start
		}
		if s.ranges[j-1].End > end {
			end = s.ranges[j-1].End
		}
	}
	merged := append([]Range{}, s.ranges[:i]...)
	merged = append(merged, Range{start, end})
	merged = append(merged, s.ranges[j:]...)
	s.ranges = merged
}

// Covered returns the total number of bytes in the set.
func (s *RangeSet) Covered() int64 {
	var n int64
	for _, r := range s.ranges {
		n += r.Len()
	}
	return n
}

// Complete reports whether [0, total) is fully covered.
func (s *RangeSet) Complete(total int64) bool {
	if total == 0 {
		return true
	}
	return len(s.ranges) == 1 && s.ranges[0].Start == 0 && s.ranges[0].End >= total
}

// Missing returns the gaps in [0, total), in order.
func (s *RangeSet) Missing(total int64) []Range {
	var out []Range
	var pos int64
	for _, r := range s.ranges {
		if r.Start >= total {
			break
		}
		if r.Start > pos {
			out = append(out, Range{pos, r.Start})
		}
		if r.End > pos {
			pos = r.End
		}
	}
	if pos < total {
		out = append(out, Range{pos, total})
	}
	return out
}

// Ranges returns a copy of the covered ranges.
func (s *RangeSet) Ranges() []Range {
	return append([]Range(nil), s.ranges...)
}

// String renders the set as "0-1024,2048-4096" (FTP restart-marker style).
func (s *RangeSet) String() string {
	parts := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		parts[i] = fmt.Sprintf("%d-%d", r.Start, r.End)
	}
	return strings.Join(parts, ",")
}

// ParseRangeSet parses the String form back into a set.
func ParseRangeSet(s string) (*RangeSet, error) {
	rs := &RangeSet{}
	if strings.TrimSpace(s) == "" {
		return rs, nil
	}
	for _, part := range strings.Split(s, ",") {
		var start, end int64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d-%d", &start, &end); err != nil {
			return nil, fmt.Errorf("gridftp: bad range %q: %w", part, err)
		}
		if start < 0 || end < start {
			return nil, fmt.Errorf("gridftp: bad range %q", part)
		}
		rs.Add(start, end)
	}
	return rs, nil
}
