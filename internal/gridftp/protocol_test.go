package gridftp

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBlockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("block payload bytes")
	if err := writeBlock(&buf, flagEOD, 123456789, payload); err != nil {
		t.Fatal(err)
	}
	flags, off, got, err := readBlock(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flags != flagEOD || off != 123456789 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = flags %x, off %d, %q", flags, off, got)
	}
}

func TestBlockPropertyRoundTrip(t *testing.T) {
	f := func(flags byte, off int64, payload []byte) bool {
		if off < 0 {
			off = -off
		}
		var buf bytes.Buffer
		if err := writeBlock(&buf, flags, off, payload); err != nil {
			return false
		}
		gf, goff, gp, err := readBlock(&buf, nil)
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return gf == flags && goff == off && len(gp) == 0
		}
		return gf == flags && goff == off && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBlockBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	writeBlock(&buf, 0, 0, bytes.Repeat([]byte{1}, 100))
	writeBlock(&buf, 0, 100, bytes.Repeat([]byte{2}, 50))
	scratch := make([]byte, 200)
	_, _, p1, err := readBlock(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &scratch[0] {
		t.Fatal("large scratch buffer not reused")
	}
	_, _, p2, err := readBlock(&buf, scratch)
	if err != nil || len(p2) != 50 || p2[0] != 2 {
		t.Fatalf("second block = %d bytes, %v", len(p2), err)
	}
}

func TestReadBlockTruncatedAndOversized(t *testing.T) {
	// Truncated header.
	if _, _, _, err := readBlock(bytes.NewReader([]byte{1, 2, 3}), nil); err == nil {
		t.Error("truncated header accepted")
	}
	// Header claiming more payload than present.
	var buf bytes.Buffer
	writeBlock(&buf, 0, 0, []byte("full payload"))
	short := buf.Bytes()[:buf.Len()-4]
	if _, _, _, err := readBlock(bytes.NewReader(short), nil); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload: %v", err)
	}
	// Absurd length field.
	hdr := make([]byte, blockHeaderLen)
	hdr[9], hdr[10], hdr[11], hdr[12] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, _, err := readBlock(bytes.NewReader(hdr), nil); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestControlReplyParsing(t *testing.T) {
	mk := func(in string) *controlConn {
		return newControlConn(struct {
			io.Reader
			io.Writer
		}{strings.NewReader(in), io.Discard})
	}
	code, text, err := mk("226 transfer complete\r\n").readReply()
	if err != nil || code != 226 || text != "transfer complete" {
		t.Fatalf("parsed %d %q, %v", code, text, err)
	}
	for _, bad := range []string{"22\r\n", "abc hello\r\n", "2x6 text\r\n", "226-no space\r\n"} {
		if _, _, err := mk(bad).readReply(); err == nil {
			t.Errorf("malformed reply %q accepted", bad)
		}
	}
}

func TestTokensAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		tok, err := newToken()
		if err != nil {
			t.Fatal(err)
		}
		if len(tok) != 2*tokenLen {
			t.Fatalf("token length %d", len(tok))
		}
		if seen[tok] {
			t.Fatal("token repeated")
		}
		seen[tok] = true
	}
}

func TestRangeSetUnderConcurrentishUse(t *testing.T) {
	// Simulate the receive pattern: blocks land in random order from
	// multiple streams; the set must converge to complete.
	rng := rand.New(rand.NewSource(42))
	const total = 1 << 20
	var rs RangeSet
	var blocks []Range
	for pos := int64(0); pos < total; {
		n := int64(rng.Intn(64*1024) + 1)
		if pos+n > total {
			n = total - pos
		}
		blocks = append(blocks, Range{pos, pos + n})
		pos += n
	}
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	for _, blk := range blocks {
		rs.Add(blk.Start, blk.End)
	}
	if !rs.Complete(total) {
		t.Fatalf("incomplete after all blocks: %s", rs.String())
	}
}
