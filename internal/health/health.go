// Package health is the site's per-peer health scoreboard and circuit
// breaker. The EU DataGrid operations experience (PAPERS.md) reports that
// partial WAN failures — sites reachable but black-holing, links slow in
// one direction — dominate grid operation, and "Replica Selection in the
// Globus Data Grid" argues source choice must react to observed peer
// behaviour. This package is the memory those decisions need: every
// GridFTP dial, Request Manager dial, and transfer outcome feeds a
// per-peer record (EWMA latency with variance, EWMA throughput,
// consecutive-failure count), and a three-state circuit breaker per peer
// turns that record into admission decisions:
//
//	closed ──(FailureThreshold consecutive failures)──▶ open
//	open ──(decorrelated reopen delay elapses; one probe admitted)──▶ half-open
//	half-open ──(probe succeeds ×ProbeSuccesses)──▶ closed
//	half-open ──(probe fails)──▶ open, with a longer decorrelated delay
//
// While a breaker is open, Begin refuses legs against the peer without
// dialing, so a dead site stops consuming retry budget grid-wide within
// one failure window; the reopen delay is decorrelated-jittered
// (min(cap, base + u·(3·prev − base))) so a fleet of consumers does not
// re-probe a recovering site in lockstep.
//
// The scoreboard also derives the hedged-pull stall deadline: a transfer
// that moves no bytes for longer than a peer's p99-flavored deadline
// (mean + 3σ of observed latency, floored by the time the peer's EWMA
// bandwidth needs to move one progress quantum, times HedgeMultiplier)
// is considered stalled and worth racing against another replica.
//
// Everything is soft state: nothing is journaled, and a restarted site
// rebuilds its scoreboard from live traffic.
package health

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gdmp/internal/obs"
)

// MetricsPrefix prefixes every scoreboard metric.
const MetricsPrefix = "gdmp_health"

// State is a peer's circuit-breaker state.
type State int

const (
	// StateClosed admits legs freely (the healthy default).
	StateClosed State = iota
	// StateHalfOpen admits a single probe leg; its outcome decides
	// between closed and open.
	StateHalfOpen
	// StateOpen refuses legs until the decorrelated reopen delay passes.
	StateOpen
)

// String returns the metric/status-wire label for a state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half_open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// progressQuantum is the byte unit the stall deadline is derived from: a
// healthy stream is expected to move at least this much within one
// deadline window.
const progressQuantum = 256 << 10

// Config tunes a Board. The zero value takes every default.
type Config struct {
	// FailureThreshold is how many consecutive failed legs open a peer's
	// breaker (default 3).
	FailureThreshold int

	// ReopenBase is the first delay before an open breaker admits a
	// reopen probe; each failed probe grows it with decorrelated jitter
	// up to ReopenMax (defaults 2s and 60s).
	ReopenBase time.Duration
	ReopenMax  time.Duration

	// ProbeSuccesses is how many consecutive half-open probe successes
	// close the breaker (default 1).
	ProbeSuccesses int

	// Alpha is the EWMA smoothing factor for latency and bandwidth
	// (default 0.3; higher weighs recent samples more).
	Alpha float64

	// HedgeMultiplier scales the p99 progress estimate into the stall
	// deadline; HedgeMin and HedgeMax clamp the result (defaults 4,
	// 250ms, 30s).
	HedgeMultiplier float64
	HedgeMin        time.Duration
	HedgeMax        time.Duration

	// Seed makes the decorrelated reopen jitter deterministic when
	// non-zero (chaos harnesses log it so failures replay exactly).
	Seed int64

	// Registry receives the gdmp_health_* metrics (obs.Default when nil).
	Registry *obs.Registry

	// Now substitutes the clock in tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.ReopenBase <= 0 {
		c.ReopenBase = 2 * time.Second
	}
	if c.ReopenMax <= 0 {
		c.ReopenMax = 60 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.HedgeMultiplier <= 0 {
		c.HedgeMultiplier = 4
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 250 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 30 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// metrics bundles the scoreboard's collectors.
type metrics struct {
	state       *obs.GaugeVec   // {peer}: 0 closed, 1 half-open, 2 open
	transitions *obs.CounterVec // {peer, to}
	consecFails *obs.GaugeVec   // {peer}
	bandwidth   *obs.GaugeVec   // {peer}: EWMA bandwidth, Kbit/s
	latency     *obs.GaugeVec   // {peer}: EWMA dial latency, microseconds
	sheds       *obs.CounterVec // {peer}: legs refused by an open breaker
	probes      *obs.CounterVec // {peer, outcome}: reopen probe results
	stalls      *obs.CounterVec // {peer}: transfers declared stalled
	overloads   *obs.CounterVec // {peer}: typed overload rejections recorded
}

func metricsFor(r *obs.Registry) *metrics {
	return &metrics{
		state: r.GaugeVec(MetricsPrefix+"_state",
			"Circuit-breaker state by peer: 0 closed, 1 half-open, 2 open.", "peer"),
		transitions: r.CounterVec(MetricsPrefix+"_transitions_total",
			"Circuit-breaker transitions, by peer and target state.", "peer", "to"),
		consecFails: r.GaugeVec(MetricsPrefix+"_consecutive_failures",
			"Consecutive failed legs against a peer since its last success.", "peer"),
		bandwidth: r.GaugeVec(MetricsPrefix+"_ewma_bandwidth_kbps",
			"EWMA transfer bandwidth observed from a peer, Kbit/s.", "peer"),
		latency: r.GaugeVec(MetricsPrefix+"_ewma_latency_micros",
			"EWMA dial latency observed against a peer, microseconds.", "peer"),
		sheds: r.CounterVec(MetricsPrefix+"_breaker_sheds_total",
			"Legs refused without a dial because the peer's breaker was open.", "peer"),
		probes: r.CounterVec(MetricsPrefix+"_probes_total",
			"Reopen probe legs admitted through an open breaker, by outcome.", "peer", "outcome"),
		stalls: r.CounterVec(MetricsPrefix+"_stalls_total",
			"Transfers declared stalled past the peer's hedge deadline.", "peer"),
		overloads: r.CounterVec(MetricsPrefix+"_overloads_total",
			"Typed overload rejections recorded against a peer.", "peer"),
	}
}

// peer is the scoreboard record for one endpoint.
type peer struct {
	addr  string
	state State

	consecFails int

	// EWMA of dial latency (seconds) and its EWMA variance, for the
	// p99-flavored stall deadline; latOK is false until the first sample.
	latMean, latVar float64
	latOK           bool

	// EWMA of transfer bandwidth (bytes/second); bwOK gates ranking.
	bw   float64
	bwOK bool

	lastTransition time.Time

	// Open-state bookkeeping: when the next reopen probe may run, and
	// the current decorrelated delay it was derived from.
	reopenAt    time.Time
	reopenDelay time.Duration

	// Half-open bookkeeping: whether the probe slot is taken, and how
	// many consecutive probe successes have accumulated.
	probeInFlight bool
	probeOKs      int

	// coolUntil holds the peer out of rotation after a typed overload
	// rejection: the peer is not failing, it is shedding, so the breaker
	// does not advance — the peer just rests for the suggested interval.
	coolUntil time.Time
}

// Board is the per-peer scoreboard; safe for concurrent use.
type Board struct {
	cfg Config
	met *metrics

	mu    sync.Mutex
	rng   *rand.Rand
	peers map[string]*peer
}

// New builds a Board.
func New(cfg Config) *Board {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Board{
		cfg:   cfg,
		met:   metricsFor(cfg.Registry),
		rng:   rand.New(rand.NewSource(seed)),
		peers: make(map[string]*peer),
	}
}

// peerLocked returns (creating if needed) the record for addr.
func (b *Board) peerLocked(addr string) *peer {
	p, ok := b.peers[addr]
	if !ok {
		p = &peer{addr: addr, lastTransition: b.cfg.Now()}
		b.peers[addr] = p
		b.met.state.WithLabelValues(addr).Set(0)
	}
	return p
}

// transitionLocked moves a peer to a new breaker state.
func (b *Board) transitionLocked(p *peer, to State) {
	if p.state == to {
		return
	}
	p.state = to
	p.lastTransition = b.cfg.Now()
	b.met.state.WithLabelValues(p.addr).Set(int64(to))
	b.met.transitions.WithLabelValues(p.addr, to.String()).Inc()
}

// openLocked opens the breaker with the next decorrelated reopen delay:
// min(cap, base + u·(3·prev − base)), the AWS decorrelated-jitter
// schedule, so repeated probe failures back off without synchronizing
// across consumers.
func (b *Board) openLocked(p *peer) {
	prev := p.reopenDelay
	if prev <= 0 {
		p.reopenDelay = b.cfg.ReopenBase
	} else {
		span := 3*float64(prev) - float64(b.cfg.ReopenBase)
		if span < 0 {
			span = 0
		}
		d := time.Duration(float64(b.cfg.ReopenBase) + b.rng.Float64()*span)
		if d > b.cfg.ReopenMax {
			d = b.cfg.ReopenMax
		}
		p.reopenDelay = d
	}
	p.reopenAt = b.cfg.Now().Add(p.reopenDelay)
	p.probeInFlight = false
	p.probeOKs = 0
	b.transitionLocked(p, StateOpen)
}

// failLocked records one failed leg against a peer.
func (b *Board) failLocked(p *peer, probe bool) {
	p.consecFails++
	b.met.consecFails.WithLabelValues(p.addr).Set(int64(p.consecFails))
	if probe {
		b.met.probes.WithLabelValues(p.addr, "error").Inc()
	}
	switch p.state {
	case StateClosed:
		if p.consecFails >= b.cfg.FailureThreshold {
			p.reopenDelay = 0 // restart the decorrelated schedule
			b.openLocked(p)
		}
	case StateHalfOpen:
		// The probe failed: back to open with a longer delay.
		b.openLocked(p)
	}
}

// okLocked records one successful leg against a peer.
func (b *Board) okLocked(p *peer, probe bool) {
	p.consecFails = 0
	b.met.consecFails.WithLabelValues(p.addr).Set(0)
	if probe {
		b.met.probes.WithLabelValues(p.addr, "ok").Inc()
	}
	switch p.state {
	case StateHalfOpen:
		p.probeOKs++
		if p.probeOKs >= b.cfg.ProbeSuccesses {
			p.reopenDelay = 0
			b.transitionLocked(p, StateClosed)
		}
	case StateOpen:
		// A success observed through another path (e.g. a control-plane
		// dial) while open: the peer is back.
		p.reopenDelay = 0
		b.transitionLocked(p, StateClosed)
	}
}

// Usable reports (without side effects) whether a leg against addr would
// currently be admitted: closed breakers always, open ones only once
// their reopen delay has passed, half-open ones only while the probe
// slot is free.
func (b *Board) Usable(addr string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.peers[addr]
	if !ok {
		return true
	}
	if b.cfg.Now().Before(p.coolUntil) {
		return false
	}
	switch p.state {
	case StateOpen:
		return !b.cfg.Now().Before(p.reopenAt)
	case StateHalfOpen:
		return !p.probeInFlight
	}
	return true
}

// Begin admits one leg against addr. It returns ok=false — counting a
// shed, without dialing — while the peer's breaker is open and the
// reopen delay has not passed, or while another probe already holds the
// half-open slot. When admitted, the returned end must be called exactly
// once with the leg's outcome; it feeds the scoreboard and drives the
// breaker.
func (b *Board) Begin(addr string) (end func(bytes int64, elapsed time.Duration, err error), ok bool) {
	return b.begin(addr, false)
}

// BeginForced is Begin for a caller with no alternative source: an open
// breaker is overridden by converting the leg into an early reopen probe
// instead of refusing it, so a single-source pull never deadlocks behind
// its only peer's breaker.
func (b *Board) BeginForced(addr string) (end func(bytes int64, elapsed time.Duration, err error), ok bool) {
	return b.begin(addr, true)
}

func (b *Board) begin(addr string, forced bool) (func(int64, time.Duration, error), bool) {
	b.mu.Lock()
	p := b.peerLocked(addr)
	probe := false
	switch p.state {
	case StateOpen:
		if !forced && b.cfg.Now().Before(p.reopenAt) {
			b.met.sheds.WithLabelValues(addr).Inc()
			b.mu.Unlock()
			return nil, false
		}
		b.transitionLocked(p, StateHalfOpen)
		p.probeInFlight = true
		probe = true
	case StateHalfOpen:
		if p.probeInFlight && !forced {
			b.met.sheds.WithLabelValues(addr).Inc()
			b.mu.Unlock()
			return nil, false
		}
		p.probeInFlight = true
		probe = true
	}
	b.mu.Unlock()
	return func(bytes int64, elapsed time.Duration, err error) {
		b.mu.Lock()
		defer b.mu.Unlock()
		if probe {
			p.probeInFlight = false
		}
		if err != nil {
			b.failLocked(p, probe)
			return
		}
		if bytes > 0 && elapsed > 0 {
			b.noteBandwidthLocked(p, float64(bytes)/elapsed.Seconds())
		}
		b.okLocked(p, probe)
	}, true
}

// noteBandwidthLocked folds one throughput sample into the EWMA.
func (b *Board) noteBandwidthLocked(p *peer, bps float64) {
	if !p.bwOK {
		p.bw = bps
		p.bwOK = true
	} else {
		a := b.cfg.Alpha
		p.bw = (1-a)*p.bw + a*bps
	}
	b.met.bandwidth.WithLabelValues(p.addr).Set(int64(p.bw * 8 / 1000))
}

// ObserveOverload records a typed overload rejection from addr. An
// overloaded peer is shedding, not failing, so the breaker does not
// advance; instead the peer is held out of rotation (Usable reports
// false) for the server-suggested retry-after, letting the storm cool
// instead of amplifying while healthier replicas carry the load.
// retryAfter <= 0 falls back to the breaker's reopen base delay.
func (b *Board) ObserveOverload(addr string, retryAfter time.Duration) {
	if retryAfter <= 0 {
		retryAfter = b.cfg.ReopenBase
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.peerLocked(addr)
	if until := b.cfg.Now().Add(retryAfter); until.After(p.coolUntil) {
		p.coolUntil = until
	}
	b.met.overloads.WithLabelValues(addr).Inc()
}

// ObserveLatency folds one dial round-trip into a peer's latency EWMA
// without touching its breaker (the leg outcome carries the verdict).
func (b *Board) ObserveLatency(addr string, rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.peerLocked(addr)
	x := rtt.Seconds()
	if !p.latOK {
		p.latMean, p.latVar, p.latOK = x, 0, true
	} else {
		a := b.cfg.Alpha
		d := x - p.latMean
		p.latMean += a * d
		p.latVar = (1-a)*p.latVar + a*d*d
	}
	b.met.latency.WithLabelValues(addr).Set(int64(p.latMean * 1e6))
}

// Observe records a standalone control-plane operation (an rpc dial, a
// stage request) against a peer: latency feeds the EWMA, and the outcome
// feeds the breaker like a leg of its own.
func (b *Board) Observe(addr string, rtt time.Duration, err error) {
	if err == nil && rtt > 0 {
		b.ObserveLatency(addr, rtt)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.peerLocked(addr)
	if err != nil {
		b.failLocked(p, false)
	} else {
		b.okLocked(p, false)
	}
}

// ObserveStall counts one transfer declared stalled against a peer. The
// stall's breaker consequence arrives through the leg's end callback;
// this is accounting only.
func (b *Board) ObserveStall(addr string) {
	b.met.stalls.WithLabelValues(addr).Inc()
}

// StallDeadline derives the hedge deadline for a peer: HedgeMultiplier
// times the larger of (time to move one progress quantum at the EWMA
// bandwidth) and (mean + 3σ of dial latency), clamped to
// [HedgeMin, HedgeMax]. Zero when the scoreboard has no samples yet —
// the caller falls back to its configured default.
func (b *Board) StallDeadline(addr string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.peers[addr]
	if !ok || (!p.bwOK && !p.latOK) {
		return 0
	}
	var est float64
	if p.bwOK && p.bw > 0 {
		est = progressQuantum / p.bw
	}
	if p.latOK {
		if p99 := p.latMean + 3*math.Sqrt(p.latVar); p99 > est {
			est = p99
		}
	}
	d := time.Duration(b.cfg.HedgeMultiplier * est * float64(time.Second))
	if d < b.cfg.HedgeMin {
		d = b.cfg.HedgeMin
	}
	if d > b.cfg.HedgeMax {
		d = b.cfg.HedgeMax
	}
	return d
}

// Score summarizes a peer for source ranking.
type Score struct {
	// State is the breaker state; ProbeDue marks an open breaker whose
	// reopen delay has passed (the peer owes the grid a probe, and
	// ranking it first is how the probe gets carried by live traffic).
	State    State
	ProbeDue bool

	// BandwidthBps is the EWMA transfer bandwidth (0 until measured).
	BandwidthBps float64
}

// rank orders scores for source selection: probe-due peers first (their
// probe rides the next pull, hedging covers a still-dead peer), then
// closed peers by measured bandwidth, then half-open, then open.
func (s Score) rank() int {
	if s.ProbeDue {
		return 0
	}
	switch s.State {
	case StateClosed:
		return 1
	case StateHalfOpen:
		return 2
	}
	return 3
}

// ScoreOf returns a peer's current ranking score.
func (b *Board) ScoreOf(addr string) Score {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.peers[addr]
	if !ok {
		return Score{}
	}
	sc := Score{State: p.state}
	if p.state == StateOpen && !b.cfg.Now().Before(p.reopenAt) {
		sc.ProbeDue = true
	}
	if p.bwOK {
		sc.BandwidthBps = p.bw
	}
	return sc
}

// Healthier reports whether the source scored a should be tried before
// the one scored b; equal scores leave the caller's order (sort stably).
func Healthier(a, b Score) bool {
	if ra, rb := a.rank(), b.rank(); ra != rb {
		return ra < rb
	}
	return a.BandwidthBps > b.BandwidthBps
}

// StateOf returns a peer's breaker state (closed for unknown peers).
func (b *Board) StateOf(addr string) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.peers[addr]; ok {
		return p.state
	}
	return StateClosed
}

// ConsecutiveFailures returns a peer's current failure streak.
func (b *Board) ConsecutiveFailures(addr string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.peers[addr]; ok {
		return p.consecFails
	}
	return 0
}

// PeerHealth is one peer's scoreboard snapshot, as surfaced on the
// status wire.
type PeerHealth struct {
	Peer          string
	State         string
	ConsecFails   int64
	BandwidthKbps int64 // EWMA transfer bandwidth, Kbit/s
	LatencyMicros int64 // EWMA dial latency, microseconds

	// LastTransition is when the breaker last changed state.
	LastTransition time.Time
}

// Snapshot returns every observed peer, sorted by address.
func (b *Board) Snapshot() []PeerHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]PeerHealth, 0, len(b.peers))
	for _, p := range b.peers {
		out = append(out, PeerHealth{
			Peer:          p.addr,
			State:         p.state.String(),
			ConsecFails:   int64(p.consecFails),
			BandwidthKbps: int64(p.bw * 8 / 1000),
			LatencyMicros: int64(p.latMean * 1e6),
			// Round(0) strips the monotonic reading: the snapshot crosses
			// the status wire as wall-clock nanoseconds, and a local copy
			// must compare equal to its own round trip.
			LastTransition: p.lastTransition.Round(0),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
