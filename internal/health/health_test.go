package health

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gdmp/internal/obs"
)

// clock is a manual test clock.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock {
	return &clock{now: time.Unix(1_700_000_000, 0)}
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

var errLeg = errors.New("leg failed")

// fail runs one failed leg against addr.
func fail(t *testing.T, b *Board, addr string) {
	t.Helper()
	end, ok := b.Begin(addr)
	if !ok {
		t.Fatalf("Begin(%s) refused while expecting admission", addr)
	}
	end(0, 0, errLeg)
}

// succeed runs one successful leg against addr.
func succeed(t *testing.T, b *Board, addr string, bytes int64, elapsed time.Duration) {
	t.Helper()
	end, ok := b.Begin(addr)
	if !ok {
		t.Fatalf("Begin(%s) refused while expecting admission", addr)
	}
	end(bytes, elapsed, nil)
}

func TestBreakerLifecycle(t *testing.T) {
	ck := newClock()
	b := New(Config{
		FailureThreshold: 3,
		ReopenBase:       2 * time.Second,
		Seed:             1,
		Registry:         obs.NewRegistry(),
		Now:              ck.Now,
	})
	const peer = "site-a:2811"

	// Two failures: still closed (below threshold).
	fail(t, b, peer)
	fail(t, b, peer)
	if got := b.StateOf(peer); got != StateClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	if got := b.ConsecutiveFailures(peer); got != 2 {
		t.Fatalf("consecutive failures = %d, want 2", got)
	}

	// Third consecutive failure opens the breaker.
	fail(t, b, peer)
	if got := b.StateOf(peer); got != StateOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}

	// While open and before the reopen delay: every Begin is refused
	// without a dial (this is the load shed).
	if b.Usable(peer) {
		t.Fatal("open breaker reported usable before reopen delay")
	}
	for i := 0; i < 5; i++ {
		if _, ok := b.Begin(peer); ok {
			t.Fatal("open breaker admitted a leg before reopen delay")
		}
	}

	// After the reopen delay one probe is admitted (half-open) and a
	// concurrent second leg is still refused.
	ck.Advance(2*time.Second + time.Millisecond)
	if !b.Usable(peer) {
		t.Fatal("probe-due breaker reported unusable")
	}
	sc := b.ScoreOf(peer)
	if !sc.ProbeDue || sc.State != StateOpen {
		t.Fatalf("score = %+v, want probe-due open", sc)
	}
	end, ok := b.Begin(peer)
	if !ok {
		t.Fatal("probe not admitted after reopen delay")
	}
	if got := b.StateOf(peer); got != StateHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if _, ok := b.Begin(peer); ok {
		t.Fatal("second probe admitted while slot taken")
	}

	// Probe succeeds: closed again, failure streak reset.
	end(1<<20, time.Second, nil)
	if got := b.StateOf(peer); got != StateClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if got := b.ConsecutiveFailures(peer); got != 0 {
		t.Fatalf("consecutive failures after success = %d, want 0", got)
	}
}

func TestFailedProbeReopensWithLongerDecorrelatedDelay(t *testing.T) {
	ck := newClock()
	b := New(Config{
		FailureThreshold: 1,
		ReopenBase:       time.Second,
		ReopenMax:        8 * time.Second,
		Seed:             42,
		Registry:         obs.NewRegistry(),
		Now:              ck.Now,
	})
	const peer = "site-b:2811"

	fail(t, b, peer) // threshold 1: open immediately
	if got := b.StateOf(peer); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}

	// Walk several probe failures: each reopen delay must stay within
	// the decorrelated-jitter envelope [base, min(max, 3·prev)].
	prev := time.Second
	for round := 0; round < 5; round++ {
		ck.Advance(8*time.Second + time.Millisecond) // past any delay
		end, ok := b.Begin(peer)
		if !ok {
			t.Fatalf("round %d: probe not admitted", round)
		}
		end(0, 0, errLeg)
		if got := b.StateOf(peer); got != StateOpen {
			t.Fatalf("round %d: state after failed probe = %v, want open", round, got)
		}
		b.mu.Lock()
		d := b.peers[peer].reopenDelay
		b.mu.Unlock()
		lo, hi := time.Second, 3*prev
		if hi > 8*time.Second {
			hi = 8 * time.Second
		}
		if d < lo || d > hi {
			t.Fatalf("round %d: reopen delay %v outside [%v, %v]", round, d, lo, hi)
		}
		prev = d
	}
}

func TestDecorrelatedJitterIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		ck := newClock()
		b := New(Config{
			FailureThreshold: 1,
			ReopenBase:       time.Second,
			ReopenMax:        time.Minute,
			Seed:             seed,
			Registry:         obs.NewRegistry(),
			Now:              ck.Now,
		})
		var out []time.Duration
		fail(t, b, "p")
		for i := 0; i < 6; i++ {
			ck.Advance(time.Minute)
			end, _ := b.Begin("p")
			end(0, 0, errLeg)
			b.mu.Lock()
			out = append(out, b.peers["p"].reopenDelay)
			b.mu.Unlock()
		}
		return out
	}
	a, c := run(7), run(7)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], c[i])
		}
	}
}

func TestBeginForcedConvertsOpenBreakerIntoEarlyProbe(t *testing.T) {
	ck := newClock()
	b := New(Config{
		FailureThreshold: 1,
		ReopenBase:       time.Hour, // never due on its own
		Seed:             1,
		Registry:         obs.NewRegistry(),
		Now:              ck.Now,
	})
	fail(t, b, "only-source")
	if _, ok := b.Begin("only-source"); ok {
		t.Fatal("plain Begin admitted through a freshly opened breaker")
	}
	// A single-source pull must never deadlock: forcing converts the leg
	// into an early probe.
	end, ok := b.BeginForced("only-source")
	if !ok {
		t.Fatal("BeginForced refused")
	}
	if got := b.StateOf("only-source"); got != StateHalfOpen {
		t.Fatalf("state during forced probe = %v, want half-open", got)
	}
	end(1024, time.Millisecond, nil)
	if got := b.StateOf("only-source"); got != StateClosed {
		t.Fatalf("state after forced probe success = %v, want closed", got)
	}
}

func TestControlPlaneObserveFeedsBreakerAndRecovers(t *testing.T) {
	ck := newClock()
	b := New(Config{
		FailureThreshold: 2,
		ReopenBase:       time.Second,
		Seed:             1,
		Registry:         obs.NewRegistry(),
		Now:              ck.Now,
	})
	b.Observe("ctl:4811", 0, errLeg)
	b.Observe("ctl:4811", 0, errLeg)
	if got := b.StateOf("ctl:4811"); got != StateOpen {
		t.Fatalf("state after 2 observed failures = %v, want open", got)
	}
	// A success observed through another path while open closes the
	// breaker directly — the peer is demonstrably back.
	b.Observe("ctl:4811", 3*time.Millisecond, nil)
	if got := b.StateOf("ctl:4811"); got != StateClosed {
		t.Fatalf("state after observed success = %v, want closed", got)
	}
}

func TestRankingPrefersProbeDueThenBandwidth(t *testing.T) {
	ck := newClock()
	b := New(Config{
		FailureThreshold: 1,
		ReopenBase:       time.Second,
		Seed:             1,
		Registry:         obs.NewRegistry(),
		Now:              ck.Now,
	})
	// fast: 10 MB/s; slow: 1 MB/s; dead: opens, then becomes probe-due.
	succeed(t, b, "fast", 10<<20, time.Second)
	succeed(t, b, "slow", 1<<20, time.Second)
	fail(t, b, "dead")

	if !Healthier(b.ScoreOf("fast"), b.ScoreOf("slow")) {
		t.Fatal("higher-bandwidth closed peer did not rank first")
	}
	if !Healthier(b.ScoreOf("slow"), b.ScoreOf("dead")) {
		t.Fatal("closed peer did not outrank an open one")
	}
	// Unknown peers rank as closed with no bandwidth: after measured ones.
	if !Healthier(b.ScoreOf("slow"), b.ScoreOf("never-seen")) {
		t.Fatal("measured peer did not outrank an unmeasured one")
	}
	// Once the reopen delay passes, the dead peer owes a probe and ranks
	// first so live traffic carries the probe (hedging covers the risk).
	ck.Advance(time.Second + time.Millisecond)
	if !Healthier(b.ScoreOf("dead"), b.ScoreOf("fast")) {
		t.Fatal("probe-due peer did not rank first")
	}
}

func TestStallDeadlineDerivation(t *testing.T) {
	b := New(Config{
		HedgeMultiplier: 4,
		HedgeMin:        100 * time.Millisecond,
		HedgeMax:        10 * time.Second,
		Seed:            1,
		Registry:        obs.NewRegistry(),
	})
	// Unknown peer: no estimate, caller falls back to its default.
	if d := b.StallDeadline("unknown"); d != 0 {
		t.Fatalf("deadline for unknown peer = %v, want 0", d)
	}
	// 1 MiB/s bandwidth → quantum (256 KiB) takes 250ms → ×4 = 1s.
	succeed(t, b, "measured", 1<<20, time.Second)
	if d := b.StallDeadline("measured"); d != time.Second {
		t.Fatalf("deadline = %v, want 1s", d)
	}
	// A very fast peer clamps to HedgeMin.
	succeed(t, b, "fast", 10<<30, time.Second)
	if d := b.StallDeadline("fast"); d != 100*time.Millisecond {
		t.Fatalf("fast deadline = %v, want HedgeMin", d)
	}
	// A glacial peer clamps to HedgeMax.
	succeed(t, b, "glacial", 64, time.Second)
	if d := b.StallDeadline("glacial"); d != 10*time.Second {
		t.Fatalf("glacial deadline = %v, want HedgeMax", d)
	}
	// Latency-only knowledge still yields a deadline (mean + 3σ, ×4).
	b.ObserveLatency("lat-only", 50*time.Millisecond)
	if d := b.StallDeadline("lat-only"); d != 200*time.Millisecond {
		t.Fatalf("latency-only deadline = %v, want 200ms", d)
	}
}

func TestSnapshotSortedWithScoreboardFields(t *testing.T) {
	ck := newClock()
	b := New(Config{
		FailureThreshold: 1,
		ReopenBase:       time.Second,
		Seed:             1,
		Registry:         obs.NewRegistry(),
		Now:              ck.Now,
	})
	// 2 MiB over 1s = 16.777 Mbit/s ≈ 16777 Kbit/s.
	succeed(t, b, "b-peer", 2<<20, time.Second)
	b.ObserveLatency("b-peer", 2*time.Millisecond)
	ck.Advance(time.Minute)
	fail(t, b, "a-peer")

	snap := b.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d peers, want 2", len(snap))
	}
	if snap[0].Peer != "a-peer" || snap[1].Peer != "b-peer" {
		t.Fatalf("snapshot not sorted by peer: %+v", snap)
	}
	a, bb := snap[0], snap[1]
	if a.State != "open" || a.ConsecFails != 1 {
		t.Fatalf("a-peer = %+v, want open with 1 failure", a)
	}
	if !a.LastTransition.Equal(ck.Now()) {
		t.Fatalf("a-peer last transition = %v, want %v", a.LastTransition, ck.Now())
	}
	if bb.State != "closed" || bb.BandwidthKbps != 16777 || bb.LatencyMicros != 2000 {
		t.Fatalf("b-peer = %+v, want closed with 16777 Kbps / 2000 µs", bb)
	}
}

// TestHealthMetricsGolden pins the full gdmp_health_* exposition for a
// deterministic scoreboard history.
func TestHealthMetricsGolden(t *testing.T) {
	ck := newClock()
	reg := obs.NewRegistry()
	b := New(Config{
		FailureThreshold: 2,
		ReopenBase:       time.Second,
		Seed:             1,
		Registry:         reg,
		Now:              ck.Now,
	})

	// site-a: one clean leg (1 MiB over 1s) and a dial latency sample.
	succeed(t, b, "site-a", 1<<20, time.Second)
	b.ObserveLatency("site-a", 5*time.Millisecond)
	// site-b: two failures open the breaker, one shed, then a probe
	// closes it again.
	fail(t, b, "site-b")
	fail(t, b, "site-b")
	if _, ok := b.Begin("site-b"); ok {
		t.Fatal("expected shed")
	}
	ck.Advance(time.Second + time.Millisecond)
	end, ok := b.Begin("site-b")
	if !ok {
		t.Fatal("probe not admitted")
	}
	end(2<<20, time.Second, nil)
	// One transfer declared stalled against site-a.
	b.ObserveStall("site-a")

	want := strings.Join([]string{
		`# HELP gdmp_health_breaker_sheds_total Legs refused without a dial because the peer's breaker was open.`,
		`# TYPE gdmp_health_breaker_sheds_total counter`,
		`gdmp_health_breaker_sheds_total{peer="site-b"} 1`,
		`# HELP gdmp_health_consecutive_failures Consecutive failed legs against a peer since its last success.`,
		`# TYPE gdmp_health_consecutive_failures gauge`,
		`gdmp_health_consecutive_failures{peer="site-a"} 0`,
		`gdmp_health_consecutive_failures{peer="site-b"} 0`,
		`# HELP gdmp_health_ewma_bandwidth_kbps EWMA transfer bandwidth observed from a peer, Kbit/s.`,
		`# TYPE gdmp_health_ewma_bandwidth_kbps gauge`,
		`gdmp_health_ewma_bandwidth_kbps{peer="site-a"} 8388`,
		`gdmp_health_ewma_bandwidth_kbps{peer="site-b"} 16777`,
		`# HELP gdmp_health_ewma_latency_micros EWMA dial latency observed against a peer, microseconds.`,
		`# TYPE gdmp_health_ewma_latency_micros gauge`,
		`gdmp_health_ewma_latency_micros{peer="site-a"} 5000`,
		`# HELP gdmp_health_overloads_total Typed overload rejections recorded against a peer.`,
		`# TYPE gdmp_health_overloads_total counter`,
		`# HELP gdmp_health_probes_total Reopen probe legs admitted through an open breaker, by outcome.`,
		`# TYPE gdmp_health_probes_total counter`,
		`gdmp_health_probes_total{peer="site-b",outcome="ok"} 1`,
		`# HELP gdmp_health_stalls_total Transfers declared stalled past the peer's hedge deadline.`,
		`# TYPE gdmp_health_stalls_total counter`,
		`gdmp_health_stalls_total{peer="site-a"} 1`,
		`# HELP gdmp_health_state Circuit-breaker state by peer: 0 closed, 1 half-open, 2 open.`,
		`# TYPE gdmp_health_state gauge`,
		`gdmp_health_state{peer="site-a"} 0`,
		`gdmp_health_state{peer="site-b"} 0`,
		`# HELP gdmp_health_transitions_total Circuit-breaker transitions, by peer and target state.`,
		`# TYPE gdmp_health_transitions_total counter`,
		`gdmp_health_transitions_total{peer="site-b",to="closed"} 1`,
		`gdmp_health_transitions_total{peer="site-b",to="half_open"} 1`,
		`gdmp_health_transitions_total{peer="site-b",to="open"} 1`,
		``,
	}, "\n")
	if got := reg.Text(); got != want {
		t.Fatalf("health exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestBoardConcurrencySmoke(t *testing.T) {
	b := New(Config{Seed: 1, Registry: obs.NewRegistry()})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			peers := []string{"p1", "p2", "p3"}
			for j := 0; j < 200; j++ {
				addr := peers[(i+j)%len(peers)]
				if end, ok := b.Begin(addr); ok {
					var err error
					if j%5 == 0 {
						err = errLeg
					}
					end(int64(j)*100, time.Millisecond, err)
				}
				b.ObserveLatency(addr, time.Millisecond)
				b.Usable(addr)
				b.ScoreOf(addr)
				b.StallDeadline(addr)
			}
		}(i)
	}
	wg.Wait()
	if got := len(b.Snapshot()); got != 3 {
		t.Fatalf("snapshot peers = %d, want 3", got)
	}
}

func TestObserveOverloadCoolsPeerWithoutBreakerAdvance(t *testing.T) {
	ck := newClock()
	reg := obs.NewRegistry()
	b := New(Config{Registry: reg, Now: ck.Now, Seed: 1})
	const addr = "b.example:2811"

	succeed(t, b, addr, 1<<20, time.Second)
	if !b.Usable(addr) {
		t.Fatal("peer should start usable")
	}
	b.ObserveOverload(addr, 500*time.Millisecond)
	if b.Usable(addr) {
		t.Fatal("peer should be cooling after a typed overload rejection")
	}
	if got := b.StateOf(addr); got != StateClosed {
		t.Fatalf("state = %v, want closed (overload must not advance the breaker)", got)
	}
	if got := b.ConsecutiveFailures(addr); got != 0 {
		t.Fatalf("consecutive failures = %d, want 0", got)
	}
	ck.Advance(600 * time.Millisecond)
	if !b.Usable(addr) {
		t.Fatal("cooldown should have expired")
	}
	if got := reg.CounterVec(MetricsPrefix+"_overloads_total", "", "peer").
		WithLabelValues(addr).Value(); got != 1 {
		t.Fatalf("overloads counter = %d, want 1", got)
	}
}

func TestObserveOverloadDefaultsToReopenBase(t *testing.T) {
	ck := newClock()
	b := New(Config{Registry: obs.NewRegistry(), Now: ck.Now, ReopenBase: 2 * time.Second, Seed: 1})
	const addr = "c.example:2811"
	b.ObserveOverload(addr, 0)
	ck.Advance(1900 * time.Millisecond)
	if b.Usable(addr) {
		t.Fatal("peer should still be cooling for the reopen base delay")
	}
	ck.Advance(200 * time.Millisecond)
	if !b.Usable(addr) {
		t.Fatal("cooldown should have expired after the reopen base delay")
	}
}
