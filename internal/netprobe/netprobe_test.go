package netprobe

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestMeasureRTT(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	// Inject 20 ms of dial latency.
	slowDial := func(network, addr string) (net.Conn, error) {
		time.Sleep(20 * time.Millisecond)
		return net.Dial(network, addr)
	}
	rtt, err := MeasureRTT(slowDial, ln.Addr().String(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 20*time.Millisecond || rtt > 200*time.Millisecond {
		t.Fatalf("rtt = %v, want >= 20ms", rtt)
	}
	// Unreachable target errors.
	if _, err := MeasureRTT(nil, "127.0.0.1:1", 1); err == nil {
		t.Fatal("unreachable probe succeeded")
	}
}

func TestMeasureRTTFunc(t *testing.T) {
	calls := 0
	rtt, err := MeasureRTTFunc(func() error {
		calls++
		time.Sleep(5 * time.Millisecond)
		return nil
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("probes = %d", calls)
	}
	if rtt < 5*time.Millisecond || rtt > 100*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
	if _, err := MeasureRTTFunc(nil, 1); err == nil {
		t.Fatal("nil round trip accepted")
	}
	if _, err := MeasureRTTFunc(func() error { return errors.New("down") }, 1); err == nil {
		t.Fatal("failing probe accepted")
	}
}

func TestEstimateBandwidth(t *testing.T) {
	// A transfer that "achieves" exactly 8 Mbps: 1 MB in one second.
	bw, err := EstimateBandwidth(func(n int64) (time.Duration, error) {
		return time.Second, nil
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if bw != 8_000_000 {
		t.Fatalf("bw = %v", bw)
	}
	if _, err := EstimateBandwidth(nil, 1); err == nil {
		t.Fatal("nil transfer accepted")
	}
	if _, err := EstimateBandwidth(func(int64) (time.Duration, error) { return time.Second, nil }, 0); err == nil {
		t.Fatal("zero probe accepted")
	}
	if _, err := EstimateBandwidth(func(int64) (time.Duration, error) { return 0, nil }, 1); err == nil {
		t.Fatal("zero elapsed accepted")
	}
	if _, err := EstimateBandwidth(func(int64) (time.Duration, error) { return 0, errors.New("x") }, 1); err == nil {
		t.Fatal("failing transfer accepted")
	}
}

func TestOptimalBuffer(t *testing.T) {
	// The paper's path: 125 ms x 25 Mbps = ~390 KB.
	b := OptimalBuffer(125*time.Millisecond, 25e6)
	if b < 380_000 || b > 400_000 {
		t.Fatalf("buffer = %d, want ~390KB", b)
	}
	// Clamping.
	if b := OptimalBuffer(time.Microsecond, 1000); b != 8*1024 {
		t.Fatalf("min clamp = %d", b)
	}
	if b := OptimalBuffer(10*time.Second, 1e12); b != 16*1024*1024 {
		t.Fatalf("max clamp = %d", b)
	}
}
