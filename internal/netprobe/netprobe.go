// Package netprobe implements the measurement methodology of Section 6:
// "To determine the optimal TCP buffer size, we use [the] standard formula
// ... optimal TCP buffer = RTT x (speed of bottleneck link). The Round Trip
// Time (RTT) is measured using the Unix ping tool, and the speed of the
// bottleneck link is measured using pipechar."
//
// MeasureRTT is the ping analogue (application-level round trips over an
// established connection or repeated TCP connects), EstimateBandwidth is
// the pipechar/iperf analogue (a timed bulk probe), and OptimalBuffer is
// the [Tier00] formula. gridftp.Client.AutoTune composes the three.
package netprobe

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// MeasureRTT estimates the round-trip time to addr by timing TCP connection
// establishment (one SYN/SYN-ACK round trip) samples times and returning
// the minimum, which best approximates the propagation delay.
func MeasureRTT(dial func(network, addr string) (net.Conn, error), addr string, samples int) (time.Duration, error) {
	if dial == nil {
		dial = net.Dial
	}
	if samples < 1 {
		samples = 3
	}
	best := time.Duration(0)
	for i := 0; i < samples; i++ {
		start := time.Now()
		c, err := dial("tcp", addr)
		rtt := time.Since(start)
		if err != nil {
			return 0, fmt.Errorf("netprobe: rtt probe %d: %w", i, err)
		}
		c.Close()
		if best == 0 || rtt < best {
			best = rtt
		}
	}
	return best, nil
}

// MeasureRTTFunc estimates the round trip by timing an application-level
// no-op (e.g. a GridFTP NOOP) samples times, returning the minimum. Use
// this when a session already exists and connection setup would distort
// the measurement.
func MeasureRTTFunc(roundTrip func() error, samples int) (time.Duration, error) {
	if roundTrip == nil {
		return 0, errors.New("netprobe: nil round trip")
	}
	if samples < 1 {
		samples = 3
	}
	best := time.Duration(0)
	for i := 0; i < samples; i++ {
		start := time.Now()
		if err := roundTrip(); err != nil {
			return 0, fmt.Errorf("netprobe: rtt probe %d: %w", i, err)
		}
		rtt := time.Since(start)
		if best == 0 || rtt < best {
			best = rtt
		}
	}
	return best, nil
}

// EstimateBandwidth times a bulk transfer of probeBytes through the given
// transfer function and returns the achieved rate in bits per second — the
// pipechar/iperf step of the paper's method. The probe should be large
// enough to amortize slow start (the paper uses multi-second iperf runs).
func EstimateBandwidth(transfer func(probeBytes int64) (time.Duration, error), probeBytes int64) (float64, error) {
	if transfer == nil {
		return 0, errors.New("netprobe: nil transfer")
	}
	if probeBytes <= 0 {
		return 0, fmt.Errorf("netprobe: probe size %d must be positive", probeBytes)
	}
	elapsed, err := transfer(probeBytes)
	if err != nil {
		return 0, fmt.Errorf("netprobe: bandwidth probe: %w", err)
	}
	if elapsed <= 0 {
		return 0, errors.New("netprobe: probe finished in zero time")
	}
	return float64(probeBytes) * 8 / elapsed.Seconds(), nil
}

// OptimalBuffer applies the [Tier00] formula: buffer = RTT x bottleneck
// bandwidth, returned in bytes and clamped to [minBuf, maxBuf].
func OptimalBuffer(rtt time.Duration, bandwidthBps float64) int {
	const (
		minBuf = 8 * 1024
		maxBuf = 16 * 1024 * 1024
	)
	b := int(rtt.Seconds() * bandwidthBps / 8)
	if b < minBuf {
		return minBuf
	}
	if b > maxBuf {
		return maxBuf
	}
	return b
}
