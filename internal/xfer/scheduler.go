// Package xfer is the site's replication scheduler: a bounded worker pool
// that owns the pull pipeline. GDMP's producer-consumer model generates
// bursts of pull work — a publication notice covers a whole production
// run — and the paper's testbed observations (wide-area links an order of
// magnitude slower than the tape drives feeding them) make the pull side
// the place where concurrency pays: several files in flight keep a
// long-fat link busy while any one transfer waits on staging or restart
// backoff.
//
// The scheduler provides:
//
//   - a bounded worker pool (Config.Workers) so a burst of notices cannot
//     open an unbounded number of GridFTP sessions;
//   - FIFO admission within a priority level, higher priorities first;
//   - in-flight deduplication: submissions sharing a key coalesce onto one
//     job, and every waiter receives the job's real error (not a generic
//     "someone else failed" placeholder);
//   - per-source concurrency caps (Config.PerSource, via AcquireSource) so
//     one destination cannot saturate a single producer's GridFTP server;
//   - context plumbing end to end: each job runs under a context canceled
//     when the scheduler closes or when every waiter has abandoned the
//     job, so an unwanted transfer stops mid-stream instead of running
//     out;
//   - gdmp_xfer_* instrumentation (queue depth, active workers, per-source
//     in-flight transfers, job latency, outcomes) in internal/obs.
package xfer

import (
	"container/heap"
	"context"
	"errors"
	"sort"
	"sync"

	"gdmp/internal/obs"
)

// ErrDraining is returned by tickets for submissions rejected because the
// scheduler is draining for shutdown.
var ErrDraining = errors.New("xfer: scheduler draining")

// ErrQueueFull is returned by tickets rejected because the queue reached
// Config.MaxQueue: either the new submission (when nothing queued is lower
// priority) or a displaced lowest-priority queued job.
var ErrQueueFull = errors.New("xfer: queue full")

// MetricsPrefix prefixes every scheduler metric.
const MetricsPrefix = "gdmp_xfer"

// Job is one unit of pull work. It must honor ctx: the scheduler cancels
// it when the last waiter abandons the job or the scheduler closes.
type Job func(ctx context.Context) error

// Config tunes a Scheduler.
type Config struct {
	// Workers bounds concurrently running jobs (default 4).
	Workers int

	// PerSource caps jobs transferring from one source at a time,
	// enforced via AcquireSource (0 = unlimited).
	PerSource int

	// MaxQueue caps jobs admitted but not yet running (0 = unbounded).
	// At the cap, admission is priority-aware: a higher-priority arrival
	// displaces the lowest-priority queued job (which fails with
	// ErrQueueFull); otherwise the arrival itself is rejected.
	MaxQueue int

	// Registry receives the gdmp_xfer_* metrics (obs.Default when nil).
	Registry *obs.Registry
}

// metrics bundles the scheduler's collectors.
type metrics struct {
	queueDepth    *obs.Gauge
	activeWorkers *obs.Gauge
	inflight      *obs.GaugeVec // {source}
	jobSeconds    *obs.Histogram
	jobs          *obs.CounterVec // {outcome}
	dedups        *obs.Counter
}

func metricsFor(r *obs.Registry) *metrics {
	if r == nil {
		r = obs.Default
	}
	return &metrics{
		queueDepth: r.Gauge(MetricsPrefix+"_queue_depth",
			"Jobs admitted but not yet running."),
		activeWorkers: r.Gauge(MetricsPrefix+"_active_workers",
			"Workers currently running a job."),
		inflight: r.GaugeVec(MetricsPrefix+"_inflight",
			"Transfers currently holding a per-source slot, by source.", "source"),
		jobSeconds: r.Histogram(MetricsPrefix+"_job_seconds",
			"Wall-clock duration of completed jobs.", nil),
		jobs: r.CounterVec(MetricsPrefix+"_jobs_total",
			"Completed jobs by outcome.", "outcome"),
		dedups: r.Counter(MetricsPrefix+"_dedup_total",
			"Submissions coalesced onto an already-admitted job."),
	}
}

// ticketState tracks a job through its life.
type ticketState int

const (
	stateQueued ticketState = iota
	stateRunning
	stateDone
)

// Ticket is the handle every submitter of a key shares. Wait blocks until
// the job finishes and returns its real error; abandoning every waiter
// cancels the job.
type Ticket struct {
	s        *Scheduler
	key      string
	priority int
	seq      uint64
	fn       Job
	index    int // heap index while queued; -1 otherwise

	// Guarded by s.mu.
	state   ticketState
	waiters int
	cancel  context.CancelFunc // set while running

	done chan struct{}
	err  error // written before done closes; read-only afterwards
}

// Wait blocks until the job completes or ctx is done. On completion every
// waiter receives the job's actual error. A waiter whose ctx expires
// abandons the ticket; when the last waiter abandons, the job itself is
// canceled (dequeued if still pending, interrupted if running).
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		t.abandon()
		// The job may have completed while we raced to abandon it; prefer
		// the real outcome when it is already there.
		select {
		case <-t.done:
			return t.err
		default:
			return ctx.Err()
		}
	}
}

// Done exposes the completion channel for select-based callers; Err is
// valid once Done is closed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Err returns the job's error; only meaningful after Done is closed.
func (t *Ticket) Err() error { return t.err }

// abandon drops one waiter's interest; at zero waiters the job is canceled.
func (t *Ticket) abandon() {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state == stateDone {
		return
	}
	t.waiters--
	if t.waiters > 0 {
		return
	}
	switch t.state {
	case stateQueued:
		heap.Remove(&s.queue, t.index)
		s.met.queueDepth.Set(int64(s.queue.Len()))
		s.finishLocked(t, context.Canceled, outcomeAbandoned)
	case stateRunning:
		// The job has given up — every waiter walked away and the cancel
		// is in flight — so it must stop occupying the dedup index: a
		// later submission of the same key starts a fresh job instead of
		// coalescing onto this one's cancellation. The worker still
		// reports this ticket's outcome when the job body returns.
		if cur, ok := s.inflight[t.key]; ok && cur == t {
			delete(s.inflight, t.key)
		}
		t.cancel()
	}
}

// jobHeap orders tickets by priority (higher first), then admission order.
type jobHeap []*Ticket

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *jobHeap) Push(x interface{}) {
	t := x.(*Ticket)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Outcome label values in gdmp_xfer_jobs_total.
const (
	outcomeOK        = "ok"
	outcomeError     = "error"
	outcomeCanceled  = "canceled"
	outcomeAbandoned = "abandoned"
	outcomeRejected  = "rejected"
)

// Scheduler runs jobs on a bounded worker pool with dedup and priorities.
type Scheduler struct {
	cfg Config
	met *metrics

	ctx    context.Context // canceled by Close; parent of every job ctx
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobHeap
	inflight map[string]*Ticket // queued or running tickets by key
	seq      uint64
	closed   bool
	draining bool

	srcMu sync.Mutex
	srcs  map[string]chan struct{} // per-source slot semaphores

	wg sync.WaitGroup
}

// New starts a scheduler with cfg.Workers workers.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	s := &Scheduler{
		cfg:      cfg,
		met:      metricsFor(cfg.Registry),
		inflight: make(map[string]*Ticket),
		srcs:     make(map[string]chan struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers reports the pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Submit admits a job under a dedup key. If a job with the same key is
// already queued or running, the submission coalesces onto it (fn is
// dropped) and the returned Ticket shares that job's outcome. priority
// orders admission: higher runs first, ties run FIFO.
func (s *Scheduler) Submit(key string, priority int, fn Job) *Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.inflight[key]; ok {
		// Joining an already-admitted job adds no new work, so it stays
		// legal while draining.
		t.waiters++
		s.met.dedups.Inc()
		return t
	}
	s.seq++
	t := &Ticket{
		s: s, key: key, priority: priority, seq: s.seq,
		fn: fn, index: -1, waiters: 1,
		done: make(chan struct{}),
	}
	if s.closed {
		s.finishLocked(t, context.Canceled, outcomeCanceled)
		return t
	}
	if s.draining {
		s.finishLocked(t, ErrDraining, outcomeRejected)
		return t
	}
	if s.cfg.MaxQueue > 0 && s.queue.Len() >= s.cfg.MaxQueue {
		// Depth cap with priority-aware rejection: a backlog this deep is
		// an overload signal, so shed the least valuable work — the
		// lowest-priority (and among equals, newest) queued job if the
		// arrival outranks it, otherwise the arrival itself.
		vi := -1
		for i, q := range s.queue {
			if vi < 0 || q.priority < s.queue[vi].priority ||
				(q.priority == s.queue[vi].priority && q.seq > s.queue[vi].seq) {
				vi = i
			}
		}
		if vi >= 0 && s.queue[vi].priority < priority {
			victim := s.queue[vi]
			heap.Remove(&s.queue, vi)
			s.finishLocked(victim, ErrQueueFull, outcomeRejected)
		} else {
			s.finishLocked(t, ErrQueueFull, outcomeRejected)
			return t
		}
	}
	s.inflight[key] = t
	heap.Push(&s.queue, t)
	s.met.queueDepth.Set(int64(s.queue.Len()))
	s.cond.Signal()
	return t
}

// finishLocked completes a ticket; the caller holds s.mu.
func (s *Scheduler) finishLocked(t *Ticket, err error, outcome string) {
	if t.state == stateDone {
		return
	}
	t.state = stateDone
	t.err = err
	// Abandoned running jobs were already evicted from the index, and the
	// key may since have been reused by a fresh submission — only remove
	// the entry if it is still this ticket's.
	if cur, ok := s.inflight[t.key]; ok && cur == t {
		delete(s.inflight, t.key)
	}
	s.met.jobs.WithLabelValues(outcome).Inc()
	close(t.done)
	if len(s.inflight) == 0 {
		// Wake any Drain waiting for the last job. Workers woken
		// spuriously re-check their queue condition and sleep again.
		s.cond.Broadcast()
	}
}

// worker pops and runs jobs until Close.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		t := heap.Pop(&s.queue).(*Ticket)
		s.met.queueDepth.Set(int64(s.queue.Len()))
		if s.closed {
			s.finishLocked(t, context.Canceled, outcomeCanceled)
			s.mu.Unlock()
			continue
		}
		jobCtx, jobCancel := context.WithCancel(s.ctx)
		t.state = stateRunning
		t.cancel = jobCancel
		s.mu.Unlock()

		s.met.activeWorkers.Inc()
		stop := s.met.jobSeconds.Time()
		err := t.fn(jobCtx)
		stop()
		s.met.activeWorkers.Dec()

		// Classify before releasing jobCtx: jobCancel below cancels it
		// unconditionally, which must not masquerade as an abort.
		outcome := outcomeOK
		switch {
		case err == nil:
		case jobCtx.Err() != nil:
			outcome = outcomeCanceled
		default:
			outcome = outcomeError
		}
		jobCancel()
		s.mu.Lock()
		s.finishLocked(t, err, outcome)
		s.mu.Unlock()
	}
}

// AcquireSource claims a transfer slot against one source endpoint,
// blocking while PerSource jobs already hold one. It is called by the job
// body once the source is known (replica selection happens inside the
// job), so the cap composes with any queueing discipline above it. The
// returned release must be called exactly once.
func (s *Scheduler) AcquireSource(ctx context.Context, source string) (release func(), err error) {
	if s.cfg.PerSource <= 0 {
		s.met.inflight.WithLabelValues(source).Inc()
		var once sync.Once
		return func() {
			once.Do(func() { s.met.inflight.WithLabelValues(source).Dec() })
		}, nil
	}
	s.srcMu.Lock()
	sem, ok := s.srcs[source]
	if !ok {
		// Slots live for the scheduler's lifetime; the source population
		// is the set of peer sites, which is small and stable.
		sem = make(chan struct{}, s.cfg.PerSource)
		s.srcs[source] = sem
	}
	s.srcMu.Unlock()
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.ctx.Done():
		return nil, s.ctx.Err()
	}
	s.met.inflight.WithLabelValues(source).Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.met.inflight.WithLabelValues(source).Dec()
			<-sem
		})
	}, nil
}

// QueueDepth reports jobs admitted but not yet running.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// Draining reports whether Drain has been called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain moves the scheduler into shutdown admission control: new
// submissions fail immediately with ErrDraining while queued and running
// jobs are allowed to finish. It returns when the last admitted job
// completes, or when ctx expires — in which case it reports the dedup
// keys of the jobs it abandoned (still queued or mid-transfer) alongside
// ctx's error, so the caller can persist them as unfinished work. Drain
// does not stop the workers or cancel anything; follow with Close.
func (s *Scheduler) Drain(ctx context.Context) (abandoned []string, err error) {
	s.mu.Lock()
	s.draining = true
	if len(s.inflight) == 0 {
		s.mu.Unlock()
		return nil, nil
	}
	s.mu.Unlock()

	done := make(chan struct{})
	abort := false // guarded by s.mu
	go func() {
		defer close(done)
		s.mu.Lock()
		defer s.mu.Unlock()
		for len(s.inflight) > 0 && !abort {
			s.cond.Wait()
		}
	}()
	select {
	case <-done:
		return nil, nil
	case <-ctx.Done():
		s.mu.Lock()
		abort = true
		for k := range s.inflight {
			abandoned = append(abandoned, k)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		<-done
		if len(abandoned) == 0 {
			// The last job finished in the race between completion and
			// ctx expiry: that is a clean drain.
			return nil, nil
		}
		sort.Strings(abandoned)
		return abandoned, ctx.Err()
	}
}

// Close cancels running jobs, fails queued ones with context.Canceled,
// and waits for the workers to drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	// Fail everything still queued; running jobs stop via s.ctx.
	for s.queue.Len() > 0 {
		t := heap.Pop(&s.queue).(*Ticket)
		s.finishLocked(t, context.Canceled, outcomeCanceled)
	}
	s.met.queueDepth.Set(0)
	s.cancel()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
