package xfer

import (
	"context"
	"errors"
	"testing"
	"time"

	"gdmp/internal/obs"
)

// TestDrainWaitsForQueuedAndRunning checks that a drain with room in its
// deadline lets every admitted job — running or still queued — finish.
func TestDrainWaitsForQueuedAndRunning(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})
	defer s.Close()

	release := make(chan struct{})
	ran := make(map[string]chan struct{})
	var tickets []*Ticket
	for _, key := range []string{"running", "queued-1", "queued-2"} {
		done := make(chan struct{})
		ran[key] = done
		tickets = append(tickets, s.Submit(key, 0, func(ctx context.Context) error {
			<-release
			close(done)
			return nil
		}))
	}

	drained := make(chan struct{})
	go func() {
		abandoned, err := s.Drain(context.Background())
		if err != nil || len(abandoned) != 0 {
			t.Errorf("Drain = %v, %v; want clean drain", abandoned, err)
		}
		close(drained)
	}()

	// Drain must not return while jobs are still admitted.
	select {
	case <-drained:
		t.Fatal("Drain returned with jobs still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the last job finished")
	}
	for key, done := range ran {
		select {
		case <-done:
		default:
			t.Fatalf("job %q never ran during drain", key)
		}
	}
	for _, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("ticket err = %v, want nil", err)
		}
	}
}

// TestDrainRejectsNewSubmissions checks admission control: once draining,
// new keys fail fast with ErrDraining, but joining an in-flight key still
// coalesces.
func TestDrainRejectsNewSubmissions(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})
	defer s.Close()

	release := make(chan struct{})
	inflight := s.Submit("inflight", 0, func(ctx context.Context) error {
		<-release
		return nil
	})

	go s.Drain(context.Background())
	waitFor(t, func() bool { return s.Draining() })

	rejected := s.Submit("newcomer", 0, func(ctx context.Context) error { return nil })
	if err := rejected.Wait(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("new submission during drain: err = %v, want ErrDraining", err)
	}

	joined := s.Submit("inflight", 0, func(ctx context.Context) error {
		t.Error("dedup join ran a second job body")
		return nil
	})
	close(release)
	if err := joined.Wait(context.Background()); err != nil {
		t.Fatalf("dedup join during drain: err = %v, want the job's nil", err)
	}
	if err := inflight.Wait(context.Background()); err != nil {
		t.Fatalf("in-flight job failed during drain: %v", err)
	}
}

// TestDrainTimeoutReportsAbandoned checks that an expiring drain context
// returns the keys of every job it could not wait out.
func TestDrainTimeoutReportsAbandoned(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})

	release := make(chan struct{})
	s.Submit("stuck-running", 0, func(ctx context.Context) error {
		<-release
		return nil
	})
	waitFor(t, func() bool { return s.QueueDepth() == 0 })
	s.Submit("stuck-queued", 0, func(ctx context.Context) error {
		<-release
		return nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	abandoned, err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want deadline exceeded", err)
	}
	if len(abandoned) != 2 || abandoned[0] != "stuck-queued" || abandoned[1] != "stuck-running" {
		t.Fatalf("abandoned = %v, want [stuck-queued stuck-running]", abandoned)
	}
	close(release)
	s.Close()
}

// TestDrainEmptySchedulerReturnsImmediately checks the no-work fast path.
func TestDrainEmptySchedulerReturnsImmediately(t *testing.T) {
	s := New(Config{Workers: 2, Registry: obs.NewRegistry()})
	defer s.Close()
	abandoned, err := s.Drain(context.Background())
	if err != nil || abandoned != nil {
		t.Fatalf("Drain of idle scheduler = %v, %v", abandoned, err)
	}
	if !s.Draining() {
		t.Fatal("scheduler not marked draining")
	}
}

// waitFor polls cond until true or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
