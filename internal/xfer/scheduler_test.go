package xfer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdmp/internal/obs"
)

// TestDedupCoalescesConcurrentSubmits checks that N submissions of one key
// run the job once and that every waiter sees the job's real error.
func TestDedupCoalescesConcurrentSubmits(t *testing.T) {
	s := New(Config{Workers: 2, Registry: obs.NewRegistry()})
	defer s.Close()

	var runs atomic.Int32
	release := make(chan struct{})
	sentinel := errors.New("source exploded")
	job := func(ctx context.Context) error {
		runs.Add(1)
		<-release
		return sentinel
	}

	const waiters = 8
	tickets := make([]*Ticket, waiters)
	for i := range tickets {
		tickets[i] = s.Submit("lfn://x", 0, job)
	}
	close(release)
	for i, tk := range tickets {
		if err := tk.Wait(context.Background()); !errors.Is(err, sentinel) {
			t.Fatalf("waiter %d: err = %v, want the job's real error", i, err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("job ran %d times, want 1", got)
	}
}

// TestDistinctKeysRunConcurrently checks the pool actually overlaps jobs.
func TestDistinctKeysRunConcurrently(t *testing.T) {
	s := New(Config{Workers: 4, Registry: obs.NewRegistry()})
	defer s.Close()

	var mu sync.Mutex
	active, peak := 0, 0
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		tickets = append(tickets, s.Submit(fmt.Sprintf("k%d", i), 0, func(ctx context.Context) error {
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			time.Sleep(20 * time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			return nil
		}))
	}
	for _, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if peak < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak)
	}
	if peak > 4 {
		t.Fatalf("peak concurrency %d exceeds the 4-worker pool", peak)
	}
}

// TestPerSourceCap checks AcquireSource holds concurrent jobs against one
// source at the configured cap while the pool is larger.
func TestPerSourceCap(t *testing.T) {
	s := New(Config{Workers: 8, PerSource: 2, Registry: obs.NewRegistry()})
	defer s.Close()

	var mu sync.Mutex
	active, peak := 0, 0
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		tickets = append(tickets, s.Submit(fmt.Sprintf("k%d", i), 0, func(ctx context.Context) error {
			release, err := s.AcquireSource(ctx, "tape1.cern.ch:2811")
			if err != nil {
				return err
			}
			defer release()
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			time.Sleep(20 * time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			return nil
		}))
	}
	for _, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if peak > 2 {
		t.Fatalf("peak in-flight against one source = %d, want <= 2", peak)
	}
	if peak < 2 {
		t.Fatalf("peak in-flight = %d; cap should still allow 2 at once", peak)
	}
}

// TestPriorityOrdering floods a single worker and checks high-priority
// jobs overtake earlier low-priority ones.
func TestPriorityOrdering(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})
	defer s.Close()

	gate := make(chan struct{})
	var order []string
	var mu sync.Mutex
	record := func(name string) Job {
		return func(ctx context.Context) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	// Block the lone worker so subsequent submissions queue up.
	blocker := s.Submit("blocker", 0, func(ctx context.Context) error {
		<-gate
		return nil
	})
	// Wait until the blocker actually occupies the worker, or the
	// later submissions could race it into the queue.
	for s.QueueDepth() > 0 {
		time.Sleep(time.Millisecond)
	}
	low1 := s.Submit("low1", 0, record("low1"))
	low2 := s.Submit("low2", 0, record("low2"))
	high := s.Submit("high", 5, record("high"))
	close(gate)
	for _, tk := range []*Ticket{blocker, low1, low2, high} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high", "low1", "low2"}
	mu.Lock()
	defer mu.Unlock()
	for i, name := range want {
		if order[i] != name {
			t.Fatalf("run order %v, want %v", order, want)
		}
	}
}

// TestAbandonedQueuedJobNeverRuns checks that when every waiter gives up
// on a queued job it is dequeued without running.
func TestAbandonedQueuedJobNeverRuns(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})
	defer s.Close()

	gate := make(chan struct{})
	s.Submit("blocker", 0, func(ctx context.Context) error {
		<-gate
		return nil
	})
	var ran atomic.Bool
	tk := s.Submit("victim", 0, func(ctx context.Context) error {
		ran.Store(true)
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	close(gate)
	// The victim's ticket must already be finished with Canceled.
	select {
	case <-tk.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned ticket never completed")
	}
	if !errors.Is(tk.Err(), context.Canceled) {
		t.Fatalf("ticket err = %v, want context.Canceled", tk.Err())
	}
	if ran.Load() {
		t.Fatal("abandoned queued job still ran")
	}
	// The key must be free for resubmission.
	again := s.Submit("victim", 0, func(ctx context.Context) error { return nil })
	if err := again.Wait(context.Background()); err != nil {
		t.Fatalf("resubmission after abandon: %v", err)
	}
}

// TestAbandonRunningJobCancelsItsContext checks the last waiter walking
// away interrupts a running job via its context.
func TestAbandonRunningJobCancelsItsContext(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})
	defer s.Close()

	started := make(chan struct{})
	stopped := make(chan struct{})
	tk := s.Submit("job", 0, func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		close(stopped)
		return ctx.Err()
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("running job did not observe cancellation after last waiter left")
	}
}

// TestSecondWaiterKeepsJobAlive checks one waiter abandoning does not
// cancel a job another waiter still wants.
func TestSecondWaiterKeepsJobAlive(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	job := func(ctx context.Context) error {
		close(started)
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	first := s.Submit("shared", 0, job)
	<-started
	second := s.Submit("shared", 0, job)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := first.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter: %v, want context.Canceled", err)
	}
	close(release)
	if err := second.Wait(context.Background()); err != nil {
		t.Fatalf("second waiter: %v, want success (job must survive first waiter leaving)", err)
	}
}

// TestCloseFailsQueuedAndCancelsRunning checks shutdown semantics.
func TestCloseFailsQueuedAndCancelsRunning(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})

	started := make(chan struct{})
	running := s.Submit("running", 0, func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	queued := s.Submit("queued", 0, func(ctx context.Context) error { return nil })

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	if err := running.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("running job: %v, want context.Canceled", err)
	}
	if err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job: %v, want context.Canceled", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not drain")
	}
	// Post-close submissions fail immediately instead of hanging.
	late := s.Submit("late", 0, func(ctx context.Context) error { return nil })
	if err := late.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-close submit: %v, want context.Canceled", err)
	}
}

// TestMetricsAccounting spot-checks the gdmp_xfer_* families.
func TestMetricsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 2, Registry: reg})
	defer s.Close()

	a := s.Submit("a", 0, func(ctx context.Context) error { return nil })
	b := s.Submit("a", 0, func(ctx context.Context) error { return nil }) // dedup
	_ = a.Wait(context.Background())
	_ = b.Wait(context.Background())

	text := reg.Text()
	for _, want := range []string{
		"gdmp_xfer_dedup_total 1",
		`gdmp_xfer_jobs_total{outcome="ok"} 1`,
		"gdmp_xfer_queue_depth 0",
		"gdmp_xfer_active_workers 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics dump missing %q\n%s", want, text)
		}
	}
}

// TestResubmitAfterAbandonedRunningJobStartsFresh is the regression test
// for the dedup index across given-up jobs: once every waiter has
// abandoned a running job (it is canceled and merely draining), a
// re-submission of the same key must start a fresh job — not coalesce
// onto the dying one and inherit its cancellation.
func TestResubmitAfterAbandonedRunningJobStartsFresh(t *testing.T) {
	s := New(Config{Workers: 1, Registry: obs.NewRegistry()})
	defer s.Close()

	started := make(chan struct{})
	exit := make(chan struct{})
	t1 := s.Submit("lfn://hot", 0, func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // canceled by abandon
		<-exit       // ... but slow to actually wind down
		return ctx.Err()
	})
	<-started

	// The only waiter gives up: the running job is canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := t1.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning wait: err = %v", err)
	}

	// Re-queue the same LFN while the abandoned job is still draining.
	var ran atomic.Bool
	t2 := s.Submit("lfn://hot", 0, func(ctx context.Context) error {
		ran.Store(true)
		return nil
	})
	if t2 == t1 {
		t.Fatal("re-submission coalesced onto the abandoned job")
	}
	close(exit)
	if err := t2.Wait(context.Background()); err != nil {
		t.Fatalf("fresh job after abandon: %v", err)
	}
	if !ran.Load() {
		t.Fatal("fresh job never ran")
	}
	// The old ticket still reports its own cancellation.
	<-t1.Done()
	if !errors.Is(t1.Err(), context.Canceled) {
		t.Fatalf("abandoned job outcome = %v, want canceled", t1.Err())
	}
}

// TestAbandonedJobCompletionDoesNotEvictSuccessor pins the other half of
// the fix: when the abandoned job finally exits after the key has been
// reused, its completion must not remove the fresh job from the dedup
// index (a third submission must still coalesce onto the live job).
func TestAbandonedJobCompletionDoesNotEvictSuccessor(t *testing.T) {
	s := New(Config{Workers: 2, Registry: obs.NewRegistry()})
	defer s.Close()

	started := make(chan struct{})
	exit := make(chan struct{})
	t1 := s.Submit("lfn://hot", 0, func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		<-exit
		return ctx.Err()
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t1.Wait(ctx) // abandon the running job

	started2 := make(chan struct{})
	release2 := make(chan struct{})
	var runs atomic.Int32
	job2 := func(ctx context.Context) error {
		runs.Add(1)
		close(started2)
		<-release2
		return nil
	}
	t2 := s.Submit("lfn://hot", 0, job2)
	<-started2

	// Let the abandoned job finish now, while the successor is running.
	close(exit)
	<-t1.Done()

	// A third submission must coalesce onto the live successor.
	t3 := s.Submit("lfn://hot", 0, job2)
	if t3 != t2 {
		t.Fatal("successor was evicted from the dedup index by the abandoned job's completion")
	}
	close(release2)
	if err := t3.Wait(context.Background()); err != nil {
		t.Fatalf("successor: %v", err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("successor ran %d times, want 1", got)
	}
}

// TestMaxQueuePriorityAwareRejection checks the depth cap: at the cap a
// low-priority arrival is rejected outright, while a high-priority arrival
// displaces the lowest-priority queued job instead.
func TestMaxQueuePriorityAwareRejection(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueue: 2, Registry: obs.NewRegistry()})
	defer s.Close()

	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context) error { <-release; return nil }
	noop := func(ctx context.Context) error { return nil }

	running := s.Submit("running", 0, block)
	waitQueueDrainTo(t, s, 0) // the worker picked it up

	low := s.Submit("low", -1, noop)
	mid := s.Submit("mid", 0, noop)
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}

	// Same priority as the queued minimum: the arrival is refused.
	rejected := s.Submit("equal", -1, noop)
	if err := rejected.Wait(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("equal-priority arrival err = %v, want ErrQueueFull", err)
	}

	// Higher priority: the lowest-priority queued job is displaced.
	high := s.Submit("high", 5, noop)
	if err := low.Wait(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("displaced job err = %v, want ErrQueueFull", err)
	}
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth after displacement = %d, want 2", got)
	}

	release <- struct{}{} // finish the running job; the queue drains
	for name, tk := range map[string]*Ticket{"running": running, "mid": mid, "high": high} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func waitQueueDrainTo(t *testing.T, s *Scheduler, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() > depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue stuck at %d, want <= %d", s.QueueDepth(), depth)
		}
		time.Sleep(time.Millisecond)
	}
}
