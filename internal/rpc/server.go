package rpc

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"gdmp/internal/admission"
	"gdmp/internal/gsi"
	"gdmp/internal/obs"
)

// ServerMetricsPrefix prefixes every Request Manager server metric.
const ServerMetricsPrefix = "gdmp_rpc_server"

// serverMetrics instruments the Request Manager: request counts by method
// and status, per-method latency, in-flight requests, and the two
// rejection classes that precede dispatch (handshake and authorization).
type serverMetrics struct {
	requests       *obs.CounterVec   // {method, status}
	latency        *obs.HistogramVec // {method}
	inFlight       *obs.Gauge
	authFails      *obs.Counter
	handshakeFails *obs.Counter
	acceptErrs     *obs.Counter
	connsRejected  *obs.Counter
}

func newRPCServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		requests: r.CounterVec(ServerMetricsPrefix+"_requests_total",
			"RPC requests by method and status.", "method", "status"),
		latency: r.HistogramVec(ServerMetricsPrefix+"_request_seconds",
			"RPC request handling latency by method.", nil, "method"),
		inFlight: r.Gauge(ServerMetricsPrefix+"_in_flight",
			"RPC requests currently being dispatched."),
		authFails: r.Counter(ServerMetricsPrefix+"_auth_failures_total",
			"Requests rejected by the ACL check."),
		handshakeFails: r.Counter(ServerMetricsPrefix+"_handshake_failures_total",
			"Connections dropped during the GSI handshake."),
		acceptErrs: r.Counter("gdmp_rpc_accept_errors_total",
			"Temporary accept errors retried with backoff."),
		connsRejected: r.Counter(ServerMetricsPrefix+"_conns_rejected_total",
			"Connections refused by the concurrent-connection cap."),
	}
}

// status codes carried in response frames.
const (
	statusOK         = uint8(0)
	statusError      = uint8(1)
	statusOverloaded = uint8(2) // admission rejection: reason + retry-after
)

// MethodCaps is the wire-capability probe. A generation-aware client
// issues it once per connection before its first metadata-bearing call;
// the server answers it before handler lookup and ACL checks, so every
// server of this generation supports it with no registration. A
// pre-generation server answers "unknown method" as an ordinary error
// frame and the connection stays usable, which tells the client to stay
// on generation-0 frames.
const MethodCaps = "rpc.caps"

// WireGeneration is the newest request-frame generation this build
// speaks. Generation 1 appends a length-prefixed metadata envelope
// (deadline budget + retry attempt) after the request payload; the
// envelope itself is strict-append so future fields ride inside it.
const WireGeneration = 1

// CallMeta is the per-call metadata carried by generation-1 request
// frames.
type CallMeta struct {
	// Deadline is the caller's remaining deadline budget at send time
	// (a duration, not an instant, so clock skew between sites cannot
	// corrupt it); zero means no deadline.
	Deadline time.Duration
	// Attempt is the caller's retry attempt number (0 = first try).
	Attempt uint32
}

// RemoteError is an error reported by a server-side handler and transported
// back to the caller.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error from %s: %s", e.Method, e.Msg)
}

// Handler processes one request. The context is canceled when the server
// shuts down, so long-running handlers (replication pulls, staging) can
// abort cleanly; the peer is the authenticated caller; args is the decoded
// request payload; the handler writes its reply into resp.
type Handler func(ctx context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error

// Server is a Request Manager endpoint: it accepts connections, performs a
// GSI mutual-authentication handshake on each, authorizes each request
// against the ACL, and dispatches to registered handlers. One server
// instance backs each GDMP/replica-catalog daemon.
type Server struct {
	cred  *gsi.Credential
	roots []*gsi.Certificate
	acl   *gsi.ACL

	mu       sync.RWMutex
	handlers map[string]Handler

	lnMu     sync.Mutex
	ln       net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	logger   *log.Logger
	met      *serverMetrics
	TimeoutD time.Duration // per-request read/write deadline; 0 disables

	// MaxConns caps concurrent connections independent of admission, so a
	// dial flood cannot exhaust file descriptors before admission sees a
	// request (0 = unlimited). Set before Serve.
	MaxConns int

	admit    *admission.Controller
	classify func(method string) admission.Class

	baseCtx    context.Context // canceled by Close; parent of handler contexts
	baseCancel context.CancelFunc
}

// NewServer creates a Request Manager server using the given service
// credential, trust roots, and authorization table.
func NewServer(cred *gsi.Credential, roots []*gsi.Certificate, acl *gsi.ACL) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cred:       cred,
		roots:      roots,
		acl:        acl,
		handlers:   make(map[string]Handler),
		conns:      make(map[net.Conn]struct{}),
		logger:     log.New(logDiscard{}, "", 0),
		met:        newRPCServerMetrics(obs.Default),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

// SetMetrics rebinds the server's instrumentation to the given registry
// (tests use a private registry; the default is obs.Default). Call before
// Serve.
func (s *Server) SetMetrics(r *obs.Registry) {
	if r != nil {
		s.met = newRPCServerMetrics(r)
	}
}

type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// SetLogger directs server diagnostics to the given logger.
func (s *Server) SetLogger(l *log.Logger) {
	if l != nil {
		s.logger = l
	}
}

// Handle registers a handler for a method name. The method doubles as the
// ACL operation checked before dispatch.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Identity returns the server's own identity.
func (s *Server) Identity() gsi.Identity { return s.cred.Identity() }

// SetAdmission installs an admission controller consulted before every
// dispatch; classify maps method names onto admission classes (nil maps
// everything to Control). Call before Serve.
func (s *Server) SetAdmission(ctrl *admission.Controller, classify func(method string) admission.Class) {
	s.admit = ctrl
	s.classify = classify
}

// Serve listens on ln until Close is called.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		return errors.New("rpc: server closed")
	}
	s.ln = ln
	s.lnMu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.lnMu.Lock()
			closed := s.closed
			s.lnMu.Unlock()
			if closed {
				return nil
			}
			// Temporary accept failures (EMFILE under a dial flood, ECONNABORTED)
			// must not spin the loop hot: back off with jitter, doubling up to
			// a ceiling, and keep serving.
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				s.met.acceptErrs.Inc()
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
				continue
			}
			return err
		}
		backoff = 0
		s.lnMu.Lock()
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.lnMu.Unlock()
			s.met.connsRejected.Inc()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe starts listening on addr and serves until Close. It
// returns the bound address on a channel-free API by requiring the caller
// to use Listen first when the port matters; for tests, use Listen+Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting connections, cancels the context passed to every
// in-flight handler, and closes existing connections.
func (s *Server) Close() error {
	s.baseCancel()
	s.lnMu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.lnMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()

	if s.TimeoutD > 0 {
		conn.SetDeadline(time.Now().Add(s.TimeoutD))
	}
	peer, err := gsi.Handshake(conn, s.cred, s.roots, false)
	if err != nil {
		s.met.handshakeFails.Inc()
		s.logger.Printf("rpc: handshake with %v failed: %v", conn.RemoteAddr(), err)
		return
	}

	// capable flips once the peer has issued the capability probe, proving
	// it decodes generation-1 responses (the typed overloaded status).
	// Pre-generation peers keep receiving plain error frames.
	capable := false
	for {
		if s.TimeoutD > 0 {
			conn.SetDeadline(time.Now().Add(s.TimeoutD))
		} else {
			conn.SetDeadline(time.Time{})
		}
		frame, err := ReadFrame(conn)
		if err != nil {
			return // connection closed or timed out
		}
		d := NewDecoder(frame)
		method := d.String()
		payload := d.Bytes32()
		var meta CallMeta
		if d.Remaining() > 0 {
			// Generation-1 strict-append block: a length-prefixed metadata
			// envelope. The envelope is decoded by known prefix; fields a
			// future generation appends inside it are ignored.
			md := NewDecoder(d.Bytes32())
			if ver := md.Uint8(); ver >= 1 {
				meta.Deadline = time.Duration(md.Uint64()) * time.Microsecond
				meta.Attempt = md.Uint32()
			}
			if md.Err() != nil {
				s.logger.Printf("rpc: corrupt call metadata from %s: %v", peer.Base, md.Err())
				return
			}
		}
		if err := d.Finish(); err != nil {
			s.logger.Printf("rpc: corrupt request from %s: %v", peer.Base, err)
			return
		}
		var resp []byte
		if method == MethodCaps {
			capable = true
			var out Encoder
			out.Uint8(statusOK)
			out.Uint32(WireGeneration)
			resp = out.Bytes()
			s.met.requests.WithLabelValues(method, "ok").Inc()
		} else {
			resp = s.dispatch(s.baseCtx, peer, method, payload, meta, capable)
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(ctx context.Context, peer *gsi.Peer, method string, payload []byte, meta CallMeta, capable bool) []byte {
	s.met.inFlight.Inc()
	defer s.met.inFlight.Dec()
	defer s.met.latency.WithLabelValues(method).Time()()

	var out Encoder
	fail := func(status, format string, args ...interface{}) []byte {
		s.met.requests.WithLabelValues(method, status).Inc()
		out.Reset()
		out.Uint8(statusError)
		out.String(fmt.Sprintf(format, args...))
		return out.Bytes()
	}
	// overload reports an admission rejection. Peers that proved they speak
	// generation 1 get the typed frame (class, reason, retry-after);
	// everyone else gets a plain error frame, so old clients keep working.
	overload := func(err error) []byte {
		s.met.requests.WithLabelValues(method, "overloaded").Inc()
		var ov *admission.Overloaded
		if capable && errors.As(err, &ov) {
			out.Reset()
			out.Uint8(statusOverloaded)
			out.String(ov.Class)
			out.String(ov.Reason)
			out.Uint64(uint64(ov.After / time.Microsecond))
			return out.Bytes()
		}
		out.Reset()
		out.Uint8(statusError)
		out.String(err.Error())
		return out.Bytes()
	}

	s.mu.RLock()
	h, ok := s.handlers[method]
	s.mu.RUnlock()
	if !ok {
		return fail("unknown", "unknown method %q", method)
	}
	if s.acl != nil {
		if err := s.acl.Check(peer.Base, gsi.Operation(method)); err != nil {
			s.met.authFails.Inc()
			return fail("unauthorized", "unauthorized: %v", err)
		}
	}

	// The wire carries the remaining budget as a duration; anchor it to
	// this server's clock at receipt so cross-site clock skew is harmless.
	var absDeadline time.Time
	if meta.Deadline > 0 {
		absDeadline = time.Now().Add(meta.Deadline)
	}
	if s.admit != nil {
		class := admission.Control
		if s.classify != nil {
			class = s.classify(method)
		}
		release, err := s.admit.Admit(ctx, class, admission.Request{Deadline: absDeadline, Attempt: meta.Attempt})
		if err != nil {
			return overload(err)
		}
		defer release()
	}
	hctx := ctx
	if !absDeadline.IsZero() {
		// Shed, never execute, a request that went dead while queued: the
		// caller has already given up on it.
		if !time.Now().Before(absDeadline) {
			return overload(&admission.Overloaded{Class: "control", Reason: "expired", After: time.Millisecond})
		}
		var cancel context.CancelFunc
		hctx, cancel = context.WithDeadline(ctx, absDeadline)
		defer cancel()
	}

	out.Uint8(statusOK)
	args := NewDecoder(payload)
	if err := h(hctx, peer, args, &out); err != nil {
		return fail("error", "%v", err)
	}
	s.met.requests.WithLabelValues(method, "ok").Inc()
	return out.Bytes()
}
