package rpc

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"gdmp/internal/gsi"
)

// TestCallTimeout: a handler that never returns must not hang the caller
// when a timeout is configured.
func TestCallTimeout(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("hang")
	block := make(chan struct{})
	defer close(block)
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("hang", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			<-block
			return nil
		})
	})
	cred, err := ca(t).Issue("impatient", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr, cred, []*gsi.Certificate{ca(t).Certificate()},
		WithTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.Call("hang", nil)
	if err == nil {
		t.Fatal("hung call returned successfully")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The client closed itself after the I/O failure.
	if _, err := cl.Call("hang", nil); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("second call after timeout: %v", err)
	}
}

// TestServerRequestTimeout: the server's per-request deadline disconnects
// idle clients instead of holding goroutines forever.
func TestServerRequestTimeout(t *testing.T) {
	serverCred, err := ca(t).Issue("gdmp/deadline", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	acl := gsi.NewACL()
	acl.AllowAll("echo")
	srv := NewServer(serverCred, []*gsi.Certificate{ca(t).Certificate()}, acl)
	srv.TimeoutD = 150 * time.Millisecond
	srv.Handle("echo", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error { return nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cred, err := ca(t).Issue("idler", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(ln.Addr().String(), cred, []*gsi.Certificate{ca(t).Certificate()},
		WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// First call succeeds, then the client idles past the deadline; the
	// server hangs up and the next call fails.
	if _, err := cl.Call("echo", nil); err != nil {
		t.Fatalf("first call: %v", err)
	}
	time.Sleep(400 * time.Millisecond)
	if _, err := cl.Call("echo", nil); err == nil {
		t.Fatal("call after server-side idle timeout succeeded")
	}
}

// TestCorruptFrameDisconnects: a malformed request frame terminates the
// connection rather than crashing or wedging the server.
func TestCorruptFrameDisconnects(t *testing.T) {
	serverCred, err := ca(t).Issue("gdmp/corrupt", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(serverCred, []*gsi.Certificate{ca(t).Certificate()}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cred, err := ca(t).Issue("vandal", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := gsi.Handshake(conn, cred, []*gsi.Certificate{ca(t).Certificate()}, true); err != nil {
		t.Fatal(err)
	}
	// A frame whose inner structure is garbage.
	if err := WriteFrame(conn, []byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadFrame(conn); err == nil {
		t.Fatal("server answered a corrupt frame instead of hanging up")
	}
	// The server still serves new connections.
	cl, err := Dial(ln.Addr().String(), cred, []*gsi.Certificate{ca(t).Certificate()},
		WithTimeout(2*time.Second))
	if err != nil {
		t.Fatalf("server wedged after corrupt frame: %v", err)
	}
	cl.Close()
}
