// Package rpc implements the GDMP Request Manager (Section 4.1): the
// client-server communication module that carries every GDMP request. The
// paper builds it on the Globus IO and Globus Data Conversion libraries and
// calls the result "a limited Remote Procedure Call functionality"; this
// package provides the same thing from scratch on top of net.Conn:
//
//   - an explicit big-endian wire codec (the data-conversion role), so
//     messages are byte-identical regardless of host architecture;
//   - length-prefixed request/response framing with method names;
//   - a server that authenticates every connection with a GSI handshake and
//     authorizes every method against an ACL before dispatch;
//   - typed error propagation from server handlers back to callers.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Maximum sizes enforced while decoding untrusted input.
const (
	maxStringLen = 16 << 20  // 16 MiB per string
	maxBytesLen  = 64 << 20  // 64 MiB per byte slice
	maxListLen   = 1 << 20   // 1 Mi elements per list
	maxFrameLen  = 128 << 20 // 128 MiB per frame
)

// ErrCorrupt is returned when a message violates the wire format.
var ErrCorrupt = errors.New("rpc: corrupt message")

// Encoder serializes values into the canonical big-endian wire form. The
// zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint32 appends a 32-bit big-endian integer.
func (e *Encoder) Uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Uint64 appends a 64-bit big-endian integer.
func (e *Encoder) Uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int64 appends a signed 64-bit integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(v string) {
	e.Uint32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Bytes32 appends a length-prefixed byte slice.
func (e *Encoder) Bytes32(v []byte) {
	e.Uint32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// StringList appends a length-prefixed list of strings.
func (e *Encoder) StringList(vs []string) {
	e.Uint32(uint32(len(vs)))
	for _, v := range vs {
		e.String(v)
	}
}

// Decoder reads values back out of a wire message.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder wraps a received message.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) }

// Finish verifies the message was fully consumed without errors.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	return nil
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated", ErrCorrupt)
	}
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint32 reads a 32-bit big-endian integer.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[:4])
	d.b = d.b[4:]
	return v
}

// Uint64 reads a 64-bit big-endian integer.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[:8])
	d.b = d.b[8:]
	return v
}

// Int64 reads a signed 64-bit integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen || uint32(len(d.b)) < n {
		d.fail()
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

// Bytes32 reads a length-prefixed byte slice. The returned slice is a copy.
func (d *Decoder) Bytes32() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxBytesLen || uint32(len(d.b)) < n {
		d.fail()
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}

// StringList reads a length-prefixed list of strings.
func (d *Decoder) StringList() []string {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxListLen {
		d.fail()
		return nil
	}
	vs := make([]string, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		vs = append(vs, d.String())
		if d.err != nil {
			return nil
		}
	}
	return vs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- framing -------------------------------------------------------------

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameLen {
		return fmt.Errorf("rpc: frame too large (%d bytes)", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("rpc: frame too large (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
