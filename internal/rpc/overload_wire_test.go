package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gdmp/internal/admission"
	"gdmp/internal/gsi"
	"gdmp/internal/obs"
)

// --- wire generations ----------------------------------------------------

func TestWireMetadataReachesHandler(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("meta")
	gotDeadline := make(chan time.Duration, 1)
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("meta", func(ctx context.Context, _ *gsi.Peer, args *Decoder, resp *Encoder) error {
			if d, ok := ctx.Deadline(); ok {
				gotDeadline <- time.Until(d)
			} else {
				gotDeadline <- 0
			}
			return nil
		})
	})
	cl := dialAs(t, addr, "alice")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := cl.CallContext(WithAttempt(ctx, 2), "meta", nil); err != nil {
		t.Fatalf("call: %v", err)
	}
	budget := <-gotDeadline
	if budget <= 0 || budget > 3*time.Second {
		t.Fatalf("handler deadline budget = %v, want (0, 3s]", budget)
	}
}

func TestLegacyClientAgainstNewServer(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("meta")
	gotDeadline := make(chan bool, 1)
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("meta", func(ctx context.Context, _ *gsi.Peer, args *Decoder, resp *Encoder) error {
			_, ok := ctx.Deadline()
			gotDeadline <- ok
			resp.String("ok")
			return nil
		})
	})
	cred, err := ca(t).Issue("legacy", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr, cred, []*gsi.Certificate{ca(t).Certificate()},
		WithTimeout(5*time.Second), WithLegacyWire())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	// Even with a context deadline, a generation-0 frame carries none.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	d, err := cl.CallContext(ctx, "meta", nil)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if got := d.String(); got != "ok" {
		t.Fatalf("reply = %q", got)
	}
	if <-gotDeadline {
		t.Fatal("legacy frame must not propagate a deadline")
	}
}

// startLegacyServer emulates a pre-generation build: strict generation-0
// request decoding (any trailing bytes kill the connection) and no
// rpc.caps handler — the probe gets an ordinary "unknown method" error.
func startLegacyServer(t *testing.T) string {
	t.Helper()
	cred, err := ca(t).Issue("gdmp/legacy-server", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	roots := []*gsi.Certificate{ca(t).Certificate()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := gsi.Handshake(conn, cred, roots, false); err != nil {
					return
				}
				for {
					frame, err := ReadFrame(conn)
					if err != nil {
						return
					}
					d := NewDecoder(frame)
					method := d.String()
					payload := d.Bytes32()
					if err := d.Finish(); err != nil {
						return // generation-0 decode is strict
					}
					var out Encoder
					switch method {
					case "echo":
						pd := NewDecoder(payload)
						out.Uint8(statusOK)
						out.String(pd.String())
					default:
						out.Uint8(statusError)
						out.String(fmt.Sprintf("unknown method %q", method))
					}
					if err := WriteFrame(conn, out.Bytes()); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestNewClientAgainstLegacyServer(t *testing.T) {
	addr := startLegacyServer(t)
	cred, err := ca(t).Issue("modern", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr, cred, []*gsi.Certificate{ca(t).Certificate()}, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	// The probe must downgrade gracefully and the connection stay usable
	// across multiple calls — even with a deadline on the context, which a
	// generation-0 frame cannot carry.
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		var args Encoder
		args.String(fmt.Sprintf("ping-%d", i))
		d, err := cl.CallContext(WithAttempt(ctx, i), "echo", &args)
		cancel()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := d.String(); got != fmt.Sprintf("ping-%d", i) {
			t.Fatalf("call %d reply = %q", i, got)
		}
	}
	if cl.wiregen != wiregenLegacy {
		t.Fatalf("wiregen = %d, want %d (legacy)", cl.wiregen, wiregenLegacy)
	}
}

// --- admission at dispatch -----------------------------------------------

func TestDispatchOverloadTypedError(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("slow")
	reg := obs.NewRegistry()
	ctrl := admission.New(admission.Config{
		ControlSlots: 1, ControlQueue: 1,
		RetryAfterMin: 25 * time.Millisecond,
		Registry:      reg,
	})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	addr := startServer(t, acl, func(s *Server) {
		s.SetMetrics(reg)
		s.SetAdmission(ctrl, nil)
		s.Handle("slow", func(ctx context.Context, _ *gsi.Peer, args *Decoder, resp *Encoder) error {
			started <- struct{}{}
			<-release
			return nil
		})
	})
	defer close(release)

	// First call occupies the slot; a second queues; a third must be shed
	// with the typed overloaded status carrying a retry-after.
	go dialAs(t, addr, "a").Call("slow", nil)
	<-started
	go dialAs(t, addr, "b").Call("slow", nil)
	waitUntil(t, func() bool { return ctrl.Queued(admission.Control) == 1 })

	_, err := dialAs(t, addr, "c").Call("slow", nil)
	if !errors.Is(err, admission.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var ov *admission.Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("err = %#v, want *admission.Overloaded", err)
	}
	if ov.After < 25*time.Millisecond {
		t.Fatalf("retry-after = %v, want >= 25ms", ov.After)
	}
	if ov.Reason != "queue_full" {
		t.Fatalf("reason = %q, want queue_full", ov.Reason)
	}
}

// --- accept-loop robustness ----------------------------------------------

type tempNetErr struct{}

func (tempNetErr) Error() string   { return "accept: too many open files" }
func (tempNetErr) Timeout() bool   { return false }
func (tempNetErr) Temporary() bool { return true }

type flakyListener struct {
	net.Listener
	fails atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails.Add(-1) >= 0 {
		return nil, tempNetErr{}
	}
	return l.Listener.Accept()
}

func TestAcceptBackoffOnTemporaryErrors(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("ping")
	serverCred, err := ca(t).Issue("gdmp/flaky-server", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := NewServer(serverCred, []*gsi.Certificate{ca(t).Certificate()}, acl)
	srv.SetMetrics(reg)
	srv.Handle("ping", func(context.Context, *gsi.Peer, *Decoder, *Encoder) error { return nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln}
	fl.fails.Store(3)
	go srv.Serve(fl)
	t.Cleanup(func() { srv.Close() })

	// The loop must survive the transient failures and still serve.
	cl := dialAs(t, ln.Addr().String(), "alice")
	if _, err := cl.Call("ping", nil); err != nil {
		t.Fatalf("call after accept errors: %v", err)
	}
	if got := reg.Counter("gdmp_rpc_accept_errors_total", "").Value(); got != 3 {
		t.Fatalf("accept errors counter = %d, want 3", got)
	}
}

func TestMaxConnsRefusesDialFlood(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("ping")
	reg := obs.NewRegistry()
	var addr string
	addr = startServer(t, acl, func(s *Server) {
		s.SetMetrics(reg)
		s.MaxConns = 1
		s.Handle("ping", func(context.Context, *gsi.Peer, *Decoder, *Encoder) error { return nil })
	})
	cl := dialAs(t, addr, "alice")
	if _, err := cl.Call("ping", nil); err != nil {
		t.Fatalf("first conn: %v", err)
	}
	// The second connection is accepted and immediately closed before the
	// handshake, so the dial (which includes the handshake) fails.
	cred, err := ca(t).Issue("bob", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, cred, []*gsi.Certificate{ca(t).Certificate()}, WithTimeout(2*time.Second)); err == nil {
		t.Fatal("second dial succeeded past the connection cap")
	}
	if got := reg.Counter(ServerMetricsPrefix+"_conns_rejected_total", "").Value(); got < 1 {
		t.Fatalf("conns rejected counter = %d, want >= 1", got)
	}
	// Releasing the first connection frees the slot.
	cl.Close()
	waitUntil(t, func() bool {
		c, err := Dial(addr, cred, []*gsi.Certificate{ca(t).Certificate()}, WithTimeout(2*time.Second))
		if err != nil {
			return false
		}
		defer c.Close()
		_, err = c.Call("ping", nil)
		return err == nil
	})
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
