package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"gdmp/internal/gsi"
)

// Client is a Request Manager client: one authenticated connection to a
// server, over which calls are issued sequentially. Client is safe for
// concurrent use; concurrent calls are serialized on the connection,
// mirroring the simple request/response protocol of GDMP's Request Manager.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	peer    *gsi.Peer
	timeout time.Duration
	closed  bool
}

// DialOption customizes Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout time.Duration
	dialer  func(network, addr string) (net.Conn, error)
}

// WithTimeout sets a per-call deadline (and the dial timeout).
func WithTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithDialer substitutes the transport dialer; tests use this to insert
// WAN-emulating connections.
func WithDialer(d func(network, addr string) (net.Conn, error)) DialOption {
	return func(c *dialConfig) { c.dialer = d }
}

// Dial connects to a Request Manager server at addr, authenticating with
// cred and verifying the server against roots.
func Dial(addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, cred, roots, opts...)
}

// DialContext is Dial bound to a context: cancellation or expiry of ctx
// aborts the dial and the security handshake. The returned client itself is
// not bound to ctx; pass a context to CallContext per call.
func DialContext(ctx context.Context, addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{
		timeout: 30 * time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dialer == nil {
		var d net.Dialer
		cfg.dialer = func(network, addr string) (net.Conn, error) {
			return d.DialContext(ctx, network, addr)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	conn, err := cfg.dialer("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	// A canceled context must interrupt the handshake, not just the dial:
	// closing the connection unblocks any in-flight read or write.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	cl, err := NewClient(conn, cred, roots, cfg.timeout)
	stop()
	if err != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, ctx.Err())
	}
	return cl, err
}

// NewClient performs the security handshake over an established connection.
func NewClient(conn net.Conn, cred *gsi.Credential, roots []*gsi.Certificate, timeout time.Duration) (*Client, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	peer, err := gsi.Handshake(conn, cred, roots, true)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return &Client{conn: conn, peer: peer, timeout: timeout}, nil
}

// ServerIdentity returns the authenticated identity of the server.
func (c *Client) ServerIdentity() gsi.Identity { return c.peer.Identity }

// Call invokes method with the encoded args and returns a decoder over the
// response payload. A *RemoteError is returned when the handler failed.
func (c *Client) Call(method string, args *Encoder) (*Decoder, error) {
	return c.CallContext(context.Background(), method, args)
}

// CallContext is Call bound to a context: cancellation closes the
// connection, unblocking the exchange immediately; a context deadline
// earlier than the client's own timeout wins.
func (c *Client) CallContext(ctx context.Context, method string, args *Encoder) (*Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("rpc: client closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpc: call %s: %w", method, err)
	}
	// The connection is closed out-of-band on cancellation (net.Conn.Close
	// is safe concurrently with reads and writes), so a canceled context
	// interrupts an exchange already in flight.
	stop := context.AfterFunc(ctx, func() { c.conn.Close() })
	defer stop()

	var req Encoder
	req.String(method)
	if args != nil {
		req.Bytes32(args.Bytes())
	} else {
		req.Bytes32(nil)
	}

	deadline := time.Time{}
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	c.conn.SetDeadline(deadline)
	fail := func(stage string, err error) (*Decoder, error) {
		c.closeLocked()
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			// The connection deadline and the context deadline are the
			// same instant but tick on different timers: the read can
			// time out a hair before ctx.Err() flips.
			if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
				err = context.DeadlineExceeded
			}
		}
		return nil, fmt.Errorf("rpc: %s %s: %w", stage, method, err)
	}
	if err := WriteFrame(c.conn, req.Bytes()); err != nil {
		return fail("send", err)
	}
	frame, err := ReadFrame(c.conn)
	if err != nil {
		return fail("receive", err)
	}

	d := NewDecoder(frame)
	switch status := d.Uint8(); status {
	case statusOK:
		return d, nil
	case statusError:
		msg := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, &RemoteError{Method: method, Msg: msg}
	default:
		return nil, fmt.Errorf("%w: unknown status %d", ErrCorrupt, status)
	}
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeLocked()
}

func (c *Client) closeLocked() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
