package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"gdmp/internal/gsi"
)

// Client is a Request Manager client: one authenticated connection to a
// server, over which calls are issued sequentially. Client is safe for
// concurrent use; concurrent calls are serialized on the connection,
// mirroring the simple request/response protocol of GDMP's Request Manager.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	peer    *gsi.Peer
	timeout time.Duration
	closed  bool
}

// DialOption customizes Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout time.Duration
	dialer  func(network, addr string) (net.Conn, error)
}

// WithTimeout sets a per-call deadline (and the dial timeout).
func WithTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithDialer substitutes the transport dialer; tests use this to insert
// WAN-emulating connections.
func WithDialer(d func(network, addr string) (net.Conn, error)) DialOption {
	return func(c *dialConfig) { c.dialer = d }
}

// Dial connects to a Request Manager server at addr, authenticating with
// cred and verifying the server against roots.
func Dial(addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{
		timeout: 30 * time.Second,
		dialer:  net.Dial,
	}
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := cfg.dialer("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn, cred, roots, cfg.timeout)
}

// NewClient performs the security handshake over an established connection.
func NewClient(conn net.Conn, cred *gsi.Credential, roots []*gsi.Certificate, timeout time.Duration) (*Client, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	peer, err := gsi.Handshake(conn, cred, roots, true)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return &Client{conn: conn, peer: peer, timeout: timeout}, nil
}

// ServerIdentity returns the authenticated identity of the server.
func (c *Client) ServerIdentity() gsi.Identity { return c.peer.Identity }

// Call invokes method with the encoded args and returns a decoder over the
// response payload. A *RemoteError is returned when the handler failed.
func (c *Client) Call(method string, args *Encoder) (*Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("rpc: client closed")
	}

	var req Encoder
	req.String(method)
	if args != nil {
		req.Bytes32(args.Bytes())
	} else {
		req.Bytes32(nil)
	}

	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := WriteFrame(c.conn, req.Bytes()); err != nil {
		c.closeLocked()
		return nil, fmt.Errorf("rpc: send %s: %w", method, err)
	}
	frame, err := ReadFrame(c.conn)
	if err != nil {
		c.closeLocked()
		return nil, fmt.Errorf("rpc: receive %s: %w", method, err)
	}

	d := NewDecoder(frame)
	switch status := d.Uint8(); status {
	case statusOK:
		return d, nil
	case statusError:
		msg := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, &RemoteError{Method: method, Msg: msg}
	default:
		return nil, fmt.Errorf("%w: unknown status %d", ErrCorrupt, status)
	}
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeLocked()
}

func (c *Client) closeLocked() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
