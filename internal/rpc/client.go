package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"gdmp/internal/admission"
	"gdmp/internal/gsi"
)

// wire generations a client can latch onto after probing the server.
const (
	wiregenUnknown = -1 // not probed yet
	wiregenLegacy  = 0  // generation-0 frames only (pre-metadata server)
	wiregenMeta    = 1  // generation-1: metadata envelope + typed overload
)

// Client is a Request Manager client: one authenticated connection to a
// server, over which calls are issued sequentially. Client is safe for
// concurrent use; concurrent calls are serialized on the connection,
// mirroring the simple request/response protocol of GDMP's Request Manager.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	peer    *gsi.Peer
	timeout time.Duration
	closed  bool
	wiregen int // wiregenUnknown until the capability probe resolves
}

// DialOption customizes Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout time.Duration
	dialer  func(network, addr string) (net.Conn, error)
	legacy  bool
}

// WithTimeout sets a per-call deadline (and the dial timeout).
func WithTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithDialer substitutes the transport dialer; tests use this to insert
// WAN-emulating connections.
func WithDialer(d func(network, addr string) (net.Conn, error)) DialOption {
	return func(c *dialConfig) { c.dialer = d }
}

// WithLegacyWire pins the client to generation-0 request frames and skips
// the capability probe, emulating a pre-deadline-propagation build.
// Rolling-upgrade tests use it to prove mixed-version interop.
func WithLegacyWire() DialOption {
	return func(c *dialConfig) { c.legacy = true }
}

// attemptKey carries the caller's retry attempt number in a context.
type attemptKey struct{}

// WithAttempt tags ctx with the caller's retry attempt number (0 = first
// try). Generation-1 request frames carry it, letting overloaded servers
// shed the hottest retriers first.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

func attemptOf(ctx context.Context) uint32 {
	if v, ok := ctx.Value(attemptKey{}).(int); ok && v > 0 {
		return uint32(v)
	}
	return 0
}

// Dial connects to a Request Manager server at addr, authenticating with
// cred and verifying the server against roots.
func Dial(addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, cred, roots, opts...)
}

// DialContext is Dial bound to a context: cancellation or expiry of ctx
// aborts the dial and the security handshake. The returned client itself is
// not bound to ctx; pass a context to CallContext per call.
func DialContext(ctx context.Context, addr string, cred *gsi.Credential, roots []*gsi.Certificate, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{
		timeout: 30 * time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dialer == nil {
		var d net.Dialer
		cfg.dialer = func(network, addr string) (net.Conn, error) {
			return d.DialContext(ctx, network, addr)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	conn, err := cfg.dialer("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	// A canceled context must interrupt the handshake, not just the dial:
	// closing the connection unblocks any in-flight read or write.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	cl, err := NewClient(conn, cred, roots, cfg.timeout)
	stop()
	if err != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, ctx.Err())
	}
	if cl != nil && cfg.legacy {
		cl.wiregen = wiregenLegacy
	}
	return cl, err
}

// NewClient performs the security handshake over an established connection.
func NewClient(conn net.Conn, cred *gsi.Credential, roots []*gsi.Certificate, timeout time.Duration) (*Client, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	peer, err := gsi.Handshake(conn, cred, roots, true)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return &Client{conn: conn, peer: peer, timeout: timeout, wiregen: wiregenUnknown}, nil
}

// ServerIdentity returns the authenticated identity of the server.
func (c *Client) ServerIdentity() gsi.Identity { return c.peer.Identity }

// Call invokes method with the encoded args and returns a decoder over the
// response payload. A *RemoteError is returned when the handler failed.
func (c *Client) Call(method string, args *Encoder) (*Decoder, error) {
	return c.CallContext(context.Background(), method, args)
}

// CallContext is Call bound to a context: cancellation closes the
// connection, unblocking the exchange immediately; a context deadline
// earlier than the client's own timeout wins. On the first call of a
// connection the client probes the server's wire generation; against a
// generation-1 server every call then carries the remaining deadline
// budget and retry attempt (see WithAttempt), and a typed
// *admission.Overloaded is returned when the server sheds the call.
func (c *Client) CallContext(ctx context.Context, method string, args *Encoder) (*Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("rpc: client closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpc: call %s: %w", method, err)
	}
	// The connection is closed out-of-band on cancellation (net.Conn.Close
	// is safe concurrently with reads and writes), so a canceled context
	// interrupts an exchange already in flight.
	stop := context.AfterFunc(ctx, func() { c.conn.Close() })
	defer stop()

	if c.wiregen == wiregenUnknown {
		if err := c.probeLocked(ctx); err != nil {
			return nil, err
		}
	}

	var req Encoder
	req.String(method)
	if args != nil {
		req.Bytes32(args.Bytes())
	} else {
		req.Bytes32(nil)
	}
	if c.wiregen >= wiregenMeta {
		// Generation-1 strict-append block: the metadata envelope. The
		// deadline crosses the wire as a remaining budget, not an instant,
		// so clock skew between sites cannot corrupt it.
		var budget time.Duration
		if d, ok := ctx.Deadline(); ok {
			if budget = time.Until(d); budget <= 0 {
				budget = time.Microsecond // already dead; let the server shed it
			}
		}
		var env Encoder
		env.Uint8(wiregenMeta)
		env.Uint64(uint64(budget / time.Microsecond))
		env.Uint32(attemptOf(ctx))
		req.Bytes32(env.Bytes())
	}

	d, err := c.exchangeLocked(ctx, method, req.Bytes())
	if err != nil {
		return nil, err
	}
	switch status := d.Uint8(); status {
	case statusOK:
		return d, nil
	case statusError:
		msg := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, &RemoteError{Method: method, Msg: msg}
	case statusOverloaded:
		class := d.String()
		reason := d.String()
		after := time.Duration(d.Uint64()) * time.Microsecond
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, &admission.Overloaded{Class: class, Reason: reason, After: after}
	default:
		return nil, fmt.Errorf("%w: unknown status %d", ErrCorrupt, status)
	}
}

// probeLocked resolves the server's wire generation with one rpc.caps
// exchange. A generation-aware server answers the probe before handler
// lookup; a pre-generation server answers "unknown method" as an ordinary
// error frame and the connection stays usable, so the client latches
// generation 0 and keeps talking the old format.
func (c *Client) probeLocked(ctx context.Context) error {
	var req Encoder
	req.String(MethodCaps)
	req.Bytes32(nil)
	d, err := c.exchangeLocked(ctx, MethodCaps, req.Bytes())
	if err != nil {
		return err
	}
	switch status := d.Uint8(); status {
	case statusOK:
		if gen := d.Uint32(); d.Err() == nil && gen >= wiregenMeta {
			c.wiregen = wiregenMeta
		} else {
			c.wiregen = wiregenLegacy
		}
	case statusError:
		_ = d.String() // drain the "unknown method" message
		c.wiregen = wiregenLegacy
	default:
		c.closeLocked()
		return fmt.Errorf("%w: unknown status %d", ErrCorrupt, status)
	}
	return nil
}

// exchangeLocked performs one framed request/response exchange under the
// connection deadline, mapping transport failures onto the context error
// when the context caused them.
func (c *Client) exchangeLocked(ctx context.Context, method string, frame []byte) (*Decoder, error) {
	deadline := time.Time{}
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	c.conn.SetDeadline(deadline)
	fail := func(stage string, err error) (*Decoder, error) {
		c.closeLocked()
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			// The connection deadline and the context deadline are the
			// same instant but tick on different timers: the read can
			// time out a hair before ctx.Err() flips.
			if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
				err = context.DeadlineExceeded
			}
		}
		return nil, fmt.Errorf("rpc: %s %s: %w", stage, method, err)
	}
	if err := WriteFrame(c.conn, frame); err != nil {
		return fail("send", err)
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		return fail("receive", err)
	}
	return NewDecoder(resp), nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeLocked()
}

func (c *Client) closeLocked() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
