package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gdmp/internal/gsi"
)

func TestMain(m *testing.M) {
	gsi.KeyBits = 1024
	m.Run()
}

// --- codec ---------------------------------------------------------------

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.Uint8(7)
	e.Bool(true)
	e.Bool(false)
	e.Uint32(0xDEADBEEF)
	e.Uint64(1 << 60)
	e.Int64(-42)
	e.Float64(3.14159)
	e.String("logical/file/name")
	e.Bytes32([]byte{1, 2, 3})
	e.StringList([]string{"a", "", "ccc"})

	d := NewDecoder(e.Bytes())
	if got := d.Uint8(); got != 7 {
		t.Errorf("Uint8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round trip failed")
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %x", got)
	}
	if got := d.Uint64(); got != 1<<60 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.String(); got != "logical/file/name" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := d.StringList(); len(got) != 3 || got[0] != "a" || got[1] != "" || got[2] != "ccc" {
		t.Errorf("StringList = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, s string, bs []byte, list []string) bool {
		var e Encoder
		e.Uint64(a)
		e.Int64(b)
		e.String(s)
		e.Bytes32(bs)
		e.StringList(list)
		d := NewDecoder(e.Bytes())
		if d.Uint64() != a || d.Int64() != b || d.String() != s {
			return false
		}
		got := d.Bytes32()
		if !bytes.Equal(got, bs) && !(len(got) == 0 && len(bs) == 0) {
			return false
		}
		gl := d.StringList()
		if len(gl) != len(list) {
			return false
		}
		for i := range gl {
			if gl[i] != list[i] {
				return false
			}
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.String("hello")
	e.Uint64(12345)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.String()
		_ = d.Uint64()
		if d.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	var e Encoder
	e.Uint32(1)
	d := NewDecoder(append(e.Bytes(), 0x00))
	d.Uint32()
	if err := d.Finish(); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

func TestDecoderHugeLengthRejected(t *testing.T) {
	var e Encoder
	e.Uint32(0xFFFFFFFF) // claimed string length far beyond the buffer
	d := NewDecoder(e.Bytes())
	got := d.String()
	if got != "" || d.Err() == nil {
		t.Fatal("absurd length accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip = %q", got)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xFF
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// --- client/server -------------------------------------------------------

var (
	rpcCAOnce sync.Once
	rpcCA     *gsi.CA
)

func ca(t *testing.T) *gsi.CA {
	t.Helper()
	rpcCAOnce.Do(func() {
		c, err := gsi.NewCA("DataGrid", time.Hour)
		if err != nil {
			panic(err)
		}
		rpcCA = c
	})
	return rpcCA
}

// startServer brings up a server on a loopback listener and returns its
// address plus a cleanup-registered shutdown.
func startServer(t *testing.T, acl *gsi.ACL, register func(*Server)) string {
	t.Helper()
	serverCred, err := ca(t).Issue("gdmp/test-server", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(serverCred, []*gsi.Certificate{ca(t).Certificate()}, acl)
	register(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func dialAs(t *testing.T, addr, user string) *Client {
	t.Helper()
	cred, err := ca(t).Issue(user, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr, cred, []*gsi.Certificate{ca(t).Certificate()}, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestCallRoundTrip(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("echo")
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("echo", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			msg := args.String()
			if err := args.Finish(); err != nil {
				return err
			}
			resp.String(msg + "/" + peer.Base.CommonName)
			return nil
		})
	})
	cl := dialAs(t, addr, "alice")
	var args Encoder
	args.String("hello")
	d, err := cl.Call("echo", &args)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := d.String(); got != "hello/alice" {
		t.Fatalf("echo = %q", got)
	}
	if cl.ServerIdentity().CommonName != "gdmp/test-server" {
		t.Fatalf("server identity = %v", cl.ServerIdentity())
	}
}

func TestMultipleSequentialCalls(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("inc")
	var mu sync.Mutex
	count := 0
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("inc", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			mu.Lock()
			count++
			resp.Uint32(uint32(count))
			mu.Unlock()
			return nil
		})
	})
	cl := dialAs(t, addr, "bob")
	for i := 1; i <= 10; i++ {
		d, err := cl.Call("inc", nil)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := d.Uint32(); got != uint32(i) {
			t.Fatalf("call %d returned %d", i, got)
		}
	}
}

func TestConcurrentCallsSerialized(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("work")
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("work", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			resp.Uint64(args.Uint64() * 2)
			return nil
		})
	})
	cl := dialAs(t, addr, "carol")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			var args Encoder
			args.Uint64(i)
			d, err := cl.Call("work", &args)
			if err != nil {
				errs <- err
				return
			}
			if got := d.Uint64(); got != i*2 {
				errs <- fmt.Errorf("work(%d) = %d", i, got)
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRemoteErrorPropagation(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("fail")
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("fail", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			return errors.New("stage request refused: tape library offline")
		})
	})
	cl := dialAs(t, addr, "dave")
	_, err := cl.Call("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("expected RemoteError, got %v", err)
	}
	if !strings.Contains(re.Msg, "tape library offline") {
		t.Fatalf("error message lost: %q", re.Msg)
	}
	// The connection survives a handler error.
	if _, err := cl.Call("fail", nil); err == nil {
		t.Fatal("second call should also fail remotely")
	}
}

func TestUnknownMethod(t *testing.T) {
	addr := startServer(t, nil, func(s *Server) {})
	cl := dialAs(t, addr, "erin")
	_, err := cl.Call("no-such-method", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "unknown method") {
		t.Fatalf("expected unknown-method error, got %v", err)
	}
}

func TestUnauthorizedCallRejected(t *testing.T) {
	acl := gsi.NewACL()
	acl.Allow(gsi.Identity{Organization: "DataGrid", CommonName: "admin"}, "secret")
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("secret", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			resp.String("classified")
			return nil
		})
	})
	cl := dialAs(t, addr, "intruder")
	_, err := cl.Call("secret", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "unauthorized") {
		t.Fatalf("expected authorization failure, got %v", err)
	}
	// An authorized caller succeeds on the same server.
	admin := dialAs(t, addr, "admin")
	d, err := admin.Call("secret", nil)
	if err != nil {
		t.Fatalf("admin call: %v", err)
	}
	if d.String() != "classified" {
		t.Fatal("admin did not get payload")
	}
}

func TestProxyCredentialAuthorizedAsBase(t *testing.T) {
	acl := gsi.NewACL()
	acl.Allow(gsi.Identity{Organization: "DataGrid", CommonName: "frank"}, "op")
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("op", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			resp.String(peer.Identity.CommonName)
			return nil
		})
	})
	userCred, err := ca(t).Issue("frank", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := userCred.Delegate(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr, proxy, []*gsi.Certificate{ca(t).Certificate()}, WithTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("Dial with proxy: %v", err)
	}
	defer cl.Close()
	d, err := cl.Call("op", nil)
	if err != nil {
		t.Fatalf("proxy call: %v", err)
	}
	if got := d.String(); got != "frank/proxy" {
		t.Fatalf("server saw identity %q", got)
	}
}

func TestDialRejectsWrongTrust(t *testing.T) {
	addr := startServer(t, nil, func(s *Server) {})
	evil, err := gsi.NewCA("EvilGrid", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := evil.Issue("mallory", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Client trusts only EvilGrid; the server's chain will not verify.
	_, err = Dial(addr, cred, []*gsi.Certificate{evil.Certificate()}, WithTimeout(2*time.Second))
	if err == nil {
		t.Fatal("handshake with mismatched trust roots should fail")
	}
}

func TestClientClosedCalls(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("echo")
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("echo", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error { return nil })
	})
	cl := dialAs(t, addr, "grace")
	cl.Close()
	if _, err := cl.Call("echo", nil); err == nil {
		t.Fatal("call on closed client should fail")
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	serverCred, err := ca(t).Issue("gdmp/closing", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(serverCred, []*gsi.Certificate{ca(t).Certificate()}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

// --- context ------------------------------------------------------------

func TestCallContextCancellationUnblocksCall(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("slow")
	release := make(chan struct{})
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("slow", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			<-release
			return nil
		})
	})
	defer close(release)
	cl := dialAs(t, addr, "dave")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cl.CallContext(ctx, "slow", nil)
	if err == nil {
		t.Fatal("CallContext should fail when ctx is canceled mid-call")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}

func TestCallContextDeadlineExceeded(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("slow")
	release := make(chan struct{})
	addr := startServer(t, acl, func(s *Server) {
		s.Handle("slow", func(_ context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			<-release
			return nil
		})
	})
	defer close(release)
	cl := dialAs(t, addr, "erin")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := cl.CallContext(ctx, "slow", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestDialContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cred, err := ca(t).Issue("frank", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DialContext(ctx, "127.0.0.1:1", cred, []*gsi.Certificate{ca(t).Certificate()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("DialContext on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestHandlerContextCanceledOnServerClose(t *testing.T) {
	acl := gsi.NewACL()
	acl.AllowAll("watch")
	sawCancel := make(chan struct{})
	var srv *Server
	addr := startServer(t, acl, func(s *Server) {
		srv = s
		s.Handle("watch", func(ctx context.Context, peer *gsi.Peer, args *Decoder, resp *Encoder) error {
			<-ctx.Done()
			close(sawCancel)
			return ctx.Err()
		})
	})
	cl := dialAs(t, addr, "grace")
	done := make(chan struct{})
	go func() {
		cl.Call("watch", nil) // fails once the server shuts down
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	go srv.Close()
	select {
	case <-sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("handler ctx not canceled on server Close")
	}
	<-done
}
