package objrep

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gdmp/internal/core"
	"gdmp/internal/objectstore"
)

// Index is the global view of which objects exist where (Section 5.2):
// a mapping from an object's original identifier to the sites holding a
// replica, and — because extraction renumbers objects into new database
// files — the object's local identifier at each site. This is the location
// table of [HoSt00] ("Building a Large Location Table to Find Replicas of
// Physics Objects"). The paper maintains this view "in a set of index
// files ... themselves maintained and replicated on demand using
// file-based replication by GDMP and Globus"; Save/PublishTo and FetchFrom
// implement exactly that. Index is safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	locs map[objectstore.OID]map[string]objectstore.OID // orig -> site -> local OID
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{locs: make(map[objectstore.OID]map[string]objectstore.OID)}
}

// Add records that a site holds the object under its original identifier.
func (ix *Index) Add(oid objectstore.OID, site string) {
	ix.AddAt(oid, site, oid)
}

// AddAt records that a site holds the object under a (possibly renumbered)
// local identifier.
func (ix *Index) AddAt(orig objectstore.OID, site string, local objectstore.OID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	set := ix.locs[orig]
	if set == nil {
		set = make(map[string]objectstore.OID)
		ix.locs[orig] = set
	}
	set[site] = local
}

// LocalOID resolves the object's identifier at a specific site.
func (ix *Index) LocalOID(orig objectstore.OID, site string) (objectstore.OID, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	local, ok := ix.locs[orig][site]
	return local, ok
}

// Remove drops a site's replica of the object.
func (ix *Index) Remove(oid objectstore.OID, site string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if set := ix.locs[oid]; set != nil {
		delete(set, site)
		if len(set) == 0 {
			delete(ix.locs, oid)
		}
	}
}

// Sites returns the sorted sites holding the object.
func (ix *Index) Sites(oid objectstore.OID) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := ix.locs[oid]
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Has reports whether a site holds the object.
func (ix *Index) Has(oid objectstore.OID, site string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.locs[oid][site]
	return ok
}

// Missing filters the set down to objects the site does not hold — the
// "objects not yet present on the destination site are identified" step.
func (ix *Index) Missing(oids []objectstore.OID, site string) []objectstore.OID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []objectstore.OID
	for _, oid := range oids {
		if _, ok := ix.locs[oid][site]; !ok {
			out = append(out, oid)
		}
	}
	return out
}

// CollectiveLookup resolves a whole object set in one operation, grouping
// the objects by a site able to serve them — the paper's "one single
// collective lookup operation on the global view". Objects with no known
// location are returned under the empty site key.
func (ix *Index) CollectiveLookup(oids []objectstore.OID) map[string][]objectstore.OID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[string][]objectstore.OID)
	for _, oid := range oids {
		set := ix.locs[oid]
		if len(set) == 0 {
			out[""] = append(out[""], oid)
			continue
		}
		// Deterministic choice: lexicographically smallest site.
		best := ""
		for s := range set {
			if best == "" || s < best {
				best = s
			}
		}
		out[best] = append(out[best], oid)
	}
	return out
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.locs)
}

// Save writes the index as sorted text lines:
// "origdb:slot site1=localdb:slot site2=localdb:slot ...".
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	oids := make([]objectstore.OID, 0, len(ix.locs))
	for oid := range ix.locs {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool {
		if oids[i].DB != oids[j].DB {
			return oids[i].DB < oids[j].DB
		}
		return oids[i].Slot < oids[j].Slot
	})
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "gdmp-object-index v1")
	for _, oid := range oids {
		sites := make([]string, 0, len(ix.locs[oid]))
		for s := range ix.locs[oid] {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		parts := make([]string, len(sites))
		for i, s := range sites {
			parts[i] = s + "=" + ix.locs[oid][s].String()
		}
		fmt.Fprintf(bw, "%s %s\n", oid, strings.Join(parts, " "))
	}
	return bw.Flush()
}

// LoadIndex parses a Save'd index.
func LoadIndex(r io.Reader) (*Index, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "gdmp-object-index v1" {
		return nil, fmt.Errorf("objrep: bad index header")
	}
	ix := NewIndex()
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("objrep: index line %d: want oid and sites", line)
		}
		oid, err := objectstore.ParseOID(fields[0])
		if err != nil {
			return nil, fmt.Errorf("objrep: index line %d: %w", line, err)
		}
		for _, entry := range fields[1:] {
			site, localStr, hasLocal := strings.Cut(entry, "=")
			if site == "" {
				return nil, fmt.Errorf("objrep: index line %d: empty site", line)
			}
			local := oid
			if hasLocal {
				local, err = objectstore.ParseOID(localStr)
				if err != nil {
					return nil, fmt.Errorf("objrep: index line %d: %w", line, err)
				}
			}
			ix.AddAt(oid, site, local)
		}
	}
	return ix, sc.Err()
}

// PublishTo saves the index into a site's data directory and publishes it
// to the Grid as an ordinary flat file, so other sites replicate the global
// view with the plain file machinery.
func (ix *Index) PublishTo(site *core.Site, relPath, lfn string) (core.PublishedFile, error) {
	full := filepath.Join(site.DataDir(), filepath.FromSlash(relPath))
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return core.PublishedFile{}, err
	}
	f, err := os.Create(full)
	if err != nil {
		return core.PublishedFile{}, err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return core.PublishedFile{}, err
	}
	if err := f.Close(); err != nil {
		return core.PublishedFile{}, err
	}
	return site.Publish(relPath, core.PublishOptions{LFN: lfn})
}

// FetchFrom replicates a published index file to the destination site and
// parses it.
func FetchFrom(dest *core.Site, lfn string) (*Index, error) {
	if err := dest.Get(lfn); err != nil {
		return nil, err
	}
	var rel string
	for _, fi := range dest.LocalFiles() {
		if fi.LFN == lfn {
			rel = fi.Path
			break
		}
	}
	if rel == "" {
		return nil, fmt.Errorf("objrep: %s not in local catalog after Get", lfn)
	}
	f, err := os.Open(filepath.Join(dest.DataDir(), filepath.FromSlash(rel)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadIndex(f)
}
