package objrep

import (
	"fmt"
	"sort"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/objectstore"
)

// SourceSet maps site names to their GDMP control addresses.
type SourceSet map[string]string

// ReplicateFromSites serves one object request from a combination of source
// sites, the full Section 5.2 cycle: "the objects not yet present on the
// destination site are identified, and a source site, or combination of
// source sites, for these objects is found" — via a single collective
// lookup on the global index — after which each source runs its own
// extraction/transfer pipeline.
func ReplicateFromSites(dest *core.Site, sources SourceSet, ix *Index, oids []objectstore.OID, batchSize int, pipelined bool) (ReplicationStats, error) {
	if ix == nil {
		return ReplicationStats{}, fmt.Errorf("objrep: multi-source replication needs the global index")
	}
	missing := ix.Missing(oids, dest.Name())
	agg := ReplicationStats{Objects: len(missing)}
	if len(missing) == 0 {
		return agg, nil
	}
	groups := ix.CollectiveLookup(missing)
	if orphans := groups[""]; len(orphans) > 0 {
		return agg, fmt.Errorf("objrep: %d objects have no known location (first: %v)",
			len(orphans), orphans[0])
	}

	// Deterministic source order.
	sites := make([]string, 0, len(groups))
	for site := range groups {
		sites = append(sites, site)
	}
	sort.Strings(sites)

	start := time.Now()
	for _, site := range sites {
		ctl, ok := sources[site]
		if !ok {
			return agg, fmt.Errorf("objrep: no control address for source site %q", site)
		}
		r := &Replicator{
			Dest:           dest,
			SourceCtl:      ctl,
			SourceName:     site,
			BatchSize:      batchSize,
			Pipelined:      pipelined,
			DeleteAtSource: true,
			Index:          ix,
		}
		st, err := r.Replicate(groups[site])
		agg.Batches += st.Batches
		agg.BytesMoved += st.BytesMoved
		agg.ExtractTime += st.ExtractTime
		agg.TransferTime += st.TransferTime
		if err != nil {
			agg.Elapsed = time.Since(start)
			return agg, fmt.Errorf("objrep: source %s: %w", site, err)
		}
	}
	agg.Elapsed = time.Since(start)
	return agg, nil
}
