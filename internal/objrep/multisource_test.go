package objrep_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/testbed"
	"gdmp/internal/workload"
)

// multiSourceGrid builds two producer sites, each holding half of a
// dataset, a destination site, and a global index describing who has what.
func multiSourceGrid(t *testing.T) (*testbed.Grid, *objrep.Index, []objectstore.OID, objrep.SourceSet) {
	t.Helper()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	objrep.AllowServiceUseAll(g.ACL)

	ix := objrep.NewIndex()
	sources := objrep.SourceSet{}
	var all []objectstore.OID

	for i, name := range []string{"cern.ch", "fnal.gov"} {
		site, err := g.AddSite(name, testbed.SiteOptions{WithFederation: true})
		if err != nil {
			t.Fatal(err)
		}
		// Each producer generates a disjoint set of databases; distinct
		// seeds and offset db numbering keep the OIDs disjoint.
		ds, err := workload.Generate(workload.Config{
			Events:         20,
			Types:          []workload.ObjectSpec{{Type: "esd", Size: 400}},
			ObjectsPerFile: 10,
			Placement:      workload.ByType,
			Dir:            filepath.Join(site.DataDir(), "dataset"),
			Seed:           int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, fm := range ds.Files {
			if _, err := site.Federation().Attach(fm.Path); err != nil {
				t.Fatal(err)
			}
		}
		if err := objrep.EnableService(site); err != nil {
			t.Fatal(err)
		}
		sources[name] = site.Addr()
		// Only the first producer's dataset enters the request set; the
		// second producer starts empty in the index and becomes an
		// alternate source once objects are replicated to it (the index
		// tracks its renumbered local identifiers).
		if i == 0 {
			site.Federation().Scan(func(m objectstore.Meta) bool {
				ix.Add(m.OID, name)
				all = append(all, m.OID)
				return true
			})
		}
	}
	if _, err := g.AddSite("dest.org", testbed.SiteOptions{WithFederation: true}); err != nil {
		t.Fatal(err)
	}
	return g, ix, all, sources
}

func TestReplicateFromSites(t *testing.T) {
	g, ix, all, sources := multiSourceGrid(t)
	dest := g.Site("dest.org")
	fnal := g.Site("fnal.gov")

	// Stage 1: move the first half of cern's objects to fnal so the index
	// lists two holders for them.
	half := all[:len(all)/2]
	r := &objrep.Replicator{
		Dest: fnal, SourceCtl: sources["cern.ch"], SourceName: "cern.ch",
		Index: ix,
	}
	if _, err := r.Replicate(half); err != nil {
		t.Fatalf("stage 1: %v", err)
	}
	for _, oid := range half {
		if !ix.Has(oid, "fnal.gov") {
			t.Fatalf("index missing %v at fnal", oid)
		}
	}

	// Make fnal the only holder of the first half, so the collective
	// lookup must split the request across both sources — and must use
	// fnal's renumbered local identifiers for its share.
	for _, oid := range half {
		ix.Remove(oid, "cern.ch")
	}

	// Stage 2: the destination requests everything.
	stats, err := objrep.ReplicateFromSites(dest, sources, ix, all, 0, true)
	if err != nil {
		t.Fatalf("ReplicateFromSites: %v", err)
	}
	if stats.Objects != len(all) {
		t.Fatalf("stats = %+v", stats)
	}
	count := 0
	dest.Federation().Scan(func(m objectstore.Meta) bool { count++; return true })
	if count != len(all) {
		t.Fatalf("destination holds %d objects, want %d", count, len(all))
	}
	// Everything is now indexed at the destination too.
	if missing := ix.Missing(all, "dest.org"); len(missing) != 0 {
		t.Fatalf("index missing %d entries at destination", len(missing))
	}
	// Re-running is a no-op.
	stats, err = objrep.ReplicateFromSites(dest, sources, ix, all, 0, false)
	if err != nil || stats.Objects != 0 {
		t.Fatalf("re-run = %+v, %v", stats, err)
	}
}

func TestReplicateFromSitesErrors(t *testing.T) {
	g, ix, all, sources := multiSourceGrid(t)
	dest := g.Site("dest.org")

	// No index.
	if _, err := objrep.ReplicateFromSites(dest, sources, nil, all, 0, false); err == nil {
		t.Fatal("nil index accepted")
	}
	// Unknown location.
	orphan := []objectstore.OID{{DB: 999, Slot: 999}}
	if _, err := objrep.ReplicateFromSites(dest, sources, ix, orphan, 0, false); err == nil ||
		!strings.Contains(err.Error(), "no known location") {
		t.Fatalf("orphan objects: %v", err)
	}
	// Missing control address.
	bad := objrep.SourceSet{}
	if _, err := objrep.ReplicateFromSites(dest, bad, ix, all[:1], 0, false); err == nil ||
		!strings.Contains(err.Error(), "no control address") {
		t.Fatalf("missing source: %v", err)
	}
}
