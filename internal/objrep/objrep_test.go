package objrep_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/testbed"
	"gdmp/internal/workload"
)

func TestMain(m *testing.M) {
	gsi.KeyBits = 1024
	m.Run()
}

// objGrid builds a grid with a producer holding a generated dataset and a
// consumer with an empty federation.
func objGrid(t *testing.T) (*testbed.Grid, *workload.Dataset) {
	t.Helper()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	objrep.AllowServiceUseAll(g.ACL)

	src, err := g.AddSite("cern.ch", testbed.SiteOptions{WithFederation: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddSite("anl.gov", testbed.SiteOptions{WithFederation: true}); err != nil {
		t.Fatal(err)
	}

	ds, err := workload.Generate(workload.Config{
		Events:         60,
		Types:          []workload.ObjectSpec{{Type: "tag", Size: 50}, {Type: "esd", Size: 800}},
		ObjectsPerFile: 30,
		Placement:      workload.ByType,
		Dir:            filepath.Join(src.DataDir(), "dataset"),
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fm := range ds.Files {
		if _, err := src.Federation().Attach(fm.Path); err != nil {
			t.Fatal(err)
		}
	}
	if err := objrep.EnableService(src); err != nil {
		t.Fatal(err)
	}
	return g, ds
}

func TestCopyObjects(t *testing.T) {
	g, ds := objGrid(t)
	src := g.Site("cern.ch")
	sel := workload.SelectEvents(60, 10, 2)
	oids := ds.ObjectsFor(sel, "esd")

	out := filepath.Join(t.TempDir(), "extract.odb")
	stats, mapping, err := objrep.CopyObjects(src.Federation(), oids, out, 0x80000001)
	if err != nil {
		t.Fatalf("CopyObjects: %v", err)
	}
	if stats.Objects != 10 || stats.Bytes != 10*800 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(mapping) != 10 {
		t.Fatalf("mapping = %v", mapping)
	}
	db, err := objectstore.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != 10 || db.DBID() != 0x80000001 {
		t.Fatalf("db len=%d id=%d", db.Len(), db.DBID())
	}
	// Contents match the originals, located via the mapping.
	for _, orig := range oids {
		fresh := mapping[orig]
		want, err := src.Federation().Lookup(orig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Read(fresh.Slot)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Data, want.Data) || got.Event != want.Event {
			t.Fatalf("object %v copied wrong", orig)
		}
	}
}

func TestCopyObjectsRewritesAssociations(t *testing.T) {
	dir := t.TempDir()
	// Two objects with an association between them, plus one pointing out.
	path := filepath.Join(dir, "src.odb")
	w, err := objectstore.Create(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(&objectstore.Object{OID: objectstore.OID{Slot: 1}, Type: "a", Data: []byte("one"),
		Assocs: []objectstore.OID{{DB: 5, Slot: 2}}})
	w.Add(&objectstore.Object{OID: objectstore.OID{Slot: 2}, Type: "a", Data: []byte("two"),
		Assocs: []objectstore.OID{{DB: 99, Slot: 1}}}) // leaves the set
	w.Close()
	fed := objectstore.NewFederation()
	defer fed.Close()
	fed.Attach(path)

	out := filepath.Join(dir, "out.odb")
	_, mapping, err := objrep.CopyObjects(fed,
		[]objectstore.OID{{DB: 5, Slot: 1}, {DB: 5, Slot: 2}}, out, 0x80000002)
	if err != nil {
		t.Fatal(err)
	}
	db, err := objectstore.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	first, err := db.Read(mapping[objectstore.OID{DB: 5, Slot: 1}].Slot)
	if err != nil {
		t.Fatal(err)
	}
	// The in-set association was rewritten to the new OID.
	if len(first.Assocs) != 1 || first.Assocs[0] != mapping[objectstore.OID{DB: 5, Slot: 2}] {
		t.Fatalf("assocs = %v", first.Assocs)
	}
	second, err := db.Read(mapping[objectstore.OID{DB: 5, Slot: 2}].Slot)
	if err != nil {
		t.Fatal(err)
	}
	// The out-of-set association was dropped (self-contained file).
	if len(second.Assocs) != 0 {
		t.Fatalf("out-of-set assoc kept: %v", second.Assocs)
	}
}

func TestCopyObjectsErrors(t *testing.T) {
	fed := objectstore.NewFederation()
	defer fed.Close()
	if _, _, err := objrep.CopyObjects(fed, nil, filepath.Join(t.TempDir(), "x.odb"), 1); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, _, err := objrep.CopyObjects(fed,
		[]objectstore.OID{{DB: 1, Slot: 1}}, filepath.Join(t.TempDir(), "x.odb"), 1); err == nil {
		t.Fatal("unattached database accepted")
	}
}

func TestReplicateEndToEnd(t *testing.T) {
	g, ds := objGrid(t)
	dest := g.Site("anl.gov")
	src := g.Site("cern.ch")

	sel := workload.SelectEvents(60, 12, 3)
	oids := ds.ObjectsFor(sel, "esd")
	ix := objrep.NewIndex()

	r := &objrep.Replicator{
		Dest:           dest,
		SourceCtl:      src.Addr(),
		SourceName:     "cern.ch",
		DeleteAtSource: true,
		Index:          ix,
	}
	stats, err := r.Replicate(oids)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	if stats.Objects != 12 || stats.Batches != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.BytesMoved < 12*800 {
		t.Fatalf("BytesMoved = %d", stats.BytesMoved)
	}
	// The destination's federation can read the replicated objects by
	// (event, type) through the newly attached extraction file.
	found := 0
	dest.Federation().Scan(func(m objectstore.Meta) bool {
		if m.Type == "esd" {
			found++
		}
		return true
	})
	if found != 12 {
		t.Fatalf("destination federation holds %d esd objects", found)
	}
	// The index records the new replicas.
	for _, oid := range oids {
		if !ix.Has(oid, "anl.gov") {
			t.Fatalf("index missing %v at destination", oid)
		}
	}
	// The extraction file was deleted at the source (step 3): the source
	// keeps only its original dataset files in the local catalog.
	for _, fi := range src.LocalFiles() {
		if strings.Contains(fi.Path, "objrep/") {
			t.Fatalf("extraction file %s survived at source", fi.Path)
		}
	}
	// A second replication of the same set is a no-op thanks to the index.
	stats2, err := r.Replicate(oids)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Objects != 0 || stats2.BytesMoved != 0 {
		t.Fatalf("re-replication moved data: %+v", stats2)
	}
}

func TestReplicateBatchedAndPipelined(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		g, ds := objGrid(t)
		dest := g.Site("anl.gov")
		src := g.Site("cern.ch")
		sel := workload.SelectEvents(60, 20, 4)
		oids := ds.ObjectsFor(sel, "esd")

		r := &objrep.Replicator{
			Dest:       dest,
			SourceCtl:  src.Addr(),
			SourceName: "cern.ch",
			BatchSize:  5,
			Pipelined:  pipelined,
		}
		stats, err := r.Replicate(oids)
		if err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
		if stats.Batches != 4 {
			t.Fatalf("pipelined=%v batches = %d", pipelined, stats.Batches)
		}
		found := 0
		dest.Federation().Scan(func(m objectstore.Meta) bool {
			if m.Type == "esd" {
				found++
			}
			return true
		})
		if found != 20 {
			t.Fatalf("pipelined=%v destination holds %d objects", pipelined, found)
		}
	}
}

func TestIndexBasics(t *testing.T) {
	ix := objrep.NewIndex()
	a := objectstore.OID{DB: 1, Slot: 1}
	b := objectstore.OID{DB: 1, Slot: 2}
	ix.Add(a, "cern.ch")
	ix.Add(a, "anl.gov")
	ix.Add(b, "cern.ch")
	if !ix.Has(a, "cern.ch") || ix.Has(b, "anl.gov") {
		t.Fatal("Has wrong")
	}
	if got := ix.Sites(a); len(got) != 2 || got[0] != "anl.gov" {
		t.Fatalf("Sites = %v", got)
	}
	missing := ix.Missing([]objectstore.OID{a, b}, "anl.gov")
	if len(missing) != 1 || missing[0] != b {
		t.Fatalf("Missing = %v", missing)
	}
	groups := ix.CollectiveLookup([]objectstore.OID{a, b, {DB: 9, Slot: 9}})
	if len(groups["anl.gov"]) != 1 || len(groups["cern.ch"]) != 1 || len(groups[""]) != 1 {
		t.Fatalf("CollectiveLookup = %v", groups)
	}
	ix.Remove(a, "anl.gov")
	if ix.Has(a, "anl.gov") {
		t.Fatal("Remove failed")
	}
	ix.Remove(a, "cern.ch")
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := objrep.NewIndex()
	for i := uint32(1); i <= 50; i++ {
		ix.Add(objectstore.OID{DB: i % 3, Slot: i}, "cern.ch")
		if i%2 == 0 {
			ix.Add(objectstore.OID{DB: i % 3, Slot: i}, "anl.gov")
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := objrep.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("restored %d entries, want %d", restored.Len(), ix.Len())
	}
	if !restored.Has(objectstore.OID{DB: 2, Slot: 2}, "anl.gov") {
		t.Fatal("entry lost in round trip")
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	restored.Save(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("index save not deterministic")
	}
	// Corruption rejected.
	if _, err := objrep.LoadIndex(strings.NewReader("garbage")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := objrep.LoadIndex(strings.NewReader("gdmp-object-index v1\nnot-an-oid site\n")); err == nil {
		t.Fatal("bad oid accepted")
	}
	if _, err := objrep.LoadIndex(strings.NewReader("gdmp-object-index v1\n1:2\n")); err == nil {
		t.Fatal("oid without sites accepted")
	}
}

func TestIndexReplicatedAsFile(t *testing.T) {
	g, _ := objGrid(t)
	src := g.Site("cern.ch")
	dest := g.Site("anl.gov")

	ix := objrep.NewIndex()
	ix.Add(objectstore.OID{DB: 1, Slot: 7}, "cern.ch")
	ix.Add(objectstore.OID{DB: 2, Slot: 9}, "cern.ch")

	pf, err := ix.PublishTo(src, "index/objects.idx", "lfn://cern.ch/index/objects.idx")
	if err != nil {
		t.Fatalf("PublishTo: %v", err)
	}
	fetched, err := objrep.FetchFrom(dest, pf.LFN)
	if err != nil {
		t.Fatalf("FetchFrom: %v", err)
	}
	if fetched.Len() != 2 || !fetched.Has(objectstore.OID{DB: 1, Slot: 7}, "cern.ch") {
		t.Fatalf("fetched index = %d entries", fetched.Len())
	}
}

func TestExtractedFilesAreFirstClass(t *testing.T) {
	// An extraction file at the destination can itself serve a further
	// object replication request (the paper's first-class-citizen claim).
	g, ds := objGrid(t)
	src := g.Site("cern.ch")
	mid := g.Site("anl.gov")

	// Third site that will fetch from the middle site's extraction.
	far, err := g.AddSite("fnal.gov", testbed.SiteOptions{WithFederation: true})
	if err != nil {
		t.Fatal(err)
	}

	sel := workload.SelectEvents(60, 8, 5)
	oids := ds.ObjectsFor(sel, "esd")
	r1 := &objrep.Replicator{Dest: mid, SourceCtl: src.Addr(), SourceName: "cern.ch"}
	if _, err := r1.Replicate(oids); err != nil {
		t.Fatal(err)
	}
	// Enable the service at the middle site and extract from it: the OIDs
	// there are the renumbered ones from its extraction file.
	if err := objrep.EnableService(mid); err != nil {
		t.Fatal(err)
	}
	var midOIDs []objectstore.OID
	mid.Federation().Scan(func(m objectstore.Meta) bool {
		midOIDs = append(midOIDs, m.OID)
		return true
	})
	if len(midOIDs) != 8 {
		t.Fatalf("middle site holds %d objects", len(midOIDs))
	}
	r2 := &objrep.Replicator{Dest: far, SourceCtl: mid.Addr(), SourceName: "anl.gov"}
	stats, err := r2.Replicate(midOIDs)
	if err != nil {
		t.Fatalf("second-hop replicate: %v", err)
	}
	if stats.Objects != 8 {
		t.Fatalf("second-hop stats = %+v", stats)
	}
	count := 0
	far.Federation().Scan(func(m objectstore.Meta) bool { count++; return true })
	if count != 8 {
		t.Fatalf("far site holds %d objects", count)
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// With a slow WAN, the pipelined cycle should finish faster than the
	// sequential one, because extraction of batch i+1 overlaps transfer of
	// batch i.
	run := func(pipelined bool) time.Duration {
		g, ds := objGrid(t)
		dest := g.Site("anl.gov")
		src := g.Site("cern.ch")
		sel := workload.SelectEvents(60, 24, 6)
		oids := ds.ObjectsFor(sel, "esd")
		r := &objrep.Replicator{
			Dest: dest, SourceCtl: src.Addr(), SourceName: "cern.ch",
			BatchSize: 6, Pipelined: pipelined,
		}
		stats, err := r.Replicate(oids)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	seq := run(false)
	pipe := run(true)
	// On loopback both are fast; just assert the pipelined run is not
	// dramatically slower (the real gain is measured in the bench under
	// WAN shaping).
	if pipe > seq*3 {
		t.Fatalf("pipelined %v much slower than sequential %v", pipe, seq)
	}
}
