// Package objrep implements the object replication service of Section 5:
// replication "at the granularity of the individual objects, regardless of
// any currently existing mapping between objects and files". The strategy
// is the paper's three-step process:
//
//  1. on the source site, an object copier tool copies the objects that
//     need to be replicated into a new file;
//  2. the new file is moved to the destination site using the wide-area
//     file machinery (GDMP + GridFTP), leveraging all of its security,
//     restart, and checksum properties;
//  3. the new file is deleted at the source site.
//
// The new files are "first-class citizens in the Data Grid": they are
// published like any other file and are themselves potential extraction
// sources for future object replication requests. A global view of which
// objects exist where is kept in an Index, itself persisted as an ordinary
// file and replicated with file-based replication. Object copying and file
// transport are pipelined (Section 5.2) — the Replicator implements both
// the pipelined and the sequential form so the gain is measurable.
//
// All objects entrusted to the service are read-only (Section 2.1's
// requirement), which the object store guarantees by construction.
package objrep

import (
	"fmt"

	"gdmp/internal/objectstore"
)

// CopyStats reports one object-copier run.
type CopyStats struct {
	Objects int
	Bytes   int64
}

// CopyObjects is the object copier tool: it reads the given objects through
// the local federation and writes them into a new database file with the
// given id. Associations are rewritten to the new OIDs when the target was
// copied too; associations leaving the copied set are dropped, since the
// extracted file must be self-contained at the destination.
//
// The returned mapping records original OID -> new OID, which keeps the
// global object index coherent across extractions.
func CopyObjects(fed *objectstore.Federation, oids []objectstore.OID, path string, dbid uint32) (CopyStats, map[objectstore.OID]objectstore.OID, error) {
	if len(oids) == 0 {
		return CopyStats{}, nil, fmt.Errorf("objrep: empty object set")
	}
	w, err := objectstore.Create(path, dbid)
	if err != nil {
		return CopyStats{}, nil, err
	}

	mapping := make(map[objectstore.OID]objectstore.OID, len(oids))
	next := uint32(1)
	for _, oid := range oids {
		if _, dup := mapping[oid]; dup {
			continue
		}
		mapping[oid] = objectstore.OID{DB: dbid, Slot: next}
		next++
	}

	var stats CopyStats
	written := make(map[objectstore.OID]bool, len(mapping))
	for _, oid := range oids {
		newOID := mapping[oid]
		if written[oid] {
			continue
		}
		written[oid] = true
		obj, err := fed.Lookup(oid)
		if err != nil {
			w.Close()
			return CopyStats{}, nil, fmt.Errorf("objrep: copy %v: %w", oid, err)
		}
		var assocs []objectstore.OID
		for _, a := range obj.Assocs {
			if target, ok := mapping[a]; ok {
				assocs = append(assocs, target)
			}
		}
		if err := w.Add(&objectstore.Object{
			OID:    objectstore.OID{Slot: newOID.Slot},
			Type:   obj.Type,
			Event:  obj.Event,
			Assocs: assocs,
			Data:   obj.Data,
		}); err != nil {
			w.Close()
			return CopyStats{}, nil, err
		}
		stats.Objects++
		stats.Bytes += int64(len(obj.Data))
	}
	if err := w.Close(); err != nil {
		return CopyStats{}, nil, err
	}
	return stats, mapping, nil
}
