package objrep

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gdmp/internal/objectstore"
)

// Reclustering rewrites a federation's objects into new database files
// whose clustering matches an access pattern — the optimization the paper
// inherits from [Holt98] ("Automatic Reclustering of Objects in Very Large
// Databases") and [Scha99], and the storage-level counterpart of object
// replication: a selection that would touch every file before reclustering
// touches few files afterwards.

// ClusterPolicy orders objects into new files.
type ClusterPolicy int

const (
	// ClusterByType groups same-type objects of consecutive events, the
	// layout that serves type-wise scans and sparse selections best.
	ClusterByType ClusterPolicy = iota

	// ClusterByEvent keeps each event's objects together, the layout that
	// serves whole-event reads best.
	ClusterByEvent
)

// ReclusterResult describes the rewritten layout.
type ReclusterResult struct {
	Files   []string // paths of the new database files, in order
	Objects int
	Bytes   int64

	// Mapping records old OID -> new OID for index maintenance.
	Mapping map[objectstore.OID]objectstore.OID
}

// Recluster reads every object of the federation and rewrites them into new
// database files under outDir, at most objectsPerFile per file, ordered by
// the policy. Database ids start at firstDBID and increase; the source
// federation is left untouched (objects are read-only).
func Recluster(fed *objectstore.Federation, outDir string, policy ClusterPolicy, objectsPerFile int, firstDBID uint32) (*ReclusterResult, error) {
	if objectsPerFile <= 0 {
		return nil, fmt.Errorf("objrep: objectsPerFile must be positive, got %d", objectsPerFile)
	}
	if firstDBID == 0 {
		return nil, fmt.Errorf("objrep: firstDBID must be nonzero")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}

	var metas []objectstore.Meta
	if err := fed.Scan(func(m objectstore.Meta) bool {
		metas = append(metas, m)
		return true
	}); err != nil {
		return nil, err
	}
	if len(metas) == 0 {
		return nil, fmt.Errorf("objrep: federation holds no objects")
	}

	switch policy {
	case ClusterByType:
		sort.SliceStable(metas, func(i, j int) bool {
			if metas[i].Type != metas[j].Type {
				return metas[i].Type < metas[j].Type
			}
			return metas[i].Event < metas[j].Event
		})
	case ClusterByEvent:
		sort.SliceStable(metas, func(i, j int) bool {
			if metas[i].Event != metas[j].Event {
				return metas[i].Event < metas[j].Event
			}
			return metas[i].Type < metas[j].Type
		})
	default:
		return nil, fmt.Errorf("objrep: unknown cluster policy %d", policy)
	}

	// First pass: assign new OIDs so associations can be rewritten even
	// when they point forward in the new order.
	res := &ReclusterResult{Mapping: make(map[objectstore.OID]objectstore.OID, len(metas))}
	for i, m := range metas {
		res.Mapping[m.OID] = objectstore.OID{
			DB:   firstDBID + uint32(i/objectsPerFile),
			Slot: uint32(i%objectsPerFile) + 1,
		}
	}

	// Second pass: write the files.
	var w *objectstore.Writer
	var curDB uint32
	closeCurrent := func() error {
		if w == nil {
			return nil
		}
		err := w.Close()
		w = nil
		return err
	}
	for i, m := range metas {
		newOID := res.Mapping[m.OID]
		if w == nil || newOID.DB != curDB {
			if err := closeCurrent(); err != nil {
				return nil, err
			}
			curDB = newOID.DB
			path := filepath.Join(outDir, fmt.Sprintf("recluster-%08d.odb", curDB))
			var err error
			w, err = objectstore.Create(path, curDB)
			if err != nil {
				return nil, err
			}
			res.Files = append(res.Files, path)
		}
		obj, err := fed.Lookup(m.OID)
		if err != nil {
			closeCurrent()
			return nil, err
		}
		var assocs []objectstore.OID
		for _, a := range obj.Assocs {
			if target, ok := res.Mapping[a]; ok {
				assocs = append(assocs, target)
			}
		}
		if err := w.Add(&objectstore.Object{
			OID:    objectstore.OID{Slot: newOID.Slot},
			Type:   obj.Type,
			Event:  obj.Event,
			Assocs: assocs,
			Data:   obj.Data,
		}); err != nil {
			closeCurrent()
			return nil, err
		}
		res.Objects++
		res.Bytes += int64(len(obj.Data))
		_ = i
	}
	if err := closeCurrent(); err != nil {
		return nil, err
	}
	return res, nil
}
