package objrep_test

import (
	"path/filepath"
	"testing"

	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/workload"
)

// reclusterFixture generates an event-clustered dataset and attaches it.
func reclusterFixture(t *testing.T) *objectstore.Federation {
	t.Helper()
	ds, err := workload.Generate(workload.Config{
		Events:         40,
		Types:          []workload.ObjectSpec{{Type: "tag", Size: 20}, {Type: "esd", Size: 200}},
		ObjectsPerFile: 16,
		Placement:      workload.ByEvent, // worst case for type-wise scans
		Dir:            t.TempDir(),
		Seed:           1,
		LinkTypes:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fed := objectstore.NewFederation()
	t.Cleanup(func() { fed.Close() })
	for _, fm := range ds.Files {
		if _, err := fed.Attach(fm.Path); err != nil {
			t.Fatal(err)
		}
	}
	return fed
}

func TestReclusterByTypePreservesContent(t *testing.T) {
	fed := reclusterFixture(t)
	out := t.TempDir()
	res, err := objrep.Recluster(fed, out, objrep.ClusterByType, 20, 1000)
	if err != nil {
		t.Fatalf("Recluster: %v", err)
	}
	if res.Objects != 80 { // 40 events x 2 types
		t.Fatalf("objects = %d", res.Objects)
	}
	if len(res.Files) != 4 { // 80 objects / 20 per file
		t.Fatalf("files = %v", res.Files)
	}
	if res.Bytes != 40*20+40*200 {
		t.Fatalf("bytes = %d", res.Bytes)
	}

	// Attach the new layout and verify every object survived, content and
	// associations included.
	newFed := objectstore.NewFederation()
	defer newFed.Close()
	for _, p := range res.Files {
		if _, err := newFed.Attach(p); err != nil {
			t.Fatal(err)
		}
	}
	checked := 0
	err = fed.Scan(func(m objectstore.Meta) bool {
		orig, err := fed.Lookup(m.OID)
		if err != nil {
			t.Fatal(err)
		}
		moved, err := newFed.Lookup(res.Mapping[m.OID])
		if err != nil {
			t.Fatalf("lookup %v -> %v: %v", m.OID, res.Mapping[m.OID], err)
		}
		if moved.Type != orig.Type || moved.Event != orig.Event ||
			len(moved.Data) != len(orig.Data) {
			t.Fatalf("object %v mutated by reclustering", m.OID)
		}
		checked++
		return true
	})
	if err != nil || checked != 80 {
		t.Fatalf("checked %d objects, %v", checked, err)
	}

	// Associations were rewritten: a tag navigates to its esd in the new
	// layout.
	var tagOID objectstore.OID
	newFed.Scan(func(m objectstore.Meta) bool {
		if m.Type == "tag" && len(m.Assocs) == 1 {
			tagOID = m.OID
			return false
		}
		return true
	})
	if tagOID.IsZero() {
		t.Fatal("no tag with association found after reclustering")
	}
	target, err := newFed.Navigate(tagOID, 0)
	if err != nil {
		t.Fatalf("navigation after reclustering: %v", err)
	}
	if target.Type != "esd" {
		t.Fatalf("navigated to %q", target.Type)
	}
}

// TestReclusterImprovesTypeLocality is the point of the exercise: a
// type-wise sparse selection touches far fewer files after reclustering.
func TestReclusterImprovesTypeLocality(t *testing.T) {
	fed := reclusterFixture(t)
	out := t.TempDir()
	res, err := objrep.Recluster(fed, out, objrep.ClusterByType, 16, 1000)
	if err != nil {
		t.Fatal(err)
	}

	// Count the files holding "esd" objects before and after.
	filesHolding := func(f *objectstore.Federation) int {
		dbs := make(map[uint32]bool)
		f.Scan(func(m objectstore.Meta) bool {
			if m.Type == "esd" {
				dbs[m.OID.DB] = true
			}
			return true
		})
		return len(dbs)
	}
	before := filesHolding(fed)
	newFed := objectstore.NewFederation()
	defer newFed.Close()
	for _, p := range res.Files {
		newFed.Attach(p)
	}
	after := filesHolding(newFed)
	if after >= before {
		t.Fatalf("type locality did not improve: %d files before, %d after", before, after)
	}
}

func TestReclusterByEvent(t *testing.T) {
	fed := reclusterFixture(t)
	res, err := objrep.Recluster(fed, t.TempDir(), objrep.ClusterByEvent, 10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// In event order, each event's two objects are adjacent: slots pair up.
	db, err := objectstore.Open(res.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	metas := db.Metas()
	for i := 0; i+1 < len(metas); i += 2 {
		if metas[i].Event != metas[i+1].Event {
			t.Fatalf("event clustering broken at slot %d: %d vs %d",
				i, metas[i].Event, metas[i+1].Event)
		}
	}
}

func TestReclusterValidation(t *testing.T) {
	fed := objectstore.NewFederation()
	defer fed.Close()
	if _, err := objrep.Recluster(fed, t.TempDir(), objrep.ClusterByType, 0, 1); err == nil {
		t.Error("zero objectsPerFile accepted")
	}
	if _, err := objrep.Recluster(fed, t.TempDir(), objrep.ClusterByType, 10, 0); err == nil {
		t.Error("zero firstDBID accepted")
	}
	if _, err := objrep.Recluster(fed, t.TempDir(), objrep.ClusterByType, 10, 1); err == nil {
		t.Error("empty federation accepted")
	}
	full := reclusterFixture(t)
	if _, err := objrep.Recluster(full, filepath.Join(t.TempDir(), "x"), objrep.ClusterPolicy(99), 10, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}
