package objrep_test

import (
	"bytes"
	"testing"

	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	testbedpkg "gdmp/internal/testbed"
)

func TestIndexLocalOIDs(t *testing.T) {
	ix := objrep.NewIndex()
	orig := objectstore.OID{DB: 1, Slot: 7}
	renum := objectstore.OID{DB: 0x80000001, Slot: 3}

	// The producing site holds the object under its original identifier.
	ix.Add(orig, "cern.ch")
	// A destination holds it under a renumbered identifier (extraction).
	ix.AddAt(orig, "anl.gov", renum)

	if local, ok := ix.LocalOID(orig, "cern.ch"); !ok || local != orig {
		t.Fatalf("cern local = %v, %v", local, ok)
	}
	if local, ok := ix.LocalOID(orig, "anl.gov"); !ok || local != renum {
		t.Fatalf("anl local = %v, %v", local, ok)
	}
	if _, ok := ix.LocalOID(orig, "nowhere"); ok {
		t.Fatal("unknown site resolved")
	}
	if sites := ix.Sites(orig); len(sites) != 2 {
		t.Fatalf("Sites = %v", sites)
	}
}

func TestIndexLocalOIDsSurviveSaveLoad(t *testing.T) {
	ix := objrep.NewIndex()
	orig := objectstore.OID{DB: 2, Slot: 9}
	renum := objectstore.OID{DB: 0x90000000, Slot: 1}
	ix.Add(orig, "cern.ch")
	ix.AddAt(orig, "anl.gov", renum)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The text format carries the per-site local identifiers.
	if want := "2:9 anl.gov=2415919104:1 cern.ch=2:9"; !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("serialized form missing %q:\n%s", want, buf.String())
	}
	restored, err := objrep.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if local, ok := restored.LocalOID(orig, "anl.gov"); !ok || local != renum {
		t.Fatalf("restored local = %v, %v", local, ok)
	}
	// Legacy bare-site lines (no "=local") still load, local == orig.
	legacy, err := objrep.LoadIndex(bytes.NewReader([]byte("gdmp-object-index v1\n5:5 siteX\n")))
	if err != nil {
		t.Fatal(err)
	}
	if local, ok := legacy.LocalOID(objectstore.OID{DB: 5, Slot: 5}, "siteX"); !ok ||
		local != (objectstore.OID{DB: 5, Slot: 5}) {
		t.Fatalf("legacy local = %v, %v", local, ok)
	}
}

// TestSecondHopUsesLocalOIDs replays the first-class-citizen scenario and
// verifies the index keeps working across hops: after cern -> anl, a
// request served by anl must be addressed with anl's renumbered OIDs, which
// the Replicator resolves automatically via the index.
func TestSecondHopUsesLocalOIDs(t *testing.T) {
	g, ds := objGrid(t)
	cern := g.Site("cern.ch")
	anl := g.Site("anl.gov")
	far, err := g.AddSite("desy.de", testbedpkg.SiteOptions{WithFederation: true})
	if err != nil {
		t.Fatal(err)
	}

	ix := objrep.NewIndex()
	var oids []objectstore.OID
	cern.Federation().Scan(func(m objectstore.Meta) bool {
		if m.Type == "esd" && len(oids) < 6 {
			ix.Add(m.OID, "cern.ch")
			oids = append(oids, m.OID)
		}
		return true
	})
	_ = ds

	// Hop 1: cern -> anl.
	r1 := &objrep.Replicator{Dest: anl, SourceCtl: cern.Addr(), SourceName: "cern.ch", Index: ix}
	if _, err := r1.Replicate(oids); err != nil {
		t.Fatal(err)
	}
	if err := objrep.EnableService(anl); err != nil {
		t.Fatal(err)
	}
	// Drop cern from the index: anl is now the only source, under
	// renumbered identifiers the index remembers.
	for _, oid := range oids {
		ix.Remove(oid, "cern.ch")
	}

	// Hop 2: anl -> desy, requested with the ORIGINAL identifiers.
	r2 := &objrep.Replicator{Dest: far, SourceCtl: anl.Addr(), SourceName: "anl.gov", Index: ix}
	stats, err := r2.Replicate(oids)
	if err != nil {
		t.Fatalf("second hop: %v", err)
	}
	if stats.Objects != 6 {
		t.Fatalf("stats = %+v", stats)
	}
	count := 0
	far.Federation().Scan(func(m objectstore.Meta) bool { count++; return true })
	if count != 6 {
		t.Fatalf("far site holds %d objects", count)
	}
	// And the index knows desy's local identifiers for future hops.
	for _, oid := range oids {
		if _, ok := ix.LocalOID(oid, "desy.de"); !ok {
			t.Fatalf("index missing desy local OID for %v", oid)
		}
	}
}
