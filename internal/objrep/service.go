package objrep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gsi"
	"gdmp/internal/objectstore"
	"gdmp/internal/rpc"
)

// Request Manager methods added by the object replication service. They
// double as ACL operations; grant them with AllowServiceUseAll.
const (
	// MethodExtract runs the object copier at a source site: the request
	// carries a set of OIDs, the reply the published LFN of the new file
	// and the original->new OID mapping.
	MethodExtract = "objrep.extract"

	// MethodRelease deletes an extraction file at the source after the
	// destination has received it (step 3 of the cycle).
	MethodRelease = "objrep.release"
)

// AllowServiceUseAll grants every authenticated identity the object
// replication methods.
func AllowServiceUseAll(acl *gsi.ACL) {
	acl.AllowAll(MethodExtract, MethodRelease)
}

var extractSerial uint64 // distinguishes extraction files within a process

// EnableService registers the object replication service on a site. The
// site must have an object federation (extractions read through it).
func EnableService(site *core.Site) error {
	if site.Federation() == nil {
		return errors.New("objrep: site has no object federation")
	}
	site.HandleRPC(MethodExtract, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		n := args.Uint32()
		if n == 0 || n > 10_000_000 {
			return fmt.Errorf("objrep: implausible object count %d", n)
		}
		oids := make([]objectstore.OID, 0, n)
		for i := uint32(0); i < n; i++ {
			oids = append(oids, objectstore.OID{DB: args.Uint32(), Slot: args.Uint32()})
		}
		if err := args.Finish(); err != nil {
			return err
		}
		lfn, mapping, err := extract(site, oids)
		if err != nil {
			return err
		}
		resp.String(lfn)
		resp.Uint32(uint32(len(mapping)))
		for orig, fresh := range mapping {
			resp.Uint32(orig.DB)
			resp.Uint32(orig.Slot)
			resp.Uint32(fresh.DB)
			resp.Uint32(fresh.Slot)
		}
		return nil
	})
	site.HandleRPC(MethodRelease, func(_ context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
		lfn := args.String()
		if err := args.Finish(); err != nil {
			return err
		}
		return site.RemoveLocal(lfn)
	})
	return nil
}

// extract runs the object copier and publishes the resulting file.
func extract(site *core.Site, oids []objectstore.OID) (string, map[objectstore.OID]objectstore.OID, error) {
	serial := atomic.AddUint64(&extractSerial, 1)
	rel := fmt.Sprintf("objrep/extract-%s-%06d.odb", site.Name(), serial)
	lfn := "lfn://" + site.Name() + "/" + rel

	// The new database id must not collide with attached databases at any
	// destination; derive it from the globally unique LFN.
	h := fnv.New32a()
	h.Write([]byte(lfn))
	dbid := h.Sum32() | 0x8000_0000 // keep clear of generator-assigned ids

	full, err := siteLocalPath(site, rel)
	if err != nil {
		return "", nil, err
	}
	if _, mapping, err := CopyObjects(site.Federation(), oids, full, dbid); err != nil {
		return "", nil, err
	} else {
		if _, err := site.Publish(rel, core.PublishOptions{LFN: lfn, FileType: "objectivity"}); err != nil {
			return "", nil, err
		}
		return lfn, mapping, nil
	}
}

// siteLocalPath resolves a site-relative path and creates its directory.
func siteLocalPath(site *core.Site, rel string) (string, error) {
	full, err := core.JoinDataDir(site, rel)
	if err != nil {
		return "", err
	}
	return full, nil
}

// ReplicationStats reports one object replication cycle.
type ReplicationStats struct {
	Objects      int
	Batches      int
	BytesMoved   int64
	Elapsed      time.Duration
	ExtractTime  time.Duration // total time spent in the copier
	TransferTime time.Duration // total time spent in wide-area transfers
}

// Replicator drives a complete object replication cycle against one source
// site (Section 5.2). The destination must run an object federation.
type Replicator struct {
	// Dest is the destination site (objects land in its federation).
	Dest *core.Site

	// SourceCtl is the source site's GDMP control address.
	SourceCtl string

	// SourceName names the source site in the global index.
	SourceName string

	// BatchSize is how many objects each extraction file carries
	// (default: everything in one file).
	BatchSize int

	// Pipelined overlaps object copying with file transport
	// (Section 5.2: "object copying and file transport operations are
	// pipelined to achieve a better response time").
	Pipelined bool

	// DeleteAtSource removes extraction files at the source after
	// transfer (step 3; default true behavior is selected by the caller).
	DeleteAtSource bool

	// Index, when set, is consulted to skip objects the destination
	// already holds and updated with the new replicas.
	Index *Index
}

// Replicate moves the objects to the destination and returns statistics.
func (r *Replicator) Replicate(oids []objectstore.OID) (ReplicationStats, error) {
	if r.Dest == nil || r.SourceCtl == "" {
		return ReplicationStats{}, errors.New("objrep: Replicator needs Dest and SourceCtl")
	}
	if r.Dest.Federation() == nil {
		return ReplicationStats{}, errors.New("objrep: destination has no object federation")
	}
	// Identify the objects not yet present at the destination.
	work := oids
	if r.Index != nil {
		work = r.Index.Missing(oids, r.Dest.Name())
	}
	stats := ReplicationStats{Objects: len(work)}
	if len(work) == 0 {
		return stats, nil
	}
	batch := r.BatchSize
	if batch <= 0 || batch > len(work) {
		batch = len(work)
	}
	var batches [][]objectstore.OID
	for start := 0; start < len(work); start += batch {
		end := start + batch
		if end > len(work) {
			end = len(work)
		}
		batches = append(batches, work[start:end])
	}
	stats.Batches = len(batches)

	start := time.Now()
	var err error
	if r.Pipelined {
		err = r.runPipelined(batches, &stats)
	} else {
		err = r.runSequential(batches, &stats)
	}
	stats.Elapsed = time.Since(start)
	return stats, err
}

// extractBatch asks the source to run the copier for one batch. The batch
// carries original object identifiers; they are translated to the source
// site's local identifiers through the index (an extraction file at the
// source renumbers objects, and the location table knows the mapping).
func (r *Replicator) extractBatch(batch []objectstore.OID) (string, map[objectstore.OID]objectstore.OID, []objectstore.OID, error) {
	srcOIDs := make([]objectstore.OID, len(batch))
	for i, orig := range batch {
		srcOIDs[i] = orig
		if r.Index != nil {
			if local, ok := r.Index.LocalOID(orig, r.SourceName); ok {
				srcOIDs[i] = local
			}
		}
	}
	var e rpc.Encoder
	e.Uint32(uint32(len(srcOIDs)))
	for _, oid := range srcOIDs {
		e.Uint32(oid.DB)
		e.Uint32(oid.Slot)
	}
	d, err := r.Dest.CallRemote(r.SourceCtl, MethodExtract, &e)
	if err != nil {
		return "", nil, nil, err
	}
	lfn := d.String()
	n := d.Uint32()
	mapping := make(map[objectstore.OID]objectstore.OID, n)
	for i := uint32(0); i < n; i++ {
		src := objectstore.OID{DB: d.Uint32(), Slot: d.Uint32()}
		fresh := objectstore.OID{DB: d.Uint32(), Slot: d.Uint32()}
		mapping[src] = fresh
	}
	if err := d.Finish(); err != nil {
		return "", nil, nil, err
	}
	return lfn, mapping, srcOIDs, nil
}

// transferBatch pulls one extraction file and finalizes it, recording the
// destination-local identifier of every object in the index.
func (r *Replicator) transferBatch(lfn string, batch, srcOIDs []objectstore.OID, mapping map[objectstore.OID]objectstore.OID, stats *ReplicationStats, mu *sync.Mutex) error {
	tStart := time.Now()
	if err := r.Dest.Get(lfn); err != nil {
		return err
	}
	dur := time.Since(tStart)

	var size int64
	for _, fi := range r.Dest.LocalFiles() {
		if fi.LFN == lfn {
			size = fi.Size
			break
		}
	}
	mu.Lock()
	stats.TransferTime += dur
	stats.BytesMoved += size
	mu.Unlock()

	if r.Index != nil {
		for i, orig := range batch {
			local, ok := mapping[srcOIDs[i]]
			if !ok {
				local = orig
			}
			r.Index.AddAt(orig, r.Dest.Name(), local)
		}
	}
	if r.DeleteAtSource {
		var e rpc.Encoder
		e.String(lfn)
		if _, err := r.Dest.CallRemote(r.SourceCtl, MethodRelease, &e); err != nil {
			return fmt.Errorf("objrep: release %s at source: %w", lfn, err)
		}
	}
	return nil
}

// runSequential copies and transfers each batch strictly in turn.
func (r *Replicator) runSequential(batches [][]objectstore.OID, stats *ReplicationStats) error {
	var mu sync.Mutex
	for _, batch := range batches {
		eStart := time.Now()
		lfn, mapping, srcOIDs, err := r.extractBatch(batch)
		if err != nil {
			return err
		}
		stats.ExtractTime += time.Since(eStart)
		if err := r.transferBatch(lfn, batch, srcOIDs, mapping, stats, &mu); err != nil {
			return err
		}
	}
	return nil
}

// runPipelined overlaps extraction of batch i+1 with transfer of batch i.
func (r *Replicator) runPipelined(batches [][]objectstore.OID, stats *ReplicationStats) error {
	type extracted struct {
		lfn     string
		batch   []objectstore.OID
		srcOIDs []objectstore.OID
		mapping map[objectstore.OID]objectstore.OID
		err     error
	}
	var mu sync.Mutex
	ch := make(chan extracted, 1) // depth-1 pipeline: copy leads transfer by one batch
	go func() {
		defer close(ch)
		for _, batch := range batches {
			eStart := time.Now()
			lfn, mapping, srcOIDs, err := r.extractBatch(batch)
			mu.Lock()
			stats.ExtractTime += time.Since(eStart)
			mu.Unlock()
			ch <- extracted{lfn: lfn, batch: batch, srcOIDs: srcOIDs, mapping: mapping, err: err}
			if err != nil {
				return
			}
		}
	}()
	for ex := range ch {
		if ex.err != nil {
			return ex.err
		}
		if err := r.transferBatch(ex.lfn, ex.batch, ex.srcOIDs, ex.mapping, stats, &mu); err != nil {
			return err
		}
	}
	return nil
}
